// E10 — cost characterization of the extension layers built on BPRC
// (not part of the paper's evaluation; these quantify what §1's promised
// applications cost when realized on the paper's algorithm).
//
//   (a) multi-valued consensus: cost vs value-domain width — the bit-wise
//       transform is linear in value_bits, with unanimous-bit instances
//       (the common case after the first disagreement resolves) far
//       cheaper than contested ones;
//   (b) universal log (fetch&cons): per-append cost vs n, with the
//       helping discipline keeping slot consumption ≤ n per append;
//   (c) sticky bits: one consensus + one publication.
#include <cstdio>
#include <memory>

#include "consensus/multivalue.hpp"
#include "core/sticky.hpp"
#include "core/universal.hpp"
#include "experiment_common.hpp"
#include "runtime/sim_runtime.hpp"

namespace bprc::bench {
namespace {

void multivalue_cost() {
  const std::uint64_t trials = scaled_trials(10);
  print_banner("E10a", "Multi-valued consensus: steps vs value width");
  std::printf(
      "n=4, distinct inputs spread over the domain, random adversary,\n"
      "%llu runs per width.\n\n",
      static_cast<unsigned long long>(trials));
  Table t({"value bits", "mean steps", "steps per bit"});
  for (const int bits : {4, 8, 16, 32}) {
    RunningStat steps;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      const int n = 4;
      SimRuntime rt(n, std::make_unique<RandomAdversary>(seed * 3 + 1),
                    seed);
      MultiValueConsensus mv(rt, bits, bprc_factory(n));
      Rng rng(seed + 42);
      for (ProcId p = 0; p < n; ++p) {
        const std::uint64_t input =
            rng.below(std::uint64_t{1} << bits);
        rt.spawn(p, [&mv, input] { mv.propose(input); });
      }
      const RunResult res = rt.run(kRunBudget);
      BPRC_REQUIRE(res.reason == RunResult::Reason::kAllDone,
                   "multivalue run failed");
      steps.add(static_cast<double>(res.steps));
    }
    t.add_row({Table::num(bits), Table::num(steps.mean(), 0),
               Table::num(steps.mean() / bits, 0)});
  }
  t.print();
}

void universal_cost() {
  const std::uint64_t trials = scaled_trials(5);
  print_banner("E10b", "Universal log (fetch&cons): per-append cost vs n");
  std::printf("2 appends per process, BPRC underneath, %llu runs per n.\n\n",
              static_cast<unsigned long long>(trials));
  Table t({"n", "mean steps per append", "slots used / commands"});
  for (const int n : {2, 3, 4}) {
    RunningStat per_append;
    RunningStat slot_ratio;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      SimRuntime rt(n, std::make_unique<RandomAdversary>(seed * 5 + 2),
                    seed);
      UniversalLog log(rt, 3 * n, bprc_factory(n));
      for (ProcId p = 0; p < n; ++p) {
        rt.spawn(p, [&log, p] {
          log.append(static_cast<std::uint32_t>(p + 1));
          log.append(static_cast<std::uint32_t>(p + 100));
        });
      }
      const RunResult res = rt.run(kRunBudget);
      BPRC_REQUIRE(res.reason == RunResult::Reason::kAllDone,
                   "universal run failed");
      const double commands = 2.0 * n;
      per_append.add(static_cast<double>(res.steps) / commands);
      int used = 0;
      while (used < log.capacity() && log.decided(used).has_value()) ++used;
      slot_ratio.add(static_cast<double>(used) / commands);
    }
    t.add_row({Table::num(n), Table::num(per_append.mean(), 0),
               Table::num(slot_ratio.mean(), 2)});
  }
  t.print();
  std::printf(
      "\n(slot ratio near 1.0 = helping wastes almost no slots on duplicate\n"
      "or no-op wins.)\n");
}

void sticky_cost() {
  const std::uint64_t trials = scaled_trials(15);
  print_banner("E10c", "Sticky bit: contested jam cost");
  Table t({"n", "mean steps until everyone knows the winner"});
  for (const int n : {2, 4, 8}) {
    RunningStat steps;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      SimRuntime rt(n, std::make_unique<RandomAdversary>(seed * 9 + 4),
                    seed);
      StickyBit bit(rt, bprc_factory(n));
      for (ProcId p = 0; p < n; ++p) {
        rt.spawn(p, [&bit, p] { bit.jam(static_cast<int>(p) % 2); });
      }
      const RunResult res = rt.run(kRunBudget);
      BPRC_REQUIRE(res.reason == RunResult::Reason::kAllDone,
                   "sticky run failed");
      steps.add(static_cast<double>(res.steps));
    }
    t.add_row({Table::num(n), Table::num(steps.mean(), 0)});
  }
  t.print();
}

}  // namespace
}  // namespace bprc::bench

int main() {
  bprc::bench::multivalue_cost();
  bprc::bench::universal_cost();
  bprc::bench::sticky_cost();
  return 0;
}
