// P1 — simulator hot-path microbenchmarks: what does one simulated
// primitive operation cost, and how many whole consensus instances per
// second can a Monte-Carlo sweep push through?
//
// Machine-readable twin: tools/bprc_bench (emits BENCH_sim.json). Keep
// the two in sync — this one is for eyeballs, that one for trajectories.
#include <algorithm>
#include <cstdio>

#include "experiment_common.hpp"
#include "perf_harness.hpp"

namespace bprc::bench {
namespace {

void run() {
  print_banner("P1", "simulator hot path: ns/step, ns/switch, runs/sec");

  const double switch_ns = measure_ctx_switch_ns(scaled_trials(1'000'000));
  std::printf("fiber context switch: %.1f ns (one direction)\n\n", switch_ns);

  std::printf(
      "BPRC under the random adversary, split inputs; ns/step includes\n"
      "per-trial runtime setup — the cost a sweep actually pays.\n\n");
  Table t({"n", "trials", "ns/step", "runs/sec", "steps/run"});
  for (const int n : {2, 4, 8}) {
    const std::uint64_t trials =
        scaled_trials(2048 / static_cast<std::uint64_t>(n));
    const SweepPerf perf = measure_bprc_sweep(n, trials);
    t.add_row({Table::num(n), Table::num(trials),
               Table::num(perf.ns_per_step, 1),
               Table::num(perf.runs_per_sec, 0),
               Table::num(static_cast<double>(perf.total_steps) /
                              static_cast<double>(trials),
                          0)});
  }
  t.print();

  std::printf(
      "\ncampaign throughput: the identical n=8 sweep through the trial\n"
      "engine (engine::TrialExecutor) — outcomes are byte-identical at\n"
      "every jobs level; only the wall clock moves.\n\n");
  // bench_jobs() honors BPRC_JOBS; the wide lane is always its own
  // measurement (min jobs=2) so the table never shows a copied row even
  // on a single-core machine.
  const unsigned max_jobs = std::max(2u, bench_jobs());
  const std::uint64_t ctrials = scaled_trials(256);
  Table ct({"jobs", "trials", "runs/sec", "speedup"});
  const SweepPerf serial = measure_campaign_throughput(8, ctrials, 1);
  ct.add_row({Table::num(1), Table::num(ctrials),
              Table::num(serial.runs_per_sec, 0), Table::num(1.0, 2)});
  const SweepPerf wide = measure_campaign_throughput(8, ctrials, max_jobs);
  ct.add_row({Table::num(static_cast<int>(max_jobs)), Table::num(ctrials),
              Table::num(wide.runs_per_sec, 0),
              Table::num(serial.runs_per_sec > 0.0
                             ? wide.runs_per_sec / serial.runs_per_sec
                             : 0.0,
                         2)});
  ct.print();

  std::printf(
      "\nprocess sharding: the same cell as a campaign across forked\n"
      "worker processes (src/shard/) — the crash-isolated lane. The\n"
      "digest is identical to the serial campaign; the speedup deficit\n"
      "vs thread scaling is the fork + wire + supervision tax.\n\n");
  Table st({"workers", "runs", "runs/sec", "speedup"});
  const SweepPerf campaign1 = measure_sharded_throughput(8, ctrials, 1);
  st.add_row({Table::num(1), Table::num(campaign1.trials),
              Table::num(campaign1.runs_per_sec, 0), Table::num(1.0, 2)});
  const SweepPerf sharded = measure_sharded_throughput(8, ctrials, 2);
  st.add_row({Table::num(2), Table::num(sharded.trials),
              Table::num(sharded.runs_per_sec, 0),
              Table::num(campaign1.runs_per_sec > 0.0
                             ? sharded.runs_per_sec / campaign1.runs_per_sec
                             : 0.0,
                         2)});
  st.print();

  std::printf(
      "\nexhaustive exploration: one bprc n=3 input cell through the\n"
      "bounded model checker — serial leaf grading vs the engine-batched\n"
      "pipeline. The schedule digest is byte-identical at every jobs\n"
      "level; only states/sec moves.\n\n");
  const std::uint64_t edepth = 14;
  Table et({"jobs", "states", "states/sec", "speedup"});
  const ExplorePerf eserial = measure_explore_throughput(1, edepth);
  et.add_row({Table::num(1), Table::num(eserial.states),
              Table::num(eserial.states_per_sec, 0), Table::num(1.0, 2)});
  const ExplorePerf ewide = measure_explore_throughput(max_jobs, edepth);
  BPRC_REQUIRE(ewide.digest == eserial.digest,
               "explore digest must not depend on the jobs level");
  et.add_row({Table::num(static_cast<int>(max_jobs)), Table::num(ewide.states),
              Table::num(ewide.states_per_sec, 0),
              Table::num(eserial.states_per_sec > 0.0
                             ? ewide.states_per_sec / eserial.states_per_sec
                             : 0.0,
                         2)});
  et.print();
}

}  // namespace
}  // namespace bprc::bench

int main() {
  bprc::bench::run();
  return 0;
}
