// P1 — simulator hot-path microbenchmarks: what does one simulated
// primitive operation cost, and how many whole consensus instances per
// second can a Monte-Carlo sweep push through?
//
// Machine-readable twin: tools/bprc_bench (emits BENCH_sim.json). Keep
// the two in sync — this one is for eyeballs, that one for trajectories.
#include <cstdio>

#include "experiment_common.hpp"
#include "perf_harness.hpp"

namespace bprc::bench {
namespace {

void run() {
  print_banner("P1", "simulator hot path: ns/step, ns/switch, runs/sec");

  const double switch_ns = measure_ctx_switch_ns(scaled_trials(1'000'000));
  std::printf("fiber context switch: %.1f ns (one direction)\n\n", switch_ns);

  std::printf(
      "BPRC under the random adversary, split inputs; ns/step includes\n"
      "per-trial runtime setup — the cost a sweep actually pays.\n\n");
  Table t({"n", "trials", "ns/step", "runs/sec", "steps/run"});
  for (const int n : {2, 4, 8}) {
    const std::uint64_t trials =
        scaled_trials(2048 / static_cast<std::uint64_t>(n));
    const SweepPerf perf = measure_bprc_sweep(n, trials);
    t.add_row({Table::num(n), Table::num(trials),
               Table::num(perf.ns_per_step, 1),
               Table::num(perf.runs_per_sec, 0),
               Table::num(static_cast<double>(perf.total_steps) /
                              static_cast<double>(trials),
                          0)});
  }
  t.print();
}

}  // namespace
}  // namespace bprc::bench

int main() {
  bprc::bench::run();
  return 0;
}
