// E11 — the space–time frontier (docs/SPACE_BUDGETS.md).
//
// The paper buys polynomial expected time with bounded space: 3K-cycle
// edge counters, K+1 coin slots, ±(m+1) walk counters with m = (f(b)·n)².
// Gelashvili and Toyos-Marfurt–Kuznetsov (PAPERS.md) chart the region
// around that point asymptotically; this table measures it concretely.
// Each row pins a SpaceBudget, sweeps a campaign cell of the faithful
// space-sensitive protocols under the random adversary, and reports
//
//   * bits/proc — the budgeted shared-register bits per process (space);
//   * steps/run — mean simulated steps to global decision (time);
//
// plus the campaign digest, re-checked at jobs=1 vs jobs=max vs 2 forked
// workers: the frontier numbers come from byte-identical run sets at
// every parallelism level, like every other lane of the harness.
//
// The measured trend: steps grow ~quadratically in the barrier b (a
// ±b·n random walk takes Θ((bn)²) flips to escape), so "wide" budgets
// buy coin sharpness — adversarial bias bounded by 1/b (Lemma 3.4) —
// at quadratic time cost. Shrinking m_scale is free under the *random*
// adversary (the walk decides long before a quarter-size counter
// overflows); what a small m gives up is margin, not speed — the
// overflow rule fires earlier under adversarial schedules, and the
// paper needs overflow to stay rarer than the coin's inherent 1/b
// disagreement for the expected-time bound to close.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "experiment_common.hpp"
#include "fault/protocols.hpp"
#include "perf_harness.hpp"

namespace bprc::bench {
namespace {

void frontier_table() {
  const int n = 3;
  const std::uint64_t trials = scaled_trials(96);
  const unsigned jobs = std::max(2u, bench_jobs());
  print_banner("E11", "Space-time frontier: budget vs expected steps (n=3)");
  std::printf(
      "Each budget: %llu seeds, random adversary, digest-checked at\n"
      "jobs=1 vs jobs=%u vs workers=2 (byte-identical run sets).\n\n",
      static_cast<unsigned long long>(trials), jobs);

  struct Point {
    const char* tag;
    SpaceBudget space;
  };
  std::vector<Point> points;
  points.push_back({"lean", {}});
  points.back().space.b = 2;
  points.back().space.m_scale = 1;
  points.push_back({"mid", {}});
  points.back().space.m_scale = 1;
  points.push_back({"paper", {}});
  points.push_back({"wide", {}});
  points.back().space.b = 8;

  for (const std::string& protocol : fault::protocol_names(false)) {
    // bits/proc is a property of the budgeted BPRC layout; the baselines
    // either refuse bounding by construction (aspnes-herlihy's per-round
    // counter strip) or never touch the knobs (local-coin, strong-coin).
    const bool bounded = protocol == "bprc";
    // The campaign matrix skips (budget-ignoring protocol, non-default
    // budget) cells; the flat controls therefore chart one point each.
    const bool sensitive = fault::protocol_spec(protocol).space_sensitive;
    Table t({"budget", "K", "cycle", "slots", "b", "mscale", "bits/proc",
             "steps/run", "digest ok"});
    for (const Point& point : points) {
      if (!sensitive && !point.space.is_default()) continue;
      const FrontierPerf serial =
          measure_space_frontier(protocol, point.space, n, trials, 1);
      const FrontierPerf wide =
          measure_space_frontier(protocol, point.space, n, trials, jobs);
      const FrontierPerf forked =
          measure_space_frontier(protocol, point.space, n, trials, 1, 2);
      const bool digests_ok =
          wide.digest == serial.digest && forked.digest == serial.digest;
      t.add_row({point.tag, Table::num(point.space.K),
                 Table::num(point.space.cycle()),
                 Table::num(point.space.slots), Table::num(point.space.b),
                 Table::num(point.space.m_scale),
                 bounded ? Table::num(space_bits_per_process(point.space, n), 0)
                         : std::string("n/a"),
                 Table::num(serial.mean_steps, 0),
                 digests_ok ? "yes" : "NO"});
      BPRC_REQUIRE(digests_ok,
                   "frontier digest must not depend on jobs/workers");
    }
    std::printf("%s:\n", protocol.c_str());
    t.print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bprc::bench

int main() {
  bprc::bench::frontier_table();
  return 0;
}
