// E5 — the headline theorem (§6.3): BPRC decides in a CONSTANT expected
// number of rounds against every adversary, for a polynomial expected
// total number of primitive steps.
//
// The table sweeps n × adversary and reports the rounds-to-decide
// distribution (mean / p50 / p95 / max) and total primitive steps; the
// footer fits total steps against n³ (scan O(n) × coin walk O(n²) per
// round × O(1) rounds).
#include <cmath>
#include <cstdio>
#include <memory>

#include "experiment_common.hpp"

namespace bprc::bench {
namespace {

void run() {
  const std::uint64_t trials = scaled_trials(30);
  print_banner("E5",
               "BPRC: constant expected rounds, polynomial expected steps");
  std::printf(
      "split inputs (0,1,0,1,...), %llu runs per cell, K=2, b=4.\n"
      "rounds = local round at which the last decider decided.\n\n",
      static_cast<unsigned long long>(trials));

  Table t({"n", "adversary", "rounds mean", "p50", "p95", "max",
           "steps mean", "steps p95"});
  std::vector<double> xs;
  std::vector<double> ys;
  for (const int n : {2, 4, 6, 8}) {
    for (const std::string adv :
         {"random", "lockstep", "leader-suppress", "coin-bias"}) {
      Samples rounds;
      Samples steps;
      const std::uint64_t cell = sweep_cell(n, adv);
      run_cells<engine::TrialOutcome>(
          trials,
          [&](std::uint64_t seed, SimReuse& reuse) {
            engine::TrialSpec spec;
            spec.protocol = "bprc";
            spec.factory = bprc_factory(n);
            spec.inputs = split_inputs(n);
            spec.adversary = adv;
            spec.seed = seed;
            spec.adversary_seed = cell_seed(cell, seed);
            spec.max_steps = kRunBudget;
            spec.record = false;
            return engine::run_trial(spec, &reuse);
          },
          [&](std::uint64_t, engine::TrialOutcome&& out) {
            const auto& res = out.result;
            BPRC_REQUIRE(res.ok(), "consensus run failed");
            rounds.add(static_cast<double>(res.max_round));
            steps.add(static_cast<double>(res.total_steps));
          });
      t.add_row({Table::num(n), adv, Table::num(rounds.mean(), 2),
                 Table::num(rounds.quantile(0.5), 1),
                 Table::num(rounds.quantile(0.95), 1),
                 Table::num(rounds.max(), 0), Table::num(steps.mean(), 0),
                 Table::num(steps.quantile(0.95), 0)});
      if (adv == "coin-bias") {
        xs.push_back(n);
        ys.push_back(steps.mean());
      }
    }
  }
  t.print();
  // Measured growth order: least-squares slope of log(steps) vs log(n)
  // over the coin-bias column.
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  const double m = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
  std::printf(
      "\nmeasured growth order (coin-bias column): steps ~ n^%.2f —\n"
      "polynomial, as the paper proves (scan O(n) x walk O(n^2) per\n"
      "contested round x O(1) rounds predicts ~n^3); rounds stay O(1)\n"
      "across n AND adversaries (compare the rounds columns down the table).\n",
      slope);
}

}  // namespace
}  // namespace bprc::bench

int main() {
  bprc::bench::run();
  return 0;
}
