// E9 — micro-benchmarks (google-benchmark): the primitive costs
// everything else is built from. Establishes that the fiber-based
// simulator sustains millions of primitive shared-memory steps per second
// on one core, which is what makes the Monte-Carlo experiments feasible.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "coin/coin_logic.hpp"
#include "registers/register.hpp"
#include "runtime/adversary.hpp"
#include "runtime/fiber.hpp"
#include "runtime/sim_runtime.hpp"
#include "snapshot/scannable_memory.hpp"
#include "strip/distance_graph.hpp"
#include "strip/edge_counters.hpp"
#include "strip/token_game.hpp"
#include "timestamp/bounded_timestamps.hpp"
#include "util/rng.hpp"

namespace bprc {
namespace {

void BM_FiberSwitch(benchmark::State& state) {
  Fiber* self = nullptr;
  bool stop = false;
  Fiber fiber([&] {
    while (!stop) self->yield();
  });
  self = &fiber;
  for (auto _ : state) {
    fiber.resume();  // one resume+yield round trip
  }
  stop = true;
  fiber.resume();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FiberSwitch);

void BM_SimulatorStepThroughput(benchmark::State& state) {
  // Whole-stack step cost: checkpoint + adversary pick + fiber switch +
  // register op, measured over a 4-process register ping workload.
  const int n = 4;
  for (auto _ : state) {
    state.PauseTiming();
    SimRuntime rt(n, std::make_unique<RandomAdversary>(1), 1);
    SWMRRegister<int> reg(rt, 0, 0);
    for (ProcId p = 0; p < n; ++p) {
      rt.spawn(p, [&rt, &reg, p] {
        for (int k = 0; k < 2500; ++k) {
          if (p == 0) {
            reg.write(k);
          } else {
            reg.read();
          }
        }
      });
    }
    state.ResumeTiming();
    rt.run(~0ull);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorStepThroughput)->Unit(benchmark::kMillisecond);

void BM_ScannableMemoryScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SimRuntime rt(n, std::make_unique<RoundRobinAdversary>(), 1);
    ScannableMemory<int> mem(rt, 0);
    rt.spawn(0, [&mem] {
      for (int k = 0; k < 200; ++k) benchmark::DoNotOptimize(mem.scan());
    });
    state.ResumeTiming();
    rt.run(~0ull);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_ScannableMemoryScan)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_MakeGraph(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int K = 2;
  // A representative mid-game counter configuration.
  Rng rng(3);
  TokenGame game(n, K);
  std::vector<EdgeCounters> rows(static_cast<std::size_t>(n),
                                 initial_edge_counters(n));
  for (int m = 0; m < 200; ++m) {
    const int mover = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const DistanceGraph g = make_graph(rows, K);
    inc_counters(mover, g, rows[static_cast<std::size_t>(mover)]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_graph(rows, K));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MakeGraph)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_GraphDist(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  TokenGame game(n, 2);
  for (int m = 0; m < 100; ++m) {
    game.move_token(static_cast<int>(rng.below(static_cast<std::uint64_t>(n))));
  }
  const DistanceGraph g = DistanceGraph::from_positions(game.positions(), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.dist(static_cast<int>(rng.below(
                                 static_cast<std::uint64_t>(n))),
                             0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GraphDist)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_IncCounters(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int K = 2;
  std::vector<EdgeCounters> rows(static_cast<std::size_t>(n),
                                 initial_edge_counters(n));
  Rng rng(7);
  for (auto _ : state) {
    const int mover = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const DistanceGraph g = make_graph(rows, K);
    inc_counters(mover, g, rows[static_cast<std::size_t>(mover)]);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncCounters)->Arg(4)->Arg(8)->Arg(16);

void BM_TokenGameMove(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TokenGame game(n, 2);
  Rng rng(9);
  for (auto _ : state) {
    game.move_token(static_cast<int>(rng.below(static_cast<std::uint64_t>(n))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TokenGameMove)->Arg(8)->Arg(32);

void BM_CoinValue(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CoinParams params = CoinParams::standard(n, 4);
  std::vector<std::int64_t> counters(static_cast<std::size_t>(n), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coin_value(counters, 0, params));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoinValue)->Arg(4)->Arg(32);

void BM_BoundedTimestampNewLabel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BoundedTimestampSystem ts(n);
  Rng rng(13);
  std::vector<BoundedTimestampSystem::Label> labels(
      static_cast<std::size_t>(n), ts.initial_label());
  for (auto _ : state) {
    const auto fresh = ts.new_label(labels);
    labels[rng.below(static_cast<std::uint64_t>(n))] = fresh;
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundedTimestampNewLabel)->Arg(4)->Arg(16);

void BM_RngFlip(benchmark::State& state) {
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.flip());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngFlip);

}  // namespace
}  // namespace bprc

BENCHMARK_MAIN();
