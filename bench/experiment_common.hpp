// Shared plumbing for the experiment harnesses (bench/bench_*.cpp).
//
// Every harness runs with no arguments in seconds on a single laptop core
// and prints fixed-width tables; BPRC_SCALE multiplies the Monte-Carlo
// trial counts for higher-fidelity runs, BPRC_JOBS sets the worker-thread
// count for the Monte-Carlo cells (default: hardware concurrency).
// EXPERIMENTS.md is regenerated from exactly this output — run_cells
// delivers outcomes in trial order, so the tables are byte-identical at
// every BPRC_JOBS level.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "consensus/abrahamson.hpp"
#include "consensus/aspnes_herlihy.hpp"
#include "consensus/bprc.hpp"
#include "consensus/driver.hpp"
#include "consensus/strong_coin.hpp"
#include "engine/adversaries.hpp"
#include "engine/executor.hpp"
#include "engine/trial.hpp"
#include "runtime/adversary.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace bprc::bench {

/// Per-cell seed derivation for sweep harnesses: a splitmix64 chain over
/// (cell_id, trial). Affine maps with small multipliers (the old
/// `seed * 977 + 5`) alias across cells — cell (a, trial t) can land on
/// the same adversary seed as cell (b, trial u) whenever
/// a*977 + t = b*977 + u — silently correlating supposedly independent
/// Monte-Carlo columns. Hashing both coordinates through splitmix64
/// decorrelates every (cell, trial) pair.
inline std::uint64_t cell_seed(std::uint64_t cell_id, std::uint64_t trial) {
  std::uint64_t s = cell_id;
  std::uint64_t mixed = splitmix64(s);  // advance by cell id
  s = mixed ^ (trial * 0x9E3779B97F4A7C15ULL);
  return splitmix64(s);
}

/// Cell id for (n, adversary-name) sweep cells: FNV-1a over the name,
/// mixed with n. Feed the result to cell_seed.
inline std::uint64_t sweep_cell(int n, const std::string& adversary) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : adversary) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h ^ (static_cast<std::uint64_t>(n) << 1);
}

inline ProtocolFactory bprc_factory(int n, int K = 2, int b = 4) {
  return [n, K, b](Runtime& rt) {
    return std::make_unique<BPRCConsensus>(rt, BPRCParams::standard(n, K, b));
  };
}

inline ProtocolFactory bprc_factory_params(BPRCParams params) {
  return [params](Runtime& rt) {
    return std::make_unique<BPRCConsensus>(rt, params);
  };
}

inline ProtocolFactory ah_factory(int n, int b = 4) {
  return [n, b](Runtime& rt) {
    return std::make_unique<AspnesHerlihyConsensus>(
        rt, CoinParams::standard(n, b));
  };
}

inline ProtocolFactory local_coin_factory() {
  return [](Runtime& rt) { return std::make_unique<LocalCoinConsensus>(rt); };
}

inline ProtocolFactory strong_factory(std::uint64_t coin_seed) {
  return [coin_seed](Runtime& rt) {
    return std::make_unique<StrongCoinConsensus>(rt, coin_seed);
  };
}

/// Adversary factory keyed by name, freshly seeded per run. Forwards to
/// the engine registry (engine/adversaries.hpp) — the one name→adversary
/// mapping the whole repo shares; BPRC_REQUIRE on unknown names.
inline std::unique_ptr<Adversary> make_adversary(const std::string& name,
                                                 std::uint64_t seed) {
  return engine::make_adversary(name, seed);
}

/// Worker threads for the Monte-Carlo cells: BPRC_JOBS if set (>= 1),
/// else hardware concurrency. BPRC_JOBS=1 is the exact serial path.
inline unsigned bench_jobs() {
  const std::int64_t v = env_int("BPRC_JOBS", 0);
  return v >= 1 ? static_cast<unsigned>(v) : engine::default_jobs();
}

/// Engine-backed Monte-Carlo cell runner — the one trial loop every
/// bench_* harness uses. Executes `trials` independent trials (indices
/// 0..trials-1) across an engine::TrialExecutor worker pool and delivers
/// each outcome to `grade` strictly in trial order, so every
/// Samples/Proportion fold — and therefore every printed table — is
/// byte-identical at any BPRC_JOBS level.
///
/// `execute` runs on a worker thread: it may use the worker's pinned
/// SimReuse (or build its own SimRuntime) but must not touch shared
/// mutable state. `grade` runs single-threaded.
template <typename Outcome>
inline void run_cells(
    std::uint64_t trials,
    const std::function<Outcome(std::uint64_t, SimReuse&)>& execute,
    const std::function<void(std::uint64_t, Outcome&&)>& grade,
    unsigned jobs = 0) {
  engine::TrialExecutor executor({jobs == 0 ? bench_jobs() : jobs, 0});
  std::uint64_t generated = 0;
  executor.run_ordered<std::uint64_t, Outcome>(
      [&]() -> std::optional<std::uint64_t> {
        if (generated >= trials) return std::nullopt;
        return generated++;
      },
      execute,
      [&grade](std::size_t, const std::uint64_t& trial, Outcome&& out) {
        grade(trial, std::move(out));
        return true;
      });
}

/// Split inputs 0,1,0,1,... — the hardest input pattern.
inline std::vector<int> split_inputs(int n) {
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) inputs[static_cast<std::size_t>(i)] = i % 2;
  return inputs;
}

inline constexpr std::uint64_t kRunBudget = 400'000'000;

}  // namespace bprc::bench
