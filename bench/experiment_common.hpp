// Shared plumbing for the experiment harnesses (bench/bench_*.cpp).
//
// Every harness runs with no arguments in seconds on a single laptop core
// and prints fixed-width tables; BPRC_SCALE multiplies the Monte-Carlo
// trial counts for higher-fidelity runs. EXPERIMENTS.md is regenerated
// from exactly this output.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "consensus/abrahamson.hpp"
#include "consensus/aspnes_herlihy.hpp"
#include "consensus/bprc.hpp"
#include "consensus/driver.hpp"
#include "consensus/strong_coin.hpp"
#include "runtime/adversary.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace bprc::bench {

/// Per-cell seed derivation for sweep harnesses: a splitmix64 chain over
/// (cell_id, trial). Affine maps with small multipliers (the old
/// `seed * 977 + 5`) alias across cells — cell (a, trial t) can land on
/// the same adversary seed as cell (b, trial u) whenever
/// a*977 + t = b*977 + u — silently correlating supposedly independent
/// Monte-Carlo columns. Hashing both coordinates through splitmix64
/// decorrelates every (cell, trial) pair.
inline std::uint64_t cell_seed(std::uint64_t cell_id, std::uint64_t trial) {
  std::uint64_t s = cell_id;
  std::uint64_t mixed = splitmix64(s);  // advance by cell id
  s = mixed ^ (trial * 0x9E3779B97F4A7C15ULL);
  return splitmix64(s);
}

/// Cell id for (n, adversary-name) sweep cells: FNV-1a over the name,
/// mixed with n. Feed the result to cell_seed.
inline std::uint64_t sweep_cell(int n, const std::string& adversary) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : adversary) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h ^ (static_cast<std::uint64_t>(n) << 1);
}

inline ProtocolFactory bprc_factory(int n, int K = 2, int b = 4) {
  return [n, K, b](Runtime& rt) {
    return std::make_unique<BPRCConsensus>(rt, BPRCParams::standard(n, K, b));
  };
}

inline ProtocolFactory bprc_factory_params(BPRCParams params) {
  return [params](Runtime& rt) {
    return std::make_unique<BPRCConsensus>(rt, params);
  };
}

inline ProtocolFactory ah_factory(int n, int b = 4) {
  return [n, b](Runtime& rt) {
    return std::make_unique<AspnesHerlihyConsensus>(
        rt, CoinParams::standard(n, b));
  };
}

inline ProtocolFactory local_coin_factory() {
  return [](Runtime& rt) { return std::make_unique<LocalCoinConsensus>(rt); };
}

inline ProtocolFactory strong_factory(std::uint64_t coin_seed) {
  return [coin_seed](Runtime& rt) {
    return std::make_unique<StrongCoinConsensus>(rt, coin_seed);
  };
}

/// Adversary factory keyed by name, freshly seeded per run.
inline std::unique_ptr<Adversary> make_adversary(const std::string& name,
                                                 std::uint64_t seed) {
  if (name == "random") return std::make_unique<RandomAdversary>(seed);
  if (name == "round-robin") return std::make_unique<RoundRobinAdversary>();
  if (name == "lockstep") return std::make_unique<LockstepAdversary>(seed);
  if (name == "leader-suppress") {
    return std::make_unique<LeaderSuppressAdversary>(seed);
  }
  if (name == "coin-bias") return std::make_unique<CoinBiasAdversary>(seed);
  BPRC_REQUIRE(false, "unknown adversary name");
  return nullptr;
}

/// Split inputs 0,1,0,1,... — the hardest input pattern.
inline std::vector<int> split_inputs(int n) {
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) inputs[static_cast<std::size_t>(i)] = i % 2;
  return inputs;
}

inline constexpr std::uint64_t kRunBudget = 400'000'000;

}  // namespace bprc::bench
