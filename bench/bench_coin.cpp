// E2/E3/E4 — the bounded weak shared coin (§3).
//
//   E2 (Lemma 3.1): for each side, ALL processes return that value with
//       probability ≥ (b-1)/2b; disagreement ≤ 1/b — including against
//       the coin-attacking adversary.
//   E3 (Lemma 3.2): expected walk steps to decision = O((b+1)²·n²) —
//       the table reports steps/n² stability and the quadratic fit.
//   E4 (Lemmas 3.3/3.4): probability that the bounded counters overflow
//       (deterministic-heads rule) decays like ~ C·b·n/√m; the paper's
//       m = Θ(n²) choice pushes it below the coin's inherent 1/b noise.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "coin/shared_coin.hpp"
#include "experiment_common.hpp"
#include "runtime/sim_runtime.hpp"

namespace bprc::bench {
namespace {

struct TossStats {
  Proportion all_heads;
  Proportion all_tails;
  Proportion disagree;
  Proportion any_overflow;
  RunningStat walk_steps;
};

/// What one toss trial produces; folded into TossStats in trial order by
/// run_cells, so the tables match the old serial loop byte for byte.
struct TossOutcome {
  int heads = 0;
  bool overflow = false;
  std::uint64_t walk_steps = 0;
};

TossStats run_tosses(int n, int b, std::int64_t m_override,
                     const std::string& adversary, std::uint64_t trials) {
  TossStats st;
  run_cells<TossOutcome>(
      trials,
      [&](std::uint64_t seed, SimReuse& reuse) {
        // Not a consensus run — the trial spawns bare coin.toss() bodies —
        // but the worker's recycled simulator serves it all the same.
        SimRuntime& rt =
            reuse.acquire(n, make_adversary(adversary, seed * 131 + 7), seed);
        CoinParams params = CoinParams::standard(n, b);
        if (m_override >= 0) params.m = m_override;
        SharedCoin coin(rt, params);
        std::vector<CoinValue> results(static_cast<std::size_t>(n),
                                       CoinValue::kUndecided);
        for (ProcId p = 0; p < n; ++p) {
          rt.spawn(p, [&coin, &results, p] {
            results[static_cast<std::size_t>(p)] = coin.toss();
          });
        }
        const RunResult res = rt.run(kRunBudget);
        BPRC_REQUIRE(res.reason == RunResult::Reason::kAllDone,
                     "coin toss failed to finish in budget");
        TossOutcome out;
        for (const auto v : results) out.heads += v == CoinValue::kHeads;
        out.overflow = coin.overflows() > 0;
        out.walk_steps = coin.walk_steps();
        return out;
      },
      [&](std::uint64_t, TossOutcome&& out) {
        st.all_heads.add(out.heads == n);
        st.all_tails.add(out.heads == 0);
        st.disagree.add(out.heads != 0 && out.heads != n);
        st.any_overflow.add(out.overflow);
        st.walk_steps.add(static_cast<double>(out.walk_steps));
      });
  return st;
}

void e2_agreement() {
  const std::uint64_t trials = scaled_trials(150);
  print_banner("E2", "Lemma 3.1: weak shared coin agreement probability");
  std::printf(
      "n=4, %llu tosses per cell. Claim: P[disagree] <= 1/b and\n"
      "P[all agree on v] >= (b-1)/2b per side, under every adversary.\n\n",
      static_cast<unsigned long long>(trials));
  Table t({"b", "adversary", "P[all heads]", "P[all tails]",
           "P[disagree] (95% CI)", "bound 1/b", "floor (b-1)/2b"});
  for (const int b : {2, 4, 8}) {
    for (const std::string adv : {"random", "coin-bias"}) {
      const auto st = run_tosses(4, b, -1, adv, trials);
      const auto ci = st.disagree.wilson95();
      t.add_row({Table::num(b), adv, Table::num(st.all_heads.estimate(), 3),
                 Table::num(st.all_tails.estimate(), 3),
                 Table::prob_ci(st.disagree.estimate(), ci.low, ci.high),
                 Table::num(1.0 / b, 3),
                 Table::num((b - 1.0) / (2.0 * b), 3)});
    }
  }
  t.print();
}

void e3_steps() {
  const std::uint64_t trials = scaled_trials(60);
  print_banner("E3", "Lemma 3.2: expected walk steps = O((b+1)^2 n^2)");
  std::printf("b=2, random adversary, %llu tosses per n.\n\n",
              static_cast<unsigned long long>(trials));
  Table t({"n", "mean walk steps", "steps / n^2", "paper bound (b+1)^2"});
  std::vector<double> xs;
  std::vector<double> ys;
  const int b = 2;
  for (const int n : {2, 4, 8, 12, 16}) {
    const auto st = run_tosses(n, b, -1, "random", trials);
    xs.push_back(n);
    ys.push_back(st.walk_steps.mean());
    t.add_row({Table::num(n), Table::num(st.walk_steps.mean(), 1),
               Table::num(st.walk_steps.mean() / (n * n), 2),
               Table::num((b + 1) * (b + 1))});
  }
  t.print();
  const auto fit = fit_power(xs, ys, 2.0);
  std::printf(
      "\nquadratic fit: steps ~= %.2f * n^2 (max relative residual %.0f%%)\n"
      "(the paper's (b+1)^2 = %d sits above the fitted constant: the lemma\n"
      "is an upper bound).\n",
      fit.coefficient, fit.max_rel_residual * 100, (b + 1) * (b + 1));
}

void e4_overflow() {
  const std::uint64_t trials = scaled_trials(200);
  print_banner("E4",
               "Lemmas 3.3/3.4: counter overflow probability decays in m");
  std::printf(
      "n=2, b=2, coin-bias adversary (longest excursions), %llu tosses per\n"
      "m. 'overflow' = some process answered through the deterministic\n"
      "heads rule. Paper: P[overflow] <= C*b*n/sqrt(m); the standard\n"
      "m = (4(b+1)n)^2 makes it negligible next to 1/b.\n\n",
      static_cast<unsigned long long>(trials));
  Table t({"m", "P[overflow] (95% CI)", "b*n/sqrt(m)", "P[disagree]"});
  const std::int64_t standard_m = CoinParams::standard(2, 2).m;
  for (const std::int64_t m : std::vector<std::int64_t>{2, 8, 32, 128, standard_m}) {
    const auto st = run_tosses(2, 2, m, "coin-bias", trials);
    const auto ci = st.any_overflow.wilson95();
    t.add_row({Table::num(m),
               Table::prob_ci(st.any_overflow.estimate(), ci.low, ci.high),
               Table::num(2.0 * 2.0 / std::sqrt(static_cast<double>(m)), 3),
               Table::num(st.disagree.estimate(), 3)});
  }
  t.print();
}

}  // namespace
}  // namespace bprc::bench

int main() {
  bprc::bench::e2_agreement();
  bprc::bench::e3_steps();
  bprc::bench::e4_overflow();
  return 0;
}
