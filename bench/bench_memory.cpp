// E6 — the paper's headline: BOUNDED shared memory.
//
// Two tables.
//
// Table 1 (consensus registers): run BPRC and the unbounded baselines on
// progressively longer executions (forced by hostile adversaries and
// seeds binned by execution length) and report the high-water marks of
// everything stored in shared registers. BPRC's entries are flat and sit
// under a static bound that depends only on n; AH88's round numbers and
// coin-strip length grow with the execution, and the local-coin
// baseline's version timestamps likewise.
//
// Table 2 (snapshot substrate): the scannable memory's register domains
// are independent of the number of writes; the classic sequence-number
// snapshot grows linearly.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "experiment_common.hpp"
#include "runtime/sim_runtime.hpp"
#include "snapshot/baseline_snapshot.hpp"
#include "snapshot/scannable_memory.hpp"

namespace bprc::bench {
namespace {

void consensus_table() {
  const int n = 6;
  print_banner("E6a", "Register high-water marks vs executions sampled (n=6)");
  std::printf(
      "Unboundedness is a worst-case property: an unbounded protocol's\n"
      "register contents have no a-priori ceiling, so their observed\n"
      "maximum keeps climbing as more (and longer) executions are sampled.\n"
      "Each row: cumulative maxima over the first R coin-bias runs with\n"
      "split inputs. BPRC's columns are pinned by static functions of n\n"
      "regardless of R; the baselines' climb.\n\n");

  struct Arm {
    std::string name;
    ProtocolFactory factory;
  };
  const std::vector<Arm> arms = {
      {"bprc (bounded)", bprc_factory(n)},
      {"aspnes-herlihy", ah_factory(n)},
      {"local-coin", local_coin_factory()},
  };

  const std::vector<std::uint64_t> checkpoints = {
      scaled_trials(10), scaled_trials(40), scaled_trials(160)};

  Table t({"protocol", "runs sampled", "max round in reg", "max |counter|",
           "coin locations", "static bound"});
  for (const auto& arm : arms) {
    std::int64_t round = 0;
    std::int64_t counter = 0;
    std::int64_t locations = 0;
    std::int64_t bound = 0;
    std::size_t next_checkpoint = 0;
    for (std::uint64_t seed = 0; seed < checkpoints.back(); ++seed) {
      const auto res = run_consensus_sim(
          arm.factory, split_inputs(n),
          make_adversary("coin-bias", seed * 313 + 1), seed, kRunBudget);
      BPRC_REQUIRE(res.ok(), "consensus run failed");
      round = std::max(round, res.footprint.max_round_stored);
      counter = std::max(counter, res.footprint.max_counter);
      locations = std::max(locations, res.footprint.coin_locations);
      bound = res.footprint.static_bound;
      if (seed + 1 == checkpoints[next_checkpoint]) {
        t.add_row({arm.name, Table::num(seed + 1), Table::num(round),
                   Table::num(counter), Table::num(locations),
                   bound > 0 ? Table::num(bound)
                             : std::string("none (unbounded)")});
        ++next_checkpoint;
      }
    }
  }
  t.print();
  std::printf(
      "\nReading: BPRC stores NO round number anywhere (edge counters encode\n"
      "only K-capped differences, mod 3K) and its counters sit far below\n"
      "their static n-only bound however many executions are sampled. The\n"
      "baselines' round/version registers climb as the sampled tail grows —\n"
      "they admit no bound independent of the execution.\n");
}

void snapshot_table() {
  print_banner("E6b", "Snapshot substrate: bounded vs sequence numbers");
  std::printf(
      "3 processes, W writes each (interleaved with scans); the unbounded\n"
      "snapshot's max stored sequence number grows as W does, while every\n"
      "field of the scannable memory stays in a fixed domain (values +\n"
      "1 toggle bit + n^2 arrow bits).\n\n");
  Table t({"writes per proc", "scannable-memory domain", "seqnum snapshot max"});
  for (const int w : {10, 100, 1000}) {
    SimRuntime rt(3, std::make_unique<RandomAdversary>(9), 9);
    UnboundedSnapshot<int> base(rt, 0);
    for (ProcId p = 0; p < 3; ++p) {
      rt.spawn(p, [&rt, &base, p, w] {
        for (int k = 0; k < w; ++k) {
          base.write(static_cast<int>(p) + k);
          if (k % 8 == 0) base.scan();
        }
      });
    }
    BPRC_REQUIRE(rt.run(kRunBudget).reason == RunResult::Reason::kAllDone,
                 "workload failed");
    t.add_row({Table::num(w), "payload + 1 toggle bit (constant)",
               Table::num(static_cast<std::int64_t>(base.max_sequence_number()))});
  }
  t.print();
}

}  // namespace
}  // namespace bprc::bench

int main() {
  bprc::bench::consensus_table();
  bprc::bench::snapshot_table();
  return 0;
}
