// E7 — the positioning table of the paper's introduction, measured:
//
//   protocol            space      expected time     primitive
//   CIL87-style         (rounds)   tiny              atomic coin flip
//   A88-style (local)   unbounded  EXPONENTIAL in n  r/w registers
//   AH88                unbounded  polynomial        r/w registers
//   BPRC (this paper)   BOUNDED    polynomial        r/w registers
//
// Reported: median and p90 primitive steps until all processes decide,
// under the benign (random) and hostile (lockstep — the local-coin
// killer) schedulers. The shape to verify: local-coin's column explodes
// with n while the other three stay polynomial; BPRC pays a constant
// factor over AH88 (it does strictly more bookkeeping per scan) and
// CIL87's strong primitive wins outright — the point of the line of work
// being that BPRC needs neither the primitive nor unbounded space.
#include <cstdio>
#include <memory>

#include "experiment_common.hpp"

namespace bprc::bench {
namespace {

void run() {
  const std::uint64_t trials = scaled_trials(20);
  print_banner("E7", "Head-to-head: BPRC vs A88 vs AH88 vs CIL87-style");
  std::printf("split inputs, %llu runs per cell; entries are primitive\n"
              "steps until the last process decides.\n\n",
              static_cast<unsigned long long>(trials));

  struct Arm {
    std::string name;
    bool exponential;
  };
  const std::vector<Arm> arms = {{"strong-coin", false},
                                 {"aspnes-herlihy", false},
                                 {"bprc", false},
                                 {"local-coin", true}};

  for (const std::string adv : {"random", "lockstep"}) {
    Table t({"n", "strong-coin p50", "aspnes-herlihy p50", "bprc p50",
             "local-coin p50", "local-coin p90"});
    for (const int n : {2, 3, 4, 5, 6, 8, 10, 12}) {
      std::vector<std::string> row{Table::num(n)};
      Samples local_coin_steps;
      for (const auto& arm : arms) {
        ProtocolFactory factory;
        if (arm.name == "strong-coin") {
          factory = strong_factory(1234);
        } else if (arm.name == "aspnes-herlihy") {
          factory = ah_factory(n);
        } else if (arm.name == "bprc") {
          factory = bprc_factory(n);
        } else {
          factory = local_coin_factory();
        }
        Samples steps;
        run_cells<engine::TrialOutcome>(
            trials,
            [&](std::uint64_t seed, SimReuse& reuse) {
              engine::TrialSpec spec;
              spec.protocol = arm.name;
              spec.factory = factory;
              spec.inputs = split_inputs(n);
              spec.adversary = adv;
              spec.seed = seed;
              spec.adversary_seed = seed * 59 + 3;
              spec.max_steps = kRunBudget;
              spec.record = false;
              return engine::run_trial(spec, &reuse);
            },
            [&](std::uint64_t, engine::TrialOutcome&& out) {
              BPRC_REQUIRE(out.result.ok(), "consensus run failed");
              steps.add(static_cast<double>(out.result.total_steps));
            });
        row.push_back(Table::num(steps.quantile(0.5), 0));
        if (arm.name == "local-coin") {
          row.push_back(Table::num(steps.quantile(0.9), 0));
        }
      }
      t.add_row(row);
    }
    std::printf("scheduler: %s\n", adv.c_str());
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Shape check: read the local-coin columns down — under lockstep they\n"
      "roughly double per added process (2^Theta(n)) and overtake BPRC's\n"
      "polynomial column by n ~= 12; the other three grow polynomially.\n"
      "That reproduces the paper's positioning: polynomial time WITHOUT the\n"
      "strong primitive (CIL87) and WITHOUT unbounded memory (A88, AH88).\n"
      "\n"
      "Note the aspnes-herlihy and bprc columns match step for step: under\n"
      "identical schedules and coin flips, BPRC's bounded machinery (edge\n"
      "counters instead of round numbers, K+1 recycled coin slots instead\n"
      "of an infinite strip) induces the SAME high-level execution until a\n"
      "process trails far enough for withdrawal to bite, which a 2-3 round\n"
      "run never triggers. Bounded space here is literally free in time —\n"
      "the paper's trade-off at its best. The columns are kept separate\n"
      "because they are measured from the two distinct implementations.\n");
}

}  // namespace
}  // namespace bprc::bench

int main() {
  bprc::bench::run();
  return 0;
}
