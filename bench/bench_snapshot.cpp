// E1 — Scannable memory (§2): operation costs, progress under contention,
// and on-the-fly verification of P1–P3, for both arrow implementations.
//
// Paper claims regenerated here:
//   * write is wait-free at exactly n primitive steps;
//   * an uncontended scan costs 4(n-1) steps; contended scans retry only
//     when new writes land, and the alternating write/scan workload (the
//     consensus access pattern) always makes progress;
//   * the returned views satisfy regularity (P1), snapshot (P2) and scan
//     serializability (P3) — checked on the recorded histories of every
//     cell in the table;
//   * backing the arrows with Bloom's constructed 2W2R register costs a
//     constant factor (read 1 -> 3, write 1 -> 2 primitive steps).
#include <cstdio>
#include <memory>

#include "experiment_common.hpp"
#include "runtime/sim_runtime.hpp"
#include "snapshot/scannable_memory.hpp"
#include "snapshot/waitfree_snapshot.hpp"
#include "verify/snapshot_props.hpp"

namespace bprc::bench {
namespace {

using Arrow = ScannableMemory<int>::ArrowImpl;

struct CellResult {
  double write_steps = 0;
  double scan_steps = 0;  // mean per completed scan, contended workload
  double retries_per_scan = 0;
  std::string props = "?";
};

CellResult run_cell(int n, Arrow arrows, std::uint64_t trials) {
  CellResult out;
  RunningStat scan_cost;
  RunningStat retries;
  bool props_ok = true;
  const int ops = 8;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    SnapshotHistory hist;
    SimRuntime rt(n, std::make_unique<RandomAdversary>(seed * 7 + 1),
                  seed * 7 + 1);
    ScannableMemory<int> mem(rt, 0, arrows, &hist);
    std::vector<std::uint64_t> scan_step_samples;
    for (ProcId p = 0; p < n; ++p) {
      rt.spawn(p, [&rt, &mem, p, ops] {
        for (int k = 0; k < ops; ++k) {
          mem.write(static_cast<int>(p) * 100 + k);
          mem.scan();
        }
      });
    }
    const RunResult res = rt.run(kRunBudget);
    BPRC_REQUIRE(res.reason == RunResult::Reason::kAllDone,
                 "snapshot workload failed to finish");
    const double scans = static_cast<double>(n) * ops;
    // Subtract the (deterministic) write cost; the rest is scan work.
    // write = (n-1) arrow raises + 1 value write; a Bloom arrow write is
    // itself 2 primitive steps.
    const double write_cost =
        arrows == Arrow::kNative ? n : 2.0 * (n - 1) + 1.0;
    const double write_steps = write_cost * static_cast<double>(n) * ops;
    scan_cost.add((static_cast<double>(res.steps) - write_steps) / scans);
    retries.add(static_cast<double>(mem.scan_retries()) / scans);
    if (props_ok) {
      if (auto err = check_snapshot_properties(hist)) {
        props_ok = false;
        std::fprintf(stderr, "PROPERTY VIOLATION: %s\n", err->c_str());
      }
    }
  }
  out.write_steps =
      arrows == Arrow::kNative ? n : 2 * (n - 1) + 1;  // exact by construction
  out.scan_steps = scan_cost.mean();
  out.retries_per_scan = retries.mean();
  out.props = props_ok ? "P1,P2,P3 ok" : "VIOLATED";
  return out;
}

void run() {
  const std::uint64_t trials = scaled_trials(10);

  print_banner("E1", "Scannable memory (Section 2): cost, progress, P1-P3");
  std::printf(
      "workload: every process alternates write/scan 8 times, random\n"
      "adversary, %llu seeds per cell; scan cost is primitive steps per\n"
      "completed scan including retries (uncontended floor: 4(n-1)).\n\n",
      static_cast<unsigned long long>(trials));

  Table t({"n", "arrows", "write steps", "scan steps (mean)",
           "floor 4(n-1)", "retries/scan", "properties"});
  for (const int n : {2, 4, 8, 12, 16}) {
    const auto native = run_cell(n, Arrow::kNative, trials);
    t.add_row({Table::num(n), "native", Table::num(native.write_steps, 0),
               Table::num(native.scan_steps, 1), Table::num(4 * (n - 1)),
               Table::num(native.retries_per_scan, 2), native.props});
  }
  for (const int n : {2, 4, 8}) {
    const auto bloom = run_cell(n, Arrow::kBloom, std::max<std::uint64_t>(
                                                      trials / 2, 3));
    t.add_row({Table::num(n), "bloom-2w2r", Table::num(bloom.write_steps, 0),
               Table::num(bloom.scan_steps, 1), Table::num(4 * (n - 1)),
               Table::num(bloom.retries_per_scan, 2), bloom.props});
  }
  t.print();
  std::printf(
      "\nNote: with Bloom arrows, each arrow op is itself 2-3 primitive\n"
      "steps, so the scan-cost column sits ~2.5x above the native floor —\n"
      "the constant-factor price of building 2W2R from SWMR registers.\n");

  // Successor comparison: the AADGMS wait-free snapshot (1990) under the
  // same workload — scans can borrow embedded views instead of retrying.
  print_banner("E1b",
               "Successor: AADGMS wait-free snapshot on the same workload");
  Table t2({"n", "scan steps (mean)", "borrows/scan", "properties"});
  for (const int n : {2, 4, 8, 16}) {
    RunningStat scan_cost;
    RunningStat borrows;
    bool props_ok = true;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      SnapshotHistory hist;
      SimRuntime rt(n, std::make_unique<RandomAdversary>(seed * 7 + 1),
                    seed * 7 + 1);
      WaitFreeSnapshot<int> snap(rt, 0, &hist);
      const int ops = 8;
      for (ProcId p = 0; p < n; ++p) {
        rt.spawn(p, [&rt, &snap, p, ops] {
          for (int k = 0; k < ops; ++k) {
            snap.update(static_cast<int>(p) * 100 + k);
            snap.scan();
          }
        });
      }
      const RunResult res = rt.run(kRunBudget);
      BPRC_REQUIRE(res.reason == RunResult::Reason::kAllDone,
                   "wait-free workload failed to finish");
      // updates embed a scan, so attribute everything to "scan work" per
      // high-level op (2 ops per iteration).
      const double highlevel = 2.0 * static_cast<double>(n) * ops;
      scan_cost.add(static_cast<double>(res.steps) / highlevel);
      borrows.add(static_cast<double>(snap.scan_borrows()) /
                  (static_cast<double>(n) * ops));
      if (props_ok) {
        if (auto err = check_snapshot_properties(hist)) {
          props_ok = false;
          std::fprintf(stderr, "PROPERTY VIOLATION: %s\n", err->c_str());
        }
      }
    }
    t2.add_row({Table::num(n), Table::num(scan_cost.mean(), 1),
                Table::num(borrows.mean(), 2),
                props_ok ? "P1,P2,P3 ok" : "VIOLATED"});
  }
  t2.print();
  std::printf(
      "\nThe paper's scan is lock-free (starvable by endless writers; see\n"
      "test_waitfree_snapshot's contrast test); AADGMS pays embedded-scan\n"
      "updates to make scans wait-free. Both satisfy P1-P3.\n");
}

}  // namespace
}  // namespace bprc::bench

int main() {
  bprc::bench::run();
  return 0;
}
