// E8 — ablations over the design constants the paper fixes.
//
//   (a) coin barrier b: larger b lowers per-round disagreement (fewer
//       rounds) but each coin walk costs O((b+1)²n²) steps — the total
//       work curve exposes the trade-off; the paper's b is a small
//       constant on the flat part.
//   (b) counter bound m: the bounded coin's only new failure mode.
//       Shrinking m below the walk's natural excursion range injects
//       deterministic-heads overflows; the experiment shows consensus
//       stays CORRECT for every m (safety never depends on m) while
//       extra disagreement/rounds appear only at absurdly small m.
//   (c) strip constant K: K=2 suffices (the paper's choice); larger K
//       keeps more coin history per register for no round-count benefit
//       — pure register-size cost.
//   (d) arrow substrate: native 2W2R vs Bloom construction — constant
//       step-factor, identical behavior.
#include <cstdio>
#include <memory>
#include <vector>

#include "experiment_common.hpp"

namespace bprc::bench {
namespace {

struct Cell {
  double rounds_mean = 0;
  double steps_mean = 0;
  double steps_p95 = 0;
};

Cell measure(ProtocolFactory factory, int n, const std::string& adv,
             std::uint64_t trials, std::uint64_t salt) {
  Samples rounds;
  Samples steps;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    const auto res =
        run_consensus_sim(factory, split_inputs(n),
                          make_adversary(adv, seed * 17 + salt), seed,
                          kRunBudget);
    BPRC_REQUIRE(res.ok(), "ablation run failed");
    rounds.add(static_cast<double>(res.max_round));
    steps.add(static_cast<double>(res.total_steps));
  }
  return {rounds.mean(), steps.mean(), steps.quantile(0.95)};
}

void ablate_b() {
  const std::uint64_t trials = scaled_trials(25);
  const int n = 4;
  print_banner("E8a", "Coin barrier b: rounds vs per-round walk cost");
  Table t({"b", "rounds mean", "steps mean", "steps p95"});
  for (const int b : {2, 4, 8, 16}) {
    const auto c = measure(bprc_factory(n, 2, b), n, "coin-bias", trials,
                           static_cast<std::uint64_t>(b));
    t.add_row({Table::num(b), Table::num(c.rounds_mean, 2),
               Table::num(c.steps_mean, 0), Table::num(c.steps_p95, 0)});
  }
  t.print();
  std::printf(
      "\nRounds fall slowly with b (disagreement <= 1/b is already small);\n"
      "per-coin cost rises as (b+1)^2 — small constant b wins, as chosen\n"
      "by the paper.\n");
}

void ablate_m() {
  const std::uint64_t trials = scaled_trials(25);
  const int n = 4;
  print_banner("E8b", "Counter bound m: safety never at stake");
  Table t({"m", "rounds mean", "steps mean", "all runs consistent"});
  BPRCParams base = BPRCParams::standard(n, 2, 4);
  for (const std::int64_t m : std::vector<std::int64_t>{1, 8, 64, base.coin.m}) {
    BPRCParams params = base;
    params.coin.m = m;
    bool all_ok = true;
    Samples rounds;
    Samples steps;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      const auto res = run_consensus_sim(
          bprc_factory_params(params), split_inputs(n),
          make_adversary("coin-bias", seed * 29 + 1), seed, kRunBudget);
      all_ok = all_ok && res.ok();
      rounds.add(static_cast<double>(res.max_round));
      steps.add(static_cast<double>(res.total_steps));
    }
    t.add_row({Table::num(m), Table::num(rounds.mean(), 2),
               Table::num(steps.mean(), 0), all_ok ? "yes" : "NO"});
  }
  t.print();
  std::printf(
      "\nEven m=1 (counters useless, constant overflow-heads) stays\n"
      "consistent and valid — the overflow rule only biases the coin;\n"
      "the m = Theta(n^2) choice restores the agreement probability.\n");
}

void ablate_k() {
  const std::uint64_t trials = scaled_trials(25);
  const int n = 4;
  print_banner("E8c", "Strip constant K: 2 suffices");
  Table t({"K", "rounds mean", "steps mean", "register coin slots (n*(K+1))"});
  for (const int K : {2, 3, 4, 6}) {
    const auto c = measure(bprc_factory(n, K, 4), n, "leader-suppress",
                           trials, static_cast<std::uint64_t>(K));
    t.add_row({Table::num(K), Table::num(c.rounds_mean, 2),
               Table::num(c.steps_mean, 0), Table::num(n * (K + 1))});
  }
  t.print();
}

void ablate_arrows() {
  const int n = 4;
  print_banner("E8d", "Arrow substrate: native 2W2R vs Bloom construction");
  std::printf(
      "Unanimous inputs: the execution path is coin-free and fixed, so the\n"
      "step ratio is exactly the constructed registers' per-op overhead\n"
      "(arrow write 1 -> 2 steps, arrow read 1 -> 3 steps).\n\n");
  auto run_once = [n](BPRCConsensus::ArrowImpl arrows) {
    const auto res = run_consensus_sim(
        [n, arrows](Runtime& rt) {
          return std::make_unique<BPRCConsensus>(rt, BPRCParams::standard(n),
                                                 arrows);
        },
        std::vector<int>(static_cast<std::size_t>(n), 1),
        make_adversary("round-robin", 1), 1, kRunBudget);
    BPRC_REQUIRE(res.ok(), "arrow ablation run failed");
    return res;
  };
  const auto native = run_once(BPRCConsensus::ArrowImpl::kNative);
  const auto bloom = run_once(BPRCConsensus::ArrowImpl::kBloom);
  Table t({"arrows", "rounds", "total steps", "step factor"});
  t.add_row({"native", Table::num(native.max_round),
             Table::num(native.total_steps), "1.00"});
  t.add_row({"bloom-2w2r", Table::num(bloom.max_round),
             Table::num(bloom.total_steps),
             Table::num(static_cast<double>(bloom.total_steps) /
                            static_cast<double>(native.total_steps),
                        2)});
  t.print();
}

}  // namespace
}  // namespace bprc::bench

int main() {
  bprc::bench::ablate_b();
  bprc::bench::ablate_m();
  bprc::bench::ablate_k();
  bprc::bench::ablate_arrows();
  return 0;
}
