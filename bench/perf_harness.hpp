// Measurement kernels shared by bench/bench_perf (human-readable tables)
// and tools/bprc_bench (machine-readable BENCH_sim.json).
//
// Four metrics, all wall-clock (util/stats.hpp Throughput — strictly
// outside the deterministic simulation):
//   * ns/context-switch — raw fiber park/unpark round-trip cost;
//   * ns/step           — total sweep wall time over total primitive
//                         operations, INCLUDING per-trial runtime setup
//                         (that is what a Monte-Carlo harness pays);
//   * sim-runs/sec      — whole consensus instances per second (serial);
//   * campaign runs/sec — the same sweep pushed through the trial
//                         engine's worker pool at a given jobs level —
//                         the scaling number PERFORMANCE.md tracks;
//   * sharded runs/sec  — the sweep as a campaign across forked worker
//                         processes (src/shard/): thread scaling plus
//                         fork/pipe/supervision overhead — what a
//                         crash-isolated `--workers N` run costs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "coin/coin_logic.hpp"
#include "consensus/driver.hpp"
#include "engine/executor.hpp"
#include "engine/trial.hpp"
#include "experiment_common.hpp"
#include "explore/consensus_explore.hpp"
#include "fault/campaign.hpp"
#include "runtime/adversary.hpp"
#include "runtime/fiber.hpp"
#include "shard/coordinator.hpp"
#include "util/assert.hpp"
#include "util/space_budget.hpp"
#include "util/stats.hpp"

namespace bprc::bench {

/// One sweep measurement over `trials` seeds of a single (protocol, n,
/// adversary) cell.
struct SweepPerf {
  double ns_per_step = 0.0;
  double runs_per_sec = 0.0;
  std::uint64_t total_steps = 0;
  std::uint64_t trials = 0;
};

/// Cost of one fiber context switch (one direction), measured as half of
/// a resume/yield round trip averaged over `rounds` round trips.
inline double measure_ctx_switch_ns(std::uint64_t rounds) {
  BPRC_REQUIRE(rounds > 0, "context-switch bench needs at least one round");
  Fiber* self = nullptr;
  Fiber ping([&self] {
    for (;;) self->yield();
  });
  self = &ping;
  // Warm the fiber stack (first resume runs the body prologue).
  ping.resume();
  Throughput timer;
  for (std::uint64_t i = 0; i < rounds; ++i) ping.resume();
  return timer.ns_per(rounds) / 2.0;
}

/// Monte-Carlo sweep of BPRC at process count `n` under the random
/// adversary, split inputs. Recycles one simulator across trials
/// (SimReuse) — the configuration every sweeping caller should use.
inline SweepPerf measure_bprc_sweep(int n, std::uint64_t trials) {
  const auto inputs = split_inputs(n);
  const std::uint64_t cell = sweep_cell(n, "random");
  SimReuse reuse;
  SweepPerf out;
  out.trials = trials;
  Throughput timer;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const auto res = run_consensus_sim(
        bprc_factory(n), inputs,
        std::make_unique<RandomAdversary>(cell_seed(cell ^ 0xADu, t)),
        cell_seed(cell, t), kRunBudget, std::chrono::nanoseconds::zero(),
        &reuse);
    BPRC_REQUIRE(res.ok(), "bench run failed");
    out.total_steps += res.total_steps;
  }
  const std::uint64_t ns = timer.elapsed_ns();
  out.ns_per_step = out.total_steps == 0
                        ? 0.0
                        : static_cast<double>(ns) /
                              static_cast<double>(out.total_steps);
  out.runs_per_sec = ns == 0 ? 0.0
                             : static_cast<double>(trials) * 1e9 /
                                   static_cast<double>(ns);
  return out;
}

/// The same BPRC/random sweep as measure_bprc_sweep, but pushed through
/// engine::TrialExecutor at `jobs` workers (0 = hardware concurrency).
/// The outcomes are identical to the serial sweep — this measures only
/// how much faster the engine delivers them. jobs=1 vs jobs=max is the
/// scaling ratio the acceptance gate and BENCH_sim.json record.
inline SweepPerf measure_campaign_throughput(int n, std::uint64_t trials,
                                             unsigned jobs) {
  const auto inputs = split_inputs(n);
  const std::uint64_t cell = sweep_cell(n, "random");
  engine::TrialExecutor executor({jobs, 0});
  SweepPerf out;
  out.trials = trials;
  std::uint64_t generated = 0;
  Throughput timer;
  executor.run_ordered<std::uint64_t, std::uint64_t>(
      [&]() -> std::optional<std::uint64_t> {
        if (generated >= trials) return std::nullopt;
        return generated++;
      },
      [&](const std::uint64_t& t, SimReuse& reuse) -> std::uint64_t {
        const auto res = run_consensus_sim(
            bprc_factory(n), inputs,
            std::make_unique<RandomAdversary>(cell_seed(cell ^ 0xADu, t)),
            cell_seed(cell, t), kRunBudget, std::chrono::nanoseconds::zero(),
            &reuse);
        BPRC_REQUIRE(res.ok(), "bench run failed");
        return res.total_steps;
      },
      [&](std::size_t, const std::uint64_t&, std::uint64_t&& steps) {
        out.total_steps += steps;
        return true;
      });
  const std::uint64_t ns = timer.elapsed_ns();
  out.ns_per_step = out.total_steps == 0
                        ? 0.0
                        : static_cast<double>(ns) /
                              static_cast<double>(out.total_steps);
  out.runs_per_sec = ns == 0 ? 0.0
                             : static_cast<double>(trials) * 1e9 /
                                   static_cast<double>(ns);
  return out;
}

/// The BPRC/random sweep as a *campaign* (fault::CampaignConfig cell of
/// `trials` seeds), executed across `workers` forked processes by the
/// shard coordinator — or serially in-process when workers <= 1, which
/// is the baseline the @workersN entries are compared against. The
/// digest is identical either way (the coordinator's contract); the
/// delta is fork + wire + supervision overhead, which this measures.
inline SweepPerf measure_sharded_throughput(int n, std::uint64_t trials,
                                            unsigned workers) {
  fault::CampaignConfig config;
  config.protocols = {"bprc"};
  config.ns = {n};
  config.adversaries = {"random"};
  config.seeds_per_cell = trials;
  config.crash_plans = false;
  config.max_steps = kRunBudget;
  config.run_deadline = std::chrono::milliseconds::zero();
  config.jobs = 1;
  SweepPerf out;
  Throughput timer;
  fault::CampaignReport report;
  if (workers <= 1) {
    report = fault::run_campaign(config);
  } else {
    shard::ShardServiceConfig service;
    service.campaign = config;
    service.workers = workers;
    report = shard::run_sharded_campaign(service);
  }
  const std::uint64_t ns = timer.elapsed_ns();
  BPRC_REQUIRE(report.ok(), "bench campaign failed");
  // The cell fans each seed out over its standard input patterns, so the
  // executed run count exceeds `trials`; runs/sec counts what actually ran.
  out.trials = report.runs;
  out.runs_per_sec = ns == 0 ? 0.0
                             : static_cast<double>(report.runs) * 1e9 /
                                   static_cast<double>(ns);
  return out;
}

/// One exhaustive-exploration measurement (explore_states_per_sec in
/// BENCH_sim.json). The digest lets callers assert that two jobs levels
/// explored the identical tree — the explorer's byte-equality contract.
struct ExplorePerf {
  double states_per_sec = 0.0;
  double execs_per_sec = 0.0;
  std::uint64_t states = 0;
  std::uint64_t executions = 0;
  std::uint64_t digest = 0;
};

/// Exhaustive bounded sweep of one bprc n=3 input cell through the
/// exploration driver with `jobs` leaf-grading workers. Wall-clock
/// states/sec is the deep-scale scaling number (PERFORMANCE.md "explorer
/// deep-scale"); results are byte-identical at every jobs level, so the
/// jobs=1 and jobs=max entries differ only in wall time.
inline ExplorePerf measure_explore_throughput(unsigned jobs,
                                              std::uint64_t depth) {
  explore::ConsensusExploreConfig config;
  config.protocol = "bprc";
  config.inputs = {0, 1, 1};
  config.seed = 1;
  config.limits.branch_depth = depth;
  config.limits.max_coin_flips = 2;
  config.limits.max_violations = 1;
  config.limits.grade_jobs = jobs;
  Throughput timer;
  const explore::ConsensusExploreReport report = explore_consensus(config);
  const std::uint64_t ns = timer.elapsed_ns();
  BPRC_REQUIRE(report.ok() && report.stats.complete,
               "explore bench sweep must finish clean");
  ExplorePerf out;
  out.states = report.stats.states_visited;
  out.executions = report.stats.executions;
  out.digest = report.stats.schedule_digest;
  const double secs = static_cast<double>(ns) / 1e9;
  if (secs > 0.0) {
    out.states_per_sec = static_cast<double>(out.states) / secs;
    out.execs_per_sec = static_cast<double>(out.executions) / secs;
  }
  return out;
}

/// One space-budget measurement of the space–time frontier (the
/// `space_frontier_*` entries of BENCH_sim.json). Time side: mean
/// simulated steps per run of a campaign cell pinned to the budget.
/// Space side: the budgeted shared-register bits per process, a static
/// function of (budget, n). The digest lets callers assert that every
/// --jobs / --workers level measured the identical run set.
struct FrontierPerf {
  double mean_steps = 0.0;
  double runs_per_sec = 0.0;
  std::uint64_t runs = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t digest = 0;
};

/// Shared-register bits per process bought by `space` at size n: the
/// coin-slot ring (slots cells of ±(m+1) counters) plus the n−1 outgoing
/// edge counters (mod cycle). Only the budget-controlled fields are
/// counted — the constant-size pref/hint fields are the same at every
/// budget and would only blur the frontier's x-axis.
inline double space_bits_per_process(const SpaceBudget& space, int n) {
  const CoinParams coin = CoinParams::standard(n, space.b, space.m_scale);
  auto bits_for = [](std::int64_t distinct) {
    double bits = 0.0;
    while ((std::int64_t{1} << static_cast<int>(bits)) < distinct) bits += 1.0;
    return bits;
  };
  const double counter_bits = bits_for(2 * (coin.m + 1) + 1);
  const double edge_bits = bits_for(space.cycle());
  return static_cast<double>(space.slots) * counter_bits +
         static_cast<double>(n - 1) * edge_bits;
}

/// Sweeps one (protocol, n) campaign cell of `trials` seeds under the
/// random adversary at the given space budget. workers == 0 runs
/// in-process at `jobs` threads (mean steps come from the run observer);
/// workers >= 2 pushes the identical cell through the forked-worker
/// coordinator, where per-run steps stay behind the wire and only the
/// digest and throughput are meaningful.
inline FrontierPerf measure_space_frontier(const std::string& protocol,
                                           const SpaceBudget& space, int n,
                                           std::uint64_t trials, unsigned jobs,
                                           unsigned workers = 0) {
  fault::CampaignConfig config;
  config.protocols = {protocol};
  config.ns = {n};
  config.adversaries = {"random"};
  config.seeds_per_cell = trials;
  config.crash_plans = false;
  config.spaces = {space};
  config.max_steps = kRunBudget;
  config.run_deadline = std::chrono::milliseconds::zero();
  config.jobs = jobs;
  FrontierPerf out;
  Throughput timer;
  fault::CampaignReport report;
  if (workers >= 2) {
    shard::ShardServiceConfig service;
    service.campaign = config;
    service.workers = workers;
    report = shard::run_sharded_campaign(service);
  } else {
    report = fault::run_campaign(
        config, [&out](const fault::TortureRun&, const ConsensusRunResult& r) {
          out.total_steps += r.total_steps;
        });
  }
  const std::uint64_t ns = timer.elapsed_ns();
  BPRC_REQUIRE(report.ok(), "frontier bench campaign failed");
  out.runs = report.runs;
  out.digest = report.summary_digest;
  if (report.runs > 0) {
    out.mean_steps = static_cast<double>(out.total_steps) /
                     static_cast<double>(report.runs);
  }
  out.runs_per_sec = ns == 0 ? 0.0
                             : static_cast<double>(report.runs) * 1e9 /
                                   static_cast<double>(ns);
  return out;
}

}  // namespace bprc::bench
