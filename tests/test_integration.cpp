// Cross-module integration: sequentially composed consensus instances
// (the replicated-log pattern of examples/replicated_log.cpp), protocol
// cross-comparisons on identical schedules, and end-to-end determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "consensus/bprc.hpp"
#include "consensus/driver.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"

namespace bprc {
namespace {

TEST(Integration, SequentialConsensusInstancesFormAgreedLog) {
  // n processes agree on a log of kSlots bits, one consensus instance per
  // slot; every process ends with the identical log. This is the
  // universal-construction usage pattern the paper's introduction
  // motivates (fetch&cons / sticky bits).
  const int n = 4;
  const int kSlots = 6;
  SimRuntime rt(n, std::make_unique<RandomAdversary>(11), 11);

  std::vector<std::unique_ptr<BPRCConsensus>> slots;
  for (int s = 0; s < kSlots; ++s) {
    slots.push_back(
        std::make_unique<BPRCConsensus>(rt, BPRCParams::standard(n)));
  }
  std::vector<std::vector<int>> logs(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&rt, &slots, &logs, p, kSlots] {
      for (int s = 0; s < kSlots; ++s) {
        // Each process proposes its own local preference per slot.
        const int proposal =
            static_cast<int>((rt.rng()() >> 17) & 1);
        logs[static_cast<std::size_t>(p)].push_back(
            slots[static_cast<std::size_t>(s)]->propose(proposal));
      }
    });
  }
  ASSERT_EQ(rt.run(200'000'000).reason, RunResult::Reason::kAllDone);
  for (ProcId p = 1; p < n; ++p) {
    EXPECT_EQ(logs[static_cast<std::size_t>(p)], logs[0])
        << "process " << p << " disagrees with the log";
  }
  EXPECT_EQ(logs[0].size(), static_cast<std::size_t>(kSlots));
}

TEST(Integration, MixedSpeedProcessesStillAgree) {
  // One process does heavy extra scanning between steps (simulating a
  // slow participant K+ rounds behind): agreement must hold and the slow
  // process must still decide.
  const int n = 3;
  SimRuntime rt(n, std::make_unique<RandomAdversary>(23), 23);
  BPRCConsensus protocol(rt, BPRCParams::standard(n));
  // Give process 0 a tiny share of the schedule via a biased adversary:
  // emulated by LeaderSuppress (suppresses whoever leads) plus process 0
  // being started last; simplest robust variant: crash-free run with the
  // lockstep adversary and inputs split.
  for (ProcId p = 0; p < n; ++p) {
    const int input = p == 0 ? 1 : 0;
    rt.spawn(p, [&protocol, input] { protocol.propose(input); });
  }
  ASSERT_EQ(rt.run(80'000'000).reason, RunResult::Reason::kAllDone);
  const int d0 = protocol.decision(0);
  for (ProcId p = 1; p < n; ++p) EXPECT_EQ(protocol.decision(p), d0);
}

TEST(Integration, EndToEndDeterminismIncludesStepsAndRounds) {
  auto fingerprint = [](std::uint64_t seed) {
    SimRuntime rt(5, std::make_unique<RandomAdversary>(seed), seed);
    BPRCConsensus protocol(rt, BPRCParams::standard(5));
    for (ProcId p = 0; p < 5; ++p) {
      const int input = static_cast<int>(p) % 2;
      rt.spawn(p, [&protocol, input] { protocol.propose(input); });
    }
    rt.run(80'000'000);
    std::string fp;
    for (ProcId p = 0; p < 5; ++p) {
      fp += std::to_string(protocol.decision(p)) + ":" +
            std::to_string(rt.steps(p)) + ";";
    }
    fp += std::to_string(protocol.total_flips()) + "/" +
          std::to_string(protocol.total_scans());
    return fp;
  };
  EXPECT_EQ(fingerprint(3), fingerprint(3));
  EXPECT_EQ(fingerprint(4), fingerprint(4));
}

TEST(Integration, TwoInstancesDoNotInterfere) {
  // Two independent consensus instances run by the same processes
  // interleaved; each must be internally consistent.
  const int n = 3;
  SimRuntime rt(n, std::make_unique<RandomAdversary>(31), 31);
  BPRCConsensus a(rt, BPRCParams::standard(n));
  BPRCConsensus b(rt, BPRCParams::standard(n));
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&a, &b, p] {
      // Propose opposite values to the two instances.
      a.propose(static_cast<int>(p) % 2);
      b.propose(1 - static_cast<int>(p) % 2);
    });
  }
  ASSERT_EQ(rt.run(120'000'000).reason, RunResult::Reason::kAllDone);
  for (ProcId p = 1; p < n; ++p) {
    EXPECT_EQ(a.decision(p), a.decision(0));
    EXPECT_EQ(b.decision(p), b.decision(0));
  }
}

TEST(Integration, StandardInputPatternsCoverTheSpace) {
  const auto pats = standard_input_patterns(6, 1);
  ASSERT_EQ(pats.size(), 5u);
  // unanimous 0, unanimous 1, half split, lone dissenter, random
  EXPECT_EQ(pats[0], std::vector<int>(6, 0));
  EXPECT_EQ(pats[1], std::vector<int>(6, 1));
  int ones = 0;
  for (const int v : pats[2]) ones += v;
  EXPECT_EQ(ones, 3);
  ones = 0;
  for (const int v : pats[3]) ones += v;
  EXPECT_EQ(ones, 1);
  for (const int v : pats[4]) EXPECT_TRUE(v == 0 || v == 1);
}

}  // namespace
}  // namespace bprc
