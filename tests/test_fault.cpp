// Unit tests for the fault-injection subsystem: repro parsing, campaign
// behavior, hostile adversaries, and the runtime watchdogs.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/protocols.hpp"
#include "fault/repro.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/thread_runtime.hpp"

namespace bprc::fault {
namespace {

using namespace std::chrono_literals;

TEST(ProtocolRegistry, NamesAndBrokenFlag) {
  const auto real = protocol_names();
  EXPECT_EQ(real.size(), 4u);
  for (const auto& name : real) EXPECT_FALSE(protocol_spec(name).broken);

  const auto all = protocol_names(/*include_broken=*/true);
  EXPECT_EQ(all.size(), 9u);
  EXPECT_TRUE(protocol_spec("broken-racy").broken);
  EXPECT_TRUE(protocol_spec("broken-unbounded").broken);
  EXPECT_TRUE(protocol_spec("broken-needs-atomic").broken);
  EXPECT_TRUE(protocol_spec("bprc-underprov-cycle").broken);
  EXPECT_TRUE(protocol_spec("bprc-underprov-slots").broken);
  EXPECT_FALSE(protocol_spec("broken-needs-atomic").crash_tolerant);
  EXPECT_FALSE(protocol_spec("local-coin").crash_tolerant);
  EXPECT_TRUE(protocol_spec("bprc").crash_tolerant);
}

TEST(ProtocolRegistry, SpaceSensitivityTraits) {
  // The campaign's space axis runs a protocol at non-default budgets only
  // when its layout actually consumes them (docs/SPACE_BUDGETS.md).
  for (const char* name : {"bprc", "aspnes-herlihy", "bprc-underprov-cycle",
                           "bprc-underprov-slots"}) {
    EXPECT_TRUE(protocol_spec(name).space_sensitive) << name;
  }
  for (const char* name :
       {"local-coin", "strong-coin", "broken-racy", "broken-unbounded"}) {
    EXPECT_FALSE(protocol_spec(name).space_sensitive) << name;
  }
}

TEST(Repro, ParseRejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parse_repro("", &err).has_value());
  EXPECT_FALSE(parse_repro("not-a-repro\n", &err).has_value());
  // Truncated file: header but no `end` sentinel.
  EXPECT_FALSE(
      parse_repro("bprc-repro v1\nprotocol bprc\ninputs 0 1\nseed 3\n", &err)
          .has_value());
  EXPECT_FALSE(err.empty());
  // Unsupported version.
  EXPECT_FALSE(parse_repro("bprc-repro v99\nend\n", &err).has_value());
  // Schedule entry out of range for n=2.
  EXPECT_FALSE(parse_repro("bprc-repro v1\nprotocol bprc\ninputs 0 1\n"
                           "seed 3\nmax-steps 100\nschedule 0 7\nend\n",
                           &err)
                   .has_value());
}

TEST(Repro, UnknownKeysAreSkipped) {
  std::string err;
  const auto parsed = parse_repro(
      "bprc-repro v1\nprotocol bprc\ninputs 0 1\nadversary random\n"
      "seed 3\nmax-steps 100\nfuture-key some value\nschedule 0 1\nend\n",
      &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->run.protocol, "bprc");
  EXPECT_EQ(parsed->schedule, (std::vector<ProcId>{0, 1}));
}

TEST(Campaign, CleanProtocolsPassASmallSweep) {
  CampaignConfig config;
  config.protocols = {"bprc", "aspnes-herlihy"};
  config.ns = {2, 3};
  config.adversaries = {"random", "crash-storm", "split-brain"};
  config.seeds_per_cell = 1;
  config.max_steps = 4'000'000;
  config.run_deadline = 3000ms;
  const CampaignReport report = run_campaign(config);
  EXPECT_TRUE(report.ok()) << report.failures.size() << " failure(s)";
  EXPECT_GT(report.runs, 0u);
  EXPECT_EQ(report.skipped_crash_cells, 0u);
}

TEST(Campaign, SkipsCrashCellsForNonTolerantProtocols) {
  CampaignConfig config;
  config.protocols = {"local-coin"};
  config.ns = {2};
  config.adversaries = {"crash-storm"};
  config.seeds_per_cell = 1;
  config.max_steps = 2'000'000;
  const CampaignReport report = run_campaign(config);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.runs, 0u);
  EXPECT_GT(report.skipped_crash_cells, 0u);
}

TEST(ProtocolRegistry, WeakRegisterTraits) {
  // The faithful protocols prove expected termination over atomic
  // registers only (docs/REGISTER_SEMANTICS.md); BPRC additionally
  // refuses safe-register junk via its edge-counter decode invariant.
  for (const char* name : {"bprc", "aspnes-herlihy", "local-coin",
                           "strong-coin"}) {
    EXPECT_FALSE(protocol_spec(name).live_under_stale_reads) << name;
  }
  for (const char* name : {"broken-racy", "broken-unbounded",
                           "broken-needs-atomic", "broken-segv"}) {
    EXPECT_TRUE(protocol_spec(name).live_under_stale_reads) << name;
    EXPECT_TRUE(protocol_spec(name).tolerates_safe_reads) << name;
  }
  EXPECT_FALSE(protocol_spec("bprc").tolerates_safe_reads);
  EXPECT_TRUE(protocol_spec("aspnes-herlihy").tolerates_safe_reads);
}

TEST(Campaign, SkipsSafeCellsForIntolerantProtocols) {
  CampaignConfig config;
  config.protocols = {"bprc"};
  config.ns = {2};
  config.adversaries = {"random"};
  config.seeds_per_cell = 1;
  config.semantics = {RegisterSemantics::kSafe};
  const CampaignReport report = run_campaign(config);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.runs, 0u);
  EXPECT_GT(report.skipped_safe_cells, 0u);
  EXPECT_EQ(report.skipped_crash_cells, 0u);

  // The same matrix under regular semantics runs: only kSafe is gated.
  config.semantics = {RegisterSemantics::kRegular};
  config.max_steps = 2'000'000;
  const CampaignReport regular = run_campaign(config);
  EXPECT_GT(regular.runs, 0u);
  EXPECT_EQ(regular.skipped_safe_cells, 0u);
}

TEST(Campaign, SkipsSpaceCellsForBudgetIgnoringProtocols) {
  SpaceBudget big;
  big.b = 8;
  CampaignConfig config;
  config.protocols = {"local-coin"};
  config.ns = {2};
  config.adversaries = {"random"};
  config.seeds_per_cell = 1;
  config.max_steps = 2'000'000;
  config.crash_plans = false;
  config.spaces = {big};
  const CampaignReport report = run_campaign(config);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.runs, 0u);
  EXPECT_GT(report.skipped_space_cells, 0u);

  // Adding the default budget back runs the protocol once — only the
  // non-default cell is skipped-and-counted.
  config.spaces = {SpaceBudget{}, big};
  const CampaignReport mixed = run_campaign(config);
  EXPECT_GT(mixed.runs, 0u);
  EXPECT_GT(mixed.skipped_space_cells, 0u);

  // A budget-consuming protocol runs every budget and skips nothing.
  config.protocols = {"bprc"};
  const CampaignReport sensitive = run_campaign(config);
  EXPECT_GT(sensitive.runs, mixed.runs);
  EXPECT_EQ(sensitive.skipped_space_cells, 0u);
}

TEST(Campaign, UnderProvisionedVariantsAreCaughtAsBoundedMemory) {
  // The space lane's self-certification (docs/SPACE_BUDGETS.md): the
  // faithful protocol run at a deliberately short budget must surface
  // kBoundedMemory under plain random campaigns — no special adversary,
  // no exhaustive search.
  for (const char* name : {"bprc-underprov-cycle", "bprc-underprov-slots"}) {
    CampaignConfig config;
    config.protocols = {name};
    config.ns = {2, 3};
    config.adversaries = {"random"};
    config.seeds_per_cell = 8;
    config.max_steps = 2'000'000;
    config.crash_plans = false;
    config.max_failures = 64;
    const CampaignReport report = run_campaign(config);
    ASSERT_FALSE(report.failures.empty()) << name;
    for (const TortureFailure& fail : report.failures) {
      EXPECT_EQ(fail.failure, FailureClass::kBoundedMemory) << name;
    }
  }
}

TEST(Campaign, SummaryDigestIsJobsInvariantAlongTheSpaceAxis) {
  // The independence witness extends to the space axis: a sweep spanning
  // the paper budget and a non-default one folds to the same digest at
  // every jobs level, skips counted identically.
  SpaceBudget tall;
  tall.K = 3;  // parse("K=3") shape: slots re-derived to K+1
  tall.slots = 4;
  CampaignConfig config;
  config.protocols = {"bprc", "local-coin"};
  config.ns = {2};
  config.adversaries = {"random"};
  config.seeds_per_cell = 2;
  config.max_steps = 2'000'000;
  config.crash_plans = false;
  config.spaces = {SpaceBudget{}, tall};
  config.jobs = 1;
  const CampaignReport serial = run_campaign(config);
  config.jobs = 4;
  const CampaignReport parallel = run_campaign(config);
  EXPECT_EQ(serial.summary_digest, parallel.summary_digest);
  EXPECT_EQ(serial.runs, parallel.runs);
  EXPECT_GT(serial.runs, 0u);
  EXPECT_GT(serial.skipped_space_cells, 0u);
  EXPECT_EQ(serial.skipped_space_cells, parallel.skipped_space_cells);
}

TEST(Campaign, WeakenedBudgetStopIsAnAbortNotAFailure) {
  // A starvation-sized budget: under atomic semantics the truncated run
  // is a termination failure, as ever. Under weakened semantics the same
  // protocol is registered live_under_stale_reads=false, so the stop is
  // inconclusive — counted as a budget abort, reported clean (the
  // explorer's truncated-leaf downgrade, applied to the campaign).
  CampaignConfig config;
  config.protocols = {"bprc"};
  config.ns = {2};
  config.adversaries = {"round-robin"};
  config.seeds_per_cell = 1;
  config.crash_plans = false;
  config.max_steps = 200;  // far below any full run
  const CampaignReport atomic = run_campaign(config);
  EXPECT_FALSE(atomic.ok());
  ASSERT_FALSE(atomic.failures.empty());
  EXPECT_EQ(atomic.failures[0].failure, FailureClass::kTermination);
  EXPECT_GT(atomic.budget_aborts, 0u);

  config.semantics = {RegisterSemantics::kRegular};
  const CampaignReport weakened = run_campaign(config);
  EXPECT_TRUE(weakened.ok()) << weakened.failures.size() << " failure(s)";
  EXPECT_GT(weakened.budget_aborts, 0u);
  EXPECT_GT(weakened.runs, 0u);

  // Safety violations are never downgraded: the seeded needs-atomic bug
  // still fails its weakened cells (pinned end to end in test_replay).
  CampaignConfig broken;
  broken.protocols = {"broken-needs-atomic"};
  broken.ns = {2, 3};
  broken.adversaries = {"random"};
  broken.seeds_per_cell = 8;
  broken.crash_plans = false;
  broken.max_steps = 100'000;
  broken.semantics = {RegisterSemantics::kRegular};
  const CampaignReport caught = run_campaign(broken);
  ASSERT_FALSE(caught.failures.empty());
  EXPECT_EQ(caught.failures[0].failure, FailureClass::kConsistency);
}

TEST(CrashStorm, RespectsTheWaitFreedomBound) {
  // n-1 crashes at most: some process always survives, and a crash-storm
  // run over a crash-tolerant protocol still terminates correctly.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    TortureRun run;
    run.protocol = "bprc";
    run.inputs = {0, 1, 0};
    run.adversary = "crash-storm";
    run.seed = seed;
    run.max_steps = 4'000'000;
    std::vector<CrashPlanAdversary::Crash> crashes;
    const ConsensusRunResult result =
        execute_run(run, std::chrono::nanoseconds::zero(), nullptr, &crashes);
    EXPECT_TRUE(result.ok()) << "seed " << seed;
    EXPECT_LT(crashes.size(), run.inputs.size()) << "crashed everyone";
    std::set<ProcId> victims;
    for (const auto& c : crashes) victims.insert(c.victim);
    EXPECT_EQ(victims.size(), crashes.size()) << "double-crashed a victim";
  }
}

TEST(SplitBrain, AlternatesBetweenGroups) {
  // Drive 4 spinning processes and check both halves get long solo runs.
  SimRuntime rt(4, std::make_unique<SplitBrainAdversary>(3, 50), 1);
  std::vector<ProcId> trace;
  for (ProcId p = 0; p < 4; ++p) {
    rt.spawn(p, [&rt, &trace, p] {
      for (;;) {
        trace.push_back(p);
        rt.checkpoint({});
      }
    });
  }
  rt.run(2000);
  ASSERT_EQ(trace.size(), 2000u);
  // Every pick stays within one group for a burst; count group switches
  // and verify both groups were scheduled.
  bool saw_low = false, saw_high = false;
  int switches = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const int group = trace[i] < 2 ? 0 : 1;
    (group == 0 ? saw_low : saw_high) = true;
    if (i > 0 && group != (trace[i - 1] < 2 ? 0 : 1)) ++switches;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
  // Long bursts => far fewer switches than picks.
  EXPECT_LT(switches, 200);
  EXPECT_GT(switches, 0);
}

TEST(SimWatchdog, ExpiredDeadlineAbortsTheRun) {
  // With a 1ns deadline the first stride check fires; the run must end
  // with Reason::kDeadline instead of burning the whole step budget.
  SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), 1);
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&rt] {
      for (;;) rt.checkpoint({});
    });
  }
  const RunResult result = rt.run(100'000'000, 1ns);
  EXPECT_EQ(result.reason, RunResult::Reason::kDeadline);
  EXPECT_LT(result.steps, 100'000'000u);
}

TEST(SimWatchdog, ZeroDeadlineMeansOff) {
  SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), 1);
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&rt] {
      for (;;) rt.checkpoint({});
    });
  }
  const RunResult result = rt.run(10'000);
  EXPECT_EQ(result.reason, RunResult::Reason::kBudget);
}

TEST(ThreadWatchdog, DeadlineUnwedgesALivelockedRun) {
  // Bodies spin at checkpoints forever; without the watchdog this run
  // would only end after 4B steps. The deadline must end it in ~50ms
  // with Reason::kDeadline.
  ThreadRuntime rt(2, 9);
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&rt] {
      for (;;) rt.checkpoint({});
    });
  }
  const RunResult result = rt.run(4'000'000'000ULL, 50ms);
  EXPECT_EQ(result.reason, RunResult::Reason::kDeadline);
}

TEST(ThreadWatchdog, FastRunsFinishBeforeTheDeadline) {
  ThreadRuntime rt(2, 9);
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&rt] {
      for (int i = 0; i < 100; ++i) rt.checkpoint({});
    });
  }
  const RunResult result = rt.run(1'000'000, 10s);
  EXPECT_EQ(result.reason, RunResult::Reason::kAllDone);
}

}  // namespace
}  // namespace bprc::fault
