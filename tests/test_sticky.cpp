// Sticky bits / sticky registers ([P89], the paper's §1 motivation):
// write-once semantics, first-jam-wins agreement, reader visibility.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "consensus/bprc.hpp"
#include "consensus/strong_coin.hpp"
#include "core/sticky.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"

namespace bprc {
namespace {

ProtocolFactory bprc_bits(int n) {
  return [n](Runtime& rt) {
    return std::make_unique<BPRCConsensus>(rt, BPRCParams::standard(n));
  };
}

TEST(StickyBit, SoloJamSticksOwnValue) {
  SimRuntime rt(1, std::make_unique<RoundRobinAdversary>(), 1);
  StickyBit bit(rt, bprc_bits(1));
  int stuck = -1;
  std::optional<int> after;
  rt.spawn(0, [&] {
    stuck = bit.jam(1);
    after = bit.read();
  });
  ASSERT_EQ(rt.run(1'000'000).reason, RunResult::Reason::kAllDone);
  EXPECT_EQ(stuck, 1);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, 1);
}

TEST(StickyBit, ReadBeforeAnyJamIsBottom) {
  SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), 1);
  StickyBit bit(rt, bprc_bits(2));
  std::optional<int> seen = 99;
  rt.spawn(0, [&] { seen = bit.read(); });
  rt.run(1'000'000);
  EXPECT_FALSE(seen.has_value());
}

TEST(StickyBit, ConflictingJamsAgree) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    SimRuntime rt(4, std::make_unique<RandomAdversary>(seed), seed);
    StickyBit bit(rt, bprc_bits(4));
    std::vector<int> got(4, -1);
    for (ProcId p = 0; p < 4; ++p) {
      rt.spawn(p, [&bit, &got, p] {
        got[static_cast<std::size_t>(p)] = bit.jam(static_cast<int>(p) % 2);
      });
    }
    ASSERT_EQ(rt.run(500'000'000ull).reason, RunResult::Reason::kAllDone);
    for (const int v : got) EXPECT_EQ(v, got[0]) << "seed " << seed;
    EXPECT_TRUE(got[0] == 0 || got[0] == 1);
  }
}

TEST(StickyBit, JamIsIdempotentPerProcess) {
  SimRuntime rt(2, std::make_unique<RandomAdversary>(3), 3);
  StickyBit bit(rt, bprc_bits(2));
  std::vector<int> first(2), second(2);
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&, p] {
      first[static_cast<std::size_t>(p)] = bit.jam(static_cast<int>(p));
      // Jamming the OPPOSITE value afterwards must not change anything.
      second[static_cast<std::size_t>(p)] =
          bit.jam(1 - static_cast<int>(p));
    });
  }
  ASSERT_EQ(rt.run(500'000'000ull).reason, RunResult::Reason::kAllDone);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first[0], first[1]);
}

TEST(StickyBit, ReaderSeesValueAfterJammerPublishes) {
  // Sequential: jam completes, then a pure reader scans — must see it.
  SimRuntime rt(2, std::make_unique<ScriptedAdversary>(std::vector<ProcId>(
                       200, 0)),
                1);
  StickyBit bit(rt, bprc_bits(2));
  std::optional<int> seen;
  rt.spawn(0, [&] { bit.jam(1); });
  rt.spawn(1, [&] { seen = bit.read(); });
  ASSERT_EQ(rt.run(1'000'000).reason, RunResult::Reason::kAllDone);
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, 1);
}

TEST(StickyRegister, FirstOfManyWordsSticks) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SimRuntime rt(3, std::make_unique<LockstepAdversary>(seed), seed);
    StickyRegister reg(rt, 16, bprc_bits(3));
    std::vector<std::uint64_t> got(3, ~0ull);
    const std::uint64_t proposals[3] = {0xAAAA, 0x1234, 0x0F0F};
    for (ProcId p = 0; p < 3; ++p) {
      rt.spawn(p, [&reg, &got, &proposals, p] {
        got[static_cast<std::size_t>(p)] =
            reg.jam(proposals[static_cast<std::size_t>(p)]);
      });
    }
    ASSERT_EQ(rt.run(500'000'000ull).reason, RunResult::Reason::kAllDone);
    EXPECT_EQ(got[0], got[1]);
    EXPECT_EQ(got[1], got[2]);
    const std::set<std::uint64_t> valid{0xAAAA, 0x1234, 0x0F0F};
    EXPECT_TRUE(valid.contains(got[0]));
  }
}

TEST(StickyRegister, WorksOverStrongCoinToo) {
  SimRuntime rt(2, std::make_unique<RandomAdversary>(4), 4);
  StickyRegister reg(rt, 8, [](Runtime& inner) {
    return std::make_unique<StrongCoinConsensus>(inner, 5);
  });
  std::vector<std::uint64_t> got(2, ~0ull);
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&reg, &got, p] {
      got[static_cast<std::size_t>(p)] =
          reg.jam(static_cast<std::uint64_t>(p) + 40);
    });
  }
  ASSERT_EQ(rt.run(500'000'000ull).reason, RunResult::Reason::kAllDone);
  EXPECT_EQ(got[0], got[1]);
  EXPECT_TRUE(got[0] == 40 || got[0] == 41);
}

}  // namespace
}  // namespace bprc
