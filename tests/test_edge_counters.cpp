// Edge-counter encoding tests (§4.3): decode rules, mod-3K wraparound,
// and the counter-level Claim 4.1 — inc_counters/make_graph track the
// sequential token game through the bounded cyclic encoding.
#include <gtest/gtest.h>

#include <functional>
#include <tuple>
#include <vector>

#include "strip/distance_graph.hpp"
#include "strip/edge_counters.hpp"
#include "strip/token_game.hpp"
#include "util/rng.hpp"

namespace bprc {
namespace {

TEST(DecodeEdge, TieAtZero) {
  EXPECT_EQ(decode_edge(0, 0, 2), 0);
  EXPECT_EQ(decode_edge(4, 4, 2), 0);
}

TEST(DecodeEdge, LeadWithinK) {
  const int K = 2;
  EXPECT_EQ(decode_edge(1, 0, K), 1);
  EXPECT_EQ(decode_edge(2, 0, K), 2);
  EXPECT_EQ(decode_edge(0, 1, K), -1);
  EXPECT_EQ(decode_edge(0, 2, K), -2);
}

TEST(DecodeEdge, WrapsAroundTheCycle) {
  const int K = 2;  // cycle = 6
  EXPECT_EQ(decode_edge(0, 5, K), 1);   // (0-5) mod 6 = 1
  EXPECT_EQ(decode_edge(5, 0, K), -1);
  EXPECT_EQ(decode_edge(1, 5, K), 2);
  EXPECT_EQ(decode_edge(4, 0, K), -2);  // (4-0)=4, 6-4=2 => j leads 2
}

TEST(DecodeEdge, MiddleOfCycleIsInvalid) {
  const int K = 2;  // cycle = 6; difference 3 decodes to nothing
  EXPECT_FALSE(decode_edge(3, 0, K).has_value());
  EXPECT_FALSE(decode_edge(0, 3, K).has_value());
}

TEST(DecodeEdge, ExhaustiveValidityPartition) {
  // For every counter pair on the cycle, decode is defined iff the
  // clockwise distance from either side is ≤ K, and the two directions
  // are consistent (antisymmetric).
  for (int K = 1; K <= 4; ++K) {
    const int cycle = 3 * K;
    for (int a = 0; a < cycle; ++a) {
      for (int b = 0; b < cycle; ++b) {
        const auto ab = decode_edge(static_cast<std::uint8_t>(a),
                                    static_cast<std::uint8_t>(b), K);
        const auto ba = decode_edge(static_cast<std::uint8_t>(b),
                                    static_cast<std::uint8_t>(a), K);
        const int d = ((a - b) % cycle + cycle) % cycle;
        const bool valid = d <= K || cycle - d <= K;
        ASSERT_EQ(ab.has_value(), valid);
        ASSERT_EQ(ba.has_value(), valid);
        if (valid) {
          ASSERT_EQ(*ab, -*ba);
          ASSERT_LE(*ab, K);
          ASSERT_GE(*ab, -K);
        }
      }
    }
  }
}

TEST(MakeGraph, InitialCountersGiveTiedGraph) {
  std::vector<EdgeCounters> rows(3, initial_edge_counters(3));
  const DistanceGraph g = make_graph(rows, 2);
  EXPECT_EQ(g, DistanceGraph(3, 2));
}

TEST(IncCounters, SingleMoverPullsAhead) {
  const int n = 3;
  const int K = 2;
  std::vector<EdgeCounters> rows(static_cast<std::size_t>(n),
                                 initial_edge_counters(n));
  DistanceGraph g = make_graph(rows, K);
  inc_counters(0, g, rows[0]);
  g = make_graph(rows, K);
  EXPECT_EQ(g.signed_diff(0, 1), 1);
  EXPECT_EQ(g.signed_diff(0, 2), 1);
  EXPECT_EQ(g.signed_diff(1, 2), 0);
}

TEST(IncCounters, LeadSaturatesAtK) {
  const int n = 2;
  const int K = 2;
  std::vector<EdgeCounters> rows(static_cast<std::size_t>(n),
                                 initial_edge_counters(n));
  for (int m = 0; m < 10; ++m) {
    const DistanceGraph g = make_graph(rows, K);
    inc_counters(0, g, rows[0]);
  }
  const DistanceGraph g = make_graph(rows, K);
  EXPECT_EQ(g.signed_diff(0, 1), K);
  // The counter itself stayed on the cycle.
  EXPECT_LT(rows[0][1], 3 * K);
}

TEST(IncCounters, CatchUpClosesTightGap) {
  const int n = 2;
  const int K = 3;
  std::vector<EdgeCounters> rows(static_cast<std::size_t>(n),
                                 initial_edge_counters(n));
  {
    const DistanceGraph g = make_graph(rows, K);
    inc_counters(0, g, rows[0]);
  }
  {
    const DistanceGraph g = make_graph(rows, K);
    inc_counters(0, g, rows[0]);
  }
  {
    const DistanceGraph g = make_graph(rows, K);
    EXPECT_EQ(g.signed_diff(0, 1), 2);
    inc_counters(1, g, rows[1]);
  }
  const DistanceGraph g = make_graph(rows, K);
  EXPECT_EQ(g.signed_diff(0, 1), 1);
}

/// Counter-level Claim 4.1: maintaining the rows through
/// make_graph+inc_counters matches the graph built from the sequential
/// game, for the full length of a long random run (this exercises many
/// cycle wraparounds: each round increments counters by 1 on a 3K cycle).
void check_counter_claim41(int n, int K, int moves, std::uint64_t seed) {
  Rng rng(seed);
  TokenGame game(n, K);
  std::vector<EdgeCounters> rows(static_cast<std::size_t>(n),
                                 initial_edge_counters(n));
  for (int step = 0; step < moves; ++step) {
    const int mover = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const DistanceGraph g = make_graph(rows, K);
    inc_counters(mover, g, rows[static_cast<std::size_t>(mover)]);
    game.move_token(mover);
    const DistanceGraph expect =
        DistanceGraph::from_positions(game.positions(), K);
    const DistanceGraph got = make_graph(rows, K);
    ASSERT_EQ(expect, got) << "diverged at step " << step << " (mover "
                           << mover << ", n=" << n << ", K=" << K << ")";
    // Counters never leave the cycle.
    for (const auto& row : rows) {
      for (const auto e : row) ASSERT_LT(e, 3 * K);
    }
  }
}

class CounterClaim41
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(CounterClaim41, CountersTrackGame) {
  const auto [n, K, seed] = GetParam();
  check_counter_claim41(n, K, /*moves=*/600, seed);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CounterClaim41,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8),
                       ::testing::Values(1, 2, 3, 4),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(CounterClaim41Exhaustive, AllMoveSequences_N2K2) {
  const int n = 2;
  const int K = 2;
  std::function<void(TokenGame&, std::vector<EdgeCounters>&, int)> rec =
      [&](TokenGame& game, std::vector<EdgeCounters>& rows, int depth) {
        if (depth == 0) return;
        for (int mover = 0; mover < n; ++mover) {
          TokenGame game2 = game;
          auto rows2 = rows;
          const DistanceGraph g = make_graph(rows2, K);
          inc_counters(mover, g, rows2[static_cast<std::size_t>(mover)]);
          game2.move_token(mover);
          const DistanceGraph expect =
              DistanceGraph::from_positions(game2.positions(), K);
          ASSERT_EQ(expect, make_graph(rows2, K));
          rec(game2, rows2, depth - 1);
        }
      };
  TokenGame game(n, K);
  std::vector<EdgeCounters> rows(2, initial_edge_counters(2));
  rec(game, rows, 13);  // 2^13 = 8192 sequences, every prefix checked
}

TEST(MakeGraphDeath, CorruptCountersAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<EdgeCounters> rows(2, initial_edge_counters(2));
  rows[0][1] = 3;  // K=2: difference 3 is the invalid middle of the cycle
  EXPECT_DEATH(make_graph(rows, 2), "decode");
}

}  // namespace
}  // namespace bprc
