// Wait-free snapshot (AADGMS 1990) tests: same P1/P2/P3 obligations as
// the paper's scannable memory, PLUS the property the scannable memory
// deliberately lacks — scans terminate against endless writers.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <tuple>
#include <vector>

#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/thread_runtime.hpp"
#include "snapshot/scannable_memory.hpp"
#include "snapshot/waitfree_snapshot.hpp"
#include "verify/snapshot_props.hpp"

namespace bprc {
namespace {

TEST(WaitFreeSnapshot, BasicUpdateThenScan) {
  SimRuntime rt(2, std::make_unique<ScriptedAdversary>(
                       std::vector<ProcId>{0, 0, 0, 0, 0}),
                1);
  WaitFreeSnapshot<int> snap(rt, 0);
  std::vector<int> view;
  rt.spawn(0, [&] { snap.update(5); });
  rt.spawn(1, [&] { view = snap.scan(); });
  ASSERT_EQ(rt.run(100000).reason, RunResult::Reason::kAllDone);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 5);
  EXPECT_EQ(view[1], 0);
}

class WaitFreeProps
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(WaitFreeProps, P123HoldUnderAdversaries) {
  const auto [n, advk, seed] = GetParam();
  SnapshotHistory hist;
  auto advs = standard_adversaries(seed * 57 + 3);
  SimRuntime rt(n, std::move(advs[static_cast<std::size_t>(advk)]), seed);
  WaitFreeSnapshot<int> snap(rt, 0, &hist);
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&rt, &snap, p] {
      for (int k = 0; k < 6; ++k) {
        snap.update(static_cast<int>(p) * 1000 + k);
        snap.scan();
      }
    });
  }
  ASSERT_EQ(rt.run(50'000'000ull).reason, RunResult::Reason::kAllDone);
  if (auto err = check_snapshot_properties(hist)) FAIL() << *err;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, WaitFreeProps,
    ::testing::Combine(::testing::Values(2, 3, 5, 8), ::testing::Range(0, 5),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(WaitFreeSnapshot, ScanTerminatesAgainstEndlessWriters) {
  // THE property: two writers write forever; the scanner's 5 scans must
  // all return (borrowing embedded views as needed) within a bounded
  // number of its own steps. The §2 scannable memory cannot pass this —
  // see ScannableMemoryContrast below.
  SimRuntime rt(3, std::make_unique<RandomAdversary>(3), 3);
  WaitFreeSnapshot<int> snap(rt, 0);
  std::atomic<bool> stop{false};
  int scans_done = 0;
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&rt, &snap, &stop, p] {
      int k = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        snap.update(static_cast<int>(p) + (++k));
        if (rt.total_steps() > 40'000'000ull) break;  // safety valve
      }
    });
  }
  rt.spawn(2, [&] {
    for (int k = 0; k < 5; ++k) {
      snap.scan();
      ++scans_done;
    }
    stop.store(true, std::memory_order_relaxed);
  });
  const RunResult res = rt.run(50'000'000ull);
  EXPECT_EQ(res.reason, RunResult::Reason::kAllDone);
  EXPECT_EQ(scans_done, 5);
}

TEST(WaitFreeSnapshot, ScannableMemoryContrast) {
  // The identical endless-writer workload on the paper's scannable
  // memory: the scan is starved forever (it is lock-free, not wait-free)
  // and the run must die on the step budget with the scanner stuck.
  SimRuntime rt(3, std::make_unique<RoundRobinAdversary>(), 3);
  ScannableMemory<int> mem(rt, 0);
  int scans_done = 0;
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&mem, p] {
      for (int k = 0;; ++k) mem.write(static_cast<int>(p) + k);
    });
  }
  rt.spawn(2, [&] {
    mem.scan();  // never returns under round-robin with 2 eager writers
    ++scans_done;
  });
  const RunResult res = rt.run(200'000);
  EXPECT_EQ(res.reason, RunResult::Reason::kBudget);
  EXPECT_EQ(scans_done, 0);
  EXPECT_GT(mem.scan_retries(), 100u);
}

TEST(WaitFreeSnapshot, BorrowPathIsExercised) {
  // Aggregate over seeds: the embedded-view borrow must actually fire
  // under contention (otherwise the wait-free mechanism is dead code).
  std::uint64_t total_borrows = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SimRuntime rt(4, std::make_unique<RandomAdversary>(seed), seed);
    WaitFreeSnapshot<int> snap(rt, 0);
    for (ProcId p = 0; p < 4; ++p) {
      rt.spawn(p, [&snap, p] {
        for (int k = 0; k < 10; ++k) {
          snap.update(static_cast<int>(p) + k);
          snap.scan();
        }
      });
    }
    ASSERT_EQ(rt.run(50'000'000ull).reason, RunResult::Reason::kAllDone);
    total_borrows += snap.scan_borrows();
  }
  EXPECT_GT(total_borrows, 0u);
}

TEST(WaitFreeSnapshot, BorrowedViewsSatisfyP123) {
  // Force heavy borrowing (lockstep maximizes mid-scan writes) and check
  // the full property set on the recorded history.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SnapshotHistory hist;
    SimRuntime rt(5, std::make_unique<LockstepAdversary>(seed), seed);
    WaitFreeSnapshot<int> snap(rt, 0, &hist);
    for (ProcId p = 0; p < 5; ++p) {
      rt.spawn(p, [&snap, p] {
        for (int k = 0; k < 8; ++k) {
          snap.update(static_cast<int>(p) * 100 + k);
          snap.scan();
        }
      });
    }
    ASSERT_EQ(rt.run(50'000'000ull).reason, RunResult::Reason::kAllDone);
    if (auto err = check_snapshot_properties(hist)) {
      FAIL() << "seed " << seed << ": " << *err;
    }
  }
}

TEST(WaitFreeSnapshot, ThreadRuntimeStress) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    SnapshotHistory hist;
    ThreadRuntime rt(4, seed, /*yield_prob=*/0.25);
    WaitFreeSnapshot<int> snap(rt, 0, &hist);
    for (ProcId p = 0; p < 4; ++p) {
      rt.spawn(p, [&snap, p] {
        for (int k = 0; k < 8; ++k) {
          snap.update(static_cast<int>(p) * 10 + k);
          snap.scan();
        }
      });
    }
    ASSERT_EQ(rt.run(200'000'000ull).reason, RunResult::Reason::kAllDone);
    if (auto err = check_snapshot_properties(hist)) {
      FAIL() << "seed " << seed << ": " << *err;
    }
  }
}

}  // namespace
}  // namespace bprc
