// Tests for the snapshot property checkers themselves: synthetic histories
// with known verdicts, so the checkers can be trusted when they judge the
// scannable memory.
#include <gtest/gtest.h>

#include <vector>

#include "verify/snapshot_props.hpp"

namespace bprc {
namespace {

SnapWriteRec W(ProcId j, std::uint64_t idx, std::uint64_t inv,
               std::uint64_t res) {
  return {j, idx, inv, res};
}
SnapScanRec S(ProcId p, std::uint64_t inv, std::uint64_t res,
              std::vector<std::uint64_t> view) {
  return {p, inv, res, std::move(view)};
}

TEST(SnapChecker, EmptyHistoryPasses) {
  SnapshotHistory h;
  h.nprocs = 2;
  EXPECT_FALSE(check_snapshot_properties(h).has_value());
}

TEST(SnapChecker, ScanOfInitialValuesPasses) {
  SnapshotHistory h;
  h.nprocs = 3;
  h.add_scan(S(0, 1, 2, {0, 0, 0}));
  EXPECT_FALSE(check_snapshot_properties(h).has_value());
}

TEST(SnapChecker, P1AcceptsCompletedAndConcurrentWrites) {
  SnapshotHistory h;
  h.nprocs = 2;
  h.add_write(W(0, 1, 1, 2));    // completed before the scan
  h.add_write(W(1, 1, 4, 9));    // concurrent with the scan
  h.add_scan(S(0, 5, 8, {1, 1}));
  EXPECT_FALSE(check_p1_regularity(h).has_value());
}

TEST(SnapChecker, P1RejectsFutureWrite) {
  SnapshotHistory h;
  h.nprocs = 2;
  h.add_write(W(1, 1, 10, 11));  // invoked after the scan responded
  h.add_scan(S(0, 1, 5, {0, 1}));
  const auto err = check_p1_regularity(h);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("P1"), std::string::npos);
}

TEST(SnapChecker, P1RejectsOverwrittenValue) {
  // A later write by the same process completed before the scan began;
  // the scan may not return the superseded value.
  SnapshotHistory h;
  h.nprocs = 2;
  h.add_write(W(1, 1, 1, 2));
  h.add_write(W(1, 2, 3, 4));
  h.add_scan(S(0, 5, 6, {0, 1}));  // returns stale write #1
  EXPECT_TRUE(check_p1_regularity(h).has_value());

  // Returning the fresh one passes.
  h.scans[0].view = {0, 2};
  EXPECT_FALSE(check_p1_regularity(h).has_value());
}

TEST(SnapChecker, P2RejectsValuesThatNeverCoexisted) {
  // Write #1 of p0 was overwritten (by write #2) before write #1 of p1
  // began, and vice versa cannot hold either: the pair can't be in one
  // snapshot.
  SnapshotHistory h;
  h.nprocs = 3;
  h.add_write(W(0, 1, 1, 2));
  h.add_write(W(0, 2, 3, 4));    // overwrites p0#1 before p1#1 starts
  h.add_write(W(1, 1, 5, 6));
  h.add_scan(S(2, 7, 8, {1, 1, 0}));  // p0#1 with p1#1: impossible pair
  // (P1 would also flag p0#1; P2 must flag the pair irrespective.)
  const auto err = check_p2_snapshot(h);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("P2"), std::string::npos);
}

TEST(SnapChecker, P2AcceptsOneDirectionOfCoexistence) {
  SnapshotHistory h;
  h.nprocs = 2;
  h.add_write(W(0, 1, 1, 2));   // p0#1 done early, never overwritten
  h.add_write(W(1, 1, 5, 6));   // p1#1 later; p0#1 still current => coexist
  h.add_scan(S(0, 7, 8, {1, 1}));
  EXPECT_FALSE(check_p2_snapshot(h).has_value());
}

TEST(SnapChecker, P3RejectsIncomparableViews) {
  SnapshotHistory h;
  h.nprocs = 2;
  h.add_write(W(0, 1, 1, 2));
  h.add_write(W(1, 1, 1, 2));
  h.add_scan(S(0, 3, 4, {1, 0}));  // saw p0's write, not p1's
  h.add_scan(S(1, 3, 4, {0, 1}));  // saw p1's write, not p0's
  const auto err = check_p3_serializability(h);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("P3"), std::string::npos);
}

TEST(SnapChecker, P3AcceptsComparableViews) {
  SnapshotHistory h;
  h.nprocs = 2;
  h.add_write(W(0, 1, 1, 2));
  h.add_write(W(1, 1, 1, 2));
  h.add_scan(S(0, 3, 4, {1, 0}));
  h.add_scan(S(1, 5, 6, {1, 1}));  // componentwise newer: fine
  EXPECT_FALSE(check_p3_serializability(h).has_value());
}

TEST(SnapChecker, RealTimeOrderRejectsRegression) {
  SnapshotHistory h;
  h.nprocs = 2;
  h.add_write(W(1, 1, 1, 2));
  h.add_scan(S(0, 3, 4, {0, 1}));
  h.add_scan(S(0, 5, 6, {0, 0}));  // strictly later scan, older view
  const auto err = check_realtime_scan_order(h);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("real-time"), std::string::npos);
}

TEST(SnapChecker, RealTimeOrderIgnoresConcurrentScans) {
  SnapshotHistory h;
  h.nprocs = 2;
  h.add_write(W(1, 1, 1, 2));
  h.add_scan(S(0, 3, 9, {0, 1}));  // overlapping scans may disagree in
  h.add_scan(S(1, 4, 8, {0, 0}));  // either direction... but wait: P3!
  EXPECT_FALSE(check_realtime_scan_order(h).has_value());
  // (P3 still constrains them to be comparable, which these are.)
  EXPECT_FALSE(check_p3_serializability(h).has_value());
}

TEST(SnapChecker, AggregateReportsFirstFailure) {
  SnapshotHistory h;
  h.nprocs = 2;
  h.add_write(W(1, 1, 10, 11));
  h.add_scan(S(0, 1, 5, {0, 1}));  // P1 violation
  const auto err = check_snapshot_properties(h);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("P1"), std::string::npos);
}

}  // namespace
}  // namespace bprc
