// Sharded campaign service tests: partition/backoff/reaper policy, the
// wire format (frames, records, shard files), and the headline
// robustness guarantees — the merged report is byte-identical to the
// serial run at any worker count, with chaos kills, and across
// --shard/--merge round trips; a trial that kills its worker process is
// quarantined as FailureClass::kWorkerCrash instead of killing the
// campaign.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include <unistd.h>

#include "fault/campaign.hpp"
#include "fault/repro.hpp"
#include "shard/coordinator.hpp"
#include "shard/supervise.hpp"
#include "shard/wire.hpp"

namespace bprc::shard {
namespace {

// ---- policy ---------------------------------------------------------------

TEST(Supervise, ShardRangesTileTheIndexSpace) {
  for (const std::size_t total : {0u, 1u, 5u, 7u, 16u, 421u}) {
    for (std::size_t k = 1; k <= 6; ++k) {
      std::size_t covered = 0;
      std::size_t expect_begin = 0;
      std::size_t min_size = total + 1;
      std::size_t max_size = 0;
      for (std::size_t i = 0; i < k; ++i) {
        const IndexRange r = shard_range(i, k, total);
        EXPECT_EQ(r.begin, expect_begin) << "total=" << total << " k=" << k;
        EXPECT_LE(r.begin, r.end);
        expect_begin = r.end;
        covered += r.size();
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
      }
      EXPECT_EQ(expect_begin, total);
      EXPECT_EQ(covered, total);
      if (total >= k) {
        EXPECT_LE(max_size - min_size, 1u) << "total=" << total << " k=" << k;
      }
    }
  }
}

TEST(Supervise, BackoffIsCappedExponential) {
  using std::chrono::milliseconds;
  const milliseconds base{25};
  const milliseconds cap{500};
  EXPECT_EQ(respawn_backoff(0, base, cap), milliseconds::zero());
  EXPECT_EQ(respawn_backoff(1, base, cap), milliseconds{25});
  EXPECT_EQ(respawn_backoff(2, base, cap), milliseconds{50});
  EXPECT_EQ(respawn_backoff(3, base, cap), milliseconds{100});
  EXPECT_EQ(respawn_backoff(10, base, cap), cap);
  EXPECT_EQ(respawn_backoff(1000, base, cap), cap);  // no overflow
  EXPECT_EQ(respawn_backoff(5, milliseconds::zero(), cap),
            milliseconds::zero());
}

TEST(Supervise, ReaperScheduleIsSeededAndStrictlyIncreasing) {
  const auto plan = reaper_schedule(4, 3, 99, 1000);
  ASSERT_EQ(plan.size(), 4u);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_LT(plan[i].victim_slot, 3u);
    if (i > 0) {
      EXPECT_GT(plan[i].after_delivered, plan[i - 1].after_delivered);
    }
  }
  const auto again = reaper_schedule(4, 3, 99, 1000);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].after_delivered, again[i].after_delivered);
    EXPECT_EQ(plan[i].victim_slot, again[i].victim_slot);
  }
  EXPECT_NE(reaper_schedule(4, 3, 100, 1000)[0].after_delivered,
            plan[0].after_delivered);
  EXPECT_TRUE(reaper_schedule(0, 3, 99, 1000).empty());
  EXPECT_TRUE(reaper_schedule(2, 3, 99, 0).empty());
}

// ---- wire -----------------------------------------------------------------

TEST(Wire, FramesSurviveBytewiseReassembly) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(write_frame(fds[1], MsgType::kOutcome, "hello frame"));
  ASSERT_TRUE(write_frame(fds[1], MsgType::kHeartbeat, ""));
  ASSERT_TRUE(write_frame(fds[1], MsgType::kDone, "x"));
  ::close(fds[1]);
  std::string bytes;
  char buf[256];
  ssize_t n = 0;
  while ((n = ::read(fds[0], buf, sizeof buf)) > 0) {
    bytes.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);

  // Feed one byte at a time: frames must only complete at their exact
  // boundary, never early, never late.
  FrameReader reader;
  std::vector<Frame> frames;
  for (const char c : bytes) {
    reader.feed(&c, 1);
    while (auto frame = reader.next()) frames.push_back(std::move(*frame));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, MsgType::kOutcome);
  EXPECT_EQ(frames[0].payload, "hello frame");
  EXPECT_EQ(frames[1].type, MsgType::kHeartbeat);
  EXPECT_EQ(frames[1].payload, "");
  EXPECT_EQ(frames[2].type, MsgType::kDone);
  EXPECT_EQ(frames[2].payload, "x");
}

TEST(Wire, PartialTrailingFrameNeverCompletes) {
  // A worker SIGKILLed mid-write leaves a torn frame; the reader must
  // sit on it forever rather than deliver garbage.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(write_frame(fds[1], MsgType::kOutcome, "complete"));
  ASSERT_EQ(::write(fds[1], "\x01\xff\x00\x00\x00par", 8), 8);  // torn
  ::close(fds[1]);
  std::string bytes;
  char buf[256];
  ssize_t n = 0;
  while ((n = ::read(fds[0], buf, sizeof buf)) > 0) {
    bytes.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->payload, "complete");
  EXPECT_FALSE(reader.next().has_value());
}

fault::OutcomeRecord sample_failure_record() {
  fault::OutcomeRecord rec;
  rec.digest = 0xDEADBEEFCAFEF00DULL;
  rec.steps = 321;
  rec.reason = RunResult::Reason::kBudget;
  rec.failure = FailureClass::kConsistency;
  fault::TortureFailure f;
  f.run.protocol = "broken-racy";
  f.run.inputs = {0, 1, 1};
  f.run.adversary = "round-robin";
  f.run.crash_plan = {{12, 1}};
  f.run.seed = 777;
  f.run.max_steps = 100000;
  f.failure = FailureClass::kConsistency;
  f.reason = RunResult::Reason::kBudget;
  f.schedule = {0, 1, 2, 0, 1};
  f.crashes = {{12, 1}, {30, 2}};
  f.result.all_decided = false;
  f.result.consistent = false;
  f.result.valid = true;
  f.result.bounded_ok = true;
  f.result.decisions = {0, 1, -1};
  f.result.decision_rounds = {1, 1, 0};
  f.result.total_steps = 321;
  f.result.max_proc_steps = 130;
  f.result.max_round = 1;
  f.result.footprint = {true, 2, 3, 4, 5};
  f.result.reason = RunResult::Reason::kBudget;
  rec.detail = std::move(f);
  return rec;
}

TEST(Wire, RecordRoundTripPreservesEveryField) {
  const fault::OutcomeRecord rec = sample_failure_record();
  const std::string text = serialize_record(42, rec);
  std::string err;
  const auto parsed = parse_record(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->first, 42u);
  const fault::OutcomeRecord& p = parsed->second;
  EXPECT_EQ(p.digest, rec.digest);
  EXPECT_EQ(p.steps, rec.steps);
  EXPECT_EQ(p.reason, rec.reason);
  EXPECT_EQ(p.failure, rec.failure);
  ASSERT_TRUE(p.detail.has_value());
  const fault::TortureFailure& a = *rec.detail;
  const fault::TortureFailure& b = *p.detail;
  EXPECT_EQ(b.run.protocol, a.run.protocol);
  EXPECT_EQ(b.run.inputs, a.run.inputs);
  EXPECT_EQ(b.run.adversary, a.run.adversary);
  ASSERT_EQ(b.run.crash_plan.size(), a.run.crash_plan.size());
  EXPECT_EQ(b.run.crash_plan[0].at_step, a.run.crash_plan[0].at_step);
  EXPECT_EQ(b.run.crash_plan[0].victim, a.run.crash_plan[0].victim);
  EXPECT_EQ(b.run.seed, a.run.seed);
  EXPECT_EQ(b.run.max_steps, a.run.max_steps);
  EXPECT_EQ(b.failure, a.failure);
  EXPECT_EQ(b.reason, a.reason);
  EXPECT_EQ(b.schedule, a.schedule);
  ASSERT_EQ(b.crashes.size(), a.crashes.size());
  EXPECT_EQ(b.crashes[1].at_step, a.crashes[1].at_step);
  EXPECT_EQ(b.crashes[1].victim, a.crashes[1].victim);
  EXPECT_EQ(b.result.all_decided, a.result.all_decided);
  EXPECT_EQ(b.result.consistent, a.result.consistent);
  EXPECT_EQ(b.result.valid, a.result.valid);
  EXPECT_EQ(b.result.bounded_ok, a.result.bounded_ok);
  EXPECT_EQ(b.result.decisions, a.result.decisions);
  EXPECT_EQ(b.result.decision_rounds, a.result.decision_rounds);
  EXPECT_EQ(b.result.total_steps, a.result.total_steps);
  EXPECT_EQ(b.result.max_proc_steps, a.result.max_proc_steps);
  EXPECT_EQ(b.result.max_round, a.result.max_round);
  EXPECT_EQ(b.result.footprint.bounded, a.result.footprint.bounded);
  EXPECT_EQ(b.result.footprint.max_round_stored,
            a.result.footprint.max_round_stored);
  EXPECT_EQ(b.result.footprint.max_counter, a.result.footprint.max_counter);
  EXPECT_EQ(b.result.footprint.coin_locations,
            a.result.footprint.coin_locations);
  EXPECT_EQ(b.result.footprint.static_bound, a.result.footprint.static_bound);
  EXPECT_EQ(b.result.reason, a.result.reason);
}

TEST(Wire, SpaceLineIsAbsentAtDefaultAndRoundTripsOtherwise) {
  // The space lane's byte-stability contract on the wire: records from
  // paper-budget runs — every record ever framed before the lane existed
  // — carry no space line; a non-default budget rides in a failure block
  // line and survives serialize/parse/re-serialize bit-identically.
  fault::OutcomeRecord rec = sample_failure_record();
  EXPECT_EQ(serialize_record(1, rec).find("space "), std::string::npos);

  rec.detail->run.space.cycle_mult = 2;
  const std::string text = serialize_record(1, rec);
  EXPECT_NE(text.find("space K=2 cycle=2 slots=3 b=4 mscale=4\n"),
            std::string::npos);
  std::string err;
  const auto parsed = parse_record(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->second.detail->run.space, rec.detail->run.space);
  EXPECT_EQ(serialize_record(1, parsed->second), text);

  // Reject, never guess: a mangled budget must not parse as the default.
  std::string bad = text;
  const std::size_t at = bad.find("space K=2 cycle=2");
  bad.replace(at, 17, "space K=2 cycle=x");
  EXPECT_FALSE(parse_record(bad, &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(Wire, SkippedSpaceCellsLineRoundTrips) {
  ShardFile shard;
  shard.fingerprint = 0xF00;
  shard.total_runs = 0;
  shard.max_failures = 8;
  shard.begin = 0;
  shard.end = 0;
  // Absent at zero — the historical-bytes contract...
  EXPECT_EQ(serialize_shard_file(shard).find("skipped-space-cells"),
            std::string::npos);
  // ...present and bit-stable when a space-insensitive cell was skipped.
  shard.skipped_space_cells = 5;
  const std::string text = serialize_shard_file(shard);
  EXPECT_NE(text.find("skipped-space-cells 5\n"), std::string::npos);
  std::string err;
  const auto parsed = parse_shard_file(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->skipped_space_cells, 5u);
  EXPECT_EQ(serialize_shard_file(*parsed), text);
}

TEST(Wire, MalformedRecordsAreRejectedWithDiagnostics) {
  std::string err;
  EXPECT_FALSE(parse_record("nonsense\n", &err).has_value());
  EXPECT_FALSE(
      parse_record("outcome 1 2 3 not-a-reason none\n", &err).has_value());
  EXPECT_FALSE(
      parse_record("outcome 1 2 3 all-done not-a-class\n", &err).has_value());
  EXPECT_FALSE(
      parse_record("outcome 1 2 3 all-done none extra\n", &err).has_value());
  // Unterminated failure block.
  EXPECT_FALSE(
      parse_record("outcome 1 2 3 all-done consistency\nfailure-begin\n", &err)
          .has_value());
  EXPECT_NE(err.find("failure-end"), std::string::npos) << err;
  // Unknown key inside a failure block.
  EXPECT_FALSE(parse_record("outcome 1 2 3 all-done consistency\n"
                            "failure-begin\nwat 3\nfailure-end\n",
                            &err)
                   .has_value());
}

TEST(Wire, ShardFileRoundTripIsBitIdentical) {
  ShardFile shard;
  shard.fingerprint = 0x1234567890ABCDEFULL;
  shard.total_runs = 10;
  shard.max_failures = 8;
  shard.skipped_crash_cells = 2;
  shard.begin = 3;
  shard.end = 6;
  for (std::size_t i = 3; i < 6; ++i) {
    fault::OutcomeRecord rec;
    rec.digest = 100 + i;
    rec.steps = 10 * i;
    rec.reason = RunResult::Reason::kAllDone;
    rec.failure = FailureClass::kNone;
    if (i == 4) {
      rec = sample_failure_record();
      rec.digest = 100 + i;
    }
    shard.records.emplace_back(i, std::move(rec));
  }
  const std::string text = serialize_shard_file(shard);
  // Atomic-only campaigns never skipped safe cells, and their files must
  // keep their historical bytes: no skipped-safe-cells line.
  EXPECT_EQ(text.find("skipped-safe-cells"), std::string::npos);
  std::string err;
  const auto parsed = parse_shard_file(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  // Bit-identity: re-serializing the parsed shard reproduces the exact
  // bytes, so files survive any number of load/save cycles unchanged.
  EXPECT_EQ(serialize_shard_file(*parsed), text);

  // With kSafe skips the optional header line appears, round-trips
  // bit-identically, and carries the count through parse.
  shard.skipped_safe_cells = 7;
  const std::string weak_text = serialize_shard_file(shard);
  EXPECT_NE(weak_text.find("skipped-safe-cells 7\n"), std::string::npos);
  const auto weak_parsed = parse_shard_file(weak_text, &err);
  ASSERT_TRUE(weak_parsed.has_value()) << err;
  EXPECT_EQ(weak_parsed->skipped_safe_cells, 7u);
  EXPECT_EQ(serialize_shard_file(*weak_parsed), weak_text);
}

TEST(Wire, CorruptShardFilesAreRefused) {
  std::string err;
  EXPECT_FALSE(parse_shard_file("not-a-shard\n", &err).has_value());
  const std::string header =
      "bprc-shard v1\nfingerprint 1\ntotal-runs 4\nmax-failures 8\n"
      "skipped-crash-cells 0\nrange 0 2\n";
  // Truncated: no end marker.
  EXPECT_FALSE(parse_shard_file(header, &err).has_value());
  EXPECT_NE(err.find("truncated"), std::string::npos) << err;
  // Coverage hole: range says [0, 2) but only one record present.
  EXPECT_FALSE(
      parse_shard_file(header + "outcome 0 5 1 all-done none\nend\n", &err)
          .has_value());
  // Out-of-order records.
  EXPECT_FALSE(parse_shard_file(header + "outcome 1 5 1 all-done none\n" +
                                    "outcome 0 5 1 all-done none\nend\n",
                                &err)
                   .has_value());
  // The valid version of the same file parses.
  EXPECT_TRUE(parse_shard_file(header + "outcome 0 5 1 all-done none\n" +
                                   "outcome 1 6 1 all-done none\nend\n",
                               &err)
                  .has_value())
      << err;
}

// ---- end-to-end determinism ----------------------------------------------

fault::CampaignConfig small_campaign() {
  fault::CampaignConfig config;
  config.protocols = {"bprc"};
  config.ns = {2, 3};
  config.adversaries = {"random", "round-robin"};
  config.seeds_per_cell = 2;
  config.max_steps = 2'000'000;
  config.run_deadline = std::chrono::milliseconds(3000);
  config.jobs = 1;
  return config;
}

void expect_same_report(const fault::CampaignReport& a,
                        const fault::CampaignReport& b) {
  EXPECT_EQ(a.summary_digest, b.summary_digest);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.deadline_aborts, b.deadline_aborts);
  EXPECT_EQ(a.budget_aborts, b.budget_aborts);
  EXPECT_EQ(a.skipped_crash_cells, b.skipped_crash_cells);
  EXPECT_EQ(a.skipped_safe_cells, b.skipped_safe_cells);
  EXPECT_EQ(a.failures.size(), b.failures.size());
  EXPECT_EQ(a.interrupted, b.interrupted);
}

TEST(Shard, FourWorkersReproduceTheSerialReport) {
  const fault::CampaignConfig config = small_campaign();
  const fault::CampaignReport serial = run_campaign(config);
  ASSERT_TRUE(serial.ok());

  ShardServiceConfig service;
  service.campaign = config;
  service.workers = 4;
  const fault::CampaignReport sharded = run_sharded_campaign(service);
  expect_same_report(serial, sharded);
}

TEST(Shard, ChaosKillsLeaveTheDigestUntouched) {
  // A heavier matrix so workers are genuinely mid-shard when the two
  // seeded reaper kills land; each killed worker's range is re-executed
  // by its replacement, and the merged report must not move a bit.
  fault::CampaignConfig config = small_campaign();
  config.ns = {5};
  config.seeds_per_cell = 6;
  const fault::CampaignReport serial = run_campaign(config);
  ASSERT_TRUE(serial.ok());

  ShardServiceConfig service;
  service.campaign = config;
  service.workers = 4;
  service.reaper_kills = 2;
  std::atomic<int> kills{0};
  service.log = [&](const std::string& msg) {
    if (msg.rfind("reaper:", 0) == 0) ++kills;
  };
  const fault::CampaignReport sharded = run_sharded_campaign(service);
  EXPECT_EQ(kills.load(), 2) << "chaos kills did not land";
  expect_same_report(serial, sharded);
}

TEST(Shard, ShardFilesMergeBackToTheSerialReport) {
  const fault::CampaignConfig config = small_campaign();
  const fault::CampaignReport serial = run_campaign(config);

  std::vector<ShardFile> shards;
  for (std::size_t i = 0; i < 3; ++i) {
    ShardFile file = run_shard(config, i, 3);
    // Round-trip through the text format, as the CLI does through disk.
    std::string err;
    auto reparsed = parse_shard_file(serialize_shard_file(file), &err);
    ASSERT_TRUE(reparsed.has_value()) << err;
    shards.push_back(std::move(*reparsed));
  }
  const MergeResult merged = merge_shard_files(shards);
  ASSERT_TRUE(merged.ok) << merged.error;
  expect_same_report(serial, merged.report);

  // Any-order merge: shuffle the shard order; the fold is by index, not
  // by argument position.
  std::vector<ShardFile> reversed(shards.rbegin(), shards.rend());
  const MergeResult merged2 = merge_shard_files(reversed);
  ASSERT_TRUE(merged2.ok) << merged2.error;
  EXPECT_EQ(merged2.report.summary_digest, serial.summary_digest);
}

TEST(Shard, MergeRefusesIncompleteOrForeignShards) {
  const fault::CampaignConfig config = small_campaign();
  std::vector<ShardFile> shards;
  for (std::size_t i = 0; i < 2; ++i) {
    shards.push_back(run_shard(config, i, 2));
  }
  // Missing shard.
  const MergeResult missing = merge_shard_files({shards[0]});
  EXPECT_FALSE(missing.ok);
  // Foreign shard: a different campaign's fingerprint.
  std::vector<ShardFile> mixed = shards;
  mixed[1].fingerprint ^= 1;
  const MergeResult foreign = merge_shard_files(mixed);
  EXPECT_FALSE(foreign.ok);
  EXPECT_NE(foreign.error.find("different campaigns"), std::string::npos);
  // Empty set.
  EXPECT_FALSE(merge_shard_files({}).ok);
}

// ---- crash survival -------------------------------------------------------

TEST(Shard, WorkerKillingTrialsAreQuarantinedAndTheCampaignCompletes) {
  // broken-segv segfaults the worker process on even seeds. A
  // single-process campaign dies on the spot; the coordinator must burn
  // the respawn budget on each lethal index, quarantine it as
  // kWorkerCrash, and still complete the rest of the matrix.
  fault::CampaignConfig config;
  config.protocols = {"broken-segv"};
  config.ns = {2};
  config.adversaries = {"random"};
  config.seeds_per_cell = 4;
  config.crash_plans = false;
  config.max_steps = 2'000'000;
  config.run_deadline = std::chrono::milliseconds(3000);
  config.max_failures = 64;
  config.jobs = 1;

  ShardServiceConfig service;
  service.campaign = config;
  service.workers = 2;
  service.max_respawns = 1;  // two deaths per lethal index, then give up

  const fault::CampaignReport report = run_sharded_campaign(service);
  EXPECT_FALSE(report.interrupted);
  EXPECT_GT(report.runs, 0u);
  ASSERT_FALSE(report.failures.empty())
      << "no lethal seed in the matrix — the acceptance target is gone";
  EXPECT_LT(report.failures.size(), report.runs)
      << "expected benign seeds too";
  for (const fault::TortureFailure& fail : report.failures) {
    EXPECT_EQ(fail.failure, FailureClass::kWorkerCrash);
    EXPECT_EQ(fail.run.protocol, "broken-segv");
    EXPECT_TRUE(fail.schedule.empty());  // the worker died; no recording

    // The artifact pipeline: worker-crash findings become *generative*
    // repro files (mode generative), which round-trip through the text
    // format. They are not replayed here — replaying one re-executes the
    // lethal trial, which would take this test process down; that
    // behavior is exactly what docs/TESTING.md warns about.
    const fault::Repro repro =
        fault::make_repro(fail, fail.schedule, fail.crashes);
    EXPECT_TRUE(repro.generative);
    std::string err;
    const auto parsed = fault::parse_repro(fault::serialize_repro(repro), &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_TRUE(parsed->generative);
    EXPECT_EQ(parsed->failure, FailureClass::kWorkerCrash);
    EXPECT_EQ(parsed->run.seed, fail.run.seed);
  }

  // Determinism holds for quarantine too: a different worker count folds
  // the identical digest, because quarantined_digest() is a pure
  // function of the failure class.
  ShardServiceConfig service3 = service;
  service3.workers = 3;
  const fault::CampaignReport report3 = run_sharded_campaign(service3);
  expect_same_report(report, report3);
}

TEST(Shard, StopRequestedInterruptsAndFlushes) {
  // Coordinator: a stop flag that is already set must interrupt the
  // campaign promptly, reap the workers, and mark the report.
  fault::CampaignConfig config = small_campaign();
  config.stop_requested = [] { return true; };
  ShardServiceConfig service;
  service.campaign = config;
  service.workers = 2;
  const fault::CampaignReport report = run_sharded_campaign(service);
  EXPECT_TRUE(report.interrupted);
  EXPECT_FALSE(report.ok());

  // Serial engine: stopping after the 10th poll keeps the first 10
  // folded runs — partial results flush instead of vanishing.
  fault::CampaignConfig partial = small_campaign();
  int polls = 0;
  partial.stop_requested = [&polls] { return ++polls > 10; };
  const fault::CampaignReport stopped = run_campaign(partial);
  EXPECT_TRUE(stopped.interrupted);
  EXPECT_EQ(stopped.runs, 10u);
}

}  // namespace
}  // namespace bprc::shard
