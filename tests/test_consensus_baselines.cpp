// Baseline protocols (AH88, A88-style local coin, CIL87-style strong
// coin): same correctness matrix as BPRC, plus the memory-growth
// characteristics each baseline exists to demonstrate.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "consensus/abrahamson.hpp"
#include "consensus/aspnes_herlihy.hpp"
#include "consensus/driver.hpp"
#include "consensus/strong_coin.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"

namespace bprc {
namespace {

constexpr std::uint64_t kBudget = 80'000'000;

ProtocolFactory ah_factory(int n) {
  return [n](Runtime& rt) {
    return std::make_unique<AspnesHerlihyConsensus>(rt,
                                                    CoinParams::standard(n));
  };
}
ProtocolFactory local_coin_factory() {
  return [](Runtime& rt) { return std::make_unique<LocalCoinConsensus>(rt); };
}
ProtocolFactory strong_factory(std::uint64_t coin_seed) {
  return [coin_seed](Runtime& rt) {
    return std::make_unique<StrongCoinConsensus>(rt, coin_seed);
  };
}

struct Arm {
  const char* name;
  ProtocolFactory factory;
};

std::vector<Arm> arms(int n, std::uint64_t seed) {
  return {{"aspnes-herlihy", ah_factory(n)},
          {"local-coin", local_coin_factory()},
          {"strong-coin", strong_factory(seed ^ 0xC01)}};
}

class BaselineMatrix : public ::testing::TestWithParam<
                           std::tuple<int, int, int, std::uint64_t>> {};

TEST_P(BaselineMatrix, ConsistentValidTerminating) {
  const auto [n, arm_idx, advk, seed] = GetParam();
  // Local-coin at n >= 6 under hostile schedulers can take exponentially
  // long; the matrix keeps it within reach (that growth is measured, not
  // tested, in bench_baselines).
  const auto patterns = standard_input_patterns(n, seed);
  auto advs = standard_adversaries(seed * 271 + 3);
  const Arm arm = arms(n, seed)[static_cast<std::size_t>(arm_idx)];
  const auto res = run_consensus_sim(
      arm.factory, patterns[2],  // half/half split
      std::move(advs[static_cast<std::size_t>(advk)]), seed, kBudget);
  EXPECT_TRUE(res.all_decided) << arm.name << ": termination failure";
  EXPECT_TRUE(res.consistent) << arm.name << ": CONSISTENCY VIOLATION";
  EXPECT_TRUE(res.valid) << arm.name << ": VALIDITY VIOLATION";
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BaselineMatrix,
    ::testing::Combine(::testing::Values(2, 3, 5),  // n
                       ::testing::Range(0, 3),      // protocol arm
                       ::testing::Range(0, 5),      // adversary
                       ::testing::Values<std::uint64_t>(1, 2)));

class BaselineUnanimity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BaselineUnanimity, UnanimousInputsDecideThatValue) {
  const auto [arm_idx, input] = GetParam();
  const int n = 4;
  const Arm arm = arms(n, 5)[static_cast<std::size_t>(arm_idx)];
  const auto res = run_consensus_sim(
      arm.factory, std::vector<int>(n, input),
      std::make_unique<RandomAdversary>(5), 5, kBudget);
  ASSERT_TRUE(res.ok()) << arm.name;
  for (const int d : res.decisions) EXPECT_EQ(d, input);
}

INSTANTIATE_TEST_SUITE_P(Matrix, BaselineUnanimity,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Values(0, 1)));

TEST(AspnesHerlihy, MemoryGrowsWithExecution) {
  // The point of the comparison: AH88 stores round numbers and an
  // ever-growing coin strip in shared registers.
  const auto res = run_consensus_sim(
      ah_factory(4), {0, 1, 0, 1},
      std::make_unique<CoinBiasAdversary>(3), 3, kBudget);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res.footprint.bounded);
  EXPECT_GE(res.footprint.max_round_stored, 2);
  // If any coin was flipped, locations were allocated and never freed.
  if (res.footprint.coin_locations > 0) {
    EXPECT_GE(res.footprint.max_counter, 1);
  }
}

TEST(AspnesHerlihy, CrashToleranceMatchesBPRC) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    std::vector<CrashPlanAdversary::Crash> plan{
        {seed * 20 + 50, 0}, {seed * 20 + 300, 1}};
    auto adv = std::make_unique<CrashPlanAdversary>(
        std::make_unique<RandomAdversary>(seed), plan);
    const auto res = run_consensus_sim(ah_factory(4), {0, 1, 1, 0},
                                       std::move(adv), seed, kBudget);
    EXPECT_TRUE(res.all_decided) << seed;
    EXPECT_TRUE(res.consistent) << seed;
  }
}

TEST(LocalCoin, ExpectedPhasesGrowWithN) {
  // The exponential trend (E7's shape): median re-randomization count
  // grows sharply from n=2 to n=6 under the lockstep schedule.
  auto median_version = [](int n) {
    std::vector<std::int64_t> versions;
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      std::vector<int> inputs(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) inputs[static_cast<std::size_t>(i)] = i % 2;
      const auto res = run_consensus_sim(
          local_coin_factory(), inputs,
          std::make_unique<LockstepAdversary>(seed), seed, kBudget);
      EXPECT_TRUE(res.ok());
      versions.push_back(res.max_round);
    }
    std::sort(versions.begin(), versions.end());
    return versions[versions.size() / 2];
  };
  const auto m2 = median_version(2);
  const auto m6 = median_version(6);
  EXPECT_GT(m6, m2 * 2) << "m2=" << m2 << " m6=" << m6;
}

TEST(StrongCoin, DecidesInVeryFewRounds) {
  // The perfect shared coin settles each contested round with probability
  // 1/2 for each side but with zero disagreement; rounds stay tiny.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto res = run_consensus_sim(
        strong_factory(seed), {0, 1, 0, 1},
        std::make_unique<LeaderSuppressAdversary>(seed), seed, kBudget);
    ASSERT_TRUE(res.ok());
    EXPECT_LE(res.max_round, 25);
  }
}

TEST(AtomicCoinFlip, SamePhaseSameBitForAllCallers) {
  SimRuntime rt(4, std::make_unique<RandomAdversary>(2), 2);
  AtomicCoinFlip coin(rt, 99);
  std::vector<std::vector<bool>> bits(4);
  for (ProcId p = 0; p < 4; ++p) {
    rt.spawn(p, [&coin, &bits, p] {
      for (std::int64_t phase = 0; phase < 20; ++phase) {
        bits[static_cast<std::size_t>(p)].push_back(coin.flip(phase));
      }
    });
  }
  ASSERT_EQ(rt.run(1'000'000).reason, RunResult::Reason::kAllDone);
  for (ProcId p = 1; p < 4; ++p) {
    EXPECT_EQ(bits[static_cast<std::size_t>(p)], bits[0]);
  }
  // And the bits are not constant (20 fair flips all equal: p = 2^-19).
  bool all_same = true;
  for (const bool b : bits[0]) all_same = all_same && (b == bits[0][0]);
  EXPECT_FALSE(all_same);
  EXPECT_EQ(coin.phases_used(), 20u);
}

}  // namespace
}  // namespace bprc
