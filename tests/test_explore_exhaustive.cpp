// n=3 exhaustive exploration suites. Registered under the `exhaustive`
// ctest configuration (run with `ctest -C exhaustive`), not the default
// tier-1 pass: these sweeps enumerate hundreds of thousands of
// executions. See docs/TESTING.md ("Exploration tier").
#include <gtest/gtest.h>

#include <string>

#include "explore/consensus_explore.hpp"
#include "explore/explorer.hpp"
#include "explore/token_game_explore.hpp"

namespace bprc::explore {
namespace {

ExploreLimits n3_limits(std::uint64_t depth, std::uint64_t coins = 3) {
  ExploreLimits limits;
  limits.branch_depth = depth;
  limits.max_coin_flips = coins;
  limits.max_run_steps = 400'000;
  return limits;
}

TEST(ExploreExhaustive, BprcIsCleanAtN3) {
  const auto reports =
      explore_consensus_all_inputs("bprc", 3, /*seed=*/1, n3_limits(14));
  ASSERT_EQ(reports.size(), 8u);
  for (const auto& report : reports) {
    EXPECT_TRUE(report.ok()) << report.violations.size() << " violation(s)";
    EXPECT_TRUE(report.stats.complete);
    EXPECT_EQ(report.stats.truncated_runs, 0u);
  }
}

TEST(ExploreExhaustive, BaselinesAreCleanAtN3) {
  for (const std::string protocol :
       {"aspnes-herlihy", "local-coin", "strong-coin"}) {
    const auto reports =
        explore_consensus_all_inputs(protocol, 3, /*seed=*/1, n3_limits(12));
    for (const auto& report : reports) {
      EXPECT_TRUE(report.ok()) << protocol;
      EXPECT_TRUE(report.stats.complete) << protocol;
    }
  }
}

TEST(ExploreExhaustive, BrokenProtocolsAreCaughtAtN3) {
  for (const std::string protocol : {"broken-racy", "broken-unbounded"}) {
    const auto reports =
        explore_consensus_all_inputs(protocol, 3, /*seed=*/1, n3_limits(12));
    std::uint64_t violations = 0;
    for (const auto& report : reports) violations += report.violations.size();
    EXPECT_GT(violations, 0u) << protocol << " not caught at n=3";
  }
}

TEST(ExploreExhaustive, Claim41HoldsForEveryInterleavingAtN3) {
  // 3 movers x 6 moves: every interleaving of the token game against the
  // incremental distance graph, across two shrink constants.
  for (const int K : {1, 2}) {
    const ExploreResult result =
        explore_token_game(3, K, 6, n3_limits(18), /*seed=*/1);
    EXPECT_TRUE(result.ok()) << "K=" << K;
    EXPECT_TRUE(result.stats.complete) << "K=" << K;
  }
}

TEST(ExploreExhaustive, PrunedAndUnprunedSweepsAgreeAtN3) {
  // The prunings must be sound: the pruned and unpruned n=3 sweeps of one
  // input cell reach the same verdict on every protocol.
  for (const std::string protocol : {"bprc", "broken-racy"}) {
    ConsensusExploreConfig config;
    config.protocol = protocol;
    config.inputs = {0, 1, 1};
    config.limits = n3_limits(10);
    const bool expect_clean = protocol == "bprc";
    ConsensusExploreConfig bare = config;
    bare.limits.sleep_sets = false;
    bare.limits.state_cache = false;
    EXPECT_EQ(explore_consensus(config).ok(), expect_clean) << protocol;
    EXPECT_EQ(explore_consensus(bare).ok(), expect_clean) << protocol;
  }
}

}  // namespace
}  // namespace bprc::explore
