// n=3 exhaustive exploration suites. Registered under the `exhaustive`
// ctest configuration (run with `ctest -C exhaustive`), not the default
// tier-1 pass: these sweeps enumerate hundreds of thousands of
// executions. See docs/TESTING.md ("Exploration tier").
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "explore/consensus_explore.hpp"
#include "explore/explorer.hpp"
#include "explore/token_game_explore.hpp"
#include "fault/repro.hpp"
#include "fault/shrink.hpp"

namespace bprc::explore {
namespace {

ExploreLimits n3_limits(std::uint64_t depth, std::uint64_t coins = 3) {
  ExploreLimits limits;
  limits.branch_depth = depth;
  limits.max_coin_flips = coins;
  limits.max_run_steps = 400'000;
  return limits;
}

TEST(ExploreExhaustive, BprcIsCleanAtN3) {
  const auto reports =
      explore_consensus_all_inputs("bprc", 3, /*seed=*/1, n3_limits(14));
  ASSERT_EQ(reports.size(), 8u);
  for (const auto& report : reports) {
    EXPECT_TRUE(report.ok()) << report.violations.size() << " violation(s)";
    EXPECT_TRUE(report.stats.complete);
    EXPECT_EQ(report.stats.truncated_runs, 0u);
  }
}

TEST(ExploreExhaustive, BaselinesAreCleanAtN3) {
  for (const std::string protocol :
       {"aspnes-herlihy", "local-coin", "strong-coin"}) {
    const auto reports =
        explore_consensus_all_inputs(protocol, 3, /*seed=*/1, n3_limits(12));
    for (const auto& report : reports) {
      EXPECT_TRUE(report.ok()) << protocol;
      EXPECT_TRUE(report.stats.complete) << protocol;
    }
  }
}

TEST(ExploreExhaustive, BrokenProtocolsAreCaughtAtN3) {
  for (const std::string protocol : {"broken-racy", "broken-unbounded"}) {
    const auto reports =
        explore_consensus_all_inputs(protocol, 3, /*seed=*/1, n3_limits(12));
    std::uint64_t violations = 0;
    for (const auto& report : reports) violations += report.violations.size();
    EXPECT_GT(violations, 0u) << protocol << " not caught at n=3";
  }
}

TEST(ExploreExhaustive, NeedsAtomicCaughtOnlyUnderWeakenedSemantics) {
  // The weak-register acceptance target at n=3: the semantics-sensitive
  // protocol is verified *clean* over atomic registers by the same sweep
  // that catches it over regular ones — and the minimal witness the
  // explorer finds shrinks and replays through the torture pipeline.
  const auto atomic_reports = explore_consensus_all_inputs(
      "broken-needs-atomic", 3, /*seed=*/1, n3_limits(12));
  for (const auto& report : atomic_reports) {
    EXPECT_TRUE(report.ok()) << "must be correct over atomic registers";
    EXPECT_TRUE(report.stats.complete);
  }

  ExploreLimits weak = n3_limits(12);
  weak.semantics = RegisterSemantics::kRegular;
  const auto weak_reports = explore_consensus_all_inputs(
      "broken-needs-atomic", 3, /*seed=*/1, weak);
  const ConsensusExploreReport* witness_report = nullptr;
  const ExploreViolation* witness = nullptr;
  std::uint64_t violations = 0;
  for (const auto& report : weak_reports) {
    violations += report.violations.size();
    for (const ExploreViolation& v : report.violations) {
      if (witness == nullptr || v.schedule.size() < witness->schedule.size()) {
        witness_report = &report;
        witness = &v;
      }
    }
  }
  ASSERT_GT(violations, 0u) << "not caught over regular registers at n=3";
  ASSERT_NE(witness, nullptr);
  EXPECT_FALSE(witness->stales.empty())
      << "a weak-register witness must have forced a stale read";

  // The witness replays from its artifact and survives shrinking with the
  // failure class intact.
  const fault::Repro repro =
      make_explore_repro(witness_report->config, *witness);
  EXPECT_EQ(repro.run.semantics, RegisterSemantics::kRegular);
  EXPECT_EQ(fault::replay_repro(repro).failure(), repro.failure);

  fault::TortureFailure fail;
  fail.run = repro.run;
  fail.failure = repro.failure;
  fail.schedule = repro.schedule;
  fail.crashes = repro.crashes;
  fail.stales = repro.stales;
  const fault::ShrinkOutcome shrunk = fault::shrink_failure(fail);
  ASSERT_TRUE(shrunk.reproduced);
  EXPECT_LE(shrunk.schedule.size(), shrunk.original_len);
  const fault::Repro min_repro =
      fault::make_repro(fail, shrunk.schedule, shrunk.crashes);
  EXPECT_EQ(fault::replay_repro(min_repro).failure(), repro.failure);
}

TEST(ExploreExhaustive, Claim41HoldsForEveryInterleavingAtN3) {
  // 3 movers x 6 moves: every interleaving of the token game against the
  // incremental distance graph, across two shrink constants.
  for (const int K : {1, 2}) {
    const ExploreResult result =
        explore_token_game(3, K, 6, n3_limits(18), /*seed=*/1);
    EXPECT_TRUE(result.ok()) << "K=" << K;
    EXPECT_TRUE(result.stats.complete) << "K=" << K;
  }
}

TEST(ExploreExhaustive, PrunedAndUnprunedSweepsAgreeAtN3) {
  // The prunings must be sound: the pruned and unpruned n=3 sweeps of one
  // input cell reach the same verdict on every protocol.
  for (const std::string protocol : {"bprc", "broken-racy"}) {
    ConsensusExploreConfig config;
    config.protocol = protocol;
    config.inputs = {0, 1, 1};
    config.limits = n3_limits(10);
    const bool expect_clean = protocol == "bprc";
    ConsensusExploreConfig bare = config;
    bare.limits.sleep_sets = false;
    bare.limits.state_cache = false;
    EXPECT_EQ(explore_consensus(config).ok(), expect_clean) << protocol;
    EXPECT_EQ(explore_consensus(bare).ok(), expect_clean) << protocol;
  }
}

}  // namespace
}  // namespace bprc::explore
