// Tests for the preemptive std::jthread runtime.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "registers/register.hpp"
#include "runtime/thread_runtime.hpp"

namespace bprc {
namespace {

TEST(ThreadRuntime, RunsAllBodiesToCompletion) {
  ThreadRuntime rt(4, 1);
  std::vector<std::atomic<int>> done(4);
  for (ProcId p = 0; p < 4; ++p) {
    rt.spawn(p, [&rt, &done, p] {
      for (int k = 0; k < 50; ++k) rt.checkpoint({});
      done[static_cast<std::size_t>(p)] = 1;
    });
  }
  const RunResult res = rt.run(1'000'000);
  EXPECT_EQ(res.reason, RunResult::Reason::kAllDone);
  for (auto& d : done) EXPECT_EQ(d.load(), 1);
  EXPECT_EQ(res.steps, 200u);
}

TEST(ThreadRuntime, StepAccountingPerProcess) {
  ThreadRuntime rt(3, 1, /*yield_prob=*/0.0);
  for (ProcId p = 0; p < 3; ++p) {
    rt.spawn(p, [&rt, p] {
      for (int k = 0; k <= p; ++k) rt.checkpoint({});
    });
  }
  rt.run(1'000'000);
  EXPECT_EQ(rt.steps(0), 1u);
  EXPECT_EQ(rt.steps(1), 2u);
  EXPECT_EQ(rt.steps(2), 3u);
  EXPECT_EQ(rt.total_steps(), 6u);
}

TEST(ThreadRuntime, BudgetStopsInfiniteBodies) {
  ThreadRuntime rt(2, 1);
  std::atomic<int> unwound{0};
  struct Guard {
    std::atomic<int>* c;
    ~Guard() { c->fetch_add(1); }
  };
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&rt, &unwound] {
      Guard g{&unwound};
      for (;;) rt.checkpoint({});
    });
  }
  const RunResult res = rt.run(10'000);
  EXPECT_EQ(res.reason, RunResult::Reason::kBudget);
  EXPECT_EQ(unwound.load(), 2);  // RAII ran during unwinding
}

TEST(ThreadRuntime, SelfIdentifiesThread) {
  ThreadRuntime rt(3, 1);
  std::vector<std::atomic<ProcId>> selves(3);
  for (auto& s : selves) s = -1;
  for (ProcId p = 0; p < 3; ++p) {
    rt.spawn(p, [&rt, &selves, p] {
      rt.checkpoint({});
      selves[static_cast<std::size_t>(p)] = rt.self();
    });
  }
  rt.run(1'000'000);
  for (ProcId p = 0; p < 3; ++p) {
    EXPECT_EQ(selves[static_cast<std::size_t>(p)].load(), p);
  }
}

TEST(ThreadRuntime, NowIsGloballyUnique) {
  ThreadRuntime rt(4, 1);
  std::mutex mu;
  std::vector<std::uint64_t> stamps;
  for (ProcId p = 0; p < 4; ++p) {
    rt.spawn(p, [&] {
      for (int k = 0; k < 100; ++k) {
        rt.checkpoint({});
        const std::uint64_t t = rt.now();
        const std::scoped_lock lock(mu);
        stamps.push_back(t);
      }
    });
  }
  rt.run(10'000'000);
  std::sort(stamps.begin(), stamps.end());
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_NE(stamps[i - 1], stamps[i]);
  }
}

TEST(ThreadRuntime, ConcurrentRegisterAccessIsSafe) {
  // One writer, three readers hammering a native register: readers must
  // only ever observe values the writer actually wrote, in a
  // non-decreasing order (SWMR atomicity implies no stale regressions per
  // reader).
  ThreadRuntime rt(4, 1, /*yield_prob=*/0.2);
  SWMRRegister<int> reg(rt, /*owner=*/0, 0);
  std::atomic<bool> violation{false};
  rt.spawn(0, [&] {
    for (int v = 1; v <= 500; ++v) reg.write(v);
  });
  for (ProcId p = 1; p < 4; ++p) {
    rt.spawn(p, [&] {
      int last = 0;
      for (int k = 0; k < 500; ++k) {
        const int v = reg.read();
        if (v < last) violation = true;
        last = v;
      }
    });
  }
  rt.run(100'000'000);
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(reg.peek(), 500);
}

TEST(ThreadRuntime, RendezvousReleasesAllParticipants) {
  ThreadRuntime rt(4, 1);
  std::atomic<int> past_gate{0};
  for (ProcId p = 0; p < 4; ++p) {
    rt.spawn(p, [&] {
      rt.rendezvous(4);
      past_gate.fetch_add(1);
    });
  }
  const RunResult res = rt.run(1'000'000);
  EXPECT_EQ(res.reason, RunResult::Reason::kAllDone);
  EXPECT_EQ(past_gate.load(), 4);
}

TEST(ThreadRuntime, DeadlineFiresDuringParkedCheckpoint) {
  // Regression: a process parked in rendezvous() holds no checkpoint to
  // throw from, so the watchdog must actively wake it — a deadline that
  // only sets a flag would hang this run forever.
  ThreadRuntime rt(2, 1);
  std::atomic<bool> parked_past_gate{false};
  rt.spawn(0, [&] {
    rt.rendezvous(2);  // proc 1 never arrives: parks until the watchdog
    parked_past_gate = true;
  });
  rt.spawn(1, [] {});
  const RunResult res =
      rt.run(1'000'000, std::chrono::milliseconds(50));
  EXPECT_EQ(res.reason, RunResult::Reason::kDeadline);
  EXPECT_FALSE(parked_past_gate.load());
}

TEST(ThreadRuntime, BudgetExhaustionWakesParkedCheckpoint) {
  // Same rescue through the step-budget path: the spinning process burns
  // the budget, and raising stop must unpark its peer.
  ThreadRuntime rt(2, 1);
  rt.spawn(0, [&] { rt.rendezvous(2); });
  rt.spawn(1, [&] {
    for (;;) rt.checkpoint({});
  });
  const RunResult res = rt.run(5'000);
  EXPECT_EQ(res.reason, RunResult::Reason::kBudget);
}

TEST(ThreadRuntime, ScriptedFlipTapeExhaustsThenPassesThrough) {
  // The tape contract under real threads: forced prefix, then drawn bits
  // pass through untouched, with the generator stream identical to an
  // un-taped run (yield_prob = 0 keeps the rng stream pure).
  std::vector<bool> untaped(6);
  {
    ThreadRuntime rt(2, 7, /*yield_prob=*/0.0);
    rt.spawn(0, [&] {
      for (int i = 0; i < 6; ++i) untaped[static_cast<std::size_t>(i)] =
          rt.rng().flip();
    });
    rt.spawn(1, [] {});
    rt.run(1'000'000);
  }
  ThreadRuntime rt(2, 7, /*yield_prob=*/0.0);
  ScriptedFlipTape tape({true, false, true});
  std::vector<bool> taped(6);
  rt.spawn(0, [&] {
    rt.rng().set_flip_tape(&tape);
    for (int i = 0; i < 6; ++i) taped[static_cast<std::size_t>(i)] =
        rt.rng().flip();
    rt.rng().set_flip_tape(nullptr);
  });
  rt.spawn(1, [] {});
  rt.run(1'000'000);
  EXPECT_EQ(tape.consumed(), 3u);  // exhausted exactly at script length
  EXPECT_TRUE(taped[0]);
  EXPECT_FALSE(taped[1]);
  EXPECT_TRUE(taped[2]);
  // Past exhaustion the tape is transparent: drawn bits as if never taped.
  EXPECT_EQ(taped[3], untaped[3]);
  EXPECT_EQ(taped[4], untaped[4]);
  EXPECT_EQ(taped[5], untaped[5]);
}

namespace {
/// TraceSink whose read/write hooks re-enter the runtime by reading
/// another (sink-less) register — the reentrancy pattern exploration
/// sinks use for state fingerprinting.
class ReentrantSink final : public TraceSink {
 public:
  ReentrantSink(ThreadRuntime& rt, SWMRRegister<int>& inner)
      : rt_(rt), inner_(inner) {}

  int on_object_created() override { return next_id_.fetch_add(1); }
  void on_read(ProcId, int) override { reenter(); }
  void on_write(ProcId, int) override { reenter(); }
  void on_event(ProcId, int, std::uint64_t, bool) override {}

  int events() const { return events_.load(); }

 private:
  void reenter() {
    events_.fetch_add(1);
    // inner_ was constructed before the sink was installed, so its cached
    // sink pointer is null and this read does not recurse further.
    (void)inner_.read();
  }

  ThreadRuntime& rt_;
  SWMRRegister<int>& inner_;
  std::atomic<int> next_id_{0};
  std::atomic<int> events_{0};
};
}  // namespace

TEST(ThreadRuntime, TraceSinkReentrancyIsSafe) {
  ThreadRuntime rt(2, 3, /*yield_prob=*/0.1);
  SWMRRegister<int> inner(rt, /*owner=*/0, 0);  // pre-sink: null cached sink
  ReentrantSink sink(rt, inner);
  rt.set_trace_sink(&sink);
  ASSERT_EQ(rt.trace_sink(), &sink);
  SWMRRegister<int> outer(rt, /*owner=*/0, 0);  // post-sink: reports
  rt.spawn(0, [&] {
    for (int v = 1; v <= 50; ++v) outer.write(v);
  });
  rt.spawn(1, [&] {
    for (int k = 0; k < 50; ++k) (void)outer.read();
  });
  const RunResult res = rt.run(10'000'000);
  EXPECT_EQ(res.reason, RunResult::Reason::kAllDone);
  EXPECT_EQ(sink.events(), 100);  // 50 writes + 50 reads, each re-entered
}

TEST(ThreadRuntime, PerProcessRngStreamsDiffer) {
  ThreadRuntime rt(2, 9);
  std::vector<std::uint64_t> draws(2);
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&rt, &draws, p] {
      rt.checkpoint({});
      draws[static_cast<std::size_t>(p)] = rt.rng()();
    });
  }
  rt.run(1'000'000);
  EXPECT_NE(draws[0], draws[1]);
}

}  // namespace
}  // namespace bprc
