// Tests for the preemptive std::jthread runtime.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "registers/register.hpp"
#include "runtime/thread_runtime.hpp"

namespace bprc {
namespace {

TEST(ThreadRuntime, RunsAllBodiesToCompletion) {
  ThreadRuntime rt(4, 1);
  std::vector<std::atomic<int>> done(4);
  for (ProcId p = 0; p < 4; ++p) {
    rt.spawn(p, [&rt, &done, p] {
      for (int k = 0; k < 50; ++k) rt.checkpoint({});
      done[static_cast<std::size_t>(p)] = 1;
    });
  }
  const RunResult res = rt.run(1'000'000);
  EXPECT_EQ(res.reason, RunResult::Reason::kAllDone);
  for (auto& d : done) EXPECT_EQ(d.load(), 1);
  EXPECT_EQ(res.steps, 200u);
}

TEST(ThreadRuntime, StepAccountingPerProcess) {
  ThreadRuntime rt(3, 1, /*yield_prob=*/0.0);
  for (ProcId p = 0; p < 3; ++p) {
    rt.spawn(p, [&rt, p] {
      for (int k = 0; k <= p; ++k) rt.checkpoint({});
    });
  }
  rt.run(1'000'000);
  EXPECT_EQ(rt.steps(0), 1u);
  EXPECT_EQ(rt.steps(1), 2u);
  EXPECT_EQ(rt.steps(2), 3u);
  EXPECT_EQ(rt.total_steps(), 6u);
}

TEST(ThreadRuntime, BudgetStopsInfiniteBodies) {
  ThreadRuntime rt(2, 1);
  std::atomic<int> unwound{0};
  struct Guard {
    std::atomic<int>* c;
    ~Guard() { c->fetch_add(1); }
  };
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&rt, &unwound] {
      Guard g{&unwound};
      for (;;) rt.checkpoint({});
    });
  }
  const RunResult res = rt.run(10'000);
  EXPECT_EQ(res.reason, RunResult::Reason::kBudget);
  EXPECT_EQ(unwound.load(), 2);  // RAII ran during unwinding
}

TEST(ThreadRuntime, SelfIdentifiesThread) {
  ThreadRuntime rt(3, 1);
  std::vector<std::atomic<ProcId>> selves(3);
  for (auto& s : selves) s = -1;
  for (ProcId p = 0; p < 3; ++p) {
    rt.spawn(p, [&rt, &selves, p] {
      rt.checkpoint({});
      selves[static_cast<std::size_t>(p)] = rt.self();
    });
  }
  rt.run(1'000'000);
  for (ProcId p = 0; p < 3; ++p) {
    EXPECT_EQ(selves[static_cast<std::size_t>(p)].load(), p);
  }
}

TEST(ThreadRuntime, NowIsGloballyUnique) {
  ThreadRuntime rt(4, 1);
  std::mutex mu;
  std::vector<std::uint64_t> stamps;
  for (ProcId p = 0; p < 4; ++p) {
    rt.spawn(p, [&] {
      for (int k = 0; k < 100; ++k) {
        rt.checkpoint({});
        const std::uint64_t t = rt.now();
        const std::scoped_lock lock(mu);
        stamps.push_back(t);
      }
    });
  }
  rt.run(10'000'000);
  std::sort(stamps.begin(), stamps.end());
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_NE(stamps[i - 1], stamps[i]);
  }
}

TEST(ThreadRuntime, ConcurrentRegisterAccessIsSafe) {
  // One writer, three readers hammering a native register: readers must
  // only ever observe values the writer actually wrote, in a
  // non-decreasing order (SWMR atomicity implies no stale regressions per
  // reader).
  ThreadRuntime rt(4, 1, /*yield_prob=*/0.2);
  SWMRRegister<int> reg(rt, /*owner=*/0, 0);
  std::atomic<bool> violation{false};
  rt.spawn(0, [&] {
    for (int v = 1; v <= 500; ++v) reg.write(v);
  });
  for (ProcId p = 1; p < 4; ++p) {
    rt.spawn(p, [&] {
      int last = 0;
      for (int k = 0; k < 500; ++k) {
        const int v = reg.read();
        if (v < last) violation = true;
        last = v;
      }
    });
  }
  rt.run(100'000'000);
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(reg.peek(), 500);
}

TEST(ThreadRuntime, PerProcessRngStreamsDiffer) {
  ThreadRuntime rt(2, 9);
  std::vector<std::uint64_t> draws(2);
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&rt, &draws, p] {
      rt.checkpoint({});
      draws[static_cast<std::size_t>(p)] = rt.rng()();
    });
  }
  rt.run(1'000'000);
  EXPECT_NE(draws[0], draws[1]);
}

}  // namespace
}  // namespace bprc
