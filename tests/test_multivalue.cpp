// Multi-valued consensus (the paper's §5 extension): agreement, validity
// ("decision is some process's input"), termination — across value
// domains, adversaries, underlying binary protocols, and crash patterns.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "consensus/abrahamson.hpp"
#include "consensus/bprc.hpp"
#include "consensus/multivalue.hpp"
#include "consensus/strong_coin.hpp"
#include "runtime/thread_runtime.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"
#include "util/rng.hpp"

namespace bprc {
namespace {

ProtocolFactory bprc_bits(int n) {
  return [n](Runtime& rt) {
    return std::make_unique<BPRCConsensus>(rt, BPRCParams::standard(n));
  };
}

struct MVResult {
  bool done = false;
  std::vector<std::uint64_t> decisions;
};

MVResult run_mv(const std::vector<std::uint64_t>& inputs, int value_bits,
                std::unique_ptr<Adversary> adv, std::uint64_t seed,
                const ProtocolFactory& factory) {
  const int n = static_cast<int>(inputs.size());
  SimRuntime rt(n, std::move(adv), seed);
  MultiValueConsensus mv(rt, value_bits, factory);
  std::vector<std::uint64_t> out(static_cast<std::size_t>(n),
                                 ~std::uint64_t{0});
  for (ProcId p = 0; p < n; ++p) {
    const std::uint64_t input = inputs[static_cast<std::size_t>(p)];
    rt.spawn(p, [&mv, &out, p, input] {
      out[static_cast<std::size_t>(p)] = mv.propose(input);
    });
  }
  const RunResult res = rt.run(500'000'000ull);
  return {res.reason == RunResult::Reason::kAllDone, out};
}

void expect_agreement_and_validity(const std::vector<std::uint64_t>& inputs,
                                   const MVResult& res) {
  ASSERT_TRUE(res.done);
  for (const auto d : res.decisions) {
    EXPECT_EQ(d, res.decisions[0]) << "multi-value agreement violated";
  }
  const std::set<std::uint64_t> input_set(inputs.begin(), inputs.end());
  EXPECT_TRUE(input_set.contains(res.decisions[0]))
      << "decision " << res.decisions[0] << " is nobody's input";
}

TEST(MultiValue, SingleProcess) {
  const auto res = run_mv({0xBEEF}, 16, std::make_unique<RandomAdversary>(1),
                          1, bprc_bits(1));
  ASSERT_TRUE(res.done);
  EXPECT_EQ(res.decisions[0], 0xBEEFu);
}

TEST(MultiValue, UnanimousInputsDecideThatValue) {
  const std::vector<std::uint64_t> inputs(4, 0x2A);
  const auto res = run_mv(inputs, 8, std::make_unique<RandomAdversary>(2), 2,
                          bprc_bits(4));
  ASSERT_TRUE(res.done);
  for (const auto d : res.decisions) EXPECT_EQ(d, 0x2Au);
}

TEST(MultiValue, DistinctInputsStillAgree) {
  const std::vector<std::uint64_t> inputs{10, 20, 30, 40};
  const auto res = run_mv(inputs, 8, std::make_unique<RandomAdversary>(3), 3,
                          bprc_bits(4));
  expect_agreement_and_validity(inputs, res);
}

TEST(MultiValue, ExtremeValuesOfTheDomain) {
  const std::vector<std::uint64_t> inputs{0, 255, 0, 255};
  const auto res = run_mv(inputs, 8, std::make_unique<LockstepAdversary>(4),
                          4, bprc_bits(4));
  expect_agreement_and_validity(inputs, res);
}

class MultiValueMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(MultiValueMatrix, AgreementValidityTermination) {
  const auto [n, advk, seed] = GetParam();
  Rng rng(seed * 101 + 17);
  std::vector<std::uint64_t> inputs(static_cast<std::size_t>(n));
  for (auto& v : inputs) v = rng.below(1 << 12);
  auto advs = standard_adversaries(seed * 55 + 2);
  const auto res = run_mv(inputs, 12,
                          std::move(advs[static_cast<std::size_t>(advk)]),
                          seed, bprc_bits(n));
  expect_agreement_and_validity(inputs, res);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MultiValueMatrix,
    ::testing::Combine(::testing::Values(2, 3, 5), ::testing::Range(0, 5),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(MultiValue, WorksOverOtherBinaryProtocols) {
  const std::vector<std::uint64_t> inputs{7, 7, 9};
  // Local-coin underneath.
  const auto lc = run_mv(inputs, 4, std::make_unique<RandomAdversary>(5), 5,
                         [](Runtime& rt) {
                           return std::make_unique<LocalCoinConsensus>(rt);
                         });
  expect_agreement_and_validity(inputs, lc);
  // Strong-coin underneath.
  const auto sc = run_mv(inputs, 4, std::make_unique<RandomAdversary>(6), 6,
                         [](Runtime& rt) {
                           return std::make_unique<StrongCoinConsensus>(rt,
                                                                        77);
                         });
  expect_agreement_and_validity(inputs, sc);
}

TEST(MultiValue, SurvivesCrashes) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const std::vector<std::uint64_t> inputs{11, 22, 33, 44};
    auto adv = std::make_unique<CrashPlanAdversary>(
        std::make_unique<RandomAdversary>(seed),
        std::vector<CrashPlanAdversary::Crash>{{seed * 30 + 100, 0},
                                               {seed * 30 + 900, 1}});
    const int n = 4;
    SimRuntime rt(n, std::move(adv), seed);
    MultiValueConsensus mv(rt, 8, bprc_bits(n));
    std::vector<std::uint64_t> out(4, ~std::uint64_t{0});
    for (ProcId p = 0; p < n; ++p) {
      const std::uint64_t input = inputs[static_cast<std::size_t>(p)];
      rt.spawn(p, [&mv, &out, p, input] {
        out[static_cast<std::size_t>(p)] = mv.propose(input);
      });
    }
    ASSERT_EQ(rt.run(500'000'000ull).reason, RunResult::Reason::kAllDone);
    // Survivors (2, 3) agree on someone's input.
    EXPECT_EQ(out[2], out[3]);
    EXPECT_TRUE(out[2] == 11 || out[2] == 22 || out[2] == 33 || out[2] == 44);
  }
}

TEST(MultiValue, SixtyThreeBitDomain) {
  const std::uint64_t big = (std::uint64_t{1} << 62) | 0x12345678ULL;
  const std::vector<std::uint64_t> inputs{big, 1, big};
  const auto res = run_mv(inputs, 63, std::make_unique<RandomAdversary>(7),
                          7, bprc_bits(3));
  expect_agreement_and_validity(inputs, res);
}

TEST(MultiValue, ThreadRuntimeEndToEnd) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const int n = 4;
    ThreadRuntime rt(n, seed, /*yield_prob=*/0.1);
    MultiValueConsensus mv(rt, 10, bprc_bits(n));
    std::vector<std::uint64_t> out(static_cast<std::size_t>(n),
                                   ~std::uint64_t{0});
    const std::uint64_t inputs[4] = {100, 200, 300, 400};
    for (ProcId p = 0; p < n; ++p) {
      const std::uint64_t input = inputs[p];
      rt.spawn(p, [&mv, &out, p, input] {
        out[static_cast<std::size_t>(p)] = mv.propose(input);
      });
    }
    ASSERT_EQ(rt.run(2'000'000'000ull).reason, RunResult::Reason::kAllDone);
    for (const auto d : out) EXPECT_EQ(d, out[0]);
    EXPECT_TRUE(out[0] == 100 || out[0] == 200 || out[0] == 300 ||
                out[0] == 400);
  }
}

TEST(MultiValueDeath, InputOutsideDomainAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimRuntime rt(1, std::make_unique<RoundRobinAdversary>(), 1);
        MultiValueConsensus mv(rt, 4, bprc_bits(1));
        rt.spawn(0, [&mv] { mv.propose(16); });  // 4-bit domain: max 15
        rt.run(100000);
      },
      "domain");
}

}  // namespace
}  // namespace bprc
