// Record/replay fidelity tests for the torture harness: a run recorded
// by RecordingAdversary and replayed through ScriptedAdversary (same
// seed) must yield a bit-identical ConsensusRunResult, and a shrunken
// schedule must still reproduce the original violation class.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/protocols.hpp"
#include "fault/repro.hpp"
#include "fault/shrink.hpp"

namespace bprc::fault {
namespace {

constexpr std::chrono::nanoseconds kNoDeadline{0};

/// Field-by-field equality: replay is only trustworthy if *everything*
/// matches, not just the decisions.
void expect_identical(const ConsensusRunResult& a,
                      const ConsensusRunResult& b) {
  EXPECT_EQ(a.all_decided, b.all_decided);
  EXPECT_EQ(a.consistent, b.consistent);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.bounded_ok, b.bounded_ok);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.decision_rounds, b.decision_rounds);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.max_proc_steps, b.max_proc_steps);
  EXPECT_EQ(a.max_round, b.max_round);
  EXPECT_EQ(a.footprint.bounded, b.footprint.bounded);
  EXPECT_EQ(a.footprint.max_round_stored, b.footprint.max_round_stored);
  EXPECT_EQ(a.footprint.max_counter, b.footprint.max_counter);
  EXPECT_EQ(a.footprint.coin_locations, b.footprint.coin_locations);
  EXPECT_EQ(a.footprint.static_bound, b.footprint.static_bound);
  EXPECT_EQ(a.reason, b.reason);
}

TortureRun make_run(const std::string& protocol, std::vector<int> inputs,
                    const std::string& adversary, std::uint64_t seed) {
  TortureRun run;
  run.protocol = protocol;
  run.inputs = std::move(inputs);
  run.adversary = adversary;
  run.seed = seed;
  run.max_steps = 2'000'000;
  return run;
}

TEST(Replay, BitIdenticalResultAcrossRealProtocols) {
  for (const std::string& protocol : protocol_names()) {
    for (const std::string& adversary :
         {std::string("random"), std::string("coin-bias")}) {
      const TortureRun run = make_run(protocol, {0, 1, 1}, adversary, 42);
      std::vector<ProcId> schedule;
      std::vector<CrashPlanAdversary::Crash> crashes;
      const ConsensusRunResult recorded =
          execute_run(run, kNoDeadline, &schedule, &crashes);
      ASSERT_TRUE(recorded.ok())
          << protocol << "/" << adversary << ": " << to_string(recorded.failure());
      ASSERT_FALSE(schedule.empty());

      const ConsensusRunResult replayed = replay_run(run, schedule, crashes);
      expect_identical(recorded, replayed);
    }
  }
}

TEST(Replay, RecordedCrashesReplayIdentically) {
  // crash-storm decides where to crash adaptively; the recording must
  // capture those crashes as fixed (step, victim) events that replay
  // them at exactly the same points.
  const TortureRun run = make_run("bprc", {1, 0, 1, 0, 1}, "crash-storm", 7);
  std::vector<ProcId> schedule;
  std::vector<CrashPlanAdversary::Crash> crashes;
  const ConsensusRunResult recorded =
      execute_run(run, kNoDeadline, &schedule, &crashes);
  ASSERT_TRUE(recorded.ok());

  const ConsensusRunResult replayed = replay_run(run, schedule, crashes);
  expect_identical(recorded, replayed);
}

TEST(Replay, PreplannedCrashesAreSubsumedByTheRecording)  {
  // A run with an explicit crash plan replays from (schedule, recorded
  // crashes) alone — replay_run must not re-apply run.crash_plan.
  TortureRun run = make_run("aspnes-herlihy", {0, 0, 1}, "random", 11);
  run.crash_plan = {{25, 1}};
  std::vector<ProcId> schedule;
  std::vector<CrashPlanAdversary::Crash> crashes;
  const ConsensusRunResult recorded =
      execute_run(run, kNoDeadline, &schedule, &crashes);
  ASSERT_TRUE(recorded.ok());
  ASSERT_FALSE(crashes.empty()) << "planned crash was not recorded";

  const ConsensusRunResult replayed = replay_run(run, schedule, crashes);
  expect_identical(recorded, replayed);
}

/// Finds a failing broken-racy run (the deliberately-broken test-hook
/// protocol races two writers, so a consistency split is easy to hit).
TortureFailure find_racy_failure() {
  CampaignConfig config;
  config.protocols = {"broken-racy"};
  config.ns = {2, 3};
  config.adversaries = {"round-robin", "random", "lockstep"};
  config.seeds_per_cell = 2;
  config.max_steps = 100'000;
  config.crash_plans = false;
  config.max_failures = 1;
  CampaignReport report = run_campaign(config);
  EXPECT_FALSE(report.failures.empty())
      << "campaign failed to catch the seeded bug";
  return report.failures.empty() ? TortureFailure{}
                                 : std::move(report.failures.front());
}

TEST(Shrink, MinimizedSchedulePreservesTheViolationClass) {
  const TortureFailure fail = find_racy_failure();
  ASSERT_NE(fail.failure, FailureClass::kNone);

  const ShrinkOutcome shrunk = shrink_failure(fail);
  ASSERT_TRUE(shrunk.reproduced);
  EXPECT_LE(shrunk.schedule.size(), shrunk.original_len);

  // The shrunken script must reproduce the *same failure class*, not
  // just any failure.
  const ConsensusRunResult replayed =
      replay_run(fail.run, shrunk.schedule, shrunk.crashes);
  EXPECT_EQ(replayed.failure(), fail.failure);
}

TEST(Shrink, ArtifactRoundTripStillReproduces) {
  // Catch -> shrink -> serialize -> parse -> replay: the full pipeline
  // the CLI exercises, in-process.
  const TortureFailure fail = find_racy_failure();
  ASSERT_NE(fail.failure, FailureClass::kNone);
  const ShrinkOutcome shrunk = shrink_failure(fail);
  ASSERT_TRUE(shrunk.reproduced);

  const Repro repro = make_repro(fail, shrunk.schedule, shrunk.crashes);
  const std::string text = serialize_repro(repro);
  std::string err;
  const auto parsed = parse_repro(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->run.protocol, fail.run.protocol);
  EXPECT_EQ(parsed->run.inputs, fail.run.inputs);
  EXPECT_EQ(parsed->run.seed, fail.run.seed);
  EXPECT_EQ(parsed->schedule, shrunk.schedule);
  EXPECT_EQ(parsed->failure, fail.failure);

  const ConsensusRunResult replayed = replay_repro(*parsed);
  EXPECT_EQ(replayed.failure(), fail.failure);
}

}  // namespace
}  // namespace bprc::fault
