// Record/replay fidelity tests for the torture harness: a run recorded
// by RecordingAdversary and replayed through ScriptedAdversary (same
// seed) must yield a bit-identical ConsensusRunResult, and a shrunken
// schedule must still reproduce the original violation class.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/protocols.hpp"
#include "fault/repro.hpp"
#include "fault/shrink.hpp"

namespace bprc::fault {
namespace {

constexpr std::chrono::nanoseconds kNoDeadline{0};

/// Field-by-field equality: replay is only trustworthy if *everything*
/// matches, not just the decisions.
void expect_identical(const ConsensusRunResult& a,
                      const ConsensusRunResult& b) {
  EXPECT_EQ(a.all_decided, b.all_decided);
  EXPECT_EQ(a.consistent, b.consistent);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.bounded_ok, b.bounded_ok);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.decision_rounds, b.decision_rounds);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.max_proc_steps, b.max_proc_steps);
  EXPECT_EQ(a.max_round, b.max_round);
  EXPECT_EQ(a.footprint.bounded, b.footprint.bounded);
  EXPECT_EQ(a.footprint.max_round_stored, b.footprint.max_round_stored);
  EXPECT_EQ(a.footprint.max_counter, b.footprint.max_counter);
  EXPECT_EQ(a.footprint.coin_locations, b.footprint.coin_locations);
  EXPECT_EQ(a.footprint.static_bound, b.footprint.static_bound);
  EXPECT_EQ(a.reason, b.reason);
}

TortureRun make_run(const std::string& protocol, std::vector<int> inputs,
                    const std::string& adversary, std::uint64_t seed) {
  TortureRun run;
  run.protocol = protocol;
  run.inputs = std::move(inputs);
  run.adversary = adversary;
  run.seed = seed;
  run.max_steps = 2'000'000;
  return run;
}

TEST(Replay, BitIdenticalResultAcrossRealProtocols) {
  for (const std::string& protocol : protocol_names()) {
    for (const std::string& adversary :
         {std::string("random"), std::string("coin-bias")}) {
      const TortureRun run = make_run(protocol, {0, 1, 1}, adversary, 42);
      std::vector<ProcId> schedule;
      std::vector<CrashPlanAdversary::Crash> crashes;
      const ConsensusRunResult recorded =
          execute_run(run, kNoDeadline, &schedule, &crashes);
      ASSERT_TRUE(recorded.ok())
          << protocol << "/" << adversary << ": " << to_string(recorded.failure());
      ASSERT_FALSE(schedule.empty());

      const ConsensusRunResult replayed = replay_run(run, schedule, crashes);
      expect_identical(recorded, replayed);
    }
  }
}

TEST(Replay, RecordedCrashesReplayIdentically) {
  // crash-storm decides where to crash adaptively; the recording must
  // capture those crashes as fixed (step, victim) events that replay
  // them at exactly the same points.
  const TortureRun run = make_run("bprc", {1, 0, 1, 0, 1}, "crash-storm", 7);
  std::vector<ProcId> schedule;
  std::vector<CrashPlanAdversary::Crash> crashes;
  const ConsensusRunResult recorded =
      execute_run(run, kNoDeadline, &schedule, &crashes);
  ASSERT_TRUE(recorded.ok());

  const ConsensusRunResult replayed = replay_run(run, schedule, crashes);
  expect_identical(recorded, replayed);
}

TEST(Replay, PreplannedCrashesAreSubsumedByTheRecording)  {
  // A run with an explicit crash plan replays from (schedule, recorded
  // crashes) alone — replay_run must not re-apply run.crash_plan.
  TortureRun run = make_run("aspnes-herlihy", {0, 0, 1}, "random", 11);
  run.crash_plan = {{25, 1}};
  std::vector<ProcId> schedule;
  std::vector<CrashPlanAdversary::Crash> crashes;
  const ConsensusRunResult recorded =
      execute_run(run, kNoDeadline, &schedule, &crashes);
  ASSERT_TRUE(recorded.ok());
  ASSERT_FALSE(crashes.empty()) << "planned crash was not recorded";

  const ConsensusRunResult replayed = replay_run(run, schedule, crashes);
  expect_identical(recorded, replayed);
}

TEST(Replay, SimReuseReplaysIdentically) {
  // One pooled simulator recycled across heterogeneous runs must produce
  // the same results as a fresh simulator per run — the campaign driver
  // and the shrinker both lean on this.
  SimReuse reuse;
  for (const TortureRun& run :
       {make_run("bprc", {0, 1, 1}, "random", 42),
        make_run("bprc", {1, 0, 1, 0, 1}, "crash-storm", 7),
        make_run("aspnes-herlihy", {0, 0, 1}, "coin-bias", 3)}) {
    std::vector<ProcId> schedule;
    std::vector<CrashPlanAdversary::Crash> crashes;
    const ConsensusRunResult fresh =
        execute_run(run, kNoDeadline, &schedule, &crashes);
    std::vector<ProcId> schedule2;
    std::vector<CrashPlanAdversary::Crash> crashes2;
    const ConsensusRunResult pooled =
        execute_run(run, kNoDeadline, &schedule2, &crashes2, &reuse);
    expect_identical(fresh, pooled);
    EXPECT_EQ(schedule, schedule2);
    ASSERT_EQ(crashes.size(), crashes2.size());
    const ConsensusRunResult replayed =
        replay_run(run, schedule, crashes, &reuse);
    expect_identical(fresh, replayed);
  }
}

/// FNV-1a over the recorded pick sequence and crash events; the exact
/// digest the performance work was validated against.
std::uint64_t schedule_hash(const std::vector<ProcId>& schedule,
                            const std::vector<CrashPlanAdversary::Crash>& crashes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const ProcId p : schedule) {
    h ^= static_cast<std::uint64_t>(p);
    h *= 0x100000001B3ULL;
  }
  for (const auto& c : crashes) {
    h ^= c.at_step * 31 + static_cast<std::uint64_t>(c.victim);
    h *= 0x100000001B3ULL;
  }
  return h;
}

TEST(Replay, GoldenScheduleHashesArePinned) {
  // Cross-version determinism: the full recorded schedule of a fixed
  // (protocol, inputs, seed) cell under every standard adversary, pinned
  // as a digest. Any change to adversary draw order, checkpoint gating,
  // rng derivation, or scheduling semantics shows up here as a hash
  // mismatch — scheduler optimizations must NOT move these values.
  struct Golden {
    const char* adversary;
    std::size_t len;
    std::size_t crash_count;
    std::uint64_t hash;
  };
  const Golden goldens[] = {
      {"random", 4964, 0, 0x731f0c5d39bb92e2ULL},
      {"coin-bias", 5110, 0, 0xd7434f9318edb05aULL},
      {"crash-storm", 17925, 4, 0x6bff30d521c19d61ULL},
      {"split-brain", 4948, 0, 0x4e5850c9b2a82258ULL},
      {"lockstep", 2420, 0, 0x698caa121a93e73dULL},
      {"leader-suppress", 4872, 0, 0x0ed92d7d8fbaa4d4ULL},
  };
  for (const Golden& g : goldens) {
    const TortureRun run =
        make_run("bprc", {0, 1, 1, 0, 1}, g.adversary, 424242);
    std::vector<ProcId> schedule;
    std::vector<CrashPlanAdversary::Crash> crashes;
    const ConsensusRunResult result =
        execute_run(run, kNoDeadline, &schedule, &crashes);
    EXPECT_TRUE(result.ok()) << g.adversary;
    EXPECT_EQ(schedule.size(), g.len) << g.adversary;
    EXPECT_EQ(crashes.size(), g.crash_count) << g.adversary;
    EXPECT_EQ(schedule_hash(schedule, crashes), g.hash) << g.adversary;
  }
}

TEST(Replay, SavedArtifactsReplayToTheSameFailureClass) {
  // Committed .bprc-repro files recorded by the *pre-optimization*
  // simulator must keep replaying to their recorded failure class on the
  // current one: on-disk artifacts outlive scheduler internals.
  const std::string dir = BPRC_TEST_DATA_DIR;
  const char* fixtures[] = {
      "broken-racy-round-robin-n2-0.bprc-repro",
      "broken-racy-crash-storm-n3-0.bprc-repro",
      "broken-racy-crash-storm-n3-1.bprc-repro",
      "broken-racy-crash-n3.bprc-repro",
  };
  for (const char* name : fixtures) {
    std::string err;
    const auto repro = load_repro(dir + "/" + name, &err);
    ASSERT_TRUE(repro.has_value()) << name << ": " << err;
    ASSERT_NE(repro->failure, FailureClass::kNone) << name;
    const ConsensusRunResult replayed = replay_repro(*repro);
    EXPECT_EQ(replayed.failure(), repro->failure) << name;
  }
}

/// Finds a failing broken-racy run (the deliberately-broken test-hook
/// protocol races two writers, so a consistency split is easy to hit).
TortureFailure find_racy_failure() {
  CampaignConfig config;
  config.protocols = {"broken-racy"};
  config.ns = {2, 3};
  config.adversaries = {"round-robin", "random", "lockstep"};
  config.seeds_per_cell = 2;
  config.max_steps = 100'000;
  config.crash_plans = false;
  config.max_failures = 1;
  CampaignReport report = run_campaign(config);
  EXPECT_FALSE(report.failures.empty())
      << "campaign failed to catch the seeded bug";
  return report.failures.empty() ? TortureFailure{}
                                 : std::move(report.failures.front());
}

TEST(Shrink, MinimizedSchedulePreservesTheViolationClass) {
  const TortureFailure fail = find_racy_failure();
  ASSERT_NE(fail.failure, FailureClass::kNone);

  const ShrinkOutcome shrunk = shrink_failure(fail);
  ASSERT_TRUE(shrunk.reproduced);
  EXPECT_LE(shrunk.schedule.size(), shrunk.original_len);

  // The shrunken script must reproduce the *same failure class*, not
  // just any failure.
  const ConsensusRunResult replayed =
      replay_run(fail.run, shrunk.schedule, shrunk.crashes);
  EXPECT_EQ(replayed.failure(), fail.failure);
}

TEST(Shrink, ArtifactRoundTripStillReproduces) {
  // Catch -> shrink -> serialize -> parse -> replay: the full pipeline
  // the CLI exercises, in-process.
  const TortureFailure fail = find_racy_failure();
  ASSERT_NE(fail.failure, FailureClass::kNone);
  const ShrinkOutcome shrunk = shrink_failure(fail);
  ASSERT_TRUE(shrunk.reproduced);

  const Repro repro = make_repro(fail, shrunk.schedule, shrunk.crashes);
  const std::string text = serialize_repro(repro);
  std::string err;
  const auto parsed = parse_repro(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->run.protocol, fail.run.protocol);
  EXPECT_EQ(parsed->run.inputs, fail.run.inputs);
  EXPECT_EQ(parsed->run.seed, fail.run.seed);
  EXPECT_EQ(parsed->schedule, shrunk.schedule);
  EXPECT_EQ(parsed->failure, fail.failure);

  const ConsensusRunResult replayed = replay_repro(*parsed);
  EXPECT_EQ(replayed.failure(), fail.failure);
}


TEST(Repro, ReplayOfOverwideProcessCountFailsWithDiagnostic) {
  // The replay path validates every recorded pick against the simulator's
  // 64-bit runnable digest; an artifact recorded at n>64 (e.g. from a
  // future wide build) must be refused with a clear diagnostic instead of
  // replaying outside that envelope -- or worse, silently truncating.
  std::string text = "bprc-repro v1\nprotocol bprc\nadversary random\ninputs";
  for (int i = 0; i < 65; ++i) text += (i % 2) ? " 1" : " 0";
  text += "\nseed 3\nmax-steps 100\nschedule 0 1\nend\n";
  std::string err;
  EXPECT_FALSE(parse_repro(text, &err).has_value());
  EXPECT_NE(err.find("n=65"), std::string::npos) << err;
  EXPECT_NE(err.find("runnable-bitmask width"), std::string::npos) << err;
  EXPECT_NE(err.find("64"), std::string::npos) << err;
}

TEST(Repro, ExactlyBitmaskWidthProcessesStillParses) {
  // n == 64 is the last in-envelope width; the guard must not be
  // off-by-one.
  std::string text = "bprc-repro v1\nprotocol bprc\nadversary random\ninputs";
  for (int i = 0; i < 64; ++i) text += (i % 2) ? " 1" : " 0";
  text += "\nseed 3\nmax-steps 100\nschedule 0 63\nend\n";
  std::string err;
  EXPECT_TRUE(parse_repro(text, &err).has_value()) << err;
}

// ---- malformed-artifact fixtures ------------------------------------------
//
// Every fixture below is a corruption a real artifact can suffer (torn
// write, hand-edit typo, version skew). Each must be *rejected with a
// diagnostic*, never replayed as a different run than the one recorded.

namespace {
// A well-formed artifact the corruption fixtures mutate.
const char kGoodRepro[] =
    "bprc-repro v1\n"
    "protocol broken-racy\n"
    "inputs 0 1\n"
    "adversary round-robin\n"
    "seed 7\n"
    "max-steps 100\n"
    "failure consistency\n"
    "crash 5 1\n"
    "schedule 0 1 0 1\n"
    "end\n";

std::string expect_rejected(const std::string& text) {
  std::string err;
  EXPECT_FALSE(parse_repro(text, &err).has_value()) << text;
  EXPECT_FALSE(err.empty()) << "rejection must carry a diagnostic";
  return err;
}
}  // namespace

TEST(Repro, BaselineFixtureParses) {
  std::string err;
  ASSERT_TRUE(parse_repro(kGoodRepro, &err).has_value()) << err;
}

TEST(Repro, TruncatedFileIsRejected) {
  // A torn write drops the trailing `end` guard (possibly mid-line): the
  // parser must treat the file as incomplete, not replay the prefix.
  std::string text(kGoodRepro);
  text.resize(text.size() - 4);  // drop "end\n"
  std::string err = expect_rejected(text);
  EXPECT_NE(err.find("missing 'end'"), std::string::npos) << err;
  // Mid-line EOF inside the schedule line.
  err = expect_rejected(text.substr(0, text.find("schedule 0 1") + 10));
  EXPECT_NE(err.find("missing 'end'"), std::string::npos) << err;
}

TEST(Repro, DuplicateSectionsAreRejected) {
  for (const char* line :
       {"protocol bprc\n", "inputs 1 0\n", "adversary random\n", "seed 9\n",
        "max-steps 50\n", "schedule 1 0\n", "mode generative\n"}) {
    // Insert the duplicate right before `end`; `mode` duplicates against
    // an inserted first copy instead (the baseline has none).
    std::string text(kGoodRepro);
    const std::string dup =
        (std::string(line).rfind("mode ", 0) == 0 ? std::string(line) : "") +
        line;
    text.insert(text.find("end\n"), dup);
    const std::string err = expect_rejected(text);
    EXPECT_NE(err.find("duplicate"), std::string::npos)
        << "line=" << line << " err=" << err;
  }
}

TEST(Repro, TrailingGarbageOnNumericLinesIsRejected) {
  // operator>> stopping early must not silently drop the tail — a
  // half-read schedule replays a different run.
  struct Case {
    const char* from;
    const char* to;
    const char* diag;
  };
  const Case cases[] = {
      {"seed 7\n", "seed 7 oops\n", "malformed seed"},
      {"seed 7\n", "seed banana\n", "malformed seed"},
      {"max-steps 100\n", "max-steps 1e6\n", "malformed max-steps"},
      {"inputs 0 1\n", "inputs 0 one\n", "malformed inputs"},
      {"crash 5 1\n", "crash 5\n", "malformed crash"},
      {"crash 5 1\n", "crash 5 1 9\n", "malformed crash"},
      {"schedule 0 1 0 1\n", "schedule 0 1 x 1\n", "malformed schedule"},
  };
  for (const Case& c : cases) {
    std::string text(kGoodRepro);
    const std::size_t at = text.find(c.from);
    ASSERT_NE(at, std::string::npos) << c.from;
    text.replace(at, std::string(c.from).size(), c.to);
    const std::string err = expect_rejected(text);
    EXPECT_NE(err.find(c.diag), std::string::npos)
        << "fixture=" << c.to << " err=" << err;
  }
}

TEST(Repro, OutOfRangeEntriesAreRejected) {
  // Schedule picks and crash victims beyond n (here n=2).
  std::string text(kGoodRepro);
  text.replace(text.find("schedule 0 1 0 1\n"), 17, "schedule 0 1 2 1\n");
  std::string err = expect_rejected(text);
  EXPECT_NE(err.find("schedule entry out of range"), std::string::npos) << err;

  text = kGoodRepro;
  text.replace(text.find("crash 5 1\n"), 10, "crash 5 2\n");
  err = expect_rejected(text);
  EXPECT_NE(err.find("crash victim out of range"), std::string::npos) << err;
}

TEST(Repro, OutOfRangeFlipBitsAreRejected) {
  std::string text(kGoodRepro);
  text.insert(text.find("schedule"), "flips 0 1 2\n");
  const std::string err = expect_rejected(text);
  EXPECT_NE(err.find("bits only"), std::string::npos) << err;
}

TEST(Repro, UnknownModeAndVersionAreRejected) {
  std::string text(kGoodRepro);
  text.insert(text.find("crash"), "mode interpretive-dance\n");
  std::string err = expect_rejected(text);
  EXPECT_NE(err.find("unknown replay mode"), std::string::npos) << err;

  text = kGoodRepro;
  text.replace(0, 12, "bprc-repro v9");
  err = expect_rejected(text);
  EXPECT_NE(err.find("unsupported"), std::string::npos) << err;
}

// ---- weak register semantics ----------------------------------------------
//
// The weak-register lane (docs/REGISTER_SEMANTICS.md): campaigns under
// regular/safe semantics record every adversary stale-read choice, and
// replay re-forces them — determinism must hold with the same fidelity as
// schedules and crashes.

/// Finds a failing broken-needs-atomic run under regular semantics — the
/// seeded new-old-inversion bug that only exists over weakened registers.
TortureFailure find_weakreg_failure() {
  CampaignConfig config;
  config.protocols = {"broken-needs-atomic"};
  config.ns = {2, 3};
  config.adversaries = {"random"};
  config.seeds_per_cell = 8;
  config.max_steps = 100'000;
  config.crash_plans = false;
  config.semantics = {RegisterSemantics::kRegular};
  config.max_failures = 1;
  CampaignReport report = run_campaign(config);
  EXPECT_FALSE(report.failures.empty())
      << "campaign failed to catch the weak-register bug";
  return report.failures.empty() ? TortureFailure{}
                                 : std::move(report.failures.front());
}

TEST(WeakReplay, NeedsAtomicIsCaughtOnlyUnderWeakenedSemantics) {
  // Identical matrix, semantics axis flipped: atomic must stay clean,
  // regular must catch the seeded bug.
  CampaignConfig config;
  config.protocols = {"broken-needs-atomic"};
  config.ns = {2, 3};
  config.adversaries = {"random"};
  config.seeds_per_cell = 8;
  config.max_steps = 100'000;
  config.crash_plans = false;
  config.max_failures = 4;
  const CampaignReport atomic_report = run_campaign(config);
  EXPECT_TRUE(atomic_report.failures.empty())
      << "broken-needs-atomic must be correct over atomic registers";
  config.semantics = {RegisterSemantics::kRegular};
  const CampaignReport weak_report = run_campaign(config);
  EXPECT_FALSE(weak_report.failures.empty())
      << "broken-needs-atomic must be caught over regular registers";
}

TEST(WeakReplay, RecordedStaleChoicesReplayIdentically) {
  const TortureFailure fail = find_weakreg_failure();
  ASSERT_NE(fail.failure, FailureClass::kNone);
  ASSERT_FALSE(fail.stales.empty())
      << "a weak-register violation must have consumed a stale choice";

  const ConsensusRunResult replayed = replay_run(
      fail.run, fail.schedule, fail.crashes, nullptr, nullptr, fail.stales);
  expect_identical(fail.result, replayed);

  // Dropping the stale script degrades every choice to the atomic answer,
  // under which the protocol is correct: the violation must vanish.
  const ConsensusRunResult atomic_replay =
      replay_run(fail.run, fail.schedule, fail.crashes);
  EXPECT_NE(atomic_replay.failure(), fail.failure);
}

TEST(WeakReplay, ShrunkArtifactRoundTripsByteIdentically) {
  // Catch -> shrink -> serialize -> parse -> re-serialize -> replay: the
  // re-serialization must be byte-identical (the artifact format is the
  // determinism contract) and the parsed artifact must still reproduce.
  const TortureFailure fail = find_weakreg_failure();
  ASSERT_NE(fail.failure, FailureClass::kNone);
  const ShrinkOutcome shrunk = shrink_failure(fail);
  ASSERT_TRUE(shrunk.reproduced);

  const Repro repro = make_repro(fail, shrunk.schedule, shrunk.crashes);
  EXPECT_EQ(repro.run.semantics, RegisterSemantics::kRegular);
  const std::string text = serialize_repro(repro);
  EXPECT_NE(text.find("semantics regular\n"), std::string::npos);
  EXPECT_NE(text.find("stale-reads"), std::string::npos);

  std::string err;
  const auto parsed = parse_repro(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->run.semantics, RegisterSemantics::kRegular);
  EXPECT_EQ(parsed->stales, repro.stales);
  EXPECT_EQ(serialize_repro(*parsed), text);

  const ConsensusRunResult replayed = replay_repro(*parsed);
  EXPECT_EQ(replayed.failure(), fail.failure);
}

TEST(WeakReplay, SummaryDigestIsJobsInvariantUnderWeakenedSemantics) {
  // The independence witness extends to the weak-register axis: the full
  // smoke-sized registry sweep folds to the same digest at every jobs
  // level, per semantics.
  for (const RegisterSemantics sem :
       {RegisterSemantics::kRegular, RegisterSemantics::kSafe}) {
    CampaignConfig config;
    config.ns = {2, 3};
    config.seeds_per_cell = 1;
    config.max_steps = 2'000'000;
    config.semantics = {sem};
    config.jobs = 1;
    const CampaignReport serial = run_campaign(config);
    config.jobs = 4;
    const CampaignReport parallel = run_campaign(config);
    EXPECT_EQ(serial.summary_digest, parallel.summary_digest)
        << to_string(sem);
    EXPECT_EQ(serial.runs, parallel.runs) << to_string(sem);
    EXPECT_EQ(serial.failures.size(), parallel.failures.size())
        << to_string(sem);
  }
}

TEST(Repro, UnrecognizedSemanticsValueIsRejectedWithDiagnostic) {
  // A semantics name this build does not know must be refused, never
  // guessed at: replaying under the wrong register model would report a
  // verdict for a different run than the one recorded.
  std::string text(kGoodRepro);
  text.insert(text.find("failure"), "semantics acquire-release\n");
  const std::string err = expect_rejected(text);
  EXPECT_NE(err.find("unrecognized register semantics 'acquire-release'"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("atomic, regular, safe"), std::string::npos) << err;
}

TEST(Repro, MalformedWeakRegisterLinesAreRejected) {
  struct Case {
    const char* insert;  ///< line(s) inserted before `failure`
    const char* diag;
  };
  const Case cases[] = {
      {"semantics regular extra\n", "malformed semantics line"},
      {"semantics regular\nsemantics safe\n", "duplicate semantics"},
      {"semantics regular\nstale-reads 0 -1\n", "choices are >= 0"},
      {"semantics regular\nstale-reads 0 x\n", "malformed stale-reads line"},
      {"semantics regular\nstale-reads 1 0\nstale-reads 1\n",
       "duplicate stale-reads"},
      // Choices without a semantics line: the artifact lost its register
      // model; replaying it atomically would not be the recorded run.
      {"stale-reads 1 0\n", "stale-reads present but semantics is atomic"},
  };
  for (const Case& c : cases) {
    std::string text(kGoodRepro);
    text.insert(text.find("failure"), c.insert);
    const std::string err = expect_rejected(text);
    EXPECT_NE(err.find(c.diag), std::string::npos)
        << "fixture=" << c.insert << " err=" << err;
  }
}

TEST(Repro, AtomicArtifactsCarryNoWeakRegisterLines) {
  // Byte-stability of historical artifacts: under atomic semantics the
  // serializer must omit both weak-register lines entirely.
  TortureFailure fail;
  fail.run.protocol = "broken-racy";
  fail.run.inputs = {0, 1};
  fail.run.adversary = "round-robin";
  fail.run.seed = 7;
  fail.run.max_steps = 100;
  fail.failure = FailureClass::kConsistency;
  fail.schedule = {0, 1, 0, 1};
  const Repro repro = make_repro(fail, fail.schedule, fail.crashes);
  const std::string text = serialize_repro(repro);
  EXPECT_EQ(text.find("semantics"), std::string::npos);
  EXPECT_EQ(text.find("stale-reads"), std::string::npos);
}

// ---- space budgets --------------------------------------------------------
//
// The space lane (docs/SPACE_BUDGETS.md): a non-default SpaceBudget is
// part of the run's identity — the artifact must carry it, replay must
// rebuild the protocol at it, and the default budget must keep writing
// nothing so historical artifacts keep their bytes.

/// Finds a kBoundedMemory failure by running the *faithful* protocol at a
/// deliberately short budget through the campaign's space axis — the full
/// tentpole path: matrix -> demand latch -> failure record.
TortureFailure find_space_failure() {
  SpaceBudget tight;
  tight.cycle_mult = 2;  // 2K-cell cycle: |diff| = K aliases with −K
  CampaignConfig config;
  config.protocols = {"bprc"};
  config.ns = {2, 3};
  config.adversaries = {"random"};
  config.seeds_per_cell = 8;
  config.max_steps = 2'000'000;
  config.crash_plans = false;
  config.spaces = {tight};
  config.max_failures = 1;
  CampaignReport report = run_campaign(config);
  EXPECT_FALSE(report.failures.empty())
      << "campaign failed to catch the under-provisioned budget";
  return report.failures.empty() ? TortureFailure{}
                                 : std::move(report.failures.front());
}

TEST(SpaceReplay, UnderProvisionedBudgetIsCaughtAsBoundedMemory) {
  const TortureFailure fail = find_space_failure();
  ASSERT_EQ(fail.failure, FailureClass::kBoundedMemory);
  EXPECT_FALSE(fail.run.space.is_default());

  // Scripted replay of the recorded run reproduces the violation...
  const ConsensusRunResult replayed =
      replay_run(fail.run, fail.schedule, fail.crashes);
  EXPECT_EQ(replayed.failure(), FailureClass::kBoundedMemory);

  // ...and the budget is load-bearing: the same script at the paper's
  // budget must be clean, or the finding wasn't about space at all.
  TortureRun healed = fail.run;
  healed.space = SpaceBudget{};
  const ConsensusRunResult at_paper =
      replay_run(healed, fail.schedule, fail.crashes);
  EXPECT_NE(at_paper.failure(), FailureClass::kBoundedMemory);
}

TEST(SpaceReplay, ShrunkSpaceArtifactRoundTripsByteIdentically) {
  // Catch -> ddmin -> serialize -> parse -> re-serialize -> replay, along
  // the space axis: the artifact must carry the budget line and keep
  // reproducing kBoundedMemory after the round trip.
  const TortureFailure fail = find_space_failure();
  ASSERT_EQ(fail.failure, FailureClass::kBoundedMemory);
  const ShrinkOutcome shrunk = shrink_failure(fail);
  ASSERT_TRUE(shrunk.reproduced);
  EXPECT_LE(shrunk.schedule.size(), shrunk.original_len);

  const Repro repro = make_repro(fail, shrunk.schedule, shrunk.crashes);
  const std::string text = serialize_repro(repro);
  EXPECT_NE(text.find("space " + fail.run.space.to_string() + "\n"),
            std::string::npos);

  std::string err;
  const auto parsed = parse_repro(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->run.space, fail.run.space);
  EXPECT_EQ(serialize_repro(*parsed), text);

  const ConsensusRunResult replayed = replay_repro(*parsed);
  EXPECT_EQ(replayed.failure(), FailureClass::kBoundedMemory);
}

TEST(Repro, DefaultBudgetWritesNoSpaceLine) {
  // Byte-stability of historical artifacts: at the paper's budget the
  // serializer must omit the space line entirely.
  TortureFailure fail;
  fail.run.protocol = "broken-racy";
  fail.run.inputs = {0, 1};
  fail.run.adversary = "round-robin";
  fail.run.seed = 7;
  fail.run.max_steps = 100;
  fail.failure = FailureClass::kConsistency;
  fail.schedule = {0, 1, 0, 1};
  const Repro repro = make_repro(fail, fail.schedule, fail.crashes);
  EXPECT_EQ(serialize_repro(repro).find("space"), std::string::npos);
}

TEST(Repro, SpaceLineRoundTripsOnHandWrittenArtifact) {
  std::string text(kGoodRepro);
  text.insert(text.find("failure"), "space K=3 cycle=4 slots=4 b=8 mscale=2\n");
  std::string err;
  const auto parsed = parse_repro(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->run.space.K, 3);
  EXPECT_EQ(parsed->run.space.cycle_mult, 4);
  EXPECT_EQ(parsed->run.space.slots, 4);
  EXPECT_EQ(parsed->run.space.b, 8);
  EXPECT_EQ(parsed->run.space.m_scale, 2);
  EXPECT_EQ(serialize_repro(*parsed), text);
}

TEST(Repro, MalformedSpaceLinesAreRejected) {
  // Reject, never guess: a malformed budget silently replaced by the
  // default would replay a different protocol layout.
  struct Case {
    const char* insert;
    const char* diag;
  };
  const Case cases[] = {
      {"space K=3\nspace K=4\n", "duplicate space"},
      {"space banana\n", "malformed space line"},
      {"space K=\n", "malformed space line"},
      {"space K=1\n", "malformed space line"},       // fails validate()
      {"space K=3 K=4\n", "malformed space line"},   // duplicate key
      {"space flavor=3\n", "malformed space line"},  // unknown key
  };
  for (const Case& c : cases) {
    std::string text(kGoodRepro);
    text.insert(text.find("failure"), c.insert);
    const std::string err = expect_rejected(text);
    EXPECT_NE(err.find(c.diag), std::string::npos)
        << "fixture=" << c.insert << " err=" << err;
  }
}

TEST(Repro, SavedArtifactsReserializeByteIdentically) {
  // The committed fixtures predate the space lane (and the weak-register
  // lane before it): parsing and re-serializing them must reproduce their
  // bytes exactly, proving the new optional lines cost old artifacts
  // nothing.
  const std::string dir = BPRC_TEST_DATA_DIR;
  const char* fixtures[] = {
      "broken-racy-round-robin-n2-0.bprc-repro",
      "broken-racy-crash-storm-n3-0.bprc-repro",
      "broken-racy-crash-storm-n3-1.bprc-repro",
      "broken-racy-crash-n3.bprc-repro",
  };
  for (const char* name : fixtures) {
    std::ifstream in(dir + "/" + name, std::ios::binary);
    ASSERT_TRUE(in.good()) << name;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string original = buf.str();
    std::string err;
    const auto repro = parse_repro(original, &err);
    ASSERT_TRUE(repro.has_value()) << name << ": " << err;
    EXPECT_TRUE(repro->run.space.is_default()) << name;
    EXPECT_EQ(serialize_repro(*repro), original) << name;
  }
}

TEST(Repro, GenerativeModeRoundTrips) {
  // kWorkerCrash artifacts have no recorded schedule — `mode generative`
  // flags that replay re-executes (adversary, seed) from scratch. The
  // flag must survive a serialize/parse round trip, or a worker-crash
  // artifact would silently replay as a zero-step scripted run.
  TortureFailure fail;
  fail.run.protocol = "broken-segv";
  fail.run.inputs = {0, 1};
  fail.run.adversary = "random";
  fail.run.seed = 8;
  fail.run.max_steps = 1000;
  fail.failure = FailureClass::kWorkerCrash;
  const Repro repro = make_repro(fail, fail.schedule, fail.crashes);
  ASSERT_TRUE(repro.generative);
  EXPECT_NE(serialize_repro(repro).find("mode generative\n"),
            std::string::npos);
  std::string err;
  const auto parsed = parse_repro(serialize_repro(repro), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_TRUE(parsed->generative);
  EXPECT_EQ(parsed->failure, FailureClass::kWorkerCrash);
  EXPECT_EQ(parsed->run.seed, 8u);
  EXPECT_TRUE(parsed->schedule.empty());
}

}  // namespace
}  // namespace bprc::fault
