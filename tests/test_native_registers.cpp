// End-to-end tests of the native-atomics lane: real threads, real
// std::atomic registers, recorded executions graded by the weak-memory
// checker (and, for consensus, by the standard oracle).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "fault/native.hpp"
#include "verify/weakmem/recorder.hpp"
#include "verify/weakmem/sc_checker.hpp"

namespace bprc {
namespace {

NativeRunOptions small_opts() {
  NativeRunOptions opts;
  opts.nprocs = 4;
  opts.seed = 11;
  opts.iters = 40;
  opts.yield_prob = 0.1;  // coax the kernel into interleavings
  return opts;
}

TEST(NativeRegisters, CaseTableHasBrokenEntriesLast) {
  const auto& cases = native_cases();
  ASSERT_FALSE(cases.empty());
  bool seen_broken = false;
  for (const auto& spec : cases) {
    if (spec.broken) seen_broken = true;
    else EXPECT_FALSE(seen_broken) << "broken cases must come last";
  }
  EXPECT_NE(find_native_case("broken-relaxed"), nullptr);
  EXPECT_EQ(find_native_case("no-such-case"), nullptr);
}

TEST(NativeRegisters, FaithfulCasesPassTheChecker) {
  for (const auto& spec : native_cases()) {
    if (spec.broken) continue;
    const NativeOutcome out = run_native_case(spec.name, small_opts());
    EXPECT_EQ(out.run.reason, RunResult::Reason::kAllDone) << spec.name;
    ASSERT_TRUE(out.checked) << spec.name;
    EXPECT_TRUE(out.sc.ok()) << spec.name << ": " << out.sc.witness;
    EXPECT_GT(out.actions, 0u) << spec.name;
    EXPECT_TRUE(out.ok()) << spec.name;
  }
}

TEST(NativeRegisters, ConsensusCaseIsGradedByTheOracle) {
  const NativeOutcome out = run_native_case("consensus", small_opts());
  ASSERT_TRUE(out.graded_consensus);
  EXPECT_TRUE(out.consensus.ok());
  EXPECT_TRUE(out.consensus.all_decided);
  EXPECT_TRUE(out.consensus.consistent);
  EXPECT_TRUE(out.consensus.valid);
  ASSERT_TRUE(out.checked);
  EXPECT_TRUE(out.sc.ok()) << out.sc.witness;
}

TEST(NativeRegisters, BrokenRelaxedIsFlaggedWithReplayableArtifact) {
  NativeRunOptions opts = small_opts();
  opts.nprocs = 2;
  const std::string path =
      testing::TempDir() + "broken_relaxed.bprc-weakmem";
  opts.artifact_path = path;
  const NativeOutcome out = run_native_case("broken-relaxed", opts);
  EXPECT_EQ(out.run.reason, RunResult::Reason::kAllDone);
  ASSERT_TRUE(out.checked);
  EXPECT_TRUE(out.sc.well_formed) << out.sc.witness;
  EXPECT_FALSE(out.sc.sc) << "the SB litmus must be flagged non-SC";
  EXPECT_NE(out.sc.witness.find("cycle"), std::string::npos)
      << out.sc.witness;
  EXPECT_FALSE(out.ok());

  // The artifact replays to the same verdict.
  ASSERT_EQ(out.artifact, path);
  ASSERT_TRUE(weakmem::is_weakmem_artifact(path));
  const auto loaded = weakmem::load_recording(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->case_name, "broken-relaxed");
  const weakmem::SCResult replayed = weakmem::check_sc(*loaded);
  EXPECT_TRUE(replayed.well_formed);
  EXPECT_FALSE(replayed.sc);
  EXPECT_EQ(replayed.witness, out.sc.witness);
  std::remove(path.c_str());
}

TEST(NativeRegisters, CheckerOffIsTheZeroCostPath) {
  NativeRunOptions opts = small_opts();
  opts.check_sc = false;
  const NativeOutcome out = run_native_case("counter-walk", opts);
  EXPECT_EQ(out.run.reason, RunResult::Reason::kAllDone);
  EXPECT_FALSE(out.checked);
  EXPECT_EQ(out.actions, 0u);
  EXPECT_TRUE(out.ok());
}

TEST(NativeRegisters, RecordedRunsAreWellFormedAtLargerScale) {
  // More contention, more actions: the version bookkeeping must stay
  // exact under real preemption.
  NativeRunOptions opts = small_opts();
  opts.iters = 150;
  opts.seed = 99;
  const NativeOutcome out = run_native_case("scan-storm", opts);
  ASSERT_TRUE(out.checked);
  EXPECT_TRUE(out.sc.ok()) << out.sc.witness;
  EXPECT_GT(out.actions, 1000u);
}

}  // namespace
}  // namespace bprc
