// Tests for the explorer's deep-scale layers (src/explore/): engine-
// batched leaf grading (digest byte-equality across jobs levels), the
// compact seen-state cache (layout parity, budgeted eviction), frontier
// checkpoint/resume (resumed digest == uninterrupted digest), frontier
// splitting, and fork-isolated grading of process-killing protocols.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "explore/consensus_explore.hpp"
#include "explore/explorer.hpp"
#include "explore/frontier.hpp"
#include "explore/seen_cache.hpp"
#include "fault/repro.hpp"

namespace bprc::explore {
namespace {

ExploreLimits cell_limits(std::uint64_t depth, std::uint64_t coins = 2) {
  ExploreLimits limits;
  limits.branch_depth = depth;
  limits.max_coin_flips = coins;
  limits.max_run_steps = 200'000;
  limits.max_violations = 64;
  return limits;
}

ConsensusExploreReport run_cell(const std::string& protocol,
                                std::vector<int> inputs,
                                const ExploreLimits& limits,
                                const FrontierOptions* frontier = nullptr,
                                std::uint64_t seed = 1) {
  ConsensusExploreConfig config;
  config.protocol = protocol;
  config.inputs = std::move(inputs);
  config.seed = seed;
  config.limits = limits;
  return explore_consensus(config, frontier);
}

// ---------------------------------------------------------------------------
// Batched grading: byte-identical digests at every jobs level
// ---------------------------------------------------------------------------

TEST(DeepScale, DigestIsInvariantAcrossJobsAndCacheLayout) {
  // The full cross-matrix the deep-scale contract promises: serial vs
  // batched grading × map vs compact cache, all four byte-identical.
  const ExploreLimits base = cell_limits(12);
  ConsensusExploreReport reference;
  bool first = true;
  for (const unsigned jobs : {1u, 4u}) {
    for (const bool compact : {false, true}) {
      ExploreLimits limits = base;
      limits.grade_jobs = jobs;
      limits.compact_cache = compact;
      const ConsensusExploreReport report =
          run_cell("bprc", {0, 1, 1}, limits);
      ASSERT_TRUE(report.ok());
      ASSERT_TRUE(report.stats.complete);
      if (first) {
        reference = report;
        first = false;
        continue;
      }
      EXPECT_EQ(report.stats.schedule_digest,
                reference.stats.schedule_digest)
          << "jobs=" << jobs << " compact=" << compact;
      EXPECT_EQ(report.stats.executions, reference.stats.executions);
      EXPECT_EQ(report.stats.states_visited, reference.stats.states_visited);
      EXPECT_EQ(report.stats.states_merged, reference.stats.states_merged);
    }
  }
}

TEST(DeepScale, BatchedGradingFindsTheSameViolationsInOrder) {
  // broken-racy at n=2: the batched pipeline must report the identical
  // violation sequence (count, schedules, flips) the serial DFS finds —
  // generation-order delivery is what makes the digest contract hold.
  ExploreLimits serial = cell_limits(8, 3);
  ExploreLimits batched = serial;
  batched.grade_jobs = 4;
  const ConsensusExploreReport a = run_cell("broken-racy", {0, 1}, serial);
  const ConsensusExploreReport b = run_cell("broken-racy", {0, 1}, batched);
  ASSERT_GT(a.violations.size(), 0u);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.stats.schedule_digest, b.stats.schedule_digest);
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].schedule, b.violations[i].schedule) << i;
    EXPECT_EQ(a.violations[i].flips, b.violations[i].flips) << i;
    EXPECT_EQ(a.violations[i].failure, b.violations[i].failure) << i;
  }
}

TEST(DeepScale, EarlyStopPicksTheSameFirstViolation) {
  // max_violations=1 stops the sweep at the first finding; with batched
  // grading the pipeline may have speculated past it, but the *reported*
  // first violation must still be the serial DFS's first violation.
  ExploreLimits serial = cell_limits(8, 3);
  serial.max_violations = 1;
  ExploreLimits batched = serial;
  batched.grade_jobs = 4;
  const ConsensusExploreReport a = run_cell("broken-racy", {0, 1}, serial);
  const ConsensusExploreReport b = run_cell("broken-racy", {0, 1}, batched);
  ASSERT_EQ(a.violations.size(), 1u);
  ASSERT_EQ(b.violations.size(), 1u);
  EXPECT_EQ(a.violations[0].schedule, b.violations[0].schedule);
  EXPECT_EQ(a.violations[0].flips, b.violations[0].flips);
}

// ---------------------------------------------------------------------------
// SeenCache: layout parity, depth semantics, budgeted eviction
// ---------------------------------------------------------------------------

TEST(SeenCacheTest, DepthSemantics) {
  for (const auto layout : {SeenCache::Layout::kMap,
                            SeenCache::Layout::kCompact}) {
    SeenCache cache(layout);
    EXPECT_EQ(cache.visit(42, 5), SeenCache::Visit::kNew);
    EXPECT_EQ(cache.visit(42, 5), SeenCache::Visit::kMerged);
    EXPECT_EQ(cache.visit(42, 9), SeenCache::Visit::kMerged);
    // Shallower revisit: the guarded subtree is larger — re-explore.
    EXPECT_EQ(cache.visit(42, 2), SeenCache::Visit::kRedo);
    EXPECT_EQ(cache.visit(42, 3), SeenCache::Visit::kMerged);
    EXPECT_EQ(cache.entries(), 1u);
  }
}

TEST(SeenCacheTest, LayoutsMakeIdenticalDecisions) {
  // A pseudo-random visit stream must produce the identical verdict
  // sequence in both layouts — the explorer's digest depends on it.
  SeenCache map(SeenCache::Layout::kMap);
  SeenCache compact(SeenCache::Layout::kCompact);
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < 20'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    // Small key space forces plenty of revisits at varying depths.
    std::uint64_t key = (x % 4096) + 1;
    const std::uint8_t depth = static_cast<std::uint8_t>((x >> 20) % 32);
    ASSERT_EQ(map.visit(key, depth), compact.visit(key, depth)) << i;
  }
  EXPECT_EQ(map.entries(), compact.entries());
}

TEST(SeenCacheTest, CompactStaysUnderBudgetByEvicting) {
  const std::uint64_t budget = 64 * 1024;
  SeenCache cache(SeenCache::Layout::kCompact, budget);
  std::uint64_t x = 1;
  for (int i = 0; i < 200'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint8_t depth = static_cast<std::uint8_t>(x % 64);
    cache.visit(x == 0 ? kSeenZeroKey : x, depth);
    ASSERT_LE(cache.bytes(), budget) << "cache grew past its budget";
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(cache.peak_bytes(), budget);
  // Shallow entries survive eviction: depth-0 states re-merge.
  SeenCache shallow(SeenCache::Layout::kCompact, budget);
  EXPECT_EQ(shallow.visit(7, 0), SeenCache::Visit::kNew);
  EXPECT_EQ(shallow.visit(7, 0), SeenCache::Visit::kMerged);
}

TEST(SeenCacheTest, SnapshotRestoreRoundTrips) {
  for (const auto layout : {SeenCache::Layout::kMap,
                            SeenCache::Layout::kCompact}) {
    SeenCache cache(layout);
    std::uint64_t x = 3;
    for (int i = 0; i < 5'000; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      cache.visit(x, static_cast<std::uint8_t>(x % 17));
    }
    std::vector<std::pair<std::uint64_t, std::uint8_t>> snap;
    cache.snapshot(&snap);
    ASSERT_EQ(snap.size(), cache.entries());
    SeenCache restored(layout);
    restored.restore(snap);
    EXPECT_EQ(restored.entries(), cache.entries());
    // Every saved entry merges at its recorded depth in the restored
    // cache — the property resume correctness rests on.
    for (const auto& [key, depth] : snap) {
      EXPECT_EQ(restored.visit(key, depth), SeenCache::Visit::kMerged);
    }
  }
}

TEST(DeepScale, CacheBudgetIsSoundAtTheExplorerLevel) {
  // A starved cache re-explores instead of pruning — more work, same
  // verdict, footprint bounded, evictions reported.
  ExploreLimits unbounded = cell_limits(12);
  ExploreLimits starved = unbounded;
  starved.max_cache_bytes = 32 * 1024;
  const ConsensusExploreReport a = run_cell("bprc", {0, 1, 1}, unbounded);
  const ConsensusExploreReport b = run_cell("bprc", {0, 1, 1}, starved);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.stats.complete);
  EXPECT_TRUE(b.stats.complete);
  EXPECT_GE(b.stats.executions, a.stats.executions);
  EXPECT_LE(b.stats.peak_cache_bytes, 32u * 1024u);
  if (a.stats.peak_cache_bytes > 32 * 1024) {
    EXPECT_GT(b.stats.cache_evictions, 0u);
  }
}

// ---------------------------------------------------------------------------
// Frontier files: round trip, parse hardening
// ---------------------------------------------------------------------------

TEST(FrontierTest, SerializeParseRoundTrips) {
  Frontier f;
  f.fingerprint = 0x1F2E3D4C5B6A7988ULL;
  f.complete = false;
  f.stats.executions = 1234;
  f.stats.schedule_digest = 0x60F38CFEECAD3890ULL;
  f.stats.states_visited = 999;
  f.stats.peak_cache_bytes = 4096;
  FrontierNode sched;
  sched.chosen = 1;
  sched.taken = 2;
  sched.candidates = 0b11;
  sched.sleep = 0b01;
  sched.ops.resize(2);
  sched.ops[0].kind = OpDesc::Kind::kWrite;
  sched.ops[0].object = 3;
  sched.ops[0].payload = -7;
  f.trail.push_back(sched);
  FrontierNode coin;
  coin.is_coin = true;
  coin.coin_value = true;
  coin.taken = 1;
  f.trail.push_back(coin);
  ExploreViolation v;
  v.failure = FailureClass::kConsistency;
  v.note = "decisions=0,1";
  v.schedule = {0, 1, 0, 1};
  v.flips = {true, false};
  f.violations.push_back(v);
  f.cache = {{kSeenZeroKey, 0}, {0x1BADB002DEADBEEFULL, 3}};

  std::string err;
  const auto parsed = parse_frontier(serialize_frontier(f), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->fingerprint, f.fingerprint);
  EXPECT_EQ(parsed->complete, f.complete);
  EXPECT_EQ(parsed->stats.executions, f.stats.executions);
  EXPECT_EQ(parsed->stats.schedule_digest, f.stats.schedule_digest);
  EXPECT_EQ(parsed->stats.states_visited, f.stats.states_visited);
  EXPECT_EQ(parsed->stats.peak_cache_bytes, f.stats.peak_cache_bytes);
  ASSERT_EQ(parsed->trail.size(), 2u);
  EXPECT_FALSE(parsed->trail[0].is_coin);
  EXPECT_EQ(parsed->trail[0].chosen, 1);
  EXPECT_EQ(parsed->trail[0].taken, 2);
  EXPECT_EQ(parsed->trail[0].candidates, 0b11u);
  EXPECT_EQ(parsed->trail[0].sleep, 0b01u);
  ASSERT_EQ(parsed->trail[0].ops.size(), 2u);
  EXPECT_EQ(parsed->trail[0].ops[0].kind, OpDesc::Kind::kWrite);
  EXPECT_EQ(parsed->trail[0].ops[0].object, 3);
  EXPECT_EQ(parsed->trail[0].ops[0].payload, -7);
  EXPECT_TRUE(parsed->trail[1].is_coin);
  EXPECT_TRUE(parsed->trail[1].coin_value);
  ASSERT_EQ(parsed->violations.size(), 1u);
  EXPECT_EQ(parsed->violations[0].failure, FailureClass::kConsistency);
  EXPECT_EQ(parsed->violations[0].schedule, v.schedule);
  EXPECT_EQ(parsed->violations[0].flips, v.flips);
  EXPECT_EQ(parsed->violations[0].note, v.note);
  EXPECT_EQ(parsed->cache, f.cache);
}

TEST(FrontierTest, ParseRejectsMalformedInput) {
  std::string err;
  // Wrong magic.
  EXPECT_FALSE(parse_frontier("bprc-shard v1\nend\n", &err).has_value());
  // Unsupported version.
  EXPECT_FALSE(parse_frontier("bprc-frontier v99\nend\n", &err).has_value());
  // Truncated (no `end` guard): a partially-written checkpoint must not
  // load as an empty-but-valid frontier.
  const Frontier empty;
  std::string text = serialize_frontier(empty);
  text.resize(text.rfind("end"));
  EXPECT_FALSE(parse_frontier(text, &err).has_value());
  EXPECT_FALSE(err.empty());
  // Garbage trail count.
  EXPECT_FALSE(
      parse_frontier("bprc-frontier v1\ntrail 5\nend\n", &err).has_value());
}

TEST(FrontierTest, UnknownKeysAreSkippedForForwardCompat) {
  Frontier f;
  f.fingerprint = 7;
  std::string text = serialize_frontier(f);
  text.insert(text.find("end"), "future-key some value\n");
  std::string err;
  const auto parsed = parse_frontier(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->fingerprint, 7u);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume: the resumed digest is the uninterrupted digest
// ---------------------------------------------------------------------------

ConsensusExploreReport run_with_resume_cycles(const std::string& protocol,
                                              std::vector<int> inputs,
                                              ExploreLimits limits,
                                              std::uint64_t slice,
                                              unsigned resume_jobs,
                                              int* cycles_out) {
  const std::string path = testing::TempDir() + "/deepscale_" + protocol +
                           std::to_string(inputs.size()) + "_j" +
                           std::to_string(resume_jobs) + ".bprc-frontier";
  limits.max_executions = slice;
  FrontierOptions fresh;
  fresh.checkpoint_path = path;
  ConsensusExploreReport report =
      run_cell(protocol, inputs, limits, &fresh);
  int cycles = 0;
  while (!report.stats.complete) {
    ++cycles;
    EXPECT_LT(cycles, 10'000);
    if (cycles >= 10'000) break;
    std::string err;
    const auto frontier = load_frontier(path, &err);
    EXPECT_TRUE(frontier.has_value()) << err;
    if (!frontier.has_value()) break;
    FrontierOptions opts;
    opts.resume = &*frontier;
    opts.checkpoint_path = path;
    limits.max_executions = report.stats.executions + slice;
    limits.grade_jobs = resume_jobs;
    report = run_cell(protocol, inputs, limits, &opts);
  }
  if (cycles_out != nullptr) *cycles_out = cycles;
  std::remove(path.c_str());
  return report;
}

TEST(CheckpointResume, ResumedDigestMatchesUninterrupted) {
  const ExploreLimits limits = cell_limits(8, 3);
  const ConsensusExploreReport full = run_cell("bprc", {0, 1}, limits);
  ASSERT_TRUE(full.stats.complete);
  int cycles = 0;
  const ConsensusExploreReport resumed = run_with_resume_cycles(
      "bprc", {0, 1}, limits, /*slice=*/7, /*resume_jobs=*/1, &cycles);
  ASSERT_GT(cycles, 0) << "slice never interrupted the sweep; test is vacuous";
  EXPECT_EQ(resumed.stats.schedule_digest, full.stats.schedule_digest);
  EXPECT_EQ(resumed.stats.executions, full.stats.executions);
  EXPECT_EQ(resumed.stats.states_visited, full.stats.states_visited);
  EXPECT_EQ(resumed.violations.size(), full.violations.size());
}

TEST(CheckpointResume, ResumeUnderBatchedGradingMatchesToo) {
  // Interrupt serially, resume with the worker pool: the digest must
  // still land on the uninterrupted value (checkpoints are only taken at
  // drained pipeline boundaries).
  const ExploreLimits limits = cell_limits(8, 3);
  const ConsensusExploreReport full = run_cell("bprc", {0, 1}, limits);
  int cycles = 0;
  const ConsensusExploreReport resumed = run_with_resume_cycles(
      "bprc", {0, 1}, limits, /*slice=*/9, /*resume_jobs=*/4, &cycles);
  ASSERT_GT(cycles, 0);
  EXPECT_EQ(resumed.stats.schedule_digest, full.stats.schedule_digest);
  EXPECT_EQ(resumed.stats.executions, full.stats.executions);
}

TEST(CheckpointResume, ViolationsSurviveTheCheckpoint) {
  // Findings collected before the interrupt must come back with the
  // resumed run, not be rediscovered or dropped.
  ExploreLimits limits = cell_limits(8, 3);
  const ConsensusExploreReport full = run_cell("broken-racy", {0, 1}, limits);
  ASSERT_GT(full.violations.size(), 0u);
  int cycles = 0;
  const ConsensusExploreReport resumed = run_with_resume_cycles(
      "broken-racy", {0, 1}, limits, /*slice=*/5, /*resume_jobs=*/1, &cycles);
  ASSERT_GT(cycles, 0);
  ASSERT_EQ(resumed.violations.size(), full.violations.size());
  for (std::size_t i = 0; i < full.violations.size(); ++i) {
    EXPECT_EQ(resumed.violations[i].schedule, full.violations[i].schedule);
  }
  EXPECT_EQ(resumed.stats.schedule_digest, full.stats.schedule_digest);
}

TEST(CheckpointResume, CompleteFrontierShortCircuits) {
  const std::string path =
      testing::TempDir() + "/deepscale_complete.bprc-frontier";
  const ExploreLimits limits = cell_limits(8, 3);
  FrontierOptions fresh;
  fresh.checkpoint_path = path;
  const ConsensusExploreReport full = run_cell("bprc", {0, 1}, limits, &fresh);
  ASSERT_TRUE(full.stats.complete);
  std::string err;
  const auto frontier = load_frontier(path, &err);
  ASSERT_TRUE(frontier.has_value()) << err;
  EXPECT_TRUE(frontier->complete);
  FrontierOptions opts;
  opts.resume = &*frontier;
  const ConsensusExploreReport again = run_cell("bprc", {0, 1}, limits, &opts);
  // No re-exploration: the saved result is returned as-is.
  EXPECT_EQ(again.stats.schedule_digest, full.stats.schedule_digest);
  EXPECT_EQ(again.stats.executions, full.stats.executions);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Frontier splitting: slices partition the root branching
// ---------------------------------------------------------------------------

TEST(DeepScale, SplitSlicesPartitionTheTree) {
  // With both prunings off, every execution belongs to exactly one root
  // branch, so the slice execution counts must sum to the full sweep's.
  ExploreLimits bare = cell_limits(6);
  bare.sleep_sets = false;
  bare.state_cache = false;
  const ConsensusExploreReport full = run_cell("bprc", {0, 1, 1}, bare);
  ASSERT_TRUE(full.stats.complete);
  std::uint64_t total = 0;
  for (std::uint32_t index = 0; index < 2; ++index) {
    ExploreLimits slice = bare;
    slice.split_index = index;
    slice.split_count = 2;
    const ConsensusExploreReport part = run_cell("bprc", {0, 1, 1}, slice);
    ASSERT_TRUE(part.stats.complete);
    EXPECT_TRUE(part.ok());
    total += part.stats.executions;
  }
  EXPECT_EQ(total, full.stats.executions);
}

// ---------------------------------------------------------------------------
// Isolated grading: a process-killing protocol cannot take the DFS down
// ---------------------------------------------------------------------------

TEST(Isolate, BenignSegvSeedExploresClean) {
  // Odd seeds arm the benign variant: behaves like a correct protocol,
  // so an isolated sweep completes with no findings.
  ExploreLimits limits = cell_limits(6);
  limits.isolate_leaves = true;
  const ConsensusExploreReport report =
      run_cell("broken-segv", {0, 1}, limits, nullptr, /*seed=*/1);
  EXPECT_TRUE(report.ok()) << report.violations.size() << " violations";
  EXPECT_TRUE(report.stats.complete);
  EXPECT_EQ(report.stats.worker_crashes, 0u);
}

TEST(Isolate, IsolationMatchesInlineDigestOnCleanProtocols) {
  // Fork-isolation is a crash containment wrapper, not a semantic change:
  // on a well-behaved protocol the isolated sweep lands on the inline
  // sweep's digest.
  ExploreLimits inline_limits = cell_limits(8, 3);
  ExploreLimits isolated = inline_limits;
  isolated.isolate_leaves = true;
  const ConsensusExploreReport a = run_cell("bprc", {0, 1}, inline_limits);
  const ConsensusExploreReport b = run_cell("bprc", {0, 1}, isolated);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.stats.schedule_digest, b.stats.schedule_digest);
  EXPECT_EQ(a.stats.executions, b.stats.executions);
  EXPECT_EQ(a.stats.states_visited, b.stats.states_visited);
}

TEST(Isolate, LethalSegvSurfacesAsWorkerCrash) {
  // Even seeds arm the lethal variant: the first graded execution kills
  // its worker process. Under --isolate the parent survives, records a
  // kWorkerCrash finding, and the artifact round-trips the repro format.
  ExploreLimits limits = cell_limits(6);
  limits.isolate_leaves = true;
  limits.max_violations = 1;
  const ConsensusExploreReport report =
      run_cell("broken-segv", {0, 1}, limits, nullptr, /*seed=*/2);
  ASSERT_FALSE(report.ok()) << "lethal protocol produced no finding";
  EXPECT_GT(report.stats.worker_crashes, 0u);
  const ExploreViolation& v = report.violations.front();
  EXPECT_EQ(v.failure, FailureClass::kWorkerCrash);
  EXPECT_NE(v.note.find("worker died"), std::string::npos) << v.note;
  // The quarantine artifact survives the .bprc-repro text format (we do
  // NOT replay it in-process — that is the crash we just contained).
  const fault::Repro repro = make_explore_repro(report.config, v);
  std::string err;
  const auto parsed = fault::parse_repro(fault::serialize_repro(repro), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->failure, FailureClass::kWorkerCrash);
  EXPECT_EQ(parsed->schedule, v.schedule);
}

}  // namespace
}  // namespace bprc::explore
