// Coin-slot circular addressing tests (§5): pointer arithmetic, slot
// recycling/withdrawal, and the trailing-reader addressing rule.
#include <gtest/gtest.h>

#include <vector>

#include "strip/coin_slots.hpp"

namespace bprc {
namespace {

TEST(CoinSlots, InitialState) {
  const CoinSlots cs(2);
  EXPECT_EQ(cs.K(), 2);
  EXPECT_EQ(cs.current, 0);
  EXPECT_EQ(cs.slots, (std::vector<std::int64_t>{0, 0, 0}));
  EXPECT_EQ(cs.next_index(), 1);
}

TEST(CoinSlots, NextWrapsAround) {
  CoinSlots cs(2);
  cs.current = 2;
  EXPECT_EQ(cs.next_index(), 0);
}

TEST(CoinSlots, AdvanceMovesPointerAndZeroesRecycledSlot) {
  CoinSlots cs(2);
  // Flip into the next slot, then advance: the pointer lands on it and
  // the slot after it (the K+1-rounds-old one) is withdrawn.
  cs.next_slot() = 5;
  cs.slots[2] = 9;  // contribution for what will become the next round
  cs.advance();
  EXPECT_EQ(cs.current, 1);
  EXPECT_EQ(cs.slots[1], 5);  // kept: now the current round's coin
  EXPECT_EQ(cs.slots[2], 0);  // zeroed: recycled for the new next round
}

TEST(CoinSlots, FullRotationWithdrawsEverything) {
  CoinSlots cs(2);
  cs.slots = {11, 22, 33};
  for (int r = 0; r < 3; ++r) cs.advance();
  // After K+1 advances every slot has been recycled exactly once.
  std::int64_t sum = 0;
  for (const auto s : cs.slots) sum += s;
  EXPECT_EQ(sum, 0);
  EXPECT_EQ(cs.current, 0);
}

TEST(CoinSlots, TrailingReaderAddressing) {
  // Owner j at (local) round r with pointer c: a process trailing by w
  // reads slot (c - w + 1) mod (K+1).
  CoinSlots cs(3);  // K=3: slots 0..3
  cs.current = 2;
  cs.slots = {40, 41, 42, 43};
  EXPECT_EQ(cs.slot_for_trailing(0), 3);  // tie: reads j's next slot
  EXPECT_EQ(cs.read_for_trailing(0), 43);
  EXPECT_EQ(cs.slot_for_trailing(1), 2);
  EXPECT_EQ(cs.read_for_trailing(1), 42);
  EXPECT_EQ(cs.slot_for_trailing(2), 1);
  EXPECT_EQ(cs.read_for_trailing(2), 41);
}

TEST(CoinSlots, TrailingAddressingWrapsNegative) {
  CoinSlots cs(2);  // K=2, slots 0..2
  cs.current = 0;
  cs.slots = {7, 8, 9};
  EXPECT_EQ(cs.slot_for_trailing(0), 1);
  EXPECT_EQ(cs.slot_for_trailing(1), 0);
  // (0 - 1 + 1) = 0; (0 - 2 + 1) = -1 -> 2 would be w=2, but w < K only.
}

TEST(CoinSlots, RoundConsistencyAcrossAdvances) {
  // Invariant tying the two addressings together: after the owner
  // advances once (one round), a reader trailing by w+1 must find the
  // same slot a reader trailing by w found before the advance.
  for (int K = 2; K <= 5; ++K) {
    CoinSlots cs(K);
    for (int fill = 0; fill <= K; ++fill) {
      cs.slots[static_cast<std::size_t>(fill)] = 100 + fill;
    }
    for (int rounds = 0; rounds < 10; ++rounds) {
      for (int w = 0; w + 1 < K; ++w) {
        CoinSlots after = cs;
        after.advance();
        EXPECT_EQ(cs.slot_for_trailing(w), after.slot_for_trailing(w + 1))
            << "K=" << K << " rounds=" << rounds << " w=" << w;
      }
      cs.advance();
    }
  }
}

TEST(CoinSlots, EqualityComparesPointerAndSlots) {
  CoinSlots a(2);
  CoinSlots b(2);
  EXPECT_EQ(a, b);
  b.next_slot() = 1;
  EXPECT_FALSE(a == b);
  b.next_slot() = 0;
  b.advance();
  EXPECT_FALSE(a == b);
}

TEST(CoinSlotsDeath, TrailingDistanceMustBeUnderK) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const CoinSlots cs(2);
  EXPECT_DEATH((void)cs.slot_for_trailing(2), "trailing");
  EXPECT_DEATH((void)cs.slot_for_trailing(-1), "trailing");
}

}  // namespace
}  // namespace bprc
