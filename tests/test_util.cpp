// Unit tests for src/util: PRNG, statistics, table rendering, env knobs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace bprc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all seven values hit
}

TEST(Rng, FlipIsRoughlyFair) {
  Rng rng(11);
  int heads = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) heads += rng.flip();
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    const int trials = 50000;
    for (int i = 0; i < trials; ++i) hits += rng.bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / trials, p, 0.02);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(15);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(21);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(33);
  Rng p2(33);
  Rng a = p1.split(5);
  Rng b = p2.split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(RunningStat, CiShrinksWithSamples) {
  RunningStat small;
  RunningStat large;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Proportion, EstimateAndWilson) {
  Proportion p;
  for (int i = 0; i < 80; ++i) p.add(true);
  for (int i = 0; i < 20; ++i) p.add(false);
  EXPECT_DOUBLE_EQ(p.estimate(), 0.8);
  const auto ci = p.wilson95();
  EXPECT_LT(ci.low, 0.8);
  EXPECT_GT(ci.high, 0.8);
  EXPECT_GT(ci.low, 0.69);
  EXPECT_LT(ci.high, 0.88);
}

TEST(Proportion, WilsonHandlesExtremes) {
  Proportion zero;
  for (int i = 0; i < 50; ++i) zero.add(false);
  const auto ci0 = zero.wilson95();
  EXPECT_DOUBLE_EQ(ci0.low, 0.0);
  EXPECT_GT(ci0.high, 0.0);  // never claims impossibility
  EXPECT_LT(ci0.high, 0.12);

  Proportion empty;
  const auto cie = empty.wilson95();
  EXPECT_DOUBLE_EQ(cie.low, 0.0);
  EXPECT_DOUBLE_EQ(cie.high, 1.0);
}

TEST(Samples, QuantilesExact) {
  Samples s;
  for (int i = 1; i <= 101; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 51.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 101.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 26.0);
  EXPECT_DOUBLE_EQ(s.max(), 101.0);
}

TEST(Samples, MeanMatchesDefinition) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  s.add(6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(PowerFit, RecoversQuadraticCoefficient) {
  std::vector<double> xs{2, 4, 8, 16};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x * x);
  const auto fit = fit_power(xs, ys, 2.0);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(fit.max_rel_residual, 0.0, 1e-9);
}

TEST(PowerFit, ReportsResidualOnBadModel) {
  std::vector<double> xs{1, 2, 4, 8};
  std::vector<double> ys{1, 8, 64, 512};  // cubic, fit as quadratic
  const auto fit = fit_power(xs, ys, 2.0);
  EXPECT_GT(fit.max_rel_residual, 0.5);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(std::int64_t{-7}), "-7");
}

TEST(Table, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Env, ScaledTrialsDefaultsToBase) {
  unsetenv("BPRC_SCALE");
  EXPECT_EQ(scaled_trials(100), 100u);
}

TEST(Env, ScaledTrialsHonorsVariable) {
  setenv("BPRC_SCALE", "3", 1);
  EXPECT_EQ(scaled_trials(100), 300u);
  unsetenv("BPRC_SCALE");
}

TEST(Env, IntParsesAndFallsBack) {
  setenv("BPRC_TEST_ENV_INT", "17", 1);
  EXPECT_EQ(env_int("BPRC_TEST_ENV_INT", 5), 17);
  setenv("BPRC_TEST_ENV_INT", "-3", 1);
  EXPECT_EQ(env_int("BPRC_TEST_ENV_INT", 5), -3);
  // Unset and empty mean "use the default" — the user said nothing.
  unsetenv("BPRC_TEST_ENV_INT");
  EXPECT_EQ(env_int("BPRC_TEST_ENV_INT", 5), 5);
  setenv("BPRC_TEST_ENV_INT", "", 1);
  EXPECT_EQ(env_int("BPRC_TEST_ENV_INT", 5), 5);
  unsetenv("BPRC_TEST_ENV_INT");
}

TEST(Env, UnparseableValueAborts) {
  // A knob the user set and got wrong must abort with a diagnostic, not
  // silently degrade to the default ("I benchmarked at 8 jobs" — no).
  setenv("BPRC_TEST_ENV_INT", "banana", 1);
  EXPECT_DEATH(env_int("BPRC_TEST_ENV_INT", 5), "not a valid integer");
  setenv("BPRC_TEST_ENV_INT", "8jobs", 1);  // trailing garbage
  EXPECT_DEATH(env_int("BPRC_TEST_ENV_INT", 5), "not a valid integer");
  setenv("BPRC_TEST_ENV_INT", "999999999999999999999", 1);  // out of range
  EXPECT_DEATH(env_int("BPRC_TEST_ENV_INT", 5), "not a valid integer");
  unsetenv("BPRC_TEST_ENV_INT");
}

}  // namespace
}  // namespace bprc
