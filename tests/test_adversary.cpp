// Behavioral tests for the adversary scheduling strategies.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"

namespace bprc {
namespace {

/// Runs n spinning processes under `adv` for `steps` steps and returns the
/// schedule (who ran at each step).
std::vector<ProcId> schedule_of(int n, std::unique_ptr<Adversary> adv,
                                std::uint64_t steps,
                                std::function<void(SimRuntime&, ProcId)>
                                    hinter = nullptr) {
  SimRuntime rt(n, std::move(adv), 1);
  std::vector<ProcId> trace;
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&rt, &trace, p, &hinter] {
      // Record BEFORE parking at the checkpoint so trace[k] is exactly the
      // k-th scheduling decision the adversary made.
      for (;;) {
        if (hinter) hinter(rt, p);
        trace.push_back(p);
        rt.checkpoint({});
      }
    });
  }
  rt.run(steps);
  return trace;
}

TEST(RoundRobin, StrictRotation) {
  const auto trace = schedule_of(4, std::make_unique<RoundRobinAdversary>(),
                                 12);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i], static_cast<ProcId>(i % 4));
  }
}

TEST(Random, CoversAllProcesses) {
  const auto trace =
      schedule_of(5, std::make_unique<RandomAdversary>(3), 500);
  std::set<ProcId> seen(trace.begin(), trace.end());
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Random, SeededReproducibly) {
  const auto a = schedule_of(5, std::make_unique<RandomAdversary>(3), 200);
  const auto b = schedule_of(5, std::make_unique<RandomAdversary>(3), 200);
  const auto c = schedule_of(5, std::make_unique<RandomAdversary>(4), 200);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Lockstep, EveryProcessOncePerPhase) {
  const int n = 6;
  const auto trace =
      schedule_of(n, std::make_unique<LockstepAdversary>(9), 60);
  ASSERT_EQ(trace.size(), 60u);
  for (std::size_t phase = 0; phase < trace.size() / n; ++phase) {
    std::set<ProcId> in_phase(trace.begin() + static_cast<long>(phase * n),
                              trace.begin() + static_cast<long>((phase + 1) * n));
    EXPECT_EQ(in_phase.size(), static_cast<std::size_t>(n))
        << "phase " << phase << " scheduled someone twice";
  }
}

TEST(LeaderSuppress, SchedulesMinimalRoundProcess) {
  // Process p publishes round = p; the adversary must keep picking the
  // process with the smallest published round (p = 0).
  auto hinter = [](SimRuntime& rt, ProcId p) {
    Hint h;
    h.round = p;
    rt.publish_hint(h);
  };
  const auto trace = schedule_of(
      4, std::make_unique<LeaderSuppressAdversary>(5), 300, hinter);
  // A process's published round appears once it has been scheduled once;
  // from the point where everyone has run (and so published), only the
  // minimal-round process (p0) may be scheduled.
  std::set<ProcId> seen;
  std::size_t all_seen_at = trace.size();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    seen.insert(trace[i]);
    if (seen.size() == 4) {
      all_seen_at = i;
      break;
    }
  }
  ASSERT_LT(all_seen_at, trace.size()) << "not every process got scheduled";
  for (std::size_t i = all_seen_at + 1; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i], 0) << "non-minimal process scheduled at " << i;
  }
}

TEST(CoinBias, PrefersStepsTowardZero) {
  // Two processes: p0 always about to +1, p1 always about to -1. With the
  // published counters summing positive, the adversary must prefer p1.
  SimRuntime* rtp = nullptr;
  auto adv = std::make_unique<CoinBiasAdversary>(7);
  SimRuntime rt(2, std::move(adv), 1);
  rtp = &rt;
  std::vector<ProcId> trace;
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [rtp, &trace, p] {
      for (;;) {
        Hint h;
        h.counter = 10;                     // walk looks positive
        h.walk_delta = (p == 0) ? 1 : -1;   // p1 moves toward zero
        rtp->publish_hint(h);
        rtp->checkpoint({});
        trace.push_back(p);
      }
    });
  }
  rt.run(80);
  // Early picks happen before the hints are published; once they are, the
  // adversary must exclusively favor p1 (the toward-zero step). Check the
  // tail of the schedule.
  ASSERT_GE(trace.size(), 40u);
  for (std::size_t i = trace.size() - 30; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i], 1);
  }
}

TEST(Scripted, ReplaysExactly) {
  const std::vector<ProcId> script{2, 0, 1, 1, 2, 0};
  auto trace = schedule_of(
      3, std::make_unique<ScriptedAdversary>(script), script.size());
  EXPECT_EQ(trace, script);
}

TEST(Scripted, FallsBackToRoundRobinAfterScript) {
  const std::vector<ProcId> script{1, 1};
  const auto trace = schedule_of(
      2, std::make_unique<ScriptedAdversary>(script), 6);
  EXPECT_EQ(trace[0], 1);
  EXPECT_EQ(trace[1], 1);
  // Fallback covers both processes.
  std::set<ProcId> tail(trace.begin() + 2, trace.end());
  EXPECT_EQ(tail.size(), 2u);
}

TEST(Scripted, SkipsUnrunnableEntries) {
  // Script names a crashed process; it must be skipped, not deadlock.
  auto inner = std::make_unique<ScriptedAdversary>(
      std::vector<ProcId>{0, 0, 0, 0, 0, 0});
  auto plan = std::make_unique<CrashPlanAdversary>(
      std::move(inner), std::vector<CrashPlanAdversary::Crash>{{2, 0}});
  const auto trace = schedule_of(2, std::move(plan), 10);
  // After the crash, only process 1 can run.
  for (std::size_t i = 2; i < trace.size(); ++i) EXPECT_EQ(trace[i], 1);
}

TEST(CrashPlan, CrashesAtScheduledStep) {
  auto plan = std::make_unique<CrashPlanAdversary>(
      std::make_unique<RoundRobinAdversary>(),
      std::vector<CrashPlanAdversary::Crash>{{6, 1}});
  SimRuntime rt(3, std::move(plan), 1);
  std::vector<ProcId> trace;
  for (ProcId p = 0; p < 3; ++p) {
    rt.spawn(p, [&rt, &trace, p] {
      for (;;) {
        rt.checkpoint({});
        trace.push_back(p);
      }
    });
  }
  rt.run(30);
  EXPECT_TRUE(rt.crashed(1));
  // Process 1 never appears after the crash point.
  const auto last1 = std::find(trace.rbegin(), trace.rend(), 1);
  const auto idx = trace.size() - 1 -
                   static_cast<std::size_t>(last1 - trace.rbegin());
  EXPECT_LT(idx, 8u);
}

TEST(Recording, ReplayReproducesTheSchedule) {
  // Record a random schedule, then replay it through ScriptedAdversary:
  // the two runs must produce identical traces — the debugging loop for
  // randomized-test failures.
  auto recorder = std::make_unique<RecordingAdversary>(
      std::make_unique<RandomAdversary>(99));
  RecordingAdversary* handle = recorder.get();
  SimRuntime rt1(3, std::move(recorder), 99);
  std::vector<ProcId> trace1;
  for (ProcId p = 0; p < 3; ++p) {
    rt1.spawn(p, [&rt1, &trace1, p] {
      for (int k = 0; k < 20; ++k) {
        trace1.push_back(p);
        rt1.checkpoint({});
      }
    });
  }
  rt1.run(1000);
  const std::vector<ProcId> script = handle->script();
  ASSERT_FALSE(script.empty());

  SimRuntime rt2(3, std::make_unique<ScriptedAdversary>(script), 1234);
  std::vector<ProcId> trace2;
  for (ProcId p = 0; p < 3; ++p) {
    rt2.spawn(p, [&rt2, &trace2, p] {
      for (int k = 0; k < 20; ++k) {
        trace2.push_back(p);
        rt2.checkpoint({});
      }
    });
  }
  rt2.run(1000);
  EXPECT_EQ(trace1, trace2);
}

TEST(StandardAdversaries, ProvidesTheFullSuite) {
  const auto advs = standard_adversaries(1);
  ASSERT_EQ(advs.size(), 5u);
  std::set<std::string> names;
  for (const auto& a : advs) names.insert(a->name());
  EXPECT_TRUE(names.contains("random"));
  EXPECT_TRUE(names.contains("round-robin"));
  EXPECT_TRUE(names.contains("lockstep"));
  EXPECT_TRUE(names.contains("leader-suppress"));
  EXPECT_TRUE(names.contains("coin-bias"));
}

}  // namespace
}  // namespace bprc
