// Full snapshot-object linearizability: checker self-tests on handcrafted
// histories, then application to all three snapshot implementations —
// a strictly stronger verdict than the paper's P1/P2/P3.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"
#include "snapshot/baseline_snapshot.hpp"
#include "snapshot/scannable_memory.hpp"
#include "snapshot/waitfree_snapshot.hpp"
#include "verify/snapshot_linearizability.hpp"

namespace bprc {
namespace {

SnapWriteRec W(ProcId j, std::uint64_t idx, std::uint64_t inv,
               std::uint64_t res) {
  return {j, idx, inv, res};
}
SnapScanRec S(ProcId p, std::uint64_t inv, std::uint64_t res,
              std::vector<std::uint64_t> view) {
  return {p, inv, res, std::move(view)};
}

TEST(SnapLin, EmptyHistoryLinearizable) {
  SnapshotHistory h;
  h.nprocs = 2;
  EXPECT_TRUE(check_snapshot_linearizable(h).ok);
}

TEST(SnapLin, SequentialWriteThenScan) {
  SnapshotHistory h;
  h.nprocs = 2;
  h.add_write(W(0, 1, 1, 2));
  h.add_scan(S(1, 3, 4, {1, 0}));
  EXPECT_TRUE(check_snapshot_linearizable(h).ok);
  // A scan claiming NOT to see the completed write is not linearizable.
  h.scans[0].view = {0, 0};
  EXPECT_FALSE(check_snapshot_linearizable(h).ok);
}

TEST(SnapLin, ConcurrentWriteEitherWay) {
  SnapshotHistory h;
  h.nprocs = 2;
  h.add_write(W(0, 1, 2, 8));
  h.add_scan(S(1, 3, 7, {0, 0}));  // overlapping scan may miss it
  EXPECT_TRUE(check_snapshot_linearizable(h).ok);
  h.scans[0].view = {1, 0};  // or see it
  EXPECT_TRUE(check_snapshot_linearizable(h).ok);
}

TEST(SnapLin, MixedViewThatNeverExistedIsRejected) {
  // w0#1 completes strictly before w1#1 begins. A scan strictly after
  // both that reports {missing w0#1, seeing w1#1} describes an instant
  // that never existed.
  SnapshotHistory h;
  h.nprocs = 2;
  h.add_write(W(0, 1, 1, 2));
  h.add_write(W(1, 1, 3, 4));
  h.add_scan(S(0, 5, 6, {0, 1}));
  const auto res = check_snapshot_linearizable(h);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.witness.find("no snapshot linearization"),
            std::string::npos);
  // The consistent views all pass.
  h.scans[0].view = {1, 1};
  EXPECT_TRUE(check_snapshot_linearizable(h).ok);
}

TEST(SnapLin, TwoScansRequireOneInstantOrder) {
  // Two concurrent scans with crossing views (each sees a write the other
  // misses) cannot both be instants of one object history.
  SnapshotHistory h;
  h.nprocs = 2;
  h.add_write(W(0, 1, 1, 10));
  h.add_write(W(1, 1, 1, 10));
  h.add_scan(S(0, 2, 9, {1, 0}));
  h.add_scan(S(1, 2, 9, {0, 1}));
  EXPECT_FALSE(check_snapshot_linearizable(h).ok);
  // Nested views are fine.
  h.scans[0].view = {1, 0};
  h.scans[1].view = {1, 1};
  EXPECT_TRUE(check_snapshot_linearizable(h).ok);
}

TEST(SnapLin, RealTimeOrderOfScansEnforced) {
  SnapshotHistory h;
  h.nprocs = 1;
  h.add_write(W(0, 1, 1, 2));
  h.add_scan(S(0, 3, 4, {1}));
  h.add_scan(S(0, 5, 6, {0}));  // later scan sees older state: impossible
  EXPECT_FALSE(check_snapshot_linearizable(h).ok);
}

// ---------------------------------------------------------------------------
// Application to the implementations (small workloads: <= 64 ops total).
// ---------------------------------------------------------------------------

enum class Impl { kScannable, kUnbounded, kWaitFree };

SnapshotHistory run_small(Impl impl, int n, std::unique_ptr<Adversary> adv,
                          std::uint64_t seed, int ops) {
  SnapshotHistory hist;
  SimRuntime rt(n, std::move(adv), seed);
  std::unique_ptr<ScannableMemory<int>> scannable;
  std::unique_ptr<UnboundedSnapshot<int>> unbounded;
  std::unique_ptr<WaitFreeSnapshot<int>> waitfree;
  switch (impl) {
    case Impl::kScannable:
      scannable = std::make_unique<ScannableMemory<int>>(
          rt, 0, ScannableMemory<int>::ArrowImpl::kNative, &hist);
      break;
    case Impl::kUnbounded:
      unbounded = std::make_unique<UnboundedSnapshot<int>>(rt, 0, &hist);
      break;
    case Impl::kWaitFree:
      waitfree = std::make_unique<WaitFreeSnapshot<int>>(rt, 0, &hist);
      break;
  }
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&, p] {
      for (int k = 0; k < ops; ++k) {
        const int v = static_cast<int>(p) * 100 + k;
        if (scannable) {
          scannable->write(v);
          scannable->scan();
        } else if (unbounded) {
          unbounded->write(v);
          unbounded->scan();
        } else {
          waitfree->update(v);
          waitfree->scan();
        }
      }
    });
  }
  BPRC_REQUIRE(rt.run(50'000'000ull).reason == RunResult::Reason::kAllDone,
               "workload did not finish");
  return hist;
}

class SnapLinImpls
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(SnapLinImpls, ScannableMemoryFullyLinearizable) {
  const auto [n, advk, seed] = GetParam();
  auto advs = standard_adversaries(seed * 3 + 11);
  const auto h = run_small(Impl::kScannable, n,
                           std::move(advs[static_cast<std::size_t>(advk)]),
                           seed, /*ops=*/4);
  const auto res = check_snapshot_linearizable(h);
  EXPECT_TRUE(res.ok) << res.witness;
}

TEST_P(SnapLinImpls, UnboundedSnapshotFullyLinearizable) {
  const auto [n, advk, seed] = GetParam();
  auto advs = standard_adversaries(seed * 5 + 23);
  const auto h = run_small(Impl::kUnbounded, n,
                           std::move(advs[static_cast<std::size_t>(advk)]),
                           seed, /*ops=*/4);
  const auto res = check_snapshot_linearizable(h);
  EXPECT_TRUE(res.ok) << res.witness;
}

TEST_P(SnapLinImpls, WaitFreeSnapshotFullyLinearizable) {
  const auto [n, advk, seed] = GetParam();
  auto advs = standard_adversaries(seed * 7 + 31);
  const auto h = run_small(Impl::kWaitFree, n,
                           std::move(advs[static_cast<std::size_t>(advk)]),
                           seed, /*ops=*/4);
  const auto res = check_snapshot_linearizable(h);
  EXPECT_TRUE(res.ok) << res.witness;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SnapLinImpls,
    ::testing::Combine(::testing::Values(2, 3), ::testing::Range(0, 5),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(SnapLinDeath, RejectsOversizedHistories) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SnapshotHistory h;
  h.nprocs = 1;
  for (std::uint64_t i = 1; i <= 65; ++i) {
    h.add_write(W(0, i, 2 * i, 2 * i + 1));
  }
  EXPECT_DEATH(check_snapshot_linearizable(h), "64");
}

}  // namespace
}  // namespace bprc
