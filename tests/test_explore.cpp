// Tests for the exhaustive exploration driver (src/explore/): engine
// behavior (branching, pruning, coin splitting, safety valves), consensus
// verification at n=2, detection of the seeded-broken protocols, and the
// `.bprc-repro` round trip into the torture replayer.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "explore/consensus_explore.hpp"
#include "explore/explorer.hpp"
#include "explore/token_game_explore.hpp"
#include "fault/protocols.hpp"
#include "fault/repro.hpp"
#include "runtime/sim_runtime.hpp"

namespace bprc::explore {
namespace {

ExploreLimits small_limits(std::uint64_t depth, std::uint64_t coins = 3) {
  ExploreLimits limits;
  limits.branch_depth = depth;
  limits.max_coin_flips = coins;
  limits.max_run_steps = 200'000;
  return limits;
}

/// Counts violations over every input cell of one protocol at n.
std::uint64_t sweep_violations(const std::string& protocol, int n,
                               const ExploreLimits& limits,
                               bool* complete = nullptr,
                               std::vector<ConsensusExploreReport>* out =
                                   nullptr) {
  const auto reports =
      explore_consensus_all_inputs(protocol, n, /*seed=*/1, limits);
  std::uint64_t violations = 0;
  bool all_complete = true;
  for (const auto& report : reports) {
    violations += report.violations.size();
    all_complete = all_complete && report.stats.complete;
  }
  if (complete != nullptr) *complete = all_complete;
  if (out != nullptr) *out = reports;
  return violations;
}

// ---------------------------------------------------------------------------
// Engine behavior on a transparent target (the token game)
// ---------------------------------------------------------------------------

TEST(Explorer, ExhaustsTheTokenGameTree) {
  const ExploreResult result =
      explore_token_game(2, 2, 4, small_limits(16), /*seed=*/1);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.stats.complete);
  EXPECT_GT(result.stats.executions, 1u);
  EXPECT_GT(result.stats.states_visited, 0u);
  // Every execution finished, was pruned, or (impossible here) truncated.
  EXPECT_EQ(result.stats.executions,
            result.stats.complete_runs + result.stats.pruned_runs +
                result.stats.truncated_runs);
  EXPECT_EQ(result.stats.truncated_runs, 0u);
}

TEST(Explorer, PruningsOnlyShrinkTheTree) {
  // Disabling sleep sets and the state cache must not change the verdict,
  // only the amount of work: the unpruned tree dominates the pruned one.
  ExploreLimits pruned = small_limits(12);
  ExploreLimits bare = pruned;
  bare.sleep_sets = false;
  bare.state_cache = false;
  const ExploreResult with_pruning = explore_token_game(2, 2, 3, pruned, 1);
  const ExploreResult without = explore_token_game(2, 2, 3, bare, 1);
  EXPECT_TRUE(with_pruning.ok());
  EXPECT_TRUE(without.ok());
  EXPECT_TRUE(with_pruning.stats.complete);
  EXPECT_TRUE(without.stats.complete);
  EXPECT_LE(with_pruning.stats.executions, without.stats.executions);
  EXPECT_EQ(without.stats.states_merged, 0u);
  EXPECT_EQ(without.stats.sleep_pruned, 0u);
  EXPECT_GT(with_pruning.stats.states_merged + with_pruning.stats.sleep_pruned,
            0u);
}

TEST(Explorer, MaxExecutionsValveClearsComplete) {
  ExploreLimits limits = small_limits(16);
  limits.max_executions = 3;
  const ExploreResult result = explore_token_game(2, 2, 4, limits, 1);
  EXPECT_FALSE(result.stats.complete);
  EXPECT_LE(result.stats.executions, 3u);
}

TEST(Explorer, MaxStatesValveClearsComplete) {
  ExploreLimits limits = small_limits(16);
  limits.max_states = 5;
  const ExploreResult result = explore_token_game(2, 2, 4, limits, 1);
  EXPECT_FALSE(result.stats.complete);
}

// ---------------------------------------------------------------------------
// Consensus verification at n=2 (the tier-1 exhaustive sweep)
// ---------------------------------------------------------------------------

TEST(ExploreConsensus, BprcIsCleanAtN2) {
  bool complete = false;
  EXPECT_EQ(sweep_violations("bprc", 2, small_limits(8), &complete), 0u);
  EXPECT_TRUE(complete) << "sweep hit a safety valve; not exhaustive";
}

TEST(ExploreConsensus, BaselinesAreCleanAtN2) {
  for (const std::string protocol :
       {"aspnes-herlihy", "local-coin", "strong-coin"}) {
    bool complete = false;
    EXPECT_EQ(sweep_violations(protocol, 2, small_limits(8), &complete), 0u)
        << protocol;
    EXPECT_TRUE(complete) << protocol;
  }
}

TEST(ExploreConsensus, CatchesTheRacyBrokenProtocol) {
  std::vector<ConsensusExploreReport> reports;
  const std::uint64_t violations =
      sweep_violations("broken-racy", 2, small_limits(8), nullptr, &reports);
  ASSERT_GT(violations, 0u) << "exhaustive sweep missed the seeded race";
  std::set<FailureClass> classes;
  for (const auto& report : reports) {
    for (const auto& v : report.violations) classes.insert(v.failure);
  }
  EXPECT_TRUE(classes.count(FailureClass::kConsistency))
      << "the race is an agreement violation";
}

TEST(ExploreConsensus, CatchesTheUnboundedBrokenProtocol) {
  std::vector<ConsensusExploreReport> reports;
  const std::uint64_t violations = sweep_violations(
      "broken-unbounded", 2, small_limits(10), nullptr, &reports);
  ASSERT_GT(violations, 0u)
      << "exhaustive sweep missed the schedule-dependent counter blowup";
  std::set<FailureClass> classes;
  for (const auto& report : reports) {
    for (const auto& v : report.violations) classes.insert(v.failure);
  }
  EXPECT_TRUE(classes.count(FailureClass::kBoundedMemory));
}

TEST(ExploreConsensus, CoinBranchingEngagesOnDeepRegions) {
  // local-coin flips its round coin early; with a branch region deep
  // enough to reach it, the explorer must split executions on both
  // outcomes and still verify every leaf.
  ConsensusExploreConfig config;
  config.protocol = "local-coin";
  config.inputs = {0, 1};
  config.limits = small_limits(30, /*coins=*/2);
  const ConsensusExploreReport report = explore_consensus(config);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.stats.complete);
  EXPECT_GT(report.stats.coin_branches, 0u)
      << "branch region never reached a coin flip";
}

TEST(ExploreConsensus, ValidityHoldsOnUnanimousInputs) {
  // Unanimous-input cells are where validity violations would hide; make
  // sure those cells are genuinely part of the sweep.
  std::vector<ConsensusExploreReport> reports;
  sweep_violations("bprc", 2, small_limits(8), nullptr, &reports);
  ASSERT_EQ(reports.size(), 4u);  // 2^2 input vectors
  std::set<std::vector<int>> inputs;
  for (const auto& report : reports) inputs.insert(report.config.inputs);
  EXPECT_TRUE(inputs.count({0, 0}));
  EXPECT_TRUE(inputs.count({1, 1}));
  EXPECT_TRUE(inputs.count({0, 1}));
  EXPECT_TRUE(inputs.count({1, 0}));
}

// ---------------------------------------------------------------------------
// Counterexample artifacts: explorer -> .bprc-repro -> torture replayer
// ---------------------------------------------------------------------------

TEST(ExploreRepro, RacyViolationRoundTripsThroughTheReplayer) {
  std::vector<ConsensusExploreReport> reports;
  ASSERT_GT(
      sweep_violations("broken-racy", 2, small_limits(8), nullptr, &reports),
      0u);
  int replayed = 0;
  for (const auto& report : reports) {
    for (const auto& v : report.violations) {
      const fault::Repro repro = make_explore_repro(report.config, v);
      // Serialize + parse: the artifact must survive the text format.
      std::string err;
      const auto parsed = fault::parse_repro(fault::serialize_repro(repro),
                                             &err);
      ASSERT_TRUE(parsed.has_value()) << err;
      EXPECT_EQ(parsed->schedule, v.schedule);
      EXPECT_EQ(parsed->flips, v.flips);
      const ConsensusRunResult result = fault::replay_repro(*parsed);
      EXPECT_EQ(result.failure(), v.failure)
          << "replay did not reproduce the recorded failure class";
      ++replayed;
    }
  }
  EXPECT_GT(replayed, 0);
}

TEST(ExploreRepro, UnboundedViolationRoundTripsThroughTheReplayer) {
  std::vector<ConsensusExploreReport> reports;
  ASSERT_GT(sweep_violations("broken-unbounded", 2, small_limits(10), nullptr,
                             &reports),
            0u);
  int replayed = 0;
  for (const auto& report : reports) {
    for (const auto& v : report.violations) {
      if (replayed >= 4) break;  // a handful is plenty
      const fault::Repro repro = make_explore_repro(report.config, v);
      const ConsensusRunResult result = fault::replay_repro(repro);
      EXPECT_EQ(result.failure(), v.failure);
      ++replayed;
    }
  }
  EXPECT_GT(replayed, 0);
}

TEST(ExploreRepro, ForcedFlipsSurviveSerialization) {
  fault::Repro repro;
  repro.run.protocol = "bprc";
  repro.run.inputs = {0, 1};
  repro.run.adversary = "explore";
  repro.run.seed = 7;
  repro.run.max_steps = 1000;
  repro.failure = FailureClass::kConsistency;
  repro.schedule = {0, 1, 0};
  repro.flips = {true, false, true, true};
  std::string err;
  const auto parsed = fault::parse_repro(fault::serialize_repro(repro), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->flips, repro.flips);
}

}  // namespace
}  // namespace bprc::explore
