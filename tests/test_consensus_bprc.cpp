// Integration tests of the full BPRC protocol (§5): consistency, validity,
// termination, crash tolerance, bounded shared memory — across the
// adversary × input-pattern × seed matrix, plus K and b variants.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <tuple>
#include <vector>

#include "consensus/bprc.hpp"
#include "consensus/driver.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"

namespace bprc {
namespace {

ProtocolFactory bprc_factory(int n, int K = 2, int b = 4) {
  return [n, K, b](Runtime& rt) {
    return std::make_unique<BPRCConsensus>(rt, BPRCParams::standard(n, K, b));
  };
}

constexpr std::uint64_t kBudget = 80'000'000;

TEST(BPRC, SingleProcessDecidesItsInput) {
  for (const int input : {0, 1}) {
    const auto res = run_consensus_sim(bprc_factory(1), {input},
                                       std::make_unique<RandomAdversary>(1),
                                       1, kBudget);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.decisions[0], input);
  }
}

TEST(BPRC, UnanimousInputsDecideWithoutCoinFlips) {
  // Validity's strong form: with unanimous inputs the coin is never
  // touched (leaders always agree), so termination is deterministic.
  for (const int n : {2, 4, 7}) {
    for (const int input : {0, 1}) {
      SimRuntime rt(n, std::make_unique<RandomAdversary>(5), 5);
      BPRCConsensus protocol(rt, BPRCParams::standard(n));
      for (ProcId p = 0; p < n; ++p) {
        rt.spawn(p, [&protocol, input] { protocol.propose(input); });
      }
      ASSERT_EQ(rt.run(kBudget).reason, RunResult::Reason::kAllDone);
      EXPECT_EQ(protocol.total_flips(), 0u);
      for (ProcId p = 0; p < n; ++p) EXPECT_EQ(protocol.decision(p), input);
    }
  }
}

class BPRCMatrix : public ::testing::TestWithParam<
                       std::tuple<int, int, int, std::uint64_t>> {};

TEST_P(BPRCMatrix, ConsistentValidTerminating) {
  const auto [n, advk, pattern, seed] = GetParam();
  const auto patterns = standard_input_patterns(n, seed);
  if (pattern >= static_cast<int>(patterns.size())) GTEST_SKIP();
  auto advs = standard_adversaries(seed * 1337 + 11);
  const auto res = run_consensus_sim(
      bprc_factory(n), patterns[static_cast<std::size_t>(pattern)],
      std::move(advs[static_cast<std::size_t>(advk)]), seed, kBudget);
  EXPECT_TRUE(res.all_decided) << "termination failure";
  EXPECT_TRUE(res.consistent) << "CONSISTENCY VIOLATION";
  EXPECT_TRUE(res.valid) << "VALIDITY VIOLATION";
  // Bounded memory: the walk counters never exceeded their static bound.
  EXPECT_TRUE(res.footprint.bounded);
  EXPECT_LE(res.footprint.max_counter, res.footprint.static_bound);
  EXPECT_EQ(res.footprint.max_round_stored, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BPRCMatrix,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),   // n
                       ::testing::Range(0, 5),          // adversary
                       ::testing::Values(2, 4),         // split + random
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

class BPRCSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BPRCSeedSweep, SplitInputsUnderCoinBias) {
  // The protocol's hardest configuration: adversary attacks the coin,
  // inputs maximally split.
  const std::uint64_t seed = GetParam();
  const int n = 4;
  const auto res = run_consensus_sim(
      bprc_factory(n), {0, 1, 0, 1},
      std::make_unique<CoinBiasAdversary>(seed), seed, kBudget);
  EXPECT_TRUE(res.ok()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPRCSeedSweep,
                         ::testing::Range<std::uint64_t>(0, 50));

class BPRCCrashes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BPRCCrashes, SurvivorsDecideDespiteCrashes) {
  // Wait-freedom: crash all but one process at staggered points; every
  // survivor must still decide, consistently.
  const std::uint64_t seed = GetParam();
  const int n = 5;
  std::vector<CrashPlanAdversary::Crash> plan;
  for (int c = 0; c < n - 1; ++c) {
    plan.push_back({seed * 50 + static_cast<std::uint64_t>(c) * 400 + 100,
                    static_cast<ProcId>(c)});
  }
  auto adv = std::make_unique<CrashPlanAdversary>(
      std::make_unique<RandomAdversary>(seed), plan);
  const auto res = run_consensus_sim(bprc_factory(n), {0, 1, 0, 1, 1},
                                     std::move(adv), seed, kBudget);
  EXPECT_TRUE(res.all_decided) << "survivor failed to decide";
  EXPECT_TRUE(res.consistent);
  EXPECT_TRUE(res.valid);
  // The non-crashed process decided.
  EXPECT_NE(res.decisions[4], -1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPRCCrashes,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(BPRC, CrashedLeaderDoesNotBlockDecision) {
  // Crash the process most likely to be ahead (p0 under round-robin gets
  // the first step) early; the rest must pass it and decide.
  auto adv = std::make_unique<CrashPlanAdversary>(
      std::make_unique<RoundRobinAdversary>(),
      std::vector<CrashPlanAdversary::Crash>{{40, 0}});
  const auto res = run_consensus_sim(bprc_factory(3), {1, 0, 0},
                                     std::move(adv), 9, kBudget);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.consistent);
}

class BPRCVariants
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(BPRCVariants, LargerKAndDifferentBStillCorrect) {
  const auto [K, b, seed] = GetParam();
  const int n = 4;
  const auto res = run_consensus_sim(
      bprc_factory(n, K, b), {0, 1, 1, 0},
      std::make_unique<LockstepAdversary>(seed), seed, kBudget);
  EXPECT_TRUE(res.ok()) << "K=" << K << " b=" << b << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BPRCVariants,
    ::testing::Combine(::testing::Values(2, 3, 4),    // K
                       ::testing::Values(2, 4, 8),    // b
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(BPRC, DeterministicGivenSeed) {
  auto once = [](std::uint64_t seed) {
    const auto res = run_consensus_sim(
        bprc_factory(4), {0, 1, 0, 1},
        std::make_unique<RandomAdversary>(seed), seed, kBudget);
    return std::make_tuple(res.decisions, res.total_steps, res.max_round);
  };
  EXPECT_EQ(once(77), once(77));
  // (different seeds usually differ, but are not required to)
}

TEST(BPRC, DecisionRoundsStaySmall) {
  // §6.3: constant expected number of rounds. Over 40 adversarial runs at
  // n=4, no run should need more than ~20 rounds (expected is ~2-4; 20 is
  // a >5-sigma allowance for the geometric tail at p >= 1 - 1/b).
  std::int64_t worst = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto res = run_consensus_sim(
        bprc_factory(4), {0, 1, 0, 1},
        std::make_unique<LeaderSuppressAdversary>(seed), seed, kBudget);
    ASSERT_TRUE(res.ok());
    worst = std::max(worst, res.max_round);
  }
  EXPECT_LE(worst, 20);
}

TEST(BPRC, BloomArrowVariantAgrees) {
  // Full protocol on top of the constructed (Bloom) arrow registers.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto res = run_consensus_sim(
        [](Runtime& rt) {
          return std::make_unique<BPRCConsensus>(
              rt, BPRCParams::standard(rt.nprocs()),
              BPRCConsensus::ArrowImpl::kBloom);
        },
        {0, 1, 1}, std::make_unique<RandomAdversary>(seed), seed, kBudget);
    EXPECT_TRUE(res.ok()) << "seed " << seed;
  }
}

class Lemma65Drift
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Lemma65Drift, NoRoundExceedsEarliestDecisionByMoreThanTwo) {
  // Lemma 6.5: "If any process decides in round r, then no process will
  // ever be in a round larger than r + 2." Observable form: the largest
  // local round any process reaches never exceeds the earliest decision
  // round by more than 2 (measured worst across the matrix: 1).
  const auto [n, advk] = GetParam();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto advs = standard_adversaries(seed * 7 + static_cast<std::uint64_t>(advk));
    SimRuntime rt(n, std::move(advs[static_cast<std::size_t>(advk)]), seed);
    BPRCConsensus protocol(rt, BPRCParams::standard(n));
    for (ProcId p = 0; p < n; ++p) {
      const int input = static_cast<int>(p) % 2;
      rt.spawn(p, [&protocol, input] { protocol.propose(input); });
    }
    ASSERT_EQ(rt.run(kBudget).reason, RunResult::Reason::kAllDone);
    std::int64_t earliest = std::numeric_limits<std::int64_t>::max();
    for (ProcId p = 0; p < n; ++p) {
      earliest = std::min(earliest, protocol.decision_round(p));
    }
    EXPECT_LE(protocol.max_round_reached(), earliest + 2)
        << "Lemma 6.5 drift bound violated at seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, Lemma65Drift,
                         ::testing::Combine(::testing::Values(2, 4, 6),
                                            ::testing::Range(0, 5)));

TEST(BPRC, ExhaustiveSchedulePrefixes_N2) {
  // Systematic coverage of the protocol's early interleavings, where the
  // initial-write/scan races live: every schedule prefix of length 12 for
  // n=2 (2^12 = 4096), each completed with round-robin. Safety must hold
  // in every single one.
  const int n = 2;
  const int depth = 12;
  std::vector<ProcId> prefix;
  std::function<void()> rec = [&] {
    if (static_cast<int>(prefix.size()) == depth) {
      const auto res = run_consensus_sim(
          bprc_factory(n), {0, 1},
          std::make_unique<ScriptedAdversary>(prefix), 1, kBudget);
      ASSERT_TRUE(res.ok()) << "prefix failed";
      return;
    }
    for (ProcId p = 0; p < n; ++p) {
      prefix.push_back(p);
      rec();
      prefix.pop_back();
    }
  };
  rec();
}

TEST(BPRC, ExhaustiveSchedulePrefixes_N3) {
  // 3^8 = 6561 prefixes at n=3 with a lone dissenter.
  const int n = 3;
  const int depth = 8;
  std::vector<ProcId> prefix;
  std::function<void()> rec = [&] {
    if (static_cast<int>(prefix.size()) == depth) {
      const auto res = run_consensus_sim(
          bprc_factory(n), {1, 0, 0},
          std::make_unique<ScriptedAdversary>(prefix), 2, kBudget);
      ASSERT_TRUE(res.ok()) << "prefix failed";
      return;
    }
    for (ProcId p = 0; p < n; ++p) {
      prefix.push_back(p);
      rec();
      prefix.pop_back();
    }
  };
  rec();
}

TEST(BPRC, ProposeRejectsNonBitInput) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimRuntime rt(1, std::make_unique<RoundRobinAdversary>(), 1);
        BPRCConsensus protocol(rt, BPRCParams::standard(1));
        rt.spawn(0, [&] { protocol.propose(2); });
        rt.run(1000);
      },
      "bit");
}

TEST(BPRC, RequiresKAtLeastTwo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), 1);
        BPRCConsensus protocol(rt, BPRCParams::standard(2, /*K=*/1));
      },
      "K >= 2");
}

}  // namespace
}  // namespace bprc
