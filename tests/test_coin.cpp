// Shared-coin tests (§3): deterministic unit tests of the decision logic,
// then statistical validation of Lemmas 3.1–3.4 in the simulator under
// benign and coin-attacking adversaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "coin/coin_logic.hpp"
#include "coin/shared_coin.hpp"
#include "coin/unbounded_coin.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"
#include "util/stats.hpp"

namespace bprc {
namespace {

TEST(CoinLogic, StandardParamsShape) {
  const CoinParams p = CoinParams::standard(5, 4);
  EXPECT_EQ(p.n, 5);
  EXPECT_EQ(p.b, 4);
  EXPECT_EQ(p.m, std::int64_t{100} * 100);  // (4*(b+1)*n)^2 = (4*5*5)^2
}

TEST(CoinLogic, ThresholdsExactlyAtBarrier) {
  const CoinParams p{3, 2, 1000};  // barrier = b*n = 6
  std::vector<std::int64_t> c{2, 2, 2};  // walk = 6: NOT strictly above
  EXPECT_EQ(coin_value(c, 0, p), CoinValue::kUndecided);
  c = {3, 2, 2};  // walk = 7 > 6
  EXPECT_EQ(coin_value(c, 0, p), CoinValue::kHeads);
  c = {-3, -2, -2};  // walk = -7 < -6
  EXPECT_EQ(coin_value(c, 0, p), CoinValue::kTails);
  c = {0, 0, 0};
  EXPECT_EQ(coin_value(c, 0, p), CoinValue::kUndecided);
}

TEST(CoinLogic, OwnOverflowForcesHeadsEvenAgainstTailsWalk) {
  const CoinParams p{2, 2, 10};  // m = 10, barrier = 4
  // Own counter at m+1: rule 1 fires before the walk rules.
  std::vector<std::int64_t> c{11, -9};
  EXPECT_EQ(coin_value(c, 0, p), CoinValue::kHeads);
  c = {-11, -9};  // walk = -20 < -4: tails territory...
  EXPECT_EQ(coin_value(c, 0, p), CoinValue::kHeads);  // ...but p0 overflowed
  // The same view read by the OTHER process (own counter in range) is
  // tails via rule 3.
  EXPECT_EQ(coin_value(c, 1, p), CoinValue::kTails);
}

TEST(CoinLogic, OwnCounterAtExactlyMIsNotOverflow) {
  const CoinParams p{2, 2, 10};
  std::vector<std::int64_t> c{10, 0};  // walk = 10 > 4
  EXPECT_EQ(coin_value(c, 0, p), CoinValue::kHeads);  // via rule 2, fine
  c = {10, -20};  // walk = -10 < -4, own counter still in range
  EXPECT_EQ(coin_value(c, 0, p), CoinValue::kTails);
}

TEST(CoinLogic, WalkStepSaturatesAtMPlusOne) {
  const CoinParams p{2, 2, 5};
  EXPECT_EQ(walk_step(5, true, p), 6);
  EXPECT_EQ(walk_step(6, true, p), 6);   // saturation
  EXPECT_EQ(walk_step(-6, false, p), -6);
  EXPECT_EQ(walk_step(0, false, p), -1);
  EXPECT_EQ(walk_step(6, false, p), 5);  // can come back down
}

TEST(CoinLogic, ToStringCoversAllValues) {
  EXPECT_STREQ(to_string(CoinValue::kHeads), "heads");
  EXPECT_STREQ(to_string(CoinValue::kTails), "tails");
  EXPECT_STREQ(to_string(CoinValue::kUndecided), "undecided");
}

// ---------------------------------------------------------------------------
// Statistical properties (Lemmas 3.1, 3.2)
// ---------------------------------------------------------------------------

struct TossOutcome {
  int heads = 0;
  int tails = 0;
  std::uint64_t walk_steps = 0;
  std::uint64_t overflows = 0;
  bool done = false;
};

TossOutcome toss_once(int n, int b, std::unique_ptr<Adversary> adv,
                      std::uint64_t seed) {
  SimRuntime rt(n, std::move(adv), seed);
  const CoinParams params = CoinParams::standard(n, b);
  SharedCoin coin(rt, params);
  std::vector<CoinValue> results(static_cast<std::size_t>(n),
                                 CoinValue::kUndecided);
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&coin, &results, p] {
      results[static_cast<std::size_t>(p)] = coin.toss();
    });
  }
  const RunResult res = rt.run(50'000'000);
  TossOutcome out;
  out.done = res.reason == RunResult::Reason::kAllDone;
  for (const auto v : results) {
    out.heads += v == CoinValue::kHeads;
    out.tails += v == CoinValue::kTails;
  }
  out.walk_steps = coin.walk_steps();
  out.overflows = coin.overflows();
  EXPECT_LE(coin.max_counter_magnitude(), params.m + 1)
      << "bounded counter left its domain";
  return out;
}

class CoinAgreement
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CoinAgreement, DisagreementStaysUnderLemma31Bound) {
  const auto [n, advk] = GetParam();
  const int b = 4;
  Proportion disagree;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    auto advs = standard_adversaries(seed * 31 + 7);
    const auto out =
        toss_once(n, b, std::move(advs[static_cast<std::size_t>(advk)]), seed);
    ASSERT_TRUE(out.done);
    ASSERT_EQ(out.heads + out.tails, n);  // everyone decided something
    disagree.add(out.heads != 0 && out.tails != 0);
  }
  // Lemma 3.1: disagreement probability ≤ 1/b = 0.25. With 60 trials the
  // Wilson lower bound must not exceed the bound (one-sided check).
  EXPECT_LT(disagree.wilson95().low, 1.0 / b)
      << "measured " << disagree.estimate();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CoinAgreement,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Values(0, 2, 4)));  // random, lockstep,
                                                      // coin-bias

TEST(CoinSteps, QuadraticInNUnderRandomSchedule) {
  // Lemma 3.2: expected walk steps O((b+1)^2 n^2). Check that steps/n^2
  // does not blow up across n (ratio between largest and smallest stays
  // within a small factor).
  const int b = 2;
  std::vector<double> per_n2;
  for (const int n : {2, 4, 8}) {
    RunningStat steps;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
      const auto out = toss_once(
          n, b, std::make_unique<RandomAdversary>(seed ^ 0x99), seed);
      ASSERT_TRUE(out.done);
      steps.add(static_cast<double>(out.walk_steps));
    }
    per_n2.push_back(steps.mean() / (n * n));
  }
  const double lo = *std::min_element(per_n2.begin(), per_n2.end());
  const double hi = *std::max_element(per_n2.begin(), per_n2.end());
  EXPECT_LT(hi / lo, 8.0) << "walk steps not scaling ~n^2";
  // And the absolute constant is in the right ballpark: ≤ 4·(b+1)²·n².
  EXPECT_LT(hi, 4.0 * (b + 1) * (b + 1));
}

TEST(CoinOverflow, NeverFiresWithStandardM) {
  // With m = (4(b+1)n)², an overflow would require a counter excursion of
  // ~16x the walk barrier; across this whole matrix it must never happen
  // (Lemma 3.4 puts it at well under 1e-3).
  std::uint64_t total_overflows = 0;
  for (const int n : {2, 4}) {
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
      const auto out = toss_once(
          n, 4, std::make_unique<CoinBiasAdversary>(seed), seed);
      ASSERT_TRUE(out.done);
      total_overflows += out.overflows;
    }
  }
  EXPECT_EQ(total_overflows, 0u);
}

TEST(CoinOverflow, TinyMForcesOverflowHeads) {
  // Degenerate m = 0: the first walk step overflows and the process must
  // answer heads through rule 1.
  SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), 3);
  CoinParams params{2, 4, 0};
  SharedCoin coin(rt, params);
  std::vector<CoinValue> results(2, CoinValue::kUndecided);
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&coin, &results, p] {
      results[static_cast<std::size_t>(p)] = coin.toss();
    });
  }
  ASSERT_EQ(rt.run(1'000'000).reason, RunResult::Reason::kAllDone);
  EXPECT_GE(coin.overflows(), 1u);
  for (const auto v : results) EXPECT_EQ(v, CoinValue::kHeads);
}

TEST(CoinDeterminism, SameSeedSameOutcome) {
  auto once = [](std::uint64_t seed) {
    const auto out = toss_once(3, 4, std::make_unique<RandomAdversary>(seed),
                               seed);
    return std::make_tuple(out.heads, out.tails, out.walk_steps);
  };
  EXPECT_EQ(once(12), once(12));
}

TEST(UnboundedCoin, AgreesAndTerminates) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SimRuntime rt(3, std::make_unique<RandomAdversary>(seed), seed);
    UnboundedCoin coin(rt, CoinParams::standard(3, 4));
    std::vector<CoinValue> results(3, CoinValue::kUndecided);
    for (ProcId p = 0; p < 3; ++p) {
      rt.spawn(p, [&coin, &results, p] {
        results[static_cast<std::size_t>(p)] = coin.toss();
      });
    }
    ASSERT_EQ(rt.run(50'000'000).reason, RunResult::Reason::kAllDone);
    for (const auto v : results) EXPECT_NE(v, CoinValue::kUndecided);
  }
}

TEST(CoinLogicDeath, ViewWidthMustMatchN) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const CoinParams p{3, 2, 10};
  const std::vector<std::int64_t> short_view{0, 0};
  EXPECT_DEATH((void)coin_value(short_view, 0, p), "width");
}

}  // namespace
}  // namespace bprc
