// Unit tests for the offline weak-memory SC checker and its artifacts.
//
// The recordings here are built by hand, action by action, so every edge
// family (po, rf, mo, fr) and every rejection path is pinned without any
// dependence on real-thread scheduling. End-to-end recordings from real
// native runs are covered by test_native_registers.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "verify/weakmem/recorder.hpp"
#include "verify/weakmem/sc_checker.hpp"

namespace bprc::weakmem {
namespace {

constexpr auto kLoad = MemAction::Kind::kLoad;
constexpr auto kStore = MemAction::Kind::kStore;
constexpr auto kRmw = MemAction::Kind::kRmw;

/// Appends an action through the recorder (which assigns seq).
void act(WeakMemRecorder& rec, ProcId thread, int loc, MemAction::Kind kind,
         std::uint64_t value, std::uint64_t rf, std::uint64_t mo) {
  MemAction a;
  a.thread = thread;
  a.location = loc;
  a.kind = kind;
  a.order = static_cast<std::uint8_t>(std::memory_order_seq_cst);
  a.value = value;
  a.rf = rf;
  a.mo = mo;
  rec.on_action(a);
}

TEST(WeakMem, EmptyRecordingIsSC) {
  WeakMemRecorder rec(2);
  const SCResult res = check_sc(rec.recording());
  EXPECT_TRUE(res.ok());
}

TEST(WeakMem, MessagePassingIsSC) {
  // T0: W data=42 (v1), W flag=1 (v1).  T1: R flag=1, R data=42.
  // Classic message passing: acyclic, and the SC order must place the
  // data write before the data read.
  WeakMemRecorder rec(2);
  const int data = rec.on_location("data", 0);
  const int flag = rec.on_location("flag", 0);
  act(rec, 0, data, kStore, 42, 0, 1);
  act(rec, 0, flag, kStore, 1, 0, 1);
  act(rec, 1, flag, kLoad, 1, 1, 0);
  act(rec, 1, data, kLoad, 42, 1, 0);
  const SCResult res = check_sc(rec.recording());
  EXPECT_TRUE(res.ok()) << res.witness;
  ASSERT_EQ(res.order.size(), 4u);
}

TEST(WeakMem, StoreBufferingCycleIsFlagged) {
  // The SB litmus: T0: W x (v1), R y = initial.  T1: W y (v1), R x =
  // initial. Both reads missing both writes is exactly the po ∪ fr cycle.
  WeakMemRecorder rec(2);
  const int x = rec.on_location("x", 0);
  const int y = rec.on_location("y", 0);
  act(rec, 0, x, kStore, 1, 0, 1);
  act(rec, 0, y, kLoad, 0, 0, 0);
  act(rec, 1, y, kStore, 1, 0, 1);
  act(rec, 1, x, kLoad, 0, 0, 0);
  const SCResult res = check_sc(rec.recording());
  EXPECT_TRUE(res.well_formed);
  EXPECT_FALSE(res.sc);
  EXPECT_NE(res.witness.find("cycle"), std::string::npos) << res.witness;
}

TEST(WeakMem, StaleReadAfterRmwChainIsFlagged) {
  // T0: RMW x v1→? ... actually: T1 reads version 0 *after* (in its own
  // program order) reading version 2 — a coherence regression: fr sends
  // the stale read before the first write, rf pulls it after the second.
  WeakMemRecorder rec(2);
  const int x = rec.on_location("x", 0);
  act(rec, 0, x, kStore, 1, 0, 1);
  act(rec, 0, x, kStore, 2, 0, 2);
  act(rec, 1, x, kLoad, 2, 2, 0);
  act(rec, 1, x, kLoad, 0, 0, 0);  // reads initial after seeing v2
  const SCResult res = check_sc(rec.recording());
  EXPECT_TRUE(res.well_formed);
  EXPECT_FALSE(res.sc);
}

TEST(WeakMem, UnflushedStoreIsRejected) {
  WeakMemRecorder rec(1);
  const int x = rec.on_location("x", 0);
  act(rec, 0, x, kStore, 1, 0, 0);  // mo = 0: never flushed
  const SCResult res = check_sc(rec.recording());
  EXPECT_FALSE(res.well_formed);
  EXPECT_NE(res.witness.find("flushed"), std::string::npos) << res.witness;
}

TEST(WeakMem, NonAtomicRmwIsRejected) {
  WeakMemRecorder rec(2);
  const int x = rec.on_location("x", 0);
  act(rec, 0, x, kStore, 1, 0, 1);
  act(rec, 0, x, kStore, 2, 0, 2);
  act(rec, 1, x, kRmw, 3, 0, 3);  // read v0 but wrote v3: lost updates
  const SCResult res = check_sc(rec.recording());
  EXPECT_FALSE(res.well_formed);
  EXPECT_NE(res.witness.find("RMW"), std::string::npos) << res.witness;
}

TEST(WeakMem, ReadValueMismatchIsRejected) {
  WeakMemRecorder rec(2);
  const int x = rec.on_location("x", 7);
  act(rec, 0, x, kStore, 1, 0, 1);
  act(rec, 1, x, kLoad, 9, 1, 0);  // claims rf v1 but value ≠ 1
  const SCResult res = check_sc(rec.recording());
  EXPECT_FALSE(res.well_formed);
}

TEST(WeakMem, PatchMoCompletesABufferedStore) {
  // The broken-relaxed protocol: store recorded with mo = 0, patched
  // when the emulated buffer drains — after which the recording is
  // complete and (in this single-threaded case) SC.
  WeakMemRecorder rec(1);
  const int x = rec.on_location("x", 0);
  MemAction a;
  a.thread = 0;
  a.location = x;
  a.kind = kStore;
  a.value = 5;
  const std::size_t idx = rec.on_action(a);
  rec.patch_mo(0, idx, 1);
  const SCResult res = check_sc(rec.recording());
  EXPECT_TRUE(res.ok()) << res.witness;
}

TEST(WeakMem, ArtifactRoundTripPreservesVerdict) {
  WeakMemRecorder rec(2);
  const int x = rec.on_location("x", 0);
  const int y = rec.on_location("shared y", 3);  // name with a space
  act(rec, 0, x, kStore, 1, 0, 1);
  act(rec, 0, y, kLoad, 3, 0, 0);
  act(rec, 1, y, kStore, 1, 0, 1);
  act(rec, 1, x, kLoad, 0, 0, 0);
  rec.recording().case_name = "unit-sb";
  const SCResult before = check_sc(rec.recording());
  EXPECT_FALSE(before.sc);

  const std::string path = testing::TempDir() + "weakmem_roundtrip.bprc-weakmem";
  ASSERT_TRUE(save_recording(rec.recording(), path));
  EXPECT_TRUE(is_weakmem_artifact(path));

  const auto loaded = load_recording(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->case_name, "unit-sb");
  ASSERT_EQ(loaded->locations.size(), 2u);
  EXPECT_EQ(loaded->locations[1].name, "shared y");
  EXPECT_EQ(loaded->locations[1].initial, 3u);
  EXPECT_EQ(loaded->total_actions(), 4u);

  const SCResult after = check_sc(*loaded);
  EXPECT_EQ(after.sc, before.sc);
  EXPECT_EQ(after.well_formed, before.well_formed);
  EXPECT_EQ(after.witness, before.witness);
  std::remove(path.c_str());
}

TEST(WeakMem, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "weakmem_garbage.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("not a weakmem artifact\n", f);
    fclose(f);
  }
  EXPECT_FALSE(is_weakmem_artifact(path));
  EXPECT_FALSE(load_recording(path).has_value());
  EXPECT_FALSE(load_recording("/nonexistent/nope").has_value());
  std::remove(path.c_str());
}

TEST(WeakMem, DescribeActionIsReadable) {
  WeakMemRecorder rec(1);
  const int x = rec.on_location("x", 0);
  MemAction a;
  a.thread = 0;
  a.location = x;
  a.kind = kLoad;
  a.order = static_cast<std::uint8_t>(std::memory_order_acquire);
  a.value = 4;
  a.rf = 2;
  rec.on_action(a);
  const std::string s = describe_action(rec.recording(),
                                        rec.recording().logs[0][0]);
  EXPECT_NE(s.find("T0#0"), std::string::npos) << s;
  EXPECT_NE(s.find("x=4"), std::string::npos) << s;
  EXPECT_NE(s.find("acquire"), std::string::npos) << s;
}

}  // namespace
}  // namespace bprc::weakmem
