// Unit tests for the stackful fiber substrate.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "runtime/fiber.hpp"

namespace bprc {
namespace {

TEST(Fiber, BodyDoesNotRunUntilFirstResume) {
  bool ran = false;
  Fiber f([&] { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, YieldSuspendsAndResumeContinues) {
  std::vector<int> trace;
  Fiber* self = nullptr;
  Fiber f([&] {
    trace.push_back(1);
    self->yield();
    trace.push_back(2);
    self->yield();
    trace.push_back(3);
  });
  self = &f;
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1}));
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2}));
  f.resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, InterleavesTwoFibers) {
  std::vector<int> trace;
  Fiber* fa = nullptr;
  Fiber* fb = nullptr;
  Fiber a([&] {
    trace.push_back(10);
    fa->yield();
    trace.push_back(11);
  });
  Fiber b([&] {
    trace.push_back(20);
    fb->yield();
    trace.push_back(21);
  });
  fa = &a;
  fb = &b;
  a.resume();
  b.resume();
  a.resume();
  b.resume();
  EXPECT_EQ(trace, (std::vector<int>{10, 20, 11, 21}));
}

TEST(Fiber, ManyFibersRoundRobin) {
  constexpr int kFibers = 64;
  constexpr int kRounds = 10;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<Fiber*> handles(kFibers, nullptr);
  std::vector<int> counts(kFibers, 0);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&, i] {
      for (int r = 0; r < kRounds; ++r) {
        ++counts[static_cast<std::size_t>(i)];
        handles[static_cast<std::size_t>(i)]->yield();
      }
    }));
    handles[static_cast<std::size_t>(i)] = fibers.back().get();
  }
  for (int r = 0; r <= kRounds; ++r) {
    for (auto& f : fibers) {
      if (!f->finished()) f->resume();
    }
  }
  for (int i = 0; i < kFibers; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)], kRounds);
    EXPECT_TRUE(fibers[static_cast<std::size_t>(i)]->finished());
  }
}

TEST(Fiber, LocalStateSurvivesYields) {
  // Stack-allocated state must be preserved across arbitrary switches.
  Fiber* self = nullptr;
  long long result = 0;
  Fiber f([&] {
    long long acc = 1;
    for (int i = 1; i <= 20; ++i) {
      acc = acc * 3 + i;
      self->yield();
    }
    result = acc;
  });
  self = &f;
  while (!f.finished()) f.resume();
  long long expect = 1;
  for (int i = 1; i <= 20; ++i) expect = expect * 3 + i;
  EXPECT_EQ(result, expect);
}

TEST(Fiber, DeepCallStacksWork) {
  Fiber* self = nullptr;
  int leaf_hits = 0;
  // Recursion with a yield at the bottom exercises a deep saved stack.
  std::function<void(int)> recurse = [&](int depth) {
    char pad[512];  // force real frame growth
    pad[0] = static_cast<char>(depth);
    if (depth == 0) {
      ++leaf_hits;
      (void)pad;
      self->yield();
      return;
    }
    recurse(depth - 1);
  };
  Fiber f([&] {
    for (int i = 0; i < 5; ++i) recurse(100);
  });
  self = &f;
  while (!f.finished()) f.resume();
  EXPECT_EQ(leaf_hits, 5);
}

TEST(Fiber, DestructorsRunOnNormalCompletion) {
  int destroyed = 0;
  struct Guard {
    int* counter;
    ~Guard() { ++*counter; }
  };
  Fiber f([&] { Guard g{&destroyed}; });
  f.resume();
  EXPECT_EQ(destroyed, 1);
}

TEST(FiberDeath, ResumingFinishedFiberAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Fiber f([] {});
        f.resume();
        f.resume();  // invalid
      },
      "finished");
}

}  // namespace
}  // namespace bprc
