// Register substrate tests. The centerpiece: Bloom's 2W2R construction is
// checked for linearizability over EVERY interleaving of small scenarios
// (exhaustive schedule enumeration in the simulator) plus randomized and
// thread-runtime stress — the construction's atomicity is a theorem we
// re-verify, not an assumption.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "registers/bloom_2w2r.hpp"
#include "registers/register.hpp"
#include "registers/toggle.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/thread_runtime.hpp"
#include "verify/linearizability.hpp"

namespace bprc {
namespace {

TEST(SWMR, InitialValueReadable) {
  SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), 1);
  SWMRRegister<int> reg(rt, 0, 42);
  int got = -1;
  rt.spawn(1, [&] { got = reg.read(); });
  rt.run(100);
  EXPECT_EQ(got, 42);
}

TEST(SWMR, WriteThenReadSequential) {
  SimRuntime rt(2, std::make_unique<ScriptedAdversary>(
                       std::vector<ProcId>{0, 1}), 1);
  SWMRRegister<int> reg(rt, 0, 0);
  int got = -1;
  rt.spawn(0, [&] { reg.write(9); });
  rt.spawn(1, [&] { got = reg.read(); });
  rt.run(100);
  EXPECT_EQ(got, 9);
}

TEST(SWMR, PeekDoesNotCostASimStep) {
  SimRuntime rt(1, std::make_unique<RoundRobinAdversary>(), 1);
  SWMRRegister<int> reg(rt, 0, 5);
  EXPECT_EQ(reg.peek(), 5);
  EXPECT_EQ(rt.total_steps(), 0u);
}

TEST(MRMW, AnyProcessMayWrite) {
  SimRuntime rt(3, std::make_unique<RoundRobinAdversary>(), 1);
  MRMWRegister<int> reg(rt, 0);
  for (ProcId p = 0; p < 3; ++p) {
    rt.spawn(p, [&reg, p] { reg.write(p + 1); });
  }
  rt.run(100);
  const int v = reg.peek();
  EXPECT_TRUE(v == 1 || v == 2 || v == 3);
}

TEST(Toggled, ConsecutiveWritesAlwaysDiffer) {
  Toggled<int> a{7, false, 0};
  const auto b = next_toggled(a, 7);  // same payload
  EXPECT_NE(a, b);                    // toggle bit separates them
  const auto c = next_toggled(b, 7);
  EXPECT_NE(b, c);
  EXPECT_EQ(a.toggle, c.toggle);
  EXPECT_EQ(c.ghost_index, 2u);
}

TEST(Toggled, GhostIndexExcludedFromEquality) {
  const Toggled<int> a{7, true, 3};
  const Toggled<int> b{7, true, 9};
  EXPECT_EQ(a, b);  // algorithms cannot see the ghost
}

// ---------------------------------------------------------------------------
// Bloom 2W2R linearizability
// ---------------------------------------------------------------------------

struct BloomScenario {
  int writes_per_writer = 1;  // writers are procs 0 and 1
  int reads_r2 = 1;           // reads performed by proc 2
  int reads_r3 = 1;           // reads performed by proc 3
};

/// Runs the scenario under the given schedule and returns the recorded
/// high-level history. Writer p writes values p*100 + k.
std::vector<RegOp> run_bloom(const BloomScenario& sc,
                             std::unique_ptr<Adversary> adv,
                             std::uint64_t seed) {
  SimRuntime rt(4, std::move(adv), seed);
  Bloom2W2R<std::uint64_t> reg(rt, 0, 1, /*initial=*/0);
  RegOpRecorder rec(rt);
  for (ProcId w = 0; w < 2; ++w) {
    rt.spawn(w, [&, w] {
      for (int k = 1; k <= sc.writes_per_writer; ++k) {
        const std::uint64_t v = static_cast<std::uint64_t>(w) * 100 +
                                static_cast<std::uint64_t>(k);
        rec.write(w, v, [&] { reg.write(v); });
      }
    });
  }
  for (ProcId r = 2; r < 4; ++r) {
    const int reads = (r == 2) ? sc.reads_r2 : sc.reads_r3;
    rt.spawn(r, [&, r, reads] {
      for (int k = 0; k < reads; ++k) {
        rec.read(r, [&] { return reg.read(); });
      }
    });
  }
  rt.run(1'000'000);
  return rec.take();
}

TEST(Bloom, SequentialSemantics) {
  // Alternating writers, then readers, fully serialized.
  const std::vector<ProcId> script{0, 0, 1, 1, 2, 2, 3, 3};
  const auto hist = run_bloom({1, 1, 1},
                              std::make_unique<ScriptedAdversary>(script), 1);
  const auto res = check_register_linearizable(hist, 0);
  EXPECT_TRUE(res.ok) << res.witness;
  // The reads happened strictly after both writes; they must have read
  // the second writer's value (it wrote last, serialized).
  for (const auto& op : hist) {
    if (!op.is_write) {
      EXPECT_EQ(op.value, 101u);
    }
  }
}

/// Enumerates every interleaving of the given per-process step counts and
/// calls fn(schedule).
void for_each_interleaving(std::vector<int> remaining,
                           std::vector<ProcId>& prefix,
                           const std::function<void(const std::vector<ProcId>&)>& fn) {
  bool any = false;
  for (ProcId p = 0; p < static_cast<ProcId>(remaining.size()); ++p) {
    if (remaining[static_cast<std::size_t>(p)] == 0) continue;
    any = true;
    --remaining[static_cast<std::size_t>(p)];
    prefix.push_back(p);
    for_each_interleaving(remaining, prefix, fn);
    prefix.pop_back();
    ++remaining[static_cast<std::size_t>(p)];
  }
  if (!any) fn(prefix);
}

TEST(Bloom, ExhaustiveSchedules_1Write1Read) {
  // Every interleaving of: 2 writers × 1 write (2 primitive steps each),
  // 2 readers × 1 read (3 primitive steps each): 10!/(2!2!3!3!) = 25200
  // schedules, each run through the full simulator and the checker.
  int schedules = 0;
  std::vector<ProcId> prefix;
  for_each_interleaving(
      {2, 2, 3, 3}, prefix, [&](const std::vector<ProcId>& schedule) {
        ++schedules;
        const auto hist = run_bloom(
            {1, 1, 1}, std::make_unique<ScriptedAdversary>(schedule), 1);
        const auto res = check_register_linearizable(hist, 0);
        ASSERT_TRUE(res.ok) << "schedule #" << schedules << res.witness;
      });
  EXPECT_EQ(schedules, 25200);
}

TEST(Bloom, ExhaustiveSchedules_2Writes1Read) {
  // 2 writers × 2 writes (4 steps each), 1 reader × 1 read (3 steps):
  // 11!/(4!4!3!) = 11550 schedules, enumerated exactly.
  int schedules = 0;
  std::vector<ProcId> prefix;
  for_each_interleaving(
      {4, 4, 3, 0}, prefix, [&](const std::vector<ProcId>& schedule) {
        ++schedules;
        const auto hist = run_bloom(
            {2, 1, 0}, std::make_unique<ScriptedAdversary>(schedule), 1);
        const auto res = check_register_linearizable(hist, 0);
        ASSERT_TRUE(res.ok) << res.witness;
      });
  EXPECT_EQ(schedules, 11550);
}

class BloomRandomSchedules : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BloomRandomSchedules, Linearizable) {
  const std::uint64_t seed = GetParam();
  const auto hist = run_bloom({4, 5, 5},
                              std::make_unique<RandomAdversary>(seed), seed);
  const auto res = check_register_linearizable(hist, 0);
  EXPECT_TRUE(res.ok) << res.witness;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BloomRandomSchedules,
                         ::testing::Range<std::uint64_t>(0, 200));

TEST(Bloom, ThreadRuntimeStress) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    ThreadRuntime rt(4, seed, /*yield_prob=*/0.3);
    Bloom2W2R<std::uint64_t> reg(rt, 0, 1, 0);
    RegOpRecorder rec(rt);
    for (ProcId w = 0; w < 2; ++w) {
      rt.spawn(w, [&, w] {
        for (int k = 1; k <= 5; ++k) {
          const std::uint64_t v = static_cast<std::uint64_t>(w) * 100 +
                                  static_cast<std::uint64_t>(k);
          rec.write(w, v, [&] { reg.write(v); });
        }
      });
    }
    for (ProcId r = 2; r < 4; ++r) {
      rt.spawn(r, [&] {
        for (int k = 0; k < 6; ++k) {
          rec.read(rt.self(), [&] { return reg.read(); });
        }
      });
    }
    rt.run(10'000'000);
    const auto hist = rec.take();
    const auto res = check_register_linearizable(hist, 0);
    EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.witness;
  }
}

// ---------------------------------------------------------------------------
// Weak register semantics (docs/REGISTER_SEMANTICS.md)
// ---------------------------------------------------------------------------

/// Scripted scheduling plus scripted stale-read resolutions; records the
/// option count of every StaleRead the registers raise so tests can pin
/// the exact read-return envelope of each semantics level.
class StaleProbeAdversary final : public Adversary {
 public:
  StaleProbeAdversary(std::vector<ProcId> schedule, std::vector<int> choices)
      : sched_(std::move(schedule)), choices_(std::move(choices)) {}

  ProcId pick(SimCtl& ctl) override { return sched_.pick(ctl); }
  std::string name() const override { return "stale-probe"; }
  int resolve_read(SimCtl&, const StaleRead& sr) override {
    options_seen.push_back(sr.options);
    const std::size_t i = options_seen.size() - 1;
    return i < choices_.size() ? choices_[i] : 0;
  }

  std::vector<int> options_seen;  ///< one entry per weakened read raised

 private:
  ScriptedAdversary sched_;
  std::vector<int> choices_;
};

/// One write racing one read: proc 0 announces write(20) and parks at its
/// checkpoint; proc 1 reads inside the open window; proc 0 then commits.
/// Returns the value the read served; `options_seen` reports the raised
/// envelopes.
int overlapped_read(RegisterSemantics sem, int choice,
                    std::vector<int>* options_seen) {
  auto adv = std::make_unique<StaleProbeAdversary>(
      std::vector<ProcId>{0, 1, 1, 0}, std::vector<int>{choice});
  StaleProbeAdversary* probe = adv.get();
  SimRuntime rt(2, std::move(adv), 1);
  rt.set_register_semantics(sem);  // before construction: registers cache it
  SWMRRegister<int> reg(rt, 0, /*initial=*/10);
  int got = -1;
  rt.spawn(0, [&] { reg.write(20); });
  rt.spawn(1, [&] { got = reg.read(); });
  rt.run(100);
  if (options_seen != nullptr) *options_seen = probe->options_seen;
  return got;
}

TEST(WeakSemantics, RegularReadServesCommittedOrPending) {
  // Regular envelope: exactly two options — the last committed value
  // (choice 0, the atomic answer) or the in-flight write (choice 1).
  std::vector<int> options;
  EXPECT_EQ(overlapped_read(RegisterSemantics::kRegular, 0, &options), 10);
  EXPECT_EQ(options, std::vector<int>({2}));
  EXPECT_EQ(overlapped_read(RegisterSemantics::kRegular, 1, &options), 20);
  EXPECT_EQ(options, std::vector<int>({2}));
}

TEST(WeakSemantics, SafeWithNoHistoryMatchesRegularEnvelope) {
  // Before any write retires into the history ring, safe semantics has
  // nothing extra to serve: the envelope collapses to regular's.
  std::vector<int> options;
  EXPECT_EQ(overlapped_read(RegisterSemantics::kSafe, 0, &options), 10);
  EXPECT_EQ(options, std::vector<int>({2}));
  EXPECT_EQ(overlapped_read(RegisterSemantics::kSafe, 1, &options), 20);
}

TEST(WeakSemantics, AtomicSemanticsNeverConsultTheAdversary) {
  // The same overlapping schedule under atomic semantics: the read serves
  // the committed value and no StaleRead is ever raised.
  std::vector<int> options;
  EXPECT_EQ(overlapped_read(RegisterSemantics::kAtomic, 1, &options), 10);
  EXPECT_TRUE(options.empty());
}

TEST(WeakSemantics, SafeReadServesHistoryRing) {
  // Writer commits 1, 2, 3 (retiring 0, 1, 2 into the ring), then parks
  // mid-write(4). Safe options = 2 + 3 retired values; the choice map is
  // 0 -> committed, 1 -> pending, k >= 2 -> (k-1)-th most recent retiree.
  const int expected[] = {3, 4, 2, 1, 0};
  for (int choice = 0; choice < 5; ++choice) {
    auto adv = std::make_unique<StaleProbeAdversary>(
        std::vector<ProcId>{0, 0, 0, 0, 1, 1, 0}, std::vector<int>{choice});
    StaleProbeAdversary* probe = adv.get();
    SimRuntime rt(2, std::move(adv), 1);
    rt.set_register_semantics(RegisterSemantics::kSafe);
    SWMRRegister<int> reg(rt, 0, /*initial=*/0);
    int got = -1;
    rt.spawn(0, [&] {
      for (int v = 1; v <= 4; ++v) reg.write(v);
    });
    rt.spawn(1, [&] { got = reg.read(); });
    rt.run(100);
    ASSERT_EQ(probe->options_seen, std::vector<int>({5})) << "choice " << choice;
    EXPECT_EQ(got, expected[choice]) << "choice " << choice;
  }
}

TEST(WeakSemantics, NoConcurrentWriteAllSemanticsAgree) {
  // Fully serialized write-then-read: the window is closed by the time
  // the read runs, so every semantics level returns the committed value
  // and the adversary is never consulted — the agreement case the
  // Lamport hierarchy guarantees.
  for (const RegisterSemantics sem :
       {RegisterSemantics::kAtomic, RegisterSemantics::kRegular,
        RegisterSemantics::kSafe}) {
    auto adv = std::make_unique<StaleProbeAdversary>(
        std::vector<ProcId>{0, 0, 1, 1}, std::vector<int>{1});
    StaleProbeAdversary* probe = adv.get();
    SimRuntime rt(2, std::move(adv), 1);
    rt.set_register_semantics(sem);
    SWMRRegister<int> reg(rt, 0, /*initial=*/10);
    int got = -1;
    rt.spawn(0, [&] { reg.write(20); });
    rt.spawn(1, [&] { got = reg.read(); });
    rt.run(100);
    EXPECT_EQ(got, 20) << to_string(sem);
    EXPECT_TRUE(probe->options_seen.empty()) << to_string(sem);
  }
}

TEST(WeakSemantics, MrmwAndReadIntoShareTheEnvelope) {
  // The MRMW template and the allocation-free read_into path weaken
  // identically to SWMR::read.
  for (const int choice : {0, 1}) {
    auto adv = std::make_unique<StaleProbeAdversary>(
        std::vector<ProcId>{0, 1, 1, 0}, std::vector<int>{choice});
    SimRuntime rt(2, std::move(adv), 1);
    rt.set_register_semantics(RegisterSemantics::kRegular);
    MRMWRegister<int> mr(rt, /*initial=*/10);
    int got = -1;
    rt.spawn(0, [&] { mr.write(20); });
    rt.spawn(1, [&] { got = mr.read(); });
    rt.run(100);
    EXPECT_EQ(got, choice == 0 ? 10 : 20);
  }
  for (const int choice : {0, 1}) {
    auto adv = std::make_unique<StaleProbeAdversary>(
        std::vector<ProcId>{0, 1, 1, 0}, std::vector<int>{choice});
    SimRuntime rt(2, std::move(adv), 1);
    rt.set_register_semantics(RegisterSemantics::kRegular);
    SWMRRegister<int> reg(rt, 0, /*initial=*/10);
    int got = -1;
    rt.spawn(0, [&] { reg.write(20); });
    rt.spawn(1, [&] { reg.read_into(got); });
    rt.run(100);
    EXPECT_EQ(got, choice == 0 ? 10 : 20);
  }
}

TEST(BloomDeath, ThirdWriterRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimRuntime rt(3, std::make_unique<RoundRobinAdversary>(), 1);
        Bloom2W2R<int> reg(rt, 0, 1, 0);
        rt.spawn(2, [&] { reg.write(1); });
        rt.run(100);
      },
      "non-writer");
}

}  // namespace
}  // namespace bprc
