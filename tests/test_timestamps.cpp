// Bounded sequential timestamp system tests: order isomorphism with
// unbounded integer timestamps over long random live/die histories — the
// property that makes the bounded domain usable at all.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "timestamp/bounded_timestamps.hpp"
#include "util/rng.hpp"

namespace bprc {
namespace {

using Label = BoundedTimestampSystem::Label;

TEST(BoundedTS, DigitDominanceIsACycle) {
  EXPECT_TRUE(BoundedTimestampSystem::digit_dominates(1, 0));
  EXPECT_TRUE(BoundedTimestampSystem::digit_dominates(2, 1));
  EXPECT_TRUE(BoundedTimestampSystem::digit_dominates(0, 2));
  EXPECT_FALSE(BoundedTimestampSystem::digit_dominates(0, 1));
  EXPECT_FALSE(BoundedTimestampSystem::digit_dominates(1, 2));
  EXPECT_FALSE(BoundedTimestampSystem::digit_dominates(2, 0));
  EXPECT_FALSE(BoundedTimestampSystem::digit_dominates(1, 1));
}

TEST(BoundedTS, PrecedesComparesFirstDifference) {
  BoundedTimestampSystem ts(3);
  EXPECT_TRUE(ts.precedes({0, 0, 0}, {1, 0, 0}));
  EXPECT_FALSE(ts.precedes({1, 0, 0}, {0, 0, 0}));
  EXPECT_TRUE(ts.precedes({2, 0, 0}, {0, 0, 0}));  // 0 dominates 2
  EXPECT_TRUE(ts.precedes({1, 1, 0}, {1, 2, 0}));  // tie at top, recurse
  EXPECT_TRUE(ts.precedes({1, 2, 2}, {1, 2, 0}));
}

TEST(BoundedTS, FreshLabelDominatesSingleton) {
  BoundedTimestampSystem ts(2);
  const Label zero = ts.initial_label();
  const Label fresh = ts.new_label({zero});
  EXPECT_TRUE(ts.precedes(zero, fresh));
}

TEST(BoundedTS, DomainIsBounded) {
  BoundedTimestampSystem ts(4);
  EXPECT_EQ(ts.domain_size(), 81u);  // 3^4 — fixed, n-only
  EXPECT_EQ(ts.depth(), 4);
}

TEST(BoundedTS, SingleHolderCyclesForever) {
  // One live label refreshed 1000 times: every fresh label must dominate
  // its predecessor, with only 3 label values ever used (depth 1).
  BoundedTimestampSystem ts(1);
  Label current = ts.initial_label();
  std::set<Label> used;
  for (int i = 0; i < 1000; ++i) {
    const Label fresh = ts.new_label({current});
    ASSERT_TRUE(ts.precedes(current, fresh)) << "iteration " << i;
    used.insert(fresh);
    current = fresh;
  }
  EXPECT_LE(used.size(), 3u);
}

/// The main property: run a long history of label refreshes for n
/// holders; at every step the fresh label must dominate all live labels,
/// and the bounded order must match ground-truth integer timestamps.
void run_history(int n, std::uint64_t seed, int steps,
                 bool rotate_deterministically) {
  BoundedTimestampSystem ts(n);
  Rng rng(seed);
  std::vector<Label> labels(static_cast<std::size_t>(n),
                            ts.initial_label());
  std::vector<std::int64_t> ghost(static_cast<std::size_t>(n), 0);
  for (int step = 1; step <= steps; ++step) {
    const int p = rotate_deterministically
                      ? step % n
                      : static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const Label fresh = ts.new_label(labels);
    for (int q = 0; q < n; ++q) {
      const auto& old = labels[static_cast<std::size_t>(q)];
      ASSERT_NE(old, fresh) << "fresh label collided at step " << step;
      ASSERT_TRUE(ts.precedes(old, fresh))
          << "fresh label failed to dominate holder " << q << " at step "
          << step << " (n=" << n << ", seed=" << seed << ")";
    }
    labels[static_cast<std::size_t>(p)] = fresh;
    ghost[static_cast<std::size_t>(p)] = step;
    // Bounded order == ghost integer order, for every distinct pair.
    for (int x = 0; x < n; ++x) {
      for (int y = 0; y < n; ++y) {
        if (labels[static_cast<std::size_t>(x)] ==
            labels[static_cast<std::size_t>(y)]) {
          continue;
        }
        ASSERT_EQ(ts.precedes(labels[static_cast<std::size_t>(x)],
                              labels[static_cast<std::size_t>(y)]),
                  ghost[static_cast<std::size_t>(x)] <
                      ghost[static_cast<std::size_t>(y)])
            << "order mismatch at step " << step;
      }
    }
  }
}

class BoundedTSHistory
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BoundedTSHistory, RandomRefreshOrderMatchesIntegers) {
  const auto [n, seed] = GetParam();
  run_history(n, seed, /*steps=*/1500, /*rotate=*/false);
}

TEST_P(BoundedTSHistory, RoundRobinRefreshOrderMatchesIntegers) {
  const auto [n, seed] = GetParam();
  run_history(n, seed, /*steps=*/1500, /*rotate=*/true);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BoundedTSHistory,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(BoundedTS, SkewedRefreshPattern) {
  // One hot holder refreshing 10x as often as the rest — exercises deep
  // recursion inside one dominance class.
  const int n = 5;
  BoundedTimestampSystem ts(n);
  Rng rng(99);
  std::vector<Label> labels(n, ts.initial_label());
  std::vector<std::int64_t> ghost(n, 0);
  for (int step = 1; step <= 3000; ++step) {
    const int p = rng.below(10) < 9 ? 0 : static_cast<int>(rng.below(n));
    const Label fresh = ts.new_label(labels);
    for (int q = 0; q < n; ++q) {
      if (labels[static_cast<std::size_t>(q)] == fresh) continue;
      ASSERT_TRUE(ts.precedes(labels[static_cast<std::size_t>(q)], fresh));
    }
    labels[static_cast<std::size_t>(p)] = fresh;
    ghost[static_cast<std::size_t>(p)] = step;
  }
}

TEST(BoundedTSDeath, OversubscriptionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  BoundedTimestampSystem ts(2);
  const std::vector<Label> too_many(5, ts.initial_label());
  EXPECT_DEATH((void)ts.new_label(too_many), "live labels");
}

}  // namespace
}  // namespace bprc
