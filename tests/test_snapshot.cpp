// Scannable-memory tests: the P1/P2/P3 properties of Section 2, checked
// over recorded histories from adversarial simulator runs and thread-
// runtime stress, for both arrow implementations, plus the unbounded
// baseline snapshot.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/thread_runtime.hpp"
#include "snapshot/baseline_snapshot.hpp"
#include "snapshot/scannable_memory.hpp"
#include "verify/snapshot_props.hpp"

namespace bprc {
namespace {

using Arrow = ScannableMemory<int>::ArrowImpl;

TEST(ScannableMemory, SingleProcessScanSeesOwnWrite) {
  SimRuntime rt(1, std::make_unique<RoundRobinAdversary>(), 1);
  ScannableMemory<int> mem(rt, 0);
  std::vector<int> view;
  rt.spawn(0, [&] {
    mem.write(7);
    view = mem.scan();
  });
  rt.run(1000);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0], 7);
}

TEST(ScannableMemory, ScanReturnsInitialValuesBeforeAnyWrite) {
  SimRuntime rt(3, std::make_unique<RoundRobinAdversary>(), 1);
  ScannableMemory<int> mem(rt, 42);
  std::vector<int> view;
  rt.spawn(0, [&] { view = mem.scan(); });
  rt.run(1000);
  EXPECT_EQ(view, (std::vector<int>{42, 42, 42}));
}

TEST(ScannableMemory, SequentialWritesVisibleToLaterScan) {
  SimRuntime rt(3, std::make_unique<ScriptedAdversary>(std::vector<ProcId>{
                       0, 0, 0, 1, 1, 1}),
                1);
  ScannableMemory<int> mem(rt, 0);
  std::vector<int> view;
  rt.spawn(0, [&] { mem.write(10); });
  rt.spawn(1, [&] { mem.write(20); });
  rt.spawn(2, [&] { view = mem.scan(); });
  rt.run(10000);
  EXPECT_EQ(view[0], 10);
  EXPECT_EQ(view[1], 20);
  EXPECT_EQ(view[2], 0);
}

TEST(ScannableMemory, RepeatedPayloadsStillDetected) {
  // The toggle bit must make consecutive identical payloads distinct: a
  // scan's ghost view advances even when the user value repeats.
  SnapshotHistory hist;
  SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), 1);
  ScannableMemory<int> mem(rt, 0, Arrow::kNative, &hist);
  rt.spawn(0, [&] {
    for (int k = 0; k < 5; ++k) mem.write(99);  // same payload every time
  });
  rt.spawn(1, [&] {
    for (int k = 0; k < 5; ++k) mem.scan();
  });
  rt.run(100000);
  ASSERT_EQ(hist.writes.size(), 5u);
  for (std::size_t i = 0; i < hist.writes.size(); ++i) {
    EXPECT_EQ(hist.writes[i].index, i + 1);  // distinct ghost indices
  }
  if (auto err = check_snapshot_properties(hist)) FAIL() << *err;
}

/// Workload: every process alternates write(value)/scan for `ops` rounds —
/// the access pattern of the consensus protocol, under which scans must
/// make progress.
SnapshotHistory run_workload(int n, std::unique_ptr<Adversary> adv,
                             std::uint64_t seed, int ops, Arrow arrows) {
  SnapshotHistory hist;
  SimRuntime rt(n, std::move(adv), seed);
  ScannableMemory<int> mem(rt, 0, arrows, &hist);
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&rt, &mem, p, ops] {
      for (int k = 0; k < ops; ++k) {
        mem.write(static_cast<int>(p) * 1000 + k);
        mem.scan();
      }
    });
  }
  const RunResult res = rt.run(2'000'000);
  EXPECT_EQ(res.reason, RunResult::Reason::kAllDone)
      << "scan livelocked under the alternating workload";
  return hist;
}

class SnapshotProperties
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(SnapshotProperties, P123HoldUnderAdversaries) {
  const auto [n, advk, seed] = GetParam();
  auto advs = standard_adversaries(seed);
  auto hist = run_workload(n, std::move(advs[static_cast<std::size_t>(advk)]),
                           seed, /*ops=*/6, Arrow::kNative);
  EXPECT_GT(hist.scans.size(), 0u);
  if (auto err = check_snapshot_properties(hist)) FAIL() << *err;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SnapshotProperties,
    ::testing::Combine(::testing::Values(2, 3, 5, 8), ::testing::Range(0, 5),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

class SnapshotBloomArrows : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotBloomArrows, P123HoldWithConstructedArrows) {
  const std::uint64_t seed = GetParam();
  auto hist = run_workload(3, std::make_unique<RandomAdversary>(seed), seed,
                           /*ops=*/5, Arrow::kBloom);
  if (auto err = check_snapshot_properties(hist)) FAIL() << *err;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotBloomArrows,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(ScannableMemory, ThreadRuntimeStressP123) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SnapshotHistory hist;
    ThreadRuntime rt(4, seed, /*yield_prob=*/0.25);
    ScannableMemory<int> mem(rt, 0, Arrow::kNative, &hist);
    for (ProcId p = 0; p < 4; ++p) {
      rt.spawn(p, [&rt, &mem, p] {
        for (int k = 0; k < 8; ++k) {
          mem.write(static_cast<int>(p) * 1000 + k);
          mem.scan();
        }
      });
    }
    const RunResult res = rt.run(50'000'000);
    ASSERT_EQ(res.reason, RunResult::Reason::kAllDone);
    if (auto err = check_snapshot_properties(hist)) {
      FAIL() << "seed " << seed << ": " << *err;
    }
  }
}

TEST(ScannableMemory, ScannerTerminatesOnceWritersStop) {
  // The paper's progress condition concerns endless NEW writes only; once
  // the writers stop, every scan must terminate.
  SimRuntime rt(3, std::make_unique<RandomAdversary>(7), 7);
  ScannableMemory<int> mem(rt, 0);
  int scans_done = 0;
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&mem, p] {
      for (int k = 0; k < 30; ++k) mem.write(static_cast<int>(p) + k);
    });
  }
  rt.spawn(2, [&] {
    for (int k = 0; k < 10; ++k) {
      mem.scan();
      ++scans_done;
    }
  });
  const RunResult res = rt.run(1'000'000);
  EXPECT_EQ(res.reason, RunResult::Reason::kAllDone);
  EXPECT_EQ(scans_done, 10);
}

TEST(ScannableMemory, ScanRetriesAreCountedUnderContention) {
  SimRuntime rt(2, std::make_unique<RandomAdversary>(3), 3);
  ScannableMemory<int> mem(rt, 0);
  rt.spawn(0, [&] {
    for (int k = 0; k < 200; ++k) mem.write(k);
  });
  rt.spawn(1, [&] {
    for (int k = 0; k < 5; ++k) mem.scan();
  });
  rt.run(1'000'000);
  // Not asserting an exact count (schedule-dependent); the retry path must
  // at least have been exercised under this contention.
  EXPECT_GE(mem.scan_retries(), 1u);
}

TEST(UnboundedSnapshot, P123HoldToo) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SnapshotHistory hist;
    SimRuntime rt(4, std::make_unique<RandomAdversary>(seed), seed);
    UnboundedSnapshot<int> mem(rt, 0, &hist);
    for (ProcId p = 0; p < 4; ++p) {
      rt.spawn(p, [&rt, &mem, p] {
        for (int k = 0; k < 6; ++k) {
          mem.write(static_cast<int>(p) * 100 + k);
          mem.scan();
        }
      });
    }
    ASSERT_EQ(rt.run(2'000'000).reason, RunResult::Reason::kAllDone);
    if (auto err = check_snapshot_properties(hist)) {
      FAIL() << "seed " << seed << ": " << *err;
    }
  }
}

TEST(UnboundedSnapshot, SequenceNumbersGrowWithWrites) {
  SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), 1);
  UnboundedSnapshot<int> mem(rt, 0);
  rt.spawn(0, [&] {
    for (int k = 0; k < 50; ++k) mem.write(k);
  });
  rt.spawn(1, [&] {
    for (int k = 0; k < 3; ++k) mem.scan();
  });
  rt.run(1'000'000);
  // The unbounded quantity: grows linearly with writes — this is what the
  // paper's construction eliminates.
  EXPECT_EQ(mem.max_sequence_number(), 50u);
}

TEST(ScannableMemory, WriterCrashMidWriteDoesNotWedgeScans) {
  // Nastiest crash point: the writer has raised its arrow toward the
  // scanner but dies before writing its value. The stale arrow must not
  // wedge the scanner: each attempt re-clears arrows, and with no new
  // writes the second attempt is clean.
  const int n = 2;
  // Writer (p0) write = raise 1 arrow + value write = 2 steps; crash it
  // after the arrow raise (its first step).
  auto adv = std::make_unique<CrashPlanAdversary>(
      std::make_unique<ScriptedAdversary>(std::vector<ProcId>{0}),
      std::vector<CrashPlanAdversary::Crash>{{1, 0}});
  SnapshotHistory hist;
  SimRuntime rt(n, std::move(adv), 1);
  ScannableMemory<int> mem(rt, 0, Arrow::kNative, &hist);
  std::vector<int> view;
  rt.spawn(0, [&] { mem.write(77); });  // dies mid-write
  rt.spawn(1, [&] { view = mem.scan(); });
  const RunResult res = rt.run(100000);
  EXPECT_EQ(res.reason, RunResult::Reason::kAllDone);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 0);  // the interrupted write never took effect
  // The history contains the scan but no completed write; P1-P3 hold.
  EXPECT_TRUE(hist.writes.empty());
  if (auto err = check_snapshot_properties(hist)) FAIL() << *err;
}

TEST(ScannableMemory, WriterCrashBetweenValueAndNothingElse) {
  // Crash immediately AFTER the value write lands (write completed from
  // the memory's perspective, even though the process never returns):
  // the scanner must be able to return the new value.
  const int n = 2;
  // An op declared at a checkpoint executes on the NEXT scheduling, so
  // p0 needs three picks for its 2-step write to fully land; the crash
  // fires before its fourth.
  auto adv = std::make_unique<CrashPlanAdversary>(
      std::make_unique<ScriptedAdversary>(std::vector<ProcId>{0, 0, 0}),
      std::vector<CrashPlanAdversary::Crash>{{3, 0}});
  SimRuntime rt(n, std::move(adv), 1);
  ScannableMemory<int> mem(rt, 0);
  std::vector<int> view;
  rt.spawn(0, [&] {
    mem.write(88);
    mem.write(99);  // never gets here
  });
  rt.spawn(1, [&] { view = mem.scan(); });
  const RunResult res = rt.run(100000);
  EXPECT_EQ(res.reason, RunResult::Reason::kAllDone);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 88);
}

TEST(ScannableMemory, StepCostOfWriteIsN) {
  // write = (n-1) arrow writes + 1 value write.
  const int n = 6;
  SimRuntime rt(n, std::make_unique<RoundRobinAdversary>(), 1);
  ScannableMemory<int> mem(rt, 0);
  rt.spawn(0, [&] { mem.write(1); });
  rt.run(1000);
  EXPECT_EQ(rt.steps(0), static_cast<std::uint64_t>(n));
}

TEST(ScannableMemory, StepCostOfUncontendedScan) {
  // scan (one attempt) = (n-1) arrow clears + 2(n-1) value reads +
  // (n-1) arrow reads = 4(n-1).
  const int n = 6;
  SimRuntime rt(n, std::make_unique<RoundRobinAdversary>(), 1);
  ScannableMemory<int> mem(rt, 0);
  rt.spawn(0, [&] { mem.scan(); });
  rt.run(1000);
  EXPECT_EQ(rt.steps(0), static_cast<std::uint64_t>(4 * (n - 1)));
}

}  // namespace
}  // namespace bprc
