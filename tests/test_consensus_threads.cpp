// All four protocols on the preemptive thread runtime: correctness must
// not depend on the simulator's serialized steps.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "consensus/abrahamson.hpp"
#include "consensus/aspnes_herlihy.hpp"
#include "consensus/bprc.hpp"
#include "consensus/driver.hpp"
#include "consensus/strong_coin.hpp"

namespace bprc {
namespace {

constexpr std::uint64_t kBudget = 200'000'000;

class ThreadedBPRC
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ThreadedBPRC, ConsistentValidTerminating) {
  const auto [n, seed] = GetParam();
  std::vector<int> inputs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) inputs[static_cast<std::size_t>(i)] = i % 2;
  const auto res = run_consensus_threads(
      [n](Runtime& rt) {
        return std::make_unique<BPRCConsensus>(rt, BPRCParams::standard(n));
      },
      inputs, seed, kBudget, /*yield_prob=*/0.1);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.consistent) << "CONSISTENCY VIOLATION on threads";
  EXPECT_TRUE(res.valid);
  EXPECT_LE(res.footprint.max_counter, res.footprint.static_bound);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ThreadedBPRC,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5)));

TEST(ThreadedBPRC, UnanimousFastPath) {
  for (const int input : {0, 1}) {
    const auto res = run_consensus_threads(
        [](Runtime& rt) {
          return std::make_unique<BPRCConsensus>(
              rt, BPRCParams::standard(rt.nprocs()));
        },
        std::vector<int>(6, input), 7, kBudget);
    ASSERT_TRUE(res.ok());
    for (const int d : res.decisions) EXPECT_EQ(d, input);
  }
}

TEST(ThreadedBaselines, AspnesHerlihy) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto res = run_consensus_threads(
        [](Runtime& rt) {
          return std::make_unique<AspnesHerlihyConsensus>(
              rt, CoinParams::standard(rt.nprocs()));
        },
        {0, 1, 0, 1}, seed, kBudget);
    EXPECT_TRUE(res.ok()) << "seed " << seed;
  }
}

TEST(ThreadedBaselines, LocalCoin) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto res = run_consensus_threads(
        [](Runtime& rt) { return std::make_unique<LocalCoinConsensus>(rt); },
        {0, 1, 0, 1}, seed, kBudget);
    EXPECT_TRUE(res.ok()) << "seed " << seed;
  }
}

TEST(ThreadedBaselines, StrongCoin) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto res = run_consensus_threads(
        [seed](Runtime& rt) {
          return std::make_unique<StrongCoinConsensus>(rt, seed ^ 0xFF);
        },
        {1, 0, 1, 0}, seed, kBudget);
    EXPECT_TRUE(res.ok()) << "seed " << seed;
  }
}

TEST(ThreadedBPRC, RepeatedRunsStressRaceWindows) {
  // Many short hostile-yield runs to shake out interleaving-dependent
  // bugs that one long run might miss.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto res = run_consensus_threads(
        [](Runtime& rt) {
          return std::make_unique<BPRCConsensus>(
              rt, BPRCParams::standard(rt.nprocs()));
        },
        {1, 0, 1}, seed, kBudget, /*yield_prob=*/0.4);
    EXPECT_TRUE(res.ok()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace bprc
