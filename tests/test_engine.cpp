// Trial-engine tests: the ordered parallel executor (src/engine/) must be
// invisible except for wall-clock time. Three layers of evidence:
//
//   * EngineExecutor.* — the generic ordered-delivery machinery, exercised
//     with compute-only trials (no simulator, no fibers). These are the
//     tests CI runs under ThreadSanitizer: they drive the full
//     multi-threaded claim/execute/drain path with shared sink state,
//     so any locking hole in the executor shows up as a TSan race.
//   * EngineCampaign.* / EngineShrink.* — jobs=1 vs jobs=4 bit-identity
//     of everything the fault layer produces: failure lists, recorded
//     schedules and crashes, summary digests, shrink probe counts.
//   * EngineSimReuse.* — the single-owner contract: acquiring one
//     SimReuse from a second thread must abort, not race.
//
// TSan cannot follow the simulator's fiber context switches, so only the
// EngineExecutor.* group runs in the tsan CI job (gtest filter).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/adversaries.hpp"
#include "engine/executor.hpp"
#include "engine/trial.hpp"
#include "fault/campaign.hpp"
#include "fault/shrink.hpp"

namespace bprc::engine {
namespace {

/// Uneven compute-only workload: later items often finish before earlier
/// ones on a multi-worker pool, which is exactly what ordered delivery
/// must paper over.
std::uint64_t spin_work(std::uint64_t item) {
  const std::uint64_t iters = (item * 2654435761ULL) % 4096;
  volatile std::uint64_t acc = item;
  for (std::uint64_t i = 0; i < iters; ++i) acc = acc + i;
  return acc;
}

TEST(EngineExecutor, DeliversInGenerationOrderAtEveryJobsLevel) {
  constexpr std::uint64_t kItems = 300;
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    TrialExecutor executor({jobs, 0});
    std::uint64_t generated = 0;
    std::vector<std::uint64_t> delivered;
    executor.run_ordered<std::uint64_t, std::uint64_t>(
        [&]() -> std::optional<std::uint64_t> {
          if (generated >= kItems) return std::nullopt;
          return generated++;
        },
        [](const std::uint64_t& item, SimReuse&) {
          spin_work(item);
          return item * 3 + 1;
        },
        [&](std::size_t index, const std::uint64_t& item,
            std::uint64_t&& out) {
          // Index, spec, and outcome must all line up, in order, with no
          // gaps — at any jobs level.
          EXPECT_EQ(index, delivered.size()) << "jobs=" << jobs;
          EXPECT_EQ(item, delivered.size()) << "jobs=" << jobs;
          EXPECT_EQ(out, item * 3 + 1) << "jobs=" << jobs;
          delivered.push_back(out);
          return true;
        });
    ASSERT_EQ(delivered.size(), kItems) << "jobs=" << jobs;
  }
}

TEST(EngineExecutor, EarlyStopDeliversTheExactPrefix) {
  // A sink returning false must stop the sweep after a deterministic
  // prefix: exactly index 0..kStopAt delivered, regardless of how many
  // later specs workers executed speculatively.
  constexpr std::size_t kStopAt = 17;
  for (const unsigned jobs : {1u, 4u}) {
    TrialExecutor executor({jobs, 0});
    std::uint64_t generated = 0;
    std::size_t deliveries = 0;
    executor.run_ordered<std::uint64_t, std::uint64_t>(
        [&]() -> std::optional<std::uint64_t> { return generated++; },
        [](const std::uint64_t& item, SimReuse&) { return spin_work(item); },
        [&](std::size_t index, const std::uint64_t&, std::uint64_t&&) {
          ++deliveries;
          return index < kStopAt;
        });
    EXPECT_EQ(deliveries, kStopAt + 1) << "jobs=" << jobs;
    // The bounded window caps speculative generation: stop leaves at most
    // one window of undelivered specs behind.
    EXPECT_LE(generated, kStopAt + 1 + 4 * static_cast<std::uint64_t>(jobs))
        << "jobs=" << jobs;
  }
}

TEST(EngineExecutor, StressManyItemsManyWorkers) {
  // The TSan workhorse: thousands of uneven items over 8 workers, with
  // the generator and sink mutating plain (unsynchronized) state — the
  // executor's lock is what keeps that correct.
  constexpr std::uint64_t kItems = 5000;
  TrialExecutor executor({8, 0});
  std::uint64_t generated = 0;
  std::uint64_t checksum = 0;
  std::uint64_t expected_index = 0;
  executor.run_ordered<std::uint64_t, std::uint64_t>(
      [&]() -> std::optional<std::uint64_t> {
        if (generated >= kItems) return std::nullopt;
        return generated++;
      },
      [](const std::uint64_t& item, SimReuse&) {
        spin_work(item);
        return item;
      },
      [&](std::size_t index, const std::uint64_t&, std::uint64_t&& out) {
        EXPECT_EQ(index, expected_index++);
        checksum += out;
        return true;
      });
  EXPECT_EQ(expected_index, kItems);
  EXPECT_EQ(checksum, kItems * (kItems - 1) / 2);
}

TEST(EngineExecutor, EmptyGeneratorIsANoOp) {
  for (const unsigned jobs : {1u, 4u}) {
    TrialExecutor executor({jobs, 0});
    bool delivered = false;
    executor.run_ordered<int, int>(
        []() -> std::optional<int> { return std::nullopt; },
        [](const int& i, SimReuse&) { return i; },
        [&](std::size_t, const int&, int&&) {
          delivered = true;
          return true;
        });
    EXPECT_FALSE(delivered) << "jobs=" << jobs;
  }
}

/// Campaign config that hits real failures (the seeded-broken protocol)
/// next to passing runs. run_deadline is OFF: the wall-clock watchdog is
/// the one non-deterministic input, so bit-identity claims exclude it.
fault::CampaignConfig invariance_config() {
  fault::CampaignConfig config;
  config.protocols = {"bprc", "broken-racy"};
  config.ns = {2, 3};
  config.adversaries = {"random", "round-robin", "crash-storm"};
  config.seeds_per_cell = 2;
  config.max_steps = 200'000;
  config.run_deadline = std::chrono::milliseconds(0);
  config.max_failures = 4;
  return config;
}

TEST(EngineCampaign, JobsFourIsBitIdenticalToSerial) {
  fault::CampaignConfig serial = invariance_config();
  serial.jobs = 1;
  fault::CampaignConfig wide = invariance_config();
  wide.jobs = 4;

  const fault::CampaignReport a = fault::run_campaign(serial);
  const fault::CampaignReport b = fault::run_campaign(wide);

  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.budget_aborts, b.budget_aborts);
  EXPECT_EQ(a.deadline_aborts, b.deadline_aborts);
  EXPECT_EQ(a.skipped_crash_cells, b.skipped_crash_cells);
  EXPECT_EQ(a.summary_digest, b.summary_digest);
  ASSERT_FALSE(a.failures.empty()) << "config no longer catches the bug";
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    const fault::TortureFailure& fa = a.failures[i];
    const fault::TortureFailure& fb = b.failures[i];
    EXPECT_EQ(fa.run.protocol, fb.run.protocol) << i;
    EXPECT_EQ(fa.run.adversary, fb.run.adversary) << i;
    EXPECT_EQ(fa.run.inputs, fb.run.inputs) << i;
    EXPECT_EQ(fa.run.seed, fb.run.seed) << i;
    EXPECT_EQ(fa.failure, fb.failure) << i;
    EXPECT_EQ(fa.reason, fb.reason) << i;
    EXPECT_EQ(fa.schedule, fb.schedule) << i;
    ASSERT_EQ(fa.crashes.size(), fb.crashes.size()) << i;
    for (std::size_t c = 0; c < fa.crashes.size(); ++c) {
      EXPECT_EQ(fa.crashes[c].at_step, fb.crashes[c].at_step) << i;
      EXPECT_EQ(fa.crashes[c].victim, fb.crashes[c].victim) << i;
    }
    EXPECT_EQ(fa.result.decisions, fb.result.decisions) << i;
    EXPECT_EQ(fa.result.total_steps, fb.result.total_steps) << i;
  }
}

TEST(EngineCampaign, ObserverSeesTheSameRunSequenceAtAnyJobsLevel) {
  auto trace = [](unsigned jobs) {
    fault::CampaignConfig config = invariance_config();
    config.jobs = jobs;
    std::vector<std::string> seen;
    fault::run_campaign(config, [&](const fault::TortureRun& run,
                                    const ConsensusRunResult& result) {
      seen.push_back(run.protocol + "/" + run.adversary + "/n" +
                     std::to_string(run.n()) + "/s" +
                     std::to_string(run.seed) + "=" +
                     std::to_string(result.total_steps));
    });
    return seen;
  };
  EXPECT_EQ(trace(1), trace(4));
}

/// FNV-1a over a recorded trace — same digest as test_replay.cpp pins.
std::uint64_t schedule_hash(
    const std::vector<ProcId>& schedule,
    const std::vector<CrashPlanAdversary::Crash>& crashes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const ProcId p : schedule) {
    h ^= static_cast<std::uint64_t>(p);
    h *= 0x100000001B3ULL;
  }
  for (const auto& c : crashes) {
    h ^= c.at_step * 31 + static_cast<std::uint64_t>(c.victim);
    h *= 0x100000001B3ULL;
  }
  return h;
}

TEST(EngineCampaign, GoldenScheduleHashesSurviveTheExecutorAtJobsFour) {
  // The exact golden traces test_replay.cpp pins for the serial path,
  // re-recorded through a 4-worker executor: worker-pinned SimReuse must
  // not perturb a single adversary pick.
  struct Golden {
    const char* adversary;
    std::uint64_t hash;
  };
  const Golden goldens[] = {
      {"random", 0x731f0c5d39bb92e2ULL},
      {"coin-bias", 0xd7434f9318edb05aULL},
      {"crash-storm", 0x6bff30d521c19d61ULL},
      {"split-brain", 0x4e5850c9b2a82258ULL},
      {"lockstep", 0x698caa121a93e73dULL},
      {"leader-suppress", 0x0ed92d7d8fbaa4d4ULL},
  };
  TrialExecutor executor({4, 0});
  std::size_t next = 0;
  std::vector<std::uint64_t> hashes(std::size(goldens), 0);
  executor.run_trials(
      [&]() -> std::optional<TrialSpec> {
        if (next >= std::size(goldens)) return std::nullopt;
        fault::TortureRun run;
        run.protocol = "bprc";
        run.inputs = {0, 1, 1, 0, 1};
        run.adversary = goldens[next].adversary;
        run.seed = 424242;
        run.max_steps = 2'000'000;
        ++next;
        return fault::to_trial_spec(run, std::chrono::nanoseconds::zero());
      },
      [&](std::size_t index, const TrialSpec&, TrialOutcome&& out) {
        EXPECT_TRUE(out.result.ok()) << goldens[index].adversary;
        hashes[index] = schedule_hash(out.schedule, out.crashes);
        return true;
      });
  for (std::size_t i = 0; i < std::size(goldens); ++i) {
    EXPECT_EQ(hashes[i], goldens[i].hash) << goldens[i].adversary;
  }
}

TEST(EngineShrink, ParallelShrinkMatchesSerialProbeForProbe) {
  fault::CampaignConfig config = invariance_config();
  config.max_failures = 1;
  fault::CampaignReport report = fault::run_campaign(config);
  ASSERT_FALSE(report.failures.empty());
  const fault::TortureFailure& fail = report.failures.front();

  const fault::ShrinkOutcome serial =
      fault::shrink_failure(fail, /*max_probes=*/4000, /*jobs=*/1);
  const fault::ShrinkOutcome wide =
      fault::shrink_failure(fail, /*max_probes=*/4000, /*jobs=*/4);
  ASSERT_TRUE(serial.reproduced);
  EXPECT_EQ(serial.reproduced, wide.reproduced);
  EXPECT_EQ(serial.schedule, wide.schedule);
  EXPECT_EQ(serial.probes, wide.probes);
  ASSERT_EQ(serial.crashes.size(), wide.crashes.size());
  for (std::size_t c = 0; c < serial.crashes.size(); ++c) {
    EXPECT_EQ(serial.crashes[c].at_step, wide.crashes[c].at_step);
    EXPECT_EQ(serial.crashes[c].victim, wide.crashes[c].victim);
  }
}

using EngineSimReuseDeathTest = ::testing::Test;

TEST(EngineSimReuseDeathTest, SecondThreadAcquireAborts) {
  // The owner-thread contract in SimReuse::acquire: the pooled fiber
  // stacks are thread-local, so cross-thread reuse must fail loudly
  // (BPRC_REQUIRE abort), never race.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimReuse reuse;
        reuse.acquire(2, make_adversary("round-robin", 0), 1);
        std::thread intruder([&reuse] {
          reuse.acquire(2, make_adversary("round-robin", 0), 2);
        });
        intruder.join();
      },
      "single-owner");
}

}  // namespace
}  // namespace bprc::engine
