// SpaceBudget: the value type every layer threads (docs/SPACE_BUDGETS.md).
// The load-bearing contracts: parse(to_string()) round-trips exactly, the
// default budget is the paper's point and serializes to nothing anywhere,
// and every malformed input is rejected with a diagnostic rather than
// silently coerced — a bad --space must never run a different sweep than
// the one the user asked for.
#include <gtest/gtest.h>

#include "util/space_budget.hpp"

namespace bprc {
namespace {

TEST(SpaceBudget, DefaultsAreThePapersPoint) {
  const SpaceBudget s;
  EXPECT_EQ(s.K, 2);
  EXPECT_EQ(s.cycle_mult, 3);
  EXPECT_EQ(s.cycle(), 6);  // 3K
  EXPECT_EQ(s.slots, 3);    // K + 1
  EXPECT_EQ(s.full_slots(), 3);
  EXPECT_EQ(s.b, 4);
  EXPECT_EQ(s.m_scale, 4);
  EXPECT_TRUE(s.is_default());
  EXPECT_TRUE(s.validate());
}

TEST(SpaceBudget, CanonicalTextRoundTrips) {
  SpaceBudget s;
  s.K = 3;
  s.cycle_mult = 4;
  s.slots = 5;
  s.b = 8;
  s.m_scale = 2;
  EXPECT_EQ(s.to_string(), "K=3 cycle=4 slots=5 b=8 mscale=2");
  std::string err;
  const auto parsed = SpaceBudget::parse(s.to_string(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(*parsed, s);
  EXPECT_FALSE(parsed->is_default());
}

TEST(SpaceBudget, DefaultRoundTripsToo) {
  std::string err;
  const auto parsed = SpaceBudget::parse(SpaceBudget{}.to_string(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_TRUE(parsed->is_default());
}

TEST(SpaceBudget, EmptyTextIsTheDefault) {
  std::string err;
  const auto parsed = SpaceBudget::parse("", &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_TRUE(parsed->is_default());
}

TEST(SpaceBudget, CommasAndTabsSeparateLikeSpaces) {
  std::string err;
  const auto parsed = SpaceBudget::parse("K=3,b=8\tmscale=1", &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->K, 3);
  EXPECT_EQ(parsed->b, 8);
  EXPECT_EQ(parsed->m_scale, 1);
}

TEST(SpaceBudget, BareKRederivesSlots) {
  // `--space K=3` means "the paper's layout at a bigger K": slots follow
  // as K+1 unless the user pins them explicitly.
  std::string err;
  auto parsed = SpaceBudget::parse("K=3", &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->slots, 4);

  parsed = SpaceBudget::parse("K=3 slots=3", &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->slots, 3);  // pinned short — an under-provisioned value
  EXPECT_TRUE(parsed->validate());
}

TEST(SpaceBudget, UnderProvisionedBudgetsAreValidValues) {
  // The registry's bprc-underprov-* variants declare exactly these; the
  // type must carry them so the demand latch can catch them downstream.
  SpaceBudget cycle_short;
  cycle_short.cycle_mult = 2;
  EXPECT_TRUE(cycle_short.validate());
  SpaceBudget slot_short;
  slot_short.slots = slot_short.K;
  EXPECT_TRUE(slot_short.validate());
}

TEST(SpaceBudget, RejectsMalformedInput) {
  const char* bad[] = {
      "K",             // no '='
      "=3",            // empty key
      "K=",            // empty value
      "K=two",         // not a number
      "K=3x",          // trailing junk
      "K=3 K=4",       // duplicate key
      "K=3,K=4",       // duplicate across separators
      "q=3",           // unknown key
      "K=1",           // validate: K >= 2
      "cycle=1",       // validate: cycle >= 2
      "slots=1",       // validate: slots >= 2
      "slots=256",     // validate: slot index must fit a byte
      "b=1",           // validate: b >= 2
      "mscale=0",      // validate: mscale >= 1
      "K=128 cycle=2"  // validate: 256-cell cycle overflows a uint8_t
  };
  for (const char* text : bad) {
    std::string err;
    EXPECT_FALSE(SpaceBudget::parse(text, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(SpaceBudget, EqualityIsFieldwise) {
  SpaceBudget a, b;
  EXPECT_EQ(a, b);
  b.m_scale = 1;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace bprc
