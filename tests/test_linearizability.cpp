// Tests for the Wing–Gong register linearizability checker itself —
// handcrafted histories with known verdicts, so that the checker can be
// trusted when it judges the register constructions.
#include <gtest/gtest.h>

#include <vector>

#include "verify/linearizability.hpp"

namespace bprc {
namespace {

RegOp W(std::uint64_t v, std::uint64_t inv, std::uint64_t res, ProcId p = 0) {
  return RegOp{true, v, inv, res, p};
}
RegOp R(std::uint64_t v, std::uint64_t inv, std::uint64_t res, ProcId p = 1) {
  return RegOp{false, v, inv, res, p};
}

TEST(LinCheck, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(check_register_linearizable({}, 0).ok);
}

TEST(LinCheck, SequentialReadOfInitialValue) {
  EXPECT_TRUE(check_register_linearizable({R(7, 1, 2)}, 7).ok);
  EXPECT_FALSE(check_register_linearizable({R(8, 1, 2)}, 7).ok);
}

TEST(LinCheck, SequentialWriteThenRead) {
  EXPECT_TRUE(check_register_linearizable({W(1, 1, 2), R(1, 3, 4)}, 0).ok);
  EXPECT_FALSE(check_register_linearizable({W(1, 1, 2), R(0, 3, 4)}, 0).ok);
}

TEST(LinCheck, ConcurrentReadMayReturnEitherValue) {
  // Read overlaps the write: both old and new are linearizable.
  EXPECT_TRUE(check_register_linearizable({W(1, 2, 6), R(0, 3, 5)}, 0).ok);
  EXPECT_TRUE(check_register_linearizable({W(1, 2, 6), R(1, 3, 5)}, 0).ok);
  EXPECT_FALSE(check_register_linearizable({W(1, 2, 6), R(9, 3, 5)}, 0).ok);
}

TEST(LinCheck, NewOldInversionIsRejected) {
  // Two sequential reads around a finished write: the second read cannot
  // return the older value once the first returned the newer one.
  const std::vector<RegOp> bad{
      W(1, 1, 10, 0),
      R(1, 2, 3, 1),   // sees the new value...
      R(0, 11, 12, 1)  // ...then the old one, strictly later: inversion
  };
  EXPECT_FALSE(check_register_linearizable(bad, 0).ok);

  // Reversed returns are fine (old then new).
  const std::vector<RegOp> good{W(1, 1, 10, 0), R(0, 2, 3, 1),
                                R(1, 11, 12, 1)};
  EXPECT_TRUE(check_register_linearizable(good, 0).ok);
}

TEST(LinCheck, RealTimeOrderBetweenWritesRespected) {
  // w(1) completes before w(2) begins; a read strictly after both must
  // return 2.
  EXPECT_TRUE(check_register_linearizable(
                  {W(1, 1, 2), W(2, 3, 4), R(2, 5, 6)}, 0)
                  .ok);
  EXPECT_FALSE(check_register_linearizable(
                   {W(1, 1, 2), W(2, 3, 4), R(1, 5, 6)}, 0)
                   .ok);
}

TEST(LinCheck, ConcurrentWritesAllowEitherOrder) {
  // Two overlapping writes; a later read may see either.
  EXPECT_TRUE(check_register_linearizable(
                  {W(1, 1, 10, 0), W(2, 2, 9, 2), R(1, 11, 12)}, 0)
                  .ok);
  EXPECT_TRUE(check_register_linearizable(
                  {W(1, 1, 10, 0), W(2, 2, 9, 2), R(2, 11, 12)}, 0)
                  .ok);
  EXPECT_FALSE(check_register_linearizable(
                   {W(1, 1, 10, 0), W(2, 2, 9, 2), R(0, 11, 12)}, 0)
                   .ok);
}

TEST(LinCheck, TwoReadersMustAgreeOnWriteOrder) {
  // Classic violation: overlapping writes w(1), w(2); reader A sees 1 then
  // 2, reader B sees 2 then 1 — no single order serves both.
  const std::vector<RegOp> bad{
      W(1, 1, 20, 0), W(2, 1, 20, 2),
      R(1, 21, 22, 1), R(2, 23, 24, 1),   // A: 1 then 2
      R(2, 21, 22, 3), R(1, 23, 24, 3),   // B: 2 then 1
  };
  EXPECT_FALSE(check_register_linearizable(bad, 0).ok);
}

TEST(LinCheck, LongInterleavedLinearizableHistory) {
  // A valid serialized execution sliced into overlapping intervals.
  std::vector<RegOp> h;
  std::uint64_t t = 1;
  std::uint64_t value = 0;
  for (int k = 1; k <= 12; ++k) {
    h.push_back(W(static_cast<std::uint64_t>(k), t, t + 3, 0));
    value = static_cast<std::uint64_t>(k);
    h.push_back(R(value, t + 4, t + 5, 1));
    t += 6;
  }
  EXPECT_TRUE(check_register_linearizable(h, 0).ok);
}

TEST(LinCheck, HistoriesBeyondSixtyFourOperations) {
  // The done-set is a dynamic bitset, so histories longer than one mask
  // word must work. 150 ops: the verdict comes from the tail, proving ops
  // past index 63 actually participate in the search.
  std::vector<RegOp> h;
  std::uint64_t t = 1;
  for (int k = 1; k <= 75; ++k) {
    h.push_back(W(static_cast<std::uint64_t>(k), t, t + 1, 0));
    h.push_back(R(static_cast<std::uint64_t>(k), t + 2, t + 3, 1));
    t += 4;
  }
  EXPECT_TRUE(check_register_linearizable(h, 0).ok);

  // Corrupt only the final read (index 149): a long history must still be
  // *rejected* when its violation sits past the 64-op mark.
  h.back().value = 9999;
  EXPECT_FALSE(check_register_linearizable(h, 0).ok);
}

TEST(LinCheck, MemoStatesWithEqualMixesStayDistinct) {
  // Two concurrent writes of values 0 and 1 with a trailing read: the
  // search revisits the same done-set under different register values and
  // vice versa. An exact (mask, value) memo must keep these states apart;
  // a lossy mixed key could collapse a live state onto a dead one and
  // wrongly reject.
  const std::vector<RegOp> h{
      W(0, 1, 10, 0),
      W(1, 1, 10, 1),
      R(0, 11, 12, 2),
      R(0, 13, 14, 3),
  };
  EXPECT_TRUE(check_register_linearizable(h, 7).ok);
}

TEST(LinCheck, WitnessNamesTheHistory) {
  const auto res = check_register_linearizable({R(9, 1, 2)}, 0);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.witness.find("read->9"), std::string::npos);
}

TEST(LinCheck, ReadOfNeverWrittenValueRejected) {
  EXPECT_FALSE(check_register_linearizable(
                   {W(1, 1, 2), W(2, 3, 4), R(3, 5, 6)}, 0)
                   .ok);
}

TEST(LinCheckDeath, RejectsEmptyIntervals) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      check_register_linearizable({RegOp{false, 0, 5, 5, 0}}, 0),
      "interval");
}

}  // namespace
}  // namespace bprc
