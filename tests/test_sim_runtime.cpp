// Tests for the deterministic simulator: scheduling, determinism, crash
// injection, budget handling, unwinding, hints, step accounting.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "explore/consensus_explore.hpp"
#include "explore/token_game_explore.hpp"
#include "registers/register.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"

namespace bprc {
namespace {

/// Process body: perform `steps` checkpoints, appending its pid to a trace.
std::function<void()> tracer(SimRuntime& rt, ProcId pid,
                             std::vector<ProcId>& trace, int steps) {
  return [&rt, pid, &trace, steps] {
    for (int k = 0; k < steps; ++k) {
      rt.checkpoint({});
      trace.push_back(pid);
    }
  };
}

TEST(SimRuntime, RoundRobinOrderIsExact) {
  SimRuntime rt(3, std::make_unique<RoundRobinAdversary>(), 1);
  std::vector<ProcId> trace;
  for (ProcId p = 0; p < 3; ++p) rt.spawn(p, tracer(rt, p, trace, 2));
  const RunResult res = rt.run(1000);
  EXPECT_EQ(res.reason, RunResult::Reason::kAllDone);
  EXPECT_EQ(trace, (std::vector<ProcId>{0, 1, 2, 0, 1, 2}));
  EXPECT_EQ(res.steps, 6u);
}

TEST(SimRuntime, SameSeedSameTrace) {
  auto run_once = [](std::uint64_t seed) {
    SimRuntime rt(4, std::make_unique<RandomAdversary>(seed), seed);
    std::vector<ProcId> trace;
    for (ProcId p = 0; p < 4; ++p) rt.spawn(p, tracer(rt, p, trace, 25));
    rt.run(100000);
    return trace;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(SimRuntime, ResetProducesBitIdenticalTrace) {
  // A runtime re-armed with reset() must be observably identical to a
  // freshly constructed one: same adversary pick sequence, same step
  // counts — the cross-trial reuse fast path must not leak state.
  auto fresh = [](int n, std::uint64_t seed) {
    SimRuntime rt(n, std::make_unique<RandomAdversary>(seed), seed);
    std::vector<ProcId> trace;
    for (ProcId p = 0; p < n; ++p) rt.spawn(p, tracer(rt, p, trace, 25));
    rt.run(100000);
    return trace;
  };
  auto reused = [](SimRuntime& rt, int n, std::uint64_t seed) {
    rt.reset(n, std::make_unique<RandomAdversary>(seed), seed);
    std::vector<ProcId> trace;
    for (ProcId p = 0; p < n; ++p) rt.spawn(p, tracer(rt, p, trace, 25));
    rt.run(100000);
    return trace;
  };

  SimRuntime rt(4, std::make_unique<RandomAdversary>(7), 7);
  {
    std::vector<ProcId> trace;
    for (ProcId p = 0; p < 4; ++p) rt.spawn(p, tracer(rt, p, trace, 25));
    rt.run(100000);
    EXPECT_EQ(trace, fresh(4, 7));
  }
  // Same shape, different seed; shrink; grow — all against fresh twins.
  EXPECT_EQ(reused(rt, 4, 8), fresh(4, 8));
  EXPECT_EQ(reused(rt, 2, 5), fresh(2, 5));
  EXPECT_EQ(reused(rt, 6, 9), fresh(6, 9));
  // And back to the very first configuration.
  EXPECT_EQ(reused(rt, 4, 7), fresh(4, 7));
}

TEST(SimRuntime, ResetRederivesProcessCoins) {
  // Per-process rngs must be re-split from the master seed on reset, not
  // continued from where the previous run left them.
  auto draws = [](SimRuntime& rt, int n) {
    std::vector<std::uint64_t> out(static_cast<std::size_t>(n));
    for (ProcId p = 0; p < n; ++p) {
      rt.spawn(p, [&rt, &out, p] {
        rt.checkpoint({});
        out[static_cast<std::size_t>(p)] = rt.rng()();
      });
    }
    rt.run(1000);
    return out;
  };
  SimRuntime rt(3, std::make_unique<RoundRobinAdversary>(), 99);
  const std::vector<std::uint64_t> first = draws(rt, 3);
  rt.reset(3, std::make_unique<RoundRobinAdversary>(), 99);
  EXPECT_EQ(draws(rt, 3), first);
}

TEST(SimRuntime, PerProcessStepCounts) {
  SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), 1);
  std::vector<ProcId> trace;
  rt.spawn(0, tracer(rt, 0, trace, 5));
  rt.spawn(1, tracer(rt, 1, trace, 3));
  rt.run(1000);
  EXPECT_EQ(rt.steps(0), 5u);
  EXPECT_EQ(rt.steps(1), 3u);
  EXPECT_EQ(rt.total_steps(), 8u);
}

TEST(SimRuntime, BudgetStopsRunAndUnwinds) {
  SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), 1);
  int destroyed = 0;
  struct Guard {
    int* c;
    ~Guard() { ++*c; }
  };
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&rt, &destroyed] {
      Guard g{&destroyed};
      for (;;) rt.checkpoint({});  // never finishes voluntarily
    });
  }
  const RunResult res = rt.run(50);
  EXPECT_EQ(res.reason, RunResult::Reason::kBudget);
  EXPECT_GE(res.steps, 50u);
  // RAII cleanup ran in both unwound fibers.
  EXPECT_EQ(destroyed, 2);
  EXPECT_TRUE(rt.finished(0));
  EXPECT_TRUE(rt.finished(1));
}

TEST(SimRuntime, CrashedProcessStopsExecuting) {
  auto plan = std::make_unique<CrashPlanAdversary>(
      std::make_unique<RoundRobinAdversary>(),
      std::vector<CrashPlanAdversary::Crash>{{10, 0}});
  SimRuntime rt(2, std::move(plan), 1);
  std::vector<ProcId> trace;
  for (ProcId p = 0; p < 2; ++p) rt.spawn(p, tracer(rt, p, trace, 100));
  const RunResult res = rt.run(100000);
  EXPECT_TRUE(rt.crashed(0));
  EXPECT_FALSE(rt.crashed(1));
  // Process 1 finished all 100 steps; process 0 stopped near step 10.
  EXPECT_EQ(rt.steps(1), 100u);
  EXPECT_LE(rt.steps(0), 12u);
  EXPECT_EQ(res.reason, RunResult::Reason::kAllDone);
}

TEST(SimRuntime, AllCrashedReportsNoRunnable) {
  auto plan = std::make_unique<CrashPlanAdversary>(
      std::make_unique<RoundRobinAdversary>(),
      std::vector<CrashPlanAdversary::Crash>{{5, 0}, {5, 1}});
  SimRuntime rt(2, std::move(plan), 1);
  std::vector<ProcId> trace;
  for (ProcId p = 0; p < 2; ++p) rt.spawn(p, tracer(rt, p, trace, 1000));
  const RunResult res = rt.run(100000);
  EXPECT_EQ(res.reason, RunResult::Reason::kNoRunnable);
}

TEST(SimRuntime, SelfReturnsCallingProcess) {
  SimRuntime rt(3, std::make_unique<RoundRobinAdversary>(), 1);
  std::vector<ProcId> selves(3, -1);
  for (ProcId p = 0; p < 3; ++p) {
    rt.spawn(p, [&rt, &selves, p] {
      rt.checkpoint({});
      selves[static_cast<std::size_t>(p)] = rt.self();
    });
  }
  rt.run(1000);
  EXPECT_EQ(selves, (std::vector<ProcId>{0, 1, 2}));
}

TEST(SimRuntime, NowIsStrictlyIncreasing) {
  SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), 1);
  std::vector<std::uint64_t> stamps;
  for (ProcId p = 0; p < 2; ++p) {
    rt.spawn(p, [&rt, &stamps] {
      for (int k = 0; k < 10; ++k) {
        rt.checkpoint({});
        stamps.push_back(rt.now());
      }
    });
  }
  rt.run(1000);
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_LT(stamps[i - 1], stamps[i]);
  }
}

TEST(SimRuntime, PerProcessRngIsDeterministicAndDistinct) {
  auto collect = [](std::uint64_t seed) {
    SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), seed);
    std::vector<std::uint64_t> draws(2);
    for (ProcId p = 0; p < 2; ++p) {
      rt.spawn(p, [&rt, &draws, p] {
        rt.checkpoint({});
        draws[static_cast<std::size_t>(p)] = rt.rng()();
      });
    }
    rt.run(100);
    return draws;
  };
  const auto a = collect(5);
  const auto b = collect(5);
  EXPECT_EQ(a, b);            // deterministic
  EXPECT_NE(a[0], a[1]);      // streams differ between processes
  EXPECT_NE(a, collect(6));   // and across seeds
}

TEST(SimRuntime, HintsVisibleToAdversary) {
  // An adversary that records the hints it can see.
  struct Spy final : Adversary {
    std::vector<std::int32_t>* rounds;
    RoundRobinAdversary rr;
    explicit Spy(std::vector<std::int32_t>* r) : rounds(r) {}
    ProcId pick(SimCtl& ctl) override {
      rounds->push_back(ctl.proc(0).hint.round);
      return rr.pick(ctl);
    }
    std::string name() const override { return "spy"; }
  };
  std::vector<std::int32_t> seen;
  SimRuntime rt(1, std::make_unique<Spy>(&seen), 1);
  rt.spawn(0, [&rt] {
    for (int k = 1; k <= 3; ++k) {
      Hint h;
      h.round = k;
      rt.publish_hint(h);
      rt.checkpoint({});
    }
  });
  rt.run(100);
  ASSERT_GE(seen.size(), 3u);
  // Hint published before checkpoint k is visible at pick k+1.
  EXPECT_EQ(seen[1], 1);
  EXPECT_EQ(seen[2], 2);
}

TEST(SimRuntime, PendingOpVisibleToAdversary) {
  struct Spy final : Adversary {
    std::vector<std::int64_t>* payloads;
    RoundRobinAdversary rr;
    explicit Spy(std::vector<std::int64_t>* p) : payloads(p) {}
    ProcId pick(SimCtl& ctl) override {
      payloads->push_back(ctl.proc(0).pending.payload);
      return rr.pick(ctl);
    }
    std::string name() const override { return "spy"; }
  };
  std::vector<std::int64_t> seen;
  SimRuntime rt(1, std::make_unique<Spy>(&seen), 1);
  rt.spawn(0, [&rt] {
    rt.checkpoint({OpDesc::Kind::kWrite, 0, 42});
    rt.checkpoint({OpDesc::Kind::kWrite, 0, -17});
  });
  rt.run(100);
  ASSERT_GE(seen.size(), 2u);
  EXPECT_EQ(seen[1], 42);  // pick after first checkpoint sees its payload
}

TEST(SimRuntime, RegistersThroughRuntimeCountSteps) {
  SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), 1);
  SWMRRegister<int> reg(rt, /*owner=*/0, 0);
  int read_back = -1;
  rt.spawn(0, [&] { reg.write(5); });
  rt.spawn(1, [&] { read_back = reg.read(); });
  rt.run(100);
  EXPECT_EQ(reg.peek(), 5);
  EXPECT_TRUE(read_back == 0 || read_back == 5);
  EXPECT_EQ(rt.steps(0), 1u);
  EXPECT_EQ(rt.steps(1), 1u);
}

TEST(SimRuntime, ExplorationIsIdenticalUnderResetReuse) {
  // The exploration driver (src/explore/) recycles one SimRuntime across
  // tens of thousands of executions via reset(); the state counts and the
  // FNV digest over every executed pick and forced flip must match a
  // fresh-runtime-per-execution exploration bit for bit — any divergence
  // means reset() leaks state between runs.
  const auto limits = [] {
    explore::ExploreLimits l;
    l.branch_depth = 12;
    l.max_coin_flips = 2;
    return l;
  }();
  const explore::ExploreResult reused =
      explore::explore_token_game(2, 2, 4, limits, 7, /*reuse_runtime=*/true);
  const explore::ExploreResult fresh =
      explore::explore_token_game(2, 2, 4, limits, 7, /*reuse_runtime=*/false);
  EXPECT_EQ(reused.stats.states_visited, fresh.stats.states_visited);
  EXPECT_EQ(reused.stats.executions, fresh.stats.executions);
  EXPECT_EQ(reused.stats.schedule_digest, fresh.stats.schedule_digest);
  EXPECT_EQ(reused.stats.total_steps, fresh.stats.total_steps);
}

TEST(SimRuntime, ConsensusExplorationIsIdenticalUnderResetReuse) {
  // Same invariant through the full consensus stack (registers, coins,
  // per-process rngs): runtime reuse must not perturb the explored tree.
  explore::ConsensusExploreConfig config;
  config.protocol = "bprc";
  config.inputs = {0, 1};
  config.seed = 5;
  config.limits.branch_depth = 8;
  config.reuse_runtime = true;
  const explore::ConsensusExploreReport reused =
      explore::explore_consensus(config);
  config.reuse_runtime = false;
  const explore::ConsensusExploreReport fresh =
      explore::explore_consensus(config);
  EXPECT_EQ(reused.stats.states_visited, fresh.stats.states_visited);
  EXPECT_EQ(reused.stats.executions, fresh.stats.executions);
  EXPECT_EQ(reused.stats.schedule_digest, fresh.stats.schedule_digest);
  EXPECT_TRUE(reused.ok());
  EXPECT_TRUE(fresh.ok());
}

TEST(SimRuntimeDeath, NonOwnerWriteAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimRuntime rt(2, std::make_unique<RoundRobinAdversary>(), 1);
        SWMRRegister<int> reg(rt, /*owner=*/0, 0);
        rt.spawn(1, [&] { reg.write(1); });  // process 1 is not the owner
        rt.run(100);
      },
      "non-owner");
}

TEST(SimRuntimeDeath, SwallowingProcessStoppedAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimRuntime rt(1, std::make_unique<RoundRobinAdversary>(), 1);
        rt.spawn(0, [&rt] {
          for (;;) {
            try {
              rt.checkpoint({});
            } catch (const ProcessStopped&) {
              // forbidden: bodies must let ProcessStopped propagate
            }
          }
        });
        rt.run(10);
      },
      "ProcessStopped");
}

}  // namespace
}  // namespace bprc
