// Distance graph tests (§4.2), including the Claim 4.1 property test: the
// abstract inc(i,G) transformation tracks the sequential normalized
// shrunken token game exactly — exhaustively for small n, randomized for
// larger n.
#include <gtest/gtest.h>

#include <functional>
#include <tuple>
#include <vector>

#include "strip/distance_graph.hpp"
#include "strip/token_game.hpp"
#include "util/rng.hpp"

namespace bprc {
namespace {

TEST(DistanceGraph, InitialStateAllTied) {
  const DistanceGraph g(4, 2);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_TRUE(g.has_edge(i, j));  // property 1: ties have both edges
      EXPECT_EQ(g.signed_diff(i, j), 0);
    }
    EXPECT_TRUE(g.is_leader(i));
  }
}

TEST(DistanceGraph, FromPositionsCapsAtK) {
  const DistanceGraph g = DistanceGraph::from_positions({0, 10, 3}, 2);
  EXPECT_EQ(g.signed_diff(1, 0), 2);   // capped
  EXPECT_EQ(g.signed_diff(0, 1), -2);  // antisymmetric
  EXPECT_EQ(g.signed_diff(1, 2), 2);
  EXPECT_EQ(g.signed_diff(2, 0), 2);   // 3-0 = 3, capped to 2
}

TEST(DistanceGraph, EdgeDirectionFollowsOrder) {
  const DistanceGraph g = DistanceGraph::from_positions({5, 3}, 4);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.weight(0, 1), 2);
}

TEST(DistanceGraph, LeaderIsMaximalToken) {
  const DistanceGraph g = DistanceGraph::from_positions({4, 7, 7, 2}, 3);
  EXPECT_FALSE(g.is_leader(0));
  EXPECT_TRUE(g.is_leader(1));
  EXPECT_TRUE(g.is_leader(2));  // co-leaders both maximal
  EXPECT_FALSE(g.is_leader(3));
}

TEST(DistanceGraph, DistRecoversExactShrunkDifferenceThroughChain) {
  // Positions from a shrunken game: consecutive gaps ≤ K, so dist()
  // reconstructs the true difference even where the direct edge is capped.
  const DistanceGraph g = DistanceGraph::from_positions({0, 2, 4}, 2);
  EXPECT_EQ(g.dist(2, 0), 4);           // via the chain 2 -> 1 -> 0
  EXPECT_EQ(g.signed_diff(2, 0), 2);    // the direct edge is capped
  EXPECT_EQ(g.dist(2, 1), 2);
  EXPECT_EQ(g.dist(1, 0), 2);
  EXPECT_EQ(g.dist(0, 2), -1);          // no path uphill
}

TEST(DistanceGraph, DistOfSelfIsZero) {
  const DistanceGraph g = DistanceGraph::from_positions({1, 5}, 2);
  EXPECT_EQ(g.dist(0, 0), 0);
  EXPECT_EQ(g.dist(1, 1), 0);
}

TEST(DistanceGraph, TightnessSeparatesRealFromSlackEdges) {
  const DistanceGraph g = DistanceGraph::from_positions({0, 2, 4}, 2);
  EXPECT_TRUE(g.edge_is_tight(1, 0));    // 2-0 = 2 = weight
  EXPECT_TRUE(g.edge_is_tight(2, 1));
  EXPECT_FALSE(g.edge_is_tight(2, 0));   // real gap 4 > stored 2: slack
  EXPECT_FALSE(g.edge_is_tight(0, 2));   // not even an edge
}

TEST(DistanceGraph, DistAgainstBruteForceEnumeration) {
  // Cross-check Floyd–Warshall max-plus against explicit enumeration of
  // all simple paths, on random graphs derived from game positions.
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 5;
    const int K = 2;
    TokenGame game(n, K);
    for (int m = 0; m < 40; ++m) {
      game.move_token(static_cast<int>(rng.below(n)));
    }
    const DistanceGraph g = DistanceGraph::from_positions(game.positions(), K);

    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        // Brute force: DFS over simple paths maximizing weight.
        int best = -1;
        std::vector<bool> used(static_cast<std::size_t>(n), false);
        std::function<void(int, int)> dfs = [&](int at, int acc) {
          if (at == j) {
            best = std::max(best, acc);
            return;
          }
          used[static_cast<std::size_t>(at)] = true;
          for (int k = 0; k < n; ++k) {
            if (used[static_cast<std::size_t>(k)] || !g.has_edge(at, k) ||
                k == at) {
              continue;
            }
            dfs(k, acc + g.weight(at, k));
          }
          used[static_cast<std::size_t>(at)] = false;
        };
        dfs(i, 0);
        ASSERT_EQ(g.dist(i, j), best) << "i=" << i << " j=" << j;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Claim 4.1: G(move_token_i(S)) == inc(i, G(S))
// ---------------------------------------------------------------------------

void check_claim41(int n, int K, int moves, std::uint64_t seed) {
  Rng rng(seed);
  TokenGame game(n, K);
  DistanceGraph g = DistanceGraph::from_positions(game.positions(), K);
  for (int step = 0; step < moves; ++step) {
    const int mover = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    game.move_token(mover);
    g.inc(mover);
    const DistanceGraph expect =
        DistanceGraph::from_positions(game.positions(), K);
    ASSERT_EQ(expect, g) << "diverged at step " << step << " (mover "
                         << mover << ", n=" << n << ", K=" << K << ")";
  }
}

TEST(Claim41, ExhaustiveAllMoveSequences_N3K2) {
  // Every move sequence of length 7 for n=3 (3^7 = 2187 sequences),
  // each move checked against the game.
  const int n = 3;
  const int K = 2;
  std::function<void(TokenGame&, DistanceGraph&, int)> rec =
      [&](TokenGame& game, DistanceGraph& g, int depth) {
        if (depth == 0) return;
        for (int mover = 0; mover < n; ++mover) {
          TokenGame game2 = game;
          DistanceGraph g2 = g;
          game2.move_token(mover);
          g2.inc(mover);
          const DistanceGraph expect =
              DistanceGraph::from_positions(game2.positions(), K);
          ASSERT_EQ(expect, g2) << "mover " << mover;
          rec(game2, g2, depth - 1);
        }
      };
  TokenGame game(n, K);
  DistanceGraph g = DistanceGraph::from_positions(game.positions(), K);
  rec(game, g, 7);
}

TEST(Claim41, ExhaustiveAllMoveSequences_N2K1) {
  const int n = 2;
  const int K = 1;
  std::function<void(TokenGame&, DistanceGraph&, int)> rec =
      [&](TokenGame& game, DistanceGraph& g, int depth) {
        if (depth == 0) return;
        for (int mover = 0; mover < n; ++mover) {
          TokenGame game2 = game;
          DistanceGraph g2 = g;
          game2.move_token(mover);
          g2.inc(mover);
          const DistanceGraph expect =
              DistanceGraph::from_positions(game2.positions(), K);
          ASSERT_EQ(expect, g2);
          rec(game2, g2, depth - 1);
        }
      };
  TokenGame game(n, K);
  DistanceGraph g = DistanceGraph::from_positions(game.positions(), K);
  rec(game, g, 12);
}

class Claim41Random
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(Claim41Random, GraphTracksGame) {
  const auto [n, K, seed] = GetParam();
  check_claim41(n, K, /*moves=*/400, seed);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Claim41Random,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8, 12),
                       ::testing::Values(1, 2, 3, 4),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(DistanceGraphDeath, WeightOnMissingEdgeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const DistanceGraph g = DistanceGraph::from_positions({0, 5}, 2);
  EXPECT_DEATH((void)g.weight(0, 1), "edge");
}

TEST(DistanceGraphDeath, OutOfRangeNodeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const DistanceGraph g(2, 2);
  EXPECT_DEATH((void)g.signed_diff(0, 5), "out of range");
}

}  // namespace
}  // namespace bprc
