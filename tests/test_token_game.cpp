// Tests for the sequential token game (§4.1): shrink, normalize, the
// normalized shrunken game invariants — plus the exhaustive Claim 4.1
// equivalence check, which drives the game and the incremental distance
// graph through *every* small-n interleaving via the exploration driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "explore/explorer.hpp"
#include "explore/token_game_explore.hpp"
#include "strip/token_game.hpp"
#include "util/rng.hpp"

namespace bprc {
namespace {

using V = std::vector<std::int64_t>;

TEST(Shrink, IdentityWhenGapsSmall) {
  EXPECT_EQ(TokenGame::shrink({0, 1, 2}, 2), (V{0, 1, 2}));
  EXPECT_EQ(TokenGame::shrink({5, 5, 5}, 2), (V{5, 5, 5}));
  EXPECT_EQ(TokenGame::shrink({3, 1, 2}, 1), (V{3, 1, 2}));
}

TEST(Shrink, CapsLargeGapToExactlyK) {
  // Gap of 10 between 0 and 10 becomes exactly K.
  EXPECT_EQ(TokenGame::shrink({0, 10}, 2), (V{0, 2}));
  EXPECT_EQ(TokenGame::shrink({0, 10}, 3), (V{0, 3}));
}

TEST(Shrink, MinimumStaysPut) {
  const V out = TokenGame::shrink({7, 100, 50}, 2);
  EXPECT_EQ(*std::min_element(out.begin(), out.end()), 7);
}

TEST(Shrink, PreservesOrderAndSmallGaps) {
  // positions 0, 1, 9, 10: the 1->9 gap shrinks to K=3, others kept.
  EXPECT_EQ(TokenGame::shrink({0, 1, 9, 10}, 3), (V{0, 1, 4, 5}));
}

TEST(Shrink, UnsortedInputHandledByPermutation) {
  // Same multiset, scrambled order: per-token results must follow the
  // token, not the slot.
  EXPECT_EQ(TokenGame::shrink({10, 0, 9, 1}, 3), (V{5, 0, 4, 1}));
}

TEST(Shrink, TiesSurviveShrinking) {
  EXPECT_EQ(TokenGame::shrink({0, 50, 50}, 2), (V{0, 2, 2}));
}

TEST(Shrink, SingleTokenUnchanged) {
  EXPECT_EQ(TokenGame::shrink({123}, 2), (V{123}));
}

TEST(Normalize, MaxMovesToKn) {
  EXPECT_EQ(TokenGame::normalize({0, 1, 2}, 2), (V{4, 5, 6}));  // K*n = 6
  EXPECT_EQ(TokenGame::normalize({10, 10}, 3), (V{6, 6}));      // K*n = 6
}

TEST(Normalize, PreservesDifferences) {
  const V in{3, 8, 5};
  const V out = TokenGame::normalize(in, 4);
  for (std::size_t i = 0; i < in.size(); ++i) {
    for (std::size_t j = 0; j < in.size(); ++j) {
      EXPECT_EQ(out[i] - out[j], in[i] - in[j]);
    }
  }
}

TEST(TokenGame, InitialPositionsAllEqual) {
  TokenGame g(4, 2);
  const V pos = g.positions();
  for (const auto p : pos) EXPECT_EQ(p, pos[0]);
}

TEST(TokenGame, MoveAdvancesRelativeOrder) {
  TokenGame g(3, 2);
  g.move_token(1);
  const V& pos = g.positions();
  EXPECT_EQ(pos[1] - pos[0], 1);
  EXPECT_EQ(pos[1] - pos[2], 1);
}

TEST(TokenGame, RunawayTokenIsShrunkToK) {
  TokenGame g(2, 2);
  for (int k = 0; k < 100; ++k) g.move_token(0);
  const V& pos = g.positions();
  EXPECT_EQ(pos[0] - pos[1], 2);  // gap capped at K
}

TEST(TokenGame, TrailingTokenCatchesUpThroughRealGap) {
  TokenGame g(2, 3);
  g.move_token(0);
  g.move_token(0);  // gap 2, under K: real
  g.move_token(1);
  const V& pos = g.positions();
  EXPECT_EQ(pos[0] - pos[1], 1);
}

class TokenGameInvariants
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(TokenGameInvariants, PositionsStayInBoundedRange) {
  const auto [n, K, seed] = GetParam();
  TokenGame g(n, K);
  Rng rng(seed);
  const std::int64_t hi = static_cast<std::int64_t>(K) * n;
  for (int step = 0; step < 500; ++step) {
    g.move_token(static_cast<int>(rng.below(static_cast<std::uint64_t>(n))));
    std::int64_t mx = 0;
    for (const auto p : g.positions()) {
      ASSERT_GE(p, 0);
      ASSERT_LE(p, hi);
      mx = std::max(mx, p);
    }
    ASSERT_EQ(mx, hi) << "normalize must pin the max at K*n";
    // Consecutive sorted gaps stay within K (shrunken invariant).
    V sorted = g.positions();
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      ASSERT_LE(sorted[i] - sorted[i - 1], K);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TokenGameInvariants,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(TokenGame, NonPassiveShrinking) {
  // §4.1: a pairwise distance changes only across a move_token — two
  // successive states differ in at most the moved token's relations.
  TokenGame g(4, 2);
  Rng rng(5);
  V before = g.positions();
  for (int step = 0; step < 200; ++step) {
    const int mover = static_cast<int>(rng.below(4));
    g.move_token(mover);
    const V after = g.positions();
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        if (i == mover || j == mover) continue;
        const std::int64_t db = before[static_cast<std::size_t>(i)] -
                                before[static_cast<std::size_t>(j)];
        const std::int64_t da = after[static_cast<std::size_t>(i)] -
                                after[static_cast<std::size_t>(j)];
        // Distances between bystanders change only when the mover's
        // passage re-shrinks a gap between them; they may shrink by at
        // most 1 and never grow.
        ASSERT_LE(std::abs(da - db), 1);
      }
    }
    before = after;
  }
}

// ---------------------------------------------------------------------------
// Claim 4.1, exhaustively: inc(i) tracks move_token(i) under *every*
// interleaving, not just the sampled sequences above. (tests/
// test_distance_graph.cpp checks random sequences; the exploration
// driver closes the gap for small n. The n=3, deeper-M variants live in
// test_explore_exhaustive.cpp under the `exhaustive` ctest
// configuration.)
// ---------------------------------------------------------------------------

TEST(Claim41Exhaustive, TwoMoversFiveMovesEveryInterleaving) {
  explore::ExploreLimits limits;
  limits.branch_depth = 2 * 5;
  for (const int K : {1, 2, 3}) {
    const explore::ExploreResult result =
        explore::explore_token_game(2, K, 5, limits, /*seed=*/1);
    EXPECT_TRUE(result.ok()) << "K=" << K << ": "
                             << (result.violations.empty()
                                     ? ""
                                     : result.violations.front().note);
    EXPECT_TRUE(result.stats.complete) << "K=" << K;
    EXPECT_GT(result.stats.states_visited, 0u);
  }
}

TEST(Claim41Exhaustive, ThreeMoversThreeMovesEveryInterleaving) {
  explore::ExploreLimits limits;
  limits.branch_depth = 3 * 3;
  const explore::ExploreResult result =
      explore::explore_token_game(3, 2, 3, limits, /*seed=*/1);
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? ""
                                   : result.violations.front().note);
  EXPECT_TRUE(result.stats.complete);
}

}  // namespace
}  // namespace bprc
