// Universal construction tests: the wait-free replicated log (fetch&cons)
// built on multi-valued consensus — total order, dedup, helping,
// replicated-object materialization.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "consensus/bprc.hpp"
#include "consensus/strong_coin.hpp"
#include "core/universal.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/thread_runtime.hpp"

namespace bprc {
namespace {

ProtocolFactory bprc_bits(int n) {
  return [n](Runtime& rt) {
    return std::make_unique<BPRCConsensus>(rt, BPRCParams::standard(n));
  };
}

// Cheap binary arm for the heavier sweeps (the log's logic is identical).
ProtocolFactory strong_bits() {
  return [](Runtime& rt) {
    return std::make_unique<StrongCoinConsensus>(rt, 424242);
  };
}

TEST(UniversalLog, SingleProcessAppendsInOrder) {
  SimRuntime rt(1, std::make_unique<RoundRobinAdversary>(), 1);
  UniversalLog log(rt, 4, bprc_bits(1));
  std::vector<int> slots;
  rt.spawn(0, [&] {
    slots.push_back(log.append(100));
    slots.push_back(log.append(200));
    slots.push_back(log.append(300));
  });
  ASSERT_EQ(rt.run(500'000'000ull).reason, RunResult::Reason::kAllDone);
  EXPECT_EQ(slots, (std::vector<int>{0, 1, 2}));
  const auto entries = log.log();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].payload, 100u);
  EXPECT_EQ(entries[1].payload, 200u);
  EXPECT_EQ(entries[2].payload, 300u);
}

struct LogRun {
  std::vector<UniversalLog::Entry> entries;
  bool done = false;
};

LogRun run_log(int n, int appends_each, std::unique_ptr<Adversary> adv,
               std::uint64_t seed, const ProtocolFactory& bits) {
  SimRuntime rt(n, std::move(adv), seed);
  UniversalLog log(rt, n * appends_each + n, bits);
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&log, &rt, p, appends_each] {
      for (int k = 0; k < appends_each; ++k) {
        const auto payload = static_cast<std::uint32_t>(
            (p + 1) * 1000 + k);
        const int slot = log.append(payload);
        BPRC_REQUIRE(slot >= 0, "append failed");
        (void)rt;
      }
    });
  }
  LogRun out;
  out.done = rt.run(4'000'000'000ull).reason == RunResult::Reason::kAllDone;
  out.entries = log.log();
  return out;
}

void expect_complete_log(const LogRun& run, int n, int appends_each) {
  ASSERT_TRUE(run.done);
  // Every command appears exactly once (dedup by owner/seq), and each
  // owner's commands appear in its program order.
  std::set<std::pair<ProcId, std::uint32_t>> seen;
  std::map<ProcId, std::uint32_t> last_seq;
  for (const auto& e : run.entries) {
    EXPECT_TRUE(seen.insert({e.owner, e.seq}).second)
        << "duplicate command in materialized log";
    auto [it, fresh] = last_seq.try_emplace(e.owner, e.seq);
    if (!fresh) {
      EXPECT_LT(it->second, e.seq)
          << "owner " << e.owner << "'s commands out of program order";
      it->second = e.seq;
    }
  }
  EXPECT_EQ(run.entries.size(),
            static_cast<std::size_t>(n) * static_cast<std::size_t>(appends_each));
}

TEST(UniversalLog, TwoProcessesInterleaved) {
  const auto run =
      run_log(2, 3, std::make_unique<RandomAdversary>(5), 5, bprc_bits(2));
  expect_complete_log(run, 2, 3);
}

class UniversalMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(UniversalMatrix, CompleteOrderedDedupedLog) {
  const auto [n, advk, seed] = GetParam();
  auto advs = standard_adversaries(seed * 97 + 13);
  const auto run = run_log(n, 3,
                           std::move(advs[static_cast<std::size_t>(advk)]),
                           seed, strong_bits());
  expect_complete_log(run, n, 3);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, UniversalMatrix,
    ::testing::Combine(::testing::Values(2, 3, 4), ::testing::Range(0, 5),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(UniversalLog, BPRCBackedFullStack) {
  // The complete tower: BPRC binary -> multi-valued -> universal log.
  const auto run =
      run_log(3, 2, std::make_unique<LeaderSuppressAdversary>(8), 8,
              bprc_bits(3));
  expect_complete_log(run, 3, 2);
}

TEST(UniversalLog, HelpingPlacesEveryCommandWithinNSlots) {
  // Each append must consume at most n slots beyond the process's known
  // prefix: with n=3 and 2 appends each, 6 commands fit in <= 12 slots
  // even under hostile scheduling (round-robin helping guarantee).
  const int n = 3;
  SimRuntime rt(n, std::make_unique<LeaderSuppressAdversary>(11), 11);
  UniversalLog log(rt, 4 * n, strong_bits());
  std::vector<int> worst_slot(static_cast<std::size_t>(n), -1);
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&log, &worst_slot, p] {
      for (int k = 0; k < 2; ++k) {
        worst_slot[static_cast<std::size_t>(p)] =
            log.append(static_cast<std::uint32_t>(p * 10 + k));
      }
    });
  }
  ASSERT_EQ(rt.run(4'000'000'000ull).reason, RunResult::Reason::kAllDone);
  for (const int slot : worst_slot) {
    EXPECT_LE(slot, 4 * n - 1);
  }
  EXPECT_EQ(log.log().size(), 6u);
}

TEST(Replicated, CounterMaterializesDeterministically) {
  // A replicated add-counter: every payload is an increment amount.
  const int n = 3;
  SimRuntime rt(n, std::make_unique<RandomAdversary>(21), 21);
  Replicated<std::int64_t> counter(
      rt, /*capacity=*/12, strong_bits(), /*initial=*/0,
      [](std::int64_t& state, const UniversalLog::Entry& e) {
        state += e.payload;
      });
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&counter, p] {
      counter.update(static_cast<std::uint32_t>(p + 1));
      counter.update(static_cast<std::uint32_t>(10 * (p + 1)));
    });
  }
  ASSERT_EQ(rt.run(4'000'000'000ull).reason, RunResult::Reason::kAllDone);
  // 1+2+3 + 10+20+30 regardless of order.
  EXPECT_EQ(counter.materialize(), 66);
}

TEST(Replicated, QueueSeesOneTotalOrder) {
  // fetch&cons, literally: the log IS the cons-list; every replica
  // materializes the same list.
  const int n = 4;
  SimRuntime rt(n, std::make_unique<LockstepAdversary>(31), 31);
  Replicated<std::vector<std::uint32_t>> list(
      rt, /*capacity=*/16, strong_bits(),
      /*initial=*/{},
      [](std::vector<std::uint32_t>& state, const UniversalLog::Entry& e) {
        state.push_back(e.payload);
      });
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&list, p] {
      list.update(static_cast<std::uint32_t>(100 + p));
      list.update(static_cast<std::uint32_t>(200 + p));
    });
  }
  ASSERT_EQ(rt.run(4'000'000'000ull).reason, RunResult::Reason::kAllDone);
  const auto value = list.materialize();
  EXPECT_EQ(value.size(), 8u);
  const std::set<std::uint32_t> unique(value.begin(), value.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(UniversalLog, CrashAfterAnnounceStillLeavesConsistentLog) {
  // A process announces its command, then crashes. Helpers may or may not
  // carry the orphaned command into the log; either way survivors must
  // end with one consistent, deduplicated log containing all of THEIR
  // commands.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const int n = 3;
    auto adv = std::make_unique<CrashPlanAdversary>(
        std::make_unique<RandomAdversary>(seed),
        std::vector<CrashPlanAdversary::Crash>{{seed * 11 + 6, 0}});
    SimRuntime rt(n, std::move(adv), seed);
    UniversalLog log(rt, 12, strong_bits());
    for (ProcId p = 0; p < n; ++p) {
      rt.spawn(p, [&log, p] {
        log.append(static_cast<std::uint32_t>(500 + p));
        log.append(static_cast<std::uint32_t>(600 + p));
      });
    }
    const RunResult res = rt.run(4'000'000'000ull);
    ASSERT_EQ(res.reason, RunResult::Reason::kAllDone);
    const auto entries = log.log();
    // Survivors' four commands must all be present, each exactly once.
    std::set<std::uint32_t> payloads;
    for (const auto& e : entries) {
      EXPECT_TRUE(payloads.insert(e.payload).second)
          << "payload duplicated in materialized log";
    }
    for (const std::uint32_t want : {501u, 502u, 601u, 602u}) {
      EXPECT_TRUE(payloads.contains(want))
          << "survivor command " << want << " missing (seed " << seed << ")";
    }
  }
}

TEST(UniversalLog, ThreadRuntimeEndToEnd) {
  ThreadRuntime rt(3, 77, /*yield_prob=*/0.1);
  UniversalLog log(rt, 12, strong_bits());
  for (ProcId p = 0; p < 3; ++p) {
    rt.spawn(p, [&log, p] {
      log.append(static_cast<std::uint32_t>(p + 1));
      log.append(static_cast<std::uint32_t>(p + 100));
    });
  }
  const RunResult res = rt.run(4'000'000'000ull);
  ASSERT_EQ(res.reason, RunResult::Reason::kAllDone);
  EXPECT_EQ(log.log().size(), 6u);
}

TEST(UniversalLogDeath, CapacityExhaustionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimRuntime rt(1, std::make_unique<RoundRobinAdversary>(), 1);
        UniversalLog log(rt, 1, bprc_bits(1));
        rt.spawn(0, [&log] {
          log.append(1);
          log.append(2);  // no slot left
        });
        rt.run(500'000'000ull);
      },
      "capacity");
}

}  // namespace
}  // namespace bprc
