// Statistical bias tests for the bounded shared coin (§3) at larger
// process counts than tests/test_coin.cpp covers. Every trial uses a
// fixed seed sequence, so the sampled outcomes — and therefore the test
// verdicts — are fully deterministic; the chi-squared thresholds guard
// against a *seeded-in* bias (a regression in the walk logic or the
// per-process generators), not against sampling noise.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coin/coin_logic.hpp"
#include "coin/shared_coin.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"

namespace bprc {
namespace {

struct TossCounts {
  int unanimous_heads = 0;
  int unanimous_tails = 0;
  int mixed = 0;
  int trials() const { return unanimous_heads + unanimous_tails + mixed; }
};

/// One toss of the shared coin: every process's answer, under a random
/// adversary derived from `seed`.
std::vector<CoinValue> toss(int n, int b, std::uint64_t seed) {
  SimRuntime rt(n, std::make_unique<RandomAdversary>(seed * 2 + 1), seed);
  const CoinParams params = CoinParams::standard(n, b);
  SharedCoin coin(rt, params);
  std::vector<CoinValue> results(static_cast<std::size_t>(n),
                                 CoinValue::kUndecided);
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&coin, &results, p] {
      results[static_cast<std::size_t>(p)] = coin.toss();
    });
  }
  EXPECT_EQ(rt.run(50'000'000).reason, RunResult::Reason::kAllDone);
  return results;
}

TossCounts collect(int n, int b, int trials) {
  TossCounts counts;
  for (std::uint64_t seed = 0; seed < static_cast<std::uint64_t>(trials);
       ++seed) {
    const auto results = toss(n, b, seed);
    int heads = 0;
    for (const auto v : results) {
      EXPECT_NE(v, CoinValue::kUndecided);
      heads += v == CoinValue::kHeads;
    }
    if (heads == n) {
      ++counts.unanimous_heads;
    } else if (heads == 0) {
      ++counts.unanimous_tails;
    } else {
      ++counts.mixed;
    }
  }
  return counts;
}

/// Pearson chi-squared statistic for an observed pair against a fair
/// 50/50 split of their total.
double chi_squared_fair_split(int a, int c) {
  const double expected = (a + c) / 2.0;
  if (expected == 0.0) return 0.0;
  const double da = a - expected;
  const double dc = c - expected;
  return (da * da + dc * dc) / expected;
}

class CoinBias : public ::testing::TestWithParam<int> {};

TEST_P(CoinBias, UnanimousSideIsUnbiasedUnderRandomScheduling) {
  // The protocol is symmetric in heads/tails, and the scheduler is
  // outcome-oblivious, so unanimous-heads and unanimous-tails trials must
  // be exchangeable. Chi-squared over the two unanimous bins, df=1;
  // 10.83 is the p=0.001 critical value — noise for a fair coin, but a
  // systematic sign bias in the walk update trips it immediately.
  const int n = GetParam();
  const TossCounts counts = collect(n, /*b=*/4, /*trials=*/120);
  ASSERT_GT(counts.unanimous_heads + counts.unanimous_tails, 0);
  const double chi2 =
      chi_squared_fair_split(counts.unanimous_heads, counts.unanimous_tails);
  EXPECT_LT(chi2, 10.83) << "heads=" << counts.unanimous_heads
                         << " tails=" << counts.unanimous_tails;
}

TEST_P(CoinBias, UnanimityMeetsTheLemma31Bound) {
  // Lemma 3.1: for each value v, all processes see v with probability at
  // least (b-1)/2b — so total unanimity is at least (b-1)/b = 0.75 at
  // b=4. The fixed-seed sample must not sit far below that; 0.12 of
  // slack keeps the deterministic check robust while still failing on
  // any real regression of the agreement barrier.
  const int n = GetParam();
  const int b = 4;
  const TossCounts counts = collect(n, b, /*trials=*/120);
  const double unanimity =
      static_cast<double>(counts.unanimous_heads + counts.unanimous_tails) /
      counts.trials();
  const double bound = static_cast<double>(b - 1) / b;
  EXPECT_GT(unanimity, bound - 0.12)
      << "unanimity " << unanimity << " vs Lemma 3.1 bound " << bound;
  // And neither side may collapse: each unanimous value keeps a healthy
  // share of the (b-1)/2b per-side guarantee.
  const double per_side_floor = (static_cast<double>(b - 1) / (2 * b)) - 0.15;
  EXPECT_GT(counts.unanimous_heads / 120.0, per_side_floor);
  EXPECT_GT(counts.unanimous_tails / 120.0, per_side_floor);
}

INSTANTIATE_TEST_SUITE_P(Matrix, CoinBias, ::testing::Values(4, 8));

TEST(CoinBias, FixedSeedsAreReproducible) {
  // The statistical verdicts above are only trustworthy if re-running a
  // seed reproduces its trial exactly.
  const auto a = toss(4, 4, 17);
  const auto b = toss(4, 4, 17);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bprc
