// Concurrent rounds-strip stress (§4.3): the edge counters' mod-3K
// encoding must stay decodable when every process updates its row from
// SNAPSHOT views rather than current state — the concurrency slack that
// motivates cycle size 3K. Each process loops scan → make_graph →
// inc_counters → write under every adversary; make_graph aborts the run
// if any scanned counter pair ever decodes to the invalid middle third.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/thread_runtime.hpp"
#include "snapshot/scannable_memory.hpp"
#include "strip/edge_counters.hpp"

namespace bprc {
namespace {

/// One process's loop body: advance its strip row `rounds` times, always
/// from a fresh snapshot (the §5 usage pattern).
void strip_worker(Runtime& rt, ScannableMemory<EdgeCounters>& mem, int K,
                  int rounds) {
  const ProcId me = rt.self();
  EdgeCounters row = initial_edge_counters(rt.nprocs());
  for (int r = 0; r < rounds; ++r) {
    std::vector<EdgeCounters> rows = mem.scan();
    rows[static_cast<std::size_t>(me)] = row;  // own row: local truth
    const DistanceGraph g = make_graph(rows, K);  // aborts on bad decode
    // Sanity: every pairwise difference is in the valid band.
    for (int a = 0; a < rt.nprocs(); ++a) {
      for (int b = 0; b < rt.nprocs(); ++b) {
        const int s = g.signed_diff(a, b);
        BPRC_REQUIRE(s >= -K && s <= K, "decoded difference out of band");
        BPRC_REQUIRE(s == -g.signed_diff(b, a), "antisymmetry broken");
      }
    }
    inc_counters(me, g, row);
    mem.write(row);
  }
}

class StripConcurrent
    : public ::testing::TestWithParam<std::tuple<int, int, int, std::uint64_t>> {
};

TEST_P(StripConcurrent, SnapshotViewsAlwaysDecode) {
  const auto [n, K, advk, seed] = GetParam();
  auto advs = standard_adversaries(seed * 733 + 19);
  SimRuntime rt(n, std::move(advs[static_cast<std::size_t>(advk)]), seed);
  ScannableMemory<EdgeCounters> mem(rt, initial_edge_counters(n));
  const int rounds = 40;  // > 3K wraparounds per pair
  for (ProcId p = 0; p < n; ++p) {
    rt.spawn(p, [&rt, &mem, K, rounds] { strip_worker(rt, mem, K, rounds); });
  }
  const RunResult res = rt.run(50'000'000ull);
  EXPECT_EQ(res.reason, RunResult::Reason::kAllDone);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StripConcurrent,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),  // n
                       ::testing::Values(2, 3),        // K
                       ::testing::Range(0, 5),         // adversary
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(StripConcurrent, SurvivesCrashesMidUpdate) {
  // Crash processes at arbitrary points (possibly between computing an
  // inc and writing it); survivors' decodes must stay valid forever.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const int n = 4;
    auto adv = std::make_unique<CrashPlanAdversary>(
        std::make_unique<RandomAdversary>(seed),
        std::vector<CrashPlanAdversary::Crash>{{seed * 13 + 20, 0},
                                               {seed * 17 + 90, 1}});
    SimRuntime rt(n, std::move(adv), seed);
    ScannableMemory<EdgeCounters> mem(rt, initial_edge_counters(n));
    for (ProcId p = 0; p < n; ++p) {
      rt.spawn(p, [&rt, &mem] { strip_worker(rt, mem, 2, 60); });
    }
    const RunResult res = rt.run(50'000'000ull);
    EXPECT_EQ(res.reason, RunResult::Reason::kAllDone) << "seed " << seed;
  }
}

TEST(StripConcurrent, ThreadRuntimeStress) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const int n = 4;
    ThreadRuntime rt(n, seed, /*yield_prob=*/0.25);
    ScannableMemory<EdgeCounters> mem(rt, initial_edge_counters(n));
    for (ProcId p = 0; p < n; ++p) {
      rt.spawn(p, [&rt, &mem] { strip_worker(rt, mem, 2, 30); });
    }
    const RunResult res = rt.run(200'000'000ull);
    EXPECT_EQ(res.reason, RunResult::Reason::kAllDone) << "seed " << seed;
  }
}

TEST(StripConcurrent, LoneRunnerSaturatesAtK) {
  // One process advancing while the rest never move: its lead over every
  // other process must pin at exactly K (shrinking in action), however
  // many rounds it runs — and the counters never leave the 3K cycle.
  const int n = 3;
  const int K = 2;
  SimRuntime rt(n, std::make_unique<RoundRobinAdversary>(), 1);
  ScannableMemory<EdgeCounters> mem(rt, initial_edge_counters(n));
  EdgeCounters final_row;
  rt.spawn(0, [&] {
    EdgeCounters row = initial_edge_counters(n);
    for (int r = 0; r < 100; ++r) {
      std::vector<EdgeCounters> rows = mem.scan();
      rows[0] = row;
      const DistanceGraph g = make_graph(rows, K);
      inc_counters(0, g, row);
      mem.write(row);
    }
    final_row = row;
  });
  // Processes 1, 2 exist but never touch the strip.
  rt.spawn(1, [] {});
  rt.spawn(2, [] {});
  ASSERT_EQ(rt.run(10'000'000ull).reason, RunResult::Reason::kAllDone);
  std::vector<EdgeCounters> rows(3, initial_edge_counters(n));
  rows[0] = final_row;
  const DistanceGraph g = make_graph(rows, K);
  EXPECT_EQ(g.signed_diff(0, 1), K);
  EXPECT_EQ(g.signed_diff(0, 2), K);
  for (const auto e : final_row) EXPECT_LT(e, 3 * K);
}

}  // namespace
}  // namespace bprc
