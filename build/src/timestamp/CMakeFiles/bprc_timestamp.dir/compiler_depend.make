# Empty compiler generated dependencies file for bprc_timestamp.
# This may be replaced when dependencies are built.
