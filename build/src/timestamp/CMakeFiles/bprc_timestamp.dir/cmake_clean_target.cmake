file(REMOVE_RECURSE
  "libbprc_timestamp.a"
)
