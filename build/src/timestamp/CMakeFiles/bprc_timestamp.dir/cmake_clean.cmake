file(REMOVE_RECURSE
  "CMakeFiles/bprc_timestamp.dir/bounded_timestamps.cpp.o"
  "CMakeFiles/bprc_timestamp.dir/bounded_timestamps.cpp.o.d"
  "libbprc_timestamp.a"
  "libbprc_timestamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bprc_timestamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
