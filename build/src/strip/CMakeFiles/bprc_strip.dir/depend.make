# Empty dependencies file for bprc_strip.
# This may be replaced when dependencies are built.
