file(REMOVE_RECURSE
  "libbprc_strip.a"
)
