
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strip/distance_graph.cpp" "src/strip/CMakeFiles/bprc_strip.dir/distance_graph.cpp.o" "gcc" "src/strip/CMakeFiles/bprc_strip.dir/distance_graph.cpp.o.d"
  "/root/repo/src/strip/token_game.cpp" "src/strip/CMakeFiles/bprc_strip.dir/token_game.cpp.o" "gcc" "src/strip/CMakeFiles/bprc_strip.dir/token_game.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bprc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
