file(REMOVE_RECURSE
  "CMakeFiles/bprc_strip.dir/distance_graph.cpp.o"
  "CMakeFiles/bprc_strip.dir/distance_graph.cpp.o.d"
  "CMakeFiles/bprc_strip.dir/token_game.cpp.o"
  "CMakeFiles/bprc_strip.dir/token_game.cpp.o.d"
  "libbprc_strip.a"
  "libbprc_strip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bprc_strip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
