file(REMOVE_RECURSE
  "libbprc_verify.a"
)
