
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/linearizability.cpp" "src/verify/CMakeFiles/bprc_verify.dir/linearizability.cpp.o" "gcc" "src/verify/CMakeFiles/bprc_verify.dir/linearizability.cpp.o.d"
  "/root/repo/src/verify/snapshot_linearizability.cpp" "src/verify/CMakeFiles/bprc_verify.dir/snapshot_linearizability.cpp.o" "gcc" "src/verify/CMakeFiles/bprc_verify.dir/snapshot_linearizability.cpp.o.d"
  "/root/repo/src/verify/snapshot_props.cpp" "src/verify/CMakeFiles/bprc_verify.dir/snapshot_props.cpp.o" "gcc" "src/verify/CMakeFiles/bprc_verify.dir/snapshot_props.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/bprc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bprc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
