file(REMOVE_RECURSE
  "CMakeFiles/bprc_verify.dir/linearizability.cpp.o"
  "CMakeFiles/bprc_verify.dir/linearizability.cpp.o.d"
  "CMakeFiles/bprc_verify.dir/snapshot_linearizability.cpp.o"
  "CMakeFiles/bprc_verify.dir/snapshot_linearizability.cpp.o.d"
  "CMakeFiles/bprc_verify.dir/snapshot_props.cpp.o"
  "CMakeFiles/bprc_verify.dir/snapshot_props.cpp.o.d"
  "libbprc_verify.a"
  "libbprc_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bprc_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
