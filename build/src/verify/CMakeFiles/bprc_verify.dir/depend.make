# Empty dependencies file for bprc_verify.
# This may be replaced when dependencies are built.
