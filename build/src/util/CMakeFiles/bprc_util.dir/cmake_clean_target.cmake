file(REMOVE_RECURSE
  "libbprc_util.a"
)
