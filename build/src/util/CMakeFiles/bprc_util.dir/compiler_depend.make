# Empty compiler generated dependencies file for bprc_util.
# This may be replaced when dependencies are built.
