file(REMOVE_RECURSE
  "CMakeFiles/bprc_util.dir/table.cpp.o"
  "CMakeFiles/bprc_util.dir/table.cpp.o.d"
  "libbprc_util.a"
  "libbprc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bprc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
