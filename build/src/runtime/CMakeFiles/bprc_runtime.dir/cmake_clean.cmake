file(REMOVE_RECURSE
  "CMakeFiles/bprc_runtime.dir/adversary.cpp.o"
  "CMakeFiles/bprc_runtime.dir/adversary.cpp.o.d"
  "CMakeFiles/bprc_runtime.dir/ctx_switch.S.o"
  "CMakeFiles/bprc_runtime.dir/fiber.cpp.o"
  "CMakeFiles/bprc_runtime.dir/fiber.cpp.o.d"
  "CMakeFiles/bprc_runtime.dir/sim_runtime.cpp.o"
  "CMakeFiles/bprc_runtime.dir/sim_runtime.cpp.o.d"
  "CMakeFiles/bprc_runtime.dir/thread_runtime.cpp.o"
  "CMakeFiles/bprc_runtime.dir/thread_runtime.cpp.o.d"
  "libbprc_runtime.a"
  "libbprc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/bprc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
