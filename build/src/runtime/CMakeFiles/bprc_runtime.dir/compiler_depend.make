# Empty compiler generated dependencies file for bprc_runtime.
# This may be replaced when dependencies are built.
