
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/runtime/ctx_switch.S" "/root/repo/build/src/runtime/CMakeFiles/bprc_runtime.dir/ctx_switch.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/adversary.cpp" "src/runtime/CMakeFiles/bprc_runtime.dir/adversary.cpp.o" "gcc" "src/runtime/CMakeFiles/bprc_runtime.dir/adversary.cpp.o.d"
  "/root/repo/src/runtime/fiber.cpp" "src/runtime/CMakeFiles/bprc_runtime.dir/fiber.cpp.o" "gcc" "src/runtime/CMakeFiles/bprc_runtime.dir/fiber.cpp.o.d"
  "/root/repo/src/runtime/sim_runtime.cpp" "src/runtime/CMakeFiles/bprc_runtime.dir/sim_runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/bprc_runtime.dir/sim_runtime.cpp.o.d"
  "/root/repo/src/runtime/thread_runtime.cpp" "src/runtime/CMakeFiles/bprc_runtime.dir/thread_runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/bprc_runtime.dir/thread_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bprc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
