file(REMOVE_RECURSE
  "libbprc_runtime.a"
)
