file(REMOVE_RECURSE
  "libbprc_consensus.a"
)
