
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/abrahamson.cpp" "src/consensus/CMakeFiles/bprc_consensus.dir/abrahamson.cpp.o" "gcc" "src/consensus/CMakeFiles/bprc_consensus.dir/abrahamson.cpp.o.d"
  "/root/repo/src/consensus/aspnes_herlihy.cpp" "src/consensus/CMakeFiles/bprc_consensus.dir/aspnes_herlihy.cpp.o" "gcc" "src/consensus/CMakeFiles/bprc_consensus.dir/aspnes_herlihy.cpp.o.d"
  "/root/repo/src/consensus/bprc.cpp" "src/consensus/CMakeFiles/bprc_consensus.dir/bprc.cpp.o" "gcc" "src/consensus/CMakeFiles/bprc_consensus.dir/bprc.cpp.o.d"
  "/root/repo/src/consensus/driver.cpp" "src/consensus/CMakeFiles/bprc_consensus.dir/driver.cpp.o" "gcc" "src/consensus/CMakeFiles/bprc_consensus.dir/driver.cpp.o.d"
  "/root/repo/src/consensus/multivalue.cpp" "src/consensus/CMakeFiles/bprc_consensus.dir/multivalue.cpp.o" "gcc" "src/consensus/CMakeFiles/bprc_consensus.dir/multivalue.cpp.o.d"
  "/root/repo/src/consensus/strong_coin.cpp" "src/consensus/CMakeFiles/bprc_consensus.dir/strong_coin.cpp.o" "gcc" "src/consensus/CMakeFiles/bprc_consensus.dir/strong_coin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/strip/CMakeFiles/bprc_strip.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bprc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bprc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/bprc_verify.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
