# Empty dependencies file for bprc_consensus.
# This may be replaced when dependencies are built.
