file(REMOVE_RECURSE
  "CMakeFiles/bprc_consensus.dir/abrahamson.cpp.o"
  "CMakeFiles/bprc_consensus.dir/abrahamson.cpp.o.d"
  "CMakeFiles/bprc_consensus.dir/aspnes_herlihy.cpp.o"
  "CMakeFiles/bprc_consensus.dir/aspnes_herlihy.cpp.o.d"
  "CMakeFiles/bprc_consensus.dir/bprc.cpp.o"
  "CMakeFiles/bprc_consensus.dir/bprc.cpp.o.d"
  "CMakeFiles/bprc_consensus.dir/driver.cpp.o"
  "CMakeFiles/bprc_consensus.dir/driver.cpp.o.d"
  "CMakeFiles/bprc_consensus.dir/multivalue.cpp.o"
  "CMakeFiles/bprc_consensus.dir/multivalue.cpp.o.d"
  "CMakeFiles/bprc_consensus.dir/strong_coin.cpp.o"
  "CMakeFiles/bprc_consensus.dir/strong_coin.cpp.o.d"
  "libbprc_consensus.a"
  "libbprc_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bprc_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
