# Empty compiler generated dependencies file for bprc_core.
# This may be replaced when dependencies are built.
