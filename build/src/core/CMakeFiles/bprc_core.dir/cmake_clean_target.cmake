file(REMOVE_RECURSE
  "libbprc_core.a"
)
