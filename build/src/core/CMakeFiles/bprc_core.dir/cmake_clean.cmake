file(REMOVE_RECURSE
  "CMakeFiles/bprc_core.dir/universal.cpp.o"
  "CMakeFiles/bprc_core.dir/universal.cpp.o.d"
  "libbprc_core.a"
  "libbprc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bprc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
