file(REMOVE_RECURSE
  "../bench/bench_coin"
  "../bench/bench_coin.pdb"
  "CMakeFiles/bench_coin.dir/bench_coin.cpp.o"
  "CMakeFiles/bench_coin.dir/bench_coin.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
