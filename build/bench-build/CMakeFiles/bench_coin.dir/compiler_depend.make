# Empty compiler generated dependencies file for bench_coin.
# This may be replaced when dependencies are built.
