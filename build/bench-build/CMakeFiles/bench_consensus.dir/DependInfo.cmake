
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_consensus.cpp" "bench-build/CMakeFiles/bench_consensus.dir/bench_consensus.cpp.o" "gcc" "bench-build/CMakeFiles/bench_consensus.dir/bench_consensus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bprc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/bprc_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/strip/CMakeFiles/bprc_strip.dir/DependInfo.cmake"
  "/root/repo/build/src/timestamp/CMakeFiles/bprc_timestamp.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/bprc_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bprc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bprc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
