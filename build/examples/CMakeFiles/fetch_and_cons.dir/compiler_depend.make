# Empty compiler generated dependencies file for fetch_and_cons.
# This may be replaced when dependencies are built.
