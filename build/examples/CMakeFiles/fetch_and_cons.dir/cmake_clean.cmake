file(REMOVE_RECURSE
  "CMakeFiles/fetch_and_cons.dir/fetch_and_cons.cpp.o"
  "CMakeFiles/fetch_and_cons.dir/fetch_and_cons.cpp.o.d"
  "fetch_and_cons"
  "fetch_and_cons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetch_and_cons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
