# Empty compiler generated dependencies file for coin_visualizer.
# This may be replaced when dependencies are built.
