file(REMOVE_RECURSE
  "CMakeFiles/coin_visualizer.dir/coin_visualizer.cpp.o"
  "CMakeFiles/coin_visualizer.dir/coin_visualizer.cpp.o.d"
  "coin_visualizer"
  "coin_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coin_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
