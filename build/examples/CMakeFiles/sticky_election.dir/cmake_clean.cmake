file(REMOVE_RECURSE
  "CMakeFiles/sticky_election.dir/sticky_election.cpp.o"
  "CMakeFiles/sticky_election.dir/sticky_election.cpp.o.d"
  "sticky_election"
  "sticky_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sticky_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
