# Empty dependencies file for sticky_election.
# This may be replaced when dependencies are built.
