# Empty dependencies file for test_consensus_threads.
# This may be replaced when dependencies are built.
