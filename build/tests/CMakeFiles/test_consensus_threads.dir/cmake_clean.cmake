file(REMOVE_RECURSE
  "CMakeFiles/test_consensus_threads.dir/test_consensus_threads.cpp.o"
  "CMakeFiles/test_consensus_threads.dir/test_consensus_threads.cpp.o.d"
  "test_consensus_threads"
  "test_consensus_threads.pdb"
  "test_consensus_threads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consensus_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
