file(REMOVE_RECURSE
  "CMakeFiles/test_strip_concurrent.dir/test_strip_concurrent.cpp.o"
  "CMakeFiles/test_strip_concurrent.dir/test_strip_concurrent.cpp.o.d"
  "test_strip_concurrent"
  "test_strip_concurrent.pdb"
  "test_strip_concurrent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strip_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
