# Empty dependencies file for test_strip_concurrent.
# This may be replaced when dependencies are built.
