# Empty dependencies file for test_distance_graph.
# This may be replaced when dependencies are built.
