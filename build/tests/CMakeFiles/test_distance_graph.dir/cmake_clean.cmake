file(REMOVE_RECURSE
  "CMakeFiles/test_distance_graph.dir/test_distance_graph.cpp.o"
  "CMakeFiles/test_distance_graph.dir/test_distance_graph.cpp.o.d"
  "test_distance_graph"
  "test_distance_graph.pdb"
  "test_distance_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distance_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
