file(REMOVE_RECURSE
  "CMakeFiles/test_snapshot_linearizability.dir/test_snapshot_linearizability.cpp.o"
  "CMakeFiles/test_snapshot_linearizability.dir/test_snapshot_linearizability.cpp.o.d"
  "test_snapshot_linearizability"
  "test_snapshot_linearizability.pdb"
  "test_snapshot_linearizability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snapshot_linearizability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
