file(REMOVE_RECURSE
  "CMakeFiles/test_waitfree_snapshot.dir/test_waitfree_snapshot.cpp.o"
  "CMakeFiles/test_waitfree_snapshot.dir/test_waitfree_snapshot.cpp.o.d"
  "test_waitfree_snapshot"
  "test_waitfree_snapshot.pdb"
  "test_waitfree_snapshot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waitfree_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
