# Empty compiler generated dependencies file for test_waitfree_snapshot.
# This may be replaced when dependencies are built.
