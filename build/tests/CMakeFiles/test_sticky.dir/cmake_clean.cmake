file(REMOVE_RECURSE
  "CMakeFiles/test_sticky.dir/test_sticky.cpp.o"
  "CMakeFiles/test_sticky.dir/test_sticky.cpp.o.d"
  "test_sticky"
  "test_sticky.pdb"
  "test_sticky[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sticky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
