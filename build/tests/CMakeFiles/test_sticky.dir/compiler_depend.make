# Empty compiler generated dependencies file for test_sticky.
# This may be replaced when dependencies are built.
