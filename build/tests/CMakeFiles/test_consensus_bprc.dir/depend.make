# Empty dependencies file for test_consensus_bprc.
# This may be replaced when dependencies are built.
