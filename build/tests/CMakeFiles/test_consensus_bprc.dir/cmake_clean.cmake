file(REMOVE_RECURSE
  "CMakeFiles/test_consensus_bprc.dir/test_consensus_bprc.cpp.o"
  "CMakeFiles/test_consensus_bprc.dir/test_consensus_bprc.cpp.o.d"
  "test_consensus_bprc"
  "test_consensus_bprc.pdb"
  "test_consensus_bprc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consensus_bprc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
