file(REMOVE_RECURSE
  "CMakeFiles/test_edge_counters.dir/test_edge_counters.cpp.o"
  "CMakeFiles/test_edge_counters.dir/test_edge_counters.cpp.o.d"
  "test_edge_counters"
  "test_edge_counters.pdb"
  "test_edge_counters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
