file(REMOVE_RECURSE
  "CMakeFiles/test_token_game.dir/test_token_game.cpp.o"
  "CMakeFiles/test_token_game.dir/test_token_game.cpp.o.d"
  "test_token_game"
  "test_token_game.pdb"
  "test_token_game[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_token_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
