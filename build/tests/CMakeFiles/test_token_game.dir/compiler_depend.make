# Empty compiler generated dependencies file for test_token_game.
# This may be replaced when dependencies are built.
