file(REMOVE_RECURSE
  "CMakeFiles/test_coin_slots.dir/test_coin_slots.cpp.o"
  "CMakeFiles/test_coin_slots.dir/test_coin_slots.cpp.o.d"
  "test_coin_slots"
  "test_coin_slots.pdb"
  "test_coin_slots[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coin_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
