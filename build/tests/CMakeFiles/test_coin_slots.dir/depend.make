# Empty dependencies file for test_coin_slots.
# This may be replaced when dependencies are built.
