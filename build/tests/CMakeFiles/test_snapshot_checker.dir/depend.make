# Empty dependencies file for test_snapshot_checker.
# This may be replaced when dependencies are built.
