file(REMOVE_RECURSE
  "CMakeFiles/test_snapshot_checker.dir/test_snapshot_checker.cpp.o"
  "CMakeFiles/test_snapshot_checker.dir/test_snapshot_checker.cpp.o.d"
  "test_snapshot_checker"
  "test_snapshot_checker.pdb"
  "test_snapshot_checker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snapshot_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
