file(REMOVE_RECURSE
  "CMakeFiles/test_coin.dir/test_coin.cpp.o"
  "CMakeFiles/test_coin.dir/test_coin.cpp.o.d"
  "test_coin"
  "test_coin.pdb"
  "test_coin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
