# Empty compiler generated dependencies file for test_multivalue.
# This may be replaced when dependencies are built.
