file(REMOVE_RECURSE
  "CMakeFiles/test_multivalue.dir/test_multivalue.cpp.o"
  "CMakeFiles/test_multivalue.dir/test_multivalue.cpp.o.d"
  "test_multivalue"
  "test_multivalue.pdb"
  "test_multivalue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multivalue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
