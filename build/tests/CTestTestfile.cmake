# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_fiber[1]_include.cmake")
include("/root/repo/build/tests/test_sim_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_adversary[1]_include.cmake")
include("/root/repo/build/tests/test_thread_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_registers[1]_include.cmake")
include("/root/repo/build/tests/test_linearizability[1]_include.cmake")
include("/root/repo/build/tests/test_snapshot[1]_include.cmake")
include("/root/repo/build/tests/test_snapshot_checker[1]_include.cmake")
include("/root/repo/build/tests/test_coin[1]_include.cmake")
include("/root/repo/build/tests/test_token_game[1]_include.cmake")
include("/root/repo/build/tests/test_distance_graph[1]_include.cmake")
include("/root/repo/build/tests/test_edge_counters[1]_include.cmake")
include("/root/repo/build/tests/test_coin_slots[1]_include.cmake")
include("/root/repo/build/tests/test_consensus_bprc[1]_include.cmake")
include("/root/repo/build/tests/test_multivalue[1]_include.cmake")
include("/root/repo/build/tests/test_universal[1]_include.cmake")
include("/root/repo/build/tests/test_sticky[1]_include.cmake")
include("/root/repo/build/tests/test_timestamps[1]_include.cmake")
include("/root/repo/build/tests/test_strip_concurrent[1]_include.cmake")
include("/root/repo/build/tests/test_waitfree_snapshot[1]_include.cmake")
include("/root/repo/build/tests/test_snapshot_linearizability[1]_include.cmake")
include("/root/repo/build/tests/test_consensus_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_consensus_threads[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
