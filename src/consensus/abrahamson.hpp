// Abrahamson-style local-coin consensus — the exponential baseline [A88].
//
// The first randomized consensus from plain read/write registers used only
// *local* coin flips: a process re-randomizes its preference until some
// snapshot shows unanimity. Expected convergence requires n independent
// coins to coincide, so against a lockstep scheduler the expected number
// of phases is 2^Θ(n) — the exponential running time the paper's shared
// coin eliminates. Experiment E7's crossover is this protocol against
// BPRC.
//
// Simplification note (DESIGN.md §5): Abrahamson's full protocol layers an
// unbounded-timestamp locking mechanism over this core to obtain
// consistency with non-snapshot reads; since our substrate provides
// snapshot scans, unanimity-in-one-snapshot plus write-before-first-scan
// already yields consistency (scans are serializable, and a decided
// process's register freezes at its decision value, so two snapshots can
// never both be unanimous for different values). The exponential step
// complexity — the property the comparison is about — is unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "consensus/protocol.hpp"
#include "runtime/runtime.hpp"
#include "snapshot/scannable_memory.hpp"

namespace bprc {

struct LocalCoinRecord {
  std::int8_t pref = kUnwritten;
  /// Re-randomization count: instrumentation of the unbounded timestamp
  /// the full A88 protocol would store here.
  std::int64_t version = 0;

  friend bool operator==(const LocalCoinRecord& a, const LocalCoinRecord& b) {
    return a.pref == b.pref && a.version == b.version;
  }
};

class LocalCoinConsensus final : public ConsensusProtocol {
 public:
  explicit LocalCoinConsensus(Runtime& rt);

  int propose(int input) override;
  std::string name() const override { return "local-coin"; }
  int decision(ProcId p) const override;
  std::int64_t decision_round(ProcId p) const override;
  MemoryFootprint footprint() const override;

  std::uint64_t total_flips() const {
    return flips_.load(std::memory_order_relaxed);
  }

 private:
  Runtime& rt_;
  ScannableMemory<LocalCoinRecord> mem_;
  std::vector<std::int8_t> decisions_;
  std::vector<std::int64_t> decision_rounds_;
  std::atomic<std::uint64_t> flips_{0};
  std::atomic<std::int64_t> max_version_{0};
};

}  // namespace bprc
