// Abrahamson's local-coin consensus on the *native* scannable memory —
// the same protocol logic as consensus/abrahamson.{hpp,cpp}, but every
// shared-memory primitive is a real std::atomic operation on real OS
// threads, recorded for the weak-memory checker. This is the bridge that
// lets the existing consensus oracle (evaluate_consensus) grade native
// runs: ConsensusProtocol interface on top, NativeScannableMemory below.
//
// Shared record packing (24-bit NativeLoc payload):
//   payload = (version << 2) | pref      pref ∈ {0, 1, ⊥=2, unwritten=3}
// The protocol only ever tests prefs for unanimity; version is the
// paper's round stamp, kept for footprint statistics and clamped to the
// 22 bits the payload affords (budgets cap runs far below that).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "consensus/protocol.hpp"
#include "registers/native/native_scannable.hpp"
#include "runtime/runtime.hpp"
#include "util/assert.hpp"

namespace bprc {

class NativeLocalCoinConsensus final : public ConsensusProtocol {
 public:
  static constexpr std::uint64_t kMaxVersion = (1u << 22) - 1;

  explicit NativeLocalCoinConsensus(Runtime& rt)
      : rt_(rt),
        mem_(rt, pack(0, kUnwritten)),
        decisions_(static_cast<std::size_t>(rt.nprocs()), -1),
        decision_rounds_(static_cast<std::size_t>(rt.nprocs()), 0) {}

  int propose(int input) override {
    BPRC_REQUIRE(input == 0 || input == 1, "input must be a bit");
    const ProcId me = rt_.self();
    const int n = rt_.nprocs();

    std::int8_t pref = static_cast<std::int8_t>(input);
    std::uint64_t version = 1;

    auto publish = [&](bool decided) {
      Hint hint;
      hint.round = static_cast<std::int32_t>(version);
      hint.pref = pref;
      hint.decided = decided;
      rt_.publish_hint(hint);
    };

    // Write before the first scan — consistency depends on it (see
    // consensus/abrahamson.hpp).
    publish(false);
    mem_.write(pack(version, pref));

    std::vector<std::uint64_t> view;
    while (true) {
      mem_.scan_into(view);

      bool unanimous = true;
      for (int j = 0; j < n && unanimous; ++j) {
        if (j == me) continue;
        const std::int8_t p = pref_of(view[static_cast<std::size_t>(j)]);
        if (p == kUnwritten) continue;  // j has not joined yet
        if (p != pref) unanimous = false;
      }
      if (unanimous) {
        decisions_[static_cast<std::size_t>(me)] = pref;
        decision_rounds_[static_cast<std::size_t>(me)] =
            static_cast<std::int64_t>(version);
        publish(true);
        bump_max_version(version);
        return pref;
      }

      pref = rt_.rng().flip() ? kPref1 : kPref0;
      version = std::min(version + 1, kMaxVersion);
      publish(false);
      mem_.write(pack(version, pref));
      bump_max_version(version);
    }
  }

  std::string name() const override { return "native-local-coin"; }

  int decision(ProcId p) const override {
    return decisions_[static_cast<std::size_t>(p)];
  }

  std::int64_t decision_round(ProcId p) const override {
    return decision_rounds_[static_cast<std::size_t>(p)];
  }

  MemoryFootprint footprint() const override {
    MemoryFootprint f;
    f.bounded = false;  // same claim as the simulated local-coin baseline
    f.max_round_stored =
        static_cast<std::int64_t>(max_version_.load(std::memory_order_relaxed));
    return f;
  }

  std::uint64_t scan_retries() const { return mem_.scan_retries(); }

 private:
  static constexpr std::uint64_t pack(std::uint64_t version,
                                      std::int8_t pref) {
    return (version << 2) | static_cast<std::uint64_t>(pref);
  }
  static std::int8_t pref_of(std::uint64_t payload) {
    return static_cast<std::int8_t>(payload & 3);
  }

  void bump_max_version(std::uint64_t version) {
    std::uint64_t seen = max_version_.load(std::memory_order_relaxed);
    while (seen < version && !max_version_.compare_exchange_weak(
                                 seen, version, std::memory_order_relaxed)) {
    }
  }

  Runtime& rt_;
  NativeScannableMemory mem_;
  std::vector<int> decisions_;
  std::vector<std::int64_t> decision_rounds_;
  std::atomic<std::uint64_t> max_version_{0};
};

}  // namespace bprc
