#include "consensus/bprc.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace bprc {

namespace {

// Physical layout: the declared budget when it suffices, the paper's
// layout otherwise. An under-provisioned budget never shrinks what the
// instance allocates — it shrinks what the instance is ALLOWED to use,
// and the demand latches below record every access beyond the allowance
// so footprint() can report the violation instead of decoding junk.
int physical_cycle(const BPRCParams& p) {
  const int declared = p.space.cycle();
  return declared > 2 * p.K ? declared : default_edge_cycle(p.K);
}

int physical_slots(const BPRCParams& p) {
  return p.space.slots >= p.K + 1 ? p.space.slots : p.K + 1;
}

BPRCRecord initial_record(const BPRCParams& p) {
  BPRCRecord rec;
  rec.pref = kUnwritten;
  rec.coins = CoinSlots::with_slot_count(physical_slots(p));
  rec.edges = initial_edge_counters(p.n);
  return rec;
}

void latch_max(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

BPRCConsensus::BPRCConsensus(Runtime& rt, BPRCParams params, ArrowImpl arrows)
    : rt_(rt),
      params_(params),
      cycle_phys_(physical_cycle(params)),
      slots_phys_(physical_slots(params)),
      cycle_deficient_(params.space.cycle() < 2 * params.K + 1),
      slots_deficient_(params.space.slots < params.K + 1),
      mem_(rt, initial_record(params), arrows),
      decisions_(static_cast<std::size_t>(params.n), -1),
      decision_rounds_(static_cast<std::size_t>(params.n), 0),
      coin_scratch_(static_cast<std::size_t>(params.n)) {
  BPRC_REQUIRE(params_.n == rt.nprocs(),
               "params sized for a different process count");
  BPRC_REQUIRE(params_.K >= 2, "the protocol requires K >= 2");
  BPRC_REQUIRE(params_.coin.n == params_.n, "coin params out of sync");
  BPRC_REQUIRE(params_.space.validate(), "invalid space budget");
  BPRC_REQUIRE(params_.space.K == params_.K, "space budget K out of sync");
  BPRC_REQUIRE(params_.space.b == params_.coin.b,
               "space budget b out of sync with coin params");
}

void BPRCConsensus::scan_view(View& view) {
  // In-place twin of "scan, copy the edge rows out, make_graph": the
  // snapshot lands in the caller's reused buffers and the graph is decoded
  // straight from the scanned records — zero allocations in steady state.
  mem_.scan_into(view.recs);
  scans_.fetch_add(1, std::memory_order_relaxed);
  view.graph.reset_tied();
  for (int i = 0; i < params_.n; ++i) {
    for (int j = i + 1; j < params_.n; ++j) {
      const auto s = decode_edge(
          view.recs[static_cast<std::size_t>(i)]
              .edges[static_cast<std::size_t>(j)],
          view.recs[static_cast<std::size_t>(j)]
              .edges[static_cast<std::size_t>(i)],
          params_.K, cycle_phys_);
      BPRC_REQUIRE(s.has_value(),
                   "scanned edge counters decode to no valid difference");
      if (cycle_deficient_) {
        // On the declared cycle c this difference would alias (decode to
        // both +|s| and −|s|) once |s| ≥ c − K; the smallest cycle that
        // decodes it unambiguously is 2|s|+1 cells.
        const int mag = *s < 0 ? -*s : *s;
        if (mag >= params_.space.cycle() - params_.K) {
          latch_max(cycle_demand_, 2 * static_cast<std::int64_t>(mag) + 1);
        }
      }
      view.graph.set_signed_diff(i, j, *s);
    }
  }
}

bool BPRCConsensus::all_disagree_trail_K(ProcId me, std::int8_t pref,
                                         const View& view) const {
  // Line 2's guard: every process whose visible preference differs from
  // mine (⊥ and unwritten count as differing) must trail me by the full
  // cap K.
  for (int j = 0; j < params_.n; ++j) {
    if (j == me) continue;
    if (view.recs[static_cast<std::size_t>(j)].pref == pref) continue;
    if (view.graph.signed_diff(me, j) != params_.K) return false;
  }
  return true;
}

std::optional<std::int8_t> BPRCConsensus::leaders_agreement(
    const View& view) const {
  // Leaders are the graph-maximal processes. They "agree" when every
  // leader's preference is the same concrete value (not ⊥, not unwritten).
  std::optional<std::int8_t> value;
  for (int j = 0; j < params_.n; ++j) {
    if (!view.graph.is_leader(j)) continue;
    const std::int8_t p = view.recs[static_cast<std::size_t>(j)].pref;
    if (p != kPref0 && p != kPref1) return std::nullopt;
    if (value.has_value() && *value != p) return std::nullopt;
    value = p;
  }
  return value;
}

CoinValue BPRCConsensus::next_coin_value(ProcId me, const BPRCRecord& mine,
                                         const View& view) const {
  // §5 `function next_coin_value`: assemble the counter view c̄ for the
  // coin of my round r+1. My own contribution is my "next" slot; a
  // process j ahead of or tied with me by w < K contributes its slot for
  // round r+1 = r_j - w + 1; everyone else reads as withdrawn (0).
  std::vector<std::int64_t>& counters =
      coin_scratch_[static_cast<std::size_t>(me)];
  counters.assign(static_cast<std::size_t>(params_.n), 0);
  counters[static_cast<std::size_t>(me)] = mine.coins.next_slot();
  for (int j = 0; j < params_.n; ++j) {
    if (j == me) continue;
    const int s = view.graph.signed_diff(j, me);
    if (s >= 0 && s < params_.K) {
      // Serving a reader that trails by s takes s+2 ring slots (next,
      // current, and s−1 older ones still unrecycled); a budget with
      // fewer would have withdrawn this contribution already.
      if (slots_deficient_ && s + 2 > params_.space.slots) {
        latch_max(slot_demand_, s + 2);
      }
      counters[static_cast<std::size_t>(j)] =
          view.recs[static_cast<std::size_t>(j)].coins.read_for_trailing(s);
    }
  }
  return coin_value(counters, me, params_.coin);
}

void BPRCConsensus::do_inc(ProcId me, BPRCRecord& rec,
                           const DistanceGraph& graph) {
  // §5 `function inc`: advance the coin pointer (recycling and zeroing the
  // K+1-rounds-old slot) and apply the guarded edge-counter increments
  // computed from the scanned graph.
  //
  // Slot-demand accounting for under-declared rings. The snapshot
  // registers of the simulator mean a trailing read can never observe a
  // recycled slot (reader distance and ring come from the same record
  // snapshot), so the deficit is charged where the protocol's contract
  // needs the slack instead: advancing while process j sits within
  // serving range leaves j trailing by w = diff+1, and serving a
  // trailing-by-w reader that races this very advance takes w+2 retained
  // rounds — the static w+1 plus the one-round slack that is exactly the
  // paper's K+1st slot. A budget declaring fewer has, at this step,
  // committed to recycling a round some racing reader may still need.
  if (slots_deficient_) {
    for (int j = 0; j < params_.n; ++j) {
      if (j == me) continue;
      const int w = graph.signed_diff(me, j) + 1;
      if (w >= 1 && w < params_.K && w + 2 > params_.space.slots) {
        latch_max(slot_demand_, w + 2);
      }
    }
  }
  rec.coins.advance();
  inc_counters(me, graph, rec.edges, cycle_phys_);
}

void BPRCConsensus::publish(ProcId me, const BPRCRecord& rec,
                            std::int64_t round, int walk_delta,
                            bool decided) {
  (void)me;
  Hint hint;
  hint.round = static_cast<std::int32_t>(std::min<std::int64_t>(
      round, std::numeric_limits<std::int32_t>::max()));
  hint.pref = rec.pref;
  hint.walk_delta = static_cast<std::int8_t>(walk_delta);
  hint.counter = rec.coins.next_slot();
  hint.decided = decided;
  rt_.publish_hint(hint);
}

void BPRCConsensus::track_counter(std::int64_t c) {
  const std::int64_t mag = c < 0 ? -c : c;
  std::int64_t cur = max_counter_.load(std::memory_order_relaxed);
  while (cur < mag && !max_counter_.compare_exchange_weak(
                          cur, mag, std::memory_order_relaxed)) {
  }
}

int BPRCConsensus::propose(int input) {
  BPRC_REQUIRE(input == 0 || input == 1, "input must be a bit");
  const ProcId me = rt_.self();
  BPRC_REQUIRE(decisions_[static_cast<std::size_t>(me)] == -1,
               "propose called twice by one process");

  BPRCRecord rec = initial_record(params_);
  rec.pref = static_cast<std::int8_t>(input);
  std::int64_t round = 0;

  // Initial write: pref := input, round := inc(round). The inc is
  // computed against the all-tied initial graph (this process has not yet
  // observed anyone, and from the initial state the correct move is to
  // pull one step ahead of everyone regardless of what they have done).
  do_inc(me, rec, DistanceGraph(params_.n, params_.K));
  round = 1;
  publish(me, rec, round, 0, false);
  mem_.write(rec);

  View view{{}, DistanceGraph(params_.n, params_.K)};
  while (true) {
    scan_view(view);

    // Line 2: decide.
    if ((rec.pref == kPref0 || rec.pref == kPref1) &&
        view.graph.is_leader(me) &&
        all_disagree_trail_K(me, rec.pref, view)) {
      decisions_[static_cast<std::size_t>(me)] = rec.pref;
      decision_rounds_[static_cast<std::size_t>(me)] = round;
      publish(me, rec, round, 0, true);
      return rec.pref;
    }

    // Lines 3-4: adopt the leaders' agreed value and advance.
    if (const auto agreed = leaders_agreement(view)) {
      rec.pref = *agreed;
      do_inc(me, rec, view.graph);
      ++round;
      max_round_.store(
          std::max(max_round_.load(std::memory_order_relaxed), round),
          std::memory_order_relaxed);
      publish(me, rec, round, 0, false);
      mem_.write(rec);
      continue;
    }

    // Lines 5-6: leaders disagree; withdraw my preference (round kept).
    if (rec.pref == kPref0 || rec.pref == kPref1) {
      rec.pref = kBottom;
      publish(me, rec, round, 0, false);
      mem_.write(rec);
      continue;
    }

    // Line 7: flip the shared coin for round r+1 until it decides.
    const CoinValue cv = next_coin_value(me, rec, view);
    if (cv == CoinValue::kUndecided) {
      const bool flip = rt_.rng().flip();
      // The strong adversary sees the flip before the write lands.
      publish(me, rec, round, flip ? 1 : -1, false);
      std::int64_t& slot = rec.coins.next_slot();
      slot = walk_step(slot, flip, params_.coin);
      track_counter(slot);
      flips_.fetch_add(1, std::memory_order_relaxed);
      mem_.write(rec, /*payload=*/flip ? 1 : -1);
      publish(me, rec, round, 0, false);
      continue;
    }

    // Line 8: adopt the coin's value and advance.
    rec.pref = (cv == CoinValue::kHeads) ? kPref1 : kPref0;
    do_inc(me, rec, view.graph);
    ++round;
    max_round_.store(
        std::max(max_round_.load(std::memory_order_relaxed), round),
        std::memory_order_relaxed);
    publish(me, rec, round, 0, false);
    mem_.write(rec);
  }
}

int BPRCConsensus::decision(ProcId p) const {
  return decisions_[static_cast<std::size_t>(p)];
}

std::int64_t BPRCConsensus::decision_round(ProcId p) const {
  return decision_rounds_[static_cast<std::size_t>(p)];
}

MemoryFootprint BPRCConsensus::footprint() const {
  MemoryFootprint f;
  f.bounded = true;
  f.max_round_stored = 0;  // no round number exists in shared memory
  f.coin_locations =
      static_cast<std::int64_t>(params_.n) * params_.space.slots;
  // A latched deficit outranks the walk-counter report: the declared
  // budget could not have served some access this execution performed,
  // so the (bound, demand) pair becomes the footprint verdict and the
  // driver grades it kBoundedMemory.
  const std::int64_t cyc_demand = cycle_demand_.load(std::memory_order_relaxed);
  if (cyc_demand > params_.space.cycle()) {
    f.static_bound = params_.space.cycle();
    f.max_counter = cyc_demand;
    return f;
  }
  const std::int64_t sl_demand = slot_demand_.load(std::memory_order_relaxed);
  if (sl_demand > params_.space.slots) {
    f.static_bound = params_.space.slots;
    f.max_counter = sl_demand;
    return f;
  }
  f.max_counter = max_counter_.load(std::memory_order_relaxed);
  f.static_bound = params_.coin.m + 1;
  return f;
}

}  // namespace bprc
