#include "consensus/driver.hpp"

#include <algorithm>

#include "runtime/sim_runtime.hpp"
#include "runtime/thread_runtime.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bprc {

/// Collects results and evaluates the correctness properties after a run.
ConsensusRunResult evaluate_consensus(const ConsensusProtocol& protocol,
                                      const std::vector<int>& inputs,
                                      const Runtime& rt, RunResult run,
                                      const std::vector<bool>& crashed) {
  const int n = static_cast<int>(inputs.size());
  ConsensusRunResult out;
  out.total_steps = run.steps;
  out.reason = run.reason;
  out.footprint = protocol.footprint();

  out.decisions.resize(static_cast<std::size_t>(n), -1);
  out.decision_rounds.resize(static_cast<std::size_t>(n), 0);
  out.all_decided = true;
  out.consistent = true;
  int decided_value = -1;
  for (ProcId p = 0; p < n; ++p) {
    const int d = protocol.decision(p);
    out.decisions[static_cast<std::size_t>(p)] = d;
    out.decision_rounds[static_cast<std::size_t>(p)] =
        protocol.decision_round(p);
    out.max_proc_steps = std::max(out.max_proc_steps, rt.steps(p));
    if (d == -1) {
      if (!crashed[static_cast<std::size_t>(p)]) out.all_decided = false;
      continue;
    }
    BPRC_REQUIRE(d == 0 || d == 1, "protocol decided a non-bit value");
    out.max_round = std::max(out.max_round,
                             out.decision_rounds[static_cast<std::size_t>(p)]);
    if (decided_value == -1) {
      decided_value = d;
    } else if (decided_value != d) {
      out.consistent = false;  // the cardinal sin
    }
  }

  // Validity: unanimous input forces that decision. Also require that any
  // decision equals some process's input (holds for binary consensus
  // whenever any two inputs differ, and pins the unanimous case).
  out.valid = true;
  const bool unanimous =
      std::all_of(inputs.begin(), inputs.end(),
                  [&](int v) { return v == inputs.front(); });
  if (decided_value != -1) {
    if (unanimous && decided_value != inputs.front()) out.valid = false;
    if (std::find(inputs.begin(), inputs.end(), decided_value) ==
        inputs.end()) {
      out.valid = false;
    }
  }

  // Bounded memory: a protocol claiming boundedness must keep its largest
  // stored counter within the static bound it declares for itself.
  out.bounded_ok = !(out.footprint.bounded && out.footprint.static_bound > 0 &&
                     out.footprint.max_counter > out.footprint.static_bound);
  return out;
}

const char* to_string(FailureClass f) {
  switch (f) {
    case FailureClass::kNone:          return "none";
    case FailureClass::kConsistency:   return "consistency";
    case FailureClass::kValidity:      return "validity";
    case FailureClass::kBoundedMemory: return "bounded-memory";
    case FailureClass::kTermination:   return "termination";
    case FailureClass::kWorkerCrash:   return "worker-crash";
  }
  return "?";
}

FailureClass failure_class_from_string(const std::string& name) {
  for (const FailureClass f :
       {FailureClass::kConsistency, FailureClass::kValidity,
        FailureClass::kBoundedMemory, FailureClass::kTermination,
        FailureClass::kWorkerCrash}) {
    if (name == to_string(f)) return f;
  }
  return FailureClass::kNone;
}

SimReuse::SimReuse() = default;
SimReuse::~SimReuse() = default;

SimRuntime& SimReuse::acquire(int nprocs,
                              std::unique_ptr<Adversary> adversary,
                              std::uint64_t seed) {
  // Single-owner contract: the pooled fiber stacks are thread-local, so
  // a SimReuse touched from two threads would corrupt the pool silently.
  // Fail loudly instead.
  if (owner_ == std::thread::id{}) {
    owner_ = std::this_thread::get_id();
  } else {
    BPRC_REQUIRE(owner_ == std::this_thread::get_id(),
                 "SimReuse acquired from a second thread; it is "
                 "single-owner — use one SimReuse per worker thread");
  }
  if (runtime_ == nullptr) {
    runtime_ =
        std::make_unique<SimRuntime>(nprocs, std::move(adversary), seed);
  } else {
    runtime_->reset(nprocs, std::move(adversary), seed);
  }
  return *runtime_;
}

ConsensusRunResult run_consensus_sim(const ProtocolFactory& factory,
                                     const std::vector<int>& inputs,
                                     std::unique_ptr<Adversary> adversary,
                                     std::uint64_t seed,
                                     std::uint64_t max_steps,
                                     std::chrono::nanoseconds deadline,
                                     SimReuse* reuse,
                                     const std::vector<bool>* forced_flips,
                                     RegisterSemantics semantics) {
  const int n = static_cast<int>(inputs.size());
  // Recycled or freshly built, the runtime behaves identically; the
  // protocol instance is always fresh and dies with this call.
  std::unique_ptr<SimRuntime> local;
  if (reuse == nullptr) {
    local = std::make_unique<SimRuntime>(n, std::move(adversary), seed);
  }
  SimRuntime& rt =
      reuse != nullptr ? reuse->acquire(n, std::move(adversary), seed) : *local;
  // Before the factory: the protocol's registers cache the semantics at
  // construction. reset() reverts a pooled runtime to atomic, so this
  // must be re-applied per trial.
  rt.set_register_semantics(semantics);
  const std::unique_ptr<ConsensusProtocol> protocol = factory(rt);
  for (ProcId p = 0; p < n; ++p) {
    const int input = inputs[static_cast<std::size_t>(p)];
    rt.spawn(p, [&protocol, input] { protocol->propose(input); });
  }
  ScriptedFlipTape tape(forced_flips != nullptr ? *forced_flips
                                                : std::vector<bool>{});
  if (forced_flips != nullptr) rt.set_flip_tape(&tape);
  const RunResult run = rt.run(max_steps, deadline);
  // The tape dies with this call; never leave a pooled runtime pointing
  // at it.
  if (forced_flips != nullptr) rt.set_flip_tape(nullptr);
  std::vector<bool> crashed(static_cast<std::size_t>(n), false);
  for (ProcId p = 0; p < n; ++p) crashed[static_cast<std::size_t>(p)] = rt.crashed(p);
  return evaluate_consensus(*protocol, inputs, rt, run, crashed);
}

ConsensusRunResult run_consensus_threads(const ProtocolFactory& factory,
                                         const std::vector<int>& inputs,
                                         std::uint64_t seed,
                                         std::uint64_t max_steps,
                                         double yield_prob,
                                         std::chrono::nanoseconds deadline) {
  const int n = static_cast<int>(inputs.size());
  ThreadRuntime rt(n, seed, yield_prob);
  const std::unique_ptr<ConsensusProtocol> protocol = factory(rt);
  for (ProcId p = 0; p < n; ++p) {
    const int input = inputs[static_cast<std::size_t>(p)];
    rt.spawn(p, [&protocol, input] { protocol->propose(input); });
  }
  const RunResult run = rt.run(max_steps, deadline);
  const std::vector<bool> crashed(static_cast<std::size_t>(n), false);
  return evaluate_consensus(*protocol, inputs, rt, run, crashed);
}

std::vector<std::vector<int>> standard_input_patterns(int n,
                                                      std::uint64_t seed) {
  std::vector<std::vector<int>> patterns;
  patterns.emplace_back(static_cast<std::size_t>(n), 0);  // unanimous 0
  patterns.emplace_back(static_cast<std::size_t>(n), 1);  // unanimous 1
  if (n >= 2) {
    std::vector<int> split(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n / 2; ++i) split[static_cast<std::size_t>(i)] = 1;
    patterns.push_back(split);  // half/half
    std::vector<int> lone(static_cast<std::size_t>(n), 0);
    lone[0] = 1;
    patterns.push_back(lone);  // single dissenter
  }
  Rng rng(seed);
  std::vector<int> random(static_cast<std::size_t>(n));
  for (auto& v : random) v = rng.flip() ? 1 : 0;
  patterns.push_back(random);
  return patterns;
}

}  // namespace bprc
