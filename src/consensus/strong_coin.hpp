// Consensus with an atomic shared coin-flip primitive — the CIL87 arm.
//
// Chor–Israeli–Li assumed hardware with a *powerful atomic coin flip*: an
// object every process can invoke such that all invocations for the same
// phase return one uniformly random bit. With that primitive, one flip
// replaces the entire O(n²)-step random-walk shared coin and per-phase
// disagreement vanishes; consensus finishes in a constant expected number
// of rounds with trivial constants. This arm exists to quantify, in
// experiment E7, what the strong primitive buys — i.e. the gap the paper
// closes using only read/write registers.
//
// The AtomicCoinFlip object is intentionally OUTSIDE the read/write model:
// it is provided natively by the runtime (one checkpoint per flip, like
// any primitive), not built from registers — that impossibility is the
// whole point of the line of work.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "consensus/protocol.hpp"
#include "runtime/runtime.hpp"
#include "snapshot/scannable_memory.hpp"
#include "util/rng.hpp"

namespace bprc {

/// The strong primitive: flip(phase) returns one shared uniformly random
/// bit per phase, identical for all callers. Linearizable by construction
/// (first caller of a phase draws the bit).
class AtomicCoinFlip {
 public:
  AtomicCoinFlip(Runtime& rt, std::uint64_t seed)
      : rt_(rt),
        sink_(rt.trace_sink()),
        trace_id_(sink_ != nullptr ? sink_->on_object_created() : -1),
        rng_(seed) {}

  bool flip(std::int64_t phase) {
    rt_.checkpoint({OpDesc::Kind::kRead, /*object=*/-2, phase});
    const std::scoped_lock lock(mu_);
    auto [it, inserted] = bits_.try_emplace(phase, false);
    if (inserted) it->second = rng_.flip();
    if (sink_ != nullptr) {
      // Outside the read/write model, so report via the generic event
      // hook: the digest pins (phase, bit) and the first caller of a
      // phase mutates the shared phase→bit map.
      sink_->on_event(
          rt_.self(), trace_id_,
          (static_cast<std::uint64_t>(phase) << 1) |
              static_cast<std::uint64_t>(it->second),
          inserted);
    }
    return it->second;
  }

  std::size_t phases_used() const {
    const std::scoped_lock lock(mu_);
    return bits_.size();
  }

 private:
  Runtime& rt_;
  TraceSink* const sink_;  ///< cached Runtime::trace_sink(); usually null
  const int trace_id_;
  mutable std::mutex mu_;
  Rng rng_;
  std::map<std::int64_t, bool> bits_;
};

struct StrongCoinRecord {
  std::int8_t pref = kUnwritten;
  std::int64_t round = 0;

  friend bool operator==(const StrongCoinRecord& a,
                         const StrongCoinRecord& b) {
    return a.pref == b.pref && a.round == b.round;
  }
};

class StrongCoinConsensus final : public ConsensusProtocol {
 public:
  StrongCoinConsensus(Runtime& rt, std::uint64_t coin_seed, int trail = 2);

  int propose(int input) override;
  std::string name() const override { return "strong-coin"; }
  int decision(ProcId p) const override;
  std::int64_t decision_round(ProcId p) const override;
  MemoryFootprint footprint() const override;

 private:
  Runtime& rt_;
  int trail_;
  ScannableMemory<StrongCoinRecord> mem_;
  AtomicCoinFlip coin_;
  std::vector<std::int8_t> decisions_;
  std::vector<std::int64_t> decision_rounds_;
  std::atomic<std::int64_t> max_round_{0};
};

}  // namespace bprc
