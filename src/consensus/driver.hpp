// Experiment driver: runs one consensus instance end to end and checks
// the paper's correctness properties on the spot.
//
//   consistency — no two processes decided different values;
//   validity    — if all inputs were equal, the decision is that input;
//   decision ∈ inputs — the decided value is some process's input
//                 (implied by validity for unanimous inputs; checked
//                 always, it holds for every protocol here);
//   termination — every non-crashed process decided within the budget.
//
// Every run is parameterized by (protocol factory, inputs, adversary,
// seed, step budget) and is bit-for-bit reproducible in the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "consensus/protocol.hpp"
#include "runtime/adversary.hpp"
#include "runtime/runtime.hpp"

namespace bprc {

/// Builds a protocol instance bound to the given runtime.
using ProtocolFactory =
    std::function<std::unique_ptr<ConsensusProtocol>(Runtime&)>;

struct ConsensusRunResult {
  bool all_decided = false;   ///< every non-crashed process decided
  bool consistent = false;    ///< no two decisions differ
  bool valid = false;         ///< unanimous input => that decision
  std::vector<int> decisions; ///< per process; -1 = none (crashed/budget)
  std::vector<std::int64_t> decision_rounds;
  std::uint64_t total_steps = 0;
  std::uint64_t max_proc_steps = 0;
  std::int64_t max_round = 0;  ///< max decision round over deciders
  MemoryFootprint footprint;
  RunResult::Reason reason = RunResult::Reason::kAllDone;

  /// True iff every correctness property holds (termination of crashed
  /// processes excepted, naturally).
  bool ok() const { return all_decided && consistent && valid; }
};

/// Runs one instance in the deterministic simulator.
ConsensusRunResult run_consensus_sim(const ProtocolFactory& factory,
                                     const std::vector<int>& inputs,
                                     std::unique_ptr<Adversary> adversary,
                                     std::uint64_t seed,
                                     std::uint64_t max_steps);

/// Runs one instance on real threads (kernel scheduler as adversary).
ConsensusRunResult run_consensus_threads(const ProtocolFactory& factory,
                                         const std::vector<int>& inputs,
                                         std::uint64_t seed,
                                         std::uint64_t max_steps,
                                         double yield_prob = 0.05);

/// Input patterns the test matrix sweeps.
std::vector<std::vector<int>> standard_input_patterns(int n,
                                                      std::uint64_t seed);

}  // namespace bprc
