// Experiment driver: runs one consensus instance end to end and checks
// the paper's correctness properties on the spot.
//
//   consistency — no two processes decided different values;
//   validity    — if all inputs were equal, the decision is that input;
//   decision ∈ inputs — the decided value is some process's input
//                 (implied by validity for unanimous inputs; checked
//                 always, it holds for every protocol here);
//   termination — every non-crashed process decided within the budget.
//
// Every run is parameterized by (protocol factory, inputs, adversary,
// seed, step budget) and is bit-for-bit reproducible in the simulator.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "consensus/protocol.hpp"
#include "runtime/adversary.hpp"
#include "runtime/runtime.hpp"

namespace bprc {

class SimRuntime;

/// Builds a protocol instance bound to the given runtime.
using ProtocolFactory =
    std::function<std::unique_ptr<ConsensusProtocol>(Runtime&)>;

/// Cross-trial simulator scratch. Holds one SimRuntime and recycles it
/// (fiber stacks, process tables) across run_consensus_sim calls instead
/// of constructing a fresh one per trial. Strictly an allocator-level
/// optimization: results are bit-identical with and without reuse
/// (tests/test_replay.cpp pins this).
///
/// A SimReuse is SINGLE-OWNER: exactly one thread may ever acquire() it
/// (the fiber stacks it pools are thread-local, and the runtime is not
/// synchronized). The owner is the first thread to call acquire(), and
/// the contract is asserted on every subsequent acquire so misuse fails
/// loudly instead of racing. Parallel sweeps get one SimReuse per worker
/// thread — engine/executor.hpp does exactly that.
class SimReuse {
 public:
  SimReuse();
  ~SimReuse();
  SimReuse(const SimReuse&) = delete;
  SimReuse& operator=(const SimReuse&) = delete;

  /// A runtime re-armed for (nprocs, adversary, seed); constructed on
  /// first use, reset() thereafter. BPRC_REQUIREs that every call comes
  /// from the same thread as the first.
  SimRuntime& acquire(int nprocs, std::unique_ptr<Adversary> adversary,
                      std::uint64_t seed);

 private:
  std::unique_ptr<SimRuntime> runtime_;
  std::thread::id owner_;  ///< set by the first acquire()
};

/// Which correctness property a run violated, in decreasing severity.
/// Distinct from RunResult::Reason on purpose: the reason says how the
/// run *ended* (all done / step budget / watchdog), the failure class
/// says which *claim of the paper* broke. A budget-exhausted run is a
/// kTermination failure with reason kBudget; a watchdog abort is
/// kTermination with reason kDeadline; a consistency violation is
/// kConsistency whatever the reason.
enum class FailureClass : std::uint8_t {
  kNone = 0,
  kConsistency,    ///< two processes decided different values
  kValidity,       ///< decision outside the inputs / non-unanimous echo
  kBoundedMemory,  ///< a bounded protocol exceeded its static bound
  kTermination,    ///< a correct process failed to decide
  /// The trial killed the OS process executing it (segfault, abort, …).
  /// Never produced by ConsensusRunResult::failure() — the run never
  /// came back to be graded; the shard coordinator (src/shard/) assigns
  /// it when a spec index crashes its worker past the respawn budget.
  kWorkerCrash,
};

const char* to_string(FailureClass f);

/// Parses the names produced by to_string(FailureClass); kNone on mismatch.
FailureClass failure_class_from_string(const std::string& name);

struct ConsensusRunResult {
  bool all_decided = false;   ///< every non-crashed process decided
  bool consistent = false;    ///< no two decisions differ
  bool valid = false;         ///< unanimous input => that decision
  bool bounded_ok = true;     ///< footprint respects the protocol's own
                              ///< static bound (trivially true when the
                              ///< protocol claims no bound)
  std::vector<int> decisions; ///< per process; -1 = none (crashed/budget)
  std::vector<std::int64_t> decision_rounds;
  std::uint64_t total_steps = 0;
  std::uint64_t max_proc_steps = 0;
  std::int64_t max_round = 0;  ///< max decision round over deciders
  MemoryFootprint footprint;
  RunResult::Reason reason = RunResult::Reason::kAllDone;

  /// True iff every correctness property holds (termination of crashed
  /// processes excepted, naturally).
  bool ok() const { return all_decided && consistent && valid && bounded_ok; }

  /// The most severe violated property, kNone when ok().
  FailureClass failure() const {
    if (!consistent) return FailureClass::kConsistency;
    if (!valid) return FailureClass::kValidity;
    if (!bounded_ok) return FailureClass::kBoundedMemory;
    if (!all_decided) return FailureClass::kTermination;
    return FailureClass::kNone;
  }
};

/// Evaluates the correctness properties of a finished (or truncated) run:
/// fills a ConsensusRunResult from the protocol's decisions, the run
/// outcome, and the crash record. Exposed so harnesses that drive the
/// runtime themselves — the exploration driver foremost — grade runs with
/// exactly the same oracle as run_consensus_sim.
ConsensusRunResult evaluate_consensus(const ConsensusProtocol& protocol,
                                      const std::vector<int>& inputs,
                                      const Runtime& rt, RunResult run,
                                      const std::vector<bool>& crashed);

/// Runs one instance in the deterministic simulator. `deadline` (zero =
/// off) arms the simulator's wall-clock watchdog; see SimRuntime::run.
/// `reuse` (optional) recycles a simulator across calls — pass the same
/// SimReuse to every trial of a sweep to skip per-trial fiber-stack and
/// process-table allocation; the result is bit-identical either way.
/// `forced_flips` (optional) replays a recorded local-coin flip prefix
/// through a ScriptedFlipTape — the replay half of the exploration
/// driver's coin branching; null leaves the coins untouched.
/// `semantics` weakens the registers the protocol is built on (applied to
/// the runtime before the factory runs — registers cache it); the
/// adversary's resolve_read arbitrates every read that overlaps an
/// in-flight write.
ConsensusRunResult run_consensus_sim(
    const ProtocolFactory& factory, const std::vector<int>& inputs,
    std::unique_ptr<Adversary> adversary, std::uint64_t seed,
    std::uint64_t max_steps,
    std::chrono::nanoseconds deadline = std::chrono::nanoseconds::zero(),
    SimReuse* reuse = nullptr, const std::vector<bool>* forced_flips = nullptr,
    RegisterSemantics semantics = RegisterSemantics::kAtomic);

/// Runs one instance on real threads (kernel scheduler as adversary).
/// `deadline` (zero = off) arms the watchdog; see ThreadRuntime::run.
ConsensusRunResult run_consensus_threads(
    const ProtocolFactory& factory, const std::vector<int>& inputs,
    std::uint64_t seed, std::uint64_t max_steps, double yield_prob = 0.05,
    std::chrono::nanoseconds deadline = std::chrono::nanoseconds::zero());

/// Input patterns the test matrix sweeps.
std::vector<std::vector<int>> standard_input_patterns(int n,
                                                      std::uint64_t seed);

}  // namespace bprc
