#include "consensus/abrahamson.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bprc {

LocalCoinConsensus::LocalCoinConsensus(Runtime& rt)
    : rt_(rt),
      mem_(rt, LocalCoinRecord{}),
      decisions_(static_cast<std::size_t>(rt.nprocs()), -1),
      decision_rounds_(static_cast<std::size_t>(rt.nprocs()), 0) {}

int LocalCoinConsensus::propose(int input) {
  BPRC_REQUIRE(input == 0 || input == 1, "input must be a bit");
  const ProcId me = rt_.self();
  const int n = rt_.nprocs();

  LocalCoinRecord rec;
  rec.pref = static_cast<std::int8_t>(input);
  rec.version = 1;

  auto publish = [&](bool decided) {
    Hint hint;
    hint.round = static_cast<std::int32_t>(
        std::min<std::int64_t>(rec.version, INT32_MAX));
    hint.pref = rec.pref;
    hint.decided = decided;
    rt_.publish_hint(hint);
  };

  // Write before the first scan — consistency depends on it (see header).
  publish(false);
  mem_.write(rec);

  while (true) {
    const std::vector<LocalCoinRecord> view = mem_.scan();

    bool unanimous = true;
    for (int j = 0; j < n && unanimous; ++j) {
      if (j == me) continue;
      const std::int8_t p = view[static_cast<std::size_t>(j)].pref;
      if (p == kUnwritten) continue;  // j has not joined yet
      if (p != rec.pref) unanimous = false;
    }
    if (unanimous) {
      decisions_[static_cast<std::size_t>(me)] = rec.pref;
      decision_rounds_[static_cast<std::size_t>(me)] = rec.version;
      publish(true);
      max_version_.store(std::max(max_version_.load(std::memory_order_relaxed),
                                  rec.version),
                         std::memory_order_relaxed);
      return rec.pref;
    }

    // Disagreement: re-randomize the preference with a local coin.
    rec.pref = rt_.rng().flip() ? kPref1 : kPref0;
    rec.version += 1;
    flips_.fetch_add(1, std::memory_order_relaxed);
    publish(false);
    mem_.write(rec);
    max_version_.store(std::max(max_version_.load(std::memory_order_relaxed),
                                rec.version),
                       std::memory_order_relaxed);
  }
}

int LocalCoinConsensus::decision(ProcId p) const {
  return decisions_[static_cast<std::size_t>(p)];
}

std::int64_t LocalCoinConsensus::decision_round(ProcId p) const {
  return decision_rounds_[static_cast<std::size_t>(p)];
}

MemoryFootprint LocalCoinConsensus::footprint() const {
  MemoryFootprint f;
  f.bounded = false;  // the full A88 protocol stores unbounded timestamps
  f.max_round_stored = max_version_.load(std::memory_order_relaxed);
  f.max_counter = 0;
  f.coin_locations = 0;
  f.static_bound = 0;
  return f;
}

}  // namespace bprc
