#include "consensus/aspnes_herlihy.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "util/assert.hpp"

namespace bprc {

AspnesHerlihyConsensus::AspnesHerlihyConsensus(Runtime& rt, CoinParams coin,
                                               int trail)
    : rt_(rt),
      coin_(coin),
      trail_(trail),
      mem_(rt, AHRecord{}),
      decisions_(static_cast<std::size_t>(coin.n), -1),
      decision_rounds_(static_cast<std::size_t>(coin.n), 0) {
  BPRC_REQUIRE(coin_.n == rt.nprocs(),
               "params sized for a different process count");
  BPRC_REQUIRE(trail_ >= 2, "decide distance must be at least 2");
}

void AspnesHerlihyConsensus::track(const AHRecord& rec) {
  max_round_.store(
      std::max(max_round_.load(std::memory_order_relaxed), rec.round),
      std::memory_order_relaxed);
  for (const auto& [round, counter] : rec.coins) {
    (void)round;
    const std::int64_t mag = counter < 0 ? -counter : counter;
    std::int64_t cur = max_counter_.load(std::memory_order_relaxed);
    while (cur < mag && !max_counter_.compare_exchange_weak(
                            cur, mag, std::memory_order_relaxed)) {
    }
  }
}

int AspnesHerlihyConsensus::propose(int input) {
  BPRC_REQUIRE(input == 0 || input == 1, "input must be a bit");
  const ProcId me = rt_.self();
  const int n = coin_.n;
  const std::int64_t barrier = static_cast<std::int64_t>(coin_.b) * n;

  AHRecord rec;
  rec.pref = static_cast<std::int8_t>(input);
  rec.round = 1;
  std::int64_t local_locations = 0;

  auto publish = [&](int walk_delta, bool decided) {
    Hint hint;
    hint.round = static_cast<std::int32_t>(std::min<std::int64_t>(
        rec.round, std::numeric_limits<std::int32_t>::max()));
    hint.pref = rec.pref;
    hint.walk_delta = static_cast<std::int8_t>(walk_delta);
    const auto it = rec.coins.find(rec.round + 1);
    hint.counter = it == rec.coins.end() ? 0 : it->second;
    hint.decided = decided;
    rt_.publish_hint(hint);
  };

  publish(0, false);
  mem_.write(rec);

  while (true) {
    const std::vector<AHRecord> view = mem_.scan();
    scans_.fetch_add(1, std::memory_order_relaxed);

    std::int64_t max_round = rec.round;
    for (const auto& r : view) max_round = std::max(max_round, r.round);
    const bool leader = rec.round == max_round;

    // Decide: I lead, and everyone whose preference differs trails by the
    // full decide distance.
    if (rec.pref == kPref0 || rec.pref == kPref1) {
      bool can_decide = leader;
      for (int j = 0; j < n && can_decide; ++j) {
        if (j == me) continue;
        const auto& r = view[static_cast<std::size_t>(j)];
        if (r.pref != rec.pref && rec.round - r.round < trail_) {
          can_decide = false;
        }
      }
      if (can_decide) {
        decisions_[static_cast<std::size_t>(me)] = rec.pref;
        decision_rounds_[static_cast<std::size_t>(me)] = rec.round;
        publish(0, true);
        track(rec);
        return rec.pref;
      }
    }

    // Leaders agree -> adopt and advance.
    std::optional<std::int8_t> agreed;
    bool leaders_agree = true;
    for (int j = 0; j < n && leaders_agree; ++j) {
      const auto& r = view[static_cast<std::size_t>(j)];
      if (r.round != max_round) continue;
      if (r.pref != kPref0 && r.pref != kPref1) {
        leaders_agree = false;
      } else if (agreed.has_value() && *agreed != r.pref) {
        leaders_agree = false;
      } else {
        agreed = r.pref;
      }
    }
    if (leaders_agree && agreed.has_value()) {
      rec.pref = *agreed;
      rec.round += 1;
      publish(0, false);
      mem_.write(rec);
      track(rec);
      continue;
    }

    // Leaders disagree; withdraw my preference.
    if (rec.pref == kPref0 || rec.pref == kPref1) {
      rec.pref = kBottom;
      publish(0, false);
      mem_.write(rec);
      continue;
    }

    // Shared coin for round r+1 over the unbounded strip: sum every
    // process's counter at location r+1 (nothing is ever withdrawn).
    const std::int64_t target = rec.round + 1;
    std::int64_t walk = 0;
    for (int j = 0; j < n; ++j) {
      const auto& coins = (j == me)
                              ? rec.coins
                              : view[static_cast<std::size_t>(j)].coins;
      const auto it = coins.find(target);
      if (it != coins.end()) walk += it->second;
    }
    if (walk > barrier || walk < -barrier) {
      rec.pref = walk > barrier ? kPref1 : kPref0;
      rec.round += 1;
      publish(0, false);
      mem_.write(rec);
      track(rec);
      continue;
    }

    const bool flip = rt_.rng().flip();
    publish(flip ? 1 : -1, false);
    auto [it, inserted] = rec.coins.try_emplace(target, 0);
    if (inserted) {
      ++local_locations;
      coin_locations_.fetch_add(1, std::memory_order_relaxed);
    }
    it->second += flip ? 1 : -1;
    flips_.fetch_add(1, std::memory_order_relaxed);
    mem_.write(rec, /*payload=*/flip ? 1 : -1);
    publish(0, false);
    track(rec);
  }
}

int AspnesHerlihyConsensus::decision(ProcId p) const {
  return decisions_[static_cast<std::size_t>(p)];
}

std::int64_t AspnesHerlihyConsensus::decision_round(ProcId p) const {
  return decision_rounds_[static_cast<std::size_t>(p)];
}

MemoryFootprint AspnesHerlihyConsensus::footprint() const {
  MemoryFootprint f;
  f.bounded = false;
  f.max_round_stored = max_round_.load(std::memory_order_relaxed);
  f.max_counter = max_counter_.load(std::memory_order_relaxed);
  f.coin_locations = coin_locations_.load(std::memory_order_relaxed);
  f.static_bound = 0;
  return f;
}

}  // namespace bprc
