#include "consensus/strong_coin.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "util/assert.hpp"

namespace bprc {

StrongCoinConsensus::StrongCoinConsensus(Runtime& rt, std::uint64_t coin_seed,
                                         int trail)
    : rt_(rt),
      trail_(trail),
      mem_(rt, StrongCoinRecord{}),
      coin_(rt, coin_seed),
      decisions_(static_cast<std::size_t>(rt.nprocs()), -1),
      decision_rounds_(static_cast<std::size_t>(rt.nprocs()), 0) {
  BPRC_REQUIRE(trail_ >= 2, "decide distance must be at least 2");
}

int StrongCoinConsensus::propose(int input) {
  BPRC_REQUIRE(input == 0 || input == 1, "input must be a bit");
  const ProcId me = rt_.self();
  const int n = rt_.nprocs();

  StrongCoinRecord rec;
  rec.pref = static_cast<std::int8_t>(input);
  rec.round = 1;

  auto publish = [&](bool decided) {
    Hint hint;
    hint.round = static_cast<std::int32_t>(std::min<std::int64_t>(
        rec.round, std::numeric_limits<std::int32_t>::max()));
    hint.pref = rec.pref;
    hint.decided = decided;
    rt_.publish_hint(hint);
  };

  publish(false);
  mem_.write(rec);

  while (true) {
    const std::vector<StrongCoinRecord> view = mem_.scan();

    std::int64_t max_round = rec.round;
    for (const auto& r : view) max_round = std::max(max_round, r.round);
    const bool leader = rec.round == max_round;

    if (rec.pref == kPref0 || rec.pref == kPref1) {
      bool can_decide = leader;
      for (int j = 0; j < n && can_decide; ++j) {
        if (j == me) continue;
        const auto& r = view[static_cast<std::size_t>(j)];
        if (r.pref != rec.pref && rec.round - r.round < trail_) {
          can_decide = false;
        }
      }
      if (can_decide) {
        decisions_[static_cast<std::size_t>(me)] = rec.pref;
        decision_rounds_[static_cast<std::size_t>(me)] = rec.round;
        publish(true);
        return rec.pref;
      }
    }

    std::optional<std::int8_t> agreed;
    bool leaders_agree = true;
    for (int j = 0; j < n && leaders_agree; ++j) {
      const auto& r = view[static_cast<std::size_t>(j)];
      if (r.round != max_round) continue;
      if (r.pref != kPref0 && r.pref != kPref1) {
        leaders_agree = false;
      } else if (agreed.has_value() && *agreed != r.pref) {
        leaders_agree = false;
      } else {
        agreed = r.pref;
      }
    }
    if (leaders_agree && agreed.has_value()) {
      rec.pref = *agreed;
    } else {
      // One atomic shared flip settles the round for everyone who flips it.
      rec.pref = coin_.flip(rec.round + 1) ? kPref1 : kPref0;
    }
    rec.round += 1;
    max_round_.store(
        std::max(max_round_.load(std::memory_order_relaxed), rec.round),
        std::memory_order_relaxed);
    publish(false);
    mem_.write(rec);
  }
}

int StrongCoinConsensus::decision(ProcId p) const {
  return decisions_[static_cast<std::size_t>(p)];
}

std::int64_t StrongCoinConsensus::decision_round(ProcId p) const {
  return decision_rounds_[static_cast<std::size_t>(p)];
}

MemoryFootprint StrongCoinConsensus::footprint() const {
  MemoryFootprint f;
  f.bounded = false;  // explicit round numbers live in the registers
  f.max_round_stored = max_round_.load(std::memory_order_relaxed);
  f.max_counter = 0;
  f.coin_locations = static_cast<std::int64_t>(coin_.phases_used());
  f.static_bound = 0;
  return f;
}

}  // namespace bprc
