// Bounded Polynomial Randomized Consensus — the paper's algorithm (§5).
//
// Each process's register (one slot of a scannable memory) holds
//
//     { pref ∈ {0,1,⊥},  coin slots (K+1 bounded counters + pointer),
//       edge counters e_i[1..n] ∈ {0..3K-1} }
//
// — every field drawn from a domain bounded by a function of n alone.
// There is no round number anywhere in shared memory: the edge counters
// encode the K-capped *differences* between round numbers (§4), and the
// coin slots hold contributions to the K+1 most recent shared coins (§5),
// older contributions being withdrawn as the strip "shrinks" past them.
//
// Main loop (the paper's lines 1-8, with the OCR reconstruction decisions
// recorded in DESIGN.md §4):
//
//   1  scan
//   2  if pref ≠ ⊥, I am a leader, and every process that disagrees with
//      me trails by K                          → decide(pref)
//   3  elseif all leaders share a preference v ≠ ⊥
//   4                                          → pref := v;  inc
//   5  elseif pref ≠ ⊥
//   6                                          → pref := ⊥   (round kept)
//   7  elseif next_coin_value = undecided      → flip_next_coin
//   8  else                                    → pref := coin value;  inc
//
// where `inc` advances the coin-slot pointer (zeroing the recycled slot)
// and applies the guarded edge-counter increments of §4.3, and
// `next_coin_value` evaluates the §3 coin over the contributions of every
// process ahead of or tied with this one by < K rounds (processes further
// ahead have withdrawn; processes behind have not flipped yet and read
// as 0).
//
// Expected O(1) rounds against any strong adversary (disagreement per
// round ≤ 1/b + overflow noise, §6.3), polynomial total steps, and
// tolerance of up to n-1 crash failures (wait-freedom).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "coin/coin_logic.hpp"
#include "consensus/protocol.hpp"
#include "runtime/runtime.hpp"
#include "snapshot/scannable_memory.hpp"
#include "strip/coin_slots.hpp"
#include "strip/distance_graph.hpp"
#include "strip/edge_counters.hpp"
#include "util/space_budget.hpp"

namespace bprc {

struct BPRCParams {
  int n = 0;
  int K = 2;          ///< the strip constant; the paper fixes K = 2
  CoinParams coin;    ///< per-round shared-coin parameters (b, m)
  SpaceBudget space;  ///< the declared budget (K and b mirrored above)

  static BPRCParams standard(int n, int K = 2, int b = 4) {
    SpaceBudget s;
    s.K = K;
    s.slots = K + 1;
    s.b = b;
    return BPRCParams{n, K, CoinParams::standard(n, b), s};
  }

  /// The SpaceBudget path: every constant drawn from the budget. An
  /// under-provisioned budget is accepted — the protocol runs on a safe
  /// physical layout and latches the declared deficit (see the demand
  /// latch in bprc.cpp) so it surfaces as kBoundedMemory, not as junk.
  static BPRCParams from_budget(int n, const SpaceBudget& s) {
    BPRC_REQUIRE(s.validate(), "invalid space budget");
    return BPRCParams{n, s.K, CoinParams::standard(n, s.b, s.m_scale), s};
  }
};

/// The register record of one process. All fields bounded in n.
struct BPRCRecord {
  std::int8_t pref = kUnwritten;
  CoinSlots coins;
  EdgeCounters edges;

  friend bool operator==(const BPRCRecord& a, const BPRCRecord& b) {
    return a.pref == b.pref && a.coins == b.coins && a.edges == b.edges;
  }
};

class BPRCConsensus final : public ConsensusProtocol {
 public:
  using ArrowImpl = ScannableMemory<BPRCRecord>::ArrowImpl;

  BPRCConsensus(Runtime& rt, BPRCParams params,
                ArrowImpl arrows = ArrowImpl::kNative);

  int propose(int input) override;
  std::string name() const override { return "bprc"; }
  int decision(ProcId p) const override;
  std::int64_t decision_round(ProcId p) const override;
  MemoryFootprint footprint() const override;

  const BPRCParams& params() const { return params_; }

  /// Walk steps (local coin flips) performed across all processes.
  std::uint64_t total_flips() const {
    return flips_.load(std::memory_order_relaxed);
  }
  /// Scans performed across all processes.
  std::uint64_t total_scans() const {
    return scans_.load(std::memory_order_relaxed);
  }
  /// Largest local round any process reached (not stored in shared
  /// memory; tracked locally for the experiments).
  std::int64_t max_round_reached() const {
    return max_round_.load(std::memory_order_relaxed);
  }

 private:
  struct View {
    std::vector<BPRCRecord> recs;
    DistanceGraph graph;
  };

  void scan_view(View& view);
  bool all_disagree_trail_K(ProcId me, std::int8_t pref,
                            const View& view) const;
  std::optional<std::int8_t> leaders_agreement(const View& view) const;
  CoinValue next_coin_value(ProcId me, const BPRCRecord& mine,
                            const View& view) const;
  void do_inc(ProcId me, BPRCRecord& rec, const DistanceGraph& graph);
  void publish(ProcId me, const BPRCRecord& rec, std::int64_t round,
               int walk_delta, bool decided);
  void track_counter(std::int64_t c);

  Runtime& rt_;
  BPRCParams params_;
  /// Physical layout the instance actually runs on. Equal to the
  /// declared budget when it is sufficient; clamped up to the paper's
  /// 3K-cycle / K+1-slot layout when the budget under-provisions, in
  /// which case the demand latches below record every access the
  /// declared budget could not have served (footprint() turns a latched
  /// deficit into a kBoundedMemory verdict).
  int cycle_phys_ = 0;
  int slots_phys_ = 0;
  bool cycle_deficient_ = false;  ///< declared cycle < 2K+1
  bool slots_deficient_ = false;  ///< declared slots < K+1
  ScannableMemory<BPRCRecord> mem_;
  std::vector<std::int8_t> decisions_;        ///< per-process; -1 until decided
  std::vector<std::int64_t> decision_rounds_;
  /// Per-process counter buffer for next_coin_value (indexed by caller, so
  /// concurrent proposers never share); mutable because the evaluation is
  /// logically const.
  mutable std::vector<std::vector<std::int64_t>> coin_scratch_;
  std::atomic<std::uint64_t> flips_{0};
  std::atomic<std::uint64_t> scans_{0};
  std::atomic<std::int64_t> max_round_{0};
  std::atomic<std::int64_t> max_counter_{0};
  /// Demand latches for under-provisioned budgets: the largest edge-cycle
  /// cell count / coin-slot count some access actually needed. Stay 0
  /// while the declared budget covers every access. Mutable because
  /// next_coin_value (logically const) latches slot demand.
  mutable std::atomic<std::int64_t> cycle_demand_{0};
  mutable std::atomic<std::int64_t> slot_demand_{0};
};

}  // namespace bprc
