// Multi-valued consensus — the extension the paper states (§5):
// "We assume that processors start with binary initial values; however,
//  the protocol can be extended to handle arbitrary initial values."
//
// This is the standard bit-by-bit transform, built on any binary consensus
// protocol from this library:
//
//   1. Announce: every process publishes its input in a scannable memory
//      slot (write-once), then keeps a local `candidate` = its own input.
//   2. For bit positions high → low, run one binary consensus instance
//      proposing the candidate's bit. If the decision differs from the
//      candidate's bit, rescan the announcements and switch the candidate
//      to any announced input matching the decided prefix — one always
//      exists: the decided bit was proposed by some process whose
//      candidate matched the prefix (inductively an announced input), and
//      that input's announcement causally precedes the decision, hence
//      the rescan.
//   3. After the last bit, the decided prefix IS the candidate: an
//      announced input. Agreement holds bit-wise; validity holds because
//      only announced inputs survive as candidates.
//
// Cost: `value_bits` binary instances + one announcement round. Inherits
// wait-freedom, crash tolerance, expected-time and (with BPRC underneath)
// bounded-register properties from the binary protocol.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "consensus/driver.hpp"
#include "consensus/protocol.hpp"
#include "runtime/runtime.hpp"
#include "snapshot/scannable_memory.hpp"

namespace bprc {

class MultiValueConsensus {
 public:
  /// `value_bits` bounds the input domain to [0, 2^value_bits);
  /// `binary_factory` supplies the underlying binary instances (one per
  /// bit) — any protocol in this library works.
  MultiValueConsensus(Runtime& rt, int value_bits,
                      const ProtocolFactory& binary_factory);

  /// Runs the calling process's protocol to completion; every process
  /// must call at most once. Returns the agreed value, which is some
  /// process's input.
  std::uint64_t propose(std::uint64_t input);

  int value_bits() const { return value_bits_; }

  /// Decision of process p, or ~0ull if it has not decided.
  std::uint64_t decision(ProcId p) const {
    return decisions_[static_cast<std::size_t>(p)];
  }

 private:
  struct Announcement {
    bool valid = false;
    std::uint64_t value = 0;

    friend bool operator==(const Announcement& a, const Announcement& b) {
      return a.valid == b.valid && a.value == b.value;
    }
  };

  Runtime& rt_;
  int value_bits_;
  ScannableMemory<Announcement> announcements_;
  std::vector<std::unique_ptr<ConsensusProtocol>> bits_;
  std::vector<std::uint64_t> decisions_;
};

}  // namespace bprc
