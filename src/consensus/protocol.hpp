// Common interface of every consensus protocol in the library.
//
// A protocol object owns the shared memory for one consensus instance;
// each participating process calls propose(input) from its own runtime
// process body and receives the decided value. The interface also exposes
// the instrumentation the experiments need: step/round statistics and the
// memory footprint (the bounded-vs-unbounded axis the paper is about).
#pragma once

#include <cstdint>
#include <string>

#include "runtime/runtime.hpp"

namespace bprc {

/// Preference values stored in shared records. kBottom is the paper's ⊥;
/// kUnwritten marks a register nobody has written yet.
inline constexpr std::int8_t kPref0 = 0;
inline constexpr std::int8_t kPref1 = 1;
inline constexpr std::int8_t kBottom = 2;
inline constexpr std::int8_t kUnwritten = 3;

/// High-water marks of everything a protocol stores in shared registers.
/// For a bounded protocol, every entry is dominated by a static function
/// of n alone; for the unbounded baselines the entries grow with the
/// execution. Experiment E6 prints these side by side.
struct MemoryFootprint {
  bool bounded = false;             ///< paper-level claim for this protocol
  std::int64_t max_round_stored = 0;///< largest round number in a register
  std::int64_t max_counter = 0;     ///< largest |walk counter| in a register
  std::int64_t coin_locations = 0;  ///< distinct coin slots ever allocated
  std::int64_t static_bound = 0;    ///< protocol's own bound on max_counter
                                    ///< (0 when none exists)
};

class ConsensusProtocol {
 public:
  virtual ~ConsensusProtocol() = default;

  /// Runs the calling process's consensus protocol to completion.
  /// `input` must be 0 or 1; the return value is the decided bit.
  /// Must be called at most once per process, from inside a runtime body.
  virtual int propose(int input) = 0;

  virtual std::string name() const = 0;

  /// Decision made by process p, or -1 if p has not decided (crashed or
  /// still running). Safe to call after the run completes.
  virtual int decision(ProcId p) const = 0;

  /// Local round number at which p decided (protocol-specific unit), or 0.
  virtual std::int64_t decision_round(ProcId p) const = 0;

  virtual MemoryFootprint footprint() const = 0;
};

}  // namespace bprc
