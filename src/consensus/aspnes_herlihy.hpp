// Aspnes–Herlihy-style polynomial consensus with UNBOUNDED memory [AH88].
//
// The direct comparator the paper improves on: the same round/leader/
// shared-coin skeleton, but with explicit, unbounded round numbers in
// every register and an unbounded strip of per-round walk counters (one
// fresh counter location per process per round, never withdrawn,
// individually unbounded). Polynomial expected time — and register
// contents that grow with the execution, which is exactly what experiment
// E6 measures against BPRC's hard bounds.
//
// Faithfulness note (DESIGN.md §5): "unbounded" integers are 64-bit here;
// what the experiments report is their *growth*, which 64 bits never
// saturates in feasible runs. The per-round counter strip is a map in
// each process's record — an honest rendition of a register whose value
// domain grows without bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "coin/coin_logic.hpp"
#include "consensus/protocol.hpp"
#include "runtime/runtime.hpp"
#include "snapshot/scannable_memory.hpp"

namespace bprc {

struct AHRecord {
  std::int8_t pref = kUnwritten;
  std::int64_t round = 0;
  /// round -> this process's walk counter for that round's shared coin.
  /// Grows monotonically: nothing is ever withdrawn (the unboundedness).
  std::map<std::int64_t, std::int64_t> coins;

  friend bool operator==(const AHRecord& a, const AHRecord& b) {
    return a.pref == b.pref && a.round == b.round && a.coins == b.coins;
  }
};

class AspnesHerlihyConsensus final : public ConsensusProtocol {
 public:
  /// Reuses CoinParams for the walk barrier b (m is ignored: counters are
  /// unbounded). `trail` is the decide distance (2, matching BPRC's K=2).
  AspnesHerlihyConsensus(Runtime& rt, CoinParams coin, int trail = 2);

  int propose(int input) override;
  std::string name() const override { return "aspnes-herlihy"; }
  int decision(ProcId p) const override;
  std::int64_t decision_round(ProcId p) const override;
  MemoryFootprint footprint() const override;

  std::uint64_t total_flips() const {
    return flips_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_scans() const {
    return scans_.load(std::memory_order_relaxed);
  }

 private:
  void track(const AHRecord& rec);

  Runtime& rt_;
  CoinParams coin_;
  int trail_;
  ScannableMemory<AHRecord> mem_;
  std::vector<std::int8_t> decisions_;
  std::vector<std::int64_t> decision_rounds_;
  std::atomic<std::uint64_t> flips_{0};
  std::atomic<std::uint64_t> scans_{0};
  std::atomic<std::int64_t> max_round_{0};
  std::atomic<std::int64_t> max_counter_{0};
  std::atomic<std::int64_t> coin_locations_{0};
};

}  // namespace bprc
