#include "consensus/multivalue.hpp"

#include "util/assert.hpp"

namespace bprc {

MultiValueConsensus::MultiValueConsensus(Runtime& rt, int value_bits,
                                         const ProtocolFactory& binary_factory)
    : rt_(rt),
      value_bits_(value_bits),
      announcements_(rt, Announcement{}),
      decisions_(static_cast<std::size_t>(rt.nprocs()), ~std::uint64_t{0}) {
  BPRC_REQUIRE(value_bits >= 1 && value_bits <= 63,
               "value_bits must be in [1, 63]");
  bits_.reserve(static_cast<std::size_t>(value_bits));
  for (int i = 0; i < value_bits; ++i) {
    bits_.push_back(binary_factory(rt));
  }
}

std::uint64_t MultiValueConsensus::propose(std::uint64_t input) {
  const ProcId me = rt_.self();
  BPRC_REQUIRE(value_bits_ == 63 || input < (std::uint64_t{1} << value_bits_),
               "input exceeds the configured value domain");
  BPRC_REQUIRE(decisions_[static_cast<std::size_t>(me)] == ~std::uint64_t{0},
               "propose called twice by one process");

  // Phase 1: announce the input (write-once), so later candidate switches
  // always have a matching announced value to fall back on.
  announcements_.write(Announcement{true, input});

  // Phase 2: bit-by-bit binary agreement, high bit first.
  std::uint64_t candidate = input;
  std::uint64_t decided_prefix = 0;
  std::uint64_t prefix_mask = 0;
  for (int i = value_bits_ - 1; i >= 0; --i) {
    const std::uint64_t bit_mask = std::uint64_t{1} << i;
    const int proposal = (candidate & bit_mask) != 0 ? 1 : 0;
    const int decided =
        bits_[static_cast<std::size_t>(value_bits_ - 1 - i)]->propose(
            proposal);
    if (decided == 1) decided_prefix |= bit_mask;
    prefix_mask |= bit_mask;
    if (decided != proposal) {
      // My candidate lost this bit: adopt an announced input that matches
      // everything decided so far. The proposer of the winning bit had
      // one, and its announcement precedes this rescan.
      const std::vector<Announcement> seen = announcements_.scan();
      bool switched = false;
      for (const auto& a : seen) {
        if (a.valid && (a.value & prefix_mask) == decided_prefix) {
          candidate = a.value;
          switched = true;
          break;
        }
      }
      BPRC_REQUIRE(switched,
                   "no announced input matches the decided prefix — the "
                   "transform's invariant is broken");
    }
  }

  BPRC_REQUIRE((candidate & prefix_mask) == decided_prefix,
               "candidate diverged from the decided bits");
  decisions_[static_cast<std::size_t>(me)] = candidate;
  return candidate;
}

}  // namespace bprc
