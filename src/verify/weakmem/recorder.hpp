// Action-list recording for the native-atomics lane.
//
// The native registers (src/registers/native/) report every primitive
// atomic operation to a MemActionSink. WeakMemRecorder is the standard
// sink: one append-only log per thread (so recording is lock-free on the
// hot path — each OS thread touches only its own vector), plus the
// location table. The resulting Recording is what the offline SC checker
// (sc_checker.hpp) consumes, and what `.bprc-weakmem` artifacts persist:
// an artifact is a complete recorded execution, so replaying it re-runs
// the analysis and reproduces the verdict bit for bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"

namespace bprc::weakmem {

/// A complete recorded native execution: the location table plus one
/// program-ordered action list per thread.
struct Recording {
  struct Location {
    std::string name;
    std::uint64_t initial = 0;  ///< payload version-0 reads observe
  };

  std::vector<Location> locations;
  std::vector<std::vector<MemAction>> logs;  ///< index = thread id
  std::string case_name;                     ///< workload label for reports

  std::size_t total_actions() const {
    std::size_t n = 0;
    for (const auto& log : logs) n += log.size();
    return n;
  }
};

/// MemActionSink that builds a Recording in memory.
///
/// Threading contract (see MemActionSink): on_action and patch_mo touch
/// only logs[a.thread], and each thread is the sole writer of its own
/// log, so no synchronization is needed beyond the run's join.
/// on_location is called at register construction, before threads start.
class WeakMemRecorder final : public MemActionSink {
 public:
  explicit WeakMemRecorder(int nthreads) {
    rec_.logs.resize(static_cast<std::size_t>(nthreads));
  }

  int on_location(const char* name, std::uint64_t initial) override {
    rec_.locations.push_back({name, initial});
    return static_cast<int>(rec_.locations.size()) - 1;
  }

  std::size_t on_action(const MemAction& a) override {
    auto& log = rec_.logs[static_cast<std::size_t>(a.thread)];
    MemAction entry = a;
    entry.seq = static_cast<std::uint32_t>(log.size());
    log.push_back(entry);
    return log.size() - 1;
  }

  void patch_mo(ProcId thread, std::size_t index, std::uint64_t mo) override {
    rec_.logs[static_cast<std::size_t>(thread)][index].mo = mo;
  }

  /// The finished recording. Call only after the run has joined.
  Recording& recording() { return rec_; }
  const Recording& recording() const { return rec_; }

 private:
  Recording rec_;
};

/// Writes `rec` as a `.bprc-weakmem` v1 artifact (line-oriented text).
/// Returns false on I/O failure.
bool save_recording(const Recording& rec, const std::string& path);

/// Parses a `.bprc-weakmem` artifact; nullopt on malformed input.
std::optional<Recording> load_recording(const std::string& path);

/// True if the file at `path` starts with the weakmem artifact header
/// (used by bprc_torture --replay to dispatch on artifact kind).
bool is_weakmem_artifact(const std::string& path);

}  // namespace bprc::weakmem
