#include "verify/weakmem/sc_checker.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <queue>
#include <sstream>

#include "verify/linearizability.hpp"

namespace bprc::weakmem {

namespace {

const char* order_name(std::uint8_t order) {
  switch (static_cast<std::memory_order>(order)) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

/// The flattened view of a recording: global ids are thread-major, so
/// id = base[thread] + seq, which makes (thread, seq) → id arithmetic.
struct Flat {
  std::vector<const MemAction*> actions;  ///< by global id
  std::vector<std::size_t> base;          ///< first global id per thread

  std::size_t id_of(ProcId thread, std::uint32_t seq) const {
    return base[static_cast<std::size_t>(thread)] + seq;
  }
};

Flat flatten(const Recording& rec) {
  Flat flat;
  flat.base.resize(rec.logs.size());
  std::size_t next = 0;
  for (std::size_t t = 0; t < rec.logs.size(); ++t) {
    flat.base[t] = next;
    next += rec.logs[t].size();
  }
  flat.actions.reserve(next);
  for (const auto& log : rec.logs) {
    for (const MemAction& a : log) flat.actions.push_back(&a);
  }
  return flat;
}

/// Per-location index: writers keyed by modification-order version.
struct LocationIndex {
  /// global id of the write with version v, at writers[v-1]; the vector
  /// is dense because versions are validated contiguous 1..W.
  std::vector<std::size_t> writers;
};

std::string fail(const Recording& rec, const MemAction& a,
                 const char* reason) {
  return describe_action(rec, a) + ": " + reason;
}

/// Validates the version bookkeeping the edge construction relies on.
/// Returns the per-location writer index; on failure sets `witness`.
bool build_location_index(const Recording& rec, const Flat& flat,
                          std::vector<LocationIndex>& index,
                          std::string& witness) {
  index.assign(rec.locations.size(), {});
  // Count writes per location so version ranges can be validated.
  std::vector<std::size_t> writes(rec.locations.size(), 0);
  for (const MemAction* a : flat.actions) {
    if (a->location < 0 ||
        static_cast<std::size_t>(a->location) >= rec.locations.size()) {
      witness = fail(rec, *a, "location id out of range");
      return false;
    }
    if (a->kind != MemAction::Kind::kLoad) {
      ++writes[static_cast<std::size_t>(a->location)];
    }
  }
  for (std::size_t l = 0; l < index.size(); ++l) {
    index[l].writers.assign(writes[l], SIZE_MAX);
  }
  for (std::size_t id = 0; id < flat.actions.size(); ++id) {
    const MemAction& a = *flat.actions[id];
    const auto l = static_cast<std::size_t>(a.location);
    if (a.kind != MemAction::Kind::kLoad) {
      if (a.mo == 0) {
        witness = fail(rec, a, "store was never flushed (mo version 0)");
        return false;
      }
      if (a.mo > index[l].writers.size()) {
        witness = fail(rec, a, "mo version exceeds the location's write count");
        return false;
      }
      if (index[l].writers[a.mo - 1] != SIZE_MAX) {
        witness = fail(rec, a, "duplicate mo version on one location");
        return false;
      }
      index[l].writers[a.mo - 1] = id;
    }
    if (a.kind != MemAction::Kind::kStore) {
      if (a.rf > writes[l]) {
        witness = fail(rec, a, "rf version exceeds the location's write count");
        return false;
      }
    }
    if (a.kind == MemAction::Kind::kRmw && a.rf + 1 != a.mo) {
      witness = fail(rec, a, "RMW not atomic: rf version + 1 != mo version");
      return false;
    }
  }
  // Reads must return the value their rf write put there (or the initial
  // payload for rf = 0) — a recorder-integrity check, independent of the
  // order analysis below.
  for (const MemAction* a : flat.actions) {
    if (a->kind == MemAction::Kind::kStore) continue;
    const auto l = static_cast<std::size_t>(a->location);
    const std::uint64_t expect =
        a->rf == 0 ? rec.locations[l].initial
                   : flat.actions[index[l].writers[a->rf - 1]]->value;
    if (a->kind == MemAction::Kind::kLoad && a->value != expect) {
      witness = fail(rec, *a, "read value disagrees with its rf write");
      return false;
    }
  }
  return true;
}

struct Graph {
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> indegree;

  explicit Graph(std::size_t n) : out(n), indegree(n, 0) {}

  void edge(std::size_t a, std::size_t b) {
    out[a].push_back(b);
    ++indegree[b];
  }
};

Graph build_edges(const Recording& rec, const Flat& flat,
                  const std::vector<LocationIndex>& index) {
  Graph g(flat.actions.size());
  // po: consecutive actions of one thread.
  for (std::size_t t = 0; t < rec.logs.size(); ++t) {
    for (std::size_t i = 1; i < rec.logs[t].size(); ++i) {
      g.edge(flat.base[t] + i - 1, flat.base[t] + i);
    }
  }
  for (std::size_t id = 0; id < flat.actions.size(); ++id) {
    const MemAction& a = *flat.actions[id];
    const auto& writers = index[static_cast<std::size_t>(a.location)].writers;
    if (a.kind != MemAction::Kind::kStore) {
      // rf: the write this read observed precedes it.
      if (a.rf >= 1) g.edge(writers[a.rf - 1], id);
      // fr: this read precedes the write that overwrote what it saw. For
      // an RMW that overwriter is the RMW itself — no edge.
      if (a.rf < writers.size() && writers[a.rf] != id) {
        g.edge(id, writers[a.rf]);
      }
    }
    if (a.kind != MemAction::Kind::kLoad && a.mo >= 2) {
      // mo: version v-1 precedes version v.
      g.edge(writers[a.mo - 2], id);
    }
  }
  return g;
}

/// Clock-vector fixpoint: cv[id][t] = count of thread-t actions that
/// happen before or equal action `id` under po ∪ rf ∪ mo ∪ fr.
std::vector<std::vector<std::uint32_t>> clock_vectors(const Flat& flat,
                                                      const Graph& g,
                                                      std::size_t nthreads) {
  std::vector<std::vector<std::uint32_t>> cv(
      flat.actions.size(), std::vector<std::uint32_t>(nthreads, 0));
  std::deque<std::size_t> work;
  std::vector<bool> queued(flat.actions.size(), false);
  for (std::size_t id = 0; id < flat.actions.size(); ++id) {
    const MemAction& a = *flat.actions[id];
    cv[id][static_cast<std::size_t>(a.thread)] = a.seq + 1;
    work.push_back(id);
    queued[id] = true;
  }
  while (!work.empty()) {
    const std::size_t id = work.front();
    work.pop_front();
    queued[id] = false;
    for (const std::size_t succ : g.out[id]) {
      bool grew = false;
      for (std::size_t t = 0; t < nthreads; ++t) {
        if (cv[id][t] > cv[succ][t]) {
          cv[succ][t] = cv[id][t];
          grew = true;
        }
      }
      if (grew && !queued[succ]) {
        work.push_back(succ);
        queued[succ] = true;
      }
    }
  }
  return cv;
}

/// Finds a path b ⇝ a (BFS over the edge graph) for the cycle witness.
std::vector<std::size_t> find_path(const Graph& g, std::size_t from,
                                   std::size_t to) {
  std::vector<std::size_t> parent(g.out.size(), SIZE_MAX);
  std::deque<std::size_t> work{from};
  std::vector<bool> seen(g.out.size(), false);
  seen[from] = true;
  while (!work.empty()) {
    const std::size_t id = work.front();
    work.pop_front();
    if (id == to) break;
    for (const std::size_t succ : g.out[id]) {
      if (!seen[succ]) {
        seen[succ] = true;
        parent[succ] = id;
        work.push_back(succ);
      }
    }
  }
  std::vector<std::size_t> path;
  for (std::size_t id = to; id != SIZE_MAX; id = parent[id]) {
    path.push_back(id);
    if (id == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::string describe_action(const Recording& rec, const MemAction& a) {
  std::ostringstream out;
  out << "T" << a.thread << "#" << a.seq << " ";
  switch (a.kind) {
    case MemAction::Kind::kLoad:  out << "R "; break;
    case MemAction::Kind::kStore: out << "W "; break;
    case MemAction::Kind::kRmw:   out << "RMW "; break;
  }
  if (a.location >= 0 &&
      static_cast<std::size_t>(a.location) < rec.locations.size()) {
    out << rec.locations[static_cast<std::size_t>(a.location)].name;
  } else {
    out << "loc" << a.location;
  }
  out << "=" << a.value;
  if (a.kind == MemAction::Kind::kLoad) {
    out << " rf@v" << a.rf;
  } else if (a.kind == MemAction::Kind::kStore) {
    out << " @v" << a.mo;
  } else {
    out << " rf@v" << a.rf << "->v" << a.mo;
  }
  out << " (" << order_name(a.order) << ")";
  return out.str();
}

SCResult check_sc(const Recording& rec) {
  SCResult result;
  const Flat flat = flatten(rec);
  if (flat.actions.empty()) {
    result.well_formed = result.sc = result.coherent = true;
    return result;
  }

  // Log integrity: entry (t, i) must claim thread t and seq i — loaded
  // artifacts are untrusted input.
  for (std::size_t t = 0; t < rec.logs.size(); ++t) {
    for (std::size_t i = 0; i < rec.logs[t].size(); ++i) {
      const MemAction& a = rec.logs[t][i];
      if (static_cast<std::size_t>(a.thread) != t ||
          static_cast<std::size_t>(a.seq) != i) {
        result.witness = fail(rec, a, "log entry thread/seq inconsistent");
        return result;
      }
    }
  }

  std::vector<LocationIndex> index;
  if (!build_location_index(rec, flat, index, result.witness)) {
    return result;
  }
  result.well_formed = true;

  const Graph g = build_edges(rec, flat, index);
  const auto cv = clock_vectors(flat, g, rec.logs.size());

  // An edge a→b whose source's clock vector already covers b means b ⇝ a:
  // together with a→b that is a happens-before cycle, i.e. no SC total
  // order can explain this execution.
  for (std::size_t a = 0; a < flat.actions.size(); ++a) {
    for (const std::size_t b : g.out[a]) {
      if (a == b) continue;
      const MemAction& bact = *flat.actions[b];
      if (cv[a][static_cast<std::size_t>(bact.thread)] >= bact.seq + 1) {
        std::ostringstream witness;
        witness << "non-SC execution: happens-before cycle\n";
        const std::vector<std::size_t> path = find_path(g, b, a);
        for (const std::size_t id : path) {
          witness << "  " << describe_action(rec, *flat.actions[id]) << "\n";
        }
        witness << "  " << describe_action(rec, *flat.actions[b])
                << "  <- cycle closes here";
        result.witness = witness.str();
        return result;
      }
    }
  }
  result.sc = true;

  // Deterministic topological sort (Kahn, smallest global id first).
  {
    std::priority_queue<std::size_t, std::vector<std::size_t>,
                        std::greater<>> ready;
    std::vector<std::size_t> indegree = g.indegree;
    for (std::size_t id = 0; id < flat.actions.size(); ++id) {
      if (indegree[id] == 0) ready.push(id);
    }
    result.order.reserve(flat.actions.size());
    while (!ready.empty()) {
      const std::size_t id = ready.top();
      ready.pop();
      result.order.push_back(id);
      for (const std::size_t succ : g.out[id]) {
        if (--indegree[succ] == 0) ready.push(succ);
      }
    }
    // The cycle scan above proved acyclicity; the sort must be total.
    if (result.order.size() != flat.actions.size()) {
      result.sc = false;
      result.witness = "internal: topological sort incomplete";
      return result;
    }
  }

  // Feed the SC order through the Wing–Gong checker, one sequential
  // RegOp history per location: every read must return the latest write.
  std::vector<std::vector<RegOp>> histories(rec.locations.size());
  for (std::size_t pos = 0; pos < result.order.size(); ++pos) {
    const MemAction& a = *flat.actions[result.order[pos]];
    RegOp op;
    op.is_write = a.kind != MemAction::Kind::kLoad;
    op.value = a.value;
    op.inv = 2 * pos;
    op.res = 2 * pos + 1;
    op.proc = a.thread;
    histories[static_cast<std::size_t>(a.location)].push_back(op);
  }
  for (std::size_t l = 0; l < histories.size(); ++l) {
    const LinResult lin =
        check_register_linearizable(histories[l], rec.locations[l].initial);
    if (!lin.ok) {
      result.witness = "SC order not coherent on location " +
                       rec.locations[l].name + ": " + lin.witness;
      return result;
    }
  }
  result.coherent = true;
  return result;
}

}  // namespace bprc::weakmem
