// Offline sequential-consistency checking over recorded action lists, in
// the style of CDSChecker/scfence.
//
// Given a Recording, the checker materializes the execution's
// happens-before relation as the union of four edge families:
//
//   po — sequenced-before: consecutive actions of the same thread;
//   rf — reads-from: the write of version v on a location precedes every
//        read that observed version v;
//   mo — modification order: version v precedes version v+1;
//   fr — from-read: a read that observed version v precedes the write of
//        version v+1 (it demonstrably executed before that write).
//
// The execution is explainable by a sequentially consistent total order
// iff po ∪ rf ∪ mo ∪ fr is acyclic (Shasha–Snir). Cycle detection uses
// clock vectors: cv[a][t] = number of thread-t actions that happen before
// or equal a, propagated along edges to fixpoint; an edge a→b where
// cv[a] already covers b witnesses a cycle, and the checker reports the
// full cycle path as a human-readable witness.
//
// When the relation is acyclic, a deterministic topological sort yields
// an SC total order, which is re-validated through the existing
// Wing–Gong linearizability checker: each location's actions become a
// sequential RegOp history (read-your-latest-write semantics), so native
// runs are graded by exactly the oracle the simulator uses.
//
// Scope: this is a *dynamic* analysis of one observed execution, like
// TSAN — it proves this run SC or exhibits this run's violation; it does
// not enumerate the other executions the C++ memory model would allow.
// The deliberately-broken register makes the violation deterministic so
// the negative test does not depend on hardware reordering luck.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/weakmem/recorder.hpp"

namespace bprc::weakmem {

/// Verdict of the offline analysis.
struct SCResult {
  bool sc = false;          ///< po ∪ rf ∪ mo ∪ fr acyclic
  bool coherent = false;    ///< per-location Wing–Gong check of the total
                            ///< order (vacuously true when !sc)
  bool well_formed = false; ///< version fields internally consistent
  std::string witness;      ///< cycle / violation description when failed

  /// The SC total order (global indices into a flattened action array,
  /// thread-major) when sc holds; empty otherwise.
  std::vector<std::size_t> order;

  bool ok() const { return well_formed && sc && coherent; }
};

/// Runs the full analysis on a recording.
SCResult check_sc(const Recording& rec);

/// Renders one action as "T2#5 W x=3 @v7(release)" for witnesses.
std::string describe_action(const Recording& rec, const MemAction& a);

}  // namespace bprc::weakmem
