#include "verify/weakmem/recorder.hpp"

#include <fstream>
#include <sstream>

namespace bprc::weakmem {

namespace {
constexpr const char* kHeader = "bprc-weakmem v1";

char kind_char(MemAction::Kind k) {
  switch (k) {
    case MemAction::Kind::kLoad:  return 'L';
    case MemAction::Kind::kStore: return 'S';
    case MemAction::Kind::kRmw:   return 'R';
  }
  return '?';
}

bool kind_from_char(char c, MemAction::Kind& out) {
  switch (c) {
    case 'L': out = MemAction::Kind::kLoad;  return true;
    case 'S': out = MemAction::Kind::kStore; return true;
    case 'R': out = MemAction::Kind::kRmw;   return true;
    default:  return false;
  }
}
}  // namespace

bool save_recording(const Recording& rec, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << kHeader << "\n";
  out << "case " << (rec.case_name.empty() ? "-" : rec.case_name) << "\n";
  out << "threads " << rec.logs.size() << "\n";
  out << "locations " << rec.locations.size() << "\n";
  for (std::size_t i = 0; i < rec.locations.size(); ++i) {
    out << "loc " << i << " " << rec.locations[i].initial << " "
        << rec.locations[i].name << "\n";
  }
  out << "actions " << rec.total_actions() << "\n";
  for (const auto& log : rec.logs) {
    for (const MemAction& a : log) {
      out << "act " << a.thread << " " << a.seq << " " << a.location << " "
          << kind_char(a.kind) << " " << static_cast<int>(a.order) << " "
          << a.value << " " << a.rf << " " << a.mo << "\n";
    }
  }
  out << "end\n";
  return static_cast<bool>(out);
}

std::optional<Recording> load_recording(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != kHeader) return std::nullopt;

  Recording rec;
  std::size_t expected_actions = 0;
  bool saw_end = false;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    if (tag.empty()) continue;
    if (tag == "case") {
      ss >> rec.case_name;
      if (rec.case_name == "-") rec.case_name.clear();
    } else if (tag == "threads") {
      std::size_t k = 0;
      if (!(ss >> k) || k > 4096) return std::nullopt;
      rec.logs.resize(k);
    } else if (tag == "locations") {
      std::size_t m = 0;
      if (!(ss >> m)) return std::nullopt;
      rec.locations.reserve(m);
    } else if (tag == "loc") {
      std::size_t id = 0;
      Recording::Location loc;
      if (!(ss >> id >> loc.initial)) return std::nullopt;
      std::getline(ss, loc.name);
      if (!loc.name.empty() && loc.name.front() == ' ') loc.name.erase(0, 1);
      if (id != rec.locations.size()) return std::nullopt;
      rec.locations.push_back(std::move(loc));
    } else if (tag == "actions") {
      if (!(ss >> expected_actions)) return std::nullopt;
    } else if (tag == "act") {
      MemAction a;
      int order = 0;
      char kind = '?';
      if (!(ss >> a.thread >> a.seq >> a.location >> kind >> order >>
            a.value >> a.rf >> a.mo)) {
        return std::nullopt;
      }
      if (!kind_from_char(kind, a.kind)) return std::nullopt;
      if (a.thread < 0 ||
          static_cast<std::size_t>(a.thread) >= rec.logs.size()) {
        return std::nullopt;
      }
      a.order = static_cast<std::uint8_t>(order);
      rec.logs[static_cast<std::size_t>(a.thread)].push_back(a);
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      return std::nullopt;  // unknown tag: refuse rather than misparse
    }
  }
  if (!saw_end || rec.total_actions() != expected_actions) {
    return std::nullopt;
  }
  return rec;
}

bool is_weakmem_artifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  return std::getline(in, line) && line == kHeader;
}

}  // namespace bprc::weakmem
