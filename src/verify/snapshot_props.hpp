// Checkers for the scannable-memory correctness properties of Section 2.
//
// The paper specifies three properties of scan operation executions, all
// phrased through "potential coexistence" (Definition 2.1) in a global-time
// model:
//
//   P1 (regularity): every value a scan returns was written by a write
//      that potentially coexists with the scan.
//   P2 (snapshot): any two writes whose values a scan returns potentially
//      coexist with each other (at least one direction).
//   P3 (scan serializability): the views returned by any two scans are
//      comparable component-wise (one is everywhere no newer than the
//      other).
//
// Definition 2.1 reconstructed: W_j^[a] potentially coexists with
// operation execution O iff W_j^[a] can-affect O (it was invoked before O
// responded) and no later write by the same process j responded before O
// was invoked.
//
// The tests run the scannable memory in the simulator, record every
// operation's invocation/response timestamps plus the *ghost* write index
// each returned value carries (see registers/toggle.hpp), and feed the
// history to these checkers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"

namespace bprc {

/// One completed write operation execution on the scannable memory.
/// `index` is the writer-local sequence number (the ghost index); index 0
/// denotes the initial value, which behaves as a write that precedes
/// everything.
struct SnapWriteRec {
  ProcId writer = -1;
  std::uint64_t index = 0;
  std::uint64_t inv = 0;
  std::uint64_t res = 0;
};

/// One completed scan: `view[j]` is the ghost index of the write by
/// process j whose value the scan returned.
struct SnapScanRec {
  ProcId scanner = -1;
  std::uint64_t inv = 0;
  std::uint64_t res = 0;
  std::vector<std::uint64_t> view;
};

/// A complete recorded history of one scannable-memory instance.
struct SnapshotHistory {
  int nprocs = 0;
  std::vector<SnapWriteRec> writes;
  std::vector<SnapScanRec> scans;

  void add_write(SnapWriteRec w) { writes.push_back(w); }
  void add_scan(SnapScanRec s) { scans.push_back(std::move(s)); }
};

/// Each checker returns std::nullopt on success or a human-readable
/// description of the first violation found.
std::optional<std::string> check_p1_regularity(const SnapshotHistory& h);
std::optional<std::string> check_p2_snapshot(const SnapshotHistory& h);
std::optional<std::string> check_p3_serializability(const SnapshotHistory& h);

/// Strengthening beyond the paper's literal P3 (its prose motivates it:
/// "later scans will obtain later snapshot views"): if scan A responded
/// before scan B was invoked, A's view must be component-wise no newer
/// than B's.
std::optional<std::string> check_realtime_scan_order(const SnapshotHistory& h);

/// Runs all checks (P1, P2, P3, real-time order).
std::optional<std::string> check_snapshot_properties(const SnapshotHistory& h);

}  // namespace bprc
