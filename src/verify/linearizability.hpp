// Wing–Gong linearizability checking for atomic-register histories.
//
// The register constructions in src/registers are *checked*, not assumed:
// tests record every high-level operation's invocation/response interval
// (logical timestamps from Runtime::now) and returned/written value, then
// ask this checker whether some linearization respects both real-time
// order and sequential register semantics.
//
// The search is the classic Wing–Gong DFS with exact memoization on
// (set-of-linearized-ops, current register value). The done-set is a
// word-packed dynamic bitset, so histories of any length are accepted;
// runtime is exponential in the *concurrency* of the history, not its
// length, so long low-contention histories stay fast.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"

namespace bprc {

/// One completed high-level register operation.
struct RegOp {
  bool is_write = false;
  std::uint64_t value = 0;  ///< value written (write) or returned (read)
  std::uint64_t inv = 0;    ///< invocation timestamp
  std::uint64_t res = 0;    ///< response timestamp (inv < res)
  ProcId proc = -1;
};

/// Result of a linearizability check; on failure, `witness` explains the
/// first unlinearizable frontier the search proved empty.
struct LinResult {
  bool ok = false;
  std::string witness;
};

/// Checks whether `history` is linearizable as a single atomic register
/// with the given initial value. Histories of any length are accepted.
LinResult check_register_linearizable(const std::vector<RegOp>& history,
                                      std::uint64_t initial_value);

/// Convenience for tests: records operations with timestamps drawn from a
/// Runtime and builds RegOp entries.
class RegOpRecorder {
 public:
  explicit RegOpRecorder(Runtime& rt) : rt_(rt) {}

  /// Wraps a high-level read: f() performs it and returns the value.
  template <class F>
  std::uint64_t read(ProcId p, F&& f) {
    const std::uint64_t inv = rt_.now();
    const std::uint64_t v = f();
    const std::uint64_t res = rt_.now();
    append({false, v, inv, res, p});
    return v;
  }

  /// Wraps a high-level write of value v performed by f().
  template <class F>
  void write(ProcId p, std::uint64_t v, F&& f) {
    const std::uint64_t inv = rt_.now();
    f();
    const std::uint64_t res = rt_.now();
    append({true, v, inv, res, p});
  }

  std::vector<RegOp> take() { return std::move(ops_); }

 private:
  void append(const RegOp& op);

  Runtime& rt_;
  std::vector<RegOp> ops_;
};

}  // namespace bprc
