// Full linearizability checking for snapshot objects — strictly stronger
// than the paper's P1/P2/P3.
//
// The paper proves its scannable memory regular (P1), pairwise-coexistent
// (P2) and scan-serializable (P3) — and notes that P1-P2 alone do not
// even imply serializability. Our implementations should satisfy the
// modern gold standard: the whole history of update and scan operation
// executions is linearizable as one atomic snapshot object (every scan
// returns EXACTLY the state at some instant inside its interval, all
// instants totally ordered, real-time respected).
//
// Checker: Wing–Gong style DFS over SnapshotHistory (the same recorded
// structure the P1-P3 checkers consume). The abstract state after a set
// of linearized operations is determined by the SET alone — same-writer
// writes never overlap, so the real-time frontier rule forces them into
// program (ghost-index) order, making "last write per process" a function
// of the mask. That makes memoization on the mask sound. Histories are
// capped at 64 operations.
#pragma once

#include <string>

#include "verify/snapshot_props.hpp"

namespace bprc {

struct SnapLinResult {
  bool ok = false;
  std::string witness;
};

/// Checks whether the recorded history is linearizable as an atomic
/// snapshot object (initial value: ghost index 0 in every component).
SnapLinResult check_snapshot_linearizable(const SnapshotHistory& history);

}  // namespace bprc
