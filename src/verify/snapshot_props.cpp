#include "verify/snapshot_props.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace bprc {

namespace {

/// Interval of an operation execution. Index 0 (initial value) gets the
/// empty interval [0,0], which precedes every real operation.
struct Interval {
  std::uint64_t inv = 0;
  std::uint64_t res = 0;
};

/// Per-writer table of write intervals keyed by ghost index.
struct WriteTable {
  // writes_by[j][a] = interval of the a-th write execution by process j.
  std::vector<std::map<std::uint64_t, Interval>> writes_by;

  explicit WriteTable(const SnapshotHistory& h)
      : writes_by(static_cast<std::size_t>(h.nprocs)) {
    for (auto& per : writes_by) per.emplace(0, Interval{0, 0});
    for (const auto& w : h.writes) {
      BPRC_REQUIRE(w.writer >= 0 && w.writer < h.nprocs,
                   "write record with bad writer id");
      writes_by[static_cast<std::size_t>(w.writer)].emplace(
          w.index, Interval{w.inv, w.res});
    }
  }

  const Interval* find(ProcId j, std::uint64_t index) const {
    const auto& per = writes_by[static_cast<std::size_t>(j)];
    const auto it = per.find(index);
    return it == per.end() ? nullptr : &it->second;
  }

  /// Definition 2.1: write (j, a) potentially coexists with operation
  /// interval `o` iff it can-affect o (inv before o's response) and no
  /// later write by j responded before o was invoked.
  bool potentially_coexists(ProcId j, std::uint64_t a, Interval o) const {
    const Interval* w = find(j, a);
    BPRC_REQUIRE(w != nullptr, "scan returned an unrecorded write index");
    if (!(w->inv < o.res || a == 0)) return false;  // can-affect
    const auto& per = writes_by[static_cast<std::size_t>(j)];
    for (auto it = per.upper_bound(a); it != per.end(); ++it) {
      if (it->second.res < o.inv) return false;  // later write fully before o
    }
    return true;
  }
};

std::string describe_scan(const SnapScanRec& s) {
  return "scan by p" + std::to_string(s.scanner) + " [" +
         std::to_string(s.inv) + "," + std::to_string(s.res) + "]";
}

}  // namespace

std::optional<std::string> check_p1_regularity(const SnapshotHistory& h) {
  const WriteTable table(h);
  for (const auto& s : h.scans) {
    BPRC_REQUIRE(static_cast<int>(s.view.size()) == h.nprocs,
                 "scan view width must equal process count");
    for (ProcId j = 0; j < h.nprocs; ++j) {
      const auto a = s.view[static_cast<std::size_t>(j)];
      if (!table.potentially_coexists(j, a, Interval{s.inv, s.res})) {
        return "P1 violated: " + describe_scan(s) + " returned write #" +
               std::to_string(a) + " of p" + std::to_string(j) +
               " which does not potentially coexist with the scan";
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_p2_snapshot(const SnapshotHistory& h) {
  const WriteTable table(h);
  for (const auto& s : h.scans) {
    for (ProcId i = 0; i < h.nprocs; ++i) {
      for (ProcId j = i + 1; j < h.nprocs; ++j) {
        const auto a = s.view[static_cast<std::size_t>(i)];
        const auto b = s.view[static_cast<std::size_t>(j)];
        const Interval* wi = table.find(i, a);
        const Interval* wj = table.find(j, b);
        BPRC_REQUIRE(wi != nullptr && wj != nullptr,
                     "scan returned an unrecorded write index");
        const bool ij = table.potentially_coexists(i, a, *wj);
        const bool ji = table.potentially_coexists(j, b, *wi);
        if (!ij && !ji) {
          return "P2 violated: " + describe_scan(s) + " returned write #" +
                 std::to_string(a) + " of p" + std::to_string(i) +
                 " and write #" + std::to_string(b) + " of p" +
                 std::to_string(j) +
                 ", neither of which potentially coexists with the other";
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_p3_serializability(const SnapshotHistory& h) {
  for (std::size_t x = 0; x < h.scans.size(); ++x) {
    for (std::size_t y = x + 1; y < h.scans.size(); ++y) {
      const auto& sa = h.scans[x];
      const auto& sb = h.scans[y];
      bool a_le_b = true;
      bool b_le_a = true;
      for (ProcId i = 0; i < h.nprocs; ++i) {
        const auto ai = sa.view[static_cast<std::size_t>(i)];
        const auto bi = sb.view[static_cast<std::size_t>(i)];
        a_le_b = a_le_b && (ai <= bi);
        b_le_a = b_le_a && (bi <= ai);
      }
      if (!a_le_b && !b_le_a) {
        return "P3 violated: views of " + describe_scan(sa) + " and " +
               describe_scan(sb) + " are incomparable";
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_realtime_scan_order(
    const SnapshotHistory& h) {
  for (std::size_t x = 0; x < h.scans.size(); ++x) {
    for (std::size_t y = 0; y < h.scans.size(); ++y) {
      const auto& sa = h.scans[x];
      const auto& sb = h.scans[y];
      if (!(sa.res < sb.inv)) continue;  // only real-time-ordered pairs
      for (ProcId i = 0; i < h.nprocs; ++i) {
        const auto ai = sa.view[static_cast<std::size_t>(i)];
        const auto bi = sb.view[static_cast<std::size_t>(i)];
        if (ai > bi) {
          return "real-time order violated: " + describe_scan(sa) +
                 " precedes " + describe_scan(sb) + " but returned write #" +
                 std::to_string(ai) + " > #" + std::to_string(bi) + " of p" +
                 std::to_string(i);
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_snapshot_properties(
    const SnapshotHistory& h) {
  if (auto err = check_p1_regularity(h)) return err;
  if (auto err = check_p2_snapshot(h)) return err;
  if (auto err = check_p3_serializability(h)) return err;
  if (auto err = check_realtime_scan_order(h)) return err;
  return std::nullopt;
}

}  // namespace bprc
