#include "verify/linearizability.hpp"

#include <mutex>
#include <unordered_set>

#include "util/assert.hpp"

namespace bprc {

namespace {

std::mutex g_recorder_mutex;

struct Search {
  const std::vector<RegOp>& ops;
  std::unordered_set<std::uint64_t> failed;  // memo of dead (mask,value) states

  static std::uint64_t key(std::uint64_t mask, std::uint64_t value) {
    // Mix the register value into the mask; histories use small values so
    // a multiplicative mix suffices for the memo.
    return mask ^ (value * 0x9E3779B97F4A7C15ULL + 0x1234567);
  }

  bool dfs(std::uint64_t done_mask, std::uint64_t value) {
    const std::uint64_t n = ops.size();
    if (done_mask == (n == 64 ? ~std::uint64_t{0}
                              : ((std::uint64_t{1} << n) - 1))) {
      return true;
    }
    const std::uint64_t k = key(done_mask, value);
    if (failed.contains(k)) return false;

    // Frontier: op i may linearize next iff no other pending op responded
    // before i was invoked.
    std::uint64_t min_res = ~std::uint64_t{0};
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!(done_mask & (std::uint64_t{1} << i))) {
        min_res = std::min(min_res, ops[i].res);
      }
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      if (done_mask & (std::uint64_t{1} << i)) continue;
      const RegOp& op = ops[i];
      if (op.inv > min_res) continue;  // some pending op responded first
      if (!op.is_write && op.value != value) continue;  // read must match
      const std::uint64_t next_value = op.is_write ? op.value : value;
      if (dfs(done_mask | (std::uint64_t{1} << i), next_value)) return true;
    }
    failed.insert(k);
    return false;
  }
};

}  // namespace

LinResult check_register_linearizable(const std::vector<RegOp>& history,
                                      std::uint64_t initial_value) {
  BPRC_REQUIRE(history.size() <= 64,
               "linearizability checker limited to 64 operations");
  for (const RegOp& op : history) {
    BPRC_REQUIRE(op.inv < op.res, "operation interval must be non-empty");
  }
  Search search{history, {}};
  if (search.dfs(0, initial_value)) return {true, {}};

  std::string witness = "no linearization exists; history:";
  for (const RegOp& op : history) {
    witness += "\n  p" + std::to_string(op.proc) +
               (op.is_write ? " write(" : " read->") +
               std::to_string(op.value) + (op.is_write ? ")" : "") + " [" +
               std::to_string(op.inv) + "," + std::to_string(op.res) + "]";
  }
  return {false, witness};
}

void RegOpRecorder::append(const RegOp& op) {
  const std::scoped_lock lock(g_recorder_mutex);
  ops_.push_back(op);
}

}  // namespace bprc
