#include "verify/linearizability.hpp"

#include <cstddef>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "util/assert.hpp"

namespace bprc {

namespace {

std::mutex g_recorder_mutex;

struct Search {
  /// A memoized dead state: the exact set of already-linearized ops (as a
  /// word-packed bitset) plus the register value — no lossy mixing, so a
  /// memo hit can never be a collision between distinct states.
  struct State {
    std::vector<std::uint64_t> mask;
    std::uint64_t value = 0;
    friend bool operator==(const State& a, const State& b) {
      return a.value == b.value && a.mask == b.mask;
    }
  };
  struct StateHash {
    std::size_t operator()(const State& s) const {
      std::uint64_t h = 0xCBF29CE484222325ULL;
      for (const std::uint64_t w : s.mask) {
        h ^= w;
        h *= 0x100000001B3ULL;
      }
      h ^= s.value;
      h *= 0x100000001B3ULL;
      return static_cast<std::size_t>(h);
    }
  };

  const std::vector<RegOp>& ops;
  std::unordered_set<State, StateHash> failed;  ///< memo of dead states
  std::vector<std::uint64_t> mask;              ///< current done-set
  std::size_t done_count = 0;

  explicit Search(const std::vector<RegOp>& history)
      : ops(history), mask((history.size() + 63) / 64, 0) {}

  bool done(std::size_t i) const {
    return (mask[i >> 6] >> (i & 63)) & std::uint64_t{1};
  }
  void set(std::size_t i) { mask[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void clear(std::size_t i) { mask[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }

  bool dfs(std::uint64_t value) {
    const std::size_t n = ops.size();
    if (done_count == n) return true;
    State state{mask, value};
    if (failed.contains(state)) return false;

    // Frontier: op i may linearize next iff no other pending op responded
    // before i was invoked.
    std::uint64_t min_res = ~std::uint64_t{0};
    for (std::size_t i = 0; i < n; ++i) {
      if (!done(i)) min_res = std::min(min_res, ops[i].res);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (done(i)) continue;
      const RegOp& op = ops[i];
      if (op.inv > min_res) continue;  // some pending op responded first
      if (!op.is_write && op.value != value) continue;  // read must match
      const std::uint64_t next_value = op.is_write ? op.value : value;
      set(i);
      ++done_count;
      if (dfs(next_value)) return true;
      clear(i);
      --done_count;
    }
    failed.insert(std::move(state));
    return false;
  }
};

}  // namespace

LinResult check_register_linearizable(const std::vector<RegOp>& history,
                                      std::uint64_t initial_value) {
  for (const RegOp& op : history) {
    BPRC_REQUIRE(op.inv < op.res, "operation interval must be non-empty");
  }
  Search search(history);
  if (search.dfs(initial_value)) return {true, {}};

  std::string witness = "no linearization exists; history:";
  for (const RegOp& op : history) {
    witness += "\n  p" + std::to_string(op.proc) +
               (op.is_write ? " write(" : " read->") +
               std::to_string(op.value) + (op.is_write ? ")" : "") + " [" +
               std::to_string(op.inv) + "," + std::to_string(op.res) + "]";
  }
  return {false, witness};
}

void RegOpRecorder::append(const RegOp& op) {
  const std::scoped_lock lock(g_recorder_mutex);
  ops_.push_back(op);
}

}  // namespace bprc
