#include "verify/snapshot_linearizability.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"

namespace bprc {

namespace {

struct Op {
  bool is_scan = false;
  ProcId proc = -1;
  std::uint64_t inv = 0;
  std::uint64_t res = 0;
  // write: the (writer-local) ghost index it installs.
  std::uint64_t index = 0;
  // scan: the full returned view (ghost index per component).
  std::vector<std::uint64_t> view;
};

struct Search {
  const std::vector<Op>& ops;
  int nprocs;
  std::unordered_set<std::uint64_t> failed;

  // state[j] = highest linearized ghost index of writer j (0 initially).
  bool dfs(std::uint64_t done_mask, std::vector<std::uint64_t>& state) {
    const std::uint64_t n = ops.size();
    const std::uint64_t full =
        n == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
    if (done_mask == full) return true;
    if (failed.contains(done_mask)) return false;

    std::uint64_t min_res = ~std::uint64_t{0};
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!(done_mask & (std::uint64_t{1} << i))) {
        min_res = std::min(min_res, ops[i].res);
      }
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      if (done_mask & (std::uint64_t{1} << i)) continue;
      const Op& op = ops[i];
      if (op.inv > min_res) continue;  // frontier rule
      if (op.is_scan) {
        bool match = true;
        for (int j = 0; j < nprocs && match; ++j) {
          match = op.view[static_cast<std::size_t>(j)] ==
                  state[static_cast<std::size_t>(j)];
        }
        if (!match) continue;
        if (dfs(done_mask | (std::uint64_t{1} << i), state)) return true;
      } else {
        auto& slot = state[static_cast<std::size_t>(op.proc)];
        const std::uint64_t saved = slot;
        // Same-writer program order: the frontier rule already forbids
        // out-of-order same-writer writes (they never overlap), so the
        // index must be the successor; skip (prune) otherwise.
        if (op.index != saved + 1) continue;
        slot = op.index;
        if (dfs(done_mask | (std::uint64_t{1} << i), state)) return true;
        slot = saved;
      }
    }
    failed.insert(done_mask);
    return false;
  }
};

}  // namespace

SnapLinResult check_snapshot_linearizable(const SnapshotHistory& history) {
  std::vector<Op> ops;
  ops.reserve(history.writes.size() + history.scans.size());
  for (const auto& w : history.writes) {
    Op op;
    op.is_scan = false;
    op.proc = w.writer;
    op.inv = w.inv;
    op.res = w.res;
    op.index = w.index;
    ops.push_back(op);
  }
  for (const auto& s : history.scans) {
    Op op;
    op.is_scan = true;
    op.proc = s.scanner;
    op.inv = s.inv;
    op.res = s.res;
    op.view = s.view;
    BPRC_REQUIRE(static_cast<int>(op.view.size()) == history.nprocs,
                 "scan view width must equal process count");
    ops.push_back(op);
  }
  BPRC_REQUIRE(ops.size() <= 64,
               "snapshot linearizability checker limited to 64 operations");
  for (const Op& op : ops) {
    BPRC_REQUIRE(op.inv < op.res, "operation interval must be non-empty");
  }

  Search search{ops, history.nprocs, {}};
  std::vector<std::uint64_t> state(static_cast<std::size_t>(history.nprocs),
                                   0);
  if (search.dfs(0, state)) return {true, {}};

  std::string witness = "no snapshot linearization exists; history:";
  for (const Op& op : ops) {
    witness += "\n  p" + std::to_string(op.proc);
    if (op.is_scan) {
      witness += " scan->[";
      for (std::size_t j = 0; j < op.view.size(); ++j) {
        witness += (j ? "," : "") + std::to_string(op.view[j]);
      }
      witness += "]";
    } else {
      witness += " write#" + std::to_string(op.index);
    }
    witness += " [" + std::to_string(op.inv) + "," +
               std::to_string(op.res) + "]";
  }
  return {false, witness};
}

}  // namespace bprc
