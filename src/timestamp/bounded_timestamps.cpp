#include "timestamp/bounded_timestamps.hpp"

#include <algorithm>

namespace bprc {

BoundedTimestampSystem::BoundedTimestampSystem(int max_live)
    : depth_(std::max(max_live, 1)) {
  BPRC_REQUIRE(max_live >= 1 && max_live <= 40,
               "timestamp system sized for 1..40 live labels");
}

std::uint64_t BoundedTimestampSystem::domain_size() const {
  std::uint64_t size = 1;
  for (int i = 0; i < depth_; ++i) size *= 3;
  return size;
}

bool BoundedTimestampSystem::precedes(const Label& a, const Label& b) const {
  BPRC_REQUIRE(static_cast<int>(a.size()) == depth_ &&
                   static_cast<int>(b.size()) == depth_,
               "label depth mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    // b newer iff its digit dominates at the first difference.
    return digit_dominates(b[i], a[i]);
  }
  BPRC_REQUIRE(false, "precedes() on equal labels");
  return false;
}

BoundedTimestampSystem::Label BoundedTimestampSystem::new_label(
    const std::vector<Label>& live) const {
  BPRC_REQUIRE(static_cast<int>(live.size()) < depth_ + 1,
               "more live labels than the system supports");
  std::vector<const Label*> refs;
  refs.reserve(live.size());
  for (const auto& label : live) {
    BPRC_REQUIRE(static_cast<int>(label.size()) == depth_,
                 "label depth mismatch");
    refs.push_back(&label);
  }
  return new_label_from(refs, 0);
}

BoundedTimestampSystem::Label BoundedTimestampSystem::new_label_from(
    const std::vector<const Label*>& live, std::size_t level) const {
  Label out(static_cast<std::size_t>(depth_), 0);
  std::vector<const Label*> current = live;
  bool placed = current.empty();  // empty system: zeros are fine
  for (std::size_t l = level; l < static_cast<std::size_t>(depth_); ++l) {
    if (current.empty()) {
      // Nothing left to dominate below this level: zeros suffice.
      placed = true;
      break;
    }
    bool present[3] = {false, false, false};
    for (const Label* label : current) present[(*label)[l]] = true;
    const int occupied = present[0] + present[1] + present[2];
    BPRC_REQUIRE(occupied <= 2,
                 "live labels occupy all three classes — the sequential "
                 "timestamp invariant is broken (too many live labels?)");

    if (occupied == 1) {
      // One class c occupied: take the class that dominates it; the
      // fresh sub-label starts from zeros (nothing lives there).
      std::uint8_t c = 0;
      for (std::uint8_t d = 0; d < 3; ++d) {
        if (present[d]) c = d;
      }
      out[l] = static_cast<std::uint8_t>((c + 1) % 3);
      return out;  // rest already zero
    }
    // Two classes occupied: one dominates the other; join the dominant
    // class and recurse among its inhabitants only (strictly fewer).
    std::uint8_t a = 0;
    std::uint8_t b = 0;
    bool first = true;
    for (std::uint8_t d = 0; d < 3; ++d) {
      if (!present[d]) continue;
      if (first) {
        a = d;
        first = false;
      } else {
        b = d;
      }
    }
    const std::uint8_t target = digit_dominates(a, b) ? a : b;
    out[l] = target;
    std::vector<const Label*> next;
    for (const Label* label : current) {
      if ((*label)[l] == target) next.push_back(label);
    }
    BPRC_REQUIRE(next.size() < current.size(),
                 "recursion failed to shrink the live set");
    current = std::move(next);
  }
  // Reaching the last level with live labels still to dominate means the
  // system was oversubscribed (more live labels than depth supports).
  BPRC_REQUIRE(placed, "timestamp system depth exhausted");
  return out;
}

}  // namespace bprc
