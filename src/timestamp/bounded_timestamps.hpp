// Bounded sequential timestamp system — the Israeli–Li technique [IL88]
// the paper's introduction leans on:
//
//   "Such unbounded locking mechanisms are based on time stamping
//    concurrent lock setting events, a process that has been shown to be
//    modularly replaceable using bounded concurrent time-stamp systems"
//    (citing [DS89]; the sequential core is Israeli–Li, FOCS 1987).
//
// A timestamp system hands out labels such that (i) a fresh label orders
// after every currently live label, and (ii) live labels are totally
// ordered — with UNBOUNDED integers this is trivial (max+1); the point is
// doing it with labels from a FIXED finite domain while old labels die
// and their bit patterns get recycled.
//
// Construction (recursive 3-cycles): a label is `depth` digits over
// {0,1,2} with the cyclic dominance relation  (d+1 mod 3) ≻ d  at every
// level. The system maintains the invariant that live labels occupy at
// most TWO of the three top-level classes; a fresh label goes to the
// dominant side (opening the third class when a whole class must be
// topped), recursing into the sub-system of the dominant class — which
// strictly fewer live labels occupy, so depth n suffices for n live
// labels. Order: first differing digit, by cyclic dominance.
//
// This file provides the sequential system (one label-taking at a time —
// what the derived [ADS89] exponential-time bounded consensus needs under
// a lock); making it concurrent is the [DS89] result the paper cites and
// deliberately *avoids needing* for its own polynomial algorithm. The
// property tests validate order-isomorphism with unbounded integer
// timestamps over long random live/die histories.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace bprc {

class BoundedTimestampSystem {
 public:
  /// A label: `depth()` digits, most significant first, each in {0,1,2}.
  using Label = std::vector<std::uint8_t>;

  /// Supports up to `max_live` simultaneously live labels.
  explicit BoundedTimestampSystem(int max_live);

  int depth() const { return depth_; }

  /// The label the system starts from (oldest possible).
  Label initial_label() const { return Label(static_cast<std::size_t>(depth_), 0); }

  /// A fresh label ordering after every label in `live` (which must hold
  /// at most max_live-1 entries, each of exactly depth() digits).
  Label new_label(const std::vector<Label>& live) const;

  /// True iff label `a` orders before (is older than) label `b`.
  /// Requires a != b (equal labels are the same timestamp).
  bool precedes(const Label& a, const Label& b) const;

  /// Cyclic dominance at one level: x beats y iff x == y+1 (mod 3).
  static bool digit_dominates(std::uint8_t x, std::uint8_t y) {
    return x == (y + 1) % 3;
  }

  /// Total number of distinct labels = 3^depth — the bounded domain.
  std::uint64_t domain_size() const;

 private:
  Label new_label_from(const std::vector<const Label*>& live,
                       std::size_t level) const;

  int depth_;
};

}  // namespace bprc
