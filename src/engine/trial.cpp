#include "engine/trial.hpp"

#include <memory>
#include <utility>

#include "engine/adversaries.hpp"
#include "util/assert.hpp"

namespace bprc::engine {

namespace {

/// Non-owning forwarder: lets run_trial keep the RecordingAdversary alive
/// past run_consensus_sim (the SimRuntime destroys the adversary it owns
/// before returning the result).
class BorrowedAdversary final : public Adversary {
 public:
  explicit BorrowedAdversary(Adversary& inner) : inner_(inner) {}
  ProcId pick(SimCtl& ctl) override { return inner_.pick(ctl); }
  std::string name() const override { return inner_.name(); }
  int resolve_read(SimCtl& ctl, const StaleRead& sr) override {
    return inner_.resolve_read(ctl, sr);
  }

 private:
  Adversary& inner_;
};

}  // namespace

TrialOutcome run_trial(const TrialSpec& spec, SimReuse* reuse) {
  BPRC_REQUIRE(spec.factory != nullptr, "TrialSpec without a protocol factory");
  const std::vector<bool>* flips =
      spec.forced_flips.has_value() ? &*spec.forced_flips : nullptr;
  TrialOutcome out;

  if (spec.scripted) {
    // Replay: fixed pick sequence + fixed crash events + fixed stale-read
    // choices; nothing to record.
    auto scripted = std::make_unique<ScriptedAdversary>(spec.schedule);
    if (!spec.forced_stales.empty()) {
      scripted->set_stale_script(spec.forced_stales);
    }
    std::unique_ptr<Adversary> adv = std::move(scripted);
    if (!spec.crash_plan.empty()) {
      adv = std::make_unique<CrashPlanAdversary>(std::move(adv),
                                                 spec.crash_plan);
    }
    out.result =
        run_consensus_sim(spec.factory, spec.inputs, std::move(adv), spec.seed,
                          spec.max_steps, spec.deadline, reuse, flips,
                          spec.semantics);
    out.failure = out.result.failure();
    return out;
  }

  std::unique_ptr<Adversary> adv =
      make_adversary(spec.adversary, spec.adversary_seed.value_or(spec.seed));
  if (!spec.crash_plan.empty()) {
    adv = std::make_unique<CrashPlanAdversary>(std::move(adv), spec.crash_plan);
  }
  if (spec.record) {
    RecordingAdversary recording(std::move(adv));
    out.result = run_consensus_sim(
        spec.factory, spec.inputs,
        std::make_unique<BorrowedAdversary>(recording), spec.seed,
        spec.max_steps, spec.deadline, reuse, flips, spec.semantics);
    out.schedule = recording.script();
    out.crashes = recording.crashes();
    out.stales = recording.stales();
  } else {
    out.result =
        run_consensus_sim(spec.factory, spec.inputs, std::move(adv), spec.seed,
                          spec.max_steps, spec.deadline, reuse, flips,
                          spec.semantics);
  }
  out.failure = out.result.failure();
  return out;
}

}  // namespace bprc::engine
