#include "engine/trial.hpp"

#include <memory>
#include <utility>

#include "engine/adversaries.hpp"
#include "util/assert.hpp"

namespace bprc::engine {

namespace {

/// Non-owning forwarder: lets run_trial keep the RecordingAdversary alive
/// past run_consensus_sim (the SimRuntime destroys the adversary it owns
/// before returning the result).
class BorrowedAdversary final : public Adversary {
 public:
  explicit BorrowedAdversary(Adversary& inner) : inner_(inner) {}
  ProcId pick(SimCtl& ctl) override { return inner_.pick(ctl); }
  std::string name() const override { return inner_.name(); }

 private:
  Adversary& inner_;
};

}  // namespace

TrialOutcome run_trial(const TrialSpec& spec, SimReuse* reuse) {
  BPRC_REQUIRE(spec.factory != nullptr, "TrialSpec without a protocol factory");
  const std::vector<bool>* flips =
      spec.forced_flips.has_value() ? &*spec.forced_flips : nullptr;
  TrialOutcome out;

  if (spec.scripted) {
    // Replay: fixed pick sequence + fixed crash events; nothing to record.
    std::unique_ptr<Adversary> adv =
        std::make_unique<ScriptedAdversary>(spec.schedule);
    if (!spec.crash_plan.empty()) {
      adv = std::make_unique<CrashPlanAdversary>(std::move(adv),
                                                 spec.crash_plan);
    }
    out.result =
        run_consensus_sim(spec.factory, spec.inputs, std::move(adv), spec.seed,
                          spec.max_steps, spec.deadline, reuse, flips);
    out.failure = out.result.failure();
    return out;
  }

  std::unique_ptr<Adversary> adv =
      make_adversary(spec.adversary, spec.adversary_seed.value_or(spec.seed));
  if (!spec.crash_plan.empty()) {
    adv = std::make_unique<CrashPlanAdversary>(std::move(adv), spec.crash_plan);
  }
  if (spec.record) {
    RecordingAdversary recording(std::move(adv));
    out.result = run_consensus_sim(
        spec.factory, spec.inputs,
        std::make_unique<BorrowedAdversary>(recording), spec.seed,
        spec.max_steps, spec.deadline, reuse, flips);
    out.schedule = recording.script();
    out.crashes = recording.crashes();
  } else {
    out.result =
        run_consensus_sim(spec.factory, spec.inputs, std::move(adv), spec.seed,
                          spec.max_steps, spec.deadline, reuse, flips);
  }
  out.failure = out.result.failure();
  return out;
}

}  // namespace bprc::engine
