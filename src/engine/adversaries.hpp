// Name-keyed adversary registry for the trial-execution engine.
//
// Campaigns, bench harnesses, repro artifacts, and the CLIs all refer to
// adversaries by stable string names so a sweep definition written today
// re-executes against the same strategy tomorrow. The registry lives in
// the engine layer (below fault/ and bench/) so every sweeping caller
// resolves names through exactly one table; `bprc::fault` re-exports it
// under its historical names.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/adversary.hpp"

namespace bprc::engine {

/// Names the registry understands: the standard matrix (random,
/// round-robin, lockstep, leader-suppress, coin-bias) plus the
/// fault-injection pair (crash-storm, split-brain).
const std::vector<std::string>& adversary_names();

/// Instantiates a registered adversary; BPRC_REQUIRE on unknown names
/// (sweep definitions are programmer input — CLIs validate before
/// calling).
std::unique_ptr<Adversary> make_adversary(const std::string& name,
                                          std::uint64_t seed);

/// True for adversaries that inject crash failures on their own (sweeps
/// skip these for protocols registered as not crash-tolerant).
bool adversary_injects_crashes(const std::string& name);

}  // namespace bprc::engine
