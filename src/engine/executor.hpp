// TrialExecutor: the one trial loop every sweep in the repo runs on.
//
// A sweep is a deterministic *generator* of specs plus a single-threaded
// *sink* of outcomes. The executor pulls specs from the generator in
// order, shards them over a pool of worker threads — one SimReuse pinned
// per worker, so the simulator's recycled fiber stacks and process
// tables never cross a thread — and delivers outcomes to the sink
// **strictly in generation order**, one call at a time. Consequences:
//
//   * determinism: the sink observes the identical (index, spec, outcome)
//     sequence at any --jobs level, so campaign logs, failure lists,
//     table rows, and .bprc-repro artifacts are byte-identical whether a
//     sweep ran on 1 worker or 64 (tests/test_engine.cpp pins this);
//   * early stop: a sink returning false stops the sweep after a
//     deterministic prefix — workers may have speculatively executed
//     later specs, but those outcomes are discarded undelivered;
//   * bounded memory: at most `window` specs are in flight, so a
//     million-trial campaign never materializes a million outcomes.
//
// jobs <= 1 runs the exact serial path of the pre-engine harnesses: no
// threads are spawned, the generator/executor/sink alternate on the
// calling thread with one calling-thread SimReuse. Replay tooling must
// use this mode (docs/TESTING.md): parallelism never changes results,
// but it reorders *wall-clock* interleaving, which the watchdog reads.
//
// The generator and the sink always run under the executor lock (i.e.
// single-threaded, mutually excluded); keep them to bookkeeping and do
// the real work in the execute stage.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "engine/trial.hpp"

namespace bprc::engine {

/// Worker-thread count for jobs=0 ("use the machine").
inline unsigned default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct ExecutorConfig {
  unsigned jobs = 0;       ///< worker threads; 0 = default_jobs(), 1 = serial
  std::size_t window = 0;  ///< max specs in flight; 0 = 4 * jobs
};

class TrialExecutor {
 public:
  explicit TrialExecutor(ExecutorConfig config = {}) : config_(config) {
    if (config_.jobs == 0) config_.jobs = default_jobs();
    if (config_.window == 0) config_.window = 4 * config_.jobs;
    if (config_.window < config_.jobs) config_.window = config_.jobs;
  }

  unsigned jobs() const { return config_.jobs; }

  /// Generic ordered sweep: `next` yields specs (nullopt = end of
  /// stream), `execute` runs one spec on a worker (its thread-pinned
  /// SimReuse supplied), `sink` consumes outcomes in generation order
  /// (return false to stop). Spec/Outcome are arbitrary movable types —
  /// the consensus pipeline below is one instantiation, the coin-toss
  /// bench another.
  template <typename Spec, typename Outcome>
  void run_ordered(
      const std::function<std::optional<Spec>()>& next,
      const std::function<Outcome(const Spec&, SimReuse&)>& execute,
      const std::function<bool(std::size_t, const Spec&, Outcome&&)>& sink)
      const {
    if (config_.jobs <= 1) {
      // The exact serial path: generate, execute, deliver, repeat.
      SimReuse reuse;
      for (std::size_t index = 0;; ++index) {
        std::optional<Spec> spec = next();
        if (!spec.has_value()) return;
        Outcome out = execute(*spec, reuse);
        if (!sink(index, *spec, std::move(out))) return;
      }
    }
    run_parallel<Spec, Outcome>(next, execute, sink);
  }

  /// The consensus-trial instantiation: run_trial over TrialSpecs.
  void run_trials(
      const std::function<std::optional<TrialSpec>()>& next,
      const std::function<bool(std::size_t, const TrialSpec&, TrialOutcome&&)>&
          sink) const {
    run_ordered<TrialSpec, TrialOutcome>(
        next,
        [](const TrialSpec& spec, SimReuse& reuse) {
          return run_trial(spec, &reuse);
        },
        sink);
  }

  /// Index-range sweep with resume: executes `spec_at(i)` for every i in
  /// [begin, end), delivering outcomes to the sink keyed by the *global*
  /// index i, in order. Because a sweep's matrix is enumerated up front
  /// and specs are pure functions of their index, any sub-range is
  /// independently executable — this is the primitive the shard layer
  /// (src/shard/) builds on: shard i/k runs one contiguous range, and a
  /// respawned worker resumes from its predecessor's first undelivered
  /// index with nothing lost and nothing repeated.
  void run_trials_range(
      const std::function<TrialSpec(std::size_t)>& spec_at, std::size_t begin,
      std::size_t end,
      const std::function<bool(std::size_t, const TrialSpec&, TrialOutcome&&)>&
          sink) const {
    std::size_t next = begin;
    run_trials(
        [&]() -> std::optional<TrialSpec> {
          if (next >= end) return std::nullopt;
          return spec_at(next++);
        },
        [&](std::size_t local, const TrialSpec& spec, TrialOutcome&& out) {
          return sink(begin + local, spec, std::move(out));
        });
  }

 private:
  template <typename Spec, typename Outcome>
  struct Slot {
    Spec spec;
    std::optional<Outcome> outcome;
    bool taken = false;  ///< a worker is executing it
  };

  template <typename Spec, typename Outcome>
  void run_parallel(
      const std::function<std::optional<Spec>()>& next,
      const std::function<Outcome(const Spec&, SimReuse&)>& execute,
      const std::function<bool(std::size_t, const Spec&, Outcome&&)>& sink)
      const {
    using S = Slot<Spec, Outcome>;
    std::mutex m;
    std::condition_variable cv;
    // In-flight window. std::deque keeps element references stable across
    // push_back/pop_front, so a worker can hold its claimed slot across
    // the unlocked execute stage.
    std::deque<S> window;
    std::size_t window_base = 0;  ///< generation index of window.front()
    bool exhausted = false;       ///< generator returned nullopt
    bool stop = false;            ///< sink requested stop

    auto worker = [&] {
      SimReuse reuse;  // pinned to this worker thread for its lifetime
      std::unique_lock<std::mutex> lk(m);
      for (;;) {
        if (stop) return;

        // Claim the oldest unexecuted spec, if any.
        S* claimed = nullptr;
        for (S& slot : window) {
          if (!slot.taken && !slot.outcome.has_value()) {
            slot.taken = true;
            claimed = &slot;
            break;
          }
        }
        if (claimed != nullptr) {
          lk.unlock();
          Outcome out = execute(claimed->spec, reuse);
          lk.lock();
          if (stop) return;
          claimed->outcome.emplace(std::move(out));
          // Deliver the completed prefix in order. Only the thread that
          // just completed a slot drains, and it drains under the lock,
          // so the sink is never entered concurrently.
          while (!stop && !window.empty() &&
                 window.front().outcome.has_value()) {
            S& front = window.front();
            const bool more =
                sink(window_base, front.spec, std::move(*front.outcome));
            window.pop_front();
            ++window_base;
            if (!more) stop = true;
          }
          cv.notify_all();
          continue;
        }

        // No executable slot: refill the window from the generator.
        if (!exhausted && window.size() < config_.window) {
          std::optional<Spec> spec = next();
          if (!spec.has_value()) {
            exhausted = true;
          } else {
            window.push_back(S{std::move(*spec), std::nullopt, false});
          }
          cv.notify_all();
          continue;
        }

        if (exhausted && window.empty()) return;  // fully drained
        cv.wait(lk);
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(config_.jobs);
    for (unsigned i = 0; i < config_.jobs; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  ExecutorConfig config_;
};

}  // namespace bprc::engine
