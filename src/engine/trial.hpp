// Trial vocabulary of the execution engine: one Monte-Carlo (or replay)
// trial, fully specified and fully graded.
//
// A TrialSpec carries everything needed to execute one consensus run —
// protocol factory, inputs, adversary, crash plan, optional scripted
// schedule and forced coin flips, seed, step budget, watchdog deadline —
// and a TrialOutcome carries everything a sweep wants back: the graded
// ConsensusRunResult, its FailureClass, and (when recording) the full
// executed trace. This subsumes the fault layer's TortureRun/
// TortureFailure pair and the ad-hoc tuples the bench harnesses used to
// thread through their loops; those layers now build specs and consume
// outcomes instead of owning trial loops.
//
// Execution of a spec is a pure function of the spec (deadline aborts
// excepted — the watchdog reads the wall clock): run_trial produces a
// bit-identical outcome on any thread, with any SimReuse, which is what
// lets TrialExecutor (engine/executor.hpp) shard specs across workers
// without changing a single delivered byte.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "consensus/driver.hpp"
#include "runtime/adversary.hpp"
#include "util/space_budget.hpp"

namespace bprc::engine {

struct TrialSpec {
  /// Label only (campaign logs, artifact names); execution goes through
  /// `factory`.
  std::string protocol;
  /// Builds the protocol instance. Invoked on whichever worker executes
  /// the spec, so it must be self-contained: capture parameters by value
  /// and share no mutable state (every factory in the repo qualifies).
  ProtocolFactory factory;
  std::vector<int> inputs;  ///< size = number of processes

  /// Generative mode: adversary registry name (engine/adversaries.hpp),
  /// seeded with `adversary_seed`. Ignored when `scripted`.
  std::string adversary;
  /// Pre-planned kills, applied via CrashPlanAdversary in both modes.
  std::vector<CrashPlanAdversary::Crash> crash_plan;

  /// Scripted-replay mode: re-run a recorded pick sequence through
  /// ScriptedAdversary (round-robin completion past the script's end).
  /// Recorded crashes travel in `crash_plan`.
  std::vector<ProcId> schedule;
  bool scripted = false;

  /// Optional recorded local-coin flip prefix (exploration artifacts);
  /// empty optional leaves the seed-derived coins untouched.
  std::optional<std::vector<bool>> forced_flips;

  /// Register semantics the trial runs under; the overlay's stale-read
  /// choices are made by the adversary (and recorded/replayed like the
  /// schedule). Atomic — the default — makes `forced_stales` irrelevant.
  RegisterSemantics semantics = RegisterSemantics::kAtomic;
  /// Scripted-replay mode: recorded stale-read choices, in resolution
  /// order, fed to ScriptedAdversary::set_stale_script. Past the end every
  /// choice is the atomic answer.
  std::vector<int> forced_stales;

  /// Space budget the factory was built at. Bookkeeping only — the
  /// factory already captured it — carried so sweeps and artifact
  /// writers can label the trial without re-deriving it.
  SpaceBudget space;

  std::uint64_t seed = 0;  ///< process local-coin seed
  /// Adversary seed; defaults to `seed` (the torture convention). The
  /// bench harnesses decorrelate the two.
  std::optional<std::uint64_t> adversary_seed;
  std::uint64_t max_steps = 0;  ///< per-run step budget
  /// Wall-clock watchdog (zero = off). The only non-deterministic input:
  /// a deadline abort depends on machine load, never on `jobs`.
  std::chrono::nanoseconds deadline{0};

  /// Generative mode: capture the executed schedule + crash events into
  /// the outcome (RecordingAdversary). Off for pure-throughput sweeps.
  bool record = true;

  int n() const { return static_cast<int>(inputs.size()); }
};

/// Everything a sweep learns from one executed trial.
struct TrialOutcome {
  ConsensusRunResult result;
  FailureClass failure = FailureClass::kNone;  ///< == result.failure()
  std::vector<ProcId> schedule;  ///< recorded pick sequence (record mode)
  std::vector<CrashPlanAdversary::Crash> crashes;  ///< recorded crashes
  /// Recorded stale-read choices (record mode; empty under atomic
  /// semantics, where the adversary is never consulted).
  std::vector<int> stales;
};

/// Executes one spec. `reuse` (nullable) recycles a simulator across
/// calls exactly as run_consensus_sim documents; outcomes are
/// bit-identical with or without it. Single-threaded per call — the
/// executor gives every worker its own SimReuse.
TrialOutcome run_trial(const TrialSpec& spec, SimReuse* reuse = nullptr);

}  // namespace bprc::engine
