#include "engine/adversaries.hpp"

#include "util/assert.hpp"

namespace bprc::engine {

const std::vector<std::string>& adversary_names() {
  static const std::vector<std::string> names = {
      "random",    "round-robin", "lockstep",    "leader-suppress",
      "coin-bias", "crash-storm", "split-brain",
  };
  return names;
}

std::unique_ptr<Adversary> make_adversary(const std::string& name,
                                          std::uint64_t seed) {
  if (name == "random") return std::make_unique<RandomAdversary>(seed);
  if (name == "round-robin") return std::make_unique<RoundRobinAdversary>();
  if (name == "lockstep") return std::make_unique<LockstepAdversary>(seed);
  if (name == "leader-suppress") {
    return std::make_unique<LeaderSuppressAdversary>(seed);
  }
  if (name == "coin-bias") return std::make_unique<CoinBiasAdversary>(seed);
  if (name == "crash-storm") return std::make_unique<CrashStormAdversary>(seed);
  if (name == "split-brain") return std::make_unique<SplitBrainAdversary>(seed);
  BPRC_REQUIRE(false, "unknown adversary name");
  __builtin_unreachable();
}

bool adversary_injects_crashes(const std::string& name) {
  return name == "crash-storm";
}

}  // namespace bprc::engine
