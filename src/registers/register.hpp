// Native atomic registers.
//
// The paper's base objects are atomic single-writer-multi-reader (SWMR)
// read/write registers plus two-writer-two-reader (2W2R) registers for the
// scan "arrows". These native implementations are internally synchronized
// (trivially linearizable: the lock-protected access is the linearization
// point) and pass every operation through the runtime checkpoint, which is
// where the simulator's adversary takes control. A bounded *construction*
// of the 2W2R register from SWMR registers — honoring the paper's
// citation lineage — lives in bloom_2w2r.hpp.
//
// Step accounting: one checkpoint per read/write, so `Runtime::steps`
// counts primitive register operations, the complexity unit of the paper.
//
// Register semantics: by default reads and writes are atomic. When the
// owning runtime reports kRegular/kSafe (Runtime::register_semantics,
// cached at construction), reads that overlap an in-flight write are
// weakened per Lamport's hierarchy, with the scheduler adversary — not a
// PRNG — choosing the returned value so the explorer and the shrinker can
// enumerate and replay the choices. See docs/REGISTER_SEMANTICS.md.
#pragma once

#include <memory>
#include <mutex>

#include "runtime/runtime.hpp"
#include "util/assert.hpp"

namespace bprc {

namespace detail {

/// Adversary-controlled weakening overlay for the register templates
/// below (docs/REGISTER_SEMANTICS.md). Allocated only when the owning
/// runtime reports kRegular/kSafe at register construction — under
/// atomic semantics a register carries one extra null pointer and one
/// predictable branch per operation, nothing else.
///
/// The fiber simulator has exactly one observable read/write concurrency
/// window: a write that has been *announced* (its checkpoint published a
/// kWrite and parked the writer) but not yet executed. The writer's code
/// between checkpoint return and the store runs without yielding, so from
/// every other process's viewpoint the write commits atomically the
/// moment the writer is rescheduled. The overlay therefore brackets the
/// checkpoint: announce() opens the window and snapshots the in-flight
/// value, commit() closes it and retires the replaced value into a short
/// history ring. A writer crashed (or budget-stopped) while parked never
/// reaches commit() — its window stays open for the rest of the run, the
/// faithful crash-mid-write under which a regular register may keep
/// serving either value forever.
///
/// With several writers racing on an MRMW register the single
/// pending-value slot tracks the latest announcement only; earlier
/// still-in-flight writes collapse to the atomic answer (a documented
/// under-approximation — every value served is still one the weakened
/// semantics allow).
template <class T>
class WeakRegisterState {
 public:
  /// The ring is seeded with copies of `initial` purely to avoid
  /// requiring T be default-constructible; len_ = 0 keeps them
  /// unservable until real values retire into the ring.
  explicit WeakRegisterState(const T& initial)
      : pending_value_(initial), hist_{initial, initial, initial, initial} {}

  /// Write announced: called immediately before the write's checkpoint.
  void announce(ProcId writer, const T& v) {
    pending_writer_ = writer;
    pending_value_ = v;
    open_ = true;
  }

  /// Write executed: called after the checkpoint returned, with the value
  /// being replaced. Closes the window and retires `replaced`.
  void commit(const T& replaced) {
    open_ = false;
    hist_[head_] = replaced;
    head_ = (head_ + 1) % kHist;
    if (len_ < kHist) ++len_;
  }

  /// Resolves one read under weakened semantics. Returns nullptr when the
  /// read must serve the committed value — no write in flight (all three
  /// semantics agree) or the adversary chose the atomic answer — else a
  /// pointer to the value to serve (valid until the next operation).
  const T* resolve(Runtime& rt, RegisterSemantics sem, int object) {
    if (!open_) return nullptr;
    const int options = sem == RegisterSemantics::kSafe ? 2 + len_ : 2;
    StaleRead sr;
    sr.object = object;
    sr.reader = rt.self();
    sr.writer = pending_writer_;
    sr.options = options;
    const int choice = rt.resolve_stale_read(sr);
    BPRC_REQUIRE(choice >= 0 && choice < options,
                 "stale-read choice out of range");
    if (choice == 0) return nullptr;
    if (choice == 1) return &pending_value_;
    // choice - 2 steps back into the ring; 0 = most recently replaced.
    const int back = choice - 2;
    return &hist_[(head_ + kHist - 1 - back) % kHist];
  }

 private:
  static constexpr int kHist = 4;
  ProcId pending_writer_ = -1;
  bool open_ = false;
  int head_ = 0;  ///< next ring slot to fill
  int len_ = 0;   ///< filled ring slots, <= kHist
  T pending_value_;
  T hist_[kHist];
};

/// Overlay factory shared by the register templates: null under atomic.
template <class T>
std::unique_ptr<WeakRegisterState<T>> make_weak_state(Runtime& rt,
                                                      const T& initial) {
  if (rt.register_semantics() == RegisterSemantics::kAtomic) return nullptr;
  return std::make_unique<WeakRegisterState<T>>(initial);
}

}  // namespace detail

/// Locks a register mutex only when the owning runtime is concurrent
/// (Runtime::concurrent()). Under the single-threaded fiber simulator the
/// mutex is pure overhead — an uncontended lock/unlock pair on every
/// primitive operation — so registers cache the flag at construction and
/// skip it.
class MaybeLock {
 public:
  MaybeLock(std::mutex& mu, bool locked) : mu_(mu), locked_(locked) {
    if (locked_) mu_.lock();
  }
  ~MaybeLock() {
    if (locked_) mu_.unlock();
  }
  MaybeLock(const MaybeLock&) = delete;
  MaybeLock& operator=(const MaybeLock&) = delete;

 private:
  std::mutex& mu_;
  const bool locked_;
};

/// Single-writer multi-reader atomic register. `owner` is the only process
/// allowed to write; every process may read.
template <class T>
class SWMRRegister {
 public:
  SWMRRegister(Runtime& rt, ProcId owner, T initial, int object_id = -1)
      : rt_(rt),
        owner_(owner),
        id_(object_id),
        sink_(rt.trace_sink()),
        trace_id_(sink_ != nullptr ? sink_->on_object_created() : -1),
        locked_(rt.concurrent()),
        sem_(rt.register_semantics()),
        value_(std::move(initial)),
        weak_(detail::make_weak_state(rt, value_)) {}

  SWMRRegister(const SWMRRegister&) = delete;
  SWMRRegister& operator=(const SWMRRegister&) = delete;

  /// Atomic read by any process. Under weakened semantics (cached at
  /// construction, like the trace sink) a read overlapping an in-flight
  /// write serves whichever legal value the adversary chooses.
  T read() {
    rt_.checkpoint({OpDesc::Kind::kRead, id_, 0});
    const MaybeLock lock(mu_, locked_);
    if (sink_ != nullptr) sink_->on_read(rt_.self(), trace_id_);
    if (weak_ != nullptr) {
      if (const T* alt = weak_->resolve(rt_, sem_, stale_object())) {
        return *alt;
      }
    }
    return value_;
  }

  /// Atomic read that copy-assigns into `out` instead of returning a
  /// temporary. For T with heap-owning members (vectors), a steady-state
  /// caller buffer makes the read allocation-free — the hot-loop variant.
  void read_into(T& out) {
    rt_.checkpoint({OpDesc::Kind::kRead, id_, 0});
    const MaybeLock lock(mu_, locked_);
    if (sink_ != nullptr) sink_->on_read(rt_.self(), trace_id_);
    if (weak_ != nullptr) {
      if (const T* alt = weak_->resolve(rt_, sem_, stale_object())) {
        out = *alt;
        return;
      }
    }
    out = value_;
  }

  /// Atomic write; caller must be the owner. `payload` is a digest of the
  /// written value shown to the adversary (see OpDesc).
  void write(const T& v, std::int64_t payload = 0) {
    BPRC_REQUIRE(rt_.self() == owner_, "non-owner write to SWMR register");
    if (weak_ != nullptr) weak_->announce(rt_.self(), v);
    rt_.checkpoint({OpDesc::Kind::kWrite, id_, payload});
    const MaybeLock lock(mu_, locked_);
    if (sink_ != nullptr) sink_->on_write(rt_.self(), trace_id_);
    if (weak_ != nullptr) weak_->commit(value_);
    value_ = v;
  }

  /// Non-linearizable peek for post-run inspection and debugging only —
  /// never called from algorithm code (no checkpoint, no step). Always
  /// reports the committed value, never an in-flight or stale one.
  T peek() const {
    const MaybeLock lock(mu_, locked_);
    return value_;
  }

  ProcId owner() const { return owner_; }

 private:
  /// Object id reported in StaleRead: the dense trace id when a sink is
  /// installed (unique per object), else the component-assigned id.
  int stale_object() const { return trace_id_ >= 0 ? trace_id_ : id_; }

  Runtime& rt_;
  ProcId owner_;
  int id_;
  TraceSink* const sink_;  ///< cached Runtime::trace_sink(); usually null
  const int trace_id_;     ///< sink-assigned dense id; -1 without a sink
  const bool locked_;
  const RegisterSemantics sem_;  ///< cached Runtime::register_semantics()
  mutable std::mutex mu_;
  T value_;
  /// Weakening overlay; null under atomic semantics (the usual case).
  const std::unique_ptr<detail::WeakRegisterState<T>> weak_;
};

/// Multi-writer multi-reader atomic register. Used for native 2W2R arrows
/// and for test scaffolding; the paper's protocols never need more than
/// two writers per register.
template <class T>
class MRMWRegister {
 public:
  MRMWRegister(Runtime& rt, T initial, int object_id = -1)
      : rt_(rt),
        id_(object_id),
        sink_(rt.trace_sink()),
        trace_id_(sink_ != nullptr ? sink_->on_object_created() : -1),
        locked_(rt.concurrent()),
        sem_(rt.register_semantics()),
        value_(std::move(initial)),
        weak_(detail::make_weak_state(rt, value_)) {}

  MRMWRegister(const MRMWRegister&) = delete;
  MRMWRegister& operator=(const MRMWRegister&) = delete;

  T read() {
    rt_.checkpoint({OpDesc::Kind::kRead, id_, 0});
    const MaybeLock lock(mu_, locked_);
    if (sink_ != nullptr) sink_->on_read(rt_.self(), trace_id_);
    if (weak_ != nullptr) {
      if (const T* alt = weak_->resolve(rt_, sem_, stale_object())) {
        return *alt;
      }
    }
    return value_;
  }

  void write(const T& v, std::int64_t payload = 0) {
    if (weak_ != nullptr) weak_->announce(rt_.self(), v);
    rt_.checkpoint({OpDesc::Kind::kWrite, id_, payload});
    const MaybeLock lock(mu_, locked_);
    if (sink_ != nullptr) sink_->on_write(rt_.self(), trace_id_);
    if (weak_ != nullptr) weak_->commit(value_);
    value_ = v;
  }

  /// See SWMRRegister::peek — committed value only.
  T peek() const {
    const MaybeLock lock(mu_, locked_);
    return value_;
  }

 private:
  int stale_object() const { return trace_id_ >= 0 ? trace_id_ : id_; }

  Runtime& rt_;
  int id_;
  TraceSink* const sink_;  ///< cached Runtime::trace_sink(); usually null
  const int trace_id_;     ///< sink-assigned dense id; -1 without a sink
  const bool locked_;
  const RegisterSemantics sem_;  ///< cached Runtime::register_semantics()
  mutable std::mutex mu_;
  T value_;
  /// Weakening overlay; null under atomic semantics (the usual case).
  const std::unique_ptr<detail::WeakRegisterState<T>> weak_;
};

}  // namespace bprc
