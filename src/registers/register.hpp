// Native atomic registers.
//
// The paper's base objects are atomic single-writer-multi-reader (SWMR)
// read/write registers plus two-writer-two-reader (2W2R) registers for the
// scan "arrows". These native implementations are internally synchronized
// (trivially linearizable: the lock-protected access is the linearization
// point) and pass every operation through the runtime checkpoint, which is
// where the simulator's adversary takes control. A bounded *construction*
// of the 2W2R register from SWMR registers — honoring the paper's
// citation lineage — lives in bloom_2w2r.hpp.
//
// Step accounting: one checkpoint per read/write, so `Runtime::steps`
// counts primitive register operations, the complexity unit of the paper.
#pragma once

#include <mutex>

#include "runtime/runtime.hpp"
#include "util/assert.hpp"

namespace bprc {

/// Locks a register mutex only when the owning runtime is concurrent
/// (Runtime::concurrent()). Under the single-threaded fiber simulator the
/// mutex is pure overhead — an uncontended lock/unlock pair on every
/// primitive operation — so registers cache the flag at construction and
/// skip it.
class MaybeLock {
 public:
  MaybeLock(std::mutex& mu, bool locked) : mu_(mu), locked_(locked) {
    if (locked_) mu_.lock();
  }
  ~MaybeLock() {
    if (locked_) mu_.unlock();
  }
  MaybeLock(const MaybeLock&) = delete;
  MaybeLock& operator=(const MaybeLock&) = delete;

 private:
  std::mutex& mu_;
  const bool locked_;
};

/// Single-writer multi-reader atomic register. `owner` is the only process
/// allowed to write; every process may read.
template <class T>
class SWMRRegister {
 public:
  SWMRRegister(Runtime& rt, ProcId owner, T initial, int object_id = -1)
      : rt_(rt),
        owner_(owner),
        id_(object_id),
        sink_(rt.trace_sink()),
        trace_id_(sink_ != nullptr ? sink_->on_object_created() : -1),
        locked_(rt.concurrent()),
        value_(std::move(initial)) {}

  SWMRRegister(const SWMRRegister&) = delete;
  SWMRRegister& operator=(const SWMRRegister&) = delete;

  /// Atomic read by any process.
  T read() {
    rt_.checkpoint({OpDesc::Kind::kRead, id_, 0});
    const MaybeLock lock(mu_, locked_);
    if (sink_ != nullptr) sink_->on_read(rt_.self(), trace_id_);
    return value_;
  }

  /// Atomic read that copy-assigns into `out` instead of returning a
  /// temporary. For T with heap-owning members (vectors), a steady-state
  /// caller buffer makes the read allocation-free — the hot-loop variant.
  void read_into(T& out) {
    rt_.checkpoint({OpDesc::Kind::kRead, id_, 0});
    const MaybeLock lock(mu_, locked_);
    if (sink_ != nullptr) sink_->on_read(rt_.self(), trace_id_);
    out = value_;
  }

  /// Atomic write; caller must be the owner. `payload` is a digest of the
  /// written value shown to the adversary (see OpDesc).
  void write(const T& v, std::int64_t payload = 0) {
    BPRC_REQUIRE(rt_.self() == owner_, "non-owner write to SWMR register");
    rt_.checkpoint({OpDesc::Kind::kWrite, id_, payload});
    const MaybeLock lock(mu_, locked_);
    if (sink_ != nullptr) sink_->on_write(rt_.self(), trace_id_);
    value_ = v;
  }

  /// Non-linearizable peek for post-run inspection and debugging only —
  /// never called from algorithm code (no checkpoint, no step).
  T peek() const {
    const MaybeLock lock(mu_, locked_);
    return value_;
  }

  ProcId owner() const { return owner_; }

 private:
  Runtime& rt_;
  ProcId owner_;
  int id_;
  TraceSink* const sink_;  ///< cached Runtime::trace_sink(); usually null
  const int trace_id_;     ///< sink-assigned dense id; -1 without a sink
  const bool locked_;
  mutable std::mutex mu_;
  T value_;
};

/// Multi-writer multi-reader atomic register. Used for native 2W2R arrows
/// and for test scaffolding; the paper's protocols never need more than
/// two writers per register.
template <class T>
class MRMWRegister {
 public:
  MRMWRegister(Runtime& rt, T initial, int object_id = -1)
      : rt_(rt),
        id_(object_id),
        sink_(rt.trace_sink()),
        trace_id_(sink_ != nullptr ? sink_->on_object_created() : -1),
        locked_(rt.concurrent()),
        value_(std::move(initial)) {}

  MRMWRegister(const MRMWRegister&) = delete;
  MRMWRegister& operator=(const MRMWRegister&) = delete;

  T read() {
    rt_.checkpoint({OpDesc::Kind::kRead, id_, 0});
    const MaybeLock lock(mu_, locked_);
    if (sink_ != nullptr) sink_->on_read(rt_.self(), trace_id_);
    return value_;
  }

  void write(const T& v, std::int64_t payload = 0) {
    rt_.checkpoint({OpDesc::Kind::kWrite, id_, payload});
    const MaybeLock lock(mu_, locked_);
    if (sink_ != nullptr) sink_->on_write(rt_.self(), trace_id_);
    value_ = v;
  }

  T peek() const {
    const MaybeLock lock(mu_, locked_);
    return value_;
  }

 private:
  Runtime& rt_;
  int id_;
  TraceSink* const sink_;  ///< cached Runtime::trace_sink(); usually null
  const int trace_id_;     ///< sink-assigned dense id; -1 without a sink
  const bool locked_;
  mutable std::mutex mu_;
  T value_;
};

}  // namespace bprc
