// Bloom's bounded construction of a two-writer atomic register from
// single-writer registers [B87].
//
// The paper's scannable memory needs, for every process pair (i, j), an
// atomic register written by both i and j (the "arrow" A_ij) and cites
// [B87, L86b, IL88, BP87, N87, SAG87, LV88, DS89] for bounded
// constructions of such registers from weaker (single-writer) primitives.
// This is Bloom's: each writer owns one SWMR register holding (value, tag);
// writer 0 *copies* the tag it last saw in writer 1's register, writer 1
// *complements* the tag it last saw in writer 0's register. Tag equality
// then identifies the most recent writer:
//
//     tag0 == tag1  =>  writer 0 wrote most recently (it equalized),
//     tag0 != tag1  =>  writer 1 wrote most recently (it differentiated).
//
// A reader reads both registers to identify the most recent writer, then
// RE-READS that writer's register and returns the re-read value. The
// re-read is essential: returning the first-pass value admits a new-old
// inversion (reader A holds a stale copy of R0, sees matching tags, and
// returns a value that a strictly earlier read — which had already
// observed a later, real-time-ordered write — contradicts). Our Wing–Gong
// checker finds that counterexample against the re-read-free variant in
// under 200 random schedules; with the re-read, every interleaving of the
// exhaustive scenarios linearizes. Atomicity of the construction is thus
// *checked, not assumed* (tests/test_registers.cpp).
//
// Cost per high-level operation: write = 2 primitive steps (read peer tag,
// write own register); read = 3 primitive steps (read both, re-read one).
#pragma once

#include "registers/register.hpp"
#include "runtime/runtime.hpp"
#include "util/assert.hpp"

namespace bprc {

template <class T>
class Bloom2W2R {
 public:
  /// `writer0`/`writer1` are the two processes permitted to write. Any
  /// process may read (the paper uses it with two readers = the writers'
  /// pair, hence "2W2R").
  Bloom2W2R(Runtime& rt, ProcId writer0, ProcId writer1, T initial,
            int object_id = -1)
      : rt_(rt),
        writer0_(writer0),
        writer1_(writer1),
        r0_(rt, writer0, Entry{initial, false}, object_id),
        r1_(rt, writer1, Entry{initial, false}, object_id) {
    BPRC_REQUIRE(writer0 != writer1, "2W register needs distinct writers");
  }

  void write(const T& v, std::int64_t payload = 0) {
    const ProcId me = rt_.self();
    if (me == writer0_) {
      const bool peer_tag = r1_.read().tag;
      r0_.write(Entry{v, peer_tag}, payload);  // equalize: w0 is now recent
    } else {
      BPRC_REQUIRE(me == writer1_, "non-writer write to 2W register");
      const bool peer_tag = r0_.read().tag;
      r1_.write(Entry{v, !peer_tag}, payload);  // differentiate: w1 recent
    }
  }

  T read() {
    const Entry e0 = r0_.read();
    const Entry e1 = r1_.read();
    // Equal tags => writer 0 (the equalizer) wrote most recently; unequal
    // => writer 1 (the differentiator). Re-read the indicated register so
    // the returned value is no staler than the tag comparison.
    return (e0.tag == e1.tag) ? r0_.read().value : r1_.read().value;
  }

 private:
  struct Entry {
    T value;
    bool tag;
  };

  Runtime& rt_;
  ProcId writer0_;
  ProcId writer1_;
  SWMRRegister<Entry> r0_;
  SWMRRegister<Entry> r1_;
};

}  // namespace bprc
