// The alternating-bit ("toggle") wrapper of Section 2.2.
//
// The paper adds an alternating bit to each value register V_i so that two
// values written by consecutive writes of the same process always differ —
// the scan's double-collect equality test then reliably detects an
// intervening write even when the user payload repeats. The bit costs one
// bit of bounded space and is invisible to readers of the user value.
#pragma once

#include <cstdint>
#include <utility>

namespace bprc {

/// A user value together with the alternating bit and a *ghost* write
/// sequence number. The ghost field exists solely so the verification
/// library can identify which write execution a scan returned; it is
/// metadata of the test harness, never consulted by algorithm code, and is
/// excluded from equality (algorithms compare exactly what the paper's
/// processes can see: payload + toggle bit).
template <class T>
struct Toggled {
  T value{};
  bool toggle = false;
  std::uint64_t ghost_index = 0;

  friend bool operator==(const Toggled& a, const Toggled& b) {
    return a.toggle == b.toggle && a.value == b.value;
  }
  friend bool operator!=(const Toggled& a, const Toggled& b) {
    return !(a == b);
  }
};

/// Produces the successor entry for a new write: payload replaced, toggle
/// flipped, ghost index advanced.
template <class T>
Toggled<T> next_toggled(const Toggled<T>& prev, T value) {
  return Toggled<T>{std::move(value), !prev.toggle, prev.ghost_index + 1};
}

}  // namespace bprc
