// The primitive of the native-atomics lane: one shared 64-bit word on
// std::atomic, carrying a version-stamped payload.
//
//   word = (version << 24) | payload        payload: low 24 bits
//
// The version is the write's position in the location's modification
// order, incremented on every store. It exists for the *verification
// harness*, not the algorithm: a load unpacks (version, payload) from one
// atomic word, so the recorded reads-from (rf) and modification-order
// (mo) hints are exact — no inference pass, no ambiguity between writes
// of equal payload. Algorithm code only ever compares versions for
// equality (the role the paper's bounded toggle bit plays in §2.2); it
// never branches on their magnitude, so the unbounded counter is
// recording apparatus, not a cheat of the paper's boundedness claim —
// the *payloads* stay bounded.
//
// Three access families, matching how the paper's objects use registers:
//   store_swmr — single-writer store; the owner's local shadow version
//                makes the increment race-free, so a plain store with the
//                chosen order suffices (this is the paper's SWMR V_i);
//   load       — any reader, chosen order, recorded with exact rf;
//   rmw_store / rmw_add — multi-writer update via a CAS loop, recorded
//                honestly as an RMW (used for arrows, counters, strips).
//
// Every operation checkpoints first (step accounting, budget, yield
// jitter), then performs exactly one atomic primitive, then reports to
// the cached MemActionSink — a single null check when recording is off.
//
// docs/MEMORY_ORDERS.md states the required order for every call site
// and the reordering argument behind it.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "runtime/runtime.hpp"
#include "util/assert.hpp"

namespace bprc {

class NativeLoc {
 public:
  static constexpr unsigned kPayloadBits = 24;
  static constexpr std::uint64_t kPayloadMask =
      (std::uint64_t{1} << kPayloadBits) - 1;

  static constexpr std::uint64_t pack(std::uint64_t version,
                                      std::uint64_t payload) {
    return (version << kPayloadBits) | (payload & kPayloadMask);
  }
  static constexpr std::uint64_t payload_of(std::uint64_t word) {
    return word & kPayloadMask;
  }
  static constexpr std::uint64_t version_of(std::uint64_t word) {
    return word >> kPayloadBits;
  }

  NativeLoc(Runtime& rt, const char* name, std::uint64_t initial,
            int object_id = -1)
      : rt_(rt),
        sink_(rt.mem_sink()),
        trace_(rt.trace_sink()),
        object_(object_id),
        word_(pack(0, initial)) {
    BPRC_REQUIRE(initial <= kPayloadMask, "initial payload exceeds 24 bits");
    if (sink_ != nullptr) loc_ = sink_->on_location(name, initial);
    if (trace_ != nullptr) trace_id_ = trace_->on_object_created();
  }

  NativeLoc(const NativeLoc&) = delete;
  NativeLoc& operator=(const NativeLoc&) = delete;

  /// Single-writer store. Only the owning process may call this; the
  /// owner-local shadow version makes the version increment race-free.
  void store_swmr(std::uint64_t payload, std::memory_order order) {
    BPRC_REQUIRE(payload <= kPayloadMask, "payload exceeds 24 bits");
    rt_.checkpoint({OpDesc::Kind::kWrite, object_,
                    static_cast<std::int64_t>(payload)});
    const std::uint64_t version = ++shadow_version_;
    word_.store(pack(version, payload), order);
    if (sink_ != nullptr) {
      record(MemAction::Kind::kStore, order, payload, /*rf=*/0, version);
    }
    if (trace_ != nullptr) trace_->on_write(rt_.self(), trace_id_);
  }

  /// Load with the chosen order; returns the full packed word so callers
  /// can compare freshness (version equality) as well as read the payload.
  std::uint64_t load_word(std::memory_order order) {
    rt_.checkpoint({OpDesc::Kind::kRead, object_, 0});
    const std::uint64_t word = word_.load(order);
    if (sink_ != nullptr) {
      record(MemAction::Kind::kLoad, order, payload_of(word),
             version_of(word), /*mo=*/0);
    }
    if (trace_ != nullptr) trace_->on_read(rt_.self(), trace_id_);
    return word;
  }

  std::uint64_t load(std::memory_order order) {
    return payload_of(load_word(order));
  }

  /// Multi-writer unconditional store, implemented as a CAS loop so the
  /// version increment is atomic with the payload change. Recorded as an
  /// RMW (which it is — claiming it were a plain store would hand the
  /// checker an rf/mo fact the hardware never established). seq_cst: the
  /// lock-prefixed CAS is a full fence, which the Dekker-style
  /// arrow-vs-collect handshake in the scannable memory requires.
  void rmw_store(std::uint64_t payload) {
    rmw([payload](std::uint64_t) { return payload; });
  }

  /// Multi-writer transform: new payload = f(old payload). Returns
  /// (old payload, new payload).
  template <class F>
  std::pair<std::uint64_t, std::uint64_t> rmw(F&& f) {
    rt_.checkpoint({OpDesc::Kind::kWrite, object_, 0});
    std::uint64_t expected = word_.load(std::memory_order_relaxed);
    std::uint64_t next;
    do {
      next = f(payload_of(expected)) & kPayloadMask;
    } while (!word_.compare_exchange_weak(
        expected, pack(version_of(expected) + 1, next),
        std::memory_order_seq_cst, std::memory_order_relaxed));
    if (sink_ != nullptr) {
      record(MemAction::Kind::kRmw, std::memory_order_seq_cst, next,
             version_of(expected), version_of(expected) + 1);
    }
    if (trace_ != nullptr) trace_->on_write(rt_.self(), trace_id_);
    return {payload_of(expected), next};
  }

  // --- store-buffer emulation hooks (BrokenRelaxedRegister only) ---

  /// Records a store that has NOT been made globally visible: the entry
  /// enters the caller's program-order log now (mo = 0, "unflushed"), the
  /// shared word is untouched. Returns the log index for the later
  /// patch_mo, or SIZE_MAX when recording is off.
  std::size_t record_buffered_store(std::uint64_t payload) {
    BPRC_REQUIRE(payload <= kPayloadMask, "payload exceeds 24 bits");
    rt_.checkpoint({OpDesc::Kind::kWrite, object_,
                    static_cast<std::int64_t>(payload)});
    std::size_t index = SIZE_MAX;
    if (sink_ != nullptr) {
      MemAction a;
      a.thread = rt_.self();
      a.location = loc_;
      a.kind = MemAction::Kind::kStore;
      a.order = static_cast<std::uint8_t>(std::memory_order_relaxed);
      a.value = payload;
      a.mo = 0;
      index = sink_->on_action(a);
    }
    if (trace_ != nullptr) trace_->on_write(rt_.self(), trace_id_);
    return index;
  }

  /// Flushes a buffered store: CASes the payload in (assigning the next
  /// version) and backpatches the recorded entry's mo. No checkpoint —
  /// the step was charged when the store was buffered, and drains may run
  /// after the run has joined (outside any process body).
  void flush_buffered(ProcId thread, std::size_t index,
                      std::uint64_t payload) {
    std::uint64_t expected = word_.load(std::memory_order_relaxed);
    while (!word_.compare_exchange_weak(
        expected, pack(version_of(expected) + 1, payload),
        std::memory_order_relaxed, std::memory_order_relaxed)) {
    }
    if (sink_ != nullptr && index != SIZE_MAX) {
      sink_->patch_mo(thread, index, version_of(expected) + 1);
    }
  }

 private:
  void record(MemAction::Kind kind, std::memory_order order,
              std::uint64_t value, std::uint64_t rf, std::uint64_t mo) {
    MemAction a;
    a.thread = rt_.self();
    a.location = loc_;
    a.kind = kind;
    a.order = static_cast<std::uint8_t>(order);
    a.value = value;
    a.rf = rf;
    a.mo = mo;
    sink_->on_action(a);
  }

  Runtime& rt_;
  MemActionSink* sink_;  ///< cached at construction (see MemActionSink)
  TraceSink* trace_;     ///< cached at construction (see TraceSink)
  int trace_id_ = -1;
  int loc_ = -1;
  int object_;
  std::uint64_t shadow_version_ = 0;  ///< owner-local; store_swmr only
  std::atomic<std::uint64_t> word_;
};

}  // namespace bprc
