// Scannable memory (§2.2) on native atomics: the double-collect scan
// with arrows, running on real threads with the weakest orders the
// algorithm's correctness argument survives.
//
// Layout mirrors src/snapshot/scannable_memory.hpp:
//   * one SWMR value word per process (release store / acquire load);
//     word-version equality between the two collects plays the toggle
//     bit's freshness role;
//   * one arrow word per ordered (scanner i, writer j) pair, i ≠ j,
//     written by both i (reset) and j (raise) — CAS RMWs, whose lock
//     prefix is a full fence. That fence is load-bearing: the scan's
//     correctness is a Dekker-style handshake (writer: raise arrow THEN
//     publish value; scanner: reset arrow THEN collect values THEN read
//     arrows), and on TSO hardware the scanner's reset must drain the
//     store buffer before its collect loads, or the miss case
//     "value collected stale AND arrow observed clear" becomes reachable
//     — a genuine non-SC execution the checker would (correctly) flag.
//     See docs/MEMORY_ORDERS.md for the full table.
//
// Payloads are 24-bit (NativeLoc); the consensus record packs into that.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "registers/native/native_atomic.hpp"
#include "registers/native/native_registers.hpp"
#include "runtime/runtime.hpp"
#include "util/assert.hpp"

namespace bprc {

class NativeScannableMemory {
 public:
  NativeScannableMemory(Runtime& rt, std::uint64_t initial)
      : rt_(rt), n_(rt.nprocs()), initial_(initial) {
    const auto width = static_cast<std::size_t>(n_);
    scratch_.resize(width);
    last_written_.assign(width, initial);
    values_.reserve(width);
    for (ProcId j = 0; j < n_; ++j) {
      values_.push_back(std::make_unique<NativeSWMR>(
          rt_, j, name("V", j).c_str(), initial, /*object_id=*/j));
    }
    arrows_.resize(width * width);
    for (ProcId i = 0; i < n_; ++i) {
      for (ProcId j = 0; j < n_; ++j) {
        if (i == j) continue;
        arrows_[static_cast<std::size_t>(i * n_ + j)] =
            std::make_unique<NativeStripCell>(
                rt_, 0, name("A", i, j).c_str(), /*object_id=*/n_ + i * n_ + j);
      }
    }
  }

  int nprocs() const { return n_; }

  /// §2.2 `procedure write`: raise every scanner's arrow, then publish.
  void write(std::uint64_t payload) {
    const ProcId me = rt_.self();
    for (ProcId i = 0; i < n_; ++i) {
      if (i != me) arrow(i, me).write(1);
    }
    values_[static_cast<std::size_t>(me)]->write(payload);
    last_written_[static_cast<std::size_t>(me)] = payload;
  }

  /// §2.2 `function scan`: reset own arrows, double-collect, retry while
  /// any value moved or any arrow was raised. `out` is resized to n; the
  /// caller's slot holds its own most recent write.
  void scan_into(std::vector<std::uint64_t>& out) {
    const ProcId me = rt_.self();
    const auto width = static_cast<std::size_t>(n_);
    Scratch& scratch = scratch_[static_cast<std::size_t>(me)];
    scratch.collect1.resize(width);
    scratch.collect2.resize(width);

    while (true) {
      for (ProcId j = 0; j < n_; ++j) {
        if (j != me) arrow(me, j).write(0);
      }
      for (ProcId j = 0; j < n_; ++j) {
        if (j != me) {
          scratch.collect1[static_cast<std::size_t>(j)] =
              values_[static_cast<std::size_t>(j)]->read_word();
        }
      }
      for (ProcId j = 0; j < n_; ++j) {
        if (j != me) {
          scratch.collect2[static_cast<std::size_t>(j)] =
              values_[static_cast<std::size_t>(j)]->read_word();
        }
      }
      bool dirty = false;
      for (ProcId j = 0; j < n_ && !dirty; ++j) {
        if (j != me && arrow(me, j).read() != 0) dirty = true;
      }
      for (ProcId j = 0; j < n_ && !dirty; ++j) {
        // Version equality ⟺ no write landed between the collects.
        if (j != me && scratch.collect1[static_cast<std::size_t>(j)] !=
                           scratch.collect2[static_cast<std::size_t>(j)]) {
          dirty = true;
        }
      }
      if (!dirty) break;
      retries_.fetch_add(1, std::memory_order_relaxed);
    }

    out.resize(width);
    for (ProcId j = 0; j < n_; ++j) {
      out[static_cast<std::size_t>(j)] =
          j == me ? last_written_[static_cast<std::size_t>(me)]
                  : NativeLoc::payload_of(
                        scratch.collect2[static_cast<std::size_t>(j)]);
    }
  }

  std::uint64_t scan_retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

 private:
  struct Scratch {
    std::vector<std::uint64_t> collect1;  ///< packed words, not payloads
    std::vector<std::uint64_t> collect2;
  };

  static std::string name(const char* prefix, ProcId a, ProcId b = -1) {
    std::string s = prefix;
    s += std::to_string(a);
    if (b >= 0) {
      s += "_";
      s += std::to_string(b);
    }
    return s;
  }

  NativeStripCell& arrow(ProcId i, ProcId j) {
    return *arrows_[static_cast<std::size_t>(i * n_ + j)];
  }

  Runtime& rt_;
  int n_;
  std::uint64_t initial_;
  std::vector<std::uint64_t> last_written_;  ///< per-writer local shadow
  std::vector<Scratch> scratch_;             ///< per-scanner buffers
  std::vector<std::unique_ptr<NativeSWMR>> values_;
  std::vector<std::unique_ptr<NativeStripCell>> arrows_;
  std::atomic<std::uint64_t> retries_{0};
};

}  // namespace bprc
