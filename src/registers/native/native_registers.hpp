// The paper's register menagerie on real C++11 atomics.
//
// Each class wraps NativeLoc words with the weakest memory orders the
// object's correctness argument permits (the per-operation table with
// rationale lives in docs/MEMORY_ORDERS.md). All of them are graded by
// the offline SC checker (src/verify/weakmem/) and TSAN in the `native`
// ctest tier — plus a deliberately broken variant the checker must
// reject, so the negative path of the analysis is pinned by a test too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "registers/native/native_atomic.hpp"
#include "runtime/runtime.hpp"
#include "util/assert.hpp"

namespace bprc {

/// Single-writer multi-reader register (the paper's V_i): owner stores
/// with release, readers load with acquire. Release/acquire suffices
/// because one thread writes — readers synchronize with the latest store
/// they observe, and per-location coherence orders the rest.
class NativeSWMR {
 public:
  NativeSWMR(Runtime& rt, ProcId owner, const char* name,
             std::uint64_t initial, int object_id = -1)
      : rt_(rt), owner_(owner), loc_(rt, name, initial, object_id) {}

  void write(std::uint64_t payload) {
    BPRC_REQUIRE(rt_.self() == owner_, "SWMR write by non-owner");
    loc_.store_swmr(payload, std::memory_order_release);
  }

  std::uint64_t read() { return loc_.load(std::memory_order_acquire); }

  /// Versioned read for double-collect freshness comparison: equal words
  /// ⟺ no intervening write (the role of §2.2's toggle bit).
  std::uint64_t read_word() {
    return loc_.load_word(std::memory_order_acquire);
  }

 private:
  Runtime& rt_;
  ProcId owner_;
  NativeLoc loc_;
};

/// Bounded counter: payload = value + bound, clamped to [-bound, +bound].
/// Updates are CAS RMWs (seq_cst — the lock prefix is the fence), reads
/// acquire. The clamp keeps the payload inside the static domain the
/// paper's boundedness claim is about.
class NativeBoundedCounter {
 public:
  NativeBoundedCounter(Runtime& rt, std::int64_t bound, const char* name,
                       int object_id = -1)
      : bound_(bound),
        loc_(rt, name, static_cast<std::uint64_t>(bound), object_id) {
    BPRC_REQUIRE(bound > 0 && 2 * bound < (1 << 20), "bound out of range");
  }

  /// Adds delta (±1 in the paper's walks), clamped. Returns the new value.
  std::int64_t add(std::int64_t delta) {
    const auto [_, now] = loc_.rmw([this, delta](std::uint64_t payload) {
      std::int64_t v = static_cast<std::int64_t>(payload) - bound_ + delta;
      if (v > bound_) v = bound_;
      if (v < -bound_) v = -bound_;
      return static_cast<std::uint64_t>(v + bound_);
    });
    return static_cast<std::int64_t>(now) - bound_;
  }

  std::int64_t read() {
    return static_cast<std::int64_t>(
               loc_.load(std::memory_order_acquire)) -
           bound_;
  }

  std::int64_t bound() const { return bound_; }

 private:
  std::int64_t bound_;
  NativeLoc loc_;
};

/// Strip cell: a multi-writer register over a small alphabet (the paper's
/// strip construction stores one symbol per cell). Writes are CAS RMWs,
/// reads acquire.
class NativeStripCell {
 public:
  NativeStripCell(Runtime& rt, std::uint64_t initial, const char* name,
                  int object_id = -1)
      : loc_(rt, name, initial, object_id) {}

  void write(std::uint64_t symbol) { loc_.rmw_store(symbol); }

  std::uint64_t read() { return loc_.load(std::memory_order_acquire); }

 private:
  NativeLoc loc_;
};

/// The seeded defect: a multi-writer register whose stores sit in an
/// emulated per-thread store buffer until drained, while reads bypass the
/// buffer with relaxed loads — the classic TSO store-buffering (SB)
/// anomaly, made *deterministic*. A real `memory_order_relaxed` register
/// might never exhibit SB on a given host/run (this repo's CI box has one
/// core); emulating the buffer in software guarantees that two threads
/// doing W(x) R(y) ∥ W(y) R(x) both read the initial value, which the SC
/// checker must reject as a po ∪ rf ∪ mo ∪ fr cycle. The recording is
/// honest about what happened: the store enters its thread's log at
/// program-order position with mo = 0, and only learns its
/// modification-order slot when the buffer drains (MemActionSink::
/// patch_mo) — exactly the late-binding a hardware store buffer performs.
class BrokenRelaxedRegister {
 public:
  BrokenRelaxedRegister(Runtime& rt, const char* name, std::uint64_t initial,
                        int object_id = -1)
      : rt_(rt),
        loc_(rt, name, initial, object_id),
        pending_(static_cast<std::size_t>(rt.nprocs())) {}

  /// Buffers the store: visible to nobody (not even self until read()).
  void write(std::uint64_t payload) {
    Pending& mine = pending_[static_cast<std::size_t>(rt_.self())];
    if (mine.armed) flush(rt_.self());  // one outstanding store per thread
    mine.index = loc_.record_buffered_store(payload);
    mine.payload = payload;
    mine.armed = true;
  }

  /// Relaxed load. Reads-own-writes: a thread with its own store still
  /// buffered forwards it (flushing first, so the recording stays exact);
  /// other threads' buffered stores remain invisible — the anomaly.
  std::uint64_t read() {
    const ProcId me = rt_.self();
    if (pending_[static_cast<std::size_t>(me)].armed) flush(me);
    return loc_.load(std::memory_order_relaxed);
  }

  /// Drains every thread's buffer. Call after the run has joined (it
  /// takes no checkpoints); until then unread buffered stores stay
  /// invisible, which is what makes the SB litmus deterministic.
  void drain_all() {
    for (std::size_t t = 0; t < pending_.size(); ++t) {
      if (pending_[t].armed) flush(static_cast<ProcId>(t));
    }
  }

 private:
  struct Pending {
    bool armed = false;
    std::size_t index = SIZE_MAX;
    std::uint64_t payload = 0;
  };

  void flush(ProcId t) {
    Pending& p = pending_[static_cast<std::size_t>(t)];
    loc_.flush_buffered(t, p.index, p.payload);
    p.armed = false;
  }

  Runtime& rt_;
  NativeLoc loc_;
  std::vector<Pending> pending_;  ///< slot t touched only by thread t
};

}  // namespace bprc
