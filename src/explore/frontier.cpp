#include "explore/frontier.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "consensus/driver.hpp"
#include "runtime/adversary.hpp"

namespace bprc::explore {

namespace {

void append_hex(std::string* out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  *out += buf;
}

void append_u64(std::string* out, std::uint64_t v) {
  *out += std::to_string(v);
}

void append_stat(std::string* out, const char* name, std::uint64_t v) {
  *out += "stat ";
  *out += name;
  *out += ' ';
  append_u64(out, v);
  *out += '\n';
}

bool parse_u64(std::istringstream& in, std::uint64_t* out) {
  std::string tok;
  if (!(in >> tok)) return false;
  char* end = nullptr;
  *out = std::strtoull(tok.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !tok.empty();
}

bool parse_hex(std::istringstream& in, std::uint64_t* out) {
  std::string tok;
  if (!(in >> tok)) return false;
  char* end = nullptr;
  *out = std::strtoull(tok.c_str(), &end, 16);
  return end != nullptr && *end == '\0' && !tok.empty();
}

bool parse_i64(std::istringstream& in, std::int64_t* out) {
  std::string tok;
  if (!(in >> tok)) return false;
  char* end = nullptr;
  *out = std::strtoll(tok.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !tok.empty();
}

bool fail(std::string* err, const std::string& message) {
  if (err != nullptr) *err = message;
  return false;
}

}  // namespace

std::string serialize_frontier(const Frontier& frontier) {
  std::string out;
  out += "bprc-frontier v1\n";
  out += "fingerprint ";
  append_hex(&out, frontier.fingerprint);
  out += '\n';
  out += "complete ";
  out += frontier.complete ? '1' : '0';
  out += '\n';

  const ExploreStats& s = frontier.stats;
  append_stat(&out, "executions", s.executions);
  append_stat(&out, "complete-runs", s.complete_runs);
  append_stat(&out, "truncated-runs", s.truncated_runs);
  append_stat(&out, "pruned-runs", s.pruned_runs);
  append_stat(&out, "states-visited", s.states_visited);
  append_stat(&out, "states-merged", s.states_merged);
  append_stat(&out, "sleep-pruned", s.sleep_pruned);
  append_stat(&out, "sleep-blocked", s.sleep_blocked);
  append_stat(&out, "coin-branches", s.coin_branches);
  // Emitted only when nonzero (weakened semantics) to keep atomic-mode
  // frontier bytes historical.
  if (s.stale_branches != 0) {
    append_stat(&out, "stale-branches", s.stale_branches);
  }
  append_stat(&out, "max-trail-depth", s.max_trail_depth);
  append_stat(&out, "total-steps", s.total_steps);
  append_stat(&out, "worker-crashes", s.worker_crashes);
  append_stat(&out, "cache-evictions", s.cache_evictions);
  append_stat(&out, "peak-cache-bytes", s.peak_cache_bytes);
  out += "stat digest ";
  append_hex(&out, s.schedule_digest);
  out += '\n';
  {
    char buf[40];
    std::snprintf(buf, sizeof buf, "stat seconds %.9g\n", s.seconds);
    out += buf;
  }

  out += "trail ";
  append_u64(&out, frontier.trail.size());
  out += '\n';
  for (const FrontierNode& node : frontier.trail) {
    if (node.is_coin) {
      out += "node c ";
      out += node.coin_value ? '1' : '0';
      out += ' ';
      out += std::to_string(node.taken);
      out += '\n';
      continue;
    }
    if (node.is_stale) {
      out += "node t ";
      out += std::to_string(node.stale_value);
      out += ' ';
      out += std::to_string(node.stale_options);
      out += ' ';
      out += std::to_string(node.taken);
      out += '\n';
      continue;
    }
    out += "node s ";
    out += std::to_string(node.chosen);
    out += ' ';
    out += std::to_string(node.taken);
    out += ' ';
    append_hex(&out, node.candidates);
    out += ' ';
    append_hex(&out, node.sleep);
    out += ' ';
    out += std::to_string(node.ops.size());
    for (const OpDesc& op : node.ops) {
      out += ' ';
      out += std::to_string(static_cast<int>(op.kind));
      out += ' ';
      out += std::to_string(op.object);
      out += ' ';
      out += std::to_string(op.payload);
    }
    out += '\n';
  }

  out += "violations ";
  append_u64(&out, frontier.violations.size());
  out += '\n';
  for (const ExploreViolation& v : frontier.violations) {
    out += "violation ";
    out += to_string(v.failure);
    out += '\n';
    out += "vschedule";
    for (const ProcId p : v.schedule) {
      out += ' ';
      out += std::to_string(p);
    }
    out += '\n';
    out += "vflips";
    for (const bool f : v.flips) {
      out += f ? " 1" : " 0";
    }
    out += '\n';
    if (!v.stales.empty()) {
      // Emitted only when non-empty so atomic-mode frontiers keep their
      // historical bytes.
      out += "vstales";
      for (const int c : v.stales) {
        out += ' ';
        out += std::to_string(c);
      }
      out += '\n';
    }
    out += "vnote ";
    for (const char c : v.note) {
      out += (c == '\n' || c == '\r') ? ' ' : c;  // notes stay one line
    }
    out += '\n';
  }

  out += "cache ";
  append_u64(&out, frontier.cache.size());
  out += '\n';
  for (const auto& [key, depth] : frontier.cache) {
    out += "seen ";
    append_hex(&out, key);
    out += ' ';
    out += std::to_string(static_cast<int>(depth));
    out += '\n';
  }

  out += "end\n";
  return out;
}

std::optional<Frontier> parse_frontier(const std::string& text,
                                       std::string* err) {
  std::istringstream lines(text);
  std::string line;
  auto next_line = [&](std::istringstream* out) {
    if (!std::getline(lines, line)) return false;
    out->clear();
    out->str(line);
    return true;
  };

  std::istringstream in;
  if (!next_line(&in)) {
    fail(err, "empty frontier file");
    return std::nullopt;
  }
  std::string tag, version;
  in >> tag >> version;
  if (tag != "bprc-frontier" || version != "v1") {
    fail(err, "not a bprc-frontier v1 file");
    return std::nullopt;
  }

  Frontier frontier;
  bool saw_end = false;
  std::int64_t pending_trail = -1;
  std::int64_t pending_violations = -1;
  std::int64_t pending_cache = -1;
  ExploreViolation* open_violation = nullptr;

  while (next_line(&in)) {
    std::string key;
    if (!(in >> key) || key.empty() || key[0] == '#') continue;
    if (key == "end") {
      saw_end = true;
      break;
    }
    if (key == "fingerprint") {
      if (!parse_hex(in, &frontier.fingerprint)) {
        fail(err, "malformed fingerprint line");
        return std::nullopt;
      }
    } else if (key == "complete") {
      std::uint64_t v = 0;
      if (!parse_u64(in, &v)) {
        fail(err, "malformed complete line");
        return std::nullopt;
      }
      frontier.complete = v != 0;
    } else if (key == "stat") {
      std::string name;
      if (!(in >> name)) {
        fail(err, "malformed stat line");
        return std::nullopt;
      }
      ExploreStats& s = frontier.stats;
      bool ok = true;
      if (name == "executions") ok = parse_u64(in, &s.executions);
      else if (name == "complete-runs") ok = parse_u64(in, &s.complete_runs);
      else if (name == "truncated-runs") ok = parse_u64(in, &s.truncated_runs);
      else if (name == "pruned-runs") ok = parse_u64(in, &s.pruned_runs);
      else if (name == "states-visited") ok = parse_u64(in, &s.states_visited);
      else if (name == "states-merged") ok = parse_u64(in, &s.states_merged);
      else if (name == "sleep-pruned") ok = parse_u64(in, &s.sleep_pruned);
      else if (name == "sleep-blocked") ok = parse_u64(in, &s.sleep_blocked);
      else if (name == "coin-branches") ok = parse_u64(in, &s.coin_branches);
      else if (name == "stale-branches") ok = parse_u64(in, &s.stale_branches);
      else if (name == "max-trail-depth") ok = parse_u64(in, &s.max_trail_depth);
      else if (name == "total-steps") ok = parse_u64(in, &s.total_steps);
      else if (name == "worker-crashes") ok = parse_u64(in, &s.worker_crashes);
      else if (name == "cache-evictions") ok = parse_u64(in, &s.cache_evictions);
      else if (name == "peak-cache-bytes") ok = parse_u64(in, &s.peak_cache_bytes);
      else if (name == "digest") ok = parse_hex(in, &s.schedule_digest);
      else if (name == "seconds") {
        std::string tok;
        ok = static_cast<bool>(in >> tok);
        if (ok) s.seconds = std::strtod(tok.c_str(), nullptr);
      }
      // Unknown stat names are skipped (forward compatibility).
      if (!ok) {
        fail(err, "malformed stat " + name);
        return std::nullopt;
      }
    } else if (key == "trail") {
      if (!parse_i64(in, &pending_trail) || pending_trail < 0) {
        fail(err, "malformed trail count");
        return std::nullopt;
      }
    } else if (key == "node") {
      if (pending_trail <= 0) {
        fail(err, "node line outside a declared trail");
        return std::nullopt;
      }
      --pending_trail;
      std::string kind;
      if (!(in >> kind)) {
        fail(err, "malformed node line");
        return std::nullopt;
      }
      FrontierNode node;
      if (kind == "c") {
        node.is_coin = true;
        std::uint64_t value = 0;
        std::int64_t taken = 0;
        if (!parse_u64(in, &value) || !parse_i64(in, &taken)) {
          fail(err, "malformed coin node");
          return std::nullopt;
        }
        node.coin_value = value != 0;
        node.taken = static_cast<int>(taken);
      } else if (kind == "t") {
        node.is_stale = true;
        std::int64_t value = 0, options = 0, taken = 0;
        if (!parse_i64(in, &value) || !parse_i64(in, &options) ||
            !parse_i64(in, &taken) || value < 0 || options < 2 ||
            value >= options) {
          fail(err, "malformed stale node");
          return std::nullopt;
        }
        node.stale_value = static_cast<int>(value);
        node.stale_options = static_cast<int>(options);
        node.taken = static_cast<int>(taken);
      } else if (kind == "s") {
        std::int64_t chosen = 0, taken = 0, nops = 0;
        if (!parse_i64(in, &chosen) || !parse_i64(in, &taken) ||
            !parse_hex(in, &node.candidates) || !parse_hex(in, &node.sleep) ||
            !parse_i64(in, &nops) || nops < 0 || nops > kRunnableMaskBits) {
          fail(err, "malformed schedule node");
          return std::nullopt;
        }
        node.chosen = static_cast<ProcId>(chosen);
        node.taken = static_cast<int>(taken);
        node.ops.resize(static_cast<std::size_t>(nops));
        for (OpDesc& op : node.ops) {
          std::int64_t k = 0, object = 0, payload = 0;
          if (!parse_i64(in, &k) || !parse_i64(in, &object) ||
              !parse_i64(in, &payload) || k < 0 || k > 2) {
            fail(err, "malformed node op");
            return std::nullopt;
          }
          op.kind = static_cast<OpDesc::Kind>(k);
          op.object = static_cast<int>(object);
          op.payload = payload;
        }
      } else {
        fail(err, "unknown node kind " + kind);
        return std::nullopt;
      }
      frontier.trail.push_back(std::move(node));
    } else if (key == "violations") {
      if (!parse_i64(in, &pending_violations) || pending_violations < 0) {
        fail(err, "malformed violations count");
        return std::nullopt;
      }
    } else if (key == "violation") {
      if (pending_violations <= 0) {
        fail(err, "violation line outside a declared list");
        return std::nullopt;
      }
      --pending_violations;
      std::string name;
      if (!(in >> name)) {
        fail(err, "malformed violation line");
        return std::nullopt;
      }
      ExploreViolation v;
      v.failure = failure_class_from_string(name);
      frontier.violations.push_back(std::move(v));
      open_violation = &frontier.violations.back();
    } else if (key == "vschedule") {
      if (open_violation == nullptr) {
        fail(err, "vschedule without a violation");
        return std::nullopt;
      }
      std::int64_t p = 0;
      while (parse_i64(in, &p)) {
        if (p < 0 || p >= kRunnableMaskBits) {
          fail(err, "vschedule pick out of range");
          return std::nullopt;
        }
        open_violation->schedule.push_back(static_cast<ProcId>(p));
      }
    } else if (key == "vflips") {
      if (open_violation == nullptr) {
        fail(err, "vflips without a violation");
        return std::nullopt;
      }
      std::uint64_t f = 0;
      while (parse_u64(in, &f)) {
        open_violation->flips.push_back(f != 0);
      }
    } else if (key == "vstales") {
      if (open_violation == nullptr) {
        fail(err, "vstales without a violation");
        return std::nullopt;
      }
      std::int64_t c = 0;
      while (parse_i64(in, &c)) {
        if (c < 0) {
          fail(err, "vstales choice out of range");
          return std::nullopt;
        }
        open_violation->stales.push_back(static_cast<int>(c));
      }
    } else if (key == "vnote") {
      if (open_violation == nullptr) {
        fail(err, "vnote without a violation");
        return std::nullopt;
      }
      std::string rest;
      std::getline(in >> std::ws, rest);
      open_violation->note = rest;
    } else if (key == "cache") {
      if (!parse_i64(in, &pending_cache) || pending_cache < 0) {
        fail(err, "malformed cache count");
        return std::nullopt;
      }
      frontier.cache.reserve(static_cast<std::size_t>(pending_cache));
    } else if (key == "seen") {
      if (pending_cache <= 0) {
        fail(err, "seen line outside a declared cache");
        return std::nullopt;
      }
      --pending_cache;
      std::uint64_t cache_key = 0;
      std::uint64_t depth = 0;
      if (!parse_hex(in, &cache_key) || !parse_u64(in, &depth) || depth > 255) {
        fail(err, "malformed seen line");
        return std::nullopt;
      }
      frontier.cache.emplace_back(cache_key,
                                  static_cast<std::uint8_t>(depth));
    }
    // Unknown keys are skipped (forward compatibility).
  }

  if (!saw_end) {
    fail(err, "missing end marker (truncated frontier?)");
    return std::nullopt;
  }
  if (pending_trail > 0 || pending_violations > 0 || pending_cache > 0) {
    fail(err, "frontier section shorter than its declared count");
    return std::nullopt;
  }
  frontier.stats.complete = frontier.complete;
  return frontier;
}

bool save_frontier(const std::string& path, const Frontier& frontier) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string text = serialize_frontier(frontier);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(out.flush());
}

std::optional<Frontier> load_frontier(const std::string& path,
                                      std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (err != nullptr) *err = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_frontier(buf.str(), err);
}

}  // namespace bprc::explore
