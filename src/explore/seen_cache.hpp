// Seen-state cache for the exploration driver: fingerprint → shallowest
// depth at which the state was expanded.
//
// Two interchangeable layouts sit behind one visit() contract, chosen at
// construction (the determinism tests cross them):
//
//   * kMap — the seed implementation, a std::unordered_map. Kept as the
//     parity reference; at ~56 accounted bytes/state (node allocation,
//     next pointer, bucket array) it is the explorer's memory ceiling
//     long before deep n=4 trees are exhausted.
//   * kCompact — open-addressing, power-of-two table with linear probing
//     over parallel arrays: 8-byte full fingerprint keys plus 1-byte
//     quantized depth tags, ≤0.5 load factor. 18 bytes/state at full
//     load, ~4× down from the map's budget, and allocation-free per
//     visit. Keys keep all 64 fingerprint bits, so merge/redo decisions
//     are bit-identical to the map.
//
// Depths are quantized to 8 bits in BOTH layouts; the explorer requires
// branch_depth ≤ 255 when the cache is on (depths beyond the branch
// region are never cached). Key 0 is the empty-slot marker — callers
// canonicalize a zero fingerprint to a fixed non-zero constant before
// visiting, in both layouts, so the choice of layout never changes which
// states merge.
//
// Optional budget (`max_bytes`, compact only): when doubling the table
// would exceed it, the cache instead *evicts by depth* — it keeps the
// shallowest entries (each guards the largest subtree) up to a cutoff
// that frees at least half the table, and refuses to store deeper states
// from then on. Dropping entries is sound: a missing entry means a
// revisited state is re-explored, never that one is skipped. The trade
// is prune ratio for boundedness, and `evictions()` reports how often it
// was taken.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace bprc::explore {

/// The canonical stand-in for a zero fingerprint (kCompact reserves raw
/// key 0 as "empty slot"); applied by callers in both layouts.
inline constexpr std::uint64_t kSeenZeroKey = 0x9E3779B97F4A7C15ULL;

class SeenCache {
 public:
  enum class Layout { kMap, kCompact };
  enum class Visit {
    kNew,     ///< first time here (at any depth): explore the subtree
    kMerged,  ///< seen at this depth or shallower: prune
    kRedo,    ///< seen only deeper: re-explore (and remember the new depth)
  };

  explicit SeenCache(Layout layout, std::uint64_t max_bytes = 0)
      : layout_(layout), budget_(max_bytes) {
    if (layout_ == Layout::kCompact) rehash(kInitialCapacity);
    note_bytes();
  }

  Layout layout() const { return layout_; }

  Visit visit(std::uint64_t key, std::uint8_t depth) {
    BPRC_REQUIRE(key != 0, "zero fingerprints must be canonicalized");
    if (layout_ == Layout::kMap) {
      const auto [it, inserted] = map_.try_emplace(key, depth);
      if (inserted) {
        note_bytes();
        return Visit::kNew;
      }
      if (it->second <= depth) return Visit::kMerged;
      it->second = depth;
      return Visit::kRedo;
    }
    const std::size_t slot = find_slot(key);
    if (keys_[slot] == key) {
      if (depths_[slot] <= depth) return Visit::kMerged;
      depths_[slot] = depth;
      return Visit::kRedo;
    }
    if (depth > insert_cutoff_) return Visit::kNew;  // post-eviction: too deep
    keys_[slot] = key;
    depths_[slot] = depth;
    ++size_;
    if (size_ * 2 >= keys_.size()) grow_or_evict();
    return Visit::kNew;
  }

  std::uint64_t entries() const {
    return layout_ == Layout::kMap ? map_.size() : size_;
  }

  /// Accounted footprint right now. Map: per-node allocation (key+depth
  /// payload padded to 16, next pointer, ~24 bytes allocator rounding)
  /// plus the bucket array. Compact: the parallel arrays.
  std::uint64_t bytes() const {
    if (layout_ == Layout::kMap) {
      return map_.size() * 48 + map_.bucket_count() * 8;
    }
    return keys_.size() * (sizeof(std::uint64_t) + sizeof(std::uint8_t));
  }

  std::uint64_t peak_bytes() const { return peak_bytes_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Serializes every (key, depth) entry, for frontier checkpoints. Order
  /// is deterministic for a deterministic history (slot / bucket order).
  void snapshot(std::vector<std::pair<std::uint64_t, std::uint8_t>>* out) const {
    out->clear();
    if (layout_ == Layout::kMap) {
      out->reserve(map_.size());
      for (const auto& [k, d] : map_) out->emplace_back(k, d);
      return;
    }
    out->reserve(size_);
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != 0) out->emplace_back(keys_[i], depths_[i]);
    }
  }

  /// Rebuilds the cache from a snapshot (resume path). Lookup results are
  /// independent of insertion order, so a restored cache merges exactly
  /// like the one it was saved from.
  void restore(const std::vector<std::pair<std::uint64_t, std::uint8_t>>& in) {
    if (layout_ == Layout::kMap) {
      map_.clear();
      for (const auto& [k, d] : in) map_.emplace(k, d);
      note_bytes();
      return;
    }
    std::size_t cap = kInitialCapacity;
    while (cap < in.size() * 2 + 1) cap *= 2;
    rehash(cap);
    for (const auto& [k, d] : in) {
      const std::size_t slot = find_slot(k);
      if (keys_[slot] == 0) {
        keys_[slot] = k;
        depths_[slot] = d;
        ++size_;
      } else if (d < depths_[slot]) {
        depths_[slot] = d;
      }
    }
    note_bytes();
  }

 private:
  static constexpr std::size_t kInitialCapacity = 1024;

  static std::size_t mix(std::uint64_t key) {
    // splitmix64 finalizer: fingerprints are FNV folds, whose low bits
    // alone are not uniform enough for a power-of-two table.
    key ^= key >> 30;
    key *= 0xBF58476D1CE4E5B9ULL;
    key ^= key >> 27;
    key *= 0x94D049BB133111EBULL;
    key ^= key >> 31;
    return static_cast<std::size_t>(key);
  }

  std::size_t find_slot(std::uint64_t key) const {
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (keys_[i] != 0 && keys_[i] != key) i = (i + 1) & mask;
    return i;
  }

  void rehash(std::size_t capacity) {
    keys_.assign(capacity, 0);
    depths_.assign(capacity, 0);
    size_ = 0;
  }

  void grow_or_evict() {
    const std::uint64_t doubled =
        static_cast<std::uint64_t>(keys_.size()) * 2 * 9;
    if (budget_ == 0 || doubled <= budget_) {
      std::vector<std::uint64_t> old_keys = std::move(keys_);
      std::vector<std::uint8_t> old_depths = std::move(depths_);
      rehash(old_keys.size() * 2);
      reinsert(old_keys, old_depths);
      note_bytes();
      return;
    }
    // Over budget: keep the shallowest entries — each guards the largest
    // subtree — up to the deepest cutoff that still frees half the table,
    // and stop storing anything deeper.
    std::uint64_t histogram[256] = {};
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != 0) ++histogram[depths_[i]];
    }
    const std::uint64_t room = keys_.size() / 4;
    std::uint64_t kept = 0;
    int cutoff = -1;
    for (int d = 0; d < 256; ++d) {
      if (kept + histogram[d] > room) break;
      kept += histogram[d];
      cutoff = d;
    }
    insert_cutoff_ = cutoff;
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint8_t> old_depths = std::move(depths_);
    rehash(old_keys.size());
    reinsert(old_keys, old_depths);
    ++evictions_;
  }

  void reinsert(const std::vector<std::uint64_t>& old_keys,
                const std::vector<std::uint8_t>& old_depths) {
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == 0) continue;
      if (static_cast<int>(old_depths[i]) > insert_cutoff_) continue;
      const std::size_t slot = find_slot(old_keys[i]);
      keys_[slot] = old_keys[i];
      depths_[slot] = old_depths[i];
      ++size_;
    }
  }

  void note_bytes() {
    const std::uint64_t b = bytes();
    if (b > peak_bytes_) peak_bytes_ = b;
  }

  Layout layout_;
  std::uint64_t budget_;

  std::unordered_map<std::uint64_t, std::uint8_t> map_;  // kMap

  std::vector<std::uint64_t> keys_;   // kCompact; 0 = empty slot
  std::vector<std::uint8_t> depths_;
  std::size_t size_ = 0;
  int insert_cutoff_ = 255;  ///< depths beyond this are not stored

  std::uint64_t evictions_ = 0;
  std::uint64_t peak_bytes_ = 0;
};

}  // namespace bprc::explore
