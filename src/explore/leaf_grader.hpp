// Leaf grading for the exploration driver.
//
// The DFS coordinator (explorer.cpp) enumerates the branch region; a
// *leaf* is one execution it has resolved up to the region boundary,
// fully determined by its (schedule prefix, forced-flip prefix) — the
// deterministic tail (round-robin picks, seed-derived coins) follows
// from those plus the shared seed. grade_leaf() re-executes a leaf from
// the initial state on any thread's SimReuse and grades the terminal
// state with the target's full oracle, reporting every pick and flip of
// the run as a byte stream the coordinator folds into its
// schedule_digest in generation order. Because the replay is
// bit-identical to the run the serial explorer would have performed
// inline, digests, stats, and violation lists are byte-identical at any
// --jobs level.
//
// Event-stream encoding (one byte per event, digest-compatible with the
// serial explorer's incremental folds):
//   1..64  — pick of process (value - 1); nprocs ≤ 64 keeps these
//            disjoint from the markers below
//   0xF0   — local-coin flip resolved false
//   0xF1   — local-coin flip resolved true
//   0x80+c — stale read resolved to choice c (weakened register
//            semantics only; c < 6 keeps these below 0xCF)
//   0xCF   — grading worker died before reporting (isolated mode only)
//
// grade_leaf_isolated() runs the same grading in a fork()ed child so a
// leaf that kills its process (e.g. the broken-segv registry protocol)
// surfaces as a FailureClass::kWorkerCrash violation instead of taking
// the DFS down with it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "explore/explorer.hpp"

namespace bprc {
class SimReuse;
}

namespace bprc::explore {

inline constexpr std::uint8_t kEventFlipFalse = 0xF0;
inline constexpr std::uint8_t kEventFlipTrue = 0xF1;
inline constexpr std::uint8_t kEventWorkerCrash = 0xCF;
inline constexpr std::uint8_t kEventStaleBase = 0x80;  ///< + choice

/// One enumerated execution, ready to grade. For pruned executions
/// (cache merge / sleep-blocked frontier) no re-execution is needed —
/// the spec carries the coordinator-observed events and step count so
/// delivery-order folding stays uniform.
struct LeafSpec {
  bool pruned = false;
  std::vector<ProcId> schedule;      ///< replay prefix (branch region)
  std::vector<bool> flips;           ///< forced local-coin prefix
  std::vector<int> stales;           ///< forced stale-read choice prefix
  std::vector<std::uint8_t> events;  ///< coordinator-observed prefix events
  std::uint64_t steps = 0;           ///< coordinator-observed prefix steps
};

struct LeafOutcome {
  std::vector<std::uint8_t> events;  ///< full run, encoding above
  std::uint64_t steps = 0;
  bool pruned = false;
  bool complete = false;  ///< RunResult::Reason::kAllDone
  bool crashed = false;   ///< isolated worker died before reporting
  int crash_signal = 0;   ///< signal that killed it, 0 if plain exit
  std::optional<Violation> violation;
};

/// Recovers the pick sequence from an event stream (for violation
/// artifacts: the full schedule includes the deterministic tail).
std::vector<ProcId> decode_schedule(const std::vector<std::uint8_t>& events);

/// Re-executes one non-pruned leaf on `reuse` and grades it. The replay
/// prefix is scripted; past it, picks round-robin from the last
/// scheduled process and coins draw from the seed-derived generators —
/// exactly the serial explorer's deterministic tail.
LeafOutcome grade_leaf(ExploreTarget& target, const ExploreLimits& limits,
                       std::uint64_t seed, const LeafSpec& spec,
                       SimReuse& reuse);

/// grade_leaf in a fork()ed child. An abnormal child death yields
/// crashed=true with a kWorkerCrash violation and the spec's prefix
/// events plus a 0xCF marker, so the sweep continues deterministically.
/// Call only from a single-threaded coordinator (fork + threads do not
/// mix).
LeafOutcome grade_leaf_isolated(ExploreTarget& target,
                                const ExploreLimits& limits,
                                std::uint64_t seed, const LeafSpec& spec);

}  // namespace bprc::explore
