#include "explore/consensus_explore.hpp"

#include <memory>
#include <utility>

#include "fault/protocols.hpp"
#include "runtime/sim_runtime.hpp"
#include "util/assert.hpp"

namespace bprc::explore {

namespace {

/// ExploreTarget adapter over a registry protocol factory. Each
/// instantiate() builds a fresh protocol bound to the (re-armed) runtime
/// and spawns one proposer body per process — identical setup to
/// run_consensus_sim, so a violating schedule replays there verbatim.
class ConsensusTarget final : public ExploreTarget {
 public:
  ConsensusTarget(ProtocolFactory factory, std::vector<int> inputs)
      : factory_(std::move(factory)), inputs_(std::move(inputs)) {}

  int nprocs() const override { return static_cast<int>(inputs_.size()); }

  std::unique_ptr<Instance> instantiate(SimRuntime& rt) override {
    return std::make_unique<ConsensusInstance>(factory_(rt), inputs_, rt);
  }

 private:
  class ConsensusInstance final : public Instance {
   public:
    ConsensusInstance(std::unique_ptr<ConsensusProtocol> protocol,
                      const std::vector<int>& inputs, SimRuntime& rt)
        : protocol_(std::move(protocol)), inputs_(inputs) {
      const int n = static_cast<int>(inputs.size());
      for (ProcId p = 0; p < n; ++p) {
        const int input = inputs[static_cast<std::size_t>(p)];
        ConsensusProtocol* proto = protocol_.get();
        rt.spawn(p, [proto, input] { proto->propose(input); });
      }
    }

    std::optional<Violation> check(SimRuntime& rt, RunResult run,
                                   bool complete) override {
      const int n = static_cast<int>(inputs_.size());
      std::vector<bool> crashed(static_cast<std::size_t>(n), false);
      for (ProcId p = 0; p < n; ++p) {
        crashed[static_cast<std::size_t>(p)] = rt.crashed(p);
      }
      const ConsensusRunResult result =
          evaluate_consensus(*protocol_, inputs_, rt, run, crashed);
      FailureClass failure = result.failure();
      if (!complete && failure == FailureClass::kTermination) {
        // A truncated run proves nothing about termination — randomized
        // consensus only terminates with probability 1, and the
        // deterministic tail may simply need more budget. Safety
        // violations (the other classes) stand regardless.
        failure = FailureClass::kNone;
      }
      if (failure == FailureClass::kNone) return std::nullopt;
      Violation v;
      v.failure = failure;
      std::string note = "reason=";
      note += to_string(result.reason);
      note += " decisions=";
      for (std::size_t i = 0; i < result.decisions.size(); ++i) {
        if (i > 0) note += ',';
        note += std::to_string(result.decisions[i]);
      }
      if (failure == FailureClass::kBoundedMemory) {
        note += " max_counter=" +
                std::to_string(result.footprint.max_counter) + " bound=" +
                std::to_string(result.footprint.static_bound);
      }
      v.note = std::move(note);
      return v;
    }

   private:
    std::unique_ptr<ConsensusProtocol> protocol_;
    const std::vector<int>& inputs_;
  };

  ProtocolFactory factory_;
  std::vector<int> inputs_;
};

}  // namespace

std::uint64_t consensus_target_fingerprint(
    const ConsensusExploreConfig& config) {
  std::uint64_t h = kFnvOffset;
  for (const char c : config.protocol) {
    h = fnv_mix(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  h = fnv_mix(h, config.inputs.size());
  for (const int input : config.inputs) {
    h = fnv_mix(h, static_cast<std::uint64_t>(input) + 1);
  }
  // Non-default budgets change what the target IS; fold them (and only
  // them, so historical frontier fingerprints keep their values).
  if (!config.space.is_default()) {
    h = fnv_mix(h, static_cast<std::uint64_t>(config.space.K));
    h = fnv_mix(h, static_cast<std::uint64_t>(config.space.cycle_mult));
    h = fnv_mix(h, static_cast<std::uint64_t>(config.space.slots));
    h = fnv_mix(h, static_cast<std::uint64_t>(config.space.b));
    h = fnv_mix(h, static_cast<std::uint64_t>(config.space.m_scale));
  }
  return h;
}

ConsensusExploreReport explore_consensus(const ConsensusExploreConfig& config,
                                         const FrontierOptions* frontier) {
  BPRC_REQUIRE(!config.inputs.empty(), "explore_consensus needs inputs");
  const int n = static_cast<int>(config.inputs.size());
  ConsensusTarget target(
      fault::make_protocol(config.protocol, n, config.seed, config.space),
      config.inputs);
  std::optional<FrontierOptions> options;
  if (frontier != nullptr) {
    options = *frontier;
    options->target_fingerprint = consensus_target_fingerprint(config);
  }
  ExploreResult result =
      explore(target, config.limits, config.seed, config.reuse_runtime,
              options.has_value() ? &*options : nullptr);
  ConsensusExploreReport report;
  report.config = config;
  report.stats = result.stats;
  report.violations = std::move(result.violations);
  return report;
}

std::vector<ConsensusExploreReport> explore_consensus_all_inputs(
    const std::string& protocol, int n, std::uint64_t seed,
    const ExploreLimits& limits, bool reuse_runtime,
    const SpaceBudget& space) {
  BPRC_REQUIRE(n > 0 && n < 16, "input sweep is exponential in n");
  std::vector<ConsensusExploreReport> reports;
  for (unsigned bits = 0; bits < (1u << n); ++bits) {
    ConsensusExploreConfig config;
    config.protocol = protocol;
    config.seed = seed;
    config.space = space;
    config.limits = limits;
    config.reuse_runtime = reuse_runtime;
    config.inputs.resize(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      config.inputs[static_cast<std::size_t>(p)] =
          (bits >> static_cast<unsigned>(p)) & 1u;
    }
    reports.push_back(explore_consensus(config));
  }
  return reports;
}

fault::Repro make_explore_repro(const ConsensusExploreConfig& config,
                                const ExploreViolation& violation) {
  fault::Repro repro;
  repro.run.protocol = config.protocol;
  repro.run.inputs = config.inputs;
  repro.run.adversary = "explore";  // provenance; replay is fully scripted
  repro.run.seed = config.seed;
  repro.run.max_steps = config.limits.max_run_steps;
  repro.run.semantics = config.limits.semantics;
  repro.run.space = config.space;
  repro.failure = violation.failure;
  repro.schedule = violation.schedule;
  repro.flips = violation.flips;
  repro.stales = violation.stales;
  repro.note = violation.note;
  return repro;
}

}  // namespace bprc::explore
