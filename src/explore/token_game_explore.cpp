#include "explore/token_game_explore.hpp"

#include <memory>
#include <string>

#include "runtime/sim_runtime.hpp"
#include "strip/distance_graph.hpp"
#include "strip/token_game.hpp"
#include "util/assert.hpp"

namespace bprc::explore {

namespace {

class TokenGameTarget final : public ExploreTarget {
 public:
  TokenGameTarget(int n, int K, int moves_per_proc)
      : n_(n), k_(K), moves_(moves_per_proc) {}

  int nprocs() const override { return n_; }

  std::unique_ptr<Instance> instantiate(SimRuntime& rt) override {
    return std::make_unique<GameInstance>(n_, k_, moves_, rt);
  }

 private:
  class GameInstance final : public Instance {
   public:
    GameInstance(int n, int K, int moves, SimRuntime& rt)
        : game_(n, K), graph_(n, K) {
      for (ProcId p = 0; p < n; ++p) {
        rt.spawn(p, [this, &rt, p, moves] {
          for (int m = 0; m < moves; ++m) {
            // One shared virtual object (id 0) for the whole strip: every
            // pair of moves conflicts, so sleep sets never prune an
            // interleaving of this target.
            rt.checkpoint({OpDesc::Kind::kWrite, 0, p});
            game_.move_token(p);
            graph_.inc(p);
            if (!(graph_ ==
                  DistanceGraph::from_positions(game_.positions(), k()))) {
              record_mismatch(p, m);
            }
          }
        });
      }
    }

    std::optional<Violation> check(SimRuntime& /*rt*/, RunResult /*run*/,
                                   bool /*complete*/) override {
      // The per-move check already ran inside the bodies; mismatches are
      // consistency violations regardless of whether the run finished.
      if (!mismatch_) return std::nullopt;
      Violation v;
      v.failure = FailureClass::kConsistency;
      v.note = mismatch_note_;
      return v;
    }

    std::uint64_t state_probe() const override {
      // The movers mutate the game and graph directly, invisible to the
      // TraceSink register hooks — fold both models (and the sticky
      // mismatch flag) into the global-state fingerprint so seen-state
      // merging never conflates distinct model states.
      std::uint64_t h = fnv_mix(kFnvOffset, mismatch_ ? 0x4D : 0x2D);
      for (const std::int64_t p : game_.positions()) {
        h = fnv_mix(h, static_cast<std::uint64_t>(p));
      }
      const int n = graph_.nprocs();
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          h = fnv_mix(h, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(graph_.signed_diff(i, j)) +
                             0x100));
        }
      }
      return h;
    }

   private:
    int k() const { return game_.K(); }

    void record_mismatch(int mover, int move_index) {
      if (mismatch_) return;  // keep the first divergence
      mismatch_ = true;
      mismatch_note_ = "claim-4.1 divergence: inc(" + std::to_string(mover) +
                       ") at move " + std::to_string(move_index) +
                       " of that process; positions=";
      for (std::size_t i = 0; i < game_.positions().size(); ++i) {
        if (i > 0) mismatch_note_ += ',';
        mismatch_note_ += std::to_string(game_.positions()[i]);
      }
    }

    TokenGame game_;
    DistanceGraph graph_;
    bool mismatch_ = false;
    std::string mismatch_note_;
  };

  int n_;
  int k_;
  int moves_;
};

}  // namespace

ExploreResult explore_token_game(int n, int K, int moves_per_proc,
                                 const ExploreLimits& limits,
                                 std::uint64_t seed, bool reuse_runtime) {
  BPRC_REQUIRE(n > 0 && K > 0 && moves_per_proc > 0,
               "token-game exploration needs positive n, K, moves");
  BPRC_REQUIRE(limits.branch_depth >=
                   static_cast<std::uint64_t>(n) *
                       static_cast<std::uint64_t>(moves_per_proc),
               "branch_depth below n*moves: the tail would serialize part "
               "of the interleaving space");
  TokenGameTarget target(n, K, moves_per_proc);
  return explore(target, limits, seed, reuse_runtime);
}

}  // namespace bprc::explore
