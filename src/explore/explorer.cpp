#include "explore/explorer.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "engine/executor.hpp"
#include "explore/frontier.hpp"
#include "explore/leaf_grader.hpp"
#include "explore/seen_cache.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"
#include "util/assert.hpp"

namespace bprc::explore {

namespace {

constexpr std::uint64_t bit_of(ProcId p) {
  return std::uint64_t{1} << static_cast<unsigned>(p);
}

/// Independence relation for the sleep sets, read off pending OpDescs.
/// Conservative (sound) in both unknowns: an op with no object id (-1, or
/// the strong-coin's -2) conflicts with everything except pure local
/// computation, and any two ops on the same object conflict unless both
/// are reads. Kind::kNone means the process is before its first shared
/// operation — pure local computation, independent of everything.
bool independent(const OpDesc& a, const OpDesc& b) {
  if (a.kind == OpDesc::Kind::kNone || b.kind == OpDesc::Kind::kNone) {
    return true;
  }
  if (a.object < 0 || b.object < 0) return false;
  if (a.object != b.object) return true;
  return a.kind == OpDesc::Kind::kRead && b.kind == OpDesc::Kind::kRead;
}

class Explorer;

/// The backtracking adversary handed to the runtime: SimRuntime insists on
/// owning its adversary, so each execution gets a fresh forwarding shim.
class ExploreShim final : public Adversary {
 public:
  explicit ExploreShim(Explorer& explorer) : explorer_(explorer) {}
  ProcId pick(SimCtl& ctl) override;
  int resolve_read(SimCtl& ctl, const StaleRead& sr) override;
  std::string name() const override { return "explore"; }

 private:
  Explorer& explorer_;
};

/// One choice point on the DFS trail. Schedule nodes branch over runnable
/// processes; coin nodes branch a local flip over {false, true}; stale
/// nodes (weakened register semantics) branch an overlapping read over
/// every servable value [0, stale_options).
struct Node {
  bool is_coin = false;
  bool coin_value = false;  ///< current branch of a coin node
  bool is_stale = false;
  int stale_value = 0;      ///< current branch of a stale node
  int stale_options = 0;    ///< choice count recorded at creation
  ProcId chosen = -1;       ///< current branch of a schedule node
  int taken = 0;            ///< branches explored so far (stats)
  std::uint64_t candidates = 0;  ///< runnable set at this point
  /// Working sleep set: entry sleep plus already-explored siblings. A
  /// candidate in here commutes with some explored branch — its subtree
  /// is a permutation of one already visited.
  std::uint64_t sleep = 0;
  std::vector<OpDesc> ops;  ///< pending op per process (dependence check)
};

/// Bounded handoff between the enumerating coordinator and the grading
/// pump (the TrialExecutor's generator pops from here). Backpressure on
/// push keeps at most capacity + executor-window leaves in flight.
class LeafQueue {
 public:
  explicit LeafQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks while full; false once abort()ed (sink stopped the sweep).
  bool push(LeafSpec&& spec) {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return aborted_ || q_.size() < capacity_; });
    if (aborted_) return false;
    q_.push_back(std::move(spec));
    cv_.notify_all();
    return true;
  }

  /// Blocks while empty; nullopt once closed-and-drained or abort()ed.
  std::optional<LeafSpec> pop() {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return aborted_ || closed_ || !q_.empty(); });
    if (aborted_ || q_.empty()) return std::nullopt;
    LeafSpec spec = std::move(q_.front());
    q_.pop_front();
    cv_.notify_all();
    return spec;
  }

  void close() {
    std::lock_guard<std::mutex> lk(m_);
    closed_ = true;
    cv_.notify_all();
  }

  void abort() {
    std::lock_guard<std::mutex> lk(m_);
    aborted_ = true;
    q_.clear();
    cv_.notify_all();
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::deque<LeafSpec> q_;
  std::size_t capacity_;
  bool closed_ = false;
  bool aborted_ = false;
};

// --- pipe wire helpers for the isolated (fork-per-execution) mode ---

void pipe_write(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t w = ::write(fd, p, len);
    if (w <= 0) _exit(3);  // parent treats a short report as a crash
    p += w;
    len -= static_cast<std::size_t>(w);
  }
}

bool pipe_read(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t r = ::read(fd, p, len);
    if (r <= 0) return false;
    p += r;
    len -= static_cast<std::size_t>(r);
  }
  return true;
}

template <typename T>
void pipe_write_pod(int fd, const T& v) {
  pipe_write(fd, &v, sizeof v);
}

template <typename T>
bool pipe_read_pod(int fd, T* v) {
  return pipe_read(fd, v, sizeof *v);
}

/// Everything an isolated child must hand back so the parent's DFS state
/// evolves exactly as if it had executed the run itself: the outcome, the
/// trail extension, the seen-cache visits (replayed on the parent's
/// cache), and the tree-shape counter deltas.
struct IsolatedReport {
  bool pruned = false;
  bool complete = false;
  std::optional<Violation> violation;
  std::uint64_t steps = 0;
  std::vector<std::uint8_t> events;
  std::vector<bool> flips;
  std::vector<int> stales;
  std::vector<Node> new_nodes;
  std::vector<std::pair<std::uint64_t, std::uint8_t>> visits;
  std::uint64_t d_states_visited = 0;
  std::uint64_t d_states_merged = 0;
  std::uint64_t d_sleep_blocked = 0;
  std::uint64_t d_coin_branches = 0;
};

void send_report(int fd, const IsolatedReport& rep, int nprocs) {
  std::uint8_t flags = 0;
  if (rep.pruned) flags |= 1;
  if (rep.complete) flags |= 2;
  if (rep.violation.has_value()) flags |= 4;
  pipe_write_pod(fd, flags);
  const std::uint8_t failure = static_cast<std::uint8_t>(
      rep.violation ? rep.violation->failure : FailureClass::kNone);
  pipe_write_pod(fd, failure);
  const std::uint32_t note_len = static_cast<std::uint32_t>(
      rep.violation ? rep.violation->note.size() : 0);
  pipe_write_pod(fd, note_len);
  if (note_len > 0) pipe_write(fd, rep.violation->note.data(), note_len);
  pipe_write_pod(fd, rep.steps);
  pipe_write_pod<std::uint64_t>(fd, rep.events.size());
  if (!rep.events.empty()) pipe_write(fd, rep.events.data(), rep.events.size());
  pipe_write_pod<std::uint64_t>(fd, rep.flips.size());
  for (const bool b : rep.flips) {
    pipe_write_pod<std::uint8_t>(fd, b ? 1 : 0);
  }
  pipe_write_pod<std::uint64_t>(fd, rep.stales.size());
  for (const int c : rep.stales) {
    pipe_write_pod<std::int32_t>(fd, c);
  }
  pipe_write_pod<std::uint64_t>(fd, rep.new_nodes.size());
  for (const Node& node : rep.new_nodes) {
    // Kind byte: 0 = schedule, 1 = coin, 2 = stale.
    const std::uint8_t kind = node.is_coin ? 1 : (node.is_stale ? 2 : 0);
    pipe_write_pod(fd, kind);
    if (node.is_coin) continue;  // created coin nodes are (false, taken=1)
    if (node.is_stale) {
      // Created stale nodes are (value=0, taken=1); only the option count
      // varies.
      pipe_write_pod<std::int32_t>(fd, node.stale_options);
      continue;
    }
    pipe_write_pod<std::int32_t>(fd, node.chosen);
    pipe_write_pod(fd, node.candidates);
    pipe_write_pod(fd, node.sleep);
    for (int p = 0; p < nprocs; ++p) {
      const OpDesc& op = node.ops[static_cast<std::size_t>(p)];
      pipe_write_pod<std::uint8_t>(fd, static_cast<std::uint8_t>(op.kind));
      pipe_write_pod<std::int32_t>(fd, op.object);
      pipe_write_pod<std::int64_t>(fd, op.payload);
    }
  }
  pipe_write_pod<std::uint64_t>(fd, rep.visits.size());
  for (const auto& [key, depth] : rep.visits) {
    pipe_write_pod(fd, key);
    pipe_write_pod(fd, depth);
  }
  pipe_write_pod(fd, rep.d_states_visited);
  pipe_write_pod(fd, rep.d_states_merged);
  pipe_write_pod(fd, rep.d_sleep_blocked);
  pipe_write_pod(fd, rep.d_coin_branches);
}

bool recv_report(int fd, IsolatedReport* rep, int nprocs) {
  std::uint8_t flags = 0;
  std::uint8_t failure = 0;
  std::uint32_t note_len = 0;
  if (!pipe_read_pod(fd, &flags)) return false;
  if (!pipe_read_pod(fd, &failure)) return false;
  if (!pipe_read_pod(fd, &note_len)) return false;
  if (note_len > (1u << 20)) return false;  // corrupt length = crash
  std::string note(note_len, '\0');
  if (note_len > 0 && !pipe_read(fd, note.data(), note_len)) return false;
  if (!pipe_read_pod(fd, &rep->steps)) return false;
  std::uint64_t count = 0;
  if (!pipe_read_pod(fd, &count) || count > (1ull << 30)) return false;
  rep->events.resize(static_cast<std::size_t>(count));
  if (count > 0 && !pipe_read(fd, rep->events.data(), rep->events.size())) {
    return false;
  }
  if (!pipe_read_pod(fd, &count) || count > (1ull << 20)) return false;
  rep->flips.resize(static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < rep->flips.size(); ++i) {
    std::uint8_t b = 0;
    if (!pipe_read_pod(fd, &b)) return false;
    rep->flips[i] = b != 0;
  }
  if (!pipe_read_pod(fd, &count) || count > (1ull << 20)) return false;
  rep->stales.resize(static_cast<std::size_t>(count));
  for (int& c : rep->stales) {
    std::int32_t v = 0;
    if (!pipe_read_pod(fd, &v)) return false;
    c = v;
  }
  if (!pipe_read_pod(fd, &count) || count > (1ull << 20)) return false;
  rep->new_nodes.resize(static_cast<std::size_t>(count));
  for (Node& node : rep->new_nodes) {
    std::uint8_t kind = 0;
    if (!pipe_read_pod(fd, &kind)) return false;
    if (kind > 2) return false;
    node.is_coin = kind == 1;
    node.is_stale = kind == 2;
    node.taken = 1;
    if (node.is_coin) continue;
    if (node.is_stale) {
      std::int32_t options = 0;
      if (!pipe_read_pod(fd, &options)) return false;
      node.stale_options = options;
      continue;
    }
    std::int32_t chosen = 0;
    if (!pipe_read_pod(fd, &chosen)) return false;
    node.chosen = static_cast<ProcId>(chosen);
    if (!pipe_read_pod(fd, &node.candidates)) return false;
    if (!pipe_read_pod(fd, &node.sleep)) return false;
    node.ops.resize(static_cast<std::size_t>(nprocs));
    for (int p = 0; p < nprocs; ++p) {
      OpDesc& op = node.ops[static_cast<std::size_t>(p)];
      std::uint8_t kind = 0;
      std::int32_t object = 0;
      std::int64_t payload = 0;
      if (!pipe_read_pod(fd, &kind)) return false;
      if (!pipe_read_pod(fd, &object)) return false;
      if (!pipe_read_pod(fd, &payload)) return false;
      op.kind = static_cast<OpDesc::Kind>(kind);
      op.object = object;
      op.payload = payload;
    }
  }
  if (!pipe_read_pod(fd, &count) || count > (1ull << 30)) return false;
  rep->visits.resize(static_cast<std::size_t>(count));
  for (auto& [key, depth] : rep->visits) {
    if (!pipe_read_pod(fd, &key)) return false;
    if (!pipe_read_pod(fd, &depth)) return false;
  }
  if (!pipe_read_pod(fd, &rep->d_states_visited)) return false;
  if (!pipe_read_pod(fd, &rep->d_states_merged)) return false;
  if (!pipe_read_pod(fd, &rep->d_sleep_blocked)) return false;
  if (!pipe_read_pod(fd, &rep->d_coin_branches)) return false;
  if ((flags & 4) != 0) {
    Violation v;
    v.failure = static_cast<FailureClass>(failure);
    v.note = std::move(note);
    rep->violation = std::move(v);
  }
  rep->pruned = (flags & 1) != 0;
  rep->complete = (flags & 2) != 0;
  return true;
}

class Explorer final : public FlipTape, public TraceSink {
 public:
  Explorer(ExploreTarget& target, const ExploreLimits& limits,
           std::uint64_t seed, bool reuse_runtime,
           const FrontierOptions* frontier)
      : target_(target),
        limits_(limits),
        seed_(seed),
        reuse_(reuse_runtime),
        nprocs_(target.nprocs()),
        frontier_(frontier != nullptr ? *frontier : FrontierOptions{}),
        seen_(limits.compact_cache ? SeenCache::Layout::kCompact
                                   : SeenCache::Layout::kMap,
              limits.max_cache_bytes) {
    BPRC_REQUIRE(nprocs_ > 0, "explore target needs at least one process");
    BPRC_REQUIRE(nprocs_ <= kRunnableMaskBits,
                 "explorer masks cap the process count");
    BPRC_REQUIRE(!limits_.state_cache || limits_.branch_depth <= 255,
                 "seen-state depth tags are 8-bit: branch_depth <= 255");
    BPRC_REQUIRE(!limits_.isolate_leaves || limits_.grade_jobs <= 1,
                 "isolated leaf grading forks: grade_jobs must be 1");
    if (limits_.split_count > 1) {
      BPRC_REQUIRE(limits_.split_index < limits_.split_count,
                   "frontier split index out of range");
      BPRC_REQUIRE(limits_.branch_depth >= 1,
                   "frontier split needs a branch region");
    }
    if (limits_.isolate_leaves) {
      mode_ = Mode::kIsolate;
    } else if (limits_.grade_jobs > 1) {
      mode_ = Mode::kBatched;
    }
    config_fp_ = config_fingerprint();
  }

  ExploreResult run() {
    t0_ = std::chrono::steady_clock::now();
    bool pending_backtrack = false;
    if (frontier_.resume != nullptr) {
      const Frontier& f = *frontier_.resume;
      BPRC_REQUIRE(f.fingerprint == config_fp_,
                   "frontier does not match this exploration configuration");
      if (f.complete) {
        // Nothing left to explore: the saved result is the result.
        return ExploreResult{f.stats, f.violations};
      }
      restore(f);
      pending_backtrack = true;  // saved trail is a post-execution snapshot
    }

    if (mode_ == Mode::kBatched) start_pump();
    bool more = true;
    if (pending_backtrack) more = backtrack();
    while (more) {
      execute_once();
      const bool stopped_by_violations =
          mode_ == Mode::kBatched
              ? stop_requested_.load(std::memory_order_relaxed)
              : violations_.size() >= limits_.max_violations;
      if (stopped_by_violations ||
          (limits_.max_executions != 0 &&
           enumerated_ >= limits_.max_executions) ||
          (limits_.max_states != 0 &&
           stats_.states_visited >= limits_.max_states)) {
        stats_.complete = false;
        break;
      }
      if (frontier_.checkpoint_every != 0 &&
          !frontier_.checkpoint_path.empty() &&
          enumerated_ % frontier_.checkpoint_every == 0) {
        if (mode_ == Mode::kBatched) drain_pump();
        save_checkpoint(/*complete=*/false);
        if (mode_ == Mode::kBatched) start_pump();
      }
      more = backtrack();
    }
    if (mode_ == Mode::kBatched) drain_pump();
    if (checkpoint_unsafe_) stats_.complete = false;

    finalize_stats();
    if (!frontier_.checkpoint_path.empty() && !checkpoint_unsafe_) {
      save_checkpoint(stats_.complete);
    }
    return ExploreResult{stats_, std::move(violations_)};
  }

  // --- scheduling callback (via ExploreShim) ---
  ProcId pick(SimCtl& ctl) {
    const std::uint64_t runnable = runnable_set(ctl);
    if (runnable == 0) return -1;  // defensive; run loop checks first

    if (cursor_ < trail_.size()) return replay_pick(runnable);

    const std::uint64_t depth = exec_schedule_.size();
    if (depth >= limits_.branch_depth) {
      if (mode_ == Mode::kBatched) {
        // The leaf is fully determined by its prefix: cut here and let
        // the grading pipeline replay prefix + deterministic tail.
        cut_ = true;
        return -1;
      }
      return tail_pick(runnable);
    }

    // Frontier. Seen-state check first: a state already expanded at this
    // depth or shallower has had its whole (bounded) subtree explored.
    if (limits_.state_cache) {
      std::uint64_t key = fingerprint(ctl);
      key = fnv_mix(key, cur_sleep_);
      key = fnv_mix(key, coins_used_);
      if (limits_.semantics != RegisterSemantics::kAtomic) {
        // The remaining stale-read branching budget shapes the subtree
        // just like the coin budget does. Folded only when weakened, so
        // atomic-mode keys (and their pinned digests) are untouched.
        key = fnv_mix(key, stales_used_ + 1);
      }
      if (key == 0) key = kSeenZeroKey;  // 0 marks empty compact slots
      if (visit_log_ != nullptr) {
        visit_log_->emplace_back(key, static_cast<std::uint8_t>(depth));
      }
      const SeenCache::Visit visit =
          seen_.visit(key, static_cast<std::uint8_t>(depth));
      if (visit == SeenCache::Visit::kMerged) {
        ++stats_.states_merged;
        pruned_ = true;
        return -1;
      }
    }

    Node node;
    node.candidates = runnable;
    if (limits_.split_count > 1 && trail_.empty()) {
      node.candidates = split_candidates(runnable);
      if (node.candidates == 0) {
        // This slice owns none of the root's branches.
        pruned_ = true;
        return -1;
      }
    }
    node.sleep = limits_.sleep_sets ? (cur_sleep_ & node.candidates) : 0;
    node.ops.resize(static_cast<std::size_t>(nprocs_));
    for (ProcId p = 0; p < nprocs_; ++p) {
      node.ops[static_cast<std::size_t>(p)] = ctl.view(p).pending;
    }
    const std::uint64_t open = node.candidates & ~node.sleep;
    if (open == 0) {
      // Every enabled move commutes with an explored sibling of some
      // ancestor: this whole state is a permutation of a visited one.
      ++stats_.sleep_blocked;
      pruned_ = true;
      return -1;
    }
    node.chosen = static_cast<ProcId>(std::countr_zero(open));
    node.taken = 1;
    ++stats_.states_visited;
    cur_sleep_ = child_sleep(node, node.chosen);
    trail_.push_back(std::move(node));
    ++cursor_;
    record_pick(trail_.back().chosen);
    return trail_.back().chosen;
  }

  // --- FlipTape ---
  bool on_flip(bool drawn) override {
    if (cursor_ < trail_.size()) {
      Node& node = trail_[cursor_];
      if (node.is_coin) {
        ++cursor_;
        ++coins_used_;
        record_flip(node.coin_value, /*forced=*/true);
        return node.coin_value;
      }
      // The next recorded choice is a scheduling point, so when this
      // prefix was first executed the present flip drew from the seeded
      // generator (no coin node was created). Both branching gates are
      // monotone along an execution, so that must still be the case —
      // anything else is a replay divergence.
      BPRC_REQUIRE(exec_schedule_.size() >= limits_.branch_depth ||
                       coins_used_ >= limits_.max_coin_flips,
                   "exploration diverged: unforced flip inside the branch "
                   "region during replay");
      record_flip(drawn, /*forced=*/false);
      return drawn;
    }
    // Branch a fresh coin only inside the branch region and budget; both
    // conditions are monotone along an execution, so the forced flips
    // always form a prefix of the run's flip sequence — exactly what
    // ScriptedFlipTape re-forces on replay.
    if (exec_schedule_.size() < limits_.branch_depth &&
        coins_used_ < limits_.max_coin_flips) {
      Node node;
      node.is_coin = true;
      node.coin_value = false;
      node.taken = 1;
      trail_.push_back(std::move(node));
      ++cursor_;
      ++coins_used_;
      ++stats_.coin_branches;
      record_flip(false, /*forced=*/true);
      return false;
    }
    record_flip(drawn, /*forced=*/false);
    return drawn;
  }

  // --- stale-read branching (via ExploreShim::resolve_read; weakened
  // semantics only — the runtime never asks under atomic) ---
  int on_stale(const StaleRead& sr) {
    if (cursor_ < trail_.size()) {
      Node& node = trail_[cursor_];
      if (node.is_stale) {
        BPRC_REQUIRE(node.stale_options == sr.options,
                     "exploration diverged: stale-read option count changed "
                     "under replay");
        ++cursor_;
        ++stales_used_;
        record_stale(sr.reader, node.stale_value, /*forced=*/true);
        return node.stale_value;
      }
      // The next recorded choice point is of another kind, so when this
      // prefix was first executed the present read was unforced (resolved
      // to the atomic answer without a node). Both gates are monotone
      // along an execution, so that must still be the case.
      BPRC_REQUIRE(exec_schedule_.size() >= limits_.branch_depth ||
                       stales_used_ >= limits_.max_stale_reads,
                   "exploration diverged: unforced stale read inside the "
                   "branch region during replay");
      record_stale(sr.reader, 0, /*forced=*/false);
      return 0;
    }
    // Branch a fresh stale read only inside the branch region and budget;
    // monotone gates keep the forced choices a prefix of the run's
    // stale-read sequence — exactly what ScriptedAdversary re-forces.
    if (exec_schedule_.size() < limits_.branch_depth &&
        stales_used_ < limits_.max_stale_reads) {
      Node node;
      node.is_stale = true;
      node.stale_value = 0;
      node.stale_options = sr.options;
      node.taken = 1;
      trail_.push_back(std::move(node));
      ++cursor_;
      ++stales_used_;
      ++stats_.stale_branches;
      record_stale(sr.reader, 0, /*forced=*/true);
      return 0;
    }
    record_stale(sr.reader, 0, /*forced=*/false);
    return 0;
  }

  // --- TraceSink (state fingerprinting) ---
  int on_object_created() override {
    const int id = next_object_++;
    if (static_cast<std::size_t>(id) >= object_last_.size()) {
      object_last_.resize(static_cast<std::size_t>(id) + 1, 0);
    }
    object_last_[static_cast<std::size_t>(id)] = 0;
    objects_fold_ ^= entry_hash(id, 0);
    return id;
  }

  void on_read(ProcId p, int object) override {
    // Folding the *last-writer identity* of the object into the reader's
    // history hash grounds the value read: written values are
    // deterministic functions of the writer's local history, so equal
    // histories + equal last-writer identities imply equal contents —
    // no hashing of arbitrary value types needed.
    auto& h = proc_hash_[static_cast<std::size_t>(p)];
    h = fnv_mix(h, 0x52);
    h = fnv_mix(h, static_cast<std::uint64_t>(object));
    h = fnv_mix(h, object_last_[static_cast<std::size_t>(object)]);
  }

  void on_write(ProcId p, int object) override {
    auto& h = proc_hash_[static_cast<std::size_t>(p)];
    h = fnv_mix(h, 0x57);
    h = fnv_mix(h, static_cast<std::uint64_t>(object));
    const std::uint64_t writes = ++proc_writes_[static_cast<std::size_t>(p)];
    update_last(object,
                (static_cast<std::uint64_t>(p) << 40) ^ writes);
  }

  void on_event(ProcId p, int object, std::uint64_t digest,
                bool mutates) override {
    auto& h = proc_hash_[static_cast<std::size_t>(p)];
    h = fnv_mix(h, 0x45);
    h = fnv_mix(h, static_cast<std::uint64_t>(object));
    h = fnv_mix(h, digest);
    if (mutates) update_last(object, fnv_mix(kFnvOffset, digest));
  }

 private:
  enum : std::uint64_t { kDigestRunEnd = 0xE0D };
  enum class Mode { kInline, kBatched, kIsolate };

  std::uint64_t runnable_set(const SimCtl& ctl) const {
    if (const std::uint64_t* mask = ctl.runnable_mask()) return *mask;
    std::uint64_t out = 0;
    for (ProcId p = 0; p < nprocs_; ++p) {
      if (ctl.view(p).runnable) out |= bit_of(p);
    }
    return out;
  }

  /// Root slice for --frontier-split: keep the candidates whose rank
  /// (position among set bits) lands on this slice.
  std::uint64_t split_candidates(std::uint64_t runnable) const {
    std::uint64_t out = 0;
    std::uint32_t rank = 0;
    std::uint64_t rest = runnable;
    while (rest != 0) {
      const int p = std::countr_zero(rest);
      rest &= rest - 1;
      if (rank % limits_.split_count == limits_.split_index) {
        out |= bit_of(static_cast<ProcId>(p));
      }
      ++rank;
    }
    return out;
  }

  std::uint64_t entry_hash(int object, std::uint64_t last) const {
    return fnv_mix(fnv_mix(kFnvOffset, static_cast<std::uint64_t>(object) + 1),
                   last);
  }

  void update_last(int object, std::uint64_t last) {
    auto& slot = object_last_[static_cast<std::size_t>(object)];
    objects_fold_ ^= entry_hash(object, slot);
    slot = last;
    objects_fold_ ^= entry_hash(object, slot);
  }

  /// Sleep set the child inherits after taking `p` at `node`: the moves
  /// still asleep are those that commute with p's pending op (reordering
  /// them past p reaches a state some other branch covers).
  std::uint64_t child_sleep(const Node& node, ProcId p) const {
    if (!limits_.sleep_sets) return 0;
    std::uint64_t out = 0;
    std::uint64_t rest = node.sleep;
    const OpDesc& op = node.ops[static_cast<std::size_t>(p)];
    while (rest != 0) {
      const int q = std::countr_zero(rest);
      rest &= rest - 1;
      if (independent(node.ops[static_cast<std::size_t>(q)], op)) {
        out |= bit_of(q);
      }
    }
    return out;
  }

  std::uint64_t fingerprint(const SimCtl& ctl) const {
    std::uint64_t h = kFnvOffset;
    for (ProcId p = 0; p < nprocs_; ++p) {
      const SimCtl::ProcView& v = ctl.view(p);
      h = fnv_mix(h, proc_hash_[static_cast<std::size_t>(p)]);
      h = fnv_mix(h, (static_cast<std::uint64_t>(v.finished) << 2) |
                         (static_cast<std::uint64_t>(v.crashed) << 1) |
                         static_cast<std::uint64_t>(v.runnable));
      h = fnv_mix(h, v.steps);
      h = fnv_mix(h, static_cast<std::uint64_t>(v.pending.kind));
      h = fnv_mix(h, static_cast<std::uint64_t>(v.pending.object + 2));
      h = fnv_mix(h, static_cast<std::uint64_t>(v.pending.payload));
    }
    h = fnv_mix(h, objects_fold_);
    h = fnv_mix(h, instance_->state_probe());
    return h;
  }

  ProcId replay_pick(std::uint64_t runnable) {
    Node& node = trail_[cursor_];
    BPRC_REQUIRE(!node.is_coin && !node.is_stale,
                 "exploration diverged: schedule point where a flip or "
                 "stale read was recorded");
    if (limits_.split_count > 1 && cursor_ == 0) {
      // The root node holds this slice's candidates, a subset of the
      // runnable set.
      BPRC_REQUIRE((node.candidates & ~runnable) == 0,
                   "exploration diverged: runnable set changed under replay");
    } else {
      BPRC_REQUIRE(node.candidates == runnable,
                   "exploration diverged: runnable set changed under replay");
    }
    ++cursor_;
    cur_sleep_ = child_sleep(node, node.chosen);
    record_pick(node.chosen);
    return node.chosen;
  }

  /// Deterministic completion past the branch region: round-robin from
  /// the last scheduled process. With seed-derived coins this makes every
  /// leaf a finished run the full oracle can grade. The parallel grading
  /// path replays exactly this tail (leaf_grader.cpp's LeafAdversary).
  ProcId tail_pick(std::uint64_t runnable) {
    const ProcId last = exec_schedule_.empty() ? -1 : exec_schedule_.back();
    for (int i = 1; i <= nprocs_; ++i) {
      const ProcId p = static_cast<ProcId>((last + i) % nprocs_);
      if ((runnable & bit_of(p)) != 0) {
        record_pick(p);
        return p;
      }
    }
    return -1;  // unreachable: runnable != 0
  }

  void record_pick(ProcId p) {
    exec_schedule_.push_back(p);
    exec_events_.push_back(static_cast<std::uint8_t>(p + 1));
  }

  void record_flip(bool value, bool forced) {
    if (forced) exec_flips_.push_back(value);
    const ProcId p = runtime_->self();
    auto& h = proc_hash_[static_cast<std::size_t>(p)];
    h = fnv_mix(h, value ? 0x431 : 0x430);
    exec_events_.push_back(value ? kEventFlipTrue : kEventFlipFalse);
  }

  /// Every resolved stale read lands in the event stream and the reader's
  /// history hash (the value observed depends on the choice, which the
  /// last-writer fold of on_read cannot see); only forced choices join
  /// the replay prefix.
  void record_stale(ProcId reader, int choice, bool forced) {
    if (forced) exec_stales_.push_back(choice);
    auto& h = proc_hash_[static_cast<std::size_t>(reader)];
    h = fnv_mix(h, 0x520 + static_cast<std::uint64_t>(choice));
    exec_events_.push_back(
        static_cast<std::uint8_t>(kEventStaleBase + choice));
  }

  /// Folds one graded execution into the result — digest, counters,
  /// violation list — in generation order. Every mode funnels through
  /// here, which is what makes jobs levels byte-identical: the serial
  /// path delivers inline, the batched path from the engine's ordered
  /// sink, the isolated path after each fork.
  void deliver(const LeafSpec& spec, LeafOutcome&& out) {
    for (const std::uint8_t b : out.events) {
      stats_.schedule_digest = fnv_mix(stats_.schedule_digest, b);
    }
    stats_.schedule_digest = fnv_mix(stats_.schedule_digest, kDigestRunEnd);
    ++stats_.executions;
    stats_.total_steps += out.steps;
    if (out.pruned) {
      ++stats_.pruned_runs;
    } else if (out.crashed) {
      ++stats_.worker_crashes;
    } else if (out.complete) {
      ++stats_.complete_runs;
    } else {
      ++stats_.truncated_runs;
    }
    if (out.violation.has_value()) {
      ExploreViolation v;
      v.failure = out.violation->failure;
      v.note = std::move(out.violation->note);
      // The full pick sequence (prefix + graded tail) comes back in the
      // event stream; a crashed worker never reported one, so its
      // artifact carries the prefix that provokes the crash.
      v.schedule = out.crashed ? spec.schedule : decode_schedule(out.events);
      v.flips = spec.flips;
      v.stales = spec.stales;
      violations_.push_back(std::move(v));
    }
  }

  void execute_once() {
    if (mode_ == Mode::kIsolate) {
      execute_isolated();
      return;
    }
    const RunResult run = run_core();
    ++enumerated_;
    stats_.max_trail_depth =
        std::max(stats_.max_trail_depth,
                 static_cast<std::uint64_t>(trail_.size()));

    if (mode_ == Mode::kInline) {
      LeafSpec spec;
      spec.flips = exec_flips_;
      spec.stales = exec_stales_;
      LeafOutcome out;
      out.events = std::move(exec_events_);
      out.steps = run.steps;
      if (pruned_) {
        out.pruned = true;
      } else {
        out.complete = run.reason == RunResult::Reason::kAllDone;
        out.violation = instance_->check(*runtime_, run, out.complete);
      }
      instance_.reset();  // destroy shared state before the next reset()
      deliver(spec, std::move(out));
      return;
    }

    instance_.reset();
    LeafSpec spec;
    spec.pruned = pruned_;
    spec.steps = run.steps;
    spec.events = std::move(exec_events_);
    if (!pruned_) {
      spec.schedule = exec_schedule_;
      spec.flips = exec_flips_;
      spec.stales = exec_stales_;
    }
    if (!queue_->push(std::move(spec))) {
      // abort()ed: the sink stopped the sweep; the run loop breaks on
      // stop_requested_ right after this call.
    }
  }

  /// Runs one execution on the simulator: runtime setup, the run itself,
  /// and the end-reason checks. The DFS side effects (trail extension,
  /// cache visits, event recording) happen in the pick()/on_flip()
  /// callbacks this triggers.
  RunResult run_core() {
    auto shim = std::make_unique<ExploreShim>(*this);
    if (runtime_ == nullptr) {
      runtime_ = std::make_unique<SimRuntime>(nprocs_, std::move(shim), seed_);
    } else if (reuse_) {
      runtime_->reset(nprocs_, std::move(shim), seed_);
    } else {
      runtime_.reset();  // old instance died at the end of the last call
      runtime_ = std::make_unique<SimRuntime>(nprocs_, std::move(shim), seed_);
    }
    SimRuntime& rt = *runtime_;

    next_object_ = 0;
    object_last_.clear();
    objects_fold_ = 0;
    proc_hash_.assign(static_cast<std::size_t>(nprocs_),
                      fnv_mix(kFnvOffset, seed_));
    proc_writes_.assign(static_cast<std::size_t>(nprocs_), 0);

    rt.set_trace_sink(this);
    // Before instantiate(): registers cache the semantics at construction
    // (reset() reverts a reused runtime to atomic).
    rt.set_register_semantics(limits_.semantics);
    instance_ = target_.instantiate(rt);
    BPRC_REQUIRE(instance_ != nullptr, "explore target produced no instance");
    rt.set_flip_tape(this);

    cursor_ = 0;
    coins_used_ = 0;
    stales_used_ = 0;
    cur_sleep_ = 0;  // the root has an empty sleep set
    pruned_ = false;
    cut_ = false;
    exec_schedule_.clear();
    exec_flips_.clear();
    exec_stales_.clear();
    exec_events_.clear();

    const RunResult run = rt.run(limits_.max_run_steps);
    rt.set_flip_tape(nullptr);
    rt.set_trace_sink(nullptr);

    if (pruned_ || cut_) {
      BPRC_REQUIRE(run.reason == RunResult::Reason::kNoRunnable,
                   "pruned execution ended for an unexpected reason");
    } else {
      BPRC_REQUIRE(run.reason == RunResult::Reason::kAllDone ||
                       run.reason == RunResult::Reason::kBudget,
                   "exploration run ended for an unexpected reason");
    }
    return run;
  }

  static LeafOutcome passthrough(const LeafSpec& spec) {
    LeafOutcome out;
    out.pruned = true;
    out.events = spec.events;
    out.steps = spec.steps;
    return out;
  }

  /// kIsolate: the whole execution — enumeration run *and* grading — in a
  /// fork()ed child, so a protocol that kills its host process (e.g.
  /// broken-segv, which dies on the first propose() step, inside the
  /// branch region) cannot take the DFS coordinator down. The child hands
  /// back everything the parent needs to evolve its DFS state exactly as
  /// if it had run the execution itself; a dead child quarantines its
  /// whole current branch as one kWorkerCrash finding and the sweep
  /// backtracks past it.
  void execute_isolated() {
    int fds[2];
    BPRC_REQUIRE(::pipe(fds) == 0, "pipe() failed for isolated exploration");
    const pid_t pid = ::fork();
    BPRC_REQUIRE(pid >= 0, "fork() failed for isolated exploration");
    if (pid == 0) {
      ::close(fds[0]);
      child_run_and_report(fds[1]);  // _exits
    }
    ::close(fds[1]);
    IsolatedReport rep;
    const bool reported = recv_report(fds[0], &rep, nprocs_);
    ::close(fds[0]);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
    }
    ++enumerated_;
    const bool clean =
        reported && WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (clean) {
      for (Node& node : rep.new_nodes) trail_.push_back(std::move(node));
      for (const auto& [key, depth] : rep.visits) seen_.visit(key, depth);
      stats_.states_visited += rep.d_states_visited;
      stats_.states_merged += rep.d_states_merged;
      stats_.sleep_blocked += rep.d_sleep_blocked;
      stats_.coin_branches += rep.d_coin_branches;
      stats_.max_trail_depth =
          std::max(stats_.max_trail_depth,
                   static_cast<std::uint64_t>(trail_.size()));
      LeafSpec spec;
      spec.flips = std::move(rep.flips);
      spec.stales = std::move(rep.stales);
      LeafOutcome out;
      out.events = std::move(rep.events);
      out.steps = rep.steps;
      out.pruned = rep.pruned;
      out.complete = rep.complete;
      out.violation = std::move(rep.violation);
      deliver(spec, std::move(out));
      return;
    }

    // The child died before reporting. The parent cannot know how the
    // child extended the trail (computing that would mean executing the
    // killer protocol here), so it quarantines the whole current branch:
    // the replay prefix it *does* know — the trail's chosen picks and
    // coin values, in trail order — becomes the artifact, and backtrack()
    // moves past the poisoned subtree.
    LeafSpec spec;
    LeafOutcome out;
    for (const Node& node : trail_) {
      if (node.is_coin) {
        out.events.push_back(node.coin_value ? kEventFlipTrue
                                             : kEventFlipFalse);
        spec.flips.push_back(node.coin_value);
      } else if (node.is_stale) {
        out.events.push_back(
            static_cast<std::uint8_t>(kEventStaleBase + node.stale_value));
        spec.stales.push_back(node.stale_value);
      } else {
        out.events.push_back(static_cast<std::uint8_t>(node.chosen + 1));
        spec.schedule.push_back(node.chosen);
      }
    }
    out.events.push_back(kEventWorkerCrash);
    out.crashed = true;
    out.crash_signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
    Violation v;
    v.failure = FailureClass::kWorkerCrash;
    v.note = "exploration worker died (";
    if (WIFSIGNALED(status)) {
      v.note += "signal " + std::to_string(WTERMSIG(status));
    } else if (WIFEXITED(status)) {
      v.note += "exit " + std::to_string(WEXITSTATUS(status));
    } else {
      v.note += "unknown";
    }
    v.note += ")";
    out.violation = std::move(v);
    stats_.max_trail_depth =
        std::max(stats_.max_trail_depth,
                 static_cast<std::uint64_t>(trail_.size()));
    deliver(spec, std::move(out));
  }

  /// Child side of execute_isolated: run + grade inline, report the DFS
  /// delta, and exit without running any parent-side teardown.
  [[noreturn]] void child_run_and_report(int fd) {
    const std::size_t base_nodes = trail_.size();
    std::vector<std::pair<std::uint64_t, std::uint8_t>> visits;
    visit_log_ = &visits;
    const ExploreStats before = stats_;
    const RunResult run = run_core();
    IsolatedReport rep;
    rep.pruned = pruned_;
    rep.steps = run.steps;
    rep.events = std::move(exec_events_);
    rep.flips = std::move(exec_flips_);
    rep.stales = std::move(exec_stales_);
    if (!pruned_) {
      rep.complete = run.reason == RunResult::Reason::kAllDone;
      rep.violation = instance_->check(*runtime_, run, rep.complete);
    }
    rep.new_nodes.assign(trail_.begin() + static_cast<std::ptrdiff_t>(base_nodes),
                         trail_.end());
    rep.visits = std::move(visits);
    rep.d_states_visited = stats_.states_visited - before.states_visited;
    rep.d_states_merged = stats_.states_merged - before.states_merged;
    rep.d_sleep_blocked = stats_.sleep_blocked - before.sleep_blocked;
    rep.d_coin_branches = stats_.coin_branches - before.coin_branches;
    send_report(fd, rep, nprocs_);
    _exit(0);
  }

  /// Advances the trail to the next unexplored branch; false = done.
  bool backtrack() {
    while (!trail_.empty()) {
      Node& node = trail_.back();
      if (node.is_coin) {
        if (!node.coin_value) {
          node.coin_value = true;
          ++node.taken;
          return true;
        }
        trail_.pop_back();
        continue;
      }
      if (node.is_stale) {
        if (node.stale_value + 1 < node.stale_options) {
          ++node.stale_value;
          ++node.taken;
          return true;
        }
        trail_.pop_back();
        continue;
      }
      node.sleep |= bit_of(node.chosen);  // explored: siblings may skip it
      const std::uint64_t open = node.candidates & ~node.sleep;
      if (open != 0) {
        node.chosen = static_cast<ProcId>(std::countr_zero(open));
        ++node.taken;
        return true;
      }
      stats_.sleep_pruned += static_cast<std::uint64_t>(
          std::popcount(node.candidates)) - static_cast<std::uint64_t>(node.taken);
      trail_.pop_back();
    }
    return false;
  }

  // --- grading pump (kBatched): TrialExecutor on a helper thread, fed
  // from the bounded queue, delivering to deliver() in generation order.
  void start_pump() {
    const std::size_t window = 4 * static_cast<std::size_t>(limits_.grade_jobs);
    queue_ = std::make_unique<LeafQueue>(window);
    pump_ = std::thread([this] { pump_main(); });
  }

  void pump_main() {
    const engine::TrialExecutor executor(
        engine::ExecutorConfig{limits_.grade_jobs, 0});
    executor.run_ordered<LeafSpec, LeafOutcome>(
        [this]() -> std::optional<LeafSpec> { return queue_->pop(); },
        [this](const LeafSpec& spec, SimReuse& reuse) -> LeafOutcome {
          if (spec.pruned) return passthrough(spec);
          return grade_leaf(target_, limits_, seed_, spec, reuse);
        },
        [this](std::size_t, const LeafSpec& spec, LeafOutcome&& out) {
          deliver(spec, std::move(out));
          if (violations_.size() >= limits_.max_violations) {
            // Stop after a deterministic prefix — same cutoff the serial
            // loop applies. Enumeration-side counters may have run a
            // window ahead; the digest and violation list have not.
            stop_requested_.store(true, std::memory_order_relaxed);
            checkpoint_unsafe_ = true;
            queue_->abort();
            return false;
          }
          return true;
        });
  }

  void drain_pump() {
    if (!pump_.joinable()) return;
    queue_->close();
    pump_.join();
  }

  // --- checkpoint / resume ---

  std::uint64_t config_fingerprint() const {
    std::uint64_t h = kFnvOffset;
    h = fnv_mix(h, frontier_.target_fingerprint);
    h = fnv_mix(h, seed_);
    h = fnv_mix(h, static_cast<std::uint64_t>(nprocs_));
    h = fnv_mix(h, limits_.branch_depth);
    h = fnv_mix(h, limits_.max_coin_flips);
    h = fnv_mix(h, limits_.max_run_steps);
    h = fnv_mix(h, static_cast<std::uint64_t>(limits_.max_violations));
    h = fnv_mix(h, static_cast<std::uint64_t>(limits_.sleep_sets));
    h = fnv_mix(h, static_cast<std::uint64_t>(limits_.state_cache));
    h = fnv_mix(h, static_cast<std::uint64_t>(limits_.compact_cache));
    h = fnv_mix(h, limits_.max_cache_bytes);
    h = fnv_mix(h, static_cast<std::uint64_t>(limits_.isolate_leaves));
    h = fnv_mix(h, limits_.split_index);
    h = fnv_mix(h, limits_.split_count);
    if (limits_.semantics != RegisterSemantics::kAtomic) {
      // Folded only when weakened so atomic-mode fingerprints (and every
      // `.bprc-frontier` file already on disk) keep their values.
      h = fnv_mix(h, static_cast<std::uint64_t>(limits_.semantics));
      h = fnv_mix(h, limits_.max_stale_reads);
    }
    return h;
  }

  void restore(const Frontier& f) {
    stats_ = f.stats;
    stats_.complete = true;  // recomputed by this continuation
    base_seconds_ = f.stats.seconds;
    stats_.seconds = 0.0;
    base_evictions_ = f.stats.cache_evictions;
    base_peak_bytes_ = f.stats.peak_cache_bytes;
    violations_ = f.violations;
    enumerated_ = f.stats.executions;
    trail_.clear();
    trail_.reserve(f.trail.size());
    for (const FrontierNode& fn : f.trail) {
      Node node;
      node.is_coin = fn.is_coin;
      node.coin_value = fn.coin_value;
      node.is_stale = fn.is_stale;
      node.stale_value = fn.stale_value;
      node.stale_options = fn.stale_options;
      node.chosen = fn.chosen;
      node.taken = fn.taken;
      node.candidates = fn.candidates;
      node.sleep = fn.sleep;
      node.ops = fn.ops;
      trail_.push_back(std::move(node));
    }
    seen_.restore(f.cache);
  }

  void finalize_stats() {
    stats_.seconds =
        base_seconds_ +
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
    stats_.cache_entries = seen_.entries();
    stats_.peak_cache_bytes = std::max(base_peak_bytes_, seen_.peak_bytes());
    stats_.cache_evictions = base_evictions_ + seen_.evictions();
  }

  void save_checkpoint(bool complete) {
    Frontier f;
    f.fingerprint = config_fp_;
    f.complete = complete;
    finalize_stats();
    f.stats = stats_;
    f.stats.complete = complete;
    f.trail.reserve(trail_.size());
    for (const Node& node : trail_) {
      FrontierNode fn;
      fn.is_coin = node.is_coin;
      fn.coin_value = node.coin_value;
      fn.is_stale = node.is_stale;
      fn.stale_value = node.stale_value;
      fn.stale_options = node.stale_options;
      fn.chosen = node.chosen;
      fn.taken = node.taken;
      fn.candidates = node.candidates;
      fn.sleep = node.sleep;
      fn.ops = node.ops;
      f.trail.push_back(std::move(fn));
    }
    f.violations = violations_;
    seen_.snapshot(&f.cache);
    BPRC_REQUIRE(save_frontier(frontier_.checkpoint_path, f),
                 "cannot write frontier checkpoint");
  }

  ExploreTarget& target_;
  const ExploreLimits limits_;
  const std::uint64_t seed_;
  const bool reuse_;
  const int nprocs_;
  const FrontierOptions frontier_;
  Mode mode_ = Mode::kInline;
  std::uint64_t config_fp_ = 0;

  std::unique_ptr<SimRuntime> runtime_;
  std::unique_ptr<ExploreTarget::Instance> instance_;

  // DFS state (persists across executions).
  std::vector<Node> trail_;
  SeenCache seen_;  ///< fingerprint → shallowest expansion depth

  // Per-execution state.
  std::size_t cursor_ = 0;          ///< next trail node to replay
  std::uint64_t coins_used_ = 0;    ///< coin nodes passed on this path
  std::uint64_t stales_used_ = 0;   ///< stale nodes passed on this path
  std::uint64_t cur_sleep_ = 0;     ///< sleep set inherited by the frontier
  bool pruned_ = false;
  bool cut_ = false;                ///< leaf shipped to the grading pipeline
  std::vector<ProcId> exec_schedule_;
  std::vector<bool> exec_flips_;
  std::vector<int> exec_stales_;    ///< forced stale choices (replay prefix)
  std::vector<std::uint8_t> exec_events_;  ///< leaf_grader.hpp encoding
  /// When set (isolated child), every seen-cache visit is logged so the
  /// parent can replay it on its own cache.
  std::vector<std::pair<std::uint64_t, std::uint8_t>>* visit_log_ = nullptr;

  // Fingerprint state (reset per execution).
  int next_object_ = 0;
  std::vector<std::uint64_t> object_last_;  ///< last-writer identity per object
  std::uint64_t objects_fold_ = 0;          ///< XOR of entry hashes
  std::vector<std::uint64_t> proc_hash_;    ///< per-process history hash
  std::vector<std::uint64_t> proc_writes_;

  // Grading pump (kBatched).
  std::unique_ptr<LeafQueue> queue_;
  std::thread pump_;
  std::atomic<bool> stop_requested_{false};
  bool checkpoint_unsafe_ = false;  ///< trail ran ahead of deliveries

  // Enumeration-side progress (== stats_.executions once drained).
  std::uint64_t enumerated_ = 0;

  // Resume bases (stats_ fields restart from the restored snapshot).
  double base_seconds_ = 0.0;
  std::uint64_t base_evictions_ = 0;
  std::uint64_t base_peak_bytes_ = 0;
  std::chrono::steady_clock::time_point t0_;

  ExploreStats stats_;
  std::vector<ExploreViolation> violations_;
};

ProcId ExploreShim::pick(SimCtl& ctl) { return explorer_.pick(ctl); }

int ExploreShim::resolve_read(SimCtl&, const StaleRead& sr) {
  return explorer_.on_stale(sr);
}

}  // namespace

ExploreResult explore(ExploreTarget& target, const ExploreLimits& limits,
                      std::uint64_t seed, bool reuse_runtime,
                      const FrontierOptions* frontier) {
  Explorer explorer(target, limits, seed, reuse_runtime, frontier);
  return explorer.run();
}

}  // namespace bprc::explore
