#include "explore/explorer.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"
#include "util/assert.hpp"

namespace bprc::explore {

namespace {

constexpr std::uint64_t bit_of(ProcId p) {
  return std::uint64_t{1} << static_cast<unsigned>(p);
}

/// Independence relation for the sleep sets, read off pending OpDescs.
/// Conservative (sound) in both unknowns: an op with no object id (-1, or
/// the strong-coin's -2) conflicts with everything except pure local
/// computation, and any two ops on the same object conflict unless both
/// are reads. Kind::kNone means the process is before its first shared
/// operation — pure local computation, independent of everything.
bool independent(const OpDesc& a, const OpDesc& b) {
  if (a.kind == OpDesc::Kind::kNone || b.kind == OpDesc::Kind::kNone) {
    return true;
  }
  if (a.object < 0 || b.object < 0) return false;
  if (a.object != b.object) return true;
  return a.kind == OpDesc::Kind::kRead && b.kind == OpDesc::Kind::kRead;
}

class Explorer;

/// The backtracking adversary handed to the runtime: SimRuntime insists on
/// owning its adversary, so each execution gets a fresh forwarding shim.
class ExploreShim final : public Adversary {
 public:
  explicit ExploreShim(Explorer& explorer) : explorer_(explorer) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "explore"; }

 private:
  Explorer& explorer_;
};

/// One choice point on the DFS trail. Schedule nodes branch over runnable
/// processes; coin nodes branch a local flip over {false, true}.
struct Node {
  bool is_coin = false;
  bool coin_value = false;  ///< current branch of a coin node
  ProcId chosen = -1;       ///< current branch of a schedule node
  int taken = 0;            ///< branches explored so far (stats)
  std::uint64_t candidates = 0;  ///< runnable set at this point
  /// Working sleep set: entry sleep plus already-explored siblings. A
  /// candidate in here commutes with some explored branch — its subtree
  /// is a permutation of one already visited.
  std::uint64_t sleep = 0;
  std::vector<OpDesc> ops;  ///< pending op per process (dependence check)
};

class Explorer final : public FlipTape, public TraceSink {
 public:
  Explorer(ExploreTarget& target, const ExploreLimits& limits,
           std::uint64_t seed, bool reuse_runtime)
      : target_(target),
        limits_(limits),
        seed_(seed),
        reuse_(reuse_runtime),
        nprocs_(target.nprocs()) {
    BPRC_REQUIRE(nprocs_ > 0, "explore target needs at least one process");
    BPRC_REQUIRE(nprocs_ <= kRunnableMaskBits,
                 "explorer masks cap the process count");
  }

  ExploreResult run() {
    const auto t0 = std::chrono::steady_clock::now();
    while (true) {
      execute_once();
      if (violations_.size() >= limits_.max_violations ||
          (limits_.max_executions != 0 &&
           stats_.executions >= limits_.max_executions) ||
          (limits_.max_states != 0 &&
           stats_.states_visited >= limits_.max_states)) {
        stats_.complete = false;
        break;
      }
      if (!backtrack()) break;  // bounded tree exhausted
    }
    stats_.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return ExploreResult{stats_, std::move(violations_)};
  }

  // --- scheduling callback (via ExploreShim) ---
  ProcId pick(SimCtl& ctl) {
    const std::uint64_t runnable = runnable_set(ctl);
    if (runnable == 0) return -1;  // defensive; run loop checks first

    if (cursor_ < trail_.size()) return replay_pick(runnable);

    const std::uint64_t depth = exec_schedule_.size();
    if (depth >= limits_.branch_depth) return tail_pick(runnable);

    // Frontier. Seen-state check first: a state already expanded at this
    // depth or shallower has had its whole (bounded) subtree explored.
    if (limits_.state_cache) {
      std::uint64_t key = fingerprint(ctl);
      key = fnv_mix(key, cur_sleep_);
      key = fnv_mix(key, coins_used_);
      const auto [it, inserted] = seen_.try_emplace(key, depth);
      if (!inserted) {
        if (it->second <= depth) {
          ++stats_.states_merged;
          pruned_ = true;
          return -1;
        }
        it->second = depth;  // shallower revisit: deeper subtree, redo
      }
    }

    Node node;
    node.candidates = runnable;
    node.sleep = limits_.sleep_sets ? (cur_sleep_ & runnable) : 0;
    node.ops.resize(static_cast<std::size_t>(nprocs_));
    for (ProcId p = 0; p < nprocs_; ++p) {
      node.ops[static_cast<std::size_t>(p)] = ctl.view(p).pending;
    }
    const std::uint64_t open = node.candidates & ~node.sleep;
    if (open == 0) {
      // Every enabled move commutes with an explored sibling of some
      // ancestor: this whole state is a permutation of a visited one.
      ++stats_.sleep_blocked;
      pruned_ = true;
      return -1;
    }
    node.chosen = static_cast<ProcId>(std::countr_zero(open));
    node.taken = 1;
    ++stats_.states_visited;
    cur_sleep_ = child_sleep(node, node.chosen);
    trail_.push_back(std::move(node));
    ++cursor_;
    record_pick(trail_.back().chosen);
    return trail_.back().chosen;
  }

  // --- FlipTape ---
  bool on_flip(bool drawn) override {
    if (cursor_ < trail_.size()) {
      Node& node = trail_[cursor_];
      if (node.is_coin) {
        ++cursor_;
        ++coins_used_;
        record_flip(node.coin_value, /*forced=*/true);
        return node.coin_value;
      }
      // The next recorded choice is a scheduling point, so when this
      // prefix was first executed the present flip drew from the seeded
      // generator (no coin node was created). Both branching gates are
      // monotone along an execution, so that must still be the case —
      // anything else is a replay divergence.
      BPRC_REQUIRE(exec_schedule_.size() >= limits_.branch_depth ||
                       coins_used_ >= limits_.max_coin_flips,
                   "exploration diverged: unforced flip inside the branch "
                   "region during replay");
      record_flip(drawn, /*forced=*/false);
      return drawn;
    }
    // Branch a fresh coin only inside the branch region and budget; both
    // conditions are monotone along an execution, so the forced flips
    // always form a prefix of the run's flip sequence — exactly what
    // ScriptedFlipTape re-forces on replay.
    if (exec_schedule_.size() < limits_.branch_depth &&
        coins_used_ < limits_.max_coin_flips) {
      Node node;
      node.is_coin = true;
      node.coin_value = false;
      node.taken = 1;
      trail_.push_back(std::move(node));
      ++cursor_;
      ++coins_used_;
      ++stats_.coin_branches;
      record_flip(false, /*forced=*/true);
      return false;
    }
    record_flip(drawn, /*forced=*/false);
    return drawn;
  }

  // --- TraceSink (state fingerprinting) ---
  int on_object_created() override {
    const int id = next_object_++;
    if (static_cast<std::size_t>(id) >= object_last_.size()) {
      object_last_.resize(static_cast<std::size_t>(id) + 1, 0);
    }
    object_last_[static_cast<std::size_t>(id)] = 0;
    objects_fold_ ^= entry_hash(id, 0);
    return id;
  }

  void on_read(ProcId p, int object) override {
    // Folding the *last-writer identity* of the object into the reader's
    // history hash grounds the value read: written values are
    // deterministic functions of the writer's local history, so equal
    // histories + equal last-writer identities imply equal contents —
    // no hashing of arbitrary value types needed.
    auto& h = proc_hash_[static_cast<std::size_t>(p)];
    h = fnv_mix(h, 0x52);
    h = fnv_mix(h, static_cast<std::uint64_t>(object));
    h = fnv_mix(h, object_last_[static_cast<std::size_t>(object)]);
  }

  void on_write(ProcId p, int object) override {
    auto& h = proc_hash_[static_cast<std::size_t>(p)];
    h = fnv_mix(h, 0x57);
    h = fnv_mix(h, static_cast<std::uint64_t>(object));
    const std::uint64_t writes = ++proc_writes_[static_cast<std::size_t>(p)];
    update_last(object,
                (static_cast<std::uint64_t>(p) << 40) ^ writes);
  }

  void on_event(ProcId p, int object, std::uint64_t digest,
                bool mutates) override {
    auto& h = proc_hash_[static_cast<std::size_t>(p)];
    h = fnv_mix(h, 0x45);
    h = fnv_mix(h, static_cast<std::uint64_t>(object));
    h = fnv_mix(h, digest);
    if (mutates) update_last(object, fnv_mix(kFnvOffset, digest));
  }

 private:
  enum : std::uint64_t { kDigestFlipFalse = 0xF0, kDigestFlipTrue = 0xF1,
                         kDigestRunEnd = 0xE0D };

  std::uint64_t runnable_set(const SimCtl& ctl) const {
    if (const std::uint64_t* mask = ctl.runnable_mask()) return *mask;
    std::uint64_t out = 0;
    for (ProcId p = 0; p < nprocs_; ++p) {
      if (ctl.view(p).runnable) out |= bit_of(p);
    }
    return out;
  }

  std::uint64_t entry_hash(int object, std::uint64_t last) const {
    return fnv_mix(fnv_mix(kFnvOffset, static_cast<std::uint64_t>(object) + 1),
                   last);
  }

  void update_last(int object, std::uint64_t last) {
    auto& slot = object_last_[static_cast<std::size_t>(object)];
    objects_fold_ ^= entry_hash(object, slot);
    slot = last;
    objects_fold_ ^= entry_hash(object, slot);
  }

  /// Sleep set the child inherits after taking `p` at `node`: the moves
  /// still asleep are those that commute with p's pending op (reordering
  /// them past p reaches a state some other branch covers).
  std::uint64_t child_sleep(const Node& node, ProcId p) const {
    if (!limits_.sleep_sets) return 0;
    std::uint64_t out = 0;
    std::uint64_t rest = node.sleep;
    const OpDesc& op = node.ops[static_cast<std::size_t>(p)];
    while (rest != 0) {
      const int q = std::countr_zero(rest);
      rest &= rest - 1;
      if (independent(node.ops[static_cast<std::size_t>(q)], op)) {
        out |= bit_of(q);
      }
    }
    return out;
  }

  std::uint64_t fingerprint(const SimCtl& ctl) const {
    std::uint64_t h = kFnvOffset;
    for (ProcId p = 0; p < nprocs_; ++p) {
      const SimCtl::ProcView& v = ctl.view(p);
      h = fnv_mix(h, proc_hash_[static_cast<std::size_t>(p)]);
      h = fnv_mix(h, (static_cast<std::uint64_t>(v.finished) << 2) |
                         (static_cast<std::uint64_t>(v.crashed) << 1) |
                         static_cast<std::uint64_t>(v.runnable));
      h = fnv_mix(h, v.steps);
      h = fnv_mix(h, static_cast<std::uint64_t>(v.pending.kind));
      h = fnv_mix(h, static_cast<std::uint64_t>(v.pending.object + 2));
      h = fnv_mix(h, static_cast<std::uint64_t>(v.pending.payload));
    }
    h = fnv_mix(h, objects_fold_);
    h = fnv_mix(h, instance_->state_probe());
    return h;
  }

  ProcId replay_pick(std::uint64_t runnable) {
    Node& node = trail_[cursor_];
    BPRC_REQUIRE(!node.is_coin,
                 "exploration diverged: schedule point where a flip was "
                 "recorded");
    BPRC_REQUIRE(node.candidates == runnable,
                 "exploration diverged: runnable set changed under replay");
    ++cursor_;
    cur_sleep_ = child_sleep(node, node.chosen);
    record_pick(node.chosen);
    return node.chosen;
  }

  /// Deterministic completion past the branch region: round-robin from
  /// the last scheduled process. With seed-derived coins this makes every
  /// leaf a finished run the full oracle can grade.
  ProcId tail_pick(std::uint64_t runnable) {
    const ProcId last = exec_schedule_.empty() ? -1 : exec_schedule_.back();
    for (int i = 1; i <= nprocs_; ++i) {
      const ProcId p = static_cast<ProcId>((last + i) % nprocs_);
      if ((runnable & bit_of(p)) != 0) {
        record_pick(p);
        return p;
      }
    }
    return -1;  // unreachable: runnable != 0
  }

  void record_pick(ProcId p) {
    exec_schedule_.push_back(p);
    stats_.schedule_digest =
        fnv_mix(stats_.schedule_digest, static_cast<std::uint64_t>(p) + 1);
  }

  void record_flip(bool value, bool forced) {
    if (forced) exec_flips_.push_back(value);
    const ProcId p = runtime_->self();
    auto& h = proc_hash_[static_cast<std::size_t>(p)];
    h = fnv_mix(h, value ? 0x431 : 0x430);
    stats_.schedule_digest = fnv_mix(stats_.schedule_digest,
                                     value ? kDigestFlipTrue : kDigestFlipFalse);
  }

  void execute_once() {
    auto shim = std::make_unique<ExploreShim>(*this);
    if (runtime_ == nullptr) {
      runtime_ = std::make_unique<SimRuntime>(nprocs_, std::move(shim), seed_);
    } else if (reuse_) {
      runtime_->reset(nprocs_, std::move(shim), seed_);
    } else {
      runtime_.reset();  // old instance died at the end of the last call
      runtime_ = std::make_unique<SimRuntime>(nprocs_, std::move(shim), seed_);
    }
    SimRuntime& rt = *runtime_;

    next_object_ = 0;
    object_last_.clear();
    objects_fold_ = 0;
    proc_hash_.assign(static_cast<std::size_t>(nprocs_),
                      fnv_mix(kFnvOffset, seed_));
    proc_writes_.assign(static_cast<std::size_t>(nprocs_), 0);

    rt.set_trace_sink(this);
    instance_ = target_.instantiate(rt);
    BPRC_REQUIRE(instance_ != nullptr, "explore target produced no instance");
    rt.set_flip_tape(this);

    cursor_ = 0;
    coins_used_ = 0;
    cur_sleep_ = 0;  // the root has an empty sleep set
    pruned_ = false;
    exec_schedule_.clear();
    exec_flips_.clear();

    const RunResult run = rt.run(limits_.max_run_steps);
    rt.set_flip_tape(nullptr);
    rt.set_trace_sink(nullptr);

    ++stats_.executions;
    stats_.total_steps += run.steps;
    stats_.max_trail_depth =
        std::max(stats_.max_trail_depth,
                 static_cast<std::uint64_t>(trail_.size()));
    stats_.schedule_digest = fnv_mix(stats_.schedule_digest, kDigestRunEnd);

    if (pruned_) {
      ++stats_.pruned_runs;
      BPRC_REQUIRE(run.reason == RunResult::Reason::kNoRunnable,
                   "pruned execution ended for an unexpected reason");
    } else {
      const bool complete = run.reason == RunResult::Reason::kAllDone;
      if (complete) {
        ++stats_.complete_runs;
      } else {
        BPRC_REQUIRE(run.reason == RunResult::Reason::kBudget,
                     "exploration run ended for an unexpected reason");
        ++stats_.truncated_runs;
      }
      if (auto v = instance_->check(rt, run, complete)) {
        ExploreViolation out;
        out.failure = v->failure;
        out.note = std::move(v->note);
        out.schedule = exec_schedule_;
        out.flips = exec_flips_;
        violations_.push_back(std::move(out));
      }
    }
    instance_.reset();  // destroy shared state before the next reset()
  }

  /// Advances the trail to the next unexplored branch; false = done.
  bool backtrack() {
    while (!trail_.empty()) {
      Node& node = trail_.back();
      if (node.is_coin) {
        if (!node.coin_value) {
          node.coin_value = true;
          ++node.taken;
          return true;
        }
        trail_.pop_back();
        continue;
      }
      node.sleep |= bit_of(node.chosen);  // explored: siblings may skip it
      const std::uint64_t open = node.candidates & ~node.sleep;
      if (open != 0) {
        node.chosen = static_cast<ProcId>(std::countr_zero(open));
        ++node.taken;
        return true;
      }
      stats_.sleep_pruned += static_cast<std::uint64_t>(
          std::popcount(node.candidates)) - static_cast<std::uint64_t>(node.taken);
      trail_.pop_back();
    }
    return false;
  }

  ExploreTarget& target_;
  const ExploreLimits limits_;
  const std::uint64_t seed_;
  const bool reuse_;
  const int nprocs_;

  std::unique_ptr<SimRuntime> runtime_;
  std::unique_ptr<ExploreTarget::Instance> instance_;

  // DFS state (persists across executions).
  std::vector<Node> trail_;
  std::unordered_map<std::uint64_t, std::uint64_t> seen_;  ///< key → min depth

  // Per-execution state.
  std::size_t cursor_ = 0;          ///< next trail node to replay
  std::uint64_t coins_used_ = 0;    ///< coin nodes passed on this path
  std::uint64_t cur_sleep_ = 0;     ///< sleep set inherited by the frontier
  bool pruned_ = false;
  std::vector<ProcId> exec_schedule_;
  std::vector<bool> exec_flips_;

  // Fingerprint state (reset per execution).
  int next_object_ = 0;
  std::vector<std::uint64_t> object_last_;  ///< last-writer identity per object
  std::uint64_t objects_fold_ = 0;          ///< XOR of entry hashes
  std::vector<std::uint64_t> proc_hash_;    ///< per-process history hash
  std::vector<std::uint64_t> proc_writes_;

  ExploreStats stats_;
  std::vector<ExploreViolation> violations_;
};

ProcId ExploreShim::pick(SimCtl& ctl) { return explorer_.pick(ctl); }

}  // namespace

ExploreResult explore(ExploreTarget& target, const ExploreLimits& limits,
                      std::uint64_t seed, bool reuse_runtime) {
  Explorer explorer(target, limits, seed, reuse_runtime);
  return explorer.run();
}

}  // namespace bprc::explore
