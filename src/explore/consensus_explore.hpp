// Consensus front end for the exploration driver: wraps any protocol from
// the fault registry (src/fault/protocols.hpp) as an ExploreTarget, grades
// every leaf with the standard oracle (evaluate_consensus — the same
// agreement / validity / bounded-memory / termination checks the torture
// harness applies), and packages violating executions as `.bprc-repro`
// artifacts that the PR-1 replayer and shrinker consume unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "explore/explorer.hpp"
#include "fault/repro.hpp"
#include "util/space_budget.hpp"

namespace bprc::explore {

struct ConsensusExploreConfig {
  std::string protocol;     ///< name in the fault registry
  std::vector<int> inputs;  ///< size = n
  std::uint64_t seed = 1;   ///< process local coins beyond the flip budget
  /// Space budget the protocol instance is built at. Non-default budgets
  /// fold into the target fingerprint, so a `.bprc-frontier` checkpoint
  /// refuses to resume under a different budget.
  SpaceBudget space;
  ExploreLimits limits;
  bool reuse_runtime = true;
};

struct ConsensusExploreReport {
  ConsensusExploreConfig config;
  ExploreStats stats;
  std::vector<ExploreViolation> violations;
  bool ok() const { return violations.empty(); }
};

/// Target identity folded into frontier fingerprints: protocol name plus
/// the input vector. Together with the limits/seed fold the explorer
/// adds, this pins a `.bprc-frontier` file to one exploration cell.
std::uint64_t consensus_target_fingerprint(const ConsensusExploreConfig& config);

/// Explores every bounded-scope schedule of one (protocol, inputs, seed)
/// cell. `frontier` (optional) enables checkpoint/resume; its
/// target_fingerprint is filled in from the config — callers only supply
/// paths and cadence.
ConsensusExploreReport explore_consensus(const ConsensusExploreConfig& config,
                                         const FrontierOptions* frontier = nullptr);

/// Sweeps all 2^n input vectors of one protocol at n processes (exhaustive
/// in inputs as well as schedules), one report per input cell, each seeded
/// with `seed`. Callers aggregate stats as needed; a violation's cell
/// (and thus its inputs, for the repro) is the report it sits in.
std::vector<ConsensusExploreReport> explore_consensus_all_inputs(
    const std::string& protocol, int n, std::uint64_t seed,
    const ExploreLimits& limits, bool reuse_runtime = true,
    const SpaceBudget& space = SpaceBudget{});

/// Builds a replayable artifact from an explorer counterexample. The
/// schedule replays through ScriptedAdversary, the forced flips through
/// the repro `flips` line; `bprc_torture --replay` confirms the same
/// FailureClass.
fault::Repro make_explore_repro(const ConsensusExploreConfig& config,
                                const ExploreViolation& violation);

}  // namespace bprc::explore
