#include "explore/leaf_grader.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "consensus/driver.hpp"
#include "runtime/adversary.hpp"
#include "runtime/sim_runtime.hpp"
#include "util/assert.hpp"

namespace bprc::explore {

namespace {

/// Scripted prefix, then the serial explorer's deterministic tail:
/// round-robin from the last scheduled process. Every pick lands in the
/// event stream.
class LeafAdversary final : public Adversary {
 public:
  LeafAdversary(const std::vector<ProcId>* schedule,
                const std::vector<int>* stales, int nprocs,
                std::vector<std::uint8_t>* events)
      : schedule_(schedule), stales_(stales), nprocs_(nprocs),
        events_(events) {}

  ProcId pick(SimCtl& ctl) override {
    const std::uint64_t runnable = runnable_set(ctl);
    if (runnable == 0) return -1;
    ProcId p = -1;
    if (pos_ < schedule_->size()) {
      p = (*schedule_)[pos_++];
      BPRC_REQUIRE(p >= 0 && p < nprocs_ &&
                       (runnable >> static_cast<unsigned>(p)) & 1,
                   "leaf replay diverged: scripted pick not runnable");
    } else {
      for (int i = 1; i <= nprocs_; ++i) {
        const ProcId q = static_cast<ProcId>((last_ + i) % nprocs_);
        if ((runnable >> static_cast<unsigned>(q)) & 1) {
          p = q;
          break;
        }
      }
    }
    last_ = p;
    events_->push_back(static_cast<std::uint8_t>(p + 1));
    return p;
  }

  std::string name() const override { return "explore-leaf"; }

  /// Consumes the coordinator's forced stale-read prefix, then serves the
  /// atomic answer — the serial explorer's deterministic tail. Every
  /// resolution lands in the event stream, mirroring record_stale.
  int resolve_read(SimCtl&, const StaleRead& sr) override {
    int choice = 0;
    if (spos_ < stales_->size()) {
      choice = (*stales_)[spos_++];
      BPRC_REQUIRE(choice >= 0 && choice < sr.options,
                   "leaf replay diverged: forced stale choice out of range");
    }
    events_->push_back(static_cast<std::uint8_t>(kEventStaleBase + choice));
    return choice;
  }

 private:
  std::uint64_t runnable_set(const SimCtl& ctl) const {
    if (const std::uint64_t* mask = ctl.runnable_mask()) return *mask;
    std::uint64_t out = 0;
    for (ProcId p = 0; p < nprocs_; ++p) {
      if (ctl.view(p).runnable) out |= std::uint64_t{1} << static_cast<unsigned>(p);
    }
    return out;
  }

  const std::vector<ProcId>* schedule_;
  const std::vector<int>* stales_;
  const int nprocs_;
  std::vector<std::uint8_t>* events_;
  std::size_t pos_ = 0;
  std::size_t spos_ = 0;
  ProcId last_ = -1;
};

/// Forces the recorded flip prefix (the coordinator's coin branching),
/// then passes the seed-derived draws through — ScriptedFlipTape
/// semantics plus event recording.
class RecordingFlipTape final : public FlipTape {
 public:
  RecordingFlipTape(const std::vector<bool>* forced,
                    std::vector<std::uint8_t>* events)
      : forced_(forced), events_(events) {}

  bool on_flip(bool drawn) override {
    const bool value = pos_ < forced_->size() ? (*forced_)[pos_++] : drawn;
    events_->push_back(value ? kEventFlipTrue : kEventFlipFalse);
    return value;
  }

 private:
  const std::vector<bool>* forced_;
  std::vector<std::uint8_t>* events_;
  std::size_t pos_ = 0;
};

// --- pipe wire format for the isolated path (child → parent) ---

void write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t w = ::write(fd, p, len);
    if (w <= 0) _exit(3);  // parent treats a short report as a crash
    p += w;
    len -= static_cast<std::size_t>(w);
  }
}

bool read_all(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t r = ::read(fd, p, len);
    if (r <= 0) return false;
    p += r;
    len -= static_cast<std::size_t>(r);
  }
  return true;
}

void send_outcome(int fd, const LeafOutcome& out) {
  write_all(fd, &out.steps, sizeof out.steps);
  const std::uint8_t flags =
      static_cast<std::uint8_t>(out.complete ? 1 : 0) |
      static_cast<std::uint8_t>(out.violation.has_value() ? 2 : 0);
  write_all(fd, &flags, sizeof flags);
  const std::uint8_t failure = static_cast<std::uint8_t>(
      out.violation ? out.violation->failure : FailureClass::kNone);
  write_all(fd, &failure, sizeof failure);
  const std::uint32_t note_len = static_cast<std::uint32_t>(
      out.violation ? out.violation->note.size() : 0);
  write_all(fd, &note_len, sizeof note_len);
  if (note_len > 0) write_all(fd, out.violation->note.data(), note_len);
  const std::uint64_t events_len = out.events.size();
  write_all(fd, &events_len, sizeof events_len);
  if (events_len > 0) write_all(fd, out.events.data(), out.events.size());
}

bool recv_outcome(int fd, LeafOutcome* out) {
  std::uint8_t flags = 0;
  std::uint8_t failure = 0;
  std::uint32_t note_len = 0;
  std::uint64_t events_len = 0;
  if (!read_all(fd, &out->steps, sizeof out->steps)) return false;
  if (!read_all(fd, &flags, sizeof flags)) return false;
  if (!read_all(fd, &failure, sizeof failure)) return false;
  if (!read_all(fd, &note_len, sizeof note_len)) return false;
  if (note_len > (1u << 20)) return false;  // corrupt length = crash
  std::string note(note_len, '\0');
  if (note_len > 0 && !read_all(fd, note.data(), note_len)) return false;
  if (!read_all(fd, &events_len, sizeof events_len)) return false;
  if (events_len > (1ull << 30)) return false;
  out->events.resize(static_cast<std::size_t>(events_len));
  if (events_len > 0 && !read_all(fd, out->events.data(), out->events.size())) {
    return false;
  }
  out->complete = (flags & 1) != 0;
  if ((flags & 2) != 0) {
    Violation v;
    v.failure = static_cast<FailureClass>(failure);
    v.note = std::move(note);
    out->violation = std::move(v);
  }
  return true;
}

}  // namespace

std::vector<ProcId> decode_schedule(const std::vector<std::uint8_t>& events) {
  std::vector<ProcId> out;
  out.reserve(events.size());
  for (const std::uint8_t b : events) {
    if (b >= 1 && b <= kRunnableMaskBits) {
      out.push_back(static_cast<ProcId>(b - 1));
    }
  }
  return out;
}

LeafOutcome grade_leaf(ExploreTarget& target, const ExploreLimits& limits,
                       std::uint64_t seed, const LeafSpec& spec,
                       SimReuse& reuse) {
  BPRC_REQUIRE(!spec.pruned, "pruned leaves carry their outcome already");
  LeafOutcome out;
  SimRuntime& rt = reuse.acquire(
      target.nprocs(),
      std::make_unique<LeafAdversary>(&spec.schedule, &spec.stales,
                                      target.nprocs(), &out.events),
      seed);
  RecordingFlipTape tape(&spec.flips, &out.events);
  // Before instantiate(): registers cache the semantics at construction.
  rt.set_register_semantics(limits.semantics);
  std::unique_ptr<ExploreTarget::Instance> instance = target.instantiate(rt);
  BPRC_REQUIRE(instance != nullptr, "explore target produced no instance");
  rt.set_flip_tape(&tape);
  const RunResult run = rt.run(limits.max_run_steps);
  rt.set_flip_tape(nullptr);
  out.steps = run.steps;
  out.complete = run.reason == RunResult::Reason::kAllDone;
  BPRC_REQUIRE(out.complete || run.reason == RunResult::Reason::kBudget,
               "leaf grading run ended for an unexpected reason");
  out.violation = instance->check(rt, run, out.complete);
  return out;  // instance destroyed before the next acquire() re-arms rt
}

LeafOutcome grade_leaf_isolated(ExploreTarget& target,
                                const ExploreLimits& limits,
                                std::uint64_t seed, const LeafSpec& spec) {
  int fds[2];
  BPRC_REQUIRE(::pipe(fds) == 0, "pipe() failed for isolated leaf grading");
  const pid_t pid = ::fork();
  BPRC_REQUIRE(pid >= 0, "fork() failed for isolated leaf grading");
  if (pid == 0) {
    ::close(fds[0]);
    SimReuse reuse;  // fresh child-side simulator; parent state untouched
    const LeafOutcome out = grade_leaf(target, limits, seed, spec, reuse);
    send_outcome(fds[1], out);
    _exit(0);
  }
  ::close(fds[1]);
  LeafOutcome out;
  const bool reported = recv_outcome(fds[0], &out);
  ::close(fds[0]);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
  }
  const bool clean = reported && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (clean) return out;

  // The worker died mid-run (or reported garbage): quarantine the leaf.
  LeafOutcome crash;
  crash.crashed = true;
  crash.crash_signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
  crash.events = spec.events;
  crash.events.push_back(kEventWorkerCrash);
  crash.steps = spec.steps;
  Violation v;
  v.failure = FailureClass::kWorkerCrash;
  v.note = "leaf grading worker died (";
  if (WIFSIGNALED(status)) {
    v.note += "signal " + std::to_string(WTERMSIG(status));
  } else if (WIFEXITED(status)) {
    v.note += "exit " + std::to_string(WEXITSTATUS(status));
  } else {
    v.note += "unknown";
  }
  v.note += ")";
  crash.violation = std::move(v);
  return crash;
}

}  // namespace bprc::explore
