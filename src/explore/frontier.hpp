// Checkpointed DFS frontiers (`.bprc-frontier` files).
//
// A frontier freezes everything the exploration driver needs to continue
// a bounded sweep in a later invocation: the backtracking trail (the
// branch currently being unwound, including each node's candidate /
// sleep masks and pending ops), the cumulative stats (schedule_digest
// included — resume extends the same fold), the violations collected so
// far, and the full seen-state cache (required: a resumed run must make
// the identical merge decisions, or its digest diverges from the
// uninterrupted run's).
//
// Line-oriented text, in the `.bprc-repro` / `.bprc-shard` tradition —
// versioned, diffable, `end`-guarded against truncation, unknown keys
// skipped for forward compatibility:
//
//   bprc-frontier v1
//   fingerprint 1f2e3d4c5b6a7988    # fold of target identity + limits +
//                                   # seed; resume refuses a mismatch
//   complete 0
//   stat executions 1234
//   stat digest 60f38cfeecad3890
//   ...
//   trail 2
//   node s 1 2 f f 3 2 0 1 1 4 0 0 -1 0   # schedule point: chosen taken
//                                         # candidates sleep nops (kind
//                                         # object payload)×nops
//   node c 1 2                            # coin point: value taken
//   node t 1 3 2                          # stale-read point: value
//                                         # options taken (weakened
//                                         # register semantics only)
//   violations 1
//   violation consistency
//   vschedule 0 1 0 1
//   vflips 1 0
//   vstales 1 0                           # forced stale-read choices
//                                         # (omitted when empty)
//   vnote decisions=0,1
//   cache 2
//   seen 9e3779b97f4a7c15 0
//   seen 1badb002deadbeef 3
//   end
//
// The saved trail is always a *post-execution* snapshot (the run loop
// checkpoints between executions, after the grading pipeline drained);
// resume backtracks once and continues, which is exactly what the
// uninterrupted loop would have done next.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "explore/explorer.hpp"

namespace bprc::explore {

/// One trail node, exactly the explorer's backtracking state for it.
struct FrontierNode {
  bool is_coin = false;
  bool coin_value = false;
  bool is_stale = false;    ///< stale-read choice point (weakened semantics)
  int stale_value = 0;
  int stale_options = 0;
  ProcId chosen = -1;
  int taken = 0;
  std::uint64_t candidates = 0;
  std::uint64_t sleep = 0;
  std::vector<OpDesc> ops;  ///< pending op per process (schedule nodes)
};

struct Frontier {
  int version = 1;
  std::uint64_t fingerprint = 0;  ///< config guard, see explorer.cpp
  bool complete = false;          ///< tree exhausted; nothing left to resume
  ExploreStats stats;
  std::vector<FrontierNode> trail;
  std::vector<ExploreViolation> violations;
  std::vector<std::pair<std::uint64_t, std::uint8_t>> cache;
};

std::string serialize_frontier(const Frontier& frontier);

/// Parses serialize_frontier output; nullopt + `err` on malformed input
/// (user-supplied files must not abort the process).
std::optional<Frontier> parse_frontier(const std::string& text,
                                       std::string* err);

/// File convenience wrappers. save returns false on I/O failure.
bool save_frontier(const std::string& path, const Frontier& frontier);
std::optional<Frontier> load_frontier(const std::string& path,
                                      std::string* err);

}  // namespace bprc::explore
