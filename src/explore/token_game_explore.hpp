// Claim 4.1 under exhaustive interleaving: the incremental distance-graph
// update inc(i) must track the sequential token game move-for-move, no
// matter how the n movers interleave. The sampled property tests in
// tests/test_strip.cpp check random move sequences; this target feeds the
// same pair of models through the exploration driver so that *every*
// interleaving of n processes each making M moves is covered (subject to
// seen-state merging, which is sound here: the fingerprint folds the full
// game + graph state via state_probe).
//
// Every mover declares its move as a write to one shared virtual object
// (the strip), so sleep-set reduction never treats two moves as
// independent — the interleaving space is explored in full.
#pragma once

#include <cstdint>

#include "explore/explorer.hpp"

namespace bprc::explore {

/// Explores every interleaving of n processes, each performing
/// `moves_per_proc` move_token/inc pairs on a shared TokenGame +
/// DistanceGraph(K), checking graph == from_positions(game) after each
/// move. Mismatches surface as FailureClass::kConsistency violations.
/// `limits.branch_depth` must be >= n * moves_per_proc for the run to be
/// exhaustive (explore_token_game asserts this).
ExploreResult explore_token_game(int n, int K, int moves_per_proc,
                                 const ExploreLimits& limits,
                                 std::uint64_t seed,
                                 bool reuse_runtime = true);

}  // namespace bprc::explore
