// Bounded model checker for small-n executions: depth-first exhaustive
// schedule exploration over the deterministic simulator.
//
// The torture harness (src/fault/) samples schedules; this driver
// *enumerates* them. It is a stateless (replay-based) checker in the
// CHESS tradition: each explored execution re-runs the target from its
// initial state under a scripted prefix held in a backtracking trail, so
// it composes with the existing Runtime/Adversary seams instead of
// requiring snapshot/restore of fiber stacks. Two prunings keep the tree
// tractable:
//
//   * sleep sets (Godefroid-style partial-order reduction) keyed on
//     register-access independence read off the pending OpDesc at each
//     scheduling point — two enabled operations commute when they touch
//     different objects or are both reads;
//   * a seen-state cache over fingerprints of (per-process event-history
//     hashes, shared-register last-writer identities, pending ops,
//     run flags), fed by the TraceSink instrumentation in the registers.
//
// Scope bounds make the tree finite: the first `branch_depth` scheduling
// points branch over every runnable process, the first `max_coin_flips`
// local-coin flips branch over both outcomes (via FlipTape), under
// weakened register semantics the first `max_stale_reads` overlapping
// reads branch over every servable value (the explorer is the adversary
// the runtime asks to resolve them), and beyond those bounds the run
// completes deterministically (round-robin schedule, seed-derived coins,
// atomic-answer stale reads) so every leaf is a *finished* run whose
// terminal state the target's full oracle can grade. Within the bounded scope the
// enumeration is exhaustive; see docs/TESTING.md ("exploration tier").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "consensus/driver.hpp"
#include "runtime/runtime.hpp"

namespace bprc {

class SimRuntime;

namespace explore {

inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

/// FNV-1a fold — the same digest family test_replay.cpp pins schedules
/// with, so explorer digests and golden schedule hashes stay comparable.
inline std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
  return h;
}

/// Scope and safety-valve bounds for one exploration.
struct ExploreLimits {
  /// Scheduling points explored with full branching; the run continues
  /// deterministically (round-robin) past this depth until it finishes.
  std::uint64_t branch_depth = 10;
  /// Local-coin flips resolved both ways (within the branch region);
  /// later flips draw from the seed-derived generators.
  std::uint64_t max_coin_flips = 3;
  /// Register semantics the target's registers run under. Weakened
  /// (regular / safe) semantics turn every read that overlaps an
  /// in-flight write into an explorer-controlled choice point: the first
  /// `max_stale_reads` of them (within the branch region) branch over
  /// every servable value, later ones resolve to the atomic answer —
  /// mirroring the coin-flip bound. kAtomic leaves the tree and every
  /// digest exactly as before.
  RegisterSemantics semantics = RegisterSemantics::kAtomic;
  std::uint64_t max_stale_reads = 3;
  /// Step budget for each execution's deterministic tail.
  std::uint64_t max_run_steps = 200'000;
  /// Safety valves; 0 = unlimited. Hitting one clears stats.complete.
  std::uint64_t max_executions = 0;
  std::uint64_t max_states = 0;
  /// Stop once this many violating executions were collected.
  std::size_t max_violations = 8;
  /// Prunings, individually toggleable (the determinism tests and the
  /// CLI's --no-* flags compare configurations).
  bool sleep_sets = true;
  bool state_cache = true;
  /// Worker threads grading completed leaves through the trial engine
  /// (enumeration stays serial on the calling thread). <=1 grades inline
  /// — the exact serial path; >1 is byte-identical to it by the engine's
  /// generation-order delivery (docs/PERFORMANCE.md "explorer
  /// deep-scale").
  unsigned grade_jobs = 1;
  /// Seen-state cache layout: the compact open-addressing table
  /// (default) or the legacy unordered_map. Merge decisions are
  /// bit-identical either way; the determinism tests cross them.
  bool compact_cache = true;
  /// Cache memory budget in bytes (compact layout only; 0 = unbounded).
  /// Over budget the cache evicts deep entries instead of growing —
  /// sound (fewer prunes, never a skipped state), bounded.
  std::uint64_t max_cache_bytes = 0;
  /// Grade each leaf in a fork()ed child so a process-killing protocol
  /// (broken-segv) surfaces as kWorkerCrash instead of taking the DFS
  /// down. Forces grade_jobs <= 1 (fork and worker threads do not mix).
  bool isolate_leaves = false;
  /// Frontier split: restrict the root scheduling point to candidates
  /// whose rank satisfies rank % split_count == split_index, so k
  /// invocations cover the full tree (offline sharding; union of slices
  /// covers every root branch, digests are per-slice). 0/1 = off.
  std::uint32_t split_index = 0;
  std::uint32_t split_count = 0;
};

struct ExploreStats {
  std::uint64_t executions = 0;      ///< runs driven to an end
  std::uint64_t complete_runs = 0;   ///< finished (Reason::kAllDone)
  std::uint64_t truncated_runs = 0;  ///< tail step budget exhausted
  std::uint64_t pruned_runs = 0;     ///< cut short by cache merge / sleep
  std::uint64_t states_visited = 0;  ///< scheduling nodes expanded
  std::uint64_t states_merged = 0;   ///< frontier states already in cache
  std::uint64_t sleep_pruned = 0;    ///< branches skipped by sleep sets
  std::uint64_t sleep_blocked = 0;   ///< nodes with every candidate asleep
  std::uint64_t coin_branches = 0;   ///< coin flips branched both ways
  std::uint64_t stale_branches = 0;  ///< stale reads branched over values
  std::uint64_t max_trail_depth = 0;
  std::uint64_t total_steps = 0;     ///< simulator steps over all runs
  std::uint64_t worker_crashes = 0;  ///< isolated grading workers that died
  std::uint64_t cache_entries = 0;      ///< seen-state entries at the end
  std::uint64_t peak_cache_bytes = 0;   ///< high-water cache footprint
  std::uint64_t cache_evictions = 0;    ///< budget-forced depth evictions
  /// FNV-1a over every executed pick and forced flip of every execution,
  /// in DFS order. Two explorations that visit the same tree the same way
  /// — e.g. fresh-runtime vs SimRuntime::reset() reuse — match digests.
  std::uint64_t schedule_digest = kFnvOffset;
  double seconds = 0.0;
  /// True iff the bounded tree was exhausted (no safety valve fired).
  bool complete = true;
};

/// What a target reports about one finished/truncated execution.
struct Violation {
  FailureClass failure = FailureClass::kNone;
  std::string note;
};

/// A violating execution, with everything needed to replay it: the full
/// pick sequence (branch region + deterministic tail) and the forced
/// coin-flip prefix.
struct ExploreViolation {
  FailureClass failure = FailureClass::kNone;
  std::string note;
  std::vector<ProcId> schedule;
  std::vector<bool> flips;
  /// Forced stale-read choices (weakened semantics only); replay re-forces
  /// them through ScriptedAdversary::set_stale_script. Reads past the
  /// prefix resolved to the atomic answer, which is also what the script's
  /// past-the-end behavior serves.
  std::vector<int> stales;
};

/// A system under exploration. instantiate() builds fresh shared state
/// bound to `rt` (registers constructed here pick up the explorer's
/// TraceSink) and spawns every process body; the returned Instance grades
/// the execution afterwards.
class ExploreTarget {
 public:
  class Instance {
   public:
    virtual ~Instance() = default;

    /// Grades one execution. `complete` is true when every process
    /// finished (terminal state: apply the full oracle, termination
    /// included); false when the tail step budget truncated the run
    /// (grade safety only — a truncated randomized protocol is
    /// inconclusive, not wrong).
    virtual std::optional<Violation> check(SimRuntime& rt, RunResult run,
                                           bool complete) = 0;

    /// Extra shared state folded into the seen-state fingerprint, for
    /// state the TraceSink instrumentation cannot see (e.g. a model
    /// object advanced directly by process bodies). Default: nothing.
    virtual std::uint64_t state_probe() const { return 0; }
  };

  virtual ~ExploreTarget() = default;
  virtual int nprocs() const = 0;
  virtual std::unique_ptr<Instance> instantiate(SimRuntime& rt) = 0;
};

struct ExploreResult {
  ExploreStats stats;
  std::vector<ExploreViolation> violations;
  bool ok() const { return violations.empty(); }
};

struct Frontier;  // explore/frontier.hpp

/// Checkpoint/resume plumbing for one exploration. The explorer folds
/// `target_fingerprint` (the caller's identity for the target — protocol
/// name, inputs, n) with its own limits and seed into the frontier's
/// config fingerprint; resume refuses a mismatch.
struct FrontierOptions {
  /// Parsed frontier to continue from (caller loads and owns it); null =
  /// fresh start. A complete frontier returns its saved result directly.
  const Frontier* resume = nullptr;
  /// Where to write checkpoints; empty = never write. A checkpoint is
  /// written when the exploration ends (complete or valve-stopped) and,
  /// if checkpoint_every > 0, after every that-many enumerated
  /// executions. Checkpoints are taken at drained pipeline boundaries,
  /// so a resumed run reproduces the uninterrupted schedule_digest.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;
  std::uint64_t target_fingerprint = 0;
};

/// Explores every schedule of `target` within `limits`. `seed` derives the
/// per-process coins used beyond the forced-flip budget (and must match
/// the seed later used to replay a violation). `reuse_runtime` recycles
/// one SimRuntime across executions via reset(); results are bit-identical
/// either way (tests/test_sim_runtime.cpp pins this). `frontier`
/// (optional) enables checkpoint/resume; see FrontierOptions.
ExploreResult explore(ExploreTarget& target, const ExploreLimits& limits,
                      std::uint64_t seed, bool reuse_runtime = true,
                      const FrontierOptions* frontier = nullptr);

}  // namespace explore
}  // namespace bprc
