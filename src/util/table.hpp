// Fixed-width text table printer.
//
// Every experiment harness in bench/ prints through this so the regenerated
// "tables" of EXPERIMENTS.md share one format and can be diffed across runs.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace bprc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders to a string with a header rule and column alignment.
  std::string render() const;

  /// Convenience: render to stdout.
  void print() const { std::fputs(render().c_str(), stdout); }

  /// Formats a double with `digits` significant decimals.
  static std::string num(double v, int digits = 3);
  /// Formats an integer count.
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);
  static std::string num(int v) { return num(static_cast<std::int64_t>(v)); }
  /// Formats "p [lo, hi]" for a probability with its confidence interval.
  static std::string prob_ci(double p, double lo, double hi);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner (experiment id + description) around tables.
void print_banner(const std::string& id, const std::string& title);

}  // namespace bprc
