// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (coin flips, random
// adversaries, workload generators) draws from an explicitly seeded Rng so
// that any run — including any failure found by a property test — is
// reproducible from its seed. No component uses global or thread-local
// random state.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace bprc {

/// Interposer for Rng::flip(). The exploration driver (src/explore/)
/// resolves a bounded prefix of coin flips both ways by installing a tape
/// on every per-process generator; replay tooling forces a recorded flip
/// sequence the same way. The underlying generator ALWAYS advances —
/// whether the tape overrides the drawn bit or not — so the stream
/// consumed by later draws is identical across branches and identical to
/// an un-taped run. Only flip() consults the tape; below()/uniform()/etc.
/// are never forced.
class FlipTape {
 public:
  virtual ~FlipTape() = default;
  /// `drawn` is the bit the generator actually produced; the return value
  /// is what flip() hands to the caller.
  virtual bool on_flip(bool drawn) = 0;
};

/// Forces a fixed flip sequence, then passes drawn bits through untouched.
/// The replay half of the coin-branching story: an explorer counterexample
/// records the flips it forced, and replay re-forces them here.
class ScriptedFlipTape final : public FlipTape {
 public:
  explicit ScriptedFlipTape(std::vector<bool> flips)
      : flips_(std::move(flips)) {}

  bool on_flip(bool drawn) override {
    return pos_ < flips_.size() ? flips_[pos_++] : drawn;
  }

  std::size_t consumed() const { return pos_; }

 private:
  std::vector<bool> flips_;
  std::size_t pos_ = 0;
};

/// splitmix64: used to expand a single user seed into independent streams.
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — small, fast, high-quality generator.
/// Reference: Blackman & Vigna, "Scrambled Linear Pseudorandom Number
/// Generators", 2018.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64, as the xoshiro
  /// authors recommend (avoids the all-zero state and correlated seeds).
  explicit Rng(std::uint64_t seed = 0xB5297A4D1E02C3F5ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method; bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    BPRC_REQUIRE(bound > 0, "below() needs a positive bound");
    // Debiased multiply-shift (Lemire 2019). The rejection loop runs at
    // most a handful of times for any bound.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Fair coin flip. With a tape installed (set_flip_tape) the drawn bit
  /// is offered to the tape, which may override it; the generator state
  /// advances identically either way.
  bool flip() {
    const bool drawn = ((*this)() >> 63) != 0;
    return tape_ != nullptr ? tape_->on_flip(drawn) : drawn;
  }

  /// Installs (or, with nullptr, removes) a flip interposer. Not owned;
  /// the caller keeps it alive for as long as it is installed. Copying or
  /// re-seeding the Rng via assignment carries/clears the tape with the
  /// rest of the state, and split() children start untaped.
  void set_flip_tape(FlipTape* tape) { tape_ = tape; }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53 < p;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Derives an independent child generator; `salt` distinguishes children
  /// derived from the same parent state.
  Rng split(std::uint64_t salt) {
    std::uint64_t s = (*this)() ^ (salt * 0x9E3779B97F4A7C15ULL);
    return Rng(splitmix64(s));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  FlipTape* tape_ = nullptr;
};

}  // namespace bprc
