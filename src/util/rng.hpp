// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (coin flips, random
// adversaries, workload generators) draws from an explicitly seeded Rng so
// that any run — including any failure found by a property test — is
// reproducible from its seed. No component uses global or thread-local
// random state.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace bprc {

/// splitmix64: used to expand a single user seed into independent streams.
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — small, fast, high-quality generator.
/// Reference: Blackman & Vigna, "Scrambled Linear Pseudorandom Number
/// Generators", 2018.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64, as the xoshiro
  /// authors recommend (avoids the all-zero state and correlated seeds).
  explicit Rng(std::uint64_t seed = 0xB5297A4D1E02C3F5ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method; bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    BPRC_REQUIRE(bound > 0, "below() needs a positive bound");
    // Debiased multiply-shift (Lemire 2019). The rejection loop runs at
    // most a handful of times for any bound.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Fair coin flip.
  bool flip() { return ((*this)() >> 63) != 0; }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53 < p;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Derives an independent child generator; `salt` distinguishes children
  /// derived from the same parent state.
  Rng split(std::uint64_t salt) {
    std::uint64_t s = (*this)() ^ (salt * 0x9E3779B97F4A7C15ULL);
    return Rng(splitmix64(s));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace bprc
