// Environment-variable knobs for the experiment harnesses.
//
// Every bench binary runs to completion with no arguments on a laptop-class
// single core; BPRC_SCALE multiplies Monte-Carlo trial counts for
// higher-fidelity runs (e.g. BPRC_SCALE=10 for publication-grade CIs).
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace bprc {

/// Reads an integer environment variable, returning `fallback` when unset
/// or empty. An unparseable value (BPRC_JOBS=banana, trailing garbage,
/// out-of-range) aborts with a diagnostic: a knob the user bothered to
/// set and got wrong must not silently degrade to the default — that
/// turns "I benchmarked at 8 jobs" into a lie.
inline std::int64_t env_int(const char* name, std::int64_t fallback) {
  // Harness knobs are read once during startup, before any worker thread
  // exists; nothing in this codebase calls setenv, so the getenv data
  // race clang-tidy guards against cannot occur here.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s='%s' is not a valid integer\n", name, raw);
    std::fflush(stderr);
    std::abort();
  }
  return v;
}

/// Global trial-count multiplier for experiment harnesses.
inline double env_scale() {
  const std::int64_t s = env_int("BPRC_SCALE", 1);
  return s < 1 ? 1.0 : static_cast<double>(s);
}

/// Scales a base trial count by BPRC_SCALE.
inline std::uint64_t scaled_trials(std::uint64_t base) {
  return static_cast<std::uint64_t>(static_cast<double>(base) * env_scale());
}

}  // namespace bprc
