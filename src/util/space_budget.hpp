// The space budget: every bounded-domain constant of the paper's
// protocol, gathered into one sweepable value type.
//
// The paper proves its polynomial expected time at one point in space:
// strip constant K = 2, edge counters on a cycle of 3K, K+1 coin slots
// per process, coin barrier b = 4, own-counter bound m = (4(b+1)n)².
// Those constants were baked into the defaults of coin_logic.hpp,
// edge_counters.hpp, coin_slots.hpp and BPRCParams::standard; this type
// lifts them into a single record so campaigns, the explorer, the
// benches and the CLIs can sweep space like they already sweep --jobs
// and --register-semantics (docs/SPACE_BUDGETS.md).
//
// Canonical text form (the `space` line of .bprc-repro artifacts and the
// `--space` CLI flag, which also accepts commas as separators):
//
//     K=2 cycle=3 slots=3 b=4 mscale=4
//
// `cycle` is the cycle MULTIPLIER (edge cycle = cycle·K), `mscale` the
// coin side factor (m = (mscale·(b+1)·n)²). Omitted keys keep their
// paper defaults; giving K without slots re-derives slots = K+1. The
// default budget serializes to nothing at all — artifacts and shard
// files written before this type existed keep their bytes.
//
// Deliberately under-provisioned budgets (cycle 2K, or one coin slot
// short) are VALID values: the registry's bprc-underprov-* variants
// declare them to prove the harness catches the resulting
// kBoundedMemory violations (see consensus/bprc.cpp's demand latch).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/assert.hpp"

namespace bprc {

struct SpaceBudget {
  int K = 2;           ///< strip constant (round-difference cap)
  int cycle_mult = 3;  ///< edge-counter cycle = cycle_mult · K
  int slots = 3;       ///< coin slots per process (paper: K + 1)
  int b = 4;           ///< coin barrier multiple (barrier at ±b·n)
  int m_scale = 4;     ///< coin side factor: m = (m_scale·(b+1)·n)²

  /// The edge-counter cycle size this budget pays for.
  int cycle() const { return cycle_mult * K; }

  /// The slot count the paper's withdrawal argument needs for this K.
  int full_slots() const { return K + 1; }

  friend bool operator==(const SpaceBudget&, const SpaceBudget&) = default;

  /// True for the paper's point — the budget that serializes to nothing.
  bool is_default() const { return *this == SpaceBudget{}; }

  /// Structural sanity (representable, protocol-constructible). Returns
  /// false and fills `why` (if non-null) on violation. Under-provisioned
  /// budgets are valid; see the header comment.
  bool validate(std::string* why = nullptr) const {
    const auto fail = [&](const char* msg) {
      if (why != nullptr) *why = msg;
      return false;
    };
    if (K < 2) return fail("space budget needs K >= 2");
    if (cycle_mult < 2) return fail("space budget needs cycle >= 2");
    if (cycle() > 255) return fail("edge cycle must fit a uint8_t cell");
    if (slots < 2) return fail("space budget needs slots >= 2");
    if (slots > 255) return fail("space budget needs slots <= 255");
    if (b < 2) return fail("space budget needs b >= 2");
    if (m_scale < 1) return fail("space budget needs mscale >= 1");
    return true;
  }

  /// Canonical form; parse(to_string()) round-trips exactly.
  std::string to_string() const {
    return "K=" + std::to_string(K) + " cycle=" + std::to_string(cycle_mult) +
           " slots=" + std::to_string(slots) + " b=" + std::to_string(b) +
           " mscale=" + std::to_string(m_scale);
  }

  /// Parses `key=value` tokens separated by spaces and/or commas (the
  /// CLI accepts `K=3,b=8`; repro lines use the canonical space form).
  /// Unknown keys, duplicate keys, malformed values and budgets that
  /// fail validate() all return nullopt with a diagnostic in `err`.
  static std::optional<SpaceBudget> parse(const std::string& text,
                                          std::string* err) {
    const auto fail = [&](const std::string& msg) {
      if (err != nullptr) *err = msg;
      return std::nullopt;
    };
    SpaceBudget out;
    bool saw_K = false, saw_cycle = false, saw_slots = false, saw_b = false,
         saw_mscale = false;
    std::size_t pos = 0;
    while (pos < text.size()) {
      while (pos < text.size() && (text[pos] == ' ' || text[pos] == ',' ||
                                   text[pos] == '\t')) {
        ++pos;
      }
      if (pos >= text.size()) break;
      std::size_t end = pos;
      while (end < text.size() && text[end] != ' ' && text[end] != ',' &&
             text[end] != '\t') {
        ++end;
      }
      const std::string token = text.substr(pos, end - pos);
      pos = end;
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
        return fail("space budget token is not key=value: '" + token + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      int parsed = 0;
      std::size_t used = 0;
      try {
        parsed = std::stoi(value, &used);
      } catch (...) {
        return fail("space budget value for '" + key + "' is not a number: '" +
                    value + "'");
      }
      if (used != value.size()) {
        return fail("space budget value for '" + key +
                    "' has trailing junk: '" + value + "'");
      }
      const auto set = [&](int* field, bool* seen) -> bool {
        if (*seen) return false;
        *seen = true;
        *field = parsed;
        return true;
      };
      bool ok = true;
      if (key == "K") {
        ok = set(&out.K, &saw_K);
      } else if (key == "cycle") {
        ok = set(&out.cycle_mult, &saw_cycle);
      } else if (key == "slots") {
        ok = set(&out.slots, &saw_slots);
      } else if (key == "b") {
        ok = set(&out.b, &saw_b);
      } else if (key == "mscale") {
        ok = set(&out.m_scale, &saw_mscale);
      } else {
        return fail("space budget has unknown key '" + key + "'");
      }
      if (!ok) return fail("space budget repeats key '" + key + "'");
    }
    // K without slots re-derives the paper's K+1 — the usual intent of
    // `--space K=3` is "the paper's layout at a bigger K", not "K=3 with
    // K=2's slot count".
    if (saw_K && !saw_slots) out.slots = out.K + 1;
    std::string why;
    if (!out.validate(&why)) return fail(why);
    return out;
  }
};

}  // namespace bprc
