#include "util/table.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/assert.hpp"

namespace bprc {

void Table::add_row(std::vector<std::string> cells) {
  BPRC_REQUIRE(cells.size() == headers_.size(),
               "table row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
    return out;
  };

  std::string out = render_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string Table::num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string Table::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string Table::prob_ci(double p, double lo, double hi) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.4f [%.4f, %.4f]", p, lo, hi);
  return buf;
}

void print_banner(const std::string& id, const std::string& title) {
  std::string line(72, '=');
  std::printf("\n%s\n%s: %s\n%s\n", line.c_str(), id.c_str(), title.c_str(),
              line.c_str());
}

}  // namespace bprc
