// Online statistics for Monte-Carlo experiments.
//
// The experiment harnesses report means with confidence intervals and
// proportions with Wilson score bounds so that "measured ≤ paper bound"
// statements in EXPERIMENTS.md are statistically meaningful rather than
// single-sample anecdotes.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace bprc {

/// Wall-clock throughput meter for harness instrumentation: ns/item and
/// items/sec over a steady_clock interval. Used by the perf benchmarks
/// (bench/bench_perf, tools/bprc_bench) and the torture campaign's
/// per-run step-rate log line.
///
/// This is strictly OUTSIDE the deterministic simulation: readings must
/// never feed back into scheduling, seeds, or any simulated decision —
/// the only sanctioned nondeterminism is the watchdog deadline.
class Throughput {
 public:
  Throughput() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  double elapsed_seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

  /// Nanoseconds per item so far; zero items yields zero.
  double ns_per(std::uint64_t items) const {
    return items == 0 ? 0.0
                      : static_cast<double>(elapsed_ns()) /
                            static_cast<double>(items);
  }

  /// Items per second so far; clamps to zero on a sub-tick interval.
  double per_second(std::uint64_t items) const {
    const double secs = elapsed_seconds();
    return secs > 0.0 ? static_cast<double>(items) / secs : 0.0;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Welford online mean/variance accumulator with min/max tracking.
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Unbiased sample variance; zero for fewer than two samples.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean.
  double sem() const {
    return count_ > 0 ? stddev() / std::sqrt(static_cast<double>(count_))
                      : 0.0;
  }

  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const { return 1.96 * sem(); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Success-count accumulator for estimating probabilities.
class Proportion {
 public:
  void add(bool success) {
    ++trials_;
    if (success) ++successes_;
  }

  std::uint64_t trials() const { return trials_; }
  std::uint64_t successes() const { return successes_; }

  double estimate() const {
    return trials_ > 0
               ? static_cast<double>(successes_) / static_cast<double>(trials_)
               : 0.0;
  }

  /// Wilson score interval (z = 1.96). Well-behaved near 0 and 1, which is
  /// where the paper's rare-event bounds (overflow, disagreement) live.
  struct Interval {
    double low;
    double high;
  };
  Interval wilson95() const {
    if (trials_ == 0) return {0.0, 1.0};
    const double z = 1.96;
    const double n = static_cast<double>(trials_);
    const double p = estimate();
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    return {std::max(0.0, center - half), std::min(1.0, center + half)};
  }

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
};

/// Stores all samples; supports exact quantiles. Use for distributions the
/// experiments print (rounds-to-decide, steps-to-decide).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return values_.size(); }

  double mean() const {
    if (values_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : values_) sum += v;
    return sum / static_cast<double>(values_.size());
  }

  /// Exact empirical quantile, q in [0,1].
  double quantile(double q) {
    BPRC_REQUIRE(!values_.empty(), "quantile of empty sample set");
    BPRC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order out of range");
    ensure_sorted();
    const double pos = q * static_cast<double>(values_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }

  double median() { return quantile(0.5); }
  double max() {
    ensure_sorted();
    return values_.empty() ? 0.0 : values_.back();
  }

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() {
    if (!sorted_) {
      std::sort(values_.begin(), values_.end());
      sorted_ = true;
    }
  }

  std::vector<double> values_;
  bool sorted_ = true;
};

/// Least-squares fit of y = a * x^k for a fixed exponent k; used to check
/// "steps grow like n^2" style claims. Returns the coefficient a and the
/// per-point relative residuals' max magnitude.
struct PowerFit {
  double coefficient;
  double max_rel_residual;
};

inline PowerFit fit_power(const std::vector<double>& xs,
                          const std::vector<double>& ys, double exponent) {
  BPRC_REQUIRE(xs.size() == ys.size() && !xs.empty(),
               "power fit needs matched, non-empty inputs");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double b = std::pow(xs[i], exponent);
    num += ys[i] * b;
    den += b * b;
  }
  const double a = num / den;
  double max_rel = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = a * std::pow(xs[i], exponent);
    if (pred != 0.0) {
      max_rel = std::max(max_rel, std::abs(ys[i] - pred) / pred);
    }
  }
  return {a, max_rel};
}

}  // namespace bprc
