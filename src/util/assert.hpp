// Invariant-checking macros for algorithm-level assertions.
//
// These guard *protocol invariants* (e.g. "an edge counter never leaves
// {0..3K-1}", "no two processes decide differently"), not programmer
// convenience checks, so they stay active in release builds. A violated
// invariant means the reproduction diverged from the paper's claims and
// must abort loudly rather than produce silently-wrong statistics.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace bprc::detail {

[[noreturn]] inline void invariant_failure(const char* expr, const char* file,
                                           int line, const char* msg) {
  std::fprintf(stderr, "BPRC invariant violated: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace bprc::detail

// Always-on invariant check with an explanatory message.
#define BPRC_REQUIRE(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::bprc::detail::invariant_failure(#expr, __FILE__, __LINE__,    \
                                        (msg));                       \
    }                                                                 \
  } while (0)

// Always-on invariant check without a message.
#define BPRC_CHECK(expr) BPRC_REQUIRE(expr, nullptr)
