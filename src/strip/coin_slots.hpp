// The per-process circular array of coin counters (§5).
//
// Observation 1(2): a process that advances K rounds past another may
// withdraw its contribution to the older coin without affecting the
// algorithm. Each process therefore keeps only K+1 bounded walk counters
// in its register, addressed circularly:
//
//   slot `current` holds the process's contribution to the coin of its
//   current round r; slot next(current) the one for round r+1 (flipped
//   while still in round r — see flip_next_coin); slot current−d the one
//   for round r−d, for d < K.
//
// On inc (round r → r+1): current advances, and the slot that now becomes
// "next" (the K+1-rounds-old one) is zeroed — that is the withdrawal.
//
// A process j that leads a trailing process i by w < K holds i's needed
// round-(r_i+1) contribution in slot (current_j − w + 1) mod (K+1); at
// w = K the slot is one inc away from being recycled, so the reader
// treats the contribution as withdrawn (reads 0), exactly the guard in
// the paper's next_coin_value.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace bprc {

struct CoinSlots {
  int current = 0;                     ///< current_coin pointer ∈ {0..K}
  std::vector<std::int64_t> slots;     ///< K+1 bounded walk counters

  CoinSlots() = default;
  explicit CoinSlots(int K)
      : slots(static_cast<std::size_t>(K) + 1, 0) {
    BPRC_REQUIRE(K >= 1, "coin slots need K >= 1");
  }

  /// A ring with an explicit slot count — the SpaceBudget path. Extra
  /// slots beyond K+1 just keep withdrawn contributions around longer
  /// (they are zeroed on reuse, never read); fewer than K+1 cannot serve
  /// every trailing distance, which consensus/bprc.cpp surfaces as a
  /// bounded-memory demand latch rather than by shrinking the ring.
  static CoinSlots with_slot_count(int nslots) {
    BPRC_REQUIRE(nslots >= 2, "coin slots need at least 2 slots");
    CoinSlots cs;
    cs.slots.assign(static_cast<std::size_t>(nslots), 0);
    return cs;
  }

  int K() const { return static_cast<int>(slots.size()) - 1; }

  /// §5 `next(current_coin)`.
  int next_index() const { return (current + 1) % (K() + 1); }

  /// Contribution to the coin of the owner's round r+1 (the one being
  /// flipped while the owner sits in round r).
  std::int64_t& next_slot() {
    return slots[static_cast<std::size_t>(next_index())];
  }
  std::int64_t next_slot() const {
    return slots[static_cast<std::size_t>(next_index())];
  }

  /// Slot index holding this owner's contribution to the round that a
  /// process trailing by `w` (0 ≤ w < K) is about to enter — the paper's
  /// (current_coin_j − w(j,i) + 1) mod (K+1).
  int slot_for_trailing(int w) const {
    BPRC_REQUIRE(w >= 0 && w < K(), "trailing distance must be in [0, K)");
    const int kk = K() + 1;
    return ((current - w + 1) % kk + kk) % kk;
  }

  std::int64_t read_for_trailing(int w) const {
    return slots[static_cast<std::size_t>(slot_for_trailing(w))];
  }

  /// §5 `inc` (coin part): advance the pointer and zero the slot that
  /// becomes the new "next" — withdrawing the K+1-rounds-old
  /// contribution.
  void advance() {
    current = next_index();
    slots[static_cast<std::size_t>(next_index())] = 0;
  }

  friend bool operator==(const CoinSlots& a, const CoinSlots& b) {
    return a.current == b.current && a.slots == b.slots;
  }
};

}  // namespace bprc
