#include "strip/distance_graph.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bprc {

namespace {
constexpr int kNoPath = -1;
}

DistanceGraph::DistanceGraph(int n, int K)
    : n_(n),
      k_(K),
      s_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0) {
  BPRC_REQUIRE(n >= 1, "distance graph needs at least one node");
  BPRC_REQUIRE(K >= 1 && K <= 127, "K must fit the int8 capped difference");
}

DistanceGraph DistanceGraph::from_positions(
    const std::vector<std::int64_t>& pos, int K) {
  DistanceGraph g(static_cast<int>(pos.size()), K);
  for (int i = 0; i < g.n_; ++i) {
    for (int j = 0; j < g.n_; ++j) {
      const std::int64_t diff = pos[static_cast<std::size_t>(i)] -
                                pos[static_cast<std::size_t>(j)];
      const std::int64_t capped =
          std::clamp<std::int64_t>(diff, -K, K);
      g.s_[g.idx(i, j)] = static_cast<std::int8_t>(capped);
    }
  }
  return g;
}

void DistanceGraph::check_ids(int i, int j) const {
  BPRC_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_,
               "node id out of range");
}

int DistanceGraph::signed_diff(int i, int j) const {
  check_ids(i, j);
  return s_[idx(i, j)];
}

int DistanceGraph::weight(int i, int j) const {
  const int s = signed_diff(i, j);
  BPRC_REQUIRE(s >= 0, "weight() requires the edge (i,j) to exist");
  return s;
}

void DistanceGraph::set_signed_diff(int i, int j, int s) {
  check_ids(i, j);
  BPRC_REQUIRE(i != j, "diagonal of the difference matrix is fixed at 0");
  BPRC_REQUIRE(s >= -k_ && s <= k_, "capped difference out of [-K, K]");
  s_[idx(i, j)] = static_cast<std::int8_t>(s);
  s_[idx(j, i)] = static_cast<std::int8_t>(-s);
}

int DistanceGraph::dist(int i, int j) const {
  check_ids(i, j);
  const std::vector<int> d = all_dists();
  return d[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(j)];
}

std::vector<int> DistanceGraph::all_dists() const {
  // Max-plus Floyd–Warshall over the edge weights. No positive cycles
  // (property 2), so simple-path maxima equal walk maxima and the closure
  // is well-defined. n is small (≤ 64); O(n³) is fine at this call rate.
  const std::size_t n = static_cast<std::size_t>(n_);
  std::vector<int> d(n * n, kNoPath);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      const std::int8_t s = s_[a * n + b];
      if (a == b) {
        d[a * n + b] = 0;
      } else if (s >= 0) {
        d[a * n + b] = s;
      }
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t a = 0; a < n; ++a) {
      const int dak = d[a * n + k];
      if (dak == kNoPath) continue;
      for (std::size_t b = 0; b < n; ++b) {
        const int dkb = d[k * n + b];
        if (dkb == kNoPath) continue;
        d[a * n + b] = std::max(d[a * n + b], dak + dkb);
      }
    }
  }
  return d;
}

bool DistanceGraph::edge_is_tight(int i, int j) const {
  const int s = signed_diff(i, j);
  if (s < 0) return false;
  return s == dist(i, j);
}

bool DistanceGraph::is_leader(int i) const {
  for (int j = 0; j < n_; ++j) {
    if (signed_diff(i, j) < 0) return false;
  }
  return true;
}

void DistanceGraph::inc(int i) {
  check_ids(i, i);
  // All tightness checks must use the pre-move graph; one Floyd–Warshall
  // serves every edge. Collect the new row first, then install it.
  const std::vector<int> d = all_dists();
  std::vector<std::int8_t> new_row(static_cast<std::size_t>(n_));
  for (int j = 0; j < n_; ++j) {
    if (j == i) continue;
    const int s = signed_diff(i, j);
    int next = s;
    if (s >= 0) {
      next = std::min(s + 1, k_);  // extend the lead, capped at K
    } else if (-s == d[static_cast<std::size_t>(j) *
                           static_cast<std::size_t>(n_) +
                       static_cast<std::size_t>(i)]) {
      next = s + 1;  // tight gap (w(j,i) == dist(j,i)): close it by one
    }
    // else: slack edge (j leads by more than K); the cap stays at -K.
    new_row[static_cast<std::size_t>(j)] = static_cast<std::int8_t>(next);
  }
  for (int j = 0; j < n_; ++j) {
    if (j == i) continue;
    set_signed_diff(i, j, new_row[static_cast<std::size_t>(j)]);
  }
}

std::vector<std::vector<int>> DistanceGraph::matrix() const {
  std::vector<std::vector<int>> out(static_cast<std::size_t>(n_),
                                    std::vector<int>(static_cast<std::size_t>(n_), 0));
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      out[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          s_[idx(i, j)];
    }
  }
  return out;
}

}  // namespace bprc
