#include "strip/token_game.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace bprc {

TokenGame::TokenGame(int n, int K)
    : n_(n), k_(K), pos_(static_cast<std::size_t>(n), 0) {
  BPRC_REQUIRE(n >= 1, "token game needs at least one token");
  BPRC_REQUIRE(K >= 1, "token game needs K >= 1");
  pos_ = normalize(shrink(pos_, k_), k_);
}

std::vector<std::int64_t> TokenGame::shrink(std::vector<std::int64_t> s,
                                            int K) {
  const std::size_t n = s.size();
  if (n <= 1) return s;
  // Ordering permutation π: positions ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return s[a] < s[b]; });
  // r'_{π(1)} = r_{π(1)}; each following token keeps its gap, capped at K.
  std::vector<std::int64_t> out(n);
  out[order[0]] = s[order[0]];
  for (std::size_t l = 1; l < n; ++l) {
    const std::int64_t gap = s[order[l]] - s[order[l - 1]];
    out[order[l]] =
        out[order[l - 1]] + std::min<std::int64_t>(gap, K);
  }
  return out;
}

std::vector<std::int64_t> TokenGame::normalize(std::vector<std::int64_t> s,
                                               int K) {
  if (s.empty()) return s;
  const std::int64_t mx = *std::max_element(s.begin(), s.end());
  const std::int64_t target =
      static_cast<std::int64_t>(K) * static_cast<std::int64_t>(s.size());
  for (auto& v : s) v += target - mx;
  return s;
}

void TokenGame::move_token(int i) {
  BPRC_REQUIRE(i >= 0 && i < n_, "token index out of range");
  pos_[static_cast<std::size_t>(i)] += 1;
  pos_ = normalize(shrink(pos_, k_), k_);
  // Range invariant of the normalized shrunken game: positions in [0, Kn].
  for (const auto v : pos_) {
    BPRC_REQUIRE(v >= 0 && v <= static_cast<std::int64_t>(k_) * n_,
                 "normalized shrunken position left [0, K*n]");
  }
}

}  // namespace bprc
