// The distance graph G(S) of the token game (§4.2).
//
// Nodes are processes; there is an edge (i,j) whenever r_i ≥ r_j, with
// weight w(i,j) = min(r_i − r_j, K). Internally the graph is one
// antisymmetric matrix of K-capped signed differences
//
//     s(i,j) = clamp(r_i − r_j, −K, +K),      s(i,j) = −s(j,i),
//
// which encodes both edge directions and both weights (property 1 of the
// paper: both edges exist iff both weights are 0 iff s = 0).
//
// Key facts the implementation relies on (validated by the Claim 4.1
// property tests against the sequential TokenGame):
//
//  * dist(i,j), the maximum weight of a simple path i→j, equals the exact
//    shrunken difference r_i − r_j whenever r_i ≥ r_j: consecutive gaps in
//    a shrunken multiset are ≤ K, so the descending chain through the
//    intermediate tokens is an uncapped (tight) path (property 5). There
//    are no positive cycles, so max-plus Floyd–Warshall computes it.
//
//  * the paper's inc(i,G) condition "(j,i) ∈ max_paths(k,i) for some k"
//    collapses to "w(j,i) == dist(j,i)" — the direct edge is itself a max
//    path. (If the direct edge underestimates, prepending it to any k→j
//    max path also underestimates, and vice versa.) An edge with
//    w(j,i)=K < dist(j,i) is "slack": j's real lead exceeds K, so i
//    moving up one round must NOT reduce the stored cap.
//
// inc(i) — the effect of move_token_i on G (Claim 4.1):
//    for every j ≠ i:
//      s(i,j) ≥ 0 (i ahead or tied): extend the lead, capped at K;
//      s(i,j) < 0 (j ahead):         close the gap by 1 iff the edge is
//                                    tight, else leave the cap at −K.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace bprc {

class DistanceGraph {
 public:
  /// The all-tied initial state (every token at the same position).
  DistanceGraph(int n, int K);

  /// Builds G(S) from (shrunken normalized) token positions.
  static DistanceGraph from_positions(const std::vector<std::int64_t>& pos,
                                      int K);

  int nprocs() const { return n_; }
  int K() const { return k_; }

  /// Edge (i,j) ∈ E  ⟺  r_i ≥ r_j.
  bool has_edge(int i, int j) const { return signed_diff(i, j) >= 0; }

  /// w(i,j) = min(r_i − r_j, K); caller must ensure has_edge(i,j).
  int weight(int i, int j) const;

  /// The K-capped signed difference s(i,j) ∈ [−K, K].
  int signed_diff(int i, int j) const;

  /// Max-weight path value i→j (= exact shrunken difference when r_i≥r_j);
  /// −1 when no path exists (i strictly behind j).
  int dist(int i, int j) const;

  /// All-pairs max-weight path values (row-major n×n, −1 = no path): one
  /// Floyd–Warshall instead of n of them — the hot path of inc().
  std::vector<int> all_dists() const;

  /// True iff the direct edge (i,j) attains dist(i,j) — the paper's
  /// "∃k: (i,j) ∈ max_paths(k,j)" condition.
  bool edge_is_tight(int i, int j) const;

  /// i is a leader iff (i,j) ∈ E for every j (token at the maximum).
  bool is_leader(int i) const;

  /// Applies the abstract inc(i, G) transformation (token i moves up 1).
  void inc(int i);

  /// Direct mutator used by the edge-counter decoder (§4.3) when
  /// reconstructing a graph from scanned counters.
  void set_signed_diff(int i, int j, int s);

  /// Back to the all-tied state, keeping n and K: the in-place equivalent
  /// of reconstructing, for decoders that rebuild the graph every scan.
  void reset_tied() { std::fill(s_.begin(), s_.end(), 0); }

  friend bool operator==(const DistanceGraph& a, const DistanceGraph& b) {
    return a.n_ == b.n_ && a.k_ == b.k_ && a.s_ == b.s_;
  }

  /// Human-readable matrix dump for test failure messages.
  std::vector<std::vector<int>> matrix() const;

 private:
  std::size_t idx(int i, int j) const {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(j);
  }
  void check_ids(int i, int j) const;

  int n_;
  int k_;
  std::vector<std::int8_t> s_;  ///< antisymmetric capped-difference matrix
};

}  // namespace bprc
