// Concurrent bounded encoding of the distance graph (§4.3).
//
// The signed capped difference s(i,j) ∈ [−K, K] between two processes is
// represented by a pair of counters on a cycle of size 3K:
//
//     e_i[j], e_j[i] ∈ {0 .. 3K−1},
//
// where e_i[j] lives in process i's register (written only by i) and
// e_j[i] in j's. Decoding: let d = (e_i[j] − e_j[i]) mod 3K;
//
//     d ∈ {0..K}        ⇒  i leads j by d      (s(i,j) = +d)
//     3K−d ∈ {1..K}     ⇒  j leads i by 3K−d   (s(i,j) = −(3K−d))
//     otherwise         ⇒  corrupt (protocol invariant violation).
//
// Because a process only ever increments its counter while trailing or
// while leading by < K (inc_counters below), honest executions keep the
// clockwise gap between the two pointers within {0..K} from the leader's
// side; the cycle size 3K (not 2K+1) leaves the slack the concurrent
// protocol needs when increments are computed from snapshot views.
//
// The counters are pure data (they travel inside the scannable-memory
// record); the functions here are the pure encode/decode/transition logic
// shared by the consensus protocol and the tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "strip/distance_graph.hpp"
#include "util/assert.hpp"

namespace bprc {

/// One process's row of edge counters: entry j is e_self[j] ∈ {0..3K−1}.
/// Entry self is unused and stays 0.
using EdgeCounters = std::vector<std::uint8_t>;

/// The cycle the paper pays for at strip constant K (see the header
/// comment for why it is 3K and not the information-theoretic 2K+1).
/// Callers running a swept SpaceBudget pass their own cycle instead.
inline int default_edge_cycle(int K) { return 3 * K; }

/// The all-zero initial row (everyone tied).
inline EdgeCounters initial_edge_counters(int n) {
  return EdgeCounters(static_cast<std::size_t>(n), 0);
}

/// Decodes the capped signed difference r_i − r_j from the two counters
/// on a cycle of the given size. Any cycle ≥ 2K+1 decodes unambiguously
/// (the BPRC_REQUIRE makes smaller, aliasing cycles unrepresentable —
/// under-provisioned budgets run on a safe physical cycle and latch the
/// declared deficit instead, consensus/bprc.cpp). Returns nullopt if the
/// pair is not a valid encoding (which honest executions never produce;
/// the consensus protocol asserts on it).
inline std::optional<int> decode_edge(std::uint8_t e_ij, std::uint8_t e_ji,
                                      int K, int cycle) {
  BPRC_REQUIRE(cycle > 2 * K, "edge cycle must exceed 2K to decode");
  BPRC_REQUIRE(e_ij < cycle && e_ji < cycle, "edge counter out of cycle");
  const int d = (static_cast<int>(e_ij) - static_cast<int>(e_ji) + cycle) %
                cycle;
  if (d <= K) return d;            // i leads (or tie at 0)
  if (cycle - d <= K) return -(cycle - d);  // j leads
  return std::nullopt;
}

inline std::optional<int> decode_edge(std::uint8_t e_ij, std::uint8_t e_ji,
                                      int K) {
  return decode_edge(e_ij, e_ji, K, default_edge_cycle(K));
}

/// Builds the distance graph from a snapshot view of every process's edge
/// counters (§4.3 `make_graph`). `rows[i][j]` = e_i[j].
inline DistanceGraph make_graph(const std::vector<EdgeCounters>& rows, int K,
                                int cycle) {
  const int n = static_cast<int>(rows.size());
  DistanceGraph g(n, K);
  for (int i = 0; i < n; ++i) {
    BPRC_REQUIRE(static_cast<int>(rows[static_cast<std::size_t>(i)].size()) ==
                     n,
                 "edge counter row has wrong width");
    for (int j = i + 1; j < n; ++j) {
      const auto s = decode_edge(
          rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
          rows[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)], K,
          cycle);
      BPRC_REQUIRE(s.has_value(),
                   "scanned edge counters decode to no valid difference");
      g.set_signed_diff(i, j, *s);
    }
  }
  return g;
}

inline DistanceGraph make_graph(const std::vector<EdgeCounters>& rows,
                                int K) {
  return make_graph(rows, K, default_edge_cycle(K));
}

/// §4.3 `inc_graph`, the counter-level transition for process i moving up
/// one round: for each j, increment e_i[j] (mod 3K) iff
///   * i leads j by < K (extend the lead), or
///   * j leads i along a tight edge (close the gap).
/// `g` must be the graph decoded from the same snapshot as `row` (process
/// i's own row, which only i writes, so its local copy is current).
inline void inc_counters(int i, const DistanceGraph& g, EdgeCounters& row,
                         int cycle) {
  const int K = g.K();
  BPRC_REQUIRE(cycle > 2 * K, "edge cycle must exceed 2K to increment");
  const int n = g.nprocs();
  const std::vector<int> d = g.all_dists();  // one FW for all tight checks
  for (int j = 0; j < n; ++j) {
    if (j == i) continue;
    const int s = g.signed_diff(i, j);
    const bool extend = s >= 0 && s < K;
    const bool catch_up =
        s < 0 && -s == d[static_cast<std::size_t>(j) *
                             static_cast<std::size_t>(n) +
                         static_cast<std::size_t>(i)];
    if (extend || catch_up) {
      auto& e = row[static_cast<std::size_t>(j)];
      e = static_cast<std::uint8_t>((e + 1) % cycle);
    }
  }
}

inline void inc_counters(int i, const DistanceGraph& g, EdgeCounters& row) {
  inc_counters(i, g, row, default_edge_cycle(g.K()));
}

}  // namespace bprc
