// The token game — sequential specification of the rounds strip (§4.1).
//
// Round numbers grow without bound, but the algorithm only ever acts on
// *distances* between round numbers, and only distances up to a constant K
// matter (Observation 1). The paper therefore replaces the unbounded strip
// with a compressed game state obtained by two transformations applied
// after every token move:
//
//   shrink_K:    any gap between consecutive tokens (in sorted order)
//                larger than K is contracted to exactly K;
//   normalize_K: shift all tokens so the maximum sits at K·n.
//
// Every position of the normalized shrunken game lies in [0, K·n] — a
// bounded domain. This class *is* the sequential game; it is the oracle
// against which the distance graph (§4.2) and its concurrent edge-counter
// encoding (§4.3) are property-tested (Claim 4.1).
#pragma once

#include <cstdint>
#include <vector>

namespace bprc {

class TokenGame {
 public:
  /// n tokens, all at position 0 (everyone tied in round 0).
  TokenGame(int n, int K);

  int nprocs() const { return n_; }
  int K() const { return k_; }

  /// move_token_i followed by shrink_K and normalize_K (the normalized
  /// shrunken game of §4.1).
  void move_token(int i);

  /// Current normalized shrunken positions, indexed by token/process.
  const std::vector<std::int64_t>& positions() const { return pos_; }

  /// The shrink_K transformation on an arbitrary multiset of positions
  /// (exposed for direct unit testing).
  static std::vector<std::int64_t> shrink(std::vector<std::int64_t> s, int K);

  /// The normalize_K transformation: shift so max(s) == K * n.
  static std::vector<std::int64_t> normalize(std::vector<std::int64_t> s,
                                             int K);

 private:
  int n_;
  int k_;
  std::vector<std::int64_t> pos_;
};

}  // namespace bprc
