// Scannable memory — the bounded snapshot primitive of Section 2.
//
// One single-writer register V_i per process (wrapped with the alternating
// toggle bit of §2.2) plus, for every ordered pair (scanner i, writer j),
// a two-writer "arrow" register A[i][j] ∈ {0,1}:
//
//   value 1 = arrow pointing from j to i: "j has begun a write i may have
//             missed";  value 0 = arrow directed away (i has reset it).
//
// write_j(v):  raise A[i][j] for every i ≠ j, then write V_j.
// scan_i():    reset A[i][j] for every j ≠ i; collect all values twice;
//              collect the arrows; if any value changed between collects
//              or any arrow was raised, start over — otherwise the second
//              collect is a snapshot (properties P1–P3, checked by
//              src/verify/snapshot_props against recorded histories).
//
// The write is wait-free; the scan can be forced to retry only by an
// endless stream of *new* writes — the paper's progress condition, which
// the consensus protocol meets because every process alternates scan and
// write.
//
// The arrows can be backed either by native 2W2R registers or by Bloom's
// bounded construction from single-writer registers (ArrowImpl::kBloom),
// exercising the full citation lineage of the paper at ~2× step cost.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "registers/bloom_2w2r.hpp"
#include "registers/register.hpp"
#include "registers/toggle.hpp"
#include "runtime/runtime.hpp"
#include "util/assert.hpp"
#include "verify/snapshot_props.hpp"

namespace bprc {

template <class T>
class ScannableMemory {
 public:
  enum class ArrowImpl { kNative, kBloom };

  /// Creates the memory for rt.nprocs() processes, every slot holding
  /// `initial` (ghost index 0). If `recorder` is non-null, every completed
  /// write and scan is logged for the property checkers.
  ScannableMemory(Runtime& rt, T initial, ArrowImpl arrows = ArrowImpl::kNative,
                  SnapshotHistory* recorder = nullptr)
      : rt_(rt),
        n_(rt.nprocs()),
        recorder_(recorder),
        last_written_(static_cast<std::size_t>(n_),
                      Toggled<T>{initial, false, 0}) {
    if (recorder_ != nullptr) recorder_->nprocs = n_;
    scratch_.resize(static_cast<std::size_t>(n_));
    values_.reserve(static_cast<std::size_t>(n_));
    for (ProcId j = 0; j < n_; ++j) {
      values_.push_back(std::make_unique<SWMRRegister<Toggled<T>>>(
          rt_, j, Toggled<T>{initial, false, 0}, /*object_id=*/j));
    }
    arrows_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
    for (ProcId i = 0; i < n_; ++i) {
      for (ProcId j = 0; j < n_; ++j) {
        if (i == j) continue;
        const int id = n_ + i * n_ + j;
        if (arrows == ArrowImpl::kNative) {
          slot(i, j).native =
              std::make_unique<MRMWRegister<bool>>(rt_, false, id);
        } else {
          // Writers of A[i][j] are the scanner i and the writer j.
          slot(i, j).bloom =
              std::make_unique<Bloom2W2R<bool>>(rt_, i, j, false, id);
        }
      }
    }
  }

  int nprocs() const { return n_; }

  /// Write operation of the calling process (§2.2 `procedure write`).
  void write(const T& v, std::int64_t payload = 0) {
    const ProcId me = rt_.self();
    const std::uint64_t inv = rt_.now();
    for (ProcId i = 0; i < n_; ++i) {
      if (i != me) arrow_write(i, me, true);
    }
    const Toggled<T> entry =
        next_toggled(last_written_[static_cast<std::size_t>(me)], v);
    values_[static_cast<std::size_t>(me)]->write(entry, payload);
    last_written_[static_cast<std::size_t>(me)] = entry;
    const std::uint64_t res = rt_.now();
    if (recorder_ != nullptr) {
      const std::scoped_lock lock(rec_mu_);
      recorder_->add_write({me, entry.ghost_index, inv, res});
    }
  }

  /// Scan operation of the calling process (§2.2 `function scan`).
  /// Returns an n-wide snapshot view; the caller's own slot holds its own
  /// most recently written value.
  std::vector<T> scan() {
    std::vector<T> view;
    scan_into(view);
    return view;
  }

  /// scan() variant that copy-assigns the snapshot into `out` (resized to
  /// n). In steady state — `out` reused across calls, T's heap members at
  /// stable sizes — the whole scan allocates nothing: the collects land in
  /// per-scanner scratch buffers and the register reads go through
  /// read_into. The consensus hot loop (one scan per protocol step) calls
  /// this directly.
  void scan_into(std::vector<T>& out) {
    const ProcId me = rt_.self();
    const std::uint64_t inv = rt_.now();
    const std::size_t width = static_cast<std::size_t>(n_);
    // Scratch is indexed by the scanning process, so concurrent scans by
    // distinct processes (ThreadRuntime) never share a buffer.
    ScanScratch& scratch = scratch_[static_cast<std::size_t>(me)];
    std::vector<Toggled<T>>& collect1 = scratch.collect1;
    std::vector<Toggled<T>>& collect2 = scratch.collect2;
    collect1.resize(width);
    collect2.resize(width);

    while (true) {
      for (ProcId j = 0; j < n_; ++j) {
        if (j != me) arrow_write(me, j, false);
      }
      for (ProcId j = 0; j < n_; ++j) {
        if (j != me) {
          values_[static_cast<std::size_t>(j)]->read_into(
              collect1[static_cast<std::size_t>(j)]);
        }
      }
      for (ProcId j = 0; j < n_; ++j) {
        if (j != me) {
          values_[static_cast<std::size_t>(j)]->read_into(
              collect2[static_cast<std::size_t>(j)]);
        }
      }
      bool dirty = false;
      for (ProcId j = 0; j < n_ && !dirty; ++j) {
        if (j != me && arrow_read(me, j)) dirty = true;
      }
      for (ProcId j = 0; j < n_ && !dirty; ++j) {
        if (j != me &&
            collect1[static_cast<std::size_t>(j)] !=
                collect2[static_cast<std::size_t>(j)]) {
          dirty = true;
        }
      }
      if (!dirty) break;
      retries_.fetch_add(1, std::memory_order_relaxed);
    }

    collect2[static_cast<std::size_t>(me)] =
        last_written_[static_cast<std::size_t>(me)];
    const std::uint64_t res = rt_.now();
    if (recorder_ != nullptr) {
      SnapScanRec rec{me, inv, res, {}};
      rec.view.reserve(width);
      for (const auto& entry : collect2) rec.view.push_back(entry.ghost_index);
      const std::scoped_lock lock(rec_mu_);
      recorder_->add_scan(std::move(rec));
    }

    out.resize(width);
    for (std::size_t j = 0; j < width; ++j) {
      out[j] = collect2[j].value;  // copy, not move: scratch keeps capacity
    }
  }

  /// Total scan-attempt retries across all processes (progress metric for
  /// experiment E1).
  std::uint64_t scan_retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

 private:
  /// Double-collect buffers of one scanner, reused across its scans.
  struct ScanScratch {
    std::vector<Toggled<T>> collect1;
    std::vector<Toggled<T>> collect2;
  };

  struct ArrowSlot {
    std::unique_ptr<MRMWRegister<bool>> native;
    std::unique_ptr<Bloom2W2R<bool>> bloom;
  };

  ArrowSlot& slot(ProcId i, ProcId j) {
    return arrows_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
                   static_cast<std::size_t>(j)];
  }

  void arrow_write(ProcId i, ProcId j, bool v) {
    ArrowSlot& s = slot(i, j);
    if (s.native != nullptr) {
      s.native->write(v);
    } else {
      s.bloom->write(v);
    }
  }

  bool arrow_read(ProcId i, ProcId j) {
    ArrowSlot& s = slot(i, j);
    return s.native != nullptr ? s.native->read() : s.bloom->read();
  }

  Runtime& rt_;
  int n_;
  SnapshotHistory* recorder_;
  std::mutex rec_mu_;
  std::vector<Toggled<T>> last_written_;  ///< per-writer local shadow copy
  std::vector<ScanScratch> scratch_;      ///< per-scanner, see ScanScratch
  std::vector<std::unique_ptr<SWMRRegister<Toggled<T>>>> values_;
  std::vector<ArrowSlot> arrows_;
  std::atomic<std::uint64_t> retries_{0};
};

}  // namespace bprc
