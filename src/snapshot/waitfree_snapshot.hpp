// Wait-free atomic snapshot — the AADGMS construction (Afek, Attiya,
// Dolev, Gafni, Merritt, Shavit 1990), the direct successor of this
// paper's scannable memory.
//
// The §2 scannable memory trades wait-freedom away: a scan can be starved
// by an endless stream of new writes (acceptable for the consensus
// protocol, whose processes alternate write/scan). One year later the
// snapshot problem was solved wait-free by HELPING: every update embeds a
// full scan in its register; a scanner that sees the same writer move
// TWICE during its own scan may borrow that writer's embedded view — the
// embedded scan ran entirely inside the scanner's interval, so returning
// it linearizes. After n+1 dirty double-collects some writer has moved
// twice, so a scan finishes in O(n²) steps no matter what.
//
// This implementation is the classic unbounded variant (per-writer
// sequence numbers; bounding them needs the handshake machinery of the
// full AADGMS paper). It serves as the "what came next" comparator in
// experiment E1 and shares the P1/P2/P3 checkers: borrowed views must
// satisfy exactly the same properties.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "registers/register.hpp"
#include "runtime/runtime.hpp"
#include "util/assert.hpp"
#include "verify/snapshot_props.hpp"

namespace bprc {

template <class T>
class WaitFreeSnapshot {
 public:
  WaitFreeSnapshot(Runtime& rt, T initial, SnapshotHistory* recorder = nullptr)
      : rt_(rt), n_(rt.nprocs()), recorder_(recorder) {
    if (recorder_ != nullptr) recorder_->nprocs = n_;
    const std::size_t width = static_cast<std::size_t>(n_);
    Entry init;
    init.value = initial;
    init.seq = 0;
    init.embedded_values.assign(width, initial);
    init.embedded_ghosts.assign(width, 0);
    registers_.reserve(width);
    for (ProcId j = 0; j < n_; ++j) {
      registers_.push_back(std::make_unique<SWMRRegister<Entry>>(
          rt_, j, init, /*object_id=*/j));
    }
    local_.assign(width, init);
  }

  int nprocs() const { return n_; }

  /// Wait-free update: embed a scan, then write value+view in one
  /// register operation (the AADGMS update).
  void update(const T& v, std::int64_t payload = 0) {
    const ProcId me = rt_.self();
    const std::uint64_t inv = rt_.now();
    View embedded = scan_internal();
    Entry& mine = local_[static_cast<std::size_t>(me)];
    mine.value = v;
    mine.seq += 1;
    mine.embedded_values = std::move(embedded.values);
    mine.embedded_ghosts = std::move(embedded.ghosts);
    registers_[static_cast<std::size_t>(me)]->write(mine, payload);
    const std::uint64_t res = rt_.now();
    if (recorder_ != nullptr) {
      const std::scoped_lock lock(rec_mu_);
      recorder_->add_write({me, mine.seq, inv, res});
    }
  }

  /// Wait-free scan: double-collect until clean, or borrow the embedded
  /// view of a writer observed moving twice. Completes within n+1
  /// attempts unconditionally.
  std::vector<T> scan() {
    const std::uint64_t inv = rt_.now();
    View view = scan_internal();
    const std::uint64_t res = rt_.now();
    if (recorder_ != nullptr) {
      SnapScanRec rec{rt_.self(), inv, res, std::move(view.ghosts)};
      const std::scoped_lock lock(rec_mu_);
      recorder_->add_scan(std::move(rec));
    }
    return std::move(view.values);
  }

  std::uint64_t scan_borrows() const {
    return borrows_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    T value{};
    std::uint64_t seq = 0;  ///< the unbounded part (see header)
    std::vector<T> embedded_values;
    std::vector<std::uint64_t> embedded_ghosts;
  };

  struct View {
    std::vector<T> values;
    std::vector<std::uint64_t> ghosts;
  };

  View scan_internal() {
    const ProcId me = rt_.self();
    const std::size_t width = static_cast<std::size_t>(n_);
    std::vector<Entry> c1(width);
    std::vector<Entry> c2(width);
    // moved[j]: we observed j's seq advance once already.
    std::vector<bool> moved(width, false);
    while (true) {
      for (ProcId j = 0; j < n_; ++j) {
        c1[static_cast<std::size_t>(j)] =
            j == me ? local_[static_cast<std::size_t>(me)]
                    : registers_[static_cast<std::size_t>(j)]->read();
      }
      for (ProcId j = 0; j < n_; ++j) {
        c2[static_cast<std::size_t>(j)] =
            j == me ? local_[static_cast<std::size_t>(me)]
                    : registers_[static_cast<std::size_t>(j)]->read();
      }
      bool clean = true;
      for (std::size_t j = 0; j < width && clean; ++j) {
        clean = c1[j].seq == c2[j].seq;
      }
      if (clean) {
        View out;
        out.values.reserve(width);
        out.ghosts.reserve(width);
        for (const auto& e : c2) {
          out.values.push_back(e.value);
          out.ghosts.push_back(e.seq);
        }
        return out;
      }
      for (std::size_t j = 0; j < width; ++j) {
        if (c1[j].seq == c2[j].seq) continue;
        if (moved[j]) {
          // Second observed move: j's currently-registered embedded view
          // was taken by an update that started after our scan began —
          // borrow it.
          borrows_.fetch_add(1, std::memory_order_relaxed);
          View out;
          out.values = c2[j].embedded_values;
          out.ghosts = c2[j].embedded_ghosts;
          return out;
        }
        moved[j] = true;
      }
    }
  }

  Runtime& rt_;
  int n_;
  SnapshotHistory* recorder_;
  std::mutex rec_mu_;
  std::vector<Entry> local_;  ///< per-writer shadow of its own register
  std::vector<std::unique_ptr<SWMRRegister<Entry>>> registers_;
  std::atomic<std::uint64_t> borrows_{0};
};

}  // namespace bprc
