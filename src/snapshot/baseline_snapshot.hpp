// Unbounded double-collect snapshot — the pre-1989 comparator.
//
// The standard way to get a snapshot before the bounded scannable memory
// existed: attach an unbounded sequence number to every value; a scan
// collects all registers repeatedly until two consecutive collects agree
// on every sequence number. Functionally equivalent to the scannable
// memory (same P1–P3 properties under the same progress condition) but
// the sequence numbers grow without bound — this class is the "what the
// paper removes" arm of experiment E6, and it instruments exactly that
// growth (max_sequence_number).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "registers/register.hpp"
#include "runtime/runtime.hpp"
#include "verify/snapshot_props.hpp"

namespace bprc {

template <class T>
class UnboundedSnapshot {
 public:
  UnboundedSnapshot(Runtime& rt, T initial, SnapshotHistory* recorder = nullptr)
      : rt_(rt), n_(rt.nprocs()), recorder_(recorder) {
    if (recorder_ != nullptr) recorder_->nprocs = n_;
    values_.reserve(static_cast<std::size_t>(n_));
    for (ProcId j = 0; j < n_; ++j) {
      values_.push_back(std::make_unique<SWMRRegister<Entry>>(
          rt_, j, Entry{initial, 0}, /*object_id=*/j));
    }
    local_.assign(static_cast<std::size_t>(n_), Entry{initial, 0});
  }

  int nprocs() const { return n_; }

  void write(const T& v, std::int64_t payload = 0) {
    const ProcId me = rt_.self();
    const std::uint64_t inv = rt_.now();
    Entry& mine = local_[static_cast<std::size_t>(me)];
    mine = Entry{v, mine.seq + 1};
    values_[static_cast<std::size_t>(me)]->write(mine, payload);
    bump_max_seq(mine.seq);
    const std::uint64_t res = rt_.now();
    if (recorder_ != nullptr) {
      const std::scoped_lock lock(rec_mu_);
      recorder_->add_write({me, mine.seq, inv, res});
    }
  }

  std::vector<T> scan() {
    const ProcId me = rt_.self();
    const std::uint64_t inv = rt_.now();
    const std::size_t width = static_cast<std::size_t>(n_);
    std::vector<Entry> collect1(width);
    std::vector<Entry> collect2(width);
    while (true) {
      for (ProcId j = 0; j < n_; ++j) {
        if (j != me) {
          collect1[static_cast<std::size_t>(j)] =
              values_[static_cast<std::size_t>(j)]->read();
        }
      }
      for (ProcId j = 0; j < n_; ++j) {
        if (j != me) {
          collect2[static_cast<std::size_t>(j)] =
              values_[static_cast<std::size_t>(j)]->read();
        }
      }
      bool dirty = false;
      for (ProcId j = 0; j < n_ && !dirty; ++j) {
        if (j != me && collect1[static_cast<std::size_t>(j)].seq !=
                           collect2[static_cast<std::size_t>(j)].seq) {
          dirty = true;
        }
      }
      if (!dirty) break;
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
    collect2[static_cast<std::size_t>(me)] =
        local_[static_cast<std::size_t>(me)];
    const std::uint64_t res = rt_.now();
    if (recorder_ != nullptr) {
      SnapScanRec rec{me, inv, res, {}};
      rec.view.reserve(width);
      for (const auto& e : collect2) rec.view.push_back(e.seq);
      const std::scoped_lock lock(rec_mu_);
      recorder_->add_scan(std::move(rec));
    }
    std::vector<T> view;
    view.reserve(width);
    for (auto& e : collect2) view.push_back(std::move(e.value));
    return view;
  }

  std::uint64_t scan_retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

  /// The unbounded quantity: the largest sequence number ever stored in a
  /// register. Grows linearly with writes — the growth the paper's
  /// construction eliminates.
  std::uint64_t max_sequence_number() const {
    return max_seq_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    T value;
    std::uint64_t seq;
  };

  void bump_max_seq(std::uint64_t seq) {
    std::uint64_t cur = max_seq_.load(std::memory_order_relaxed);
    while (cur < seq &&
           !max_seq_.compare_exchange_weak(cur, seq,
                                           std::memory_order_relaxed)) {
    }
  }

  Runtime& rt_;
  int n_;
  SnapshotHistory* recorder_;
  std::mutex rec_mu_;
  std::vector<Entry> local_;  ///< per-writer shadow of its own register
  std::vector<std::unique_ptr<SWMRRegister<Entry>>> values_;
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> max_seq_{0};
};

}  // namespace bprc
