#include "runtime/sim_runtime.hpp"

#include <utility>

#include "util/assert.hpp"

namespace bprc {

SimRuntime::SimRuntime(int nprocs, std::unique_ptr<Adversary> adversary,
                       std::uint64_t seed) {
  init(nprocs, std::move(adversary), seed);
}

SimRuntime::~SimRuntime() {
  // run() unwinds survivors; if run() was never called there are no
  // started fibers (spawn only parks them before their body).
}

void SimRuntime::init(int nprocs, std::unique_ptr<Adversary> adversary,
                      std::uint64_t seed) {
  BPRC_REQUIRE(nprocs > 0, "simulator needs at least one process");
  BPRC_REQUIRE(adversary != nullptr, "simulator needs an adversary");
  adversary_ = std::move(adversary);

  const auto count = static_cast<std::size_t>(nprocs);
  views_.assign(count, SimCtl::ProcView{});
  fast_views_ = views_.data();  // SimCtl::view() fast path
  runnable_mask_ = 0;
  fast_mask_ =
      count <= static_cast<std::size_t>(kRunnableMaskBits) ? &runnable_mask_
                                                           : nullptr;
  if (states_.size() == count) {
    for (ProcState& st : states_) {
      st.fiber.reset();  // stack returns to the FiberStackPool
      st.stop = false;
      st.stop_delivered = false;
    }
  } else {
    states_.clear();
    states_.resize(count);
  }
  Rng master(seed);
  for (std::size_t i = 0; i < count; ++i) {
    states_[i].rng = master.split(i);
  }

  trace_sink_ = nullptr;
  semantics_ = RegisterSemantics::kAtomic;
  current_ = -1;
  total_steps_ = 0;
  now_ = 0;
  ran_ = false;
  in_run_ = false;
  has_pending_pick_ = false;
  pending_pick_ = -1;
  max_steps_ = 0;
  watched_ = false;
}

void SimRuntime::reset(int nprocs, std::unique_ptr<Adversary> adversary,
                       std::uint64_t seed) {
  BPRC_REQUIRE(!in_run_, "reset() called from inside run()");
  // Fibers left suspended by the previous run (crashed processes) are
  // destroyed without unwinding, exactly as ~SimRuntime would.
  init(nprocs, std::move(adversary), seed);
}

std::size_t SimRuntime::checked(ProcId p) const {
  BPRC_REQUIRE(p >= 0 && p < nprocs(), "process id out of range");
  return static_cast<std::size_t>(p);
}

void SimRuntime::spawn(ProcId p, std::function<void()> body) {
  const std::size_t ix = checked(p);
  BPRC_REQUIRE(states_[ix].fiber == nullptr, "process spawned twice");
  BPRC_REQUIRE(!ran_, "spawn after run");
  states_[ix].fiber = std::make_unique<Fiber>([this, ix, fn = std::move(body)] {
    try {
      fn();
    } catch (const ProcessStopped&) {
      // Normal shutdown path for crashed / budget-stopped processes.
    }
    views_[ix].finished = true;
    views_[ix].runnable = false;
    mask_clear(ix);
  });
  views_[ix].runnable = true;
  mask_set(ix);
}

bool SimRuntime::watchdog_expired() const {
  return watched_ && (total_steps_ % kWatchdogStride == 0) &&
         std::chrono::steady_clock::now() >= deadline_at_;
}

void SimRuntime::checkpoint(const OpDesc& op) {
  const std::size_t ix = checked(current_);
  ProcState& me = states_[ix];
  SimCtl::ProcView& view = views_[ix];
  if (me.stop) {
    // A second checkpoint after ProcessStopped was delivered means the
    // body caught and swallowed it; that would deadlock the teardown, so
    // fail loudly instead.
    BPRC_REQUIRE(!me.stop_delivered,
                 "process swallowed ProcessStopped; bodies must let it "
                 "propagate");
    me.stop_delivered = true;
    throw ProcessStopped{};
  }
  view.pending = op;
  ++view.steps;
  ++total_steps_;

  // Fast path: consult the adversary here, before parking. The budget and
  // watchdog gates mirror the run-loop head exactly, so the adversary is
  // asked at precisely the step counts it would be asked at after a park —
  // recorded schedules are bit-identical with and without this shortcut.
  // When the pick lands on the running process (guaranteed under solo
  // tails, 1/k under uniform-random over k runnable) control never leaves
  // this stack: no fiber switch, no heap, nothing beyond the pick() call.
  if (in_run_ && total_steps_ < max_steps_ && !watchdog_expired()) {
    const ProcId p = adversary_->pick(*this);
    if (p == current_) {
      // crash(current_) inside pick() would have set me.stop; a self-pick
      // therefore implies the process is still runnable.
      BPRC_REQUIRE(view.runnable, "adversary picked unrunnable process");
      return;
    }
    if (Fiber::kDirectHandoff && p >= 0) {
      // Switch straight into the picked fiber — one context swap instead
      // of park + run-loop iteration + resume. The run loop regains
      // control only at the gates above, on a -1 pick, or when a fiber
      // finishes; everything the adversary observes is unchanged.
      BPRC_REQUIRE(views_[checked(p)].runnable,
                   "adversary picked unrunnable process");
      current_ = p;
      me.fiber->switch_to(*states_[static_cast<std::size_t>(p)].fiber);
      // Scheduled again (by a later handoff or a run-loop resume).
      if (me.stop) {
        me.stop_delivered = true;
        throw ProcessStopped{};
      }
      return;
    }
    // Hand the pick to the run loop; it must not re-run the head checks
    // (that would double the watchdog cadence) nor ask the adversary again.
    pending_pick_ = p;
    has_pending_pick_ = true;
  }

  me.fiber->yield();  // park; the run loop takes over
  if (me.stop) {
    me.stop_delivered = true;
    throw ProcessStopped{};
  }
}

Rng& SimRuntime::rng() {
  return states_[checked(current_)].rng;
}

void SimRuntime::publish_hint(const Hint& hint) {
  views_[checked(current_)].hint = hint;
}

void SimRuntime::crash(ProcId p) {
  const std::size_t ix = checked(p);
  SimCtl::ProcView& view = views_[ix];
  if (view.finished || view.crashed) return;
  view.crashed = true;
  view.runnable = false;
  mask_clear(ix);
  states_[ix].stop = true;
}

bool SimRuntime::any_runnable() const {
  if (fast_mask_ != nullptr) return runnable_mask_ != 0;
  for (const auto& view : views_) {
    if (view.runnable) return true;
  }
  return false;
}

RunResult SimRuntime::run(std::uint64_t max_steps,
                          std::chrono::nanoseconds deadline) {
  BPRC_REQUIRE(!ran_, "run() may only be called once (reset() re-arms)");
  ran_ = true;
  watched_ = deadline > std::chrono::nanoseconds::zero();
  deadline_at_ = std::chrono::steady_clock::now() + deadline;
  max_steps_ = max_steps;
  in_run_ = true;
  has_pending_pick_ = false;

  RunResult result;
  while (true) {
    ProcId p;
    if (has_pending_pick_) {
      // checkpoint() already ran the head checks and the pick for this
      // step count; consuming it here keeps the adversary's observation
      // sequence identical to the always-park schedule.
      has_pending_pick_ = false;
      p = pending_pick_;
    } else {
      if (!any_runnable()) {
        // kAllDone means every *non-crashed* process finished its body;
        // crashed processes are expected casualties, not a failed run.
        bool survivors_finished = true;
        bool any_survivor = false;
        for (const auto& view : views_) {
          if (view.crashed) continue;
          any_survivor = true;
          survivors_finished = survivors_finished && view.finished;
        }
        result.reason = (any_survivor && survivors_finished)
                            ? RunResult::Reason::kAllDone
                            : RunResult::Reason::kNoRunnable;
        break;
      }
      if (total_steps_ >= max_steps) {
        result.reason = RunResult::Reason::kBudget;
        break;
      }
      if (watchdog_expired()) {
        result.reason = RunResult::Reason::kDeadline;
        break;
      }
      p = adversary_->pick(*this);
    }
    if (p < 0) {
      result.reason = RunResult::Reason::kNoRunnable;
      break;
    }
    ProcState& state = states_[checked(p)];
    BPRC_REQUIRE(views_[static_cast<std::size_t>(p)].runnable,
                 "adversary picked unrunnable process");
    current_ = p;
    state.fiber->resume();
    current_ = -1;
  }

  in_run_ = false;
  unwind_survivors();
  result.steps = total_steps_;
  return result;
}

void SimRuntime::unwind_survivors() {
  // Give every parked, unfinished fiber one final resume with the stop
  // flag raised so it unwinds via ProcessStopped and its destructors run.
  for (std::size_t i = 0; i < states_.size(); ++i) {
    ProcState& state = states_[i];
    if (state.fiber == nullptr || state.fiber->finished()) continue;
    state.stop = true;
    views_[i].runnable = false;
    mask_clear(i);
    current_ = static_cast<ProcId>(i);
    state.fiber->resume();
    current_ = -1;
    BPRC_REQUIRE(state.fiber->finished(),
                 "process swallowed ProcessStopped; bodies must let it "
                 "propagate");
  }
}

}  // namespace bprc
