#include "runtime/sim_runtime.hpp"

#include <utility>

#include "util/assert.hpp"

namespace bprc {

SimRuntime::SimRuntime(int nprocs, std::unique_ptr<Adversary> adversary,
                       std::uint64_t seed)
    : procs_(static_cast<std::size_t>(nprocs)),
      adversary_(std::move(adversary)) {
  BPRC_REQUIRE(nprocs > 0, "simulator needs at least one process");
  BPRC_REQUIRE(adversary_ != nullptr, "simulator needs an adversary");
  Rng master(seed);
  for (auto& proc : procs_) {
    proc.rng = master.split(static_cast<std::uint64_t>(&proc - &procs_[0]));
  }
}

SimRuntime::~SimRuntime() {
  // run() unwinds survivors; if run() was never called there are no
  // started fibers (spawn only parks them before their body).
}

std::size_t SimRuntime::checked(ProcId p) const {
  BPRC_REQUIRE(p >= 0 && p < nprocs(), "process id out of range");
  return static_cast<std::size_t>(p);
}

void SimRuntime::spawn(ProcId p, std::function<void()> body) {
  Proc& proc = procs_[checked(p)];
  BPRC_REQUIRE(proc.fiber == nullptr, "process spawned twice");
  BPRC_REQUIRE(!ran_, "spawn after run");
  proc.fiber = std::make_unique<Fiber>([this, p, fn = std::move(body)] {
    try {
      fn();
    } catch (const ProcessStopped&) {
      // Normal shutdown path for crashed / budget-stopped processes.
    }
    procs_[static_cast<std::size_t>(p)].view.finished = true;
    procs_[static_cast<std::size_t>(p)].view.runnable = false;
  });
  proc.view.runnable = true;
}

void SimRuntime::checkpoint(const OpDesc& op) {
  Proc& me = procs_[checked(current_)];
  if (me.stop) {
    // A second checkpoint after ProcessStopped was delivered means the
    // body caught and swallowed it; that would deadlock the teardown, so
    // fail loudly instead.
    BPRC_REQUIRE(!me.stop_delivered,
                 "process swallowed ProcessStopped; bodies must let it "
                 "propagate");
    me.stop_delivered = true;
    throw ProcessStopped{};
  }
  me.view.pending = op;
  ++me.view.steps;
  ++total_steps_;
  me.fiber->yield();  // park; the run loop takes over
  if (me.stop) {
    me.stop_delivered = true;
    throw ProcessStopped{};
  }
}

Rng& SimRuntime::rng() {
  return procs_[checked(current_)].rng;
}

void SimRuntime::publish_hint(const Hint& hint) {
  procs_[checked(current_)].view.hint = hint;
}

void SimRuntime::crash(ProcId p) {
  Proc& proc = procs_[checked(p)];
  if (proc.view.finished || proc.view.crashed) return;
  proc.view.crashed = true;
  proc.view.runnable = false;
  proc.stop = true;
}

bool SimRuntime::any_runnable() const {
  for (const auto& proc : procs_) {
    if (proc.view.runnable) return true;
  }
  return false;
}

RunResult SimRuntime::run(std::uint64_t max_steps,
                          std::chrono::nanoseconds deadline) {
  BPRC_REQUIRE(!ran_, "run() may only be called once per SimRuntime");
  ran_ = true;

  // The wall-clock watchdog is checked every kWatchdogStride steps: a
  // steady_clock read per primitive operation would dominate small runs.
  constexpr std::uint64_t kWatchdogStride = 4096;
  const bool watched = deadline > std::chrono::nanoseconds::zero();
  const auto deadline_at = std::chrono::steady_clock::now() + deadline;

  RunResult result;
  while (true) {
    if (!any_runnable()) {
      // kAllDone means every *non-crashed* process finished its body;
      // crashed processes are expected casualties, not a failed run.
      bool survivors_finished = true;
      bool any_survivor = false;
      for (const auto& proc : procs_) {
        if (proc.view.crashed) continue;
        any_survivor = true;
        survivors_finished = survivors_finished && proc.view.finished;
      }
      result.reason = (any_survivor && survivors_finished)
                          ? RunResult::Reason::kAllDone
                          : RunResult::Reason::kNoRunnable;
      break;
    }
    if (total_steps_ >= max_steps) {
      result.reason = RunResult::Reason::kBudget;
      break;
    }
    if (watched && (total_steps_ % kWatchdogStride == 0) &&
        std::chrono::steady_clock::now() >= deadline_at) {
      result.reason = RunResult::Reason::kDeadline;
      break;
    }
    const ProcId p = adversary_->pick(*this);
    if (p < 0) {
      result.reason = RunResult::Reason::kNoRunnable;
      break;
    }
    Proc& proc = procs_[checked(p)];
    BPRC_REQUIRE(proc.view.runnable, "adversary picked unrunnable process");
    current_ = p;
    proc.fiber->resume();
    current_ = -1;
  }

  unwind_survivors();
  result.steps = total_steps_;
  return result;
}

void SimRuntime::unwind_survivors() {
  // Give every parked, unfinished fiber one final resume with the stop
  // flag raised so it unwinds via ProcessStopped and its destructors run.
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    Proc& proc = procs_[i];
    if (proc.fiber == nullptr || proc.fiber->finished()) continue;
    proc.stop = true;
    proc.view.runnable = false;
    current_ = static_cast<ProcId>(i);
    proc.fiber->resume();
    current_ = -1;
    BPRC_REQUIRE(proc.fiber->finished(),
                 "process swallowed ProcessStopped; bodies must let it "
                 "propagate");
  }
}

}  // namespace bprc
