#include "runtime/adversary.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bprc {

namespace {

/// Collects the runnable process ids.
std::vector<ProcId> runnable_set(const SimCtl& ctl) {
  std::vector<ProcId> out;
  out.reserve(static_cast<std::size_t>(ctl.nprocs()));
  for (ProcId p = 0; p < ctl.nprocs(); ++p) {
    if (ctl.proc(p).runnable) out.push_back(p);
  }
  return out;
}

ProcId pick_uniform(const std::vector<ProcId>& set, Rng& rng) {
  if (set.empty()) return -1;
  return set[rng.below(set.size())];
}

}  // namespace

ProcId RandomAdversary::pick(SimCtl& ctl) {
  return pick_uniform(runnable_set(ctl), rng_);
}

ProcId RoundRobinAdversary::pick(SimCtl& ctl) {
  const int n = ctl.nprocs();
  for (int offset = 1; offset <= n; ++offset) {
    const ProcId p = static_cast<ProcId>((last_ + offset) % n);
    if (ctl.proc(p).runnable) {
      last_ = p;
      return p;
    }
  }
  return -1;
}

ProcId LockstepAdversary::pick(SimCtl& ctl) {
  // Drop entries that became unrunnable since the phase was formed.
  std::erase_if(phase_, [&](ProcId p) { return !ctl.proc(p).runnable; });
  if (phase_.empty()) {
    phase_ = runnable_set(ctl);
    if (phase_.empty()) return -1;
    // Random order within the phase, drawn per phase.
    for (std::size_t i = phase_.size(); i > 1; --i) {
      std::swap(phase_[i - 1], phase_[rng_.below(i)]);
    }
  }
  const ProcId p = phase_.back();
  phase_.pop_back();
  return p;
}

ProcId LeaderSuppressAdversary::pick(SimCtl& ctl) {
  const auto runnable = runnable_set(ctl);
  if (runnable.empty()) return -1;
  std::int32_t min_round = ctl.proc(runnable.front()).hint.round;
  for (ProcId p : runnable) {
    min_round = std::min(min_round, ctl.proc(p).hint.round);
  }
  std::vector<ProcId> laggards;
  for (ProcId p : runnable) {
    if (ctl.proc(p).hint.round == min_round) laggards.push_back(p);
  }
  return pick_uniform(laggards, rng_);
}

ProcId CoinBiasAdversary::pick(SimCtl& ctl) {
  const auto runnable = runnable_set(ctl);
  if (runnable.empty()) return -1;

  // Adversary's view of the walk: the sum of the counters the processes
  // have published (it has seen every local flip already performed).
  std::int64_t walk = 0;
  for (ProcId p = 0; p < ctl.nprocs(); ++p) {
    walk += ctl.proc(p).hint.counter;
  }

  // Prefer a process whose pending counter write pulls the walk toward 0;
  // when the walk sits at 0, stall progress by preferring non-walk steps.
  std::vector<ProcId> preferred;
  for (ProcId p : runnable) {
    const int delta = ctl.proc(p).hint.walk_delta;
    if (walk != 0 ? (static_cast<std::int64_t>(delta) * walk < 0)
                  : (delta == 0)) {
      preferred.push_back(p);
    }
  }
  if (!preferred.empty()) return pick_uniform(preferred, rng_);
  return pick_uniform(runnable, rng_);
}

ProcId ScriptedAdversary::pick(SimCtl& ctl) {
  while (pos_ < script_.size()) {
    const ProcId p = script_[pos_++];
    if (p >= 0 && p < ctl.nprocs() && ctl.proc(p).runnable) return p;
  }
  return fallback_.pick(ctl);
}

ProcId CrashPlanAdversary::pick(SimCtl& ctl) {
  while (next_ < plan_.size() && ctl.step() >= plan_[next_].at_step) {
    ctl.crash(plan_[next_].victim);
    ++next_;
  }
  return inner_->pick(ctl);
}

namespace {

/// SimCtl interposer used by RecordingAdversary: forwards everything and
/// logs effective crash() calls with the step counter at injection time.
class CrashTap final : public SimCtl {
 public:
  CrashTap(SimCtl& base, std::vector<CrashPlanAdversary::Crash>& log)
      : base_(base), log_(log) {}

  int nprocs() const override { return base_.nprocs(); }
  const ProcView& proc(ProcId p) const override { return base_.proc(p); }
  std::uint64_t step() const override { return base_.step(); }
  void crash(ProcId p) override {
    const ProcView& view = base_.proc(p);
    if (!view.crashed && !view.finished) log_.push_back({base_.step(), p});
    base_.crash(p);
  }

 private:
  SimCtl& base_;
  std::vector<CrashPlanAdversary::Crash>& log_;
};

}  // namespace

ProcId RecordingAdversary::pick(SimCtl& ctl) {
  CrashTap tap(ctl, crashes_);
  const ProcId p = inner_->pick(tap);
  if (p >= 0) script_.push_back(p);
  return p;
}

ProcId CrashStormAdversary::pick(SimCtl& ctl) {
  const int n = ctl.nprocs();
  const int limit = max_crashes_ < 0 ? n - 1 : std::min(max_crashes_, n - 1);
  // Count every crashed process, not just our own victims: composed with a
  // CrashPlanAdversary, the combined kill count must stay within the
  // paper's n-1 wait-freedom bound.
  int crashed_total = 0;
  for (ProcId p = 0; p < n; ++p) {
    if (ctl.proc(p).crashed) ++crashed_total;
  }

  if (crashed_total < limit && rng_.bernoulli(crash_prob_)) {
    // Sensitivity score of a candidate victim, from the information the
    // strong adversary legitimately holds (Hint + pending OpDesc).
    std::int32_t max_round = 0;
    for (ProcId p = 0; p < n; ++p) {
      if (ctl.proc(p).runnable) {
        max_round = std::max(max_round, ctl.proc(p).hint.round);
      }
    }
    auto score = [&](ProcId p) {
      const SimCtl::ProcView& v = ctl.proc(p);
      int s = 0;
      // Observed local coin flip whose counter write is still pending:
      // crashing here makes the flip vanish from the shared walk.
      if (v.pending.kind == OpDesc::Kind::kWrite && v.hint.walk_delta != 0) {
        s += 2;
      }
      // Front-running leader with a live preference: crash pre-decision.
      const bool live_pref = v.hint.pref == 0 || v.hint.pref == 1;
      if (!v.hint.decided && live_pref && v.hint.round >= max_round) s += 2;
      // Mid-scan reader carrying a preference: orphans a partial view.
      if (v.pending.kind == OpDesc::Kind::kRead && live_pref) s += 1;
      return s;
    };
    std::vector<ProcId> victims;
    int best = 1;  // only crash at genuinely sensitive points
    for (ProcId p = 0; p < n; ++p) {
      if (!ctl.proc(p).runnable) continue;
      const int s = score(p);
      if (s < best) continue;
      if (s > best) victims.clear();
      best = s;
      victims.push_back(p);
    }
    const ProcId victim = pick_uniform(victims, rng_);
    if (victim >= 0) ctl.crash(victim);
  }
  return pick_uniform(runnable_set(ctl), rng_);
}

ProcId SplitBrainAdversary::pick(SimCtl& ctl) {
  const int n = ctl.nprocs();
  const int half = std::max(1, n / 2);
  auto group_runnable = [&](int g) {
    std::vector<ProcId> out;
    for (ProcId p = 0; p < n; ++p) {
      if (ctl.proc(p).runnable && ((p < half) ? 0 : 1) == g) out.push_back(p);
    }
    return out;
  };

  auto current = group_runnable(group_);
  if (remaining_ == 0 || current.empty()) {
    group_ = 1 - group_;
    // Burst length in [mean/2, 2*mean): long enough that a burst spans
    // many protocol rounds of the solo group.
    remaining_ = mean_burst_ / 2 +
                 rng_.below(mean_burst_ + std::max<std::uint64_t>(mean_burst_ / 2, 1));
    current = group_runnable(group_);
    if (current.empty()) {
      // Other group is dead too — fall back to whoever is left.
      current = runnable_set(ctl);
      if (current.empty()) return -1;
    }
  }
  if (remaining_ > 0) --remaining_;
  return pick_uniform(current, rng_);
}

std::vector<std::unique_ptr<Adversary>> standard_adversaries(
    std::uint64_t seed) {
  std::vector<std::unique_ptr<Adversary>> out;
  out.push_back(std::make_unique<RandomAdversary>(seed));
  out.push_back(std::make_unique<RoundRobinAdversary>());
  out.push_back(std::make_unique<LockstepAdversary>(seed ^ 0x1));
  out.push_back(std::make_unique<LeaderSuppressAdversary>(seed ^ 0x2));
  out.push_back(std::make_unique<CoinBiasAdversary>(seed ^ 0x3));
  return out;
}

std::vector<std::unique_ptr<Adversary>> hostile_adversaries(
    std::uint64_t seed) {
  std::vector<std::unique_ptr<Adversary>> out;
  out.push_back(std::make_unique<CrashStormAdversary>(seed ^ 0x4));
  out.push_back(std::make_unique<SplitBrainAdversary>(seed ^ 0x5));
  return out;
}

}  // namespace bprc
