#include "runtime/adversary.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace bprc {

namespace {

// The pick() implementations below run once per simulated step — the
// hottest loop in the repository. They are written as count-then-select
// passes over SimCtl::view() precisely so they allocate nothing: counting
// the candidates, drawing below(count), then scanning to the k-th
// candidate makes the same rng draws and returns the same process as the
// historical "collect ids into a vector, index it" code (candidates are
// always enumerated in id order). Recorded schedules are bit-identical.

/// Number of runnable processes.
int runnable_count(const SimCtl& ctl) {
  if (const std::uint64_t* mask = ctl.runnable_mask()) {
    return std::popcount(*mask);
  }
  const int n = ctl.nprocs();
  int count = 0;
  for (ProcId p = 0; p < n; ++p) {
    if (ctl.view(p).runnable) ++count;
  }
  return count;
}

/// The k-th runnable process in id order; k must be < runnable_count().
ProcId nth_runnable(const SimCtl& ctl, std::uint64_t k) {
  if (const std::uint64_t* mask = ctl.runnable_mask()) {
    // k-th lowest set bit = k-th runnable in id order, same as the scan.
    std::uint64_t m = *mask;
    while (k-- > 0) m &= m - 1;  // clear the k lowest set bits
    BPRC_REQUIRE(m != 0, "runnable rank out of range");
    return static_cast<ProcId>(std::countr_zero(m));
  }
  const int n = ctl.nprocs();
  for (ProcId p = 0; p < n; ++p) {
    if (ctl.view(p).runnable && k-- == 0) return p;
  }
  BPRC_REQUIRE(false, "runnable rank out of range");
  __builtin_unreachable();
}

/// Uniform pick over the runnable set; -1 (no draw) when it is empty.
ProcId pick_uniform_runnable(const SimCtl& ctl, Rng& rng) {
  const int count = runnable_count(ctl);
  if (count == 0) return -1;
  return nth_runnable(ctl, rng.below(static_cast<std::uint64_t>(count)));
}

}  // namespace

// resolve_read implementations. The randomized strategies draw from the
// same generator as their pick() — under atomic semantics resolve_read is
// never called, so their recorded schedules are unchanged; under weakened
// semantics the extra draws interleave deterministically and replay from
// the seed. The adaptive strategies always take the last option — the
// value most divergent from the atomic answer (the in-flight value under
// regular, the oldest held value under safe): maximal information shear,
// the canonical weak-register attack.

ProcId RandomAdversary::pick(SimCtl& ctl) {
  return pick_uniform_runnable(ctl, rng_);
}

int RandomAdversary::resolve_read(SimCtl&, const StaleRead& sr) {
  return static_cast<int>(rng_.below(static_cast<std::uint64_t>(sr.options)));
}

ProcId RoundRobinAdversary::pick(SimCtl& ctl) {
  const int n = ctl.nprocs();
  for (int offset = 1; offset <= n; ++offset) {
    const ProcId p = static_cast<ProcId>((last_ + offset) % n);
    if (ctl.view(p).runnable) {
      last_ = p;
      return p;
    }
  }
  return -1;
}

int RoundRobinAdversary::resolve_read(SimCtl&, const StaleRead& sr) {
  // Rotate through the options so every staleness level gets exercised.
  return static_cast<int>(stale_turn_++ %
                          static_cast<std::uint64_t>(sr.options));
}

ProcId LockstepAdversary::pick(SimCtl& ctl) {
  // Drop entries that became unrunnable since the phase was formed.
  std::erase_if(phase_, [&](ProcId p) { return !ctl.view(p).runnable; });
  if (phase_.empty()) {
    // Refill in id order (reusing the vector's capacity), then shuffle:
    // random order within the phase, drawn per phase.
    const int n = ctl.nprocs();
    for (ProcId p = 0; p < n; ++p) {
      if (ctl.view(p).runnable) phase_.push_back(p);
    }
    if (phase_.empty()) return -1;
    for (std::size_t i = phase_.size(); i > 1; --i) {
      std::swap(phase_[i - 1], phase_[rng_.below(i)]);
    }
  }
  const ProcId p = phase_.back();
  phase_.pop_back();
  return p;
}

int LockstepAdversary::resolve_read(SimCtl&, const StaleRead& sr) {
  return static_cast<int>(rng_.below(static_cast<std::uint64_t>(sr.options)));
}

ProcId LeaderSuppressAdversary::pick(SimCtl& ctl) {
  const int n = ctl.nprocs();
  std::int32_t min_round = 0;
  bool any = false;
  for (ProcId p = 0; p < n; ++p) {
    if (!ctl.view(p).runnable) continue;
    const std::int32_t round = ctl.view(p).hint.round;
    min_round = any ? std::min(min_round, round) : round;
    any = true;
  }
  if (!any) return -1;
  int laggards = 0;
  for (ProcId p = 0; p < n; ++p) {
    if (ctl.view(p).runnable && ctl.view(p).hint.round == min_round) {
      ++laggards;
    }
  }
  std::uint64_t k = rng_.below(static_cast<std::uint64_t>(laggards));
  for (ProcId p = 0; p < n; ++p) {
    if (ctl.view(p).runnable && ctl.view(p).hint.round == min_round &&
        k-- == 0) {
      return p;
    }
  }
  BPRC_REQUIRE(false, "laggard rank out of range");
  __builtin_unreachable();
}

int LeaderSuppressAdversary::resolve_read(SimCtl&, const StaleRead& sr) {
  // Serve the most divergent value available: keep readers confused about
  // where the leaders really are.
  return sr.options - 1;
}

ProcId CoinBiasAdversary::pick(SimCtl& ctl) {
  const int n = ctl.nprocs();
  if (runnable_count(ctl) == 0) return -1;

  // Adversary's view of the walk: the sum of the counters the processes
  // have published (it has seen every local flip already performed).
  std::int64_t walk = 0;
  for (ProcId p = 0; p < n; ++p) {
    walk += ctl.view(p).hint.counter;
  }

  // Prefer a process whose pending counter write pulls the walk toward 0;
  // when the walk sits at 0, stall progress by preferring non-walk steps.
  const auto preferred = [&](ProcId p) {
    const int delta = ctl.view(p).hint.walk_delta;
    return walk != 0 ? (static_cast<std::int64_t>(delta) * walk < 0)
                     : (delta == 0);
  };
  int count = 0;
  for (ProcId p = 0; p < n; ++p) {
    if (ctl.view(p).runnable && preferred(p)) ++count;
  }
  if (count == 0) return pick_uniform_runnable(ctl, rng_);
  std::uint64_t k = rng_.below(static_cast<std::uint64_t>(count));
  for (ProcId p = 0; p < n; ++p) {
    if (ctl.view(p).runnable && preferred(p) && k-- == 0) return p;
  }
  BPRC_REQUIRE(false, "preferred rank out of range");
  __builtin_unreachable();
}

int CoinBiasAdversary::resolve_read(SimCtl&, const StaleRead& sr) {
  // Distort the observed walk for as long as the semantics allow.
  return sr.options - 1;
}

ProcId ScriptedAdversary::pick(SimCtl& ctl) {
  while (pos_ < script_.size()) {
    const ProcId p = script_[pos_++];
    if (p >= 0 && p < ctl.nprocs() && ctl.view(p).runnable) return p;
  }
  return fallback_.pick(ctl);
}

int ScriptedAdversary::resolve_read(SimCtl&, const StaleRead& sr) {
  if (stale_pos_ >= stales_.size()) return 0;  // past the script: atomic
  const int choice = stales_[stale_pos_++];
  if (choice < 0) return 0;
  if (choice >= sr.options) return sr.options - 1;
  return choice;
}

ProcId CrashPlanAdversary::pick(SimCtl& ctl) {
  while (next_ < plan_.size() && ctl.step() >= plan_[next_].at_step) {
    ctl.crash(plan_[next_].victim);
    ++next_;
  }
  return inner_->pick(ctl);
}

namespace {

/// SimCtl interposer used by RecordingAdversary: forwards everything and
/// logs effective crash() calls with the step counter at injection time.
class CrashTap final : public SimCtl {
 public:
  CrashTap(SimCtl& base, std::vector<CrashPlanAdversary::Crash>& log)
      : base_(base), log_(log) {
    // Pass the simulator's contiguous views and runnable digest through
    // the tap so the inner strategy's scans stay allocation-free.
    adopt_fast_state(base);
  }

  int nprocs() const override { return base_.nprocs(); }
  const ProcView& proc(ProcId p) const override { return base_.proc(p); }
  std::uint64_t step() const override { return base_.step(); }
  void crash(ProcId p) override {
    const ProcView& view = base_.proc(p);
    if (!view.crashed && !view.finished) log_.push_back({base_.step(), p});
    base_.crash(p);
  }

 private:
  SimCtl& base_;
  std::vector<CrashPlanAdversary::Crash>& log_;
};

}  // namespace

ProcId RecordingAdversary::pick(SimCtl& ctl) {
  CrashTap tap(ctl, crashes_);
  const ProcId p = inner_->pick(tap);
  if (p >= 0) script_.push_back(p);
  return p;
}

int RecordingAdversary::resolve_read(SimCtl& ctl, const StaleRead& sr) {
  const int choice = inner_->resolve_read(ctl, sr);
  stales_.push_back(choice);
  return choice;
}

ProcId CrashStormAdversary::pick(SimCtl& ctl) {
  const int n = ctl.nprocs();
  const int limit = max_crashes_ < 0 ? n - 1 : std::min(max_crashes_, n - 1);
  // Count every crashed process, not just our own victims: composed with a
  // CrashPlanAdversary, the combined kill count must stay within the
  // paper's n-1 wait-freedom bound.
  int crashed_total = 0;
  for (ProcId p = 0; p < n; ++p) {
    if (ctl.view(p).crashed) ++crashed_total;
  }

  if (crashed_total < limit && rng_.bernoulli(crash_prob_)) {
    // Sensitivity score of a candidate victim, from the information the
    // strong adversary legitimately holds (Hint + pending OpDesc).
    std::int32_t max_round = 0;
    for (ProcId p = 0; p < n; ++p) {
      if (ctl.view(p).runnable) {
        max_round = std::max(max_round, ctl.view(p).hint.round);
      }
    }
    auto score = [&](ProcId p) {
      const SimCtl::ProcView& v = ctl.view(p);
      int s = 0;
      // Observed local coin flip whose counter write is still pending:
      // crashing here makes the flip vanish from the shared walk.
      if (v.pending.kind == OpDesc::Kind::kWrite && v.hint.walk_delta != 0) {
        s += 2;
      }
      // Front-running leader with a live preference: crash pre-decision.
      const bool live_pref = v.hint.pref == 0 || v.hint.pref == 1;
      if (!v.hint.decided && live_pref && v.hint.round >= max_round) s += 2;
      // Mid-scan reader carrying a preference: orphans a partial view.
      if (v.pending.kind == OpDesc::Kind::kRead && live_pref) s += 1;
      return s;
    };
    // Victims are the runnable processes at the highest score (capped
    // below at 1: only crash at genuinely sensitive points). Two passes —
    // find the best score and its multiplicity, draw, scan to the winner.
    int best = 1;
    int victims = 0;
    for (ProcId p = 0; p < n; ++p) {
      if (!ctl.view(p).runnable) continue;
      const int s = score(p);
      if (s < best) continue;
      if (s > best) victims = 0;
      best = s;
      ++victims;
    }
    if (victims > 0) {
      std::uint64_t k = rng_.below(static_cast<std::uint64_t>(victims));
      for (ProcId p = 0; p < n; ++p) {
        if (ctl.view(p).runnable && score(p) == best && k-- == 0) {
          ctl.crash(p);
          break;
        }
      }
    }
  }
  return pick_uniform_runnable(ctl, rng_);
}

int CrashStormAdversary::resolve_read(SimCtl&, const StaleRead& sr) {
  return static_cast<int>(rng_.below(static_cast<std::uint64_t>(sr.options)));
}

ProcId SplitBrainAdversary::pick(SimCtl& ctl) {
  const int n = ctl.nprocs();
  const int half = std::max(1, n / 2);
  const auto in_group = [&](ProcId p, int g) {
    return ctl.view(p).runnable && ((p < half) ? 0 : 1) == g;
  };
  auto group_count = [&](int g) {
    int count = 0;
    for (ProcId p = 0; p < n; ++p) {
      if (in_group(p, g)) ++count;
    }
    return count;
  };

  int count = group_count(group_);
  if (remaining_ == 0 || count == 0) {
    group_ = 1 - group_;
    // Burst length in [mean/2, 2*mean): long enough that a burst spans
    // many protocol rounds of the solo group.
    remaining_ = mean_burst_ / 2 +
                 rng_.below(mean_burst_ + std::max<std::uint64_t>(mean_burst_ / 2, 1));
    count = group_count(group_);
    if (count == 0) {
      // Other group is dead too — fall back to whoever is left.
      if (remaining_ > 0) --remaining_;
      return pick_uniform_runnable(ctl, rng_);
    }
  }
  if (remaining_ > 0) --remaining_;
  std::uint64_t k = rng_.below(static_cast<std::uint64_t>(count));
  for (ProcId p = 0; p < n; ++p) {
    if (in_group(p, group_) && k-- == 0) return p;
  }
  BPRC_REQUIRE(false, "group rank out of range");
  __builtin_unreachable();
}

int SplitBrainAdversary::resolve_read(SimCtl& ctl, const StaleRead& sr) {
  // A read across the split observes the other half with maximal
  // distortion; within a group, reads stay atomic-fresh.
  const int half = std::max(1, ctl.nprocs() / 2);
  const bool cross = (sr.reader < half) != (sr.writer < half);
  return cross ? sr.options - 1 : 0;
}

std::vector<std::unique_ptr<Adversary>> standard_adversaries(
    std::uint64_t seed) {
  std::vector<std::unique_ptr<Adversary>> out;
  out.push_back(std::make_unique<RandomAdversary>(seed));
  out.push_back(std::make_unique<RoundRobinAdversary>());
  out.push_back(std::make_unique<LockstepAdversary>(seed ^ 0x1));
  out.push_back(std::make_unique<LeaderSuppressAdversary>(seed ^ 0x2));
  out.push_back(std::make_unique<CoinBiasAdversary>(seed ^ 0x3));
  return out;
}

std::vector<std::unique_ptr<Adversary>> hostile_adversaries(
    std::uint64_t seed) {
  std::vector<std::unique_ptr<Adversary>> out;
  out.push_back(std::make_unique<CrashStormAdversary>(seed ^ 0x4));
  out.push_back(std::make_unique<SplitBrainAdversary>(seed ^ 0x5));
  return out;
}

}  // namespace bprc
