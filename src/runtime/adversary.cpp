#include "runtime/adversary.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bprc {

namespace {

/// Collects the runnable process ids.
std::vector<ProcId> runnable_set(const SimCtl& ctl) {
  std::vector<ProcId> out;
  out.reserve(static_cast<std::size_t>(ctl.nprocs()));
  for (ProcId p = 0; p < ctl.nprocs(); ++p) {
    if (ctl.proc(p).runnable) out.push_back(p);
  }
  return out;
}

ProcId pick_uniform(const std::vector<ProcId>& set, Rng& rng) {
  if (set.empty()) return -1;
  return set[rng.below(set.size())];
}

}  // namespace

ProcId RandomAdversary::pick(SimCtl& ctl) {
  return pick_uniform(runnable_set(ctl), rng_);
}

ProcId RoundRobinAdversary::pick(SimCtl& ctl) {
  const int n = ctl.nprocs();
  for (int offset = 1; offset <= n; ++offset) {
    const ProcId p = static_cast<ProcId>((last_ + offset) % n);
    if (ctl.proc(p).runnable) {
      last_ = p;
      return p;
    }
  }
  return -1;
}

ProcId LockstepAdversary::pick(SimCtl& ctl) {
  // Drop entries that became unrunnable since the phase was formed.
  std::erase_if(phase_, [&](ProcId p) { return !ctl.proc(p).runnable; });
  if (phase_.empty()) {
    phase_ = runnable_set(ctl);
    if (phase_.empty()) return -1;
    // Random order within the phase, drawn per phase.
    for (std::size_t i = phase_.size(); i > 1; --i) {
      std::swap(phase_[i - 1], phase_[rng_.below(i)]);
    }
  }
  const ProcId p = phase_.back();
  phase_.pop_back();
  return p;
}

ProcId LeaderSuppressAdversary::pick(SimCtl& ctl) {
  const auto runnable = runnable_set(ctl);
  if (runnable.empty()) return -1;
  std::int32_t min_round = ctl.proc(runnable.front()).hint.round;
  for (ProcId p : runnable) {
    min_round = std::min(min_round, ctl.proc(p).hint.round);
  }
  std::vector<ProcId> laggards;
  for (ProcId p : runnable) {
    if (ctl.proc(p).hint.round == min_round) laggards.push_back(p);
  }
  return pick_uniform(laggards, rng_);
}

ProcId CoinBiasAdversary::pick(SimCtl& ctl) {
  const auto runnable = runnable_set(ctl);
  if (runnable.empty()) return -1;

  // Adversary's view of the walk: the sum of the counters the processes
  // have published (it has seen every local flip already performed).
  std::int64_t walk = 0;
  for (ProcId p = 0; p < ctl.nprocs(); ++p) {
    walk += ctl.proc(p).hint.counter;
  }

  // Prefer a process whose pending counter write pulls the walk toward 0;
  // when the walk sits at 0, stall progress by preferring non-walk steps.
  std::vector<ProcId> preferred;
  for (ProcId p : runnable) {
    const int delta = ctl.proc(p).hint.walk_delta;
    if (walk != 0 ? (static_cast<std::int64_t>(delta) * walk < 0)
                  : (delta == 0)) {
      preferred.push_back(p);
    }
  }
  if (!preferred.empty()) return pick_uniform(preferred, rng_);
  return pick_uniform(runnable, rng_);
}

ProcId ScriptedAdversary::pick(SimCtl& ctl) {
  while (pos_ < script_.size()) {
    const ProcId p = script_[pos_++];
    if (p >= 0 && p < ctl.nprocs() && ctl.proc(p).runnable) return p;
  }
  return fallback_.pick(ctl);
}

ProcId CrashPlanAdversary::pick(SimCtl& ctl) {
  while (next_ < plan_.size() && ctl.step() >= plan_[next_].at_step) {
    ctl.crash(plan_[next_].victim);
    ++next_;
  }
  return inner_->pick(ctl);
}

std::vector<std::unique_ptr<Adversary>> standard_adversaries(
    std::uint64_t seed) {
  std::vector<std::unique_ptr<Adversary>> out;
  out.push_back(std::make_unique<RandomAdversary>(seed));
  out.push_back(std::make_unique<RoundRobinAdversary>());
  out.push_back(std::make_unique<LockstepAdversary>(seed ^ 0x1));
  out.push_back(std::make_unique<LeaderSuppressAdversary>(seed ^ 0x2));
  out.push_back(std::make_unique<CoinBiasAdversary>(seed ^ 0x3));
  return out;
}

}  // namespace bprc
