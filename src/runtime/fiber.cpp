#include "runtime/fiber.hpp"

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

namespace bprc {

namespace {
// The fiber being entered by the current resume(); read by the trampoline
// on the new stack. The simulator is single-threaded, but thread_local
// keeps the thread-runtime tests honest if they ever build fibers.
thread_local Fiber* g_entering = nullptr;

// Free list of warm fiber stacks. Owns its contents: the destructor frees
// them at thread exit so pooled stacks never count as leaks.
struct StackCache {
  std::vector<char*> free;
  ~StackCache() {
    for (char* stack : free) delete[] stack;
  }
};
thread_local StackCache g_stacks;
}  // namespace

char* FiberStackPool::acquire() {
  if (!g_stacks.free.empty()) {
    char* stack = g_stacks.free.back();
    g_stacks.free.pop_back();
    return stack;
  }
  return new char[Fiber::kStackSize];
}

void FiberStackPool::release(char* stack) {
  if (g_stacks.free.size() < kMaxCached) {
#if defined(__SANITIZE_ADDRESS__)
    // A fiber abandoned mid-run (crashed process) leaves shadow poison on
    // its stack bytes. operator new would clear it; pooled reuse must.
    __asan_unpoison_memory_region(stack, Fiber::kStackSize);
#endif
    g_stacks.free.push_back(stack);
  } else {
    delete[] stack;
  }
}

void FiberStackPool::clear() {
  for (char* stack : g_stacks.free) delete[] stack;
  g_stacks.free.clear();
}

std::size_t FiberStackPool::cached() { return g_stacks.free.size(); }

// --- AddressSanitizer fiber-switch annotations -----------------------------
//
// ASan tracks a "fake stack" per execution stack; every switch must be
// bracketed by start_switch/finish_switch or exception unwinding and
// use-after-return detection misfire on the foreign stack. The helpers
// below collapse to nothing in non-ASan builds.

#if defined(__SANITIZE_ADDRESS__)

void Fiber::asan_on_first_entry() {
  // First arrival on the fresh fiber stack: no fake stack to restore yet;
  // learn the scheduler stack's extent from the switch that got us here.
  __sanitizer_finish_switch_fiber(nullptr, &asan_sched_bottom_,
                                  &asan_sched_size_);
}

namespace {

inline void asan_enter_fiber_begin(Fiber* f, void** sched_fake,
                                   const char* stack, std::size_t size) {
  (void)f;
  __sanitizer_start_switch_fiber(sched_fake, stack, size);
}
inline void asan_enter_fiber_end(void* sched_fake) {
  __sanitizer_finish_switch_fiber(sched_fake, nullptr, nullptr);
}
inline void asan_leave_fiber_begin(void** fiber_fake, bool final_exit,
                                   const void* sched_bottom,
                                   std::size_t sched_size) {
  // Passing a null save slot tells ASan the departing fiber is done for
  // good and its fake stack can be released.
  __sanitizer_start_switch_fiber(final_exit ? nullptr : fiber_fake,
                                 sched_bottom, sched_size);
}
inline void asan_leave_fiber_end(void* fiber_fake, const void** sched_bottom,
                                 std::size_t* sched_size) {
  __sanitizer_finish_switch_fiber(fiber_fake, sched_bottom, sched_size);
}

}  // namespace

#define BPRC_ASAN_ENTER_BEGIN(f) \
  asan_enter_fiber_begin((f), &(f)->asan_sched_fake_, (f)->stack_, \
                         Fiber::kStackSize)
#define BPRC_ASAN_ENTER_END(f) asan_enter_fiber_end((f)->asan_sched_fake_)
#define BPRC_ASAN_LEAVE_BEGIN(f, final_exit)                            \
  asan_leave_fiber_begin(&(f)->asan_fiber_fake_, (final_exit),          \
                         (f)->asan_sched_bottom_, (f)->asan_sched_size_)
#define BPRC_ASAN_LEAVE_END(f)                                   \
  asan_leave_fiber_end((f)->asan_fiber_fake_,                    \
                       &(f)->asan_sched_bottom_, &(f)->asan_sched_size_)
#define BPRC_ASAN_FIRST_ENTRY(f) (f)->asan_on_first_entry()

#else

#define BPRC_ASAN_ENTER_BEGIN(f) ((void)0)
#define BPRC_ASAN_ENTER_END(f) ((void)0)
#define BPRC_ASAN_LEAVE_BEGIN(f, final_exit) ((void)0)
#define BPRC_ASAN_LEAVE_END(f) ((void)0)
#define BPRC_ASAN_FIRST_ENTRY(f) ((void)0)

#endif

// ---------------------------------------------------------------------------

#if !defined(BPRC_FIBER_USE_UCONTEXT)

extern "C" void bprc_ctx_swap(void** save_sp, void* load_sp);

namespace {
// First function executed on a fresh fiber stack; reached via the `ret` in
// bprc_ctx_swap, so its "return address" slot is a dummy and it must never
// return.
extern "C" void bprc_fiber_trampoline() {
  Fiber* f = g_entering;
  BPRC_ASAN_FIRST_ENTRY(f);
  f->yield();  // complete the bootstrap resume() without running the body
  // (unreachable until first real resume returns here)
  BPRC_CHECK(false);
}
}  // namespace

Fiber::Fiber(std::function<void()> body)
    : body_(std::move(body)), stack_(FiberStackPool::acquire()) {
  // Build an initial stack image that bprc_ctx_swap can "restore": six
  // zeroed callee-saved register slots below the trampoline's address. The
  // dummy word on top keeps rsp ≡ 8 (mod 16) at trampoline entry, matching
  // the ABI state just after a call instruction.
  auto top = reinterpret_cast<std::uintptr_t>(stack_ + kStackSize);
  top &= ~std::uintptr_t{15};
  auto* sp = reinterpret_cast<void**>(top);
  *--sp = nullptr;  // dummy word (trampoline's fake return address slot)
  *--sp = reinterpret_cast<void*>(&bprc_fiber_trampoline);
  for (int i = 0; i < 6; ++i) *--sp = nullptr;  // rbp, rbx, r12..r15
  self_sp_ = sp;

  // Enter the trampoline once so the fiber parks at the top of its body
  // dispatch; afterwards resume() always continues from a yield point.
  g_entering = this;
  running_ = true;
  BPRC_ASAN_ENTER_BEGIN(this);
  bprc_ctx_swap(&return_sp_, self_sp_);
  BPRC_ASAN_ENTER_END(this);
  running_ = false;
}

Fiber::~Fiber() {
  // Destroying a suspended-but-unfinished fiber leaks whatever its stack
  // frames own. The simulator only does this for crashed processes, whose
  // bodies by design hold no owning resources at checkpoints.
  FiberStackPool::release(stack_);
}

void Fiber::resume() {
  BPRC_REQUIRE(!finished_, "resume() on a finished fiber");
  BPRC_REQUIRE(!running_, "resume() on a fiber that is already running");
  g_entering = this;
  running_ = true;
  BPRC_ASAN_ENTER_BEGIN(this);
  bprc_ctx_swap(&return_sp_, self_sp_);
  BPRC_ASAN_ENTER_END(this);
  running_ = false;
}

void Fiber::yield() {
  if (body_) {
    // First entry: we are inside the bootstrap trampoline. Park here; the
    // next resume() runs the body.
    BPRC_ASAN_LEAVE_BEGIN(this, false);
    running_ = false;
    bprc_ctx_swap(&self_sp_, return_sp_);
    BPRC_ASAN_LEAVE_END(this);
    {
      // Scoped so the function object is destroyed before the final swap
      // below — the fiber never runs again, so nothing on its stack would
      // otherwise be cleaned up.
      std::function<void()> body = std::move(body_);
      body_ = nullptr;
      body();
    }
    finished_ = true;
    // Return control to the scheduler forever.
    BPRC_ASAN_LEAVE_BEGIN(this, true);
    running_ = false;
    bprc_ctx_swap(&self_sp_, return_sp_);
    BPRC_REQUIRE(false, "finished fiber was resumed");
  }
  BPRC_ASAN_LEAVE_BEGIN(this, false);
  running_ = false;
  bprc_ctx_swap(&self_sp_, return_sp_);
  BPRC_ASAN_LEAVE_END(this);
}

void Fiber::switch_to(Fiber& next) {
  // The departing side clears its own running_ and the initiator sets the
  // target's, so the flags stay coherent whether control later returns via
  // the scheduler or another handoff. `next` inherits this fiber's return
  // link: its next yield-to-scheduler lands exactly where the scheduler's
  // pending resume() call would have returned.
  BPRC_REQUIRE(running_, "switch_to() from a fiber that is not running");
  BPRC_REQUIRE(!next.finished_, "switch_to() into a finished fiber");
  BPRC_REQUIRE(!next.running_, "switch_to() into a running fiber");
  next.return_sp_ = return_sp_;
  next.running_ = true;
  running_ = false;
  bprc_ctx_swap(&self_sp_, next.self_sp_);
}

#else  // ucontext fallback

namespace {
extern "C" void bprc_ucontext_entry() {
  Fiber* f = g_entering;
  BPRC_ASAN_FIRST_ENTRY(f);
  f->yield();
  BPRC_CHECK(false);
}
}  // namespace

Fiber::Fiber(std::function<void()> body)
    : body_(std::move(body)), stack_(FiberStackPool::acquire()) {
  BPRC_CHECK(getcontext(&self_ctx_) == 0);
  self_ctx_.uc_stack.ss_sp = stack_;
  self_ctx_.uc_stack.ss_size = kStackSize;
  self_ctx_.uc_link = nullptr;
  makecontext(&self_ctx_, reinterpret_cast<void (*)()>(&bprc_ucontext_entry),
              0);
  g_entering = this;
  running_ = true;
  BPRC_ASAN_ENTER_BEGIN(this);
  BPRC_CHECK(swapcontext(&return_ctx_, &self_ctx_) == 0);
  BPRC_ASAN_ENTER_END(this);
  running_ = false;
}

Fiber::~Fiber() { FiberStackPool::release(stack_); }

void Fiber::resume() {
  BPRC_REQUIRE(!finished_, "resume() on a finished fiber");
  BPRC_REQUIRE(!running_, "resume() on a fiber that is already running");
  g_entering = this;
  running_ = true;
  BPRC_ASAN_ENTER_BEGIN(this);
  BPRC_CHECK(swapcontext(&return_ctx_, &self_ctx_) == 0);
  BPRC_ASAN_ENTER_END(this);
  running_ = false;
}

void Fiber::yield() {
  if (body_) {
    BPRC_ASAN_LEAVE_BEGIN(this, false);
    running_ = false;
    BPRC_CHECK(swapcontext(&self_ctx_, &return_ctx_) == 0);
    BPRC_ASAN_LEAVE_END(this);
    {
      // Scoped: destroyed before the final swap (see the asm variant).
      std::function<void()> body = std::move(body_);
      body_ = nullptr;
      body();
    }
    finished_ = true;
    BPRC_ASAN_LEAVE_BEGIN(this, true);
    running_ = false;
    BPRC_CHECK(swapcontext(&self_ctx_, &return_ctx_) == 0);
    BPRC_REQUIRE(false, "finished fiber was resumed");
  }
  BPRC_ASAN_LEAVE_BEGIN(this, false);
  running_ = false;
  BPRC_CHECK(swapcontext(&self_ctx_, &return_ctx_) == 0);
  BPRC_ASAN_LEAVE_END(this);
}

void Fiber::switch_to(Fiber&) {
  // kDirectHandoff is false in the ucontext fallback; schedulers must park
  // and let their run loop resume the target instead.
  BPRC_REQUIRE(false, "switch_to() unavailable in the ucontext fallback");
}

#endif

}  // namespace bprc
