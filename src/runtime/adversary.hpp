// Adversary schedulers for the deterministic simulator.
//
// In the randomized-consensus model the scheduler is an adaptive adversary
// with full knowledge of process states and past coin flips (but not
// future ones). SimRuntime consults an Adversary at every step; the
// strategies here implement the published attack patterns the algorithms
// in this library are designed to absorb (or, for the baselines, to
// succumb to).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace bprc {

/// Width of the O(1) runnable-set digest (SimCtl::runnable_mask): one bit
/// per process id. Simulations wider than this fall back to scanning the
/// view array; replay/exploration tooling that depends on the digest being
/// authoritative validates recorded configurations against this bound.
inline constexpr int kRunnableMaskBits = 64;

/// Read/control surface the simulator exposes to its adversary.
class SimCtl {
 public:
  struct ProcView {
    bool runnable = false;  ///< spawned, not finished, not crashed
    bool crashed = false;
    bool finished = false;
    OpDesc pending;  ///< the operation the process will perform if scheduled
    Hint hint;       ///< protocol-state digest (see runtime.hpp)
    std::uint64_t steps = 0;
  };

  virtual ~SimCtl() = default;
  virtual int nprocs() const = 0;
  virtual const ProcView& proc(ProcId p) const = 0;
  virtual std::uint64_t step() const = 0;

  /// Allocation-free twin of proc(): resolves through a contiguous view
  /// array when the implementation publishes one (SimRuntime does), with
  /// a virtual-call fallback otherwise. Identical results either way; the
  /// adversaries' per-step scan loops go through here. `p` must be in
  /// [0, nprocs()) — the fast path does not bounds-check.
  const ProcView& view(ProcId p) const {
    return fast_views_ != nullptr ? fast_views_[p] : proc(p);
  }

  /// O(1) runnable-set digest when the implementation maintains one: bit p
  /// is set iff process p is runnable. Null when unavailable (more than 64
  /// processes, or an implementation that doesn't track it) — callers must
  /// then fall back to scanning view(p).runnable, which reads identically.
  const std::uint64_t* runnable_mask() const { return fast_mask_; }

  /// Permanently stops scheduling p (a crash failure). Wait-free protocols
  /// tolerate up to nprocs()-1 of these.
  virtual void crash(ProcId p) = 0;

 protected:
  /// Lets a SimCtl decorator (RecordingAdversary's crash tap) inherit the
  /// decorated controller's fast view array and runnable digest.
  void adopt_fast_state(const SimCtl& ctl) {
    fast_views_ = ctl.fast_views_;
    fast_mask_ = ctl.fast_mask_;
  }

  /// Implementations with contiguous per-process views point these at the
  /// live state (and keep them current across reallocation); others leave
  /// them null.
  const ProcView* fast_views_ = nullptr;
  const std::uint64_t* fast_mask_ = nullptr;
};

/// Strategy interface. pick() must return a currently runnable process, or
/// -1 to end the run early.
class Adversary {
 public:
  virtual ~Adversary() = default;
  virtual ProcId pick(SimCtl& ctl) = 0;
  virtual std::string name() const = 0;

  /// Resolves one weakened concurrent read (registers under regular/safe
  /// semantics — see StaleRead in runtime.hpp). Must return a value in
  /// [0, sr.options): 0 = the last committed (atomic) value, 1 = the
  /// in-flight write's value, k >= 2 = the (k-1)-th older committed value
  /// (safe only). Never called under atomic semantics; the default is the
  /// atomic answer, so strategies opt in explicitly.
  virtual int resolve_read(SimCtl& ctl, const StaleRead& sr) {
    (void)ctl;
    (void)sr;
    return 0;
  }
};

/// Uniformly random runnable process each step. The "benign" schedule.
class RandomAdversary final : public Adversary {
 public:
  explicit RandomAdversary(std::uint64_t seed) : rng_(seed) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "random"; }
  int resolve_read(SimCtl& ctl, const StaleRead& sr) override;

 private:
  Rng rng_;
};

/// Fixed rotation over runnable processes.
class RoundRobinAdversary final : public Adversary {
 public:
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "round-robin"; }
  int resolve_read(SimCtl& ctl, const StaleRead& sr) override;

 private:
  ProcId last_ = -1;
  std::uint64_t stale_turn_ = 0;  ///< rotates the stale-read choice
};

/// Barrier-synchronous: every runnable process moves exactly once per
/// phase, in a per-phase random order. This is the schedule under which
/// processes keep observing each other's freshest local coin flips — the
/// pattern that drives Abrahamson-style local-coin protocols to expected
/// exponential time.
class LockstepAdversary final : public Adversary {
 public:
  explicit LockstepAdversary(std::uint64_t seed) : rng_(seed) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "lockstep"; }
  int resolve_read(SimCtl& ctl, const StaleRead& sr) override;

 private:
  Rng rng_;
  std::vector<ProcId> phase_;  ///< processes not yet scheduled this phase
};

/// Adaptive: starves the processes with the highest published round,
/// scheduling a minimal-round runnable process — the canonical attack on
/// round/leader-based protocols (keeps leadership contested).
class LeaderSuppressAdversary final : public Adversary {
 public:
  explicit LeaderSuppressAdversary(std::uint64_t seed) : rng_(seed) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "leader-suppress"; }
  int resolve_read(SimCtl& ctl, const StaleRead& sr) override;

 private:
  Rng rng_;
};

/// Adaptive: attacks the shared coin. Among runnable processes it prefers
/// one whose pending write moves the random walk back toward zero (it has
/// seen the local flip and may reorder the write), keeping the walk away
/// from the decision barriers as long as it can. Lemma 3.1's agreement
/// bound must hold against exactly this adversary.
class CoinBiasAdversary final : public Adversary {
 public:
  explicit CoinBiasAdversary(std::uint64_t seed) : rng_(seed) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "coin-bias"; }
  int resolve_read(SimCtl& ctl, const StaleRead& sr) override;

 private:
  Rng rng_;
};

/// Replays a fixed schedule (one ProcId per step), then falls back to
/// round-robin once the script is exhausted. Skips unrunnable entries.
/// This is the exhaustive-enumeration workhorse of the property tests:
/// every interleaving of a small scenario is a script.
class ScriptedAdversary final : public Adversary {
 public:
  explicit ScriptedAdversary(std::vector<ProcId> script)
      : script_(std::move(script)) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "scripted"; }
  int resolve_read(SimCtl& ctl, const StaleRead& sr) override;

  /// Recorded stale-read choices to replay, in resolution order. Past the
  /// script's end every choice is 0 (the atomic answer) — mirroring the
  /// round-robin fallback for picks. Out-of-range entries (hand-edited
  /// artifacts) are clamped into [0, options).
  void set_stale_script(std::vector<int> stales) {
    stales_ = std::move(stales);
    stale_pos_ = 0;
  }

 private:
  std::vector<ProcId> script_;
  std::size_t pos_ = 0;
  std::vector<int> stales_;
  std::size_t stale_pos_ = 0;
  RoundRobinAdversary fallback_;
};

/// Decorator: crashes given processes once the global step counter passes
/// their trigger, otherwise delegates scheduling to the inner strategy.
class CrashPlanAdversary final : public Adversary {
 public:
  struct Crash {
    std::uint64_t at_step;
    ProcId victim;
  };

  CrashPlanAdversary(std::unique_ptr<Adversary> inner, std::vector<Crash> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override {
    return inner_->name() + "+crashes";
  }
  int resolve_read(SimCtl& ctl, const StaleRead& sr) override {
    return inner_->resolve_read(ctl, sr);
  }

  /// The decorated strategy (e.g. to reach ScriptedAdversary's stale
  /// script through the crash decorator).
  Adversary& inner() { return *inner_; }

 private:
  std::unique_ptr<Adversary> inner_;
  std::vector<Crash> plan_;
  std::size_t next_ = 0;
};

/// Decorator: records the inner strategy's pick sequence AND its crash
/// injections (it interposes on the SimCtl handed to the inner strategy).
/// A recorded run replays exactly as
///
///   CrashPlanAdversary(ScriptedAdversary(script()), crashes())
///
/// under the same seed — the debugging loop for failures found by
/// randomized testing: reproduce via the seed, record, then replay/shrink
/// the schedule (src/fault/ automates the shrinking).
class RecordingAdversary final : public Adversary {
 public:
  explicit RecordingAdversary(std::unique_ptr<Adversary> inner)
      : inner_(std::move(inner)) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return inner_->name() + "+rec"; }
  int resolve_read(SimCtl& ctl, const StaleRead& sr) override;

  /// The schedule so far; pass to ScriptedAdversary to replay.
  const std::vector<ProcId>& script() const { return script_; }

  /// Crashes the inner strategy performed, in chronological order; pass
  /// to CrashPlanAdversary to replay.
  const std::vector<CrashPlanAdversary::Crash>& crashes() const {
    return crashes_;
  }

  /// Stale-read choices the inner strategy made, in resolution order;
  /// pass to ScriptedAdversary::set_stale_script to replay.
  const std::vector<int>& stales() const { return stales_; }

 private:
  std::unique_ptr<Adversary> inner_;
  std::vector<ProcId> script_;
  std::vector<CrashPlanAdversary::Crash> crashes_;
  std::vector<int> stales_;
};

/// Adaptive crash injector: kills up to `max_crashes` processes (default
/// n-1, the paper's wait-freedom bound) at protocol-sensitive points read
/// off the published Hint / pending OpDesc — a leader about to decide, a
/// process whose observed coin flip has not yet hit shared memory
/// (walk_delta pending), or a mid-scan reader holding a live preference.
/// Scheduling between crashes is uniformly random.
class CrashStormAdversary final : public Adversary {
 public:
  explicit CrashStormAdversary(std::uint64_t seed, int max_crashes = -1,
                               double crash_prob = 0.02)
      : rng_(seed), max_crashes_(max_crashes), crash_prob_(crash_prob) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "crash-storm"; }
  int resolve_read(SimCtl& ctl, const StaleRead& sr) override;

 private:
  Rng rng_;
  int max_crashes_;  ///< -1 = nprocs()-1
  double crash_prob_;
};

/// Alternates long solo bursts between two halves of the process set (ids
/// below n/2 vs the rest) — each group runs as if the other were dead,
/// then is starved while the other catches up. The schedule that punishes
/// protocols relying on round freshness: every burst boundary is a
/// maximal information shear.
class SplitBrainAdversary final : public Adversary {
 public:
  explicit SplitBrainAdversary(std::uint64_t seed,
                               std::uint64_t mean_burst = 200)
      : rng_(seed), mean_burst_(mean_burst) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "split-brain"; }
  int resolve_read(SimCtl& ctl, const StaleRead& sr) override;

 private:
  Rng rng_;
  std::uint64_t mean_burst_;
  int group_ = 0;              ///< group currently being run solo
  std::uint64_t remaining_ = 0; ///< picks left in the current burst
};

/// All adversaries used by the integration test matrix, freshly seeded.
std::vector<std::unique_ptr<Adversary>> standard_adversaries(
    std::uint64_t seed);

/// The torture-harness extension of the standard matrix: the two
/// fault-injection adversaries (crash-storm, split-brain).
std::vector<std::unique_ptr<Adversary>> hostile_adversaries(
    std::uint64_t seed);

}  // namespace bprc
