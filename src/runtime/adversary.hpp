// Adversary schedulers for the deterministic simulator.
//
// In the randomized-consensus model the scheduler is an adaptive adversary
// with full knowledge of process states and past coin flips (but not
// future ones). SimRuntime consults an Adversary at every step; the
// strategies here implement the published attack patterns the algorithms
// in this library are designed to absorb (or, for the baselines, to
// succumb to).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace bprc {

/// Read/control surface the simulator exposes to its adversary.
class SimCtl {
 public:
  struct ProcView {
    bool runnable = false;  ///< spawned, not finished, not crashed
    bool crashed = false;
    bool finished = false;
    OpDesc pending;  ///< the operation the process will perform if scheduled
    Hint hint;       ///< protocol-state digest (see runtime.hpp)
    std::uint64_t steps = 0;
  };

  virtual ~SimCtl() = default;
  virtual int nprocs() const = 0;
  virtual const ProcView& proc(ProcId p) const = 0;
  virtual std::uint64_t step() const = 0;

  /// Permanently stops scheduling p (a crash failure). Wait-free protocols
  /// tolerate up to nprocs()-1 of these.
  virtual void crash(ProcId p) = 0;
};

/// Strategy interface. pick() must return a currently runnable process, or
/// -1 to end the run early.
class Adversary {
 public:
  virtual ~Adversary() = default;
  virtual ProcId pick(SimCtl& ctl) = 0;
  virtual std::string name() const = 0;
};

/// Uniformly random runnable process each step. The "benign" schedule.
class RandomAdversary final : public Adversary {
 public:
  explicit RandomAdversary(std::uint64_t seed) : rng_(seed) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "random"; }

 private:
  Rng rng_;
};

/// Fixed rotation over runnable processes.
class RoundRobinAdversary final : public Adversary {
 public:
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "round-robin"; }

 private:
  ProcId last_ = -1;
};

/// Barrier-synchronous: every runnable process moves exactly once per
/// phase, in a per-phase random order. This is the schedule under which
/// processes keep observing each other's freshest local coin flips — the
/// pattern that drives Abrahamson-style local-coin protocols to expected
/// exponential time.
class LockstepAdversary final : public Adversary {
 public:
  explicit LockstepAdversary(std::uint64_t seed) : rng_(seed) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "lockstep"; }

 private:
  Rng rng_;
  std::vector<ProcId> phase_;  ///< processes not yet scheduled this phase
};

/// Adaptive: starves the processes with the highest published round,
/// scheduling a minimal-round runnable process — the canonical attack on
/// round/leader-based protocols (keeps leadership contested).
class LeaderSuppressAdversary final : public Adversary {
 public:
  explicit LeaderSuppressAdversary(std::uint64_t seed) : rng_(seed) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "leader-suppress"; }

 private:
  Rng rng_;
};

/// Adaptive: attacks the shared coin. Among runnable processes it prefers
/// one whose pending write moves the random walk back toward zero (it has
/// seen the local flip and may reorder the write), keeping the walk away
/// from the decision barriers as long as it can. Lemma 3.1's agreement
/// bound must hold against exactly this adversary.
class CoinBiasAdversary final : public Adversary {
 public:
  explicit CoinBiasAdversary(std::uint64_t seed) : rng_(seed) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "coin-bias"; }

 private:
  Rng rng_;
};

/// Replays a fixed schedule (one ProcId per step), then falls back to
/// round-robin once the script is exhausted. Skips unrunnable entries.
/// This is the exhaustive-enumeration workhorse of the property tests:
/// every interleaving of a small scenario is a script.
class ScriptedAdversary final : public Adversary {
 public:
  explicit ScriptedAdversary(std::vector<ProcId> script)
      : script_(std::move(script)) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override { return "scripted"; }

 private:
  std::vector<ProcId> script_;
  std::size_t pos_ = 0;
  RoundRobinAdversary fallback_;
};

/// Decorator: records the inner strategy's pick sequence. Feed the
/// recorded script to a ScriptedAdversary to replay any run exactly —
/// the debugging loop for failures found by randomized testing:
/// reproduce via the seed, record, then replay/bisect the schedule.
class RecordingAdversary final : public Adversary {
 public:
  explicit RecordingAdversary(std::unique_ptr<Adversary> inner)
      : inner_(std::move(inner)) {}
  ProcId pick(SimCtl& ctl) override {
    const ProcId p = inner_->pick(ctl);
    if (p >= 0) script_.push_back(p);
    return p;
  }
  std::string name() const override { return inner_->name() + "+rec"; }

  /// The schedule so far; pass to ScriptedAdversary to replay.
  const std::vector<ProcId>& script() const { return script_; }

 private:
  std::unique_ptr<Adversary> inner_;
  std::vector<ProcId> script_;
};

/// Decorator: crashes given processes once the global step counter passes
/// their trigger, otherwise delegates scheduling to the inner strategy.
class CrashPlanAdversary final : public Adversary {
 public:
  struct Crash {
    std::uint64_t at_step;
    ProcId victim;
  };

  CrashPlanAdversary(std::unique_ptr<Adversary> inner, std::vector<Crash> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}
  ProcId pick(SimCtl& ctl) override;
  std::string name() const override {
    return inner_->name() + "+crashes";
  }

 private:
  std::unique_ptr<Adversary> inner_;
  std::vector<Crash> plan_;
  std::size_t next_ = 0;
};

/// All adversaries used by the integration test matrix, freshly seeded.
std::vector<std::unique_ptr<Adversary>> standard_adversaries(
    std::uint64_t seed);

}  // namespace bprc
