#include "runtime/thread_runtime.hpp"

#include <condition_variable>
#include <thread>
#include <utility>

#include "util/assert.hpp"

namespace bprc {

namespace {
thread_local ProcId tls_self = -1;
}  // namespace

ThreadRuntime::ThreadRuntime(int nprocs, std::uint64_t seed,
                             double yield_prob)
    : procs_(static_cast<std::size_t>(nprocs)), yield_prob_(yield_prob) {
  BPRC_REQUIRE(nprocs > 0, "runtime needs at least one process");
  Rng master(seed);
  for (auto& proc : procs_) {
    proc.rng = master.split(static_cast<std::uint64_t>(&proc - &procs_[0]));
  }
}

std::size_t ThreadRuntime::checked(ProcId p) const {
  BPRC_REQUIRE(p >= 0 && p < nprocs(), "process id out of range");
  return static_cast<std::size_t>(p);
}

void ThreadRuntime::spawn(ProcId p, std::function<void()> body) {
  Proc& proc = procs_[checked(p)];
  BPRC_REQUIRE(proc.body == nullptr, "process spawned twice");
  BPRC_REQUIRE(!ran_, "spawn after run");
  proc.body = std::move(body);
}

ProcId ThreadRuntime::self() const {
  BPRC_REQUIRE(tls_self >= 0, "self() called outside a process body");
  return tls_self;
}

void ThreadRuntime::checkpoint(const OpDesc& op) {
  (void)op;  // no adversary to show it to; the kernel schedules blindly
  if (stop_.load(std::memory_order_relaxed)) throw ProcessStopped{};
  Proc& me = procs_[checked(self())];
  me.steps.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t total =
      total_steps_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (total >= max_steps_) {
    raise_stop();
    throw ProcessStopped{};
  }
  if (yield_prob_ > 0.0 && me.rng.bernoulli(yield_prob_)) {
    std::this_thread::yield();
  }
}

void ThreadRuntime::raise_stop() {
  stop_.store(true, std::memory_order_relaxed);
  // Taking the lock orders this store before any subsequent park: a process
  // that enters rendezvous() after notify_all still observes stop_ under
  // park_mu_ and throws instead of sleeping forever.
  const std::scoped_lock lock(park_mu_);
  park_cv_.notify_all();
}

void ThreadRuntime::rendezvous(int expected) {
  BPRC_REQUIRE(expected >= 1 && expected <= nprocs(),
               "rendezvous expects between 1 and nprocs processes");
  (void)checked(self());  // must be called from a process body
  std::unique_lock lock(park_mu_);
  if (stop_.load(std::memory_order_relaxed)) throw ProcessStopped{};
  const std::uint64_t gen = park_gen_;
  if (++park_waiting_ >= expected) {
    park_waiting_ = 0;
    ++park_gen_;
    park_cv_.notify_all();
    return;
  }
  park_cv_.wait(lock, [&] {
    return park_gen_ != gen || stop_.load(std::memory_order_relaxed);
  });
  if (park_gen_ == gen) {
    // Woken by raise_stop(), not by the barrier tripping: leave the
    // barrier's count consistent and unwind.
    --park_waiting_;
    throw ProcessStopped{};
  }
}

Rng& ThreadRuntime::rng() { return procs_[checked(self())].rng; }

void ThreadRuntime::publish_hint(const Hint& hint) {
  const std::scoped_lock lock(hint_mutex_);
  procs_[checked(self())].hint = hint;
}

std::uint64_t ThreadRuntime::steps(ProcId p) const {
  return procs_[checked(p)].steps.load(std::memory_order_relaxed);
}

RunResult ThreadRuntime::run(std::uint64_t max_steps,
                             std::chrono::nanoseconds deadline) {
  BPRC_REQUIRE(!ran_, "run() may only be called once per ThreadRuntime");
  ran_ = true;
  max_steps_ = max_steps;

  {
    // The watchdog sleeps until the deadline (or until the workers are
    // done and its stop is requested), then raises the global stop flag so
    // every worker unwinds at its next checkpoint.
    std::jthread watchdog;
    if (deadline > std::chrono::nanoseconds::zero()) {
      watchdog = std::jthread([this, deadline](std::stop_token st) {
        std::mutex m;
        std::condition_variable_any cv;
        std::unique_lock lock(m);
        const bool stopped = cv.wait_for(
            lock, st, deadline, [&st] { return st.stop_requested(); });
        if (!stopped) {
          deadline_hit_.store(true, std::memory_order_relaxed);
          raise_stop();
        }
      });
    }
    {
      std::vector<std::jthread> threads;
      threads.reserve(procs_.size());
      for (std::size_t i = 0; i < procs_.size(); ++i) {
        if (procs_[i].body == nullptr) continue;
        threads.emplace_back([this, i] {
          tls_self = static_cast<ProcId>(i);
          try {
            procs_[i].body();
          } catch (const ProcessStopped&) {
            // Budget/deadline exhausted: unwind quietly.
          }
          tls_self = -1;
        });
      }
    }  // worker jthreads join here
  }  // watchdog stop requested + joined here

  RunResult result;
  result.steps = total_steps_.load();
  if (deadline_hit_.load()) {
    result.reason = RunResult::Reason::kDeadline;
  } else {
    result.reason = stop_.load() ? RunResult::Reason::kBudget
                                 : RunResult::Reason::kAllDone;
  }
  return result;
}

}  // namespace bprc
