// Stackful fibers: the execution substrate of the deterministic simulator.
//
// The simulator multiplexes n simulated processes onto one OS thread (the
// host has a single core), switching between them at shared-memory
// checkpoints. A switch saves/restores only the callee-saved registers and
// the stack pointer (System V x86-64), taking ~20ns — three orders of
// magnitude cheaper than gating OS threads with condition variables, which
// is what makes 10^8-step Monte-Carlo experiments feasible.
//
// A ucontext-based fallback (CMake option BPRC_FIBER_UCONTEXT) exists for
// non-x86-64 hosts; it is functionally identical but pays a sigprocmask
// syscall per switch.
#pragma once

#include <cstddef>
#include <functional>

#if defined(BPRC_FIBER_USE_UCONTEXT)
#include <ucontext.h>
#endif

namespace bprc {

/// Recycles fiber stacks across Fiber lifetimes. A 256 KiB allocation sits
/// above glibc's mmap threshold, so constructing and destroying one fiber
/// per simulated process per Monte-Carlo trial costs an mmap/munmap pair
/// plus fresh page faults every run; the pool keeps a bounded free list of
/// warm stacks instead. Thread-local — fibers are created and destroyed on
/// the thread that runs them.
class FiberStackPool {
 public:
  /// A stack of Fiber::kStackSize bytes, recycled when available.
  static char* acquire();

  /// Returns a stack to the pool (freed outright once the pool is full).
  static void release(char* stack);

  /// Frees every cached stack. Useful for leak-checked teardown.
  static void clear();

  /// Number of stacks currently cached on this thread.
  static std::size_t cached();

 private:
  static constexpr std::size_t kMaxCached = 64;
};

/// A cooperatively scheduled stackful coroutine. Not movable: the running
/// fiber's stack frames hold pointers into this object.
class Fiber {
 public:
  static constexpr std::size_t kStackSize = 256 * 1024;

  /// Creates a suspended fiber that will execute `body` when first resumed.
  /// The body must not outlive the Fiber and must not throw.
  explicit Fiber(std::function<void()> body);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Transfers control from the scheduler to this fiber. Returns when the
  /// fiber next yields or finishes. Must be called from scheduler context
  /// (never from inside another fiber's resume).
  void resume();

  /// Transfers control from inside this fiber back to whoever resumed it.
  /// Must be called from within the fiber's body.
  void yield();

  /// True when switch_to() is available: direct fiber→fiber transfer
  /// without bouncing through the scheduler, halving the switch cost of a
  /// reschedule. Compiled out under AddressSanitizer (its fake-stack
  /// annotations assume strictly nested scheduler↔fiber switches) and in
  /// the ucontext fallback; callers must then park and let the scheduler
  /// resume the target — observably identical, one swap slower.
  static constexpr bool kDirectHandoff =
#if defined(__SANITIZE_ADDRESS__) || defined(BPRC_FIBER_USE_UCONTEXT)
      false;
#else
      true;
#endif

  /// Switches from inside this (running) fiber directly into `next`
  /// (suspended), handing over the link back to the scheduler: when `next`
  /// later yields or finishes, control returns to whoever resumed *this*.
  /// Returns when something switches back into this fiber. Only when
  /// kDirectHandoff.
  void switch_to(Fiber& next);

  /// True once `body` has returned. A finished fiber must not be resumed.
  bool finished() const { return finished_; }

 private:
  std::function<void()> body_;
  char* stack_;  ///< owned; returned to FiberStackPool on destruction
  bool finished_ = false;
  bool running_ = false;

#if defined(__SANITIZE_ADDRESS__)
  // AddressSanitizer must be told about every stack switch
  // (__sanitizer_start_switch_fiber / finish_switch_fiber), else its
  // fake-stack bookkeeping misfires when exceptions unwind fiber stacks.
  void* asan_fiber_fake_ = nullptr;   ///< fiber-side fake-stack save
  void* asan_sched_fake_ = nullptr;   ///< scheduler-side fake-stack save
  const void* asan_sched_bottom_ = nullptr;
  std::size_t asan_sched_size_ = 0;
 public:
  /// Internal (trampoline) hooks — do not call.
  void asan_on_first_entry();
 private:
#endif

#if defined(BPRC_FIBER_USE_UCONTEXT)
  ucontext_t self_ctx_;
  ucontext_t return_ctx_;
#else
  void* self_sp_ = nullptr;    // fiber's saved stack pointer while suspended
  void* return_sp_ = nullptr;  // scheduler's saved stack pointer while fiber runs
#endif
};

}  // namespace bprc
