// Abstract execution environment for n asynchronous processes.
//
// The paper's model: n completely asynchronous processes, scheduled by a
// strong (adaptive) adversary, communicating only through atomic registers.
// A Runtime realizes that model. Algorithm code is written once against
// this interface and runs unchanged on:
//   * SimRuntime    — deterministic single-threaded fiber scheduler where a
//                     pluggable Adversary picks who moves at every shared-
//                     memory operation (the strong-adversary model, exactly);
//   * ThreadRuntime — std::jthread preemptive execution (the OS scheduler
//                     plays the adversary).
//
// The unit of time is one primitive shared-memory operation ("step"), the
// complexity measure used by the paper's lemmas.
#pragma once

#include <cstdint>
#include <exception>
#include <string>

#include "util/rng.hpp"

namespace bprc {

using ProcId = int;

/// Lamport's register hierarchy, weakest-to-strongest ordering inverted:
/// the knob *weakens* the registers the runtime hands to algorithm code.
///   * kAtomic  — reads linearize with writes (the default; every result
///                before PR 9 assumed this);
///   * kRegular — a read concurrent with a write may return the old value
///                or the new one (either choice per read, so successive
///                reads may observe new-then-old: the "new/old inversion"
///                regular registers permit and atomic ones forbid);
///   * kSafe    — a read concurrent with a write may return *any* value
///                the register ever legally held (approximated by the
///                recent write history; see docs/REGISTER_SEMANTICS.md).
/// The adversary — not a PRNG — resolves every weakened read, so the
/// explorer can branch over the choices and replays are bit-identical.
enum class RegisterSemantics : std::uint8_t { kAtomic = 0, kRegular, kSafe };

inline const char* to_string(RegisterSemantics s) {
  switch (s) {
    case RegisterSemantics::kAtomic:  return "atomic";
    case RegisterSemantics::kRegular: return "regular";
    case RegisterSemantics::kSafe:    return "safe";
  }
  return "?";
}

/// Parses a semantics name; false on anything unrecognized (artifact
/// parsers must reject, not guess).
inline bool register_semantics_from_string(const std::string& name,
                                           RegisterSemantics* out) {
  for (const RegisterSemantics s :
       {RegisterSemantics::kAtomic, RegisterSemantics::kRegular,
        RegisterSemantics::kSafe}) {
    if (name == to_string(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

/// One weakened read awaiting resolution: process `reader` is reading
/// `object` while `writer` has a write to it in flight (announced at its
/// checkpoint, not yet executed). The runtime asks the adversary for a
/// choice in [0, options):
///   0          — the last committed value: what an atomic read returns;
///   1          — the in-flight write's value (the "new" value a regular
///                register may serve to an overlapping read);
///   k in [2, options) — the (k-1)-th most recent *older* committed value
///                (kSafe only; see docs/REGISTER_SEMANTICS.md).
struct StaleRead {
  int object = -1;    ///< OpDesc-style object id (-1 when unassigned)
  ProcId reader = -1;
  ProcId writer = -1;
  int options = 2;    ///< number of selectable values, >= 2
};

/// Description of the shared-memory operation a process is about to
/// perform. Published at every checkpoint, and visible to the adversary —
/// the "strong" adversary of the randomized-consensus literature sees the
/// value a process is about to write (it has already observed the local
/// coin flip) and may delay the write arbitrarily.
struct OpDesc {
  enum class Kind : std::uint8_t { kNone, kRead, kWrite };
  Kind kind = Kind::kNone;
  int object = -1;           ///< component-assigned shared-object id
  std::int64_t payload = 0;  ///< value being written, when meaningful
};

/// Digest of a process's protocol state, published at checkpoints for
/// adaptive adversaries. Everything in here is information the strong
/// adversary legitimately has (full knowledge of all process states and
/// past coin flips).
struct Hint {
  std::int32_t round = 0;    ///< protocol round (local view)
  std::int8_t pref = -1;     ///< 0/1 preference, 2 = ⊥ ("undecided"), -1 = n/a
  std::int8_t walk_delta = 0;///< ±1 when the pending write moves a walk counter
  std::int64_t counter = 0;  ///< this process's current walk-counter value
  bool decided = false;      ///< process has irrevocably decided
};

/// Observer for shared-memory traffic, consumed by the exploration driver
/// (src/explore/) to fingerprint global states for its seen-state cache.
///// Registers query Runtime::trace_sink() at *construction* and call the
/// hooks after each completed primitive operation; a runtime that returns
/// nullptr (the default, and every runtime outside exploration) pays a
/// single cached null check per register. Install a sink before
/// constructing the shared objects that should report to it.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Called once per shared object at construction; returns the object's
  /// dense trace id (a fresh sequential int). Unlike OpDesc::object —
  /// which components may leave at -1 or reuse across instances — trace
  /// ids are unique per object per run, which is what state
  /// fingerprinting needs.
  virtual int on_object_created() = 0;

  /// A completed atomic read/write of the object with trace id `object`
  /// by process `p`.
  virtual void on_read(ProcId p, int object) = 0;
  virtual void on_write(ProcId p, int object) = 0;

  /// Escape hatch for primitives outside the read/write model (e.g. the
  /// strong-coin AtomicCoinFlip): `digest` summarizes the operation and
  /// its result, `mutates` says whether shared state changed.
  virtual void on_event(ProcId p, int object, std::uint64_t digest,
                        bool mutates) = 0;
};

/// One recorded native shared-memory operation (src/registers/native/).
/// The offline weak-memory analysis (src/verify/weakmem/) consumes
/// per-thread lists of these: program order comes from (thread, seq),
/// reads-from and modification order from the version fields, which the
/// native registers derive exactly by packing a per-location write version
/// next to the payload inside the atomic word.
struct MemAction {
  enum class Kind : std::uint8_t { kLoad, kStore, kRmw };
  ProcId thread = -1;
  std::uint32_t seq = 0;      ///< program-order index within `thread`
  int location = -1;          ///< dense id from MemActionSink::on_location
  Kind kind = Kind::kLoad;
  /// static_cast of the std::memory_order the operation used. Recorded so
  /// artifacts state the order under analysis, not just the outcome.
  std::uint8_t order = 0;
  std::uint64_t value = 0;    ///< payload read (loads) or written (stores)
  /// Version of the write this operation read from; 0 = initial value.
  /// Meaningful for kLoad and kRmw.
  std::uint64_t rf = 0;
  /// Version this operation wrote — its position in the location's
  /// modification order (1-based; 0 = "not yet flushed", see patch_mo).
  /// Meaningful for kStore and kRmw.
  std::uint64_t mo = 0;
};

/// Observer for native atomic traffic, the weak-memory analogue of
/// TraceSink. Native registers cache the pointer at construction
/// (Runtime::mem_sink()); a null sink — the default, and every run
/// outside the native verification lane — costs one cached null check
/// per operation.
///
/// Threading contract: on_action is called from the acting process's
/// thread; implementations keep one log per thread so recording is
/// lock-free. patch_mo touches only entries of the named thread and is
/// called either from that thread or after the run has joined.
class MemActionSink {
 public:
  virtual ~MemActionSink() = default;

  /// Called once per native shared location at construction; returns its
  /// dense location id. `initial` is the location's initial payload
  /// (what version-0 reads observe); `name` is for human-readable
  /// reports and artifacts.
  virtual int on_location(const char* name, std::uint64_t initial) = 0;

  /// Appends a completed operation to `a.thread`'s log; returns the
  /// index of the entry in that log (for patch_mo).
  virtual std::size_t on_action(const MemAction& a) = 0;

  /// Late modification-order assignment for buffered stores: the
  /// deliberately-broken relaxed register records its store in program
  /// order but only learns the write's position in the location's
  /// modification order when the emulated store buffer flushes.
  virtual void patch_mo(ProcId thread, std::size_t index,
                        std::uint64_t mo) = 0;
};

/// Thrown out of checkpoint() to unwind a process that the runtime is
/// shutting down (crashed by the adversary, or the step budget is
/// exhausted). Algorithm code must let it propagate — RAII-only cleanup.
class ProcessStopped : public std::exception {
 public:
  const char* what() const noexcept override {
    return "bprc process stopped by runtime";
  }
};

/// Why a run() returned.
struct RunResult {
  enum class Reason {
    kAllDone,   ///< every non-crashed process finished its body
    kBudget,    ///< the step budget was exhausted first
    kNoRunnable,///< every unfinished process was crashed
    kDeadline   ///< the wall-clock watchdog fired (livelock guard)
  };
  Reason reason = Reason::kAllDone;
  std::uint64_t steps = 0;  ///< total primitive operations executed
};

inline const char* to_string(RunResult::Reason r) {
  switch (r) {
    case RunResult::Reason::kAllDone:    return "all-done";
    case RunResult::Reason::kBudget:     return "budget";
    case RunResult::Reason::kNoRunnable: return "no-runnable";
    case RunResult::Reason::kDeadline:   return "deadline";
  }
  return "?";
}

class Runtime {
 public:
  virtual ~Runtime() = default;

  virtual int nprocs() const = 0;

  /// True when process bodies may run on distinct OS threads, i.e. shared
  /// objects need real synchronization. The fiber simulator returns false
  /// — its registers then skip their internal mutexes, which otherwise
  /// cost an uncontended lock/unlock pair on every primitive operation.
  /// Components must treat the value as fixed for the runtime's lifetime.
  virtual bool concurrent() const { return true; }

  /// Id of the calling process. Only valid from inside a process body.
  virtual ProcId self() const = 0;

  /// Scheduling point, called by every register primitive immediately
  /// before its atomic action. May throw ProcessStopped.
  virtual void checkpoint(const OpDesc& op) = 0;

  /// Strictly increasing logical clock; each call returns a fresh tick.
  /// Used by components to timestamp operation intervals for the
  /// verification library.
  virtual std::uint64_t now() = 0;

  /// The calling process's private deterministic random source (its local
  /// coin). Only valid from inside a process body.
  virtual Rng& rng() = 0;

  /// Publishes the caller's protocol-state digest (see Hint).
  virtual void publish_hint(const Hint& hint) = 0;

  /// Primitive operations executed by process p so far.
  virtual std::uint64_t steps(ProcId p) const = 0;

  /// Primitive operations executed by all processes so far.
  virtual std::uint64_t total_steps() const = 0;

  /// Register semantics this runtime enforces. Registers cache the value
  /// at construction (like trace_sink), so set it before building shared
  /// state. The default — and the only value non-simulated runtimes ever
  /// report — is atomic: the weakened overlay needs the simulator's
  /// step accounting to define write-in-flight windows.
  virtual RegisterSemantics register_semantics() const {
    return RegisterSemantics::kAtomic;
  }

  /// Resolves one weakened concurrent read (see StaleRead). The simulator
  /// forwards to its adversary; the default picks 0 — the atomic answer.
  virtual int resolve_stale_read(const StaleRead& sr) {
    (void)sr;
    return 0;
  }

  /// The installed shared-memory observer, or nullptr (default). Shared
  /// objects cache this at construction; see TraceSink.
  virtual TraceSink* trace_sink() const { return nullptr; }

  /// The installed native-atomics observer, or nullptr (default). Native
  /// registers cache this at construction; see MemActionSink.
  virtual MemActionSink* mem_sink() const { return nullptr; }
};

}  // namespace bprc
