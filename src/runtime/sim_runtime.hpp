// Deterministic simulator: the strong-adversary execution model.
//
// One fiber per simulated process; at every shared-memory operation the
// process parks and the Adversary chooses who moves next. Given the same
// seed, adversary, and process bodies, a run is bit-for-bit reproducible —
// every property-test counterexample is replayable.
//
// Scheduling fast path: when the adversary re-picks the process that is
// already running, checkpoint() consults it inline and simply returns —
// no park, no fiber switch, no heap traffic (docs/PERFORMANCE.md states
// the invariant this relies on). The adversary cannot tell the difference:
// it observes the exact same ProcView sequence either way.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/adversary.hpp"
#include "runtime/fiber.hpp"
#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace bprc {

class SimRuntime final : public Runtime, private SimCtl {
 public:
  /// `seed` derives every process's local coin; the adversary carries its
  /// own seed.
  SimRuntime(int nprocs, std::unique_ptr<Adversary> adversary,
             std::uint64_t seed);
  ~SimRuntime() override;

  /// Re-arms this runtime for a fresh run without reconstructing it: the
  /// process table is rebuilt, old fibers are destroyed (their stacks
  /// return to the FiberStackPool), counters are zeroed, and per-process
  /// RNGs are re-derived from `seed` exactly as the constructor does. A
  /// reset runtime is observably identical to a freshly constructed one —
  /// bit-identical traces (tests/test_sim_runtime.cpp pins this).
  void reset(int nprocs, std::unique_ptr<Adversary> adversary,
             std::uint64_t seed);

  /// Registers the body of process p. Must be called before run(); the
  /// body starts executing only when the adversary first schedules p.
  void spawn(ProcId p, std::function<void()> body);

  /// Installs a shared-memory observer (see Runtime::TraceSink docs). Not
  /// owned; cleared by reset(). Must be installed *before* the shared
  /// objects that should report are constructed — registers cache the
  /// sink pointer at construction.
  void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }

  /// Selects the register semantics the simulation runs under (see
  /// RegisterSemantics). Like set_trace_sink, must be called *before* the
  /// shared objects are constructed — registers cache the value — and is
  /// reset to kAtomic by reset(). Under kRegular/kSafe the adversary's
  /// resolve_read is consulted for every read that overlaps an in-flight
  /// write.
  void set_register_semantics(RegisterSemantics s) { semantics_ = s; }

  /// Installs a flip interposer on every process's local coin (see
  /// FlipTape). Not owned; cleared by reset(). The adversary's own Rng
  /// (if any) is unaffected — only process-local coins are taped.
  void set_flip_tape(FlipTape* tape) {
    for (ProcState& st : states_) st.rng.set_flip_tape(tape);
  }

  /// Drives the simulation until every non-crashed process finishes or
  /// `max_steps` primitive operations have been executed. On return, all
  /// unfinished fibers have been unwound (ProcessStopped) so RAII cleanup
  /// ran; the shared-memory history up to that point is untouched.
  ///
  /// `deadline` is a wall-clock watchdog for torture campaigns: a run
  /// that is still going after that much real time aborts with
  /// Reason::kDeadline (checked every few thousand steps, so overshoot is
  /// bounded). Zero disables the watchdog. Deadline aborts are the only
  /// non-deterministic exit — replay tooling must not rely on them.
  RunResult run(std::uint64_t max_steps,
                std::chrono::nanoseconds deadline = std::chrono::nanoseconds::zero());

  bool crashed(ProcId p) const { return views_[checked(p)].crashed; }
  bool finished(ProcId p) const { return views_[checked(p)].finished; }
  const Hint& hint(ProcId p) const { return views_[checked(p)].hint; }

  // --- Runtime interface (called from inside process bodies) ---
  int nprocs() const override { return static_cast<int>(views_.size()); }
  bool concurrent() const override { return false; }  // one OS thread
  ProcId self() const override { return current_; }
  void checkpoint(const OpDesc& op) override;
  std::uint64_t now() override { return ++now_; }
  Rng& rng() override;
  void publish_hint(const Hint& hint) override;
  std::uint64_t steps(ProcId p) const override {
    return views_[checked(p)].steps;
  }
  std::uint64_t total_steps() const override { return total_steps_; }
  TraceSink* trace_sink() const override { return trace_sink_; }
  RegisterSemantics register_semantics() const override { return semantics_; }
  int resolve_stale_read(const StaleRead& sr) override {
    return adversary_->resolve_read(*this, sr);
  }

 private:
  /// Per-process state the adversary never sees; the visible half lives in
  /// views_ (contiguous, so adversary scans are cache-linear and reachable
  /// without a virtual call — see SimCtl::view).
  struct ProcState {
    std::unique_ptr<Fiber> fiber;
    Rng rng{0};
    bool stop = false;            ///< next checkpoint must throw
    bool stop_delivered = false;  ///< ProcessStopped already thrown once
  };

  // --- SimCtl interface (called by the adversary) ---
  const SimCtl::ProcView& proc(ProcId p) const override {
    return views_[checked(p)];
  }
  std::uint64_t step() const override { return total_steps_; }
  void crash(ProcId p) override;

  /// Shared constructor/reset body.
  void init(int nprocs, std::unique_ptr<Adversary> adversary,
            std::uint64_t seed);

  std::size_t checked(ProcId p) const;
  bool any_runnable() const;
  /// Keep the O(1) runnable digest (SimCtl::runnable_mask) in sync with
  /// views_[ix].runnable. Digest bits exist only for ids <
  /// kRunnableMaskBits; beyond that fast_mask_ stays null and everything
  /// scans views_ instead.
  void mask_set(std::size_t ix) {
    if (ix < kRunnableMaskBits) runnable_mask_ |= std::uint64_t{1} << ix;
  }
  void mask_clear(std::size_t ix) {
    if (ix < kRunnableMaskBits) runnable_mask_ &= ~(std::uint64_t{1} << ix);
  }
  /// True when the wall-clock watchdog is armed, due for a check at the
  /// current step count, and expired.
  bool watchdog_expired() const;
  void unwind_survivors();

  // The watchdog reads steady_clock only every kWatchdogStride steps: a
  // clock read per primitive operation would dominate small runs.
  static constexpr std::uint64_t kWatchdogStride = 4096;

  std::vector<SimCtl::ProcView> views_;  ///< adversary-visible, contiguous
  std::vector<ProcState> states_;        ///< same index as views_
  TraceSink* trace_sink_ = nullptr;      ///< not owned; cleared by reset()
  RegisterSemantics semantics_ = RegisterSemantics::kAtomic;
  std::uint64_t runnable_mask_ = 0;      ///< bit p = views_[p].runnable
  std::unique_ptr<Adversary> adversary_;
  ProcId current_ = -1;
  std::uint64_t total_steps_ = 0;
  std::uint64_t now_ = 0;
  bool ran_ = false;

  // --- run-loop state shared with the checkpoint fast path ---
  bool in_run_ = false;          ///< checkpoint may consult the adversary
  bool has_pending_pick_ = false;
  ProcId pending_pick_ = -1;     ///< pick made inline, consumed by run()
  std::uint64_t max_steps_ = 0;
  bool watched_ = false;
  std::chrono::steady_clock::time_point deadline_at_{};
};

}  // namespace bprc
