// Deterministic simulator: the strong-adversary execution model.
//
// One fiber per simulated process; at every shared-memory operation the
// process parks and the Adversary chooses who moves next. Given the same
// seed, adversary, and process bodies, a run is bit-for-bit reproducible —
// every property-test counterexample is replayable.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/adversary.hpp"
#include "runtime/fiber.hpp"
#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace bprc {

class SimRuntime final : public Runtime, private SimCtl {
 public:
  /// `seed` derives every process's local coin; the adversary carries its
  /// own seed.
  SimRuntime(int nprocs, std::unique_ptr<Adversary> adversary,
             std::uint64_t seed);
  ~SimRuntime() override;

  /// Registers the body of process p. Must be called before run(); the
  /// body starts executing only when the adversary first schedules p.
  void spawn(ProcId p, std::function<void()> body);

  /// Drives the simulation until every non-crashed process finishes or
  /// `max_steps` primitive operations have been executed. On return, all
  /// unfinished fibers have been unwound (ProcessStopped) so RAII cleanup
  /// ran; the shared-memory history up to that point is untouched.
  ///
  /// `deadline` is a wall-clock watchdog for torture campaigns: a run
  /// that is still going after that much real time aborts with
  /// Reason::kDeadline (checked every few thousand steps, so overshoot is
  /// bounded). Zero disables the watchdog. Deadline aborts are the only
  /// non-deterministic exit — replay tooling must not rely on them.
  RunResult run(std::uint64_t max_steps,
                std::chrono::nanoseconds deadline = std::chrono::nanoseconds::zero());

  bool crashed(ProcId p) const { return procs_[checked(p)].view.crashed; }
  bool finished(ProcId p) const { return procs_[checked(p)].view.finished; }
  const Hint& hint(ProcId p) const { return procs_[checked(p)].view.hint; }

  // --- Runtime interface (called from inside process bodies) ---
  int nprocs() const override { return static_cast<int>(procs_.size()); }
  ProcId self() const override { return current_; }
  void checkpoint(const OpDesc& op) override;
  std::uint64_t now() override { return ++now_; }
  Rng& rng() override;
  void publish_hint(const Hint& hint) override;
  std::uint64_t steps(ProcId p) const override {
    return procs_[checked(p)].view.steps;
  }
  std::uint64_t total_steps() const override { return total_steps_; }

 private:
  struct Proc {
    std::unique_ptr<Fiber> fiber;
    SimCtl::ProcView view;
    Rng rng{0};
    bool stop = false;            ///< next checkpoint must throw
    bool stop_delivered = false;  ///< ProcessStopped already thrown once
  };

  // --- SimCtl interface (called by the adversary) ---
  const SimCtl::ProcView& proc(ProcId p) const override {
    return procs_[checked(p)].view;
  }
  std::uint64_t step() const override { return total_steps_; }
  void crash(ProcId p) override;

  std::size_t checked(ProcId p) const;
  bool any_runnable() const;
  void unwind_survivors();

  std::vector<Proc> procs_;
  std::unique_ptr<Adversary> adversary_;
  ProcId current_ = -1;
  std::uint64_t total_steps_ = 0;
  std::uint64_t now_ = 0;
  bool ran_ = false;
};

}  // namespace bprc
