// Preemptive runtime: real OS threads, the kernel scheduler as adversary.
//
// Complements the deterministic simulator with genuinely concurrent
// execution: register implementations must be linearizable under real
// data races, not just under the simulator's serialized steps. On the
// single-core host, optional random yields at checkpoints coax the kernel
// into diverse interleavings.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace bprc {

class ThreadRuntime final : public Runtime {
 public:
  /// `yield_prob` is the probability that a checkpoint calls
  /// std::this_thread::yield() — interleaving jitter for a 1-core host.
  ThreadRuntime(int nprocs, std::uint64_t seed, double yield_prob = 0.05);

  /// Registers the body of process p. Must be called before run().
  void spawn(ProcId p, std::function<void()> body);

  /// Starts one jthread per spawned process and joins them all. When the
  /// step budget is exhausted, checkpoints start throwing ProcessStopped
  /// and remaining threads unwind.
  ///
  /// `deadline` arms a watchdog thread: once the wall-clock budget
  /// elapses, every subsequent checkpoint throws ProcessStopped and the
  /// run returns Reason::kDeadline instead of hanging CI forever. The
  /// watchdog can only interrupt code that still reaches checkpoints (a
  /// thread wedged inside a primitive is beyond rescue without kill());
  /// protocol code checkpoints at every shared-memory operation, which is
  /// exactly where livelocks spin. Zero disables the watchdog.
  RunResult run(std::uint64_t max_steps,
                std::chrono::nanoseconds deadline = std::chrono::nanoseconds::zero());

  // --- Runtime interface ---
  int nprocs() const override { return static_cast<int>(procs_.size()); }
  ProcId self() const override;
  void checkpoint(const OpDesc& op) override;
  std::uint64_t now() override { return now_.fetch_add(1) + 1; }
  Rng& rng() override;
  void publish_hint(const Hint& hint) override;
  std::uint64_t steps(ProcId p) const override;
  std::uint64_t total_steps() const override { return total_steps_.load(); }

 private:
  struct Proc {
    std::function<void()> body;
    Rng rng{0};
    std::atomic<std::uint64_t> steps{0};
    Hint hint;  ///< guarded by hint_mutex_
  };

  std::size_t checked(ProcId p) const;

  std::vector<Proc> procs_;
  double yield_prob_;
  std::atomic<std::uint64_t> total_steps_{0};
  std::atomic<std::uint64_t> now_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> deadline_hit_{false};
  std::uint64_t max_steps_ = 0;
  mutable std::mutex hint_mutex_;
  bool ran_ = false;
};

}  // namespace bprc
