// Preemptive runtime: real OS threads, the kernel scheduler as adversary.
//
// Complements the deterministic simulator with genuinely concurrent
// execution: register implementations must be linearizable under real
// data races, not just under the simulator's serialized steps. On the
// single-core host, optional random yields at checkpoints coax the kernel
// into diverse interleavings.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace bprc {

class ThreadRuntime final : public Runtime {
 public:
  /// `yield_prob` is the probability that a checkpoint calls
  /// std::this_thread::yield() — interleaving jitter for a 1-core host.
  ThreadRuntime(int nprocs, std::uint64_t seed, double yield_prob = 0.05);

  /// Registers the body of process p. Must be called before run().
  void spawn(ProcId p, std::function<void()> body);

  /// Starts one jthread per spawned process and joins them all. When the
  /// step budget is exhausted, checkpoints start throwing ProcessStopped
  /// and remaining threads unwind.
  ///
  /// `deadline` arms a watchdog thread: once the wall-clock budget
  /// elapses, every subsequent checkpoint throws ProcessStopped and the
  /// run returns Reason::kDeadline instead of hanging CI forever. The
  /// watchdog can only interrupt code that still reaches checkpoints (a
  /// thread wedged inside a primitive is beyond rescue without kill());
  /// protocol code checkpoints at every shared-memory operation, which is
  /// exactly where livelocks spin. Zero disables the watchdog.
  RunResult run(std::uint64_t max_steps,
                std::chrono::nanoseconds deadline = std::chrono::nanoseconds::zero());

  /// Parked checkpoint: blocks the calling process until `expected`
  /// processes (itself included) are parked here, then releases them all
  /// at once. Native litmus workloads use it as a start gate so the
  /// contending operations genuinely overlap instead of running in spawn
  /// order. The wait is stop-aware: the watchdog's deadline, the step
  /// budget, and run teardown all wake parked processes, which then
  /// unwind via ProcessStopped — a parked process can never outlive its
  /// run (regression-tested in test_thread_runtime).
  void rendezvous(int expected);

  /// Installs (or clears, with nullptr) the shared-memory observer.
  /// Must be set before the shared objects that should report to it are
  /// constructed — they cache the pointer (see TraceSink).
  void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }

  /// Installs (or clears, with nullptr) the native-atomics observer;
  /// same caching contract as set_trace_sink.
  void set_mem_sink(MemActionSink* sink) { mem_sink_ = sink; }

  // --- Runtime interface ---
  int nprocs() const override { return static_cast<int>(procs_.size()); }
  ProcId self() const override;
  void checkpoint(const OpDesc& op) override;
  std::uint64_t now() override { return now_.fetch_add(1) + 1; }
  Rng& rng() override;
  void publish_hint(const Hint& hint) override;
  std::uint64_t steps(ProcId p) const override;
  std::uint64_t total_steps() const override { return total_steps_.load(); }
  TraceSink* trace_sink() const override { return trace_sink_; }
  MemActionSink* mem_sink() const override { return mem_sink_; }

 private:
  struct Proc {
    std::function<void()> body;
    Rng rng{0};
    std::atomic<std::uint64_t> steps{0};
    Hint hint;  ///< guarded by hint_mutex_
  };

  std::size_t checked(ProcId p) const;

  /// Sets stop_ and wakes every process parked in rendezvous(). All paths
  /// that begin teardown (budget exhaustion, watchdog deadline) go through
  /// here so a parked process cannot sleep through the shutdown.
  void raise_stop();

  std::vector<Proc> procs_;
  double yield_prob_;
  std::atomic<std::uint64_t> total_steps_{0};
  std::atomic<std::uint64_t> now_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> deadline_hit_{false};
  std::uint64_t max_steps_ = 0;
  mutable std::mutex hint_mutex_;
  bool ran_ = false;
  TraceSink* trace_sink_ = nullptr;
  MemActionSink* mem_sink_ = nullptr;

  // rendezvous() barrier state, guarded by park_mu_.
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::uint64_t park_gen_ = 0;
  int park_waiting_ = 0;
};

}  // namespace bprc
