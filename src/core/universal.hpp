// Universal construction — the fetch&cons of Herlihy [H88] that the
// paper's introduction names as the payoff of randomized consensus:
// "Such an algorithm provides a basis for constructing novel universal
//  synchronization primitives, such as the fetch and cons of [H88], or
//  the sticky bits of [P89]."
//
// UniversalLog lets n asynchronous processes agree on a single growing
// sequence of commands: a wait-free replicated log (equivalently: any
// object, by replaying the log through its sequential semantics — see
// Replicated<State> below). One multi-valued consensus instance decides
// each slot; wait-freedom comes from HELPING: before proposing, a process
// scans an announcement board of pending commands and proposes the
// pending command of process (slot mod n) if there is one, so every
// announced command wins a slot within at most n slots of its
// announcement, no matter how the adversary schedules.
//
// Commands are (pid, seq, payload) triples packed into one word; a command
// can win multiple slots when a helper races its owner (stale
// announcement), so readers deduplicate by (pid, seq) — the standard
// discipline for consensus-number-∞ universal objects.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "consensus/driver.hpp"
#include "consensus/multivalue.hpp"
#include "runtime/runtime.hpp"
#include "snapshot/scannable_memory.hpp"
#include "util/assert.hpp"

namespace bprc {

class UniversalLog {
 public:
  /// A command as seen by readers of the log.
  struct Entry {
    ProcId owner = -1;
    std::uint32_t seq = 0;       ///< owner-local sequence number (from 1)
    std::uint32_t payload = 0;   ///< user data (24 bits used)
  };

  /// `capacity` = maximum number of log slots (consensus instances are
  /// pre-allocated; the shared-memory model has no dynamic allocation).
  /// `binary_factory` powers the per-slot multi-valued agreement.
  UniversalLog(Runtime& rt, int capacity, ProtocolFactory binary_factory);

  /// Appends `payload` (24 bits) to the log: announces it, then drives
  /// slot consensus (helping others' pending commands on the way) until
  /// the command holds a slot. Returns the slot index. Wait-free given
  /// capacity: at most n slots are consumed per append in the worst case.
  int append(std::uint32_t payload);

  /// Number of slots this process knows to be decided (its local prefix
  /// knowledge; monotone, may trail other processes).
  int known_length(ProcId p) const {
    return known_length_[static_cast<std::size_t>(p)];
  }

  /// Decided entry of slot s as recorded by the driver of that slot;
  /// available to any caller after the run (test/inspection API).
  std::optional<Entry> decided(int slot) const;

  /// The deduplicated command sequence up to the first undecided slot:
  /// the abstract log value. Post-run inspection API.
  std::vector<Entry> log() const;

  int capacity() const { return static_cast<int>(slots_.size()); }

 private:
  struct Pending {
    bool active = false;
    std::uint32_t seq = 0;
    std::uint32_t payload = 0;

    friend bool operator==(const Pending& a, const Pending& b) {
      return a.active == b.active && a.seq == b.seq && a.payload == b.payload;
    }
  };

  static std::uint64_t encode(ProcId owner, std::uint32_t seq,
                              std::uint32_t payload);
  static Entry decode(std::uint64_t word);

  /// Drives consensus on `slot` (idempotent per process) and returns the
  /// decided entry.
  Entry drive_slot(int slot);

  Runtime& rt_;
  ScannableMemory<Pending> board_;
  std::vector<std::unique_ptr<MultiValueConsensus>> slots_;
  /// Per-process cache of decided slots (local, not shared).
  std::vector<std::vector<std::optional<Entry>>> local_decided_;
  std::vector<int> known_length_;
  std::vector<std::uint32_t> next_seq_;
};

/// Any sequential object, replicated: replay the universal log through a
/// transition function. Reads are local (on the known prefix); updates go
/// through append().
template <class State>
class Replicated {
 public:
  using Apply = std::function<void(State&, const UniversalLog::Entry&)>;

  Replicated(Runtime& rt, int capacity, ProtocolFactory binary_factory,
             State initial, Apply apply)
      : log_(rt, capacity, std::move(binary_factory)),
        initial_(std::move(initial)),
        apply_(std::move(apply)) {}

  /// Linearizes `payload` into the shared history; returns its slot.
  int update(std::uint32_t payload) { return log_.append(payload); }

  /// The state after replaying every decided slot (post-run inspection).
  State materialize() const {
    State state = initial_;
    for (const auto& entry : log_.log()) apply_(state, entry);
    return state;
  }

  const UniversalLog& raw_log() const { return log_; }

 private:
  UniversalLog log_;
  State initial_;
  Apply apply_;
};

}  // namespace bprc
