// bprc — Bounded Polynomial Randomized Consensus.
//
// Umbrella header: everything a downstream user needs to run wait-free
// randomized binary consensus among n asynchronous processes over atomic
// read/write registers, per Attiya–Dolev–Shavit (PODC 1989).
//
// Quick start (see examples/quickstart.cpp):
//
//   #include "core/api.hpp"
//   using namespace bprc;
//
//   auto result = run_consensus_threads(
//       [](Runtime& rt) {
//         return std::make_unique<BPRCConsensus>(
//             rt, BPRCParams::standard(rt.nprocs()));
//       },
//       /*inputs=*/{0, 1, 1, 0, 1}, /*seed=*/42, /*max_steps=*/10'000'000);
//   // result.decisions — one agreed bit for every process.
//
// Layer map (bottom-up):
//   runtime/    fibers, deterministic simulator, adversaries, threads
//   registers/  SWMR / MRMW atomic registers, Bloom 2W2R construction
//   snapshot/   scannable memory (§2) + unbounded baseline
//   coin/       bounded weak shared coin (§3)
//   strip/      token game, distance graph, edge counters, coin slots (§4)
//   timestamp/  bounded sequential timestamps (the [IL88]/[DS89] lineage)
//   consensus/  BPRC (§5) + A88 / AH88 / CIL87-style baselines,
//               multi-valued extension, run driver
//   core/       universal log (fetch&cons), sticky bits, Replicated<T>
//   verify/     linearizability + snapshot-property checkers
#pragma once

#include "coin/coin_logic.hpp"       // IWYU pragma: export
#include "coin/shared_coin.hpp"      // IWYU pragma: export
#include "coin/unbounded_coin.hpp"   // IWYU pragma: export
#include "consensus/abrahamson.hpp"  // IWYU pragma: export
#include "consensus/aspnes_herlihy.hpp"  // IWYU pragma: export
#include "consensus/bprc.hpp"        // IWYU pragma: export
#include "consensus/driver.hpp"      // IWYU pragma: export
#include "consensus/multivalue.hpp"  // IWYU pragma: export
#include "core/sticky.hpp"           // IWYU pragma: export
#include "core/universal.hpp"        // IWYU pragma: export
#include "consensus/protocol.hpp"    // IWYU pragma: export
#include "consensus/strong_coin.hpp" // IWYU pragma: export
#include "verify/linearizability.hpp"  // IWYU pragma: export
#include "verify/snapshot_linearizability.hpp"  // IWYU pragma: export
#include "verify/snapshot_props.hpp"   // IWYU pragma: export
#include "registers/bloom_2w2r.hpp"  // IWYU pragma: export
#include "registers/register.hpp"    // IWYU pragma: export
#include "runtime/adversary.hpp"     // IWYU pragma: export
#include "runtime/sim_runtime.hpp"   // IWYU pragma: export
#include "runtime/thread_runtime.hpp"  // IWYU pragma: export
#include "snapshot/baseline_snapshot.hpp"  // IWYU pragma: export
#include "snapshot/scannable_memory.hpp"   // IWYU pragma: export
#include "strip/coin_slots.hpp"      // IWYU pragma: export
#include "strip/distance_graph.hpp"  // IWYU pragma: export
#include "strip/edge_counters.hpp"   // IWYU pragma: export
#include "strip/token_game.hpp"      // IWYU pragma: export
#include "timestamp/bounded_timestamps.hpp"  // IWYU pragma: export
#include "util/env.hpp"              // IWYU pragma: export
#include "util/rng.hpp"              // IWYU pragma: export
#include "util/stats.hpp"            // IWYU pragma: export
#include "util/table.hpp"            // IWYU pragma: export
