#include "core/universal.hpp"

#include <algorithm>
#include <set>

namespace bprc {

namespace {
constexpr int kOwnerBits = 6;
constexpr int kSeqBits = 16;
constexpr int kPayloadBits = 16;
constexpr int kValueBits = kOwnerBits + kSeqBits + kPayloadBits;  // 38
}  // namespace

UniversalLog::UniversalLog(Runtime& rt, int capacity,
                           ProtocolFactory binary_factory)
    : rt_(rt),
      board_(rt, Pending{}),
      local_decided_(static_cast<std::size_t>(rt.nprocs())),
      known_length_(static_cast<std::size_t>(rt.nprocs()), 0),
      next_seq_(static_cast<std::size_t>(rt.nprocs()), 0) {
  BPRC_REQUIRE(capacity >= 1, "log needs at least one slot");
  BPRC_REQUIRE(rt.nprocs() < (1 << kOwnerBits),
               "process count exceeds the owner field");
  slots_.reserve(static_cast<std::size_t>(capacity));
  for (int s = 0; s < capacity; ++s) {
    slots_.push_back(std::make_unique<MultiValueConsensus>(rt_, kValueBits,
                                                           binary_factory));
  }
  for (auto& cache : local_decided_) {
    cache.assign(static_cast<std::size_t>(capacity), std::nullopt);
  }
}

std::uint64_t UniversalLog::encode(ProcId owner, std::uint32_t seq,
                                   std::uint32_t payload) {
  BPRC_REQUIRE(seq < (1u << kSeqBits), "sequence number exceeds field");
  BPRC_REQUIRE(payload < (1u << kPayloadBits), "payload exceeds field");
  return (static_cast<std::uint64_t>(owner)
          << (kSeqBits + kPayloadBits)) |
         (static_cast<std::uint64_t>(seq) << kPayloadBits) | payload;
}

UniversalLog::Entry UniversalLog::decode(std::uint64_t word) {
  Entry e;
  e.payload = static_cast<std::uint32_t>(word & ((1u << kPayloadBits) - 1));
  e.seq = static_cast<std::uint32_t>((word >> kPayloadBits) &
                                     ((1u << kSeqBits) - 1));
  e.owner =
      static_cast<ProcId>(word >> (kSeqBits + kPayloadBits));
  return e;
}

UniversalLog::Entry UniversalLog::drive_slot(int slot) {
  const ProcId me = rt_.self();
  auto& cache =
      local_decided_[static_cast<std::size_t>(me)][static_cast<std::size_t>(slot)];
  if (cache.has_value()) return *cache;

  // Helping policy: slot s belongs, by rotation, to process s mod n — if
  // that process has a pending command on the board, everyone proposes
  // it, so it wins by validity. Otherwise propose my own pending command;
  // otherwise any pending; otherwise an owner-stamped no-op.
  const std::vector<Pending> board = board_.scan();
  const int n = rt_.nprocs();
  const ProcId preferred = static_cast<ProcId>(slot % n);
  std::uint64_t proposal;
  if (board[static_cast<std::size_t>(preferred)].active) {
    const auto& p = board[static_cast<std::size_t>(preferred)];
    proposal = encode(preferred, p.seq, p.payload);
  } else if (board[static_cast<std::size_t>(me)].active) {
    const auto& p = board[static_cast<std::size_t>(me)];
    proposal = encode(me, p.seq, p.payload);
  } else {
    proposal = encode(me, 0, 0);  // no-op filler (seq 0 never announced)
    for (ProcId q = 0; q < n; ++q) {
      if (board[static_cast<std::size_t>(q)].active) {
        const auto& p = board[static_cast<std::size_t>(q)];
        proposal = encode(q, p.seq, p.payload);
        break;
      }
    }
  }

  const std::uint64_t decided =
      slots_[static_cast<std::size_t>(slot)]->propose(proposal);
  cache = decode(decided);
  known_length_[static_cast<std::size_t>(me)] = std::max(
      known_length_[static_cast<std::size_t>(me)], slot + 1);
  return *cache;
}

int UniversalLog::append(std::uint32_t payload) {
  const ProcId me = rt_.self();
  const std::uint32_t seq = ++next_seq_[static_cast<std::size_t>(me)];
  board_.write(Pending{true, seq, payload});

  for (int slot = known_length_[static_cast<std::size_t>(me)];
       slot < capacity(); ++slot) {
    const Entry e = drive_slot(slot);
    if (e.owner == me && e.seq == seq) {
      // Placed. Retire the announcement so helpers stop proposing it.
      board_.write(Pending{false, seq, payload});
      return slot;
    }
  }
  BPRC_REQUIRE(false,
               "log capacity exhausted — size UniversalLog for at least "
               "n slots per append");
  return -1;
}

std::optional<UniversalLog::Entry> UniversalLog::decided(int slot) const {
  BPRC_REQUIRE(slot >= 0 && slot < capacity(), "slot out of range");
  std::optional<Entry> result;
  for (const auto& cache : local_decided_) {
    const auto& entry = cache[static_cast<std::size_t>(slot)];
    if (!entry.has_value()) continue;
    if (result.has_value()) {
      BPRC_REQUIRE(result->owner == entry->owner &&
                       result->seq == entry->seq &&
                       result->payload == entry->payload,
                   "processes disagree on a decided slot");
    } else {
      result = entry;
    }
  }
  return result;
}

std::vector<UniversalLog::Entry> UniversalLog::log() const {
  std::vector<Entry> out;
  std::set<std::pair<ProcId, std::uint32_t>> seen;
  for (int slot = 0; slot < capacity(); ++slot) {
    const auto entry = decided(slot);
    if (!entry.has_value()) break;  // contiguous decided prefix only
    if (entry->seq == 0) continue;  // no-op filler
    if (!seen.insert({entry->owner, entry->seq}).second) {
      continue;  // duplicate win by a racing helper
    }
    out.push_back(*entry);
  }
  return out;
}

}  // namespace bprc
