// Sticky bits — the other universal primitive the paper's introduction
// names: "...novel universal synchronization primitives, such as the
// fetch and cons of [H88], or the sticky bits of [P89]."
//
// A sticky bit (Plotkin 1989) is a write-once object: initially ⊥; the
// first jam() to linearize sticks forever; every jam() returns the stuck
// value (not necessarily the caller's), and read() returns ⊥ until some
// stuck value is visible. Sticky bits have consensus number ∞, and with
// randomized consensus underneath they exist wait-free on plain bounded
// read/write registers — the paper's point.
//
// Implementation: one binary consensus instance arbitrates the sticky
// value; a scannable results board makes the outcome visible to pure
// readers (who never propose). StickyRegister generalizes to a
// `value_bits`-wide write-once word via multi-valued consensus.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "consensus/driver.hpp"
#include "consensus/multivalue.hpp"
#include "runtime/runtime.hpp"
#include "snapshot/scannable_memory.hpp"
#include "util/assert.hpp"

namespace bprc {

class StickyBit {
 public:
  StickyBit(Runtime& rt, const ProtocolFactory& factory)
      : rt_(rt), board_(rt, std::int8_t{-1}), bit_(factory(rt)) {}

  /// Attempts to stick `v` (0 or 1); returns the value the bit actually
  /// stuck to. Idempotent per process (later calls return the cached
  /// outcome; the underlying consensus is proposed to at most once).
  int jam(int v) {
    BPRC_REQUIRE(v == 0 || v == 1, "sticky bit takes a bit");
    const ProcId me = rt_.self();
    auto& cache = outcome_[static_cast<std::size_t>(me)];
    if (!cache.has_value()) {
      cache = bit_->propose(v);
      // Publish so that pure readers see the stuck value.
      board_.write(static_cast<std::int8_t>(*cache));
    }
    return *cache;
  }

  /// Returns the stuck value if any jam's publication is visible, ⊥
  /// (nullopt) otherwise. Never proposes — safe for processes that must
  /// not participate in the arbitration.
  std::optional<int> read() {
    const std::vector<std::int8_t> view = board_.scan();
    for (const std::int8_t b : view) {
      if (b >= 0) return static_cast<int>(b);
    }
    return std::nullopt;
  }

 private:
  Runtime& rt_;
  ScannableMemory<std::int8_t> board_;
  std::unique_ptr<ConsensusProtocol> bit_;
  /// Per-process jam outcome cache (local, indexed by ProcId).
  std::array<std::optional<int>, 64> outcome_;
};

/// Write-once word: first jam() sticks a `value_bits`-wide value.
class StickyRegister {
 public:
  StickyRegister(Runtime& rt, int value_bits, const ProtocolFactory& factory)
      : rt_(rt),
        board_(rt, Slot{}),
        word_(std::make_unique<MultiValueConsensus>(rt, value_bits, factory)) {
  }

  std::uint64_t jam(std::uint64_t v) {
    const ProcId me = rt_.self();
    auto& cache = outcome_[static_cast<std::size_t>(me)];
    if (!cache.has_value()) {
      cache = word_->propose(v);
      board_.write(Slot{true, *cache});
    }
    return *cache;
  }

  std::optional<std::uint64_t> read() {
    const auto view = board_.scan();
    for (const Slot& s : view) {
      if (s.stuck) return s.value;
    }
    return std::nullopt;
  }

 private:
  struct Slot {
    bool stuck = false;
    std::uint64_t value = 0;

    friend bool operator==(const Slot& a, const Slot& b) {
      return a.stuck == b.stuck && a.value == b.value;
    }
  };

  Runtime& rt_;
  ScannableMemory<Slot> board_;
  std::unique_ptr<MultiValueConsensus> word_;
  std::array<std::optional<std::uint64_t>, 64> outcome_;
};

}  // namespace bprc
