// Deliberately broken consensus protocols — test hooks for the torture
// harness itself.
//
// A fault-injection pipeline that has never caught a bug proves nothing:
// the harness's own acceptance test seeds a protocol with a known,
// schedule-dependent agreement bug and requires the campaign to catch it,
// the shrinker to minimize it, and the repro artifact to replay it. These
// protocols are registered behind a `broken` flag in the protocol
// registry and never enter the default campaign matrix.
#pragma once

#include <cstdint>
#include <vector>

#include "consensus/protocol.hpp"
#include "registers/register.hpp"
#include "runtime/runtime.hpp"

namespace bprc::fault {

/// Binary "consensus" with a textbook read-then-write race: each process
/// reads a shared decision register, and if it observes ⊥ writes its own
/// input and decides it; otherwise it adopts what it read. Any schedule
/// that lets two processes with different inputs both read ⊥ before
/// either write lands produces a consistency violation — and the minimal
/// such schedule is a handful of steps, which makes this the canonical
/// shrinker benchmark.
class RacyConsensus final : public ConsensusProtocol {
 public:
  explicit RacyConsensus(Runtime& rt)
      : rt_(rt),
        reg_(rt, /*initial=*/-1),
        decisions_(static_cast<std::size_t>(rt.nprocs()), -1) {}

  int propose(int input) override;
  std::string name() const override { return "broken-racy"; }
  int decision(ProcId p) const override {
    return decisions_[static_cast<std::size_t>(p)];
  }
  std::int64_t decision_round(ProcId p) const override {
    return decisions_[static_cast<std::size_t>(p)] == -1 ? 0 : 1;
  }
  MemoryFootprint footprint() const override {
    // One bounded register; the bug is agreement, not space.
    return MemoryFootprint{true, 0, 0, 0, 0};
  }

 private:
  Runtime& rt_;
  MRMWRegister<int> reg_;
  std::vector<int> decisions_;  ///< per-process slots, disjoint writers
};

}  // namespace bprc::fault
