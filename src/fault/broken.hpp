// Deliberately broken consensus protocols — test hooks for the torture
// harness itself.
//
// A fault-injection pipeline that has never caught a bug proves nothing:
// the harness's own acceptance test seeds a protocol with a known,
// schedule-dependent agreement bug and requires the campaign to catch it,
// the shrinker to minimize it, and the repro artifact to replay it. These
// protocols are registered behind a `broken` flag in the protocol
// registry and never enter the default campaign matrix.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "consensus/protocol.hpp"
#include "registers/register.hpp"
#include "runtime/runtime.hpp"

namespace bprc::fault {

/// Binary "consensus" with a textbook read-then-write race: each process
/// reads a shared decision register, and if it observes ⊥ writes its own
/// input and decides it; otherwise it adopts what it read. Any schedule
/// that lets two processes with different inputs both read ⊥ before
/// either write lands produces a consistency violation — and the minimal
/// such schedule is a handful of steps, which makes this the canonical
/// shrinker benchmark.
class RacyConsensus final : public ConsensusProtocol {
 public:
  explicit RacyConsensus(Runtime& rt)
      : rt_(rt),
        reg_(rt, /*initial=*/-1),
        decisions_(static_cast<std::size_t>(rt.nprocs()), -1) {}

  int propose(int input) override;
  std::string name() const override { return "broken-racy"; }
  int decision(ProcId p) const override {
    return decisions_[static_cast<std::size_t>(p)];
  }
  std::int64_t decision_round(ProcId p) const override {
    return decisions_[static_cast<std::size_t>(p)] == -1 ? 0 : 1;
  }
  MemoryFootprint footprint() const override {
    // One bounded register; the bug is agreement, not space.
    return MemoryFootprint{true, 0, 0, 0, 0};
  }

 private:
  Runtime& rt_;
  MRMWRegister<int> reg_;
  std::vector<int> decisions_;  ///< per-process slots, disjoint writers
};

/// "Consensus" that breaks the paper's *bounded-memory* claim instead of
/// agreement: it declares a static counter bound of kBound for itself but
/// runs kRounds read-increment-write rounds per process over one shared
/// handoff counter. Fully overlapped schedules (everyone reads before
/// anyone writes) grow the counter by only 1 per round — within bound —
/// while serialized schedules compound the increments to n*kRounds > kBound.
/// The violation is therefore schedule-dependent, exactly what an
/// exhaustive explorer must flag and a random sampler can miss. Decisions
/// adopt-first like RacyConsensus, so unanimous-input cells are
/// agreement-safe and the *only* catchable bug there is the footprint.
class UnboundedHandoffConsensus final : public ConsensusProtocol {
 public:
  static constexpr int kRounds = 2;
  static constexpr std::int64_t kBound = 2;

  explicit UnboundedHandoffConsensus(Runtime& rt)
      : rt_(rt),
        decision_reg_(rt, /*initial=*/-1),
        counter_(rt, /*initial=*/0),
        decisions_(static_cast<std::size_t>(rt.nprocs()), -1) {}

  int propose(int input) override;
  std::string name() const override { return "broken-unbounded"; }
  int decision(ProcId p) const override {
    return decisions_[static_cast<std::size_t>(p)];
  }
  std::int64_t decision_round(ProcId p) const override {
    return decisions_[static_cast<std::size_t>(p)] == -1 ? 0 : 1;
  }
  MemoryFootprint footprint() const override {
    // The lie: claims its counters never exceed kBound. max_counter
    // reports what was actually stored, so the driver's bounded_ok check
    // catches serialized schedules.
    return MemoryFootprint{true, 0, max_written_, 0, kBound};
  }

 private:
  Runtime& rt_;
  MRMWRegister<int> decision_reg_;
  MRMWRegister<std::int64_t> counter_;
  std::vector<int> decisions_;
  std::int64_t max_written_ = 0;  ///< high-water mark of counter writes
};

/// Consensus that is *correct over atomic registers* but silently assumes
/// reads are atomic: process 0 publishes its input in `val_`, then raises
/// the `sync_` flag; every other process spins on `sync_` and — the bug —
/// confirms with a second read, treating disagreement between the two
/// reads as "the flag was never raised" and deciding its own input
/// instead of adopting `val_`. Over atomic registers the confirm branch
/// is dead code (once a read returns 1 the write committed, so the second
/// read returns 1 too) and every process decides process 0's input. A
/// *regular* register may serve the in-flight write to the first read and
/// the older committed value to the second — the classic new-old
/// inversion — which resurrects the branch: the reader decides alone and
/// agreement breaks whenever inputs differ. This is the weak-register
/// tier's acceptance target (docs/REGISTER_SEMANTICS.md): campaigns and
/// the explorer must catch it under `--register-semantics regular|safe`
/// and never under atomic.
class NeedsAtomicConsensus final : public ConsensusProtocol {
 public:
  explicit NeedsAtomicConsensus(Runtime& rt)
      : rt_(rt),
        val_(rt, /*initial=*/-1),
        sync_(rt, /*initial=*/0),
        decisions_(static_cast<std::size_t>(rt.nprocs()), -1) {}

  int propose(int input) override;
  std::string name() const override { return "broken-needs-atomic"; }
  int decision(ProcId p) const override {
    return decisions_[static_cast<std::size_t>(p)];
  }
  std::int64_t decision_round(ProcId p) const override {
    return decisions_[static_cast<std::size_t>(p)] == -1 ? 0 : 1;
  }
  MemoryFootprint footprint() const override {
    // Two bounded registers; the bug is agreement under weak reads.
    return MemoryFootprint{true, 0, 0, 0, 0};
  }

 private:
  Runtime& rt_;
  MRMWRegister<int> val_;   ///< process 0's published input
  MRMWRegister<int> sync_;  ///< announce flag: 0 = unset, 1 = raised
  std::vector<int> decisions_;
};

/// "Consensus" whose bug lives in its *host*, not its transitions: when
/// constructed lethal (a seeded subset of trials — see the registry), the
/// first process to enter propose() dereferences null and takes the whole
/// OS process down with it. This is the shard supervisor's acceptance
/// target: a single-process campaign dies on the spot, while the
/// coordinator (src/shard/) must detect the dead worker, respawn it,
/// watch it die again on the same spec index, quarantine that index as
/// FailureClass::kWorkerCrash, and finish the campaign degraded.
///
/// Non-lethal trials run a deliberately simple crash-free consensus:
/// write your input to your own slot, spin until every slot is filled,
/// decide the maximum. Correct (agreement + validity + termination)
/// whenever no process stops being scheduled — so the protocol registers
/// crash_tolerant=false and quarantine tests pair it with the fair
/// adversaries. Registered with crashes_process=true, which keeps it out
/// of every name listing: only an explicit --protocol broken-segv (or a
/// test) can summon it.
class WorkerKillerConsensus final : public ConsensusProtocol {
 public:
  WorkerKillerConsensus(Runtime& rt, bool lethal);

  int propose(int input) override;
  std::string name() const override { return "broken-segv"; }
  int decision(ProcId p) const override {
    return decisions_[static_cast<std::size_t>(p)];
  }
  std::int64_t decision_round(ProcId p) const override {
    return decisions_[static_cast<std::size_t>(p)] == -1 ? 0 : 1;
  }
  MemoryFootprint footprint() const override {
    return MemoryFootprint{true, 0, 0, 0, 0};
  }

 private:
  Runtime& rt_;
  bool lethal_;
  /// Slot p holds input+1 (0 = not yet written) so any int input works.
  std::vector<std::unique_ptr<MRMWRegister<int>>> slots_;
  std::vector<int> decisions_;
};

}  // namespace bprc::fault
