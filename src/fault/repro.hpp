// Self-contained, replayable failure artifacts (`.bprc-repro` files).
//
// An artifact freezes everything a failing torture run needs to be
// re-executed bit-for-bit in the deterministic simulator: protocol name,
// process inputs, seed, step budget, the (minimized) schedule, and the
// crash events. The format is a line-oriented text file — diffable,
// hand-editable for manual bisection (see docs/TESTING.md), and stable
// across versions via a leading version tag:
//
//   bprc-repro v1
//   protocol broken-racy
//   inputs 0 1
//   adversary round-robin        # provenance: the strategy that found it
//   seed 7
//   max-steps 2000000
//   semantics regular            # optional: register semantics (default
//                                # atomic; docs/REGISTER_SEMANTICS.md)
//   space K=3 cycle=3 slots=4 b=8 mscale=4
//                                # optional: space budget (default = the
//                                # paper's; docs/SPACE_BUDGETS.md)
//   failure consistency
//   note decisions=0,1
//   crash 37 0                   # zero or more: at_step victim
//   flips 0 1 1                  # optional: forced local-coin flip prefix
//   stale-reads 1 0 1            # optional: recorded stale-read choices
//   schedule 0 1 0 1 1 0
//   end
//
// Unknown keys are skipped (forward compatibility); `end` guards against
// truncated files. The optional `flips` line carries the coin-flip prefix
// the exploration driver (src/explore/) resolved by hand; replay re-forces
// it through a ScriptedFlipTape. Artifacts found by random campaigns never
// need it — their coins re-derive from the seed. `semantics` and
// `stale-reads` exist only for weak-register artifacts (both omitted under
// atomic, so pre-existing artifacts and their byte-identity tests are
// untouched); replay re-forces the recorded choices through
// ScriptedAdversary::set_stale_script. A `semantics` value this build does
// not recognize is rejected with a diagnostic, never guessed at — the same
// hardening as the n>64 bitmask guard.
#pragma once

#include <optional>
#include <string>

#include "fault/campaign.hpp"

namespace bprc::fault {

struct Repro {
  int version = 1;
  TortureRun run;  ///< crash_plan holds provenance only; replay uses `crashes`
  FailureClass failure = FailureClass::kNone;
  std::vector<CrashPlanAdversary::Crash> crashes;
  std::vector<ProcId> schedule;
  std::vector<bool> flips;  ///< forced flip prefix; empty = seed-derived
  /// Recorded stale-read choices (run.semantics != kAtomic only); empty =
  /// every weakened read resolves to the atomic answer.
  std::vector<int> stales;
  std::string note;  ///< free-form one-liner about the observed violation
  /// Generative replay (`mode generative` line): re-execute the run with
  /// its original adversary and seed instead of a scripted schedule. This
  /// is how kWorkerCrash quarantine artifacts stay replayable — the trial
  /// killed the process that would have recorded its schedule, but
  /// (adversary, seed) regenerate the identical run. Replaying one is
  /// expected to re-kill the replayer; that is the reproduction.
  bool generative = false;
};

std::string serialize_repro(const Repro& repro);

/// Parses serialize_repro output; nullopt + `err` message on malformed
/// input (user-supplied files must not abort the process).
std::optional<Repro> parse_repro(const std::string& text, std::string* err);

/// File convenience wrappers. save returns false on I/O failure.
bool save_repro(const std::string& path, const Repro& repro);
std::optional<Repro> load_repro(const std::string& path, std::string* err);

/// Re-executes the artifact in the simulator.
ConsensusRunResult replay_repro(const Repro& repro);

/// Builds the artifact for a (possibly shrunk) failure.
Repro make_repro(const TortureFailure& fail,
                 const std::vector<ProcId>& schedule,
                 const std::vector<CrashPlanAdversary::Crash>& crashes);

}  // namespace bprc::fault
