// Schedule shrinker: delta-debugs a recorded failing trace to a minimal
// replayable counterexample.
//
// Given a TortureFailure (full recorded schedule + crash events), the
// shrinker searches for the smallest ScriptedAdversary script — plus the
// smallest crash subset — that still produces the *same failure class*
// (consistency / validity / bounded-memory / termination). The phases:
//
//   1. faithfulness probe — replay the full trace; a failure that does
//      not reproduce deterministically (e.g. a wall-clock watchdog abort)
//      is reported as non-reproducible rather than "shrunk" to nonsense;
//   2. prefix truncation — binary-search the shortest schedule prefix
//      that still fails (ScriptedAdversary completes the run round-robin
//      after the script ends, so every prefix is a complete run);
//   3. crash minimization — greedily drop crash events, then halve their
//      trigger steps while the failure persists;
//   4. ddmin chunk removal — classic delta debugging over the remaining
//      schedule at doubling granularity.
//
// Each phase only commits a candidate after replaying it, so the output
// is always a verified counterexample.
//
// Every probe goes through the trial engine (src/engine/). The sequential
// phases (binary search, crash chains) replay one candidate at a time;
// ddmin's per-granularity scans — whose candidates are all derived from
// the same committed schedule — fan out over engine::TrialExecutor
// workers. Ordered delivery with first-failure early stop keeps the
// committed schedule, the probe count, and therefore the final artifact
// byte-identical at every jobs level.
#pragma once

#include "fault/campaign.hpp"

namespace bprc::fault {

struct ShrinkOutcome {
  bool reproduced = false;  ///< full recorded trace reproduced the failure
  FailureClass failure = FailureClass::kNone;
  std::vector<ProcId> schedule;  ///< minimized (or original if !reproduced)
  std::vector<CrashPlanAdversary::Crash> crashes;  ///< minimized crash set
  std::size_t original_len = 0;  ///< recorded schedule length
  int probes = 0;                ///< replays spent shrinking
};

/// Shrinks `fail`'s trace; replays at most `max_probes` candidates.
/// `jobs` parallelizes the ddmin candidate batches (1 = fully serial;
/// 0 = hardware concurrency); the outcome is identical at every level.
ShrinkOutcome shrink_failure(const TortureFailure& fail,
                             int max_probes = 4000, unsigned jobs = 1);

}  // namespace bprc::fault
