#include "fault/broken.hpp"

#include <algorithm>
#include <memory>

#include "util/assert.hpp"

namespace bprc::fault {

int RacyConsensus::propose(int input) {
  BPRC_REQUIRE(input == 0 || input == 1, "proposals must be bits");
  const ProcId me = rt_.self();
  BPRC_REQUIRE(decisions_[static_cast<std::size_t>(me)] == -1,
               "process proposed twice");
  // The bug: check-then-act over two separate atomic operations. The
  // window between the read and the write is exactly one adversary
  // scheduling point.
  const int seen = reg_.read();
  int decided;
  if (seen == -1) {
    reg_.write(input, input);
    decided = input;
  } else {
    decided = seen;
  }
  decisions_[static_cast<std::size_t>(me)] = decided;
  return decided;
}

int UnboundedHandoffConsensus::propose(int input) {
  BPRC_REQUIRE(input == 0 || input == 1, "proposals must be bits");
  const ProcId me = rt_.self();
  BPRC_REQUIRE(decisions_[static_cast<std::size_t>(me)] == -1,
               "process proposed twice");
  // Adopt-first decision (same race as RacyConsensus, but here it is a
  // side show: under unanimous inputs it is agreement-safe).
  const int seen = decision_reg_.read();
  int decided;
  if (seen == -1) {
    decision_reg_.write(input, input);
    decided = input;
  } else {
    decided = seen;
  }
  // The footprint bug: each round hands the counter forward as read+1.
  // Overlapped reads deduplicate the increments; serialized rounds
  // compound them past the claimed kBound.
  for (int r = 0; r < kRounds; ++r) {
    const std::int64_t c = counter_.read();
    counter_.write(c + 1, c + 1);
    max_written_ = std::max(max_written_, c + 1);
  }
  decisions_[static_cast<std::size_t>(me)] = decided;
  return decided;
}

int NeedsAtomicConsensus::propose(int input) {
  BPRC_REQUIRE(input == 0 || input == 1, "proposals must be bits");
  const ProcId me = rt_.self();
  BPRC_REQUIRE(decisions_[static_cast<std::size_t>(me)] == -1,
               "process proposed twice");
  int decided;
  if (me == 0) {
    val_.write(input, input);
    sync_.write(1, 1);
    decided = input;
  } else {
    while (sync_.read() == 0) {
    }
    // The atomicity assumption: a second read of a flag observed as raised
    // must observe it raised too. A regular register may serve the
    // in-flight 1 to the spin loop and the committed 0 here (new-old
    // inversion), resurrecting the decide-alone branch below.
    if (sync_.read() == 0) {
      decided = input;  // "flag never raised" — the bug
    } else {
      decided = val_.read();
    }
  }
  decisions_[static_cast<std::size_t>(me)] = decided;
  return decided;
}

WorkerKillerConsensus::WorkerKillerConsensus(Runtime& rt, bool lethal)
    : rt_(rt),
      lethal_(lethal),
      decisions_(static_cast<std::size_t>(rt.nprocs()), -1) {
  slots_.reserve(static_cast<std::size_t>(rt.nprocs()));
  for (int p = 0; p < rt.nprocs(); ++p) {
    slots_.push_back(std::make_unique<MRMWRegister<int>>(rt, /*initial=*/0));
  }
}

int WorkerKillerConsensus::propose(int input) {
  const ProcId me = rt_.self();
  BPRC_REQUIRE(decisions_[static_cast<std::size_t>(me)] == -1,
               "process proposed twice");
  if (lethal_) {
    // The seeded host-killer: take down the OS process executing this
    // trial. volatile so no compiler reasons the dereference away.
    volatile int* hole = nullptr;
    *hole = 42;  // SIGSEGV
  }
  slots_[static_cast<std::size_t>(me)]->write(input + 1, input + 1);
  // Spin until every slot is filled, then decide the maximum. Each read
  // is a scheduling point, so a fair adversary completes this quickly; a
  // process starved forever shows up as a budget abort, which is why the
  // registry marks this protocol crash_tolerant=false.
  int decided;
  for (;;) {
    int max_seen = 0;
    bool all = true;
    for (auto& slot : slots_) {
      const int v = slot->read();
      if (v == 0) { all = false; break; }
      max_seen = std::max(max_seen, v);
    }
    if (all) {
      decided = max_seen - 1;
      break;
    }
  }
  decisions_[static_cast<std::size_t>(me)] = decided;
  return decided;
}

}  // namespace bprc::fault
