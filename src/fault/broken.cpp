#include "fault/broken.hpp"

#include "util/assert.hpp"

namespace bprc::fault {

int RacyConsensus::propose(int input) {
  BPRC_REQUIRE(input == 0 || input == 1, "proposals must be bits");
  const ProcId me = rt_.self();
  BPRC_REQUIRE(decisions_[static_cast<std::size_t>(me)] == -1,
               "process proposed twice");
  // The bug: check-then-act over two separate atomic operations. The
  // window between the read and the write is exactly one adversary
  // scheduling point.
  const int seen = reg_.read();
  int decided;
  if (seen == -1) {
    reg_.write(input, input);
    decided = input;
  } else {
    decided = seen;
  }
  decisions_[static_cast<std::size_t>(me)] = decided;
  return decided;
}

}  // namespace bprc::fault
