// Fault-injection campaign driver.
//
// A campaign sweeps (protocol × n × adversary × crash plan × input
// pattern × seed) over the deterministic simulator and checks every
// ConsensusRunResult invariant after each run: consistency, validity,
// termination of non-crashed processes, and the protocol's own
// bounded-memory claim. Each run carries a step budget and a wall-clock
// watchdog, so a livelocked run aborts that *run* (Reason::kDeadline),
// never the campaign.
//
// Every run executes under a RecordingAdversary, so a failure is captured
// as a concrete (schedule, crash events) trace the shrinker
// (fault/shrink.hpp) can delta-debug into a minimal ScriptedAdversary
// script and the repro layer (fault/repro.hpp) can persist.
//
// The campaign itself is a thin sweep definition over the trial engine
// (src/engine/): it enumerates the matrix into TortureRuns, streams them
// through engine::TrialExecutor (CampaignConfig::jobs workers), and folds
// the outcomes — delivered in generation order, so every report field is
// byte-identical at every jobs level.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "consensus/driver.hpp"
#include "engine/trial.hpp"
#include "runtime/adversary.hpp"
#include "util/space_budget.hpp"

namespace bprc::fault {

/// One cell of the sweep: everything needed to re-execute the run. With
/// the adversary's adaptivity removed by recording, (protocol, inputs,
/// seed, schedule, crashes) replays bit-for-bit.
struct TortureRun {
  std::string protocol;
  std::vector<int> inputs;  ///< size = number of processes
  std::string adversary;    ///< name in the adversary registry
  std::vector<CrashPlanAdversary::Crash> crash_plan;  ///< pre-planned kills
  std::uint64_t seed = 0;       ///< process local-coin seed AND adversary seed
  std::uint64_t max_steps = 0;  ///< per-run step budget
  /// Register semantics the run executes under (the weak-register lane);
  /// the adversary's stale-read choices are recorded alongside the
  /// schedule so replays stay bit-identical.
  RegisterSemantics semantics = RegisterSemantics::kAtomic;
  /// Space budget the protocol instance is built at (the space lane).
  /// Default = the paper's constants, under which artifacts/digests keep
  /// their historical bytes.
  SpaceBudget space;

  int n() const { return static_cast<int>(inputs.size()); }
};

/// A failed (or aborted) run, with its recorded trace.
struct TortureFailure {
  TortureRun run;
  FailureClass failure = FailureClass::kNone;
  RunResult::Reason reason = RunResult::Reason::kAllDone;
  std::vector<ProcId> schedule;  ///< full recorded pick sequence
  std::vector<CrashPlanAdversary::Crash> crashes;  ///< recorded crash events
  /// Recorded stale-read choices (weakened semantics only; see TrialSpec).
  std::vector<int> stales;
  ConsensusRunResult result;
};

struct CampaignConfig {
  std::vector<std::string> protocols;   ///< empty = all real protocols
  std::vector<int> ns{2, 3, 5};
  std::vector<std::string> adversaries; ///< empty = full torture matrix
  std::uint64_t seeds_per_cell = 3;
  std::uint64_t seed0 = 1;              ///< base seed for the whole sweep
  std::uint64_t max_steps = 40'000'000;
  std::chrono::milliseconds run_deadline{5000};  ///< 0 = watchdog off
  bool crash_plans = true;   ///< additionally sweep seeded crash plans
  /// Register-semantics axis: the matrix is swept once per entry. The
  /// default keeps the historical atomic-only matrix (and its digests)
  /// unchanged.
  std::vector<RegisterSemantics> semantics{RegisterSemantics::kAtomic};
  /// Space-budget axis: the matrix is swept once per entry (outermost).
  /// The default keeps the historical single-budget matrix (and its
  /// digests) unchanged. Protocols whose layout ignores the budget
  /// (ProtocolSpec::space_sensitive == false) are skipped-and-counted at
  /// non-default entries rather than re-run under a misleading label.
  std::vector<SpaceBudget> spaces{SpaceBudget{}};
  std::size_t max_failures = 8;  ///< stop the sweep once collected
  /// Worker threads for the sweep (engine::TrialExecutor). 1 = the exact
  /// serial path; 0 = hardware concurrency. Every report field, failure,
  /// and recorded trace is byte-identical at every jobs level — results
  /// are delivered in generation order (tests/test_engine.cpp pins it).
  unsigned jobs = 1;
  /// Cooperative cancellation (SIGINT/SIGTERM in the CLI): polled between
  /// deliveries; when it returns true the sweep stops after the current
  /// delivery and the report is flagged `interrupted` with everything
  /// folded so far intact — partial results flush instead of vanishing.
  std::function<bool()> stop_requested;
};

struct CampaignReport {
  std::uint64_t runs = 0;
  std::uint64_t deadline_aborts = 0;  ///< runs ended by the watchdog
  std::uint64_t budget_aborts = 0;    ///< runs ended by the step budget
  std::uint64_t skipped_crash_cells = 0;  ///< crash cells skipped because
                                          ///< the protocol is registered
                                          ///< as not crash-tolerant
                                          ///< (counted over the whole
                                          ///< configured matrix)
  /// kSafe-semantics cells skipped because the protocol is registered as
  /// not tolerating safe reads (ProtocolSpec::tolerates_safe_reads) —
  /// its own invariants would abort the process instead of grading.
  /// Counted over the whole configured matrix, like crash skips.
  std::uint64_t skipped_safe_cells = 0;
  /// Non-default-budget cells skipped because the protocol is registered
  /// as not space-sensitive (ProtocolSpec::space_sensitive) — its layout
  /// would not change, so rerunning it per budget would only mislabel
  /// identical runs. Counted over the whole configured matrix.
  std::uint64_t skipped_space_cells = 0;
  std::vector<TortureFailure> failures;
  /// FNV-1a chain over every delivered run's outcome_digest (see below),
  /// in delivery (= generation) order: the independence witness the CI
  /// digest comparisons check across --jobs levels, --workers counts,
  /// and --shard/--merge round trips.
  std::uint64_t summary_digest = 0xCBF29CE484222325ULL;
  bool interrupted = false;  ///< stop_requested fired before completion
  bool ok() const { return failures.empty() && !interrupted; }
};

/// One delivered run reduced to what the campaign fold consumes: the
/// per-run digest plus the classification counters, and (failures only)
/// the full TortureFailure for shrinking/artifacts. This is the unit the
/// shard wire protocol ships — a worker never streams raw schedules for
/// passing runs, only their digests.
struct OutcomeRecord {
  std::uint64_t digest = 0;    ///< outcome_digest() of the run
  std::uint64_t steps = 0;     ///< result.total_steps
  RunResult::Reason reason = RunResult::Reason::kAllDone;
  FailureClass failure = FailureClass::kNone;
  /// Present iff failure != kNone (or the run was quarantined): the
  /// complete failure, including the recorded trace, for the merge side
  /// to shrink and persist.
  std::optional<TortureFailure> detail;
};

/// FNV-1a over one outcome's schedule, crashes, decisions, step count,
/// and failure class. The campaign digest is a chain of these per-run
/// digests, which is what makes it mergeable: a shard ships 8 bytes per
/// run instead of its multi-thousand-pick schedule.
std::uint64_t outcome_digest(const engine::TrialOutcome& out);

/// The digest contribution of a quarantined spec index (the trial killed
/// its worker; there is no outcome). Pure function of the failure class,
/// so every worker count folds the same value for the same index.
std::uint64_t quarantined_digest();

/// Reduces a delivered (run, outcome) pair to its fold unit. Consumes
/// both (failure details move the run and trace in). Under weakened
/// register semantics, a budget/deadline termination stop on a protocol
/// registered with live_under_stale_reads=false is downgraded to a
/// non-failure (it still counts as an abort and still chains into the
/// digest): the paper guarantees those protocols' liveness over atomic
/// registers only. Safety violations are never downgraded.
OutcomeRecord make_outcome_record(TortureRun&& run,
                                  engine::TrialOutcome&& out);

/// Folds one record into the report: counters, digest chain, failure
/// list. Returns false once max_failures failures are collected — the
/// early-stop signal, identical in serial, threaded, and sharded runs
/// because every path folds records in generation order.
bool fold_outcome_record(CampaignReport& report, OutcomeRecord&& record,
                         std::size_t max_failures);

/// The campaign's deterministic trial matrix, in generation order. The
/// index into this vector is the unit of sharding: shard i/k executes a
/// contiguous index range and the coordinator re-folds records by index.
/// `skipped_crash_cells` / `skipped_safe_cells` / `skipped_space_cells`
/// (nullable) receive the skip counts the report carries.
std::vector<TortureRun> enumerate_campaign_runs(
    const CampaignConfig& config, std::uint64_t* skipped_crash_cells,
    std::uint64_t* skipped_safe_cells = nullptr,
    std::uint64_t* skipped_space_cells = nullptr);

/// FNV-1a fingerprint of the enumerated matrix (every run's parameters)
/// plus the fold-relevant config. Shard files record it and the merge
/// refuses to combine shards produced from different campaigns.
std::uint64_t campaign_matrix_fingerprint(const CampaignConfig& config,
                                          const std::vector<TortureRun>& runs);

/// Names the campaign's adversary registry understands. Forwarders to
/// the engine-level registry (engine/adversaries.hpp), kept under their
/// historical names for the CLI and the tests.
const std::vector<std::string>& torture_adversary_names();

/// Instantiates a registered adversary; BPRC_REQUIRE on unknown names.
std::unique_ptr<Adversary> make_adversary(const std::string& name,
                                          std::uint64_t seed);

/// True for adversaries that inject crash failures on their own (these
/// are skipped for protocols registered as not crash-tolerant).
bool adversary_injects_crashes(const std::string& name);

/// Engine translation: the TrialSpec that executes `run` (generative,
/// recording). Campaign, shrinker, and replay all round-trip through
/// this so there is exactly one TortureRun→engine mapping.
engine::TrialSpec to_trial_spec(const TortureRun& run,
                                std::chrono::nanoseconds deadline,
                                bool record = true);

/// Executes one cell under recording. When non-null, `schedule`/`crashes`
/// receive the full recorded trace (pre-planned crashes included — the
/// recorded crash list alone replays the run). `reuse` recycles the
/// simulator across calls (see SimReuse); results are identical with or
/// without it.
ConsensusRunResult execute_run(const TortureRun& run,
                               std::chrono::nanoseconds deadline,
                               std::vector<ProcId>* schedule,
                               std::vector<CrashPlanAdversary::Crash>* crashes,
                               SimReuse* reuse = nullptr);

/// Replays a cell under a fixed schedule + crash list (the run's own
/// crash_plan is NOT applied again; recorded crashes subsume it).
/// `reuse` as in execute_run. `forced_flips` (optional) re-forces a
/// recorded local-coin flip prefix — artifacts produced by the
/// exploration driver carry one; randomly-found artifacts don't need it
/// (the seed re-derives the same coins). `stales` replays recorded
/// stale-read choices (weakened semantics; empty = every choice atomic).
ConsensusRunResult replay_run(
    const TortureRun& run, const std::vector<ProcId>& schedule,
    const std::vector<CrashPlanAdversary::Crash>& crashes,
    SimReuse* reuse = nullptr, const std::vector<bool>* forced_flips = nullptr,
    const std::vector<int>& stales = {});

/// Called after every run (progress reporting, logging).
using RunObserver =
    std::function<void(const TortureRun&, const ConsensusRunResult&)>;

CampaignReport run_campaign(const CampaignConfig& config,
                            const RunObserver& observer = nullptr);

}  // namespace bprc::fault
