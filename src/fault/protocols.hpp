// Name-keyed protocol registry for the torture harness.
//
// Campaigns, repro artifacts, and the CLI all refer to protocols by
// stable string names, so a `.bprc-repro` file written today replays
// against the same protocol tomorrow. The registry covers the four
// protocols of the library (BPRC plus the three baselines) and, behind a
// `broken` flag, the deliberately-buggy test hooks of fault/broken.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "consensus/driver.hpp"
#include "util/space_budget.hpp"

namespace bprc::fault {

struct ProtocolSpec {
  std::string name;
  bool broken = false;  ///< test-hook protocol with a seeded bug
  /// Whether the protocol tolerates crash failures (wait-freedom). The
  /// simplified local-coin baseline does NOT: it decides on unanimity
  /// over every written preference, so crashed processes that froze
  /// conflicting preferences livelock all survivors — the very first
  /// torture campaign caught this (see docs/TESTING.md), and the flag
  /// keeps crash-injecting cells out of its matrix.
  bool crash_tolerant = true;
  /// Whether termination is guaranteed when the adversary resolves reads
  /// that race a write (regular/safe register semantics,
  /// docs/REGISTER_SEMANTICS.md). The paper's faithful protocols prove
  /// expected termination over *atomic* registers only, and the torture
  /// campaign confirmed the gap is real: an adversary that keeps serving
  /// the old value of every racing read starves their random walks
  /// forever (budget-independent livelock, found under the round-robin
  /// strategy's rotating resolution). Safety still holds and is still
  /// graded; with this flag false, a budget/deadline stop under weakened
  /// semantics is counted as an abort, not reported as a failure — the
  /// same downgrade the explorer applies to budget-truncated leaves.
  bool live_under_stale_reads = true;
  /// Whether the protocol can run at all under safe semantics, where a
  /// racing read may return any value the register previously held. BPRC
  /// itself cannot: its always-on edge-counter decode invariant
  /// (BPRC_REQUIRE, util/assert.hpp) fires on cross-register views no
  /// atomic execution can produce, and aborts the process by design
  /// rather than grading statistics from junk reads. With this flag
  /// false, kSafe cells are skipped and counted (the crash-cell
  /// precedent) instead of taking down the campaign.
  bool tolerates_safe_reads = true;
  /// Builds a factory for an n-process instance; `seed` feeds protocol
  /// internals that want independent randomness (e.g. the strong coin);
  /// `space` is the campaign's SpaceBudget, which only space-sensitive
  /// protocols consume (the others are built from their own constants
  /// and skipped at non-default budgets — see the campaign's
  /// skipped_space_cells counter).
  std::function<ProtocolFactory(int n, std::uint64_t seed,
                                const SpaceBudget& space)>
      make;
  /// Whether the protocol's layout actually responds to a SpaceBudget.
  /// True for the paper's protocol (every knob) and Aspnes–Herlihy (the
  /// barrier b; its counters are unbounded so m is moot). Campaigns
  /// sweeping non-default budgets skip insensitive protocols rather
  /// than re-run identical instances under a misleading label.
  bool space_sensitive = false;
  /// The protocol can kill the OS process executing it (the shard
  /// supervisor's acceptance target, fault/broken.hpp). Excluded from
  /// every name listing — protocol_names() never returns it, even with
  /// include_broken — so sweeps that enumerate "all protocols" (explorer
  /// smoke, default campaigns) never take down their own process. Only
  /// an explicit name lookup (protocol_spec / --protocol) reaches it.
  bool crashes_process = false;
};

/// Every protocol the harness can drive; real protocols first.
const std::vector<ProtocolSpec>& protocol_registry();

/// Names only, in registry order.
std::vector<std::string> protocol_names(bool include_broken = false);

/// Looks up `name`; BPRC_REQUIRE on unknown names (campaign configs are
/// programmer input, not user input — the CLI validates before calling).
const ProtocolSpec& protocol_spec(const std::string& name);

/// Shorthand: factory for `name` at the given size and seed, at the
/// paper's default space budget.
ProtocolFactory make_protocol(const std::string& name, int n,
                              std::uint64_t seed);

/// Same, at an explicit space budget.
ProtocolFactory make_protocol(const std::string& name, int n,
                              std::uint64_t seed, const SpaceBudget& space);

}  // namespace bprc::fault
