#include "fault/repro.hpp"

#include <fstream>
#include <sstream>

namespace bprc::fault {

namespace {

std::string join_ints(const std::vector<int>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(v[i]);
  }
  return out;
}

bool fail_with(std::string* err, const std::string& message) {
  if (err != nullptr) *err = message;
  return false;
}

}  // namespace

std::string serialize_repro(const Repro& repro) {
  std::ostringstream out;
  out << "bprc-repro v" << repro.version << "\n";
  out << "protocol " << repro.run.protocol << "\n";
  out << "inputs " << join_ints(repro.run.inputs) << "\n";
  out << "adversary " << repro.run.adversary << "\n";
  out << "seed " << repro.run.seed << "\n";
  out << "max-steps " << repro.run.max_steps << "\n";
  out << "failure " << to_string(repro.failure) << "\n";
  if (!repro.note.empty()) out << "note " << repro.note << "\n";
  for (const auto& crash : repro.run.crash_plan) {
    out << "plan-crash " << crash.at_step << " " << crash.victim << "\n";
  }
  for (const auto& crash : repro.crashes) {
    out << "crash " << crash.at_step << " " << crash.victim << "\n";
  }
  if (!repro.flips.empty()) {
    out << "flips";
    for (const bool b : repro.flips) out << " " << (b ? 1 : 0);
    out << "\n";
  }
  out << "schedule";
  for (const ProcId p : repro.schedule) out << " " << p;
  out << "\nend\n";
  return out.str();
}

std::optional<Repro> parse_repro(const std::string& text, std::string* err) {
  std::istringstream in(text);
  std::string line;
  Repro repro;
  std::string dummy;
  if (err == nullptr) err = &dummy;

  if (!std::getline(in, line) || line.rfind("bprc-repro v", 0) != 0) {
    fail_with(err, "not a bprc-repro file (missing header)");
    return std::nullopt;
  }
  repro.version = std::atoi(line.c_str() + 12);
  if (repro.version != 1) {
    fail_with(err, "unsupported bprc-repro version");
    return std::nullopt;
  }

  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "protocol") {
      fields >> repro.run.protocol;
    } else if (key == "inputs") {
      int v = 0;
      repro.run.inputs.clear();
      while (fields >> v) repro.run.inputs.push_back(v);
    } else if (key == "adversary") {
      fields >> repro.run.adversary;
    } else if (key == "seed") {
      fields >> repro.run.seed;
    } else if (key == "max-steps") {
      fields >> repro.run.max_steps;
    } else if (key == "failure") {
      std::string name;
      fields >> name;
      repro.failure = failure_class_from_string(name);
    } else if (key == "note") {
      std::getline(fields, repro.note);
      if (!repro.note.empty() && repro.note.front() == ' ') {
        repro.note.erase(repro.note.begin());
      }
    } else if (key == "plan-crash" || key == "crash") {
      CrashPlanAdversary::Crash crash{};
      if (!(fields >> crash.at_step >> crash.victim)) {
        fail_with(err, "malformed crash line: " + line);
        return std::nullopt;
      }
      (key == "crash" ? repro.crashes : repro.run.crash_plan).push_back(crash);
    } else if (key == "flips") {
      int b = 0;
      repro.flips.clear();
      while (fields >> b) {
        if (b != 0 && b != 1) {
          fail_with(err, "malformed flips line (bits only): " + line);
          return std::nullopt;
        }
        repro.flips.push_back(b == 1);
      }
    } else if (key == "schedule") {
      ProcId p = -1;
      repro.schedule.clear();
      while (fields >> p) repro.schedule.push_back(p);
    }
    // Unknown keys: skipped for forward compatibility.
  }

  if (!saw_end) {
    fail_with(err, "truncated bprc-repro file (missing 'end')");
    return std::nullopt;
  }
  if (repro.run.protocol.empty() || repro.run.inputs.empty()) {
    fail_with(err, "bprc-repro file missing protocol or inputs");
    return std::nullopt;
  }
  if (repro.run.max_steps == 0) {
    fail_with(err, "bprc-repro file missing max-steps");
    return std::nullopt;
  }
  if (repro.run.n() > kRunnableMaskBits) {
    // Replay depends on the simulator's O(1) runnable digest being
    // authoritative for every recorded pick; a wider configuration would
    // replay outside that validated envelope. Refuse loudly instead.
    fail_with(err, "recorded n=" + std::to_string(repro.run.n()) +
                       " exceeds this build's runnable-bitmask width (" +
                       std::to_string(kRunnableMaskBits) +
                       " processes); cannot replay this artifact");
    return std::nullopt;
  }
  for (const ProcId p : repro.schedule) {
    if (p < 0 || p >= repro.run.n()) {
      fail_with(err, "schedule entry out of range");
      return std::nullopt;
    }
  }
  for (const auto& crash : repro.crashes) {
    if (crash.victim < 0 || crash.victim >= repro.run.n()) {
      fail_with(err, "crash victim out of range");
      return std::nullopt;
    }
  }
  return repro;
}

bool save_repro(const std::string& path, const Repro& repro) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << serialize_repro(repro);
  return static_cast<bool>(out);
}

std::optional<Repro> load_repro(const std::string& path, std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err != nullptr) *err = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_repro(buffer.str(), err);
}

ConsensusRunResult replay_repro(const Repro& repro) {
  return replay_run(repro.run, repro.schedule, repro.crashes,
                    /*reuse=*/nullptr,
                    repro.flips.empty() ? nullptr : &repro.flips);
}

Repro make_repro(const TortureFailure& fail,
                 const std::vector<ProcId>& schedule,
                 const std::vector<CrashPlanAdversary::Crash>& crashes) {
  Repro repro;
  repro.run = fail.run;
  repro.failure = fail.failure;
  repro.schedule = schedule;
  repro.crashes = crashes;
  std::string note = "reason=";
  note += to_string(fail.reason);
  note += " decisions=";
  note += join_ints(fail.result.decisions);
  repro.note = note;
  return repro;
}

}  // namespace bprc::fault
